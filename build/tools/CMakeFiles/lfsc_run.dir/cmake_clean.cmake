file(REMOVE_RECURSE
  "CMakeFiles/lfsc_run.dir/lfsc_run.cpp.o"
  "CMakeFiles/lfsc_run.dir/lfsc_run.cpp.o.d"
  "lfsc_run"
  "lfsc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfsc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
