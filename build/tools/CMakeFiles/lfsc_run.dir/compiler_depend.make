# Empty compiler generated dependencies file for lfsc_run.
# This may be replaced when dependencies are built.
