# Empty dependencies file for fig2e_performance_ratio.
# This may be replaced when dependencies are built.
