file(REMOVE_RECURSE
  "CMakeFiles/fig2e_performance_ratio.dir/fig2e_performance_ratio.cpp.o"
  "CMakeFiles/fig2e_performance_ratio.dir/fig2e_performance_ratio.cpp.o.d"
  "fig2e_performance_ratio"
  "fig2e_performance_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2e_performance_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
