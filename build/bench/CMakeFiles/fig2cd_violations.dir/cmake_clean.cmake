file(REMOVE_RECURSE
  "CMakeFiles/fig2cd_violations.dir/fig2cd_violations.cpp.o"
  "CMakeFiles/fig2cd_violations.dir/fig2cd_violations.cpp.o.d"
  "fig2cd_violations"
  "fig2cd_violations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2cd_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
