# Empty dependencies file for fig2cd_violations.
# This may be replaced when dependencies are built.
