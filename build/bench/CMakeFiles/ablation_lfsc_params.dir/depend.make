# Empty dependencies file for ablation_lfsc_params.
# This may be replaced when dependencies are built.
