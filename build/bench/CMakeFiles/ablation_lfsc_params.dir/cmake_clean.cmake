file(REMOVE_RECURSE
  "CMakeFiles/ablation_lfsc_params.dir/ablation_lfsc_params.cpp.o"
  "CMakeFiles/ablation_lfsc_params.dir/ablation_lfsc_params.cpp.o.d"
  "ablation_lfsc_params"
  "ablation_lfsc_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lfsc_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
