# Empty dependencies file for fig3_alpha_sweep.
# This may be replaced when dependencies are built.
