file(REMOVE_RECURSE
  "CMakeFiles/ablation_greedy_vs_exact.dir/ablation_greedy_vs_exact.cpp.o"
  "CMakeFiles/ablation_greedy_vs_exact.dir/ablation_greedy_vs_exact.cpp.o.d"
  "ablation_greedy_vs_exact"
  "ablation_greedy_vs_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_greedy_vs_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
