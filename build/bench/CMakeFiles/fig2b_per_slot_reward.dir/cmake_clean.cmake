file(REMOVE_RECURSE
  "CMakeFiles/fig2b_per_slot_reward.dir/fig2b_per_slot_reward.cpp.o"
  "CMakeFiles/fig2b_per_slot_reward.dir/fig2b_per_slot_reward.cpp.o.d"
  "fig2b_per_slot_reward"
  "fig2b_per_slot_reward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_per_slot_reward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
