# Empty dependencies file for fig2b_per_slot_reward.
# This may be replaced when dependencies are built.
