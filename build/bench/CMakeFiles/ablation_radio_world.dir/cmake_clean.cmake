file(REMOVE_RECURSE
  "CMakeFiles/ablation_radio_world.dir/ablation_radio_world.cpp.o"
  "CMakeFiles/ablation_radio_world.dir/ablation_radio_world.cpp.o.d"
  "ablation_radio_world"
  "ablation_radio_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_radio_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
