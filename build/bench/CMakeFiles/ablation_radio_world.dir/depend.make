# Empty dependencies file for ablation_radio_world.
# This may be replaced when dependencies are built.
