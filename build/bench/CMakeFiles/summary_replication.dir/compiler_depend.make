# Empty compiler generated dependencies file for summary_replication.
# This may be replaced when dependencies are built.
