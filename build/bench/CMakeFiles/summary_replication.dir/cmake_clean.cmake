file(REMOVE_RECURSE
  "CMakeFiles/summary_replication.dir/summary_replication.cpp.o"
  "CMakeFiles/summary_replication.dir/summary_replication.cpp.o.d"
  "summary_replication"
  "summary_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
