# Empty compiler generated dependencies file for baseline_zoo.
# This may be replaced when dependencies are built.
