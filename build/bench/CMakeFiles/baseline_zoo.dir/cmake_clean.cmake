file(REMOVE_RECURSE
  "CMakeFiles/baseline_zoo.dir/baseline_zoo.cpp.o"
  "CMakeFiles/baseline_zoo.dir/baseline_zoo.cpp.o.d"
  "baseline_zoo"
  "baseline_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
