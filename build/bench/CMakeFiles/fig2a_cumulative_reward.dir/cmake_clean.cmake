file(REMOVE_RECURSE
  "CMakeFiles/fig2a_cumulative_reward.dir/fig2a_cumulative_reward.cpp.o"
  "CMakeFiles/fig2a_cumulative_reward.dir/fig2a_cumulative_reward.cpp.o.d"
  "fig2a_cumulative_reward"
  "fig2a_cumulative_reward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_cumulative_reward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
