# Empty dependencies file for fig2a_cumulative_reward.
# This may be replaced when dependencies are built.
