file(REMOVE_RECURSE
  "CMakeFiles/fig4_likelihood_envs.dir/fig4_likelihood_envs.cpp.o"
  "CMakeFiles/fig4_likelihood_envs.dir/fig4_likelihood_envs.cpp.o.d"
  "fig4_likelihood_envs"
  "fig4_likelihood_envs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_likelihood_envs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
