# Empty dependencies file for fig4_likelihood_envs.
# This may be replaced when dependencies are built.
