file(REMOVE_RECURSE
  "CMakeFiles/theorem1_sublinearity.dir/theorem1_sublinearity.cpp.o"
  "CMakeFiles/theorem1_sublinearity.dir/theorem1_sublinearity.cpp.o.d"
  "theorem1_sublinearity"
  "theorem1_sublinearity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem1_sublinearity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
