# Empty dependencies file for theorem1_sublinearity.
# This may be replaced when dependencies are built.
