file(REMOVE_RECURSE
  "CMakeFiles/mmwave_campus.dir/mmwave_campus.cpp.o"
  "CMakeFiles/mmwave_campus.dir/mmwave_campus.cpp.o.d"
  "mmwave_campus"
  "mmwave_campus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmwave_campus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
