# Empty compiler generated dependencies file for mmwave_campus.
# This may be replaced when dependencies are built.
