file(REMOVE_RECURSE
  "CMakeFiles/constraint_tuning.dir/constraint_tuning.cpp.o"
  "CMakeFiles/constraint_tuning.dir/constraint_tuning.cpp.o.d"
  "constraint_tuning"
  "constraint_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
