# Empty dependencies file for constraint_tuning.
# This may be replaced when dependencies are built.
