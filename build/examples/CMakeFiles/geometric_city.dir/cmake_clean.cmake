file(REMOVE_RECURSE
  "CMakeFiles/geometric_city.dir/geometric_city.cpp.o"
  "CMakeFiles/geometric_city.dir/geometric_city.cpp.o.d"
  "geometric_city"
  "geometric_city.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geometric_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
