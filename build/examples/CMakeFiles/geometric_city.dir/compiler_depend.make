# Empty compiler generated dependencies file for geometric_city.
# This may be replaced when dependencies are built.
