
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/hierarchical_offloading.cpp" "examples/CMakeFiles/hierarchical_offloading.dir/hierarchical_offloading.cpp.o" "gcc" "examples/CMakeFiles/hierarchical_offloading.dir/hierarchical_offloading.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/lfsc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/extensions/CMakeFiles/lfsc_extensions.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/lfsc_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/lfsc/CMakeFiles/lfsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lfsc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/bandit/CMakeFiles/lfsc_bandit.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/lfsc_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/lfsc_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lfsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lfsc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
