# Empty compiler generated dependencies file for hierarchical_offloading.
# This may be replaced when dependencies are built.
