file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_offloading.dir/hierarchical_offloading.cpp.o"
  "CMakeFiles/hierarchical_offloading.dir/hierarchical_offloading.cpp.o.d"
  "hierarchical_offloading"
  "hierarchical_offloading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_offloading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
