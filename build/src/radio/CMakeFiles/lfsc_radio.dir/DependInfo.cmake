
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/compute.cpp" "src/radio/CMakeFiles/lfsc_radio.dir/compute.cpp.o" "gcc" "src/radio/CMakeFiles/lfsc_radio.dir/compute.cpp.o.d"
  "/root/repo/src/radio/link.cpp" "src/radio/CMakeFiles/lfsc_radio.dir/link.cpp.o" "gcc" "src/radio/CMakeFiles/lfsc_radio.dir/link.cpp.o.d"
  "/root/repo/src/radio/pathloss.cpp" "src/radio/CMakeFiles/lfsc_radio.dir/pathloss.cpp.o" "gcc" "src/radio/CMakeFiles/lfsc_radio.dir/pathloss.cpp.o.d"
  "/root/repo/src/radio/radio_simulator.cpp" "src/radio/CMakeFiles/lfsc_radio.dir/radio_simulator.cpp.o" "gcc" "src/radio/CMakeFiles/lfsc_radio.dir/radio_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lfsc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lfsc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
