file(REMOVE_RECURSE
  "CMakeFiles/lfsc_radio.dir/compute.cpp.o"
  "CMakeFiles/lfsc_radio.dir/compute.cpp.o.d"
  "CMakeFiles/lfsc_radio.dir/link.cpp.o"
  "CMakeFiles/lfsc_radio.dir/link.cpp.o.d"
  "CMakeFiles/lfsc_radio.dir/pathloss.cpp.o"
  "CMakeFiles/lfsc_radio.dir/pathloss.cpp.o.d"
  "CMakeFiles/lfsc_radio.dir/radio_simulator.cpp.o"
  "CMakeFiles/lfsc_radio.dir/radio_simulator.cpp.o.d"
  "liblfsc_radio.a"
  "liblfsc_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfsc_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
