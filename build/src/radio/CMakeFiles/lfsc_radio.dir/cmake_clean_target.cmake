file(REMOVE_RECURSE
  "liblfsc_radio.a"
)
