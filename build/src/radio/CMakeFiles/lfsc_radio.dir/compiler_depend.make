# Empty compiler generated dependencies file for lfsc_radio.
# This may be replaced when dependencies are built.
