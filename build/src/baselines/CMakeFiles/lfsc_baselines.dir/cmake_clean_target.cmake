file(REMOVE_RECURSE
  "liblfsc_baselines.a"
)
