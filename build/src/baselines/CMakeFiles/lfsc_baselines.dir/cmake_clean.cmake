file(REMOVE_RECURSE
  "CMakeFiles/lfsc_baselines.dir/fml.cpp.o"
  "CMakeFiles/lfsc_baselines.dir/fml.cpp.o.d"
  "CMakeFiles/lfsc_baselines.dir/linucb.cpp.o"
  "CMakeFiles/lfsc_baselines.dir/linucb.cpp.o.d"
  "CMakeFiles/lfsc_baselines.dir/oracle.cpp.o"
  "CMakeFiles/lfsc_baselines.dir/oracle.cpp.o.d"
  "CMakeFiles/lfsc_baselines.dir/random_policy.cpp.o"
  "CMakeFiles/lfsc_baselines.dir/random_policy.cpp.o.d"
  "CMakeFiles/lfsc_baselines.dir/thompson.cpp.o"
  "CMakeFiles/lfsc_baselines.dir/thompson.cpp.o.d"
  "CMakeFiles/lfsc_baselines.dir/vucb.cpp.o"
  "CMakeFiles/lfsc_baselines.dir/vucb.cpp.o.d"
  "liblfsc_baselines.a"
  "liblfsc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfsc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
