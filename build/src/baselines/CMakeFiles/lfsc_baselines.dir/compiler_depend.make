# Empty compiler generated dependencies file for lfsc_baselines.
# This may be replaced when dependencies are built.
