
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/fml.cpp" "src/baselines/CMakeFiles/lfsc_baselines.dir/fml.cpp.o" "gcc" "src/baselines/CMakeFiles/lfsc_baselines.dir/fml.cpp.o.d"
  "/root/repo/src/baselines/linucb.cpp" "src/baselines/CMakeFiles/lfsc_baselines.dir/linucb.cpp.o" "gcc" "src/baselines/CMakeFiles/lfsc_baselines.dir/linucb.cpp.o.d"
  "/root/repo/src/baselines/oracle.cpp" "src/baselines/CMakeFiles/lfsc_baselines.dir/oracle.cpp.o" "gcc" "src/baselines/CMakeFiles/lfsc_baselines.dir/oracle.cpp.o.d"
  "/root/repo/src/baselines/random_policy.cpp" "src/baselines/CMakeFiles/lfsc_baselines.dir/random_policy.cpp.o" "gcc" "src/baselines/CMakeFiles/lfsc_baselines.dir/random_policy.cpp.o.d"
  "/root/repo/src/baselines/thompson.cpp" "src/baselines/CMakeFiles/lfsc_baselines.dir/thompson.cpp.o" "gcc" "src/baselines/CMakeFiles/lfsc_baselines.dir/thompson.cpp.o.d"
  "/root/repo/src/baselines/vucb.cpp" "src/baselines/CMakeFiles/lfsc_baselines.dir/vucb.cpp.o" "gcc" "src/baselines/CMakeFiles/lfsc_baselines.dir/vucb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lfsc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lfsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bandit/CMakeFiles/lfsc_bandit.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/lfsc_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
