file(REMOVE_RECURSE
  "CMakeFiles/lfsc_common.dir/csv.cpp.o"
  "CMakeFiles/lfsc_common.dir/csv.cpp.o.d"
  "CMakeFiles/lfsc_common.dir/flags.cpp.o"
  "CMakeFiles/lfsc_common.dir/flags.cpp.o.d"
  "CMakeFiles/lfsc_common.dir/log.cpp.o"
  "CMakeFiles/lfsc_common.dir/log.cpp.o.d"
  "CMakeFiles/lfsc_common.dir/math_util.cpp.o"
  "CMakeFiles/lfsc_common.dir/math_util.cpp.o.d"
  "CMakeFiles/lfsc_common.dir/rng.cpp.o"
  "CMakeFiles/lfsc_common.dir/rng.cpp.o.d"
  "CMakeFiles/lfsc_common.dir/table.cpp.o"
  "CMakeFiles/lfsc_common.dir/table.cpp.o.d"
  "CMakeFiles/lfsc_common.dir/thread_pool.cpp.o"
  "CMakeFiles/lfsc_common.dir/thread_pool.cpp.o.d"
  "liblfsc_common.a"
  "liblfsc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfsc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
