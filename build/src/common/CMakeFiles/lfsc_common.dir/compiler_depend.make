# Empty compiler generated dependencies file for lfsc_common.
# This may be replaced when dependencies are built.
