file(REMOVE_RECURSE
  "liblfsc_common.a"
)
