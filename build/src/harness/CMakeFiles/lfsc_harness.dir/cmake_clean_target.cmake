file(REMOVE_RECURSE
  "liblfsc_harness.a"
)
