file(REMOVE_RECURSE
  "CMakeFiles/lfsc_harness.dir/paper_setup.cpp.o"
  "CMakeFiles/lfsc_harness.dir/paper_setup.cpp.o.d"
  "CMakeFiles/lfsc_harness.dir/replication.cpp.o"
  "CMakeFiles/lfsc_harness.dir/replication.cpp.o.d"
  "CMakeFiles/lfsc_harness.dir/runner.cpp.o"
  "CMakeFiles/lfsc_harness.dir/runner.cpp.o.d"
  "CMakeFiles/lfsc_harness.dir/series_io.cpp.o"
  "CMakeFiles/lfsc_harness.dir/series_io.cpp.o.d"
  "liblfsc_harness.a"
  "liblfsc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfsc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
