# Empty compiler generated dependencies file for lfsc_harness.
# This may be replaced when dependencies are built.
