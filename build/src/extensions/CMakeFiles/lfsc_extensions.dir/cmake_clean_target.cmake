file(REMOVE_RECURSE
  "liblfsc_extensions.a"
)
