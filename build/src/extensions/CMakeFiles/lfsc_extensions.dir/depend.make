# Empty dependencies file for lfsc_extensions.
# This may be replaced when dependencies are built.
