file(REMOVE_RECURSE
  "CMakeFiles/lfsc_extensions.dir/joint_policy.cpp.o"
  "CMakeFiles/lfsc_extensions.dir/joint_policy.cpp.o.d"
  "CMakeFiles/lfsc_extensions.dir/mbs.cpp.o"
  "CMakeFiles/lfsc_extensions.dir/mbs.cpp.o.d"
  "CMakeFiles/lfsc_extensions.dir/persistent.cpp.o"
  "CMakeFiles/lfsc_extensions.dir/persistent.cpp.o.d"
  "liblfsc_extensions.a"
  "liblfsc_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfsc_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
