file(REMOVE_RECURSE
  "CMakeFiles/lfsc_solver.dir/branch_and_bound.cpp.o"
  "CMakeFiles/lfsc_solver.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/lfsc_solver.dir/greedy_assignment.cpp.o"
  "CMakeFiles/lfsc_solver.dir/greedy_assignment.cpp.o.d"
  "CMakeFiles/lfsc_solver.dir/min_cost_flow.cpp.o"
  "CMakeFiles/lfsc_solver.dir/min_cost_flow.cpp.o.d"
  "liblfsc_solver.a"
  "liblfsc_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfsc_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
