
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/branch_and_bound.cpp" "src/solver/CMakeFiles/lfsc_solver.dir/branch_and_bound.cpp.o" "gcc" "src/solver/CMakeFiles/lfsc_solver.dir/branch_and_bound.cpp.o.d"
  "/root/repo/src/solver/greedy_assignment.cpp" "src/solver/CMakeFiles/lfsc_solver.dir/greedy_assignment.cpp.o" "gcc" "src/solver/CMakeFiles/lfsc_solver.dir/greedy_assignment.cpp.o.d"
  "/root/repo/src/solver/min_cost_flow.cpp" "src/solver/CMakeFiles/lfsc_solver.dir/min_cost_flow.cpp.o" "gcc" "src/solver/CMakeFiles/lfsc_solver.dir/min_cost_flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lfsc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lfsc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
