# Empty dependencies file for lfsc_solver.
# This may be replaced when dependencies are built.
