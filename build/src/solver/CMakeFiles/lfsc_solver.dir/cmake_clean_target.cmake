file(REMOVE_RECURSE
  "liblfsc_solver.a"
)
