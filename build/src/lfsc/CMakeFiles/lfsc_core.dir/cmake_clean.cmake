file(REMOVE_RECURSE
  "CMakeFiles/lfsc_core.dir/lfsc_policy.cpp.o"
  "CMakeFiles/lfsc_core.dir/lfsc_policy.cpp.o.d"
  "liblfsc_core.a"
  "liblfsc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfsc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
