
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lfsc/lfsc_policy.cpp" "src/lfsc/CMakeFiles/lfsc_core.dir/lfsc_policy.cpp.o" "gcc" "src/lfsc/CMakeFiles/lfsc_core.dir/lfsc_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lfsc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lfsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bandit/CMakeFiles/lfsc_bandit.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/lfsc_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
