# Empty dependencies file for lfsc_core.
# This may be replaced when dependencies are built.
