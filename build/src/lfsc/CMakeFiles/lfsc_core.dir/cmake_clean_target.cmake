file(REMOVE_RECURSE
  "liblfsc_core.a"
)
