file(REMOVE_RECURSE
  "liblfsc_sim.a"
)
