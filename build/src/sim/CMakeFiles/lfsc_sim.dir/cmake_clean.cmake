file(REMOVE_RECURSE
  "CMakeFiles/lfsc_sim.dir/context.cpp.o"
  "CMakeFiles/lfsc_sim.dir/context.cpp.o.d"
  "CMakeFiles/lfsc_sim.dir/coverage.cpp.o"
  "CMakeFiles/lfsc_sim.dir/coverage.cpp.o.d"
  "CMakeFiles/lfsc_sim.dir/environment.cpp.o"
  "CMakeFiles/lfsc_sim.dir/environment.cpp.o.d"
  "CMakeFiles/lfsc_sim.dir/generator.cpp.o"
  "CMakeFiles/lfsc_sim.dir/generator.cpp.o.d"
  "CMakeFiles/lfsc_sim.dir/simulator.cpp.o"
  "CMakeFiles/lfsc_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/lfsc_sim.dir/trace.cpp.o"
  "CMakeFiles/lfsc_sim.dir/trace.cpp.o.d"
  "liblfsc_sim.a"
  "liblfsc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfsc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
