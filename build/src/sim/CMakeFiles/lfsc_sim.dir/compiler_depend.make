# Empty compiler generated dependencies file for lfsc_sim.
# This may be replaced when dependencies are built.
