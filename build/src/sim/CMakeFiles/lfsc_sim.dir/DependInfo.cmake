
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/context.cpp" "src/sim/CMakeFiles/lfsc_sim.dir/context.cpp.o" "gcc" "src/sim/CMakeFiles/lfsc_sim.dir/context.cpp.o.d"
  "/root/repo/src/sim/coverage.cpp" "src/sim/CMakeFiles/lfsc_sim.dir/coverage.cpp.o" "gcc" "src/sim/CMakeFiles/lfsc_sim.dir/coverage.cpp.o.d"
  "/root/repo/src/sim/environment.cpp" "src/sim/CMakeFiles/lfsc_sim.dir/environment.cpp.o" "gcc" "src/sim/CMakeFiles/lfsc_sim.dir/environment.cpp.o.d"
  "/root/repo/src/sim/generator.cpp" "src/sim/CMakeFiles/lfsc_sim.dir/generator.cpp.o" "gcc" "src/sim/CMakeFiles/lfsc_sim.dir/generator.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/lfsc_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/lfsc_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/lfsc_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/lfsc_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lfsc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
