# Empty compiler generated dependencies file for lfsc_metrics.
# This may be replaced when dependencies are built.
