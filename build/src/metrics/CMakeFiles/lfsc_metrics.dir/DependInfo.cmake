
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/metrics.cpp" "src/metrics/CMakeFiles/lfsc_metrics.dir/metrics.cpp.o" "gcc" "src/metrics/CMakeFiles/lfsc_metrics.dir/metrics.cpp.o.d"
  "/root/repo/src/metrics/recorder.cpp" "src/metrics/CMakeFiles/lfsc_metrics.dir/recorder.cpp.o" "gcc" "src/metrics/CMakeFiles/lfsc_metrics.dir/recorder.cpp.o.d"
  "/root/repo/src/metrics/regret.cpp" "src/metrics/CMakeFiles/lfsc_metrics.dir/regret.cpp.o" "gcc" "src/metrics/CMakeFiles/lfsc_metrics.dir/regret.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lfsc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lfsc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
