file(REMOVE_RECURSE
  "CMakeFiles/lfsc_metrics.dir/metrics.cpp.o"
  "CMakeFiles/lfsc_metrics.dir/metrics.cpp.o.d"
  "CMakeFiles/lfsc_metrics.dir/recorder.cpp.o"
  "CMakeFiles/lfsc_metrics.dir/recorder.cpp.o.d"
  "CMakeFiles/lfsc_metrics.dir/regret.cpp.o"
  "CMakeFiles/lfsc_metrics.dir/regret.cpp.o.d"
  "liblfsc_metrics.a"
  "liblfsc_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfsc_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
