file(REMOVE_RECURSE
  "liblfsc_metrics.a"
)
