file(REMOVE_RECURSE
  "liblfsc_bandit.a"
)
