# Empty compiler generated dependencies file for lfsc_bandit.
# This may be replaced when dependencies are built.
