
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bandit/exp3m.cpp" "src/bandit/CMakeFiles/lfsc_bandit.dir/exp3m.cpp.o" "gcc" "src/bandit/CMakeFiles/lfsc_bandit.dir/exp3m.cpp.o.d"
  "/root/repo/src/bandit/partition.cpp" "src/bandit/CMakeFiles/lfsc_bandit.dir/partition.cpp.o" "gcc" "src/bandit/CMakeFiles/lfsc_bandit.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lfsc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
