file(REMOVE_RECURSE
  "CMakeFiles/lfsc_bandit.dir/exp3m.cpp.o"
  "CMakeFiles/lfsc_bandit.dir/exp3m.cpp.o.d"
  "CMakeFiles/lfsc_bandit.dir/partition.cpp.o"
  "CMakeFiles/lfsc_bandit.dir/partition.cpp.o.d"
  "liblfsc_bandit.a"
  "liblfsc_bandit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfsc_bandit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
