# Empty dependencies file for lfsc_tests.
# This may be replaced when dependencies are built.
