
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_branch_and_bound.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_branch_and_bound.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_branch_and_bound.cpp.o.d"
  "/root/repo/tests/test_context.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_context.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_context.cpp.o.d"
  "/root/repo/tests/test_coverage.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_coverage.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_coverage.cpp.o.d"
  "/root/repo/tests/test_csv_table.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_csv_table.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_csv_table.cpp.o.d"
  "/root/repo/tests/test_environment.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_environment.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_environment.cpp.o.d"
  "/root/repo/tests/test_estimators.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_estimators.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_estimators.cpp.o.d"
  "/root/repo/tests/test_exp3m.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_exp3m.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_exp3m.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_extra_baselines.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_extra_baselines.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_extra_baselines.cpp.o.d"
  "/root/repo/tests/test_flags.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_flags.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_flags.cpp.o.d"
  "/root/repo/tests/test_generator.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_generator.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_generator.cpp.o.d"
  "/root/repo/tests/test_greedy_assignment.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_greedy_assignment.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_greedy_assignment.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_lagrange.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_lagrange.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_lagrange.cpp.o.d"
  "/root/repo/tests/test_lfsc_config_sweep.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_lfsc_config_sweep.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_lfsc_config_sweep.cpp.o.d"
  "/root/repo/tests/test_lfsc_policy.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_lfsc_policy.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_lfsc_policy.cpp.o.d"
  "/root/repo/tests/test_log.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_log.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_log.cpp.o.d"
  "/root/repo/tests/test_math_util.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_math_util.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_math_util.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_min_cost_flow.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_min_cost_flow.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_min_cost_flow.cpp.o.d"
  "/root/repo/tests/test_oracle.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_oracle.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_oracle.cpp.o.d"
  "/root/repo/tests/test_paper_setup.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_paper_setup.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_paper_setup.cpp.o.d"
  "/root/repo/tests/test_partition.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_partition.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_partition.cpp.o.d"
  "/root/repo/tests/test_persistence_state.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_persistence_state.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_persistence_state.cpp.o.d"
  "/root/repo/tests/test_policy_contract.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_policy_contract.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_policy_contract.cpp.o.d"
  "/root/repo/tests/test_radio.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_radio.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_radio.cpp.o.d"
  "/root/repo/tests/test_radio_simulator.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_radio_simulator.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_radio_simulator.cpp.o.d"
  "/root/repo/tests/test_recorder.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_recorder.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_recorder.cpp.o.d"
  "/root/repo/tests/test_regret.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_regret.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_regret.cpp.o.d"
  "/root/repo/tests/test_replication.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_replication.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_replication.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_runner.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_runner.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_runner.cpp.o.d"
  "/root/repo/tests/test_series_io.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_series_io.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_series_io.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/lfsc_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/lfsc_tests.dir/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/lfsc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/extensions/CMakeFiles/lfsc_extensions.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/lfsc_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/lfsc/CMakeFiles/lfsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lfsc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/bandit/CMakeFiles/lfsc_bandit.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/lfsc_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/lfsc_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lfsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lfsc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
