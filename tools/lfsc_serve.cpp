// lfsc_serve — the resident MBS controller (DESIGN.md §14, §16): the
// batch framework's learner, checkpoints and overload machinery composed
// into a long-running service that ingests tasks over a line protocol,
// ticks slots on command or on a wall-clock timer, reconfigures live,
// survives kill -9 via supervised generation-checkpoint recovery, and
// replaces itself with zero downtime via `handoff` + `--takeover`.
//
// Examples:
//   lfsc_serve --checkpoint /var/lib/lfsc/ckpt --checkpoint-every 100
//   lfsc_serve --resume-latest --checkpoint /var/lib/lfsc/ckpt
//   lfsc_serve --tick-ms 50 --slot-budget-us 200 --admission-queue 2400
//   lfsc_serve --socket /run/lfsc.sock --instances 4 --max-peers 128
//   lfsc_serve --takeover --socket /run/lfsc.sock --checkpoint ckpt
//
// Protocol (one line in, one line out — grammar in src/serve/protocol.h):
//   task <wd> <in_mbit> <out_mbit> <cpu|gpu|cpugpu> <m>:<u>:<v>:<q>[,...]
//   tick | reconfig k=v ... | checkpoint | stats | telemetry | handoff |
//   drain | shutdown
//
// SIGTERM/SIGINT drain gracefully: finish the in-flight slot, write a
// final checkpoint generation, exit 0. SIGUSR2 triggers the same handoff
// as the `handoff` command: final checkpoint, pass the listening socket
// to a `--takeover` successor over `<socket>.handoff` via SCM_RIGHTS
// (fallback: release and let the successor rebind), exit 0.
//
// Socket hardening: peers are authenticated by SO_PEERCRED uid (own
// euid + root, extended by --allow-uids), capped by --max-peers, and
// served through per-peer bounded output buffers — a peer that stops
// reading is evicted at --peer-buffer bytes instead of ever blocking
// the slot tick.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/flags.h"
#include "common/simd.h"
#include "serve/serve.h"

namespace {

using namespace lfsc;
using Clock = std::chrono::steady_clock;

volatile std::sig_atomic_t g_drain = 0;
volatile std::sig_atomic_t g_handoff = 0;

extern "C" void handle_stop_signal(int) { g_drain = 1; }
extern "C" void handle_handoff_signal(int) { g_handoff = 1; }

/// One connected peer (stdin or an accepted socket client): its fd pair,
/// the line assembler that keeps partial commands across reads, and the
/// bounded output buffer that absorbs partial writes.
struct Peer {
  int in_fd = -1;
  int out_fd = -1;
  serve::LineChunker chunker;
  std::string outbuf;        ///< bytes owed to the peer
  std::size_t out_off = 0;   ///< already-written prefix of outbuf
};

bool set_nonblock(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Blocking best-effort write (stdin-mode stdout, handoff acks). The
/// serve loop's socket peers go through Peer::outbuf instead.
bool write_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool fill_unix_addr(const std::string& path, sockaddr_un& addr) {
  addr = sockaddr_un{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    errno = ENAMETOOLONG;
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

/// Blocking connect to a Unix socket path; returns the fd or -1.
int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (!fill_unix_addr(path, addr)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

enum class ListenStatus { kOk, kLive, kError };

/// Binds and listens on `path`. A stale socket file (previous process
/// died without cleanup) is detected by connect-probing first: a live
/// peer answering means another service owns the path, and we must
/// refuse to start rather than ::unlink its socket out from under it.
ListenStatus listen_unix(const std::string& path, int backlog, int& fd_out,
                         std::string& detail) {
  sockaddr_un addr{};
  if (!fill_unix_addr(path, addr)) {
    detail = std::strerror(errno);
    return ListenStatus::kError;
  }
  const int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (probe >= 0) {
    if (::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      ::close(probe);
      detail = "a live service is already listening on " + path;
      return ListenStatus::kLive;
    }
    const int err = errno;
    ::close(probe);
    if (err == ECONNREFUSED) {
      ::unlink(path.c_str());  // stale socket of a dead process
    } else if (err != ENOENT) {
      detail = std::string("probing ") + path + ": " + std::strerror(err);
      return ListenStatus::kError;
    }
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    detail = std::strerror(errno);
    return ListenStatus::kError;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, backlog) < 0 || !set_nonblock(fd)) {
    detail = std::strerror(errno);
    ::close(fd);
    return ListenStatus::kError;
  }
  fd_out = fd;
  return ListenStatus::kOk;
}

/// Sends `payload` plus one fd over a Unix socket (SCM_RIGHTS).
bool send_fd(int via, const std::string& payload, int fd) {
  iovec iov{};
  iov.iov_base = const_cast<char*>(payload.data());
  iov.iov_len = payload.size();
  alignas(cmsghdr) char ctrl[CMSG_SPACE(sizeof(int))] = {};
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = ctrl;
  msg.msg_controllen = sizeof ctrl;
  cmsghdr* cm = CMSG_FIRSTHDR(&msg);
  cm->cmsg_level = SOL_SOCKET;
  cm->cmsg_type = SCM_RIGHTS;
  cm->cmsg_len = CMSG_LEN(sizeof(int));
  std::memcpy(CMSG_DATA(cm), &fd, sizeof(int));
  for (;;) {
    const ssize_t n = ::sendmsg(via, &msg, 0);
    if (n < 0 && errno == EINTR) continue;
    return n == static_cast<ssize_t>(payload.size());
  }
}

/// Receives one message with an attached fd. Returns the fd (or -1) and
/// fills `payload` with the message bytes.
int recv_fd(int via, std::string& payload) {
  char buf[256];
  iovec iov{};
  iov.iov_base = buf;
  iov.iov_len = sizeof buf;
  alignas(cmsghdr) char ctrl[CMSG_SPACE(sizeof(int))] = {};
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = ctrl;
  msg.msg_controllen = sizeof ctrl;
  ssize_t n = 0;
  for (;;) {
    n = ::recvmsg(via, &msg, 0);
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  if (n <= 0) return -1;
  payload.assign(buf, static_cast<std::size_t>(n));
  int fd = -1;
  for (cmsghdr* cm = CMSG_FIRSTHDR(&msg); cm != nullptr;
       cm = CMSG_NXTHDR(&msg, cm)) {
    if (cm->cmsg_level == SOL_SOCKET && cm->cmsg_type == SCM_RIGHTS &&
        cm->cmsg_len >= CMSG_LEN(sizeof(int))) {
      std::memcpy(&fd, CMSG_DATA(cm), sizeof(int));
    }
  }
  return fd;
}

bool wait_readable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0 && errno == EINTR) continue;
    return ready > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser parser("lfsc_serve",
                    "resident MBS controller over a line protocol");
  const int* scns = parser.add_int("scns", 30, "number of small cell nodes");
  const int* capacity =
      parser.add_int("capacity", 20, "per-SCN communication capacity c");
  const double* alpha =
      parser.add_double("alpha", 15.0, "QoS threshold alpha (1c)");
  const double* beta =
      parser.add_double("beta", 27.0, "resource capacity beta (1d)");
  const int* seed = parser.add_int("seed", 42, "learner seed base");
  const int* h_t = parser.add_int("h", 3, "hypercube parts per dimension");
  const double* gamma =
      parser.add_double("gamma", 0.0, "LFSC exploration rate (0 = auto)");
  const int* shards = parser.add_int(
      "shards", 0, "parallel per-SCN shards on the shared pool (0 = serial)");
  const int* audit_stride = parser.add_int(
      "audit-stride", 0, "audit LFSC invariants every N slots (0 = never)");
  const int* slot_budget_us = parser.add_int(
      "slot-budget-us", 0, "per-slot compute budget in us (0 = unbudgeted)");
  const std::string* solver_flag = parser.add_string(
      "solver", "auto",
      "LFSC assignment solver: auto | greedy | packed | radix | flow | bnb");
  const bool* improve_flag = parser.add_bool(
      "improve", false,
      "spend leftover --slot-budget-us refining the greedy assignment with "
      "shift-swap moves (no-op without a budget)");
  const int* admission_queue = parser.add_int(
      "admission-queue", 0, "admission backlog bound in tasks (0 = off)");
  const double* admission_capacity = parser.add_double(
      "admission-capacity", 1.0, "admission drain rate, multiple of c*M");
  const int* admission_seed = parser.add_int(
      "admission-seed", 0xADC0, "seed of the deterministic shed ordering");
  const int* max_pending = parser.add_int(
      "max-pending", 0,
      "ingress bound: shed `task` lines with `err busy` once an instance "
      "holds this many queued tasks (0 = unbounded)");
  const int* telemetry_interval = parser.add_int(
      "telemetry-interval", 100, "slots between telemetry samples");
  const std::string* checkpoint_prefix = parser.add_string(
      "checkpoint", "",
      "generation-checkpoint prefix (writes <prefix>.g<n>)");
  const int* checkpoint_every = parser.add_int(
      "checkpoint-every", 0, "slots between periodic checkpoints (0 = off)");
  const int* checkpoint_keep =
      parser.add_int("checkpoint-keep", 3, "generations kept per instance");
  const bool* resume_latest = parser.add_bool(
      "resume-latest", false,
      "recover from the newest valid checkpoint generation before serving");
  const int* instances =
      parser.add_int("instances", 1, "independent LFSC instances");
  const int* tick_ms = parser.add_int(
      "tick-ms", 0,
      "wall-clock slot period in ms (0 = slots advance only on `tick`)");
  const std::string* socket_path = parser.add_string(
      "socket", "", "serve a Unix domain socket instead of stdin/stdout");
  const int* listen_backlog = parser.add_int(
      "listen-backlog", 64, "pending-connection backlog of the Unix socket");
  const int* max_peers = parser.add_int(
      "max-peers", 64,
      "connected-client cap; further connects get `err busy` and close");
  const int* peer_buffer = parser.add_int(
      "peer-buffer", 1 << 20,
      "per-peer output buffer bound in bytes; a client that stops reading "
      "is evicted at this bound instead of blocking the service");
  const std::string* allow_uids_flag = parser.add_string(
      "allow-uids", "",
      "comma-separated uids allowed to connect besides root and our own "
      "euid (SO_PEERCRED check)");
  const bool* takeover = parser.add_bool(
      "takeover", false,
      "succeed a handing-off predecessor: receive the listening socket "
      "over <socket>.handoff (SCM_RIGHTS), resume from its final "
      "checkpoint, and serve without dropping a queued task");
  const int* handoff_timeout_ms = parser.add_int(
      "handoff-timeout-ms", 10000,
      "how long a handoff waits for its successor (and a takeover for "
      "its predecessor) before falling back to release-and-rebind");
  const bool* force_scalar = parser.add_bool(
      "force-scalar", false, "disable the SIMD kernel dispatch");

  switch (parser.parse(argc, argv, std::cerr)) {
    case FlagParser::Result::kHelp:
      return 0;
    case FlagParser::Result::kError:
      return 2;
    case FlagParser::Result::kOk:
      break;
  }

  const auto fail = [](const std::string& message) {
    std::cerr << "lfsc_serve: " << message << "\n";
    return 2;
  };
  if (*scns <= 0) return fail("--scns must be positive");
  if (*capacity <= 0) return fail("--capacity must be positive");
  if (*alpha <= 0.0) return fail("--alpha must be positive");
  if (*beta <= 0.0) return fail("--beta must be positive");
  if (*h_t <= 0) return fail("--h must be positive");
  if (*gamma < 0.0 || *gamma > 1.0) return fail("--gamma must be in [0, 1]");
  if (*shards < 0) return fail("--shards must be >= 0");
  if (*audit_stride < 0) return fail("--audit-stride must be >= 0");
  if (*slot_budget_us < 0) return fail("--slot-budget-us must be >= 0");
  SolverKind solver_kind = SolverKind::kAuto;
  if (!parse_solver(*solver_flag, solver_kind)) {
    return fail("--solver must be one of auto, greedy, packed, radix, flow, "
                "bnb");
  }
  if (*admission_queue < 0) return fail("--admission-queue must be >= 0");
  if (*admission_capacity <= 0.0) {
    return fail("--admission-capacity must be > 0");
  }
  if (*max_pending < 0) return fail("--max-pending must be >= 0");
  if (*telemetry_interval < 0) return fail("--telemetry-interval must be >= 0");
  if (*checkpoint_every < 0) return fail("--checkpoint-every must be >= 0");
  if (*checkpoint_keep < 1) return fail("--checkpoint-keep must be >= 1");
  if (*instances < 1) return fail("--instances must be >= 1");
  if (*tick_ms < 0) return fail("--tick-ms must be >= 0");
  if (*listen_backlog < 1 || *listen_backlog > 4096) {
    return fail("--listen-backlog must be in [1, 4096]");
  }
  if (*max_peers < 1) return fail("--max-peers must be >= 1");
  if (*peer_buffer < 4096) return fail("--peer-buffer must be >= 4096");
  if (*handoff_timeout_ms < 1) return fail("--handoff-timeout-ms must be >= 1");
  if ((*checkpoint_every > 0 || *resume_latest) && checkpoint_prefix->empty()) {
    return fail("--checkpoint-every/--resume-latest require --checkpoint");
  }
  if (*takeover && (socket_path->empty() || checkpoint_prefix->empty())) {
    return fail("--takeover requires --socket and --checkpoint");
  }
  std::vector<unsigned long> allow_uids;
  if (!allow_uids_flag->empty()) {
    std::size_t start = 0;
    const std::string& spec = *allow_uids_flag;
    while (start <= spec.size()) {
      const std::size_t comma = spec.find(',', start);
      const std::string token = spec.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start);
      if (token.empty() ||
          token.find_first_not_of("0123456789") != std::string::npos) {
        return fail("--allow-uids must be a comma-separated list of numeric "
                    "uids, got '" + token + "'");
      }
      allow_uids.push_back(std::strtoul(token.c_str(), nullptr, 10));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  if (*force_scalar) simd::set_force_scalar(true);

  serve::ServeConfig config;
  config.setup.set_num_scns(*scns);
  config.setup.net.capacity_c = *capacity;
  config.setup.net.qos_alpha = *alpha;
  config.setup.net.resource_beta = *beta;
  config.setup.set_seed(static_cast<std::uint64_t>(*seed));
  config.setup.lfsc.parts_per_dim = static_cast<std::size_t>(*h_t);
  config.setup.lfsc.gamma = *gamma;
  config.setup.lfsc.audit_stride = static_cast<std::size_t>(*audit_stride);
  config.setup.lfsc.solver = solver_kind;
  config.setup.lfsc.improve = *improve_flag;
  if (*shards > 0) {
    config.setup.lfsc.parallel_scns = true;
    config.setup.lfsc.shards = *shards;
  }
  config.instances = *instances;
  config.slot_budget_us = static_cast<std::uint32_t>(*slot_budget_us);
  config.admission.max_queue = *admission_queue;
  config.admission.capacity_factor = *admission_capacity;
  config.admission.seed = static_cast<std::uint64_t>(*admission_seed);
  config.max_pending = *max_pending;
  config.telemetry_interval = *telemetry_interval;
  config.checkpoint_prefix = *checkpoint_prefix;
  config.checkpoint_every = *checkpoint_every;
  config.checkpoint_keep = *checkpoint_keep;

  std::unique_ptr<serve::ServeController> controller;
  try {
    controller = std::make_unique<serve::ServeController>(config);
    // --takeover resumes below, after the predecessor's final checkpoint
    // is guaranteed on disk (i.e. once its handoff listener answers).
    if (*resume_latest && !*takeover && !controller->resume_latest()) {
      std::cerr << "lfsc_serve: no recoverable checkpoint; starting cold\n";
    }
  } catch (const std::exception& e) {
    return fail(e.what());
  }

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGUSR2, handle_handoff_signal);
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill us

  telemetry::Registry& serve_metrics = controller->serve_telemetry();
  telemetry::Counter& peers_accepted =
      serve_metrics.counter("serve.peer.accepted", "peers");
  telemetry::Counter& peers_rejected_cap =
      serve_metrics.counter("serve.peer.rejected_cap", "peers");
  telemetry::Counter& peers_rejected_uid =
      serve_metrics.counter("serve.peer.rejected_uid", "peers");
  telemetry::Counter& peers_evicted_slow =
      serve_metrics.counter("serve.peer.evicted_slow", "peers");
  telemetry::Counter& peers_disconnected =
      serve_metrics.counter("serve.peer.disconnects", "peers");

  int listen_fd = -1;
  std::vector<Peer> peers;

  if (*takeover) {
    // Phase 1: ask the predecessor for the listening socket. Its handoff
    // listener appears only after the final checkpoint generation is on
    // disk, so connecting implies the state we resume is complete.
    const std::string handoff_path = *socket_path + ".handoff";
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(*handoff_timeout_ms);
    while (Clock::now() < deadline) {
      const int conn = connect_unix(handoff_path);
      if (conn >= 0) {
        std::string header;
        const int fd = recv_fd(conn, header);
        if (fd >= 0 && header.rfind("lfsc-handoff/1", 0) == 0) {
          if (!controller->resume_latest()) {
            std::cerr << "lfsc_serve: takeover: no recoverable checkpoint; "
                         "starting cold\n";
          }
          // Ack only now: it tells the predecessor we own both the
          // socket and the state, so it may exit.
          write_all(conn, "ok\n");
          set_nonblock(fd);
          listen_fd = fd;
          while (!header.empty() &&
                 (header.back() == '\n' || header.back() == '\r')) {
            header.pop_back();
          }
          std::cerr << "lfsc_serve: takeover: received " << *socket_path
                    << " from predecessor (" << header << ")\n";
        } else if (fd >= 0) {
          ::close(fd);
        }
        ::close(conn);
        if (listen_fd >= 0) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (listen_fd < 0) {
      // Phase 2 (fallback): the predecessor released the path (or died
      // after checkpointing). Resume from its newest generation and
      // rebind; retry while the old socket still answers the probe.
      std::cerr << "lfsc_serve: takeover: no fd handoff on " << handoff_path
                << "; falling back to rebind\n";
      if (!controller->resume_latest()) {
        std::cerr << "lfsc_serve: takeover: no recoverable checkpoint; "
                     "starting cold\n";
      }
      const auto rebind_deadline =
          Clock::now() + std::chrono::milliseconds(*handoff_timeout_ms);
      for (;;) {
        std::string detail;
        const ListenStatus status =
            listen_unix(*socket_path, *listen_backlog, listen_fd, detail);
        if (status == ListenStatus::kOk) break;
        if (status == ListenStatus::kError ||
            Clock::now() >= rebind_deadline) {
          return fail("takeover: cannot listen on " + *socket_path + ": " +
                      detail);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    std::cerr << "lfsc_serve: listening on " << *socket_path << "\n";
  } else if (socket_path->empty()) {
    peers.push_back({STDIN_FILENO, STDOUT_FILENO, serve::LineChunker(), {}, 0});
  } else {
    std::string detail;
    const ListenStatus status =
        listen_unix(*socket_path, *listen_backlog, listen_fd, detail);
    if (status != ListenStatus::kOk) {
      return fail("cannot listen on " + *socket_path + ": " + detail);
    }
    std::cerr << "lfsc_serve: listening on " << *socket_path << "\n";
  }

  const auto uid_allowed = [&](uid_t uid) {
    if (uid == 0 || uid == ::geteuid()) return true;
    return std::find(allow_uids.begin(), allow_uids.end(),
                     static_cast<unsigned long>(uid)) != allow_uids.end();
  };

  const auto close_peer = [](Peer& peer) {
    if (peer.in_fd >= 0 && peer.in_fd != STDIN_FILENO) ::close(peer.in_fd);
    if (peer.out_fd >= 0 && peer.out_fd != peer.in_fd &&
        peer.out_fd != STDOUT_FILENO) {
      ::close(peer.out_fd);
    }
    peer.in_fd = -1;
    peer.out_fd = -1;
  };

  /// Writes as much pending output as the peer accepts right now.
  /// EAGAIN leaves the rest for the next POLLOUT; a hard error reports
  /// the peer dead (false).
  const auto flush_peer = [](Peer& peer) -> bool {
    while (peer.out_off < peer.outbuf.size()) {
      const ssize_t n = ::write(peer.out_fd, peer.outbuf.data() + peer.out_off,
                                peer.outbuf.size() - peer.out_off);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        return false;
      }
      peer.out_off += static_cast<std::size_t>(n);
    }
    peer.outbuf.clear();
    peer.out_off = 0;
    return true;
  };

  const std::size_t peer_buffer_bound = static_cast<std::size_t>(*peer_buffer);
  const auto queue_line = [&](Peer& peer, const std::string& text) {
    if (peer.in_fd < 0) return;
    if (peer.outbuf.size() - peer.out_off + text.size() + 1 >
        peer_buffer_bound) {
      // A peer that stopped reading: evicting it at the bound keeps the
      // slot tick unblocked and the buffer memory bounded.
      peers_evicted_slow.add(1);
      close_peer(peer);
      return;
    }
    peer.outbuf.append(text);
    peer.outbuf.push_back('\n');
    if (!flush_peer(peer)) {
      peers_disconnected.add(1);
      close_peer(peer);
    }
  };

  const auto drain_pushes = [&]() {
    while (auto push = controller->take_push()) {
      for (Peer& peer : peers) queue_line(peer, "push " + *push);
    }
  };

  using std::chrono::milliseconds;
  const bool timed = *tick_ms > 0;
  const auto period = milliseconds(*tick_ms);
  auto next_due = Clock::now() + period;

  // One line of protocol at a time, interleaved with timer ticks. The
  // drain/handoff signals are honored between commands/slots — never
  // mid-slot — so the in-flight slot always completes before the final
  // checkpoint.
  bool stop = false;
  int exit_code = 0;
  std::string io_buffer(1 << 16, '\0');
  while (!stop) {
    if (g_handoff != 0) {
      g_handoff = 0;
      const std::string response = controller->handle_line("handoff");
      std::cerr << "lfsc_serve: SIGUSR2 handoff: " << response << "\n";
    }
    if (controller->handoff_requested()) break;
    if (g_drain != 0) {
      try {
        controller->drain();
      } catch (const std::exception& e) {
        std::cerr << "lfsc_serve: drain checkpoint failed: " << e.what()
                  << "\n";
        exit_code = 1;
      }
      std::cerr << "lfsc_serve: drained at slot "
                << controller->completed_slots() << "\n";
      break;
    }

    int timeout = -1;
    if (timed) {
      const auto now = Clock::now();
      if (now >= next_due) {
        // Count whole periods the tick grid fell behind; skipped slots
        // are not made up (the grid slides), only accounted.
        const auto late =
            std::chrono::duration_cast<milliseconds>(now - next_due);
        const std::uint64_t missed =
            static_cast<std::uint64_t>(late.count()) /
            static_cast<std::uint64_t>(period.count());
        if (missed > 0) controller->note_deadline_miss(missed);
        controller->tick();
        drain_pushes();
        next_due += period * (1 + missed);
        continue;
      }
      timeout = static_cast<int>(
                    std::chrono::duration_cast<milliseconds>(next_due - now)
                        .count()) +
                1;
    }

    std::vector<pollfd> fds;
    if (listen_fd >= 0) fds.push_back({listen_fd, POLLIN, 0});
    for (const Peer& peer : peers) {
      // poll ignores negative fds, so dead peers keep their slot and the
      // index math stays aligned. A peer that owes output is polled for
      // writability only: not reading its next command while we still
      // owe it bytes is the backpressure that bounds both buffers.
      const short events =
          peer.outbuf.size() > peer.out_off ? POLLOUT : POLLIN;
      fds.push_back({peer.in_fd, events, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks g_drain
      std::cerr << "lfsc_serve: poll failed: " << std::strerror(errno) << "\n";
      exit_code = 1;
      break;
    }
    if (ready == 0) continue;  // timer due; handled at loop top

    std::size_t fd_index = 0;
    if (listen_fd >= 0) {
      if ((fds[0].revents & POLLIN) != 0) {
        // Drain the whole accept backlog: one wakeup may announce many
        // queued connections.
        for (;;) {
          const int client = ::accept4(listen_fd, nullptr, nullptr,
                                       SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (client < 0) {
            if (errno == EINTR) continue;
            break;  // EAGAIN: backlog drained
          }
          const std::size_t live = static_cast<std::size_t>(std::count_if(
              peers.begin(), peers.end(),
              [](const Peer& peer) { return peer.in_fd >= 0; }));
          if (live >= static_cast<std::size_t>(*max_peers)) {
            const char busy[] = "err busy\n";
            (void)!::write(client, busy, sizeof busy - 1);  // best effort
            ::close(client);
            peers_rejected_cap.add(1);
            continue;
          }
          ucred cred{};
          socklen_t cred_len = sizeof cred;
          if (::getsockopt(client, SOL_SOCKET, SO_PEERCRED, &cred,
                           &cred_len) != 0 ||
              !uid_allowed(cred.uid)) {
            const char denied[] = "err unauthorized\n";
            (void)!::write(client, denied, sizeof denied - 1);
            ::close(client);
            peers_rejected_uid.add(1);
            continue;
          }
          peers.push_back({client, client, serve::LineChunker(), {}, 0});
          peers_accepted.add(1);
        }
      }
      fd_index = 1;
    }

    for (std::size_t p = 0; p < peers.size() && fd_index + p < fds.size();
         ++p) {
      const short revents = fds[fd_index + p].revents;
      if (peers[p].in_fd < 0 || revents == 0) continue;
      if ((revents & POLLOUT) != 0) {
        if (!flush_peer(peers[p])) {
          peers_disconnected.add(1);
          close_peer(peers[p]);
        }
        continue;  // resume reading on the next wakeup once caught up
      }
      if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const ssize_t n =
          ::read(peers[p].in_fd, io_buffer.data(), io_buffer.size());
      if (n > 0) {
        peers[p].chunker.feed(
            std::string_view(io_buffer.data(), static_cast<std::size_t>(n)));
        while (auto line = peers[p].chunker.next()) {
          const std::string response =
              line->oversized
                  ? controller->note_oversized_line(
                        serve::LineChunker::kDefaultMaxLine)
                  : controller->handle_line(line->text);
          queue_line(peers[p], response);
          drain_pushes();
          if (controller->shutdown_requested()) {
            stop = true;
            break;
          }
          if (controller->handoff_requested()) {
            // Stop here: anything a client pipelined after `handoff` on
            // this connection belongs to the successor.
            stop = true;
            break;
          }
          if (controller->drained()) {
            // A protocol `drain` ends the process like a signal drain:
            // state is checkpointed, the supervisor restarts us.
            stop = true;
            break;
          }
          if (peers[p].in_fd < 0) break;  // evicted mid-batch
        }
        if (stop) break;
      } else if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN &&
                            errno != EWOULDBLOCK)) {
        if (peers[p].in_fd == STDIN_FILENO) {
          // stdin closed: the driving process is gone. Drain like a
          // SIGTERM so nothing is lost.
          g_drain = 1;
        } else {
          peers_disconnected.add(1);
          close_peer(peers[p]);
        }
      }
    }
    if (g_drain != 0) continue;  // handle at loop top (drain + exit)
    peers.erase(std::remove_if(peers.begin(), peers.end(),
                               [](const Peer& peer) { return peer.in_fd < 0; }),
                peers.end());
    if (listen_fd < 0 && peers.empty()) break;  // stdin mode, stdin gone
  }

  // Best-effort flush of everything still owed (the `ok handoff ...` /
  // final responses), within a short window so a stalled peer cannot
  // hold the process.
  {
    const auto flush_deadline = Clock::now() + milliseconds(2000);
    for (;;) {
      std::vector<pollfd> fds;
      for (const Peer& peer : peers) {
        fds.push_back({peer.outbuf.size() > peer.out_off ? peer.out_fd : -1,
                       POLLOUT, 0});
      }
      bool pending = false;
      for (const pollfd& pfd : fds) pending = pending || pfd.fd >= 0;
      if (!pending || Clock::now() >= flush_deadline) break;
      const int ready = ::poll(fds.data(), fds.size(), 100);
      if (ready < 0 && errno != EINTR) break;
      for (std::size_t p = 0; p < peers.size(); ++p) {
        if (fds[p].fd >= 0 && (fds[p].revents & (POLLOUT | POLLERR)) != 0) {
          if (!flush_peer(peers[p])) close_peer(peers[p]);
        }
      }
    }
  }

  bool socket_passed = false;
  if (controller->handoff_requested() && listen_fd >= 0) {
    // Zero-downtime handoff (DESIGN.md §16): the final checkpoint is
    // already on disk (written by the `handoff` command). Offer the
    // listening socket on <socket>.handoff; if no successor collects it
    // in time, fall back to release-and-rebind: close + unlink so a
    // later --takeover can bind fresh.
    const std::string handoff_path = *socket_path + ".handoff";
    ::unlink(handoff_path.c_str());
    int hand_fd = -1;
    std::string detail;
    if (listen_unix(handoff_path, 1, hand_fd, detail) == ListenStatus::kOk) {
      if (wait_readable(hand_fd, *handoff_timeout_ms)) {
        int conn = -1;
        for (;;) {
          conn = ::accept(hand_fd, nullptr, nullptr);
          if (conn < 0 && errno == EINTR) continue;
          break;
        }
        if (conn >= 0) {
          const std::string header =
              "lfsc-handoff/1 generation=" +
              std::to_string(controller->checkpoint_generation() - 1) + "\n";
          if (send_fd(conn, header, listen_fd) &&
              wait_readable(conn, *handoff_timeout_ms)) {
            char ack[8] = {};
            ssize_t got = 0;
            for (;;) {
              got = ::read(conn, ack, sizeof ack - 1);
              if (got < 0 && errno == EINTR) continue;
              break;
            }
            socket_passed = got >= 2 && std::strncmp(ack, "ok", 2) == 0;
          }
          ::close(conn);
        }
      }
      ::close(hand_fd);
    } else {
      std::cerr << "lfsc_serve: handoff listener failed (" << detail
                << "); releasing the socket instead\n";
    }
    ::unlink(handoff_path.c_str());
    if (socket_passed) {
      std::cerr << "lfsc_serve: handoff complete; successor owns "
                << *socket_path << "\n";
      ::close(listen_fd);
      listen_fd = -1;  // the successor serves the path; do not unlink it
    } else {
      std::cerr << "lfsc_serve: no successor claimed the socket within "
                << *handoff_timeout_ms << "ms; releasing " << *socket_path
                << " for rebind\n";
    }
  }

  if (listen_fd >= 0) {
    ::close(listen_fd);
    ::unlink(socket_path->c_str());
  }
  for (Peer& peer : peers) close_peer(peer);
  return exit_code;
}
