// lfsc_serve — the resident MBS controller (DESIGN.md §14): the batch
// framework's learner, checkpoints and overload machinery composed into
// a long-running service that ingests tasks over a line protocol,
// ticks slots on command or on a wall-clock timer, reconfigures live,
// and survives kill -9 via supervised generation-checkpoint recovery.
//
// Examples:
//   lfsc_serve --checkpoint /var/lib/lfsc/ckpt --checkpoint-every 100
//   lfsc_serve --resume-latest --checkpoint /var/lib/lfsc/ckpt
//   lfsc_serve --tick-ms 50 --slot-budget-us 200 --admission-queue 2400
//   lfsc_serve --socket /run/lfsc.sock --instances 4
//
// Protocol (one line in, one line out — grammar in src/serve/protocol.h):
//   task <wd> <in_mbit> <out_mbit> <cpu|gpu|cpugpu> <m>:<u>:<v>:<q>[,...]
//   tick | reconfig k=v ... | checkpoint | stats | drain | shutdown
//
// SIGTERM/SIGINT drain gracefully: finish the in-flight slot, write a
// final checkpoint generation, exit 0.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/flags.h"
#include "common/simd.h"
#include "serve/serve.h"

namespace {

using namespace lfsc;

volatile std::sig_atomic_t g_drain = 0;

extern "C" void handle_stop_signal(int) { g_drain = 1; }

/// One connected peer (stdin or an accepted socket client): its fd pair
/// and the line assembler that keeps partial commands across reads.
struct Peer {
  int in_fd = -1;
  int out_fd = -1;
  serve::LineChunker chunker;
};

bool write_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

int listen_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    errno = ENAMETOOLONG;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 8) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser parser("lfsc_serve",
                    "resident MBS controller over a line protocol");
  const int* scns = parser.add_int("scns", 30, "number of small cell nodes");
  const int* capacity =
      parser.add_int("capacity", 20, "per-SCN communication capacity c");
  const double* alpha =
      parser.add_double("alpha", 15.0, "QoS threshold alpha (1c)");
  const double* beta =
      parser.add_double("beta", 27.0, "resource capacity beta (1d)");
  const int* seed = parser.add_int("seed", 42, "learner seed base");
  const int* h_t = parser.add_int("h", 3, "hypercube parts per dimension");
  const double* gamma =
      parser.add_double("gamma", 0.0, "LFSC exploration rate (0 = auto)");
  const int* shards = parser.add_int(
      "shards", 0, "parallel per-SCN shards on the shared pool (0 = serial)");
  const int* audit_stride = parser.add_int(
      "audit-stride", 0, "audit LFSC invariants every N slots (0 = never)");
  const int* slot_budget_us = parser.add_int(
      "slot-budget-us", 0, "per-slot compute budget in us (0 = unbudgeted)");
  const std::string* solver_flag = parser.add_string(
      "solver", "auto",
      "LFSC assignment solver: auto | greedy | packed | radix | flow | bnb");
  const bool* improve_flag = parser.add_bool(
      "improve", false,
      "spend leftover --slot-budget-us refining the greedy assignment with "
      "shift-swap moves (no-op without a budget)");
  const int* admission_queue = parser.add_int(
      "admission-queue", 0, "admission backlog bound in tasks (0 = off)");
  const double* admission_capacity = parser.add_double(
      "admission-capacity", 1.0, "admission drain rate, multiple of c*M");
  const int* admission_seed = parser.add_int(
      "admission-seed", 0xADC0, "seed of the deterministic shed ordering");
  const int* telemetry_interval = parser.add_int(
      "telemetry-interval", 100, "slots between telemetry samples");
  const std::string* checkpoint_prefix = parser.add_string(
      "checkpoint", "",
      "generation-checkpoint prefix (writes <prefix>.g<n>)");
  const int* checkpoint_every = parser.add_int(
      "checkpoint-every", 0, "slots between periodic checkpoints (0 = off)");
  const int* checkpoint_keep =
      parser.add_int("checkpoint-keep", 3, "generations kept per instance");
  const bool* resume_latest = parser.add_bool(
      "resume-latest", false,
      "recover from the newest valid checkpoint generation before serving");
  const int* instances =
      parser.add_int("instances", 1, "independent LFSC instances");
  const int* tick_ms = parser.add_int(
      "tick-ms", 0,
      "wall-clock slot period in ms (0 = slots advance only on `tick`)");
  const std::string* socket_path = parser.add_string(
      "socket", "", "serve a Unix domain socket instead of stdin/stdout");
  const bool* force_scalar = parser.add_bool(
      "force-scalar", false, "disable the SIMD kernel dispatch");

  switch (parser.parse(argc, argv, std::cerr)) {
    case FlagParser::Result::kHelp:
      return 0;
    case FlagParser::Result::kError:
      return 2;
    case FlagParser::Result::kOk:
      break;
  }

  const auto fail = [](const std::string& message) {
    std::cerr << "lfsc_serve: " << message << "\n";
    return 2;
  };
  if (*scns <= 0) return fail("--scns must be positive");
  if (*capacity <= 0) return fail("--capacity must be positive");
  if (*alpha <= 0.0) return fail("--alpha must be positive");
  if (*beta <= 0.0) return fail("--beta must be positive");
  if (*h_t <= 0) return fail("--h must be positive");
  if (*gamma < 0.0 || *gamma > 1.0) return fail("--gamma must be in [0, 1]");
  if (*shards < 0) return fail("--shards must be >= 0");
  if (*audit_stride < 0) return fail("--audit-stride must be >= 0");
  if (*slot_budget_us < 0) return fail("--slot-budget-us must be >= 0");
  SolverKind solver_kind = SolverKind::kAuto;
  if (!parse_solver(*solver_flag, solver_kind)) {
    return fail("--solver must be one of auto, greedy, packed, radix, flow, "
                "bnb");
  }
  if (*admission_queue < 0) return fail("--admission-queue must be >= 0");
  if (*admission_capacity <= 0.0) {
    return fail("--admission-capacity must be > 0");
  }
  if (*telemetry_interval < 0) return fail("--telemetry-interval must be >= 0");
  if (*checkpoint_every < 0) return fail("--checkpoint-every must be >= 0");
  if (*checkpoint_keep < 1) return fail("--checkpoint-keep must be >= 1");
  if (*instances < 1) return fail("--instances must be >= 1");
  if (*tick_ms < 0) return fail("--tick-ms must be >= 0");
  if ((*checkpoint_every > 0 || *resume_latest) && checkpoint_prefix->empty()) {
    return fail("--checkpoint-every/--resume-latest require --checkpoint");
  }
  if (*force_scalar) simd::set_force_scalar(true);

  serve::ServeConfig config;
  config.setup.set_num_scns(*scns);
  config.setup.net.capacity_c = *capacity;
  config.setup.net.qos_alpha = *alpha;
  config.setup.net.resource_beta = *beta;
  config.setup.set_seed(static_cast<std::uint64_t>(*seed));
  config.setup.lfsc.parts_per_dim = static_cast<std::size_t>(*h_t);
  config.setup.lfsc.gamma = *gamma;
  config.setup.lfsc.audit_stride = static_cast<std::size_t>(*audit_stride);
  config.setup.lfsc.solver = solver_kind;
  config.setup.lfsc.improve = *improve_flag;
  if (*shards > 0) {
    config.setup.lfsc.parallel_scns = true;
    config.setup.lfsc.shards = *shards;
  }
  config.instances = *instances;
  config.slot_budget_us = static_cast<std::uint32_t>(*slot_budget_us);
  config.admission.max_queue = *admission_queue;
  config.admission.capacity_factor = *admission_capacity;
  config.admission.seed = static_cast<std::uint64_t>(*admission_seed);
  config.telemetry_interval = *telemetry_interval;
  config.checkpoint_prefix = *checkpoint_prefix;
  config.checkpoint_every = *checkpoint_every;
  config.checkpoint_keep = *checkpoint_keep;

  std::unique_ptr<serve::ServeController> controller;
  try {
    controller = std::make_unique<serve::ServeController>(config);
    if (*resume_latest && !controller->resume_latest()) {
      std::cerr << "lfsc_serve: no recoverable checkpoint; starting cold\n";
    }
  } catch (const std::exception& e) {
    return fail(e.what());
  }

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill us

  int listen_fd = -1;
  std::vector<Peer> peers;
  if (socket_path->empty()) {
    peers.push_back({STDIN_FILENO, STDOUT_FILENO, serve::LineChunker()});
  } else {
    listen_fd = listen_unix(*socket_path);
    if (listen_fd < 0) {
      return fail("cannot listen on " + *socket_path + ": " +
                  std::strerror(errno));
    }
    std::cerr << "lfsc_serve: listening on " << *socket_path << "\n";
  }

  using Clock = std::chrono::steady_clock;
  const bool timed = *tick_ms > 0;
  const auto period = std::chrono::milliseconds(*tick_ms);
  auto next_due = Clock::now() + period;

  // One line of protocol at a time, interleaved with timer ticks. The
  // drain signal is honored between commands/slots — never mid-slot —
  // so the in-flight slot always completes before the final checkpoint.
  bool stop = false;
  int exit_code = 0;
  std::string io_buffer(1 << 16, '\0');
  while (!stop) {
    if (g_drain != 0) {
      try {
        controller->drain();
      } catch (const std::exception& e) {
        std::cerr << "lfsc_serve: drain checkpoint failed: " << e.what()
                  << "\n";
        exit_code = 1;
      }
      std::cerr << "lfsc_serve: drained at slot "
                << controller->completed_slots() << "\n";
      break;
    }

    int timeout = -1;
    if (timed) {
      const auto now = Clock::now();
      if (now >= next_due) {
        // Count whole periods the tick grid fell behind; skipped slots
        // are not made up (the grid slides), only accounted.
        const auto late = std::chrono::duration_cast<std::chrono::milliseconds>(
            now - next_due);
        const std::uint64_t missed =
            static_cast<std::uint64_t>(late.count()) /
            static_cast<std::uint64_t>(period.count());
        if (missed > 0) controller->note_deadline_miss(missed);
        controller->tick();
        next_due += period * (1 + missed);
        continue;
      }
      timeout = static_cast<int>(
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        next_due - now)
                        .count()) +
                1;
    }

    std::vector<pollfd> fds;
    if (listen_fd >= 0) fds.push_back({listen_fd, POLLIN, 0});
    for (const Peer& peer : peers) fds.push_back({peer.in_fd, POLLIN, 0});
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks g_drain
      std::cerr << "lfsc_serve: poll failed: " << std::strerror(errno) << "\n";
      exit_code = 1;
      break;
    }
    if (ready == 0) continue;  // timer due; handled at loop top

    std::size_t fd_index = 0;
    if (listen_fd >= 0) {
      if ((fds[0].revents & POLLIN) != 0) {
        const int client = ::accept(listen_fd, nullptr, nullptr);
        if (client >= 0) {
          peers.push_back({client, client, serve::LineChunker()});
        }
      }
      fd_index = 1;
    }

    for (std::size_t p = 0; p < peers.size() && fd_index + p < fds.size();
         ++p) {
      const short revents = fds[fd_index + p].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const ssize_t n =
          ::read(peers[p].in_fd, io_buffer.data(), io_buffer.size());
      if (n > 0) {
        peers[p].chunker.feed(
            std::string_view(io_buffer.data(), static_cast<std::size_t>(n)));
        while (auto line = peers[p].chunker.next()) {
          std::string response =
              line->oversized
                  ? controller->note_oversized_line(
                        serve::LineChunker::kDefaultMaxLine)
                  : controller->handle_line(line->text);
          response.push_back('\n');
          if (!write_all(peers[p].out_fd, response)) {
            peers[p].in_fd = -1;  // client gone; reaped below
            break;
          }
          if (controller->shutdown_requested()) {
            stop = true;
            break;
          }
          if (controller->drained()) {
            // A protocol `drain` ends the process like a signal drain:
            // state is checkpointed, the supervisor restarts us.
            stop = true;
            break;
          }
        }
        if (stop) break;
      } else if (n == 0 || (n < 0 && errno != EINTR)) {
        if (peers[p].in_fd == STDIN_FILENO) {
          // stdin closed: the driving process is gone. Drain like a
          // SIGTERM so nothing is lost.
          g_drain = 1;
        } else {
          ::close(peers[p].in_fd);
          peers[p].in_fd = -1;
        }
      }
    }
    if (g_drain != 0) continue;  // handle at loop top (drain + exit)
    peers.erase(std::remove_if(peers.begin(), peers.end(),
                               [](const Peer& peer) { return peer.in_fd < 0; }),
                peers.end());
    if (listen_fd < 0 && peers.empty()) break;  // stdin mode, stdin gone
  }

  if (listen_fd >= 0) {
    ::close(listen_fd);
    ::unlink(socket_path->c_str());
  }
  for (const Peer& peer : peers) {
    if (peer.in_fd >= 0 && peer.in_fd != STDIN_FILENO) ::close(peer.in_fd);
  }
  return exit_code;
}
