// lfsc_scn_lint — spec-vs-docs drift gate for the scenario layer, run
// by the CI scenario-smoke job:
//   1. every checked-in scenarios/*.scn must parse and validate;
//   2. the key-reference table in docs/SCENARIOS.md (rows of the form
//      "| `key` | ...") must document exactly the keys the parser
//      accepts (scenario_known_keys()) — a key added to the parser
//      without documentation fails, and so does a documented key the
//      parser no longer knows.
//
// Exit 0 when clean; exit 1 with one line per finding otherwise.
//
// Usage: lfsc_scn_lint [--scenarios <dir>] [--doc <SCENARIOS.md>]
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "scenario/scenario_spec.h"

namespace {

using namespace lfsc;

/// Keys documented in the markdown key-reference table: every row that
/// starts "| `key` |" contributes `key`. Prose mentions don't count —
/// the table is the contract.
std::set<std::string> documented_keys(const std::string& text) {
  std::set<std::string> keys;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto bar = line.find_first_not_of(" \t");
    if (bar == std::string::npos || line[bar] != '|') continue;
    const auto open = line.find('`', bar);
    if (open == std::string::npos) continue;
    const auto close = line.find('`', open + 1);
    if (close == std::string::npos) continue;
    // Only the first cell names a key; later cells may carry examples.
    const auto mid = line.find('|', bar + 1);
    if (mid == std::string::npos || open > mid) continue;
    keys.insert(line.substr(open + 1, close - open - 1));
  }
  return keys;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser parser("lfsc_scn_lint",
                    "check scenarios/*.scn and docs/SCENARIOS.md against "
                    "the scenario parser");
  const std::string* scn_dir = parser.add_string(
      "scenarios", "scenarios", "directory of checked-in *.scn files");
  const std::string* doc_path = parser.add_string(
      "doc", "docs/SCENARIOS.md", "scenario spec reference document");
  switch (parser.parse(argc, argv, std::cerr)) {
    case FlagParser::Result::kHelp:
      return 0;
    case FlagParser::Result::kError:
      return 2;
    case FlagParser::Result::kOk:
      break;
  }

  int findings = 0;
  const auto report = [&](const std::string& message) {
    std::cerr << "lfsc_scn_lint: " << message << "\n";
    ++findings;
  };

  // 1. Every checked-in scenario must compile.
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(*scn_dir, ec)) {
    if (entry.path().extension() == ".scn") files.push_back(entry.path());
  }
  if (ec) {
    report("cannot list '" + *scn_dir + "': " + ec.message());
  } else if (files.empty()) {
    report("no *.scn files under '" + *scn_dir + "'");
  }
  std::sort(files.begin(), files.end());
  for (const auto& file : files) {
    try {
      const ScenarioSpec spec = parse_scenario_file(file.string());
      if (spec.name == "unnamed") {
        report(file.string() + ": checked-in scenarios must set 'name'");
      }
    } catch (const std::invalid_argument& e) {
      report(e.what());
    }
  }

  // 2. Parser keys vs documented keys, both directions.
  std::ifstream doc(*doc_path, std::ios::binary);
  if (!doc) {
    report("cannot open '" + *doc_path + "'");
  } else {
    std::ostringstream buf;
    buf << doc.rdbuf();
    const auto documented = documented_keys(buf.str());
    std::set<std::string> known;
    for (const auto key : scenario_known_keys()) {
      known.insert(std::string(key));
    }
    for (const auto& key : known) {
      if (!documented.contains(key)) {
        report("key '" + key + "' is accepted by the parser but missing "
               "from the key-reference table in " + *doc_path);
      }
    }
    for (const auto& key : documented) {
      if (!known.contains(key)) {
        report("key '" + key + "' is documented in " + *doc_path +
               " but not accepted by the parser");
      }
    }
  }

  if (findings == 0) {
    std::cout << "lfsc_scn_lint: " << files.size() << " scenario(s) parse, "
              << scenario_known_keys().size()
              << " keys in sync with docs\n";
    return 0;
  }
  std::cerr << "lfsc_scn_lint: " << findings << " finding(s)\n";
  return 1;
}
