// lfsc_soak — chaos soak for the overload-protection subsystem
// (DESIGN.md §11): run LFSC for a long horizon under combined stress —
// offered load far beyond c·M, a tight per-slot compute budget, the full
// fault-injection suite and strided invariant audits — and assert that
// the run terminates on schedule with internally consistent counters.
//
// The tool exits 0 only when every post-run assertion holds; any failed
// assertion prints one line and flips the exit code to 1, so CI can run
// it directly. `--inject-poison` plants a NaN in one weight-table entry
// before the run and asserts the auditor catches it (exactly one
// violation, SCN 0 quarantined) while the run still completes.
//
// Examples:
//   lfsc_soak                                   # full T=10000 soak
//   lfsc_soak --horizon 2000 --inject-poison    # CI smoke
//   lfsc_soak --serve --horizon 300             # chaos via the protocol
//
// `--serve` runs the same chaos philosophy against the *service*: it
// forks the real lfsc_serve binary, streams its own simulator world
// through the line protocol (task lines + ticks), churns the live
// reconfiguration path (admission bounds, slot budget on/off, alpha/
// beta wiggle, telemetry stride), interleaves deliberate garbage lines
// and checkpoints, then asserts the final stats line is internally
// consistent: offered == admitted + shed, escalations − recoveries ==
// final rung, protocol_errors and checkpoints exactly as injected.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/flags.h"
#include "common/table.h"
#include "faults/fault_model.h"
#include "harness/paper_setup.h"
#include "harness/runner.h"
#include "lfsc/lfsc_policy.h"
#include "sim/admission.h"
#include "telemetry/telemetry.h"

namespace {

using namespace lfsc;

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "lfsc_soak: FAIL: " << what << "\n";
    ++g_failures;
  }
}

// ---------------------------------------------------------------------
// --serve mode: drive the lfsc_serve binary through its line protocol.
// ---------------------------------------------------------------------

/// The forked service process and the pipe ends this side holds.
struct ServeProc {
  pid_t pid = -1;
  FILE* to_child = nullptr;
  FILE* from_child = nullptr;
};

bool spawn_serve(const std::vector<std::string>& args, ServeProc& out) {
  int to_child[2];
  int from_child[2];
  if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 2);
    static char bin[] = LFSC_SERVE_BIN;
    argv.push_back(bin);
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(LFSC_SERVE_BIN, argv.data());
    std::perror("lfsc_soak: execv " LFSC_SERVE_BIN);
    std::_Exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  out.pid = pid;
  out.to_child = ::fdopen(to_child[1], "w");
  out.from_child = ::fdopen(from_child[0], "r");
  return out.to_child != nullptr && out.from_child != nullptr;
}

/// Unsolicited `push {json}` telemetry lines seen between responses
/// (reconfig telemetry_push= churn below); counted, not matched 1:1.
std::uint64_t g_push_lines = 0;

/// Reads one response line (without the newline), skipping unsolicited
/// telemetry pushes. Empty on EOF.
std::string read_response(ServeProc& proc) {
  for (;;) {
    std::string line;
    int c;
    while ((c = std::fgetc(proc.from_child)) != EOF && c != '\n') {
      line.push_back(static_cast<char>(c));
    }
    if (line.rfind("push ", 0) == 0) {
      ++g_push_lines;
      continue;
    }
    return line;
  }
}

/// One request, one response.
std::string request(ServeProc& proc, const std::string& line) {
  std::fputs(line.c_str(), proc.to_child);
  std::fputc('\n', proc.to_child);
  std::fflush(proc.to_child);
  return read_response(proc);
}

std::string fmt17(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

const char* resource_token(ResourceType type) {
  switch (type) {
    case ResourceType::kCpu:
      return "cpu";
    case ResourceType::kGpu:
      return "gpu";
    case ResourceType::kCpuGpu:
      return "cpugpu";
  }
  return "cpu";
}

/// Renders one generated slot as protocol task lines: each task carries
/// its raw context plus the realized (u, v, q) of every SCN that covers
/// it — exactly the information the generative sources hand the stepper
/// in-process. Tasks outside all coverage are skipped (the protocol has
/// no way to express them, and no SCN could serve them anyway).
std::vector<std::string> slot_to_task_lines(const Slot& slot) {
  std::vector<std::string> coverage_of(slot.info.tasks.size());
  for (std::size_t m = 0; m < slot.info.coverage.size(); ++m) {
    for (std::size_t j = 0; j < slot.info.coverage[m].size(); ++j) {
      const auto i = static_cast<std::size_t>(slot.info.coverage[m][j]);
      std::string& entry = coverage_of[i];
      if (!entry.empty()) entry.push_back(',');
      entry += std::to_string(m) + ':' + fmt17(slot.real.u[m][j]) + ':' +
               fmt17(slot.real.v[m][j]) + ':' + fmt17(slot.real.q[m][j]);
    }
  }
  std::vector<std::string> lines;
  lines.reserve(slot.info.tasks.size());
  for (std::size_t i = 0; i < slot.info.tasks.size(); ++i) {
    if (coverage_of[i].empty()) continue;
    const Task& task = slot.info.tasks[i];
    lines.push_back("task " + std::to_string(task.wd_id) + ' ' +
                    fmt17(task.context.input_mbit) + ' ' +
                    fmt17(task.context.output_mbit) + ' ' +
                    resource_token(task.context.resource) + ' ' +
                    coverage_of[i]);
  }
  return lines;
}

/// Parses `ok key=value ...` into a map; numeric access via stat_num.
std::map<std::string, std::string> parse_stats(const std::string& line) {
  std::map<std::string, std::string> out;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      out[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return out;
}

double stat_num(const std::map<std::string, std::string>& stats,
                const std::string& key) {
  const auto it = stats.find(key);
  if (it == stats.end()) return std::numeric_limits<double>::quiet_NaN();
  return std::strtod(it->second.c_str(), nullptr);
}

/// Deliberately malformed lines the service must reject one-per-line
/// without disturbing learner state (the in-process fuzz corpus in
/// tests/test_serve.cpp asserts the state half; the soak asserts the
/// error accounting here).
const char* garbage_line(std::uint64_t n) {
  static const char* kCorpus[] = {
      "bogus",
      "task",
      "task 1 nan 2 cpu 0:0.5:0.5:1.5",
      "task 1 10 2 fpga 0:0.5:0.5:1.5",
      "task 1 10 2 cpu 0:1.5:0.5:1.5",
      "reconfig admission_capacity_factor=0",
      "reconfig slot_budget_us=999999999999",
      "reconfig gamma=0.5",
      "tick now",
      "task 1 10 2 cpu 0:0.5:0.5:1.5,0:0.6:0.6:1.6",
  };
  return kCorpus[n % (sizeof kCorpus / sizeof kCorpus[0])];
}

int run_serve_soak(int horizon, int seed, int scns, int capacity,
                   int tasks_min, int tasks_max, int admission_queue) {
  PaperSetup setup;
  setup.set_num_scns(scns);
  setup.net.capacity_c = capacity;
  setup.coverage.tasks_per_scn_min = tasks_min;
  setup.coverage.tasks_per_scn_max = tasks_max;
  setup.set_seed(static_cast<std::uint64_t>(seed));
  Simulator sim(setup.net, setup.env,
                std::make_unique<AbstractCoverage>(setup.coverage));

  const int queue_bound =
      admission_queue > 0 ? admission_queue : 2 * capacity * scns;

  char ckpt_dir[] = "/tmp/lfsc_soak_serve_XXXXXX";
  if (::mkdtemp(ckpt_dir) == nullptr) {
    std::cerr << "lfsc_soak: mkdtemp failed\n";
    return 1;
  }
  const std::string prefix = std::string(ckpt_dir) + "/ckpt";

  ServeProc proc;
  const std::vector<std::string> args = {
      "--scns", std::to_string(scns),
      "--capacity", std::to_string(capacity),
      "--seed", std::to_string(seed),
      "--admission-queue", std::to_string(queue_bound),
      "--checkpoint", prefix,
      "--checkpoint-keep", "2",
      "--telemetry-interval", "100",
  };
  if (!spawn_serve(args, proc)) {
    std::cerr << "lfsc_soak: cannot spawn " LFSC_SERVE_BIN "\n";
    return 1;
  }

  std::uint64_t injected_errors = 0;
  std::uint64_t injected_checkpoints = 0;
  std::uint64_t tasks_streamed = 0;
  bool protocol_ok = true;
  const auto expect_ok = [&](const std::string& response,
                             const std::string& what) {
    if (response.rfind("ok", 0) != 0) {
      check(false, what + " -> '" + response + "'");
      protocol_ok = false;
    }
  };
  const auto expect_err = [&](const std::string& response,
                              const std::string& what) {
    if (response.rfind("err ", 0) != 0) {
      check(false, what + " expected err, got '" + response + "'");
      protocol_ok = false;
    } else {
      ++injected_errors;
    }
  };

  Slot slot;
  for (int t = 1; t <= horizon && protocol_ok; ++t) {
    sim.generate_slot(t, slot);
    const std::vector<std::string> lines = slot_to_task_lines(slot);
    // Batch task lines, reading responses every chunk so neither pipe
    // fills: 200 pending `ok queued=...` responses stay well under the
    // kernel pipe buffer.
    std::size_t answered = 0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::fputs(lines[i].c_str(), proc.to_child);
      std::fputc('\n', proc.to_child);
      if (i - answered >= 200) {
        std::fflush(proc.to_child);
        for (; answered <= i; ++answered) {
          expect_ok(read_response(proc), "task");
        }
      }
    }
    std::fflush(proc.to_child);
    for (; answered < lines.size(); ++answered) {
      expect_ok(read_response(proc), "task");
    }
    tasks_streamed += lines.size();

    // Chaos interleave: garbage, live reconfig churn, checkpoints.
    if (t % 23 == 0) {
      expect_err(request(proc, garbage_line(static_cast<std::uint64_t>(t))),
                 "garbage line");
    }
    if (t % 40 == 10) {
      expect_ok(request(proc, "reconfig admission_max_queue=" +
                                  std::to_string(queue_bound / 2)),
                "reconfig shrink queue");
    }
    if (t % 40 == 30) {
      expect_ok(request(proc, "reconfig admission_max_queue=" +
                                  std::to_string(queue_bound)),
                "reconfig restore queue");
    }
    if (t % 60 == 20) expect_ok(request(proc, "reconfig slot_budget_us=150"),
                                "reconfig budget on");
    if (t % 60 == 50) expect_ok(request(proc, "reconfig slot_budget_us=0"),
                                "reconfig budget off");
    if (t % 80 == 40) {
      expect_ok(request(proc, "reconfig qos_alpha=" + fmt17(14.0) +
                                  " resource_beta=" + fmt17(26.0)),
                "reconfig thresholds");
    }
    if (t % 97 == 5) {
      expect_ok(request(proc, "reconfig telemetry_interval=7"),
                "reconfig telemetry");
    }
    if (t % 70 == 15) {
      expect_ok(request(proc, "reconfig solver=packed improve=1"),
                "reconfig solver on");
    }
    if (t % 70 == 45) {
      expect_ok(request(proc, "reconfig solver=auto improve=0"),
                "reconfig solver off");
    }
    if (t % 53 == 11) {
      const std::string snapshot = request(proc, "telemetry");
      expect_ok(snapshot, "telemetry");
      check(snapshot.rfind("ok {", 0) == 0 &&
                snapshot.find("lfsc.telemetry/1") != std::string::npos,
            "telemetry response is not a one-line lfsc.telemetry/1 doc");
      check(snapshot.find('\n') == std::string::npos,
            "telemetry response spans lines");
    }
    if (t % 90 == 25) {
      expect_ok(request(proc, "reconfig telemetry_push=16"),
                "reconfig push on");
    }
    if (t % 90 == 85) {
      expect_ok(request(proc, "reconfig telemetry_push=0"),
                "reconfig push off");
    }

    const std::string tick = request(proc, "tick");
    expect_ok(tick, "tick");
    check(tick.rfind("ok slot=" + std::to_string(t) + " ", 0) == 0,
          "tick response '" + tick + "' != slot " + std::to_string(t));

    if (t % 64 == 0) {
      expect_ok(request(proc, "checkpoint"), "checkpoint");
      ++injected_checkpoints;
    }
  }

  const std::string stats_response = request(proc, "stats");
  expect_ok(stats_response, "stats");
  const auto stats = parse_stats(stats_response);

  check(stat_num(stats, "slots") == horizon, "serve slots != horizon");
  check(stat_num(stats, "offered") ==
            stat_num(stats, "admitted") + stat_num(stats, "shed"),
        "serve offered != admitted + shed");
  check(stat_num(stats, "escalations") - stat_num(stats, "recoveries") ==
            stat_num(stats, "rung"),
        "serve escalations - recoveries != rung");
  check(stat_num(stats, "protocol_errors") ==
            static_cast<double>(injected_errors),
        "protocol_errors = " + std::to_string(stat_num(stats,
                                                       "protocol_errors")) +
            ", injected " + std::to_string(injected_errors));
  check(stat_num(stats, "checkpoints") ==
            static_cast<double>(injected_checkpoints),
        "checkpoints != explicit checkpoint commands");
  check(stat_num(stats, "offered") > 0, "serve soak offered nothing");
  check(stat_num(stats, "shed") > 0,
        "serve soak shed nothing (offered load too low?)");
  if (horizon >= 120) {
    // The telemetry_push churn (stride 16, on between t%90 == 25..85)
    // must have produced unsolicited push lines.
    check(g_push_lines > 0, "telemetry_push produced no push lines");
  }
  check(stat_num(stats, "backlog") <= queue_bound,
        "serve backlog exceeds the configured bound");
  const double reward = stat_num(stats, "reward");
  check(std::isfinite(reward) && reward > 0.0, "serve soak earned no reward");

  expect_ok(request(proc, "shutdown"), "shutdown");
  std::fclose(proc.to_child);
  std::fclose(proc.from_child);
  int status = 0;
  ::waitpid(proc.pid, &status, 0);
  check(WIFEXITED(status) && WEXITSTATUS(status) == 0,
        "lfsc_serve did not exit cleanly (status " + std::to_string(status) +
            ")");

  std::error_code ec;
  std::filesystem::remove_all(ckpt_dir, ec);

  Table table({"metric", "value"});
  table.add_row({"slots", Table::num(stat_num(stats, "slots"), 0)});
  table.add_row({"tasks streamed", Table::num(double(tasks_streamed), 0)});
  table.add_row({"offered", Table::num(stat_num(stats, "offered"), 0)});
  table.add_row({"shed", Table::num(stat_num(stats, "shed"), 0)});
  table.add_row({"final rung", Table::num(stat_num(stats, "rung"), 0)});
  table.add_row({"escalations", Table::num(stat_num(stats, "escalations"), 0)});
  table.add_row({"recoveries", Table::num(stat_num(stats, "recoveries"), 0)});
  table.add_row(
      {"protocol errors", Table::num(stat_num(stats, "protocol_errors"), 0)});
  table.add_row(
      {"checkpoints", Table::num(stat_num(stats, "checkpoints"), 0)});
  table.add_row({"push lines", Table::num(double(g_push_lines), 0)});
  table.add_row({"reward", Table::num(reward, 1)});
  table.print(std::cout);

  if (g_failures > 0) {
    std::cerr << "lfsc_soak: " << g_failures << " assertion(s) failed\n";
    return 1;
  }
  std::cout << "lfsc_soak: all serve assertions passed\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser parser("lfsc_soak",
                    "chaos soak: overload + faults + audits, with "
                    "consistency assertions");
  const int* horizon = parser.add_int("horizon", 10000, "time slots T");
  const int* seed = parser.add_int("seed", 42, "world seed");
  const int* scns = parser.add_int("scns", 12, "number of small cell nodes");
  const int* capacity = parser.add_int("capacity", 20,
                                       "per-SCN communication capacity c");
  const int* tasks_min =
      parser.add_int("tasks-min", 60, "min tasks per SCN coverage");
  const int* tasks_max =
      parser.add_int("tasks-max", 140, "max tasks per SCN coverage");
  const int* slot_budget_us = parser.add_int(
      "slot-budget-us", 120, "per-slot compute budget (0 = unbudgeted)");
  const int* audit_stride = parser.add_int(
      "audit-stride", 64, "audit LFSC invariants every N slots (0 = never)");
  const bool* improve = parser.add_bool(
      "improve", true,
      "run the anytime shift-swap improver on leftover slot budget "
      "(--improve=false for the plain greedy soak)");
  const int* admission_queue = parser.add_int(
      "admission-queue", 0, "backlog bound in tasks (0 = default 6*c*M)");
  const bool* inject_poison = parser.add_bool(
      "inject-poison", false,
      "plant a NaN weight before the run; assert the auditor quarantines it");
  const bool* serve = parser.add_bool(
      "serve", false,
      "drive the chaos through a forked lfsc_serve over its line protocol");

  switch (parser.parse(argc, argv, std::cerr)) {
    case FlagParser::Result::kHelp:
      return 0;
    case FlagParser::Result::kError:
      return 2;
    case FlagParser::Result::kOk:
      break;
  }
  const auto fail = [](const std::string& message) {
    std::cerr << "lfsc_soak: " << message << "\n";
    return 2;
  };
  if (*horizon <= 0) return fail("--horizon must be positive");
  if (*scns <= 0) return fail("--scns must be positive");
  if (*capacity <= 0) return fail("--capacity must be positive");
  if (*tasks_min <= 0 || *tasks_max < *tasks_min) {
    return fail("--tasks-min/--tasks-max must satisfy 0 < min <= max");
  }
  if (*slot_budget_us < 0) return fail("--slot-budget-us must be >= 0");
  if (*audit_stride < 0) return fail("--audit-stride must be >= 0");
  if (*admission_queue < 0) return fail("--admission-queue must be >= 0");

  if (*serve) {
    if (*inject_poison) {
      return fail("--inject-poison is not available in --serve mode");
    }
    // Every slot crosses a pipe twice per task line, so the protocol
    // soak defaults to a shorter horizon than the in-process soak.
    const int serve_horizon = parser.provided("horizon") ? *horizon : 400;
    return run_serve_soak(serve_horizon, *seed, *scns, *capacity, *tasks_min,
                          *tasks_max, *admission_queue);
  }

  PaperSetup setup;
  setup.set_num_scns(*scns);
  setup.net.capacity_c = *capacity;
  setup.coverage.tasks_per_scn_min = *tasks_min;
  setup.coverage.tasks_per_scn_max = *tasks_max;
  setup.set_seed(static_cast<std::uint64_t>(*seed));
  setup.set_horizon(static_cast<std::size_t>(*horizon));
  setup.lfsc.audit_stride = static_cast<std::size_t>(*audit_stride);
  // Improver on by default: the budget assertions below then prove the
  // anytime refinement never pushes a slot past its deadline.
  setup.lfsc.improve = *improve;

  // The chaos mix: every fault class at once, on top of sustained
  // overload. Probabilities are the fault-injection test presets.
  FaultConfig fault_config;
  fault_config.outage_prob = 0.01;
  fault_config.outage_min_slots = 1;
  fault_config.outage_max_slots = 5;
  fault_config.loss_prob = 0.05;
  fault_config.delay_prob = 0.05;
  fault_config.delay_slots = 2;
  fault_config.corrupt_prob = 0.02;
  fault_config.validate();
  FaultModel faults(fault_config, *scns);

  AdmissionConfig admission_config;
  admission_config.max_queue =
      *admission_queue > 0 ? *admission_queue : 6 * *capacity * *scns;
  admission_config.validate();
  AdmissionControl admission(admission_config, setup.net);

  Simulator sim(setup.net, setup.env,
                std::make_unique<AbstractCoverage>(setup.coverage));
  LfscPolicy lfsc(setup.net, setup.lfsc);
  if (*inject_poison) {
    // Corrupt one weight-table entry, then audit on demand: the auditor
    // must flag it and quarantine SCN 0 to greedy-only *before* the
    // exact Alg. 2 solve would trip over the NaN — and the quarantined
    // policy must still complete the whole soak.
    lfsc.debug_set_weight(0, 0, std::numeric_limits<double>::quiet_NaN());
    check(lfsc.audit_now() == 1, "on-demand audit missed the planted NaN");
    check(lfsc.quarantined(0), "audit hit did not quarantine SCN 0");
  }
  std::vector<Policy*> policies{&lfsc};

  RunConfig run_config{.horizon = *horizon};
  run_config.telemetry = &lfsc.telemetry();
  run_config.faults = &faults;
  run_config.admission = &admission;
  run_config.slot_budget_us = static_cast<std::uint32_t>(*slot_budget_us);

  ExperimentResult result;
  try {
    result = run_experiment(sim, policies, run_config);
  } catch (const std::exception& e) {
    std::cerr << "lfsc_soak: run threw: " << e.what() << "\n";
    return 1;
  }

  // --- On-schedule termination -------------------------------------
  check(result.completed_slots == *horizon, "run did not reach the horizon");
  check(!result.interrupted, "run reported interruption");

  // --- Ladder consistency ------------------------------------------
  const OverloadCounters& oc = lfsc.overload().counters();
  const int rung = static_cast<int>(lfsc.overload().rung());
  check(rung >= 0 && rung <= 3, "final rung out of range");
  check(oc.escalations >= oc.recoveries, "more recoveries than escalations");
  check(oc.escalations - oc.recoveries == static_cast<std::uint64_t>(rung),
        "escalations - recoveries != final rung");
  check(oc.degraded_slots + oc.shed_slots <=
            static_cast<std::uint64_t>(*horizon),
        "more degraded+shed slots than slots");
  check(oc.over_budget_slots <= static_cast<std::uint64_t>(*horizon),
        "more over-budget slots than slots");
  if (*slot_budget_us > 0) {
    check(oc.escalations > 0,
          "tight budget never escalated (is the ladder wired?)");
  }

  // --- Admission consistency ---------------------------------------
  check(admission.offered() == admission.admitted() + admission.total_shed(),
        "admission offered != admitted + shed");
  check(admission.backlog() >= 0 &&
            admission.backlog() <= admission_config.max_queue,
        "admission backlog out of [0, max_queue]");
  check(admission.total_shed() > 0,
        "overload soak shed nothing (offered load too low?)");

  // --- Audit outcome -----------------------------------------------
  const auto expected_violations =
      static_cast<std::uint64_t>(*inject_poison ? 1 : 0);
  if (*audit_stride > 0) {
    check(lfsc.audit_checks() > 0, "auditor never ran");
    check(lfsc.audit_violations() == expected_violations,
          "audit violations = " + std::to_string(lfsc.audit_violations()) +
              ", expected " + std::to_string(expected_violations) +
              (lfsc.audit_violations() > 0 ? " (" + lfsc.last_audit_detail() +
                                                 ")"
                                           : ""));
    check(lfsc.quarantined(0) == *inject_poison,
          *inject_poison ? "poisoned SCN 0 was not quarantined"
                         : "clean run quarantined SCN 0");
  }

  // --- Telemetry mirrors the exact counters ------------------------
  if (telemetry::kEnabled) {
    const auto snaps = lfsc.telemetry().snapshot();
    const auto value = [&](const std::string& name) -> double {
      for (const auto& m : snaps) {
        if (m.name == name) return m.value;
      }
      return -1.0;
    };
    const auto mirror = [&](const std::string& name, double expect) {
      check(value(name) == expect,
            name + " = " + std::to_string(value(name)) + ", counter says " +
                std::to_string(expect));
    };
    mirror("overload.rung", static_cast<double>(rung));
    mirror("overload.escalations", static_cast<double>(oc.escalations));
    mirror("overload.recoveries", static_cast<double>(oc.recoveries));
    mirror("overload.slots_degraded", static_cast<double>(oc.degraded_slots));
    mirror("overload.slots_shed", static_cast<double>(oc.shed_slots));
    mirror("overload.slots_over_budget",
           static_cast<double>(oc.over_budget_slots));
    mirror("overload.updates_skipped",
           static_cast<double>(oc.updates_skipped));
    mirror("overload.mid_slot_sheds", static_cast<double>(oc.mid_slot_sheds));
    mirror("admission.offered", static_cast<double>(admission.offered()));
    mirror("admission.admitted", static_cast<double>(admission.admitted()));
    mirror("admission.shed", static_cast<double>(admission.total_shed()));
    mirror("admission.saturated_slots",
           static_cast<double>(admission.saturated_slots()));
    mirror("admission.backlog", static_cast<double>(admission.backlog()));
    if (*audit_stride > 0) {
      mirror("audit.checks", static_cast<double>(lfsc.audit_checks()));
      mirror("audit.violations",
             static_cast<double>(lfsc.audit_violations()));
    }
    check(value("faults.feedback.total") ==
              value("faults.feedback.delivered") +
                  value("faults.feedback.lost") +
                  value("faults.feedback.delayed") +
                  value("faults.feedback.corrupted"),
          "fault fate counters do not sum to faults.feedback.total");

    // Budgeted wall time: the policy's own slot work (select + observe)
    // must land within 1.2x the total budget, plus fixed slack for the
    // over-budget slots that *trigger* each escalation.
    if (*slot_budget_us > 0) {
      const double spent =
          value("lfsc.select") + value("lfsc.observe");  // timer sums, s
      const double budgeted =
          1.2 * static_cast<double>(*horizon) * *slot_budget_us * 1e-6 + 0.5;
      check(spent <= budgeted,
            "policy slot work " + std::to_string(spent) + "s exceeds 1.2x "
                "budget " + std::to_string(budgeted) + "s");
    }
  }

  // --- The run still learned something -----------------------------
  check(std::isfinite(result.series[0].total_reward()) &&
            result.series[0].total_reward() > 0.0,
        "soak produced no reward");

  Table table({"metric", "value"});
  table.add_row({"slots", Table::num(result.completed_slots, 0)});
  table.add_row({"final rung", std::string(rung_name(lfsc.overload().rung()))});
  table.add_row({"over-budget slots", Table::num(double(oc.over_budget_slots), 0)});
  table.add_row({"escalations", Table::num(double(oc.escalations), 0)});
  table.add_row({"recoveries", Table::num(double(oc.recoveries), 0)});
  table.add_row({"degraded slots", Table::num(double(oc.degraded_slots), 0)});
  table.add_row({"shed slots", Table::num(double(oc.shed_slots), 0)});
  table.add_row({"mid-slot sheds", Table::num(double(oc.mid_slot_sheds), 0)});
  table.add_row({"tasks offered", Table::num(double(admission.offered()), 0)});
  table.add_row({"tasks shed", Table::num(double(admission.total_shed()), 0)});
  table.add_row({"final backlog", Table::num(double(admission.backlog()), 0)});
  table.add_row({"audit checks", Table::num(double(lfsc.audit_checks()), 0)});
  table.add_row(
      {"audit violations", Table::num(double(lfsc.audit_violations()), 0)});
  table.add_row({"reward", Table::num(result.series[0].total_reward(), 1)});
  table.add_row({"wall", Table::num(result.wall_seconds, 2) + "s"});
  table.print(std::cout);

  if (g_failures > 0) {
    std::cerr << "lfsc_soak: " << g_failures << " assertion(s) failed\n";
    return 1;
  }
  std::cout << "lfsc_soak: all assertions passed\n";
  return 0;
}
