// lfsc_soak — chaos soak for the overload-protection subsystem
// (DESIGN.md §11): run LFSC for a long horizon under combined stress —
// offered load far beyond c·M, a tight per-slot compute budget, the full
// fault-injection suite and strided invariant audits — and assert that
// the run terminates on schedule with internally consistent counters.
//
// The tool exits 0 only when every post-run assertion holds; any failed
// assertion prints one line and flips the exit code to 1, so CI can run
// it directly. `--inject-poison` plants a NaN in one weight-table entry
// before the run and asserts the auditor catches it (exactly one
// violation, SCN 0 quarantined) while the run still completes.
//
// Examples:
//   lfsc_soak                                   # full T=10000 soak
//   lfsc_soak --horizon 2000 --inject-poison    # CI smoke
#include <cmath>
#include <cstdint>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "faults/fault_model.h"
#include "harness/paper_setup.h"
#include "harness/runner.h"
#include "lfsc/lfsc_policy.h"
#include "sim/admission.h"
#include "telemetry/telemetry.h"

namespace {

using namespace lfsc;

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "lfsc_soak: FAIL: " << what << "\n";
    ++g_failures;
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser parser("lfsc_soak",
                    "chaos soak: overload + faults + audits, with "
                    "consistency assertions");
  const int* horizon = parser.add_int("horizon", 10000, "time slots T");
  const int* seed = parser.add_int("seed", 42, "world seed");
  const int* scns = parser.add_int("scns", 12, "number of small cell nodes");
  const int* capacity = parser.add_int("capacity", 20,
                                       "per-SCN communication capacity c");
  const int* tasks_min =
      parser.add_int("tasks-min", 60, "min tasks per SCN coverage");
  const int* tasks_max =
      parser.add_int("tasks-max", 140, "max tasks per SCN coverage");
  const int* slot_budget_us = parser.add_int(
      "slot-budget-us", 120, "per-slot compute budget (0 = unbudgeted)");
  const int* audit_stride = parser.add_int(
      "audit-stride", 64, "audit LFSC invariants every N slots (0 = never)");
  const int* admission_queue = parser.add_int(
      "admission-queue", 0, "backlog bound in tasks (0 = default 6*c*M)");
  const bool* inject_poison = parser.add_bool(
      "inject-poison", false,
      "plant a NaN weight before the run; assert the auditor quarantines it");

  switch (parser.parse(argc, argv, std::cerr)) {
    case FlagParser::Result::kHelp:
      return 0;
    case FlagParser::Result::kError:
      return 2;
    case FlagParser::Result::kOk:
      break;
  }
  const auto fail = [](const std::string& message) {
    std::cerr << "lfsc_soak: " << message << "\n";
    return 2;
  };
  if (*horizon <= 0) return fail("--horizon must be positive");
  if (*scns <= 0) return fail("--scns must be positive");
  if (*capacity <= 0) return fail("--capacity must be positive");
  if (*tasks_min <= 0 || *tasks_max < *tasks_min) {
    return fail("--tasks-min/--tasks-max must satisfy 0 < min <= max");
  }
  if (*slot_budget_us < 0) return fail("--slot-budget-us must be >= 0");
  if (*audit_stride < 0) return fail("--audit-stride must be >= 0");
  if (*admission_queue < 0) return fail("--admission-queue must be >= 0");

  PaperSetup setup;
  setup.set_num_scns(*scns);
  setup.net.capacity_c = *capacity;
  setup.coverage.tasks_per_scn_min = *tasks_min;
  setup.coverage.tasks_per_scn_max = *tasks_max;
  setup.set_seed(static_cast<std::uint64_t>(*seed));
  setup.set_horizon(static_cast<std::size_t>(*horizon));
  setup.lfsc.audit_stride = static_cast<std::size_t>(*audit_stride);

  // The chaos mix: every fault class at once, on top of sustained
  // overload. Probabilities are the fault-injection test presets.
  FaultConfig fault_config;
  fault_config.outage_prob = 0.01;
  fault_config.outage_min_slots = 1;
  fault_config.outage_max_slots = 5;
  fault_config.loss_prob = 0.05;
  fault_config.delay_prob = 0.05;
  fault_config.delay_slots = 2;
  fault_config.corrupt_prob = 0.02;
  fault_config.validate();
  FaultModel faults(fault_config, *scns);

  AdmissionConfig admission_config;
  admission_config.max_queue =
      *admission_queue > 0 ? *admission_queue : 6 * *capacity * *scns;
  admission_config.validate();
  AdmissionControl admission(admission_config, setup.net);

  Simulator sim(setup.net, setup.env,
                std::make_unique<AbstractCoverage>(setup.coverage));
  LfscPolicy lfsc(setup.net, setup.lfsc);
  if (*inject_poison) {
    // Corrupt one weight-table entry, then audit on demand: the auditor
    // must flag it and quarantine SCN 0 to greedy-only *before* the
    // exact Alg. 2 solve would trip over the NaN — and the quarantined
    // policy must still complete the whole soak.
    lfsc.debug_set_weight(0, 0, std::numeric_limits<double>::quiet_NaN());
    check(lfsc.audit_now() == 1, "on-demand audit missed the planted NaN");
    check(lfsc.quarantined(0), "audit hit did not quarantine SCN 0");
  }
  std::vector<Policy*> policies{&lfsc};

  RunConfig run_config{.horizon = *horizon};
  run_config.telemetry = &lfsc.telemetry();
  run_config.faults = &faults;
  run_config.admission = &admission;
  run_config.slot_budget_us = static_cast<std::uint32_t>(*slot_budget_us);

  ExperimentResult result;
  try {
    result = run_experiment(sim, policies, run_config);
  } catch (const std::exception& e) {
    std::cerr << "lfsc_soak: run threw: " << e.what() << "\n";
    return 1;
  }

  // --- On-schedule termination -------------------------------------
  check(result.completed_slots == *horizon, "run did not reach the horizon");
  check(!result.interrupted, "run reported interruption");

  // --- Ladder consistency ------------------------------------------
  const OverloadCounters& oc = lfsc.overload().counters();
  const int rung = static_cast<int>(lfsc.overload().rung());
  check(rung >= 0 && rung <= 3, "final rung out of range");
  check(oc.escalations >= oc.recoveries, "more recoveries than escalations");
  check(oc.escalations - oc.recoveries == static_cast<std::uint64_t>(rung),
        "escalations - recoveries != final rung");
  check(oc.degraded_slots + oc.shed_slots <=
            static_cast<std::uint64_t>(*horizon),
        "more degraded+shed slots than slots");
  check(oc.over_budget_slots <= static_cast<std::uint64_t>(*horizon),
        "more over-budget slots than slots");
  if (*slot_budget_us > 0) {
    check(oc.escalations > 0,
          "tight budget never escalated (is the ladder wired?)");
  }

  // --- Admission consistency ---------------------------------------
  check(admission.offered() == admission.admitted() + admission.total_shed(),
        "admission offered != admitted + shed");
  check(admission.backlog() >= 0 &&
            admission.backlog() <= admission_config.max_queue,
        "admission backlog out of [0, max_queue]");
  check(admission.total_shed() > 0,
        "overload soak shed nothing (offered load too low?)");

  // --- Audit outcome -----------------------------------------------
  const auto expected_violations =
      static_cast<std::uint64_t>(*inject_poison ? 1 : 0);
  if (*audit_stride > 0) {
    check(lfsc.audit_checks() > 0, "auditor never ran");
    check(lfsc.audit_violations() == expected_violations,
          "audit violations = " + std::to_string(lfsc.audit_violations()) +
              ", expected " + std::to_string(expected_violations) +
              (lfsc.audit_violations() > 0 ? " (" + lfsc.last_audit_detail() +
                                                 ")"
                                           : ""));
    check(lfsc.quarantined(0) == *inject_poison,
          *inject_poison ? "poisoned SCN 0 was not quarantined"
                         : "clean run quarantined SCN 0");
  }

  // --- Telemetry mirrors the exact counters ------------------------
  if (telemetry::kEnabled) {
    const auto snaps = lfsc.telemetry().snapshot();
    const auto value = [&](const std::string& name) -> double {
      for (const auto& m : snaps) {
        if (m.name == name) return m.value;
      }
      return -1.0;
    };
    const auto mirror = [&](const std::string& name, double expect) {
      check(value(name) == expect,
            name + " = " + std::to_string(value(name)) + ", counter says " +
                std::to_string(expect));
    };
    mirror("overload.rung", static_cast<double>(rung));
    mirror("overload.escalations", static_cast<double>(oc.escalations));
    mirror("overload.recoveries", static_cast<double>(oc.recoveries));
    mirror("overload.slots_degraded", static_cast<double>(oc.degraded_slots));
    mirror("overload.slots_shed", static_cast<double>(oc.shed_slots));
    mirror("overload.slots_over_budget",
           static_cast<double>(oc.over_budget_slots));
    mirror("overload.updates_skipped",
           static_cast<double>(oc.updates_skipped));
    mirror("overload.mid_slot_sheds", static_cast<double>(oc.mid_slot_sheds));
    mirror("admission.offered", static_cast<double>(admission.offered()));
    mirror("admission.admitted", static_cast<double>(admission.admitted()));
    mirror("admission.shed", static_cast<double>(admission.total_shed()));
    mirror("admission.saturated_slots",
           static_cast<double>(admission.saturated_slots()));
    mirror("admission.backlog", static_cast<double>(admission.backlog()));
    if (*audit_stride > 0) {
      mirror("audit.checks", static_cast<double>(lfsc.audit_checks()));
      mirror("audit.violations",
             static_cast<double>(lfsc.audit_violations()));
    }
    check(value("faults.feedback.total") ==
              value("faults.feedback.delivered") +
                  value("faults.feedback.lost") +
                  value("faults.feedback.delayed") +
                  value("faults.feedback.corrupted"),
          "fault fate counters do not sum to faults.feedback.total");

    // Budgeted wall time: the policy's own slot work (select + observe)
    // must land within 1.2x the total budget, plus fixed slack for the
    // over-budget slots that *trigger* each escalation.
    if (*slot_budget_us > 0) {
      const double spent =
          value("lfsc.select") + value("lfsc.observe");  // timer sums, s
      const double budgeted =
          1.2 * static_cast<double>(*horizon) * *slot_budget_us * 1e-6 + 0.5;
      check(spent <= budgeted,
            "policy slot work " + std::to_string(spent) + "s exceeds 1.2x "
                "budget " + std::to_string(budgeted) + "s");
    }
  }

  // --- The run still learned something -----------------------------
  check(std::isfinite(result.series[0].total_reward()) &&
            result.series[0].total_reward() > 0.0,
        "soak produced no reward");

  Table table({"metric", "value"});
  table.add_row({"slots", Table::num(result.completed_slots, 0)});
  table.add_row({"final rung", std::string(rung_name(lfsc.overload().rung()))});
  table.add_row({"over-budget slots", Table::num(double(oc.over_budget_slots), 0)});
  table.add_row({"escalations", Table::num(double(oc.escalations), 0)});
  table.add_row({"recoveries", Table::num(double(oc.recoveries), 0)});
  table.add_row({"degraded slots", Table::num(double(oc.degraded_slots), 0)});
  table.add_row({"shed slots", Table::num(double(oc.shed_slots), 0)});
  table.add_row({"mid-slot sheds", Table::num(double(oc.mid_slot_sheds), 0)});
  table.add_row({"tasks offered", Table::num(double(admission.offered()), 0)});
  table.add_row({"tasks shed", Table::num(double(admission.total_shed()), 0)});
  table.add_row({"final backlog", Table::num(double(admission.backlog()), 0)});
  table.add_row({"audit checks", Table::num(double(lfsc.audit_checks()), 0)});
  table.add_row(
      {"audit violations", Table::num(double(lfsc.audit_violations()), 0)});
  table.add_row({"reward", Table::num(result.series[0].total_reward(), 1)});
  table.add_row({"wall", Table::num(result.wall_seconds, 2) + "s"});
  table.print(std::cout);

  if (g_failures > 0) {
    std::cerr << "lfsc_soak: " << g_failures << " assertion(s) failed\n";
    return 1;
  }
  std::cout << "lfsc_soak: all assertions passed\n";
  return 0;
}
