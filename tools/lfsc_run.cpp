// lfsc_run — the command-line front door to the framework: configure a
// small cell network, an environment and a policy roster entirely from
// flags, run the experiment, and get a summary table plus optional CSV
// time series.
//
// Examples:
//   lfsc_run --horizon 2000                      # paper setup, shorter run
//   lfsc_run --scns 10 --alpha 12 --beta 20
//   lfsc_run --coverage geometric --blockage 0.2
//   lfsc_run --policies LFSC,Oracle --csv out    # writes out_*.csv
//   lfsc_run --replicates 5                      # mean ± 95% CI summary
//   lfsc_run --telemetry t.json --telemetry-csv t.csv   # slot-pipeline telemetry
//   lfsc_run --checkpoint run.ckpt --checkpoint-every 500   # crash-safe
//   lfsc_run --checkpoint run.ckpt --resume              # continue after ^C
//   lfsc_run --fault-outage-prob 0.01 --fault-loss-prob 0.1
//   lfsc_run --scenario scenarios/flash_crowd.scn      # compiled workload
//   lfsc_run --scenario scenarios/drift_walk.scn --horizon 2000  # override T
#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "baselines/fml.h"
#include "baselines/linucb.h"
#include "baselines/oracle.h"
#include "baselines/random_policy.h"
#include "baselines/thompson.h"
#include "baselines/vucb.h"
#include "common/flags.h"
#include "common/simd.h"
#include "common/table.h"
#include "faults/fault_model.h"
#include "harness/paper_setup.h"
#include "harness/replication.h"
#include "harness/runner.h"
#include "harness/series_io.h"
#include "scenario/scenario_source.h"
#include "scenario/scenario_spec.h"
#include "sim/trace.h"
#include "lfsc/lfsc_policy.h"
#include "telemetry/export.h"

namespace {

using namespace lfsc;

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Output paths must point into an existing directory — catching a typo
/// before a 10k-slot run beats failing at export time. Returns an error
/// message, or empty when the path is usable.
std::string check_output_path(const std::string& path) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) return {};  // bare filename in the CWD
  std::error_code ec;
  if (!std::filesystem::is_directory(parent, ec)) {
    return "directory '" + parent.string() + "' does not exist";
  }
  return {};
}

/// Graceful-interrupt flag: SIGINT or SIGTERM requests a stop between
/// slots so the runner can write a final checkpoint instead of dying
/// mid-run. SIGTERM matters under supervision — a service manager's
/// stop is a TERM, not an INT.
std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  FlagParser parser("lfsc_run",
                    "run a small-cell task-offloading experiment");
  // Spec-overridable world flags: with --scenario, the scenario file
  // provides these defaults and an explicitly passed flag overrides the
  // spec (FlagParser::provided distinguishes the two), so the parser
  // writes into mutable storage.
  int* scns = parser.add_int("scns", 30, "number of small cell nodes");
  int* capacity = parser.add_int("capacity", 20,
                                 "per-SCN communication capacity c");
  double* alpha =
      parser.add_double("alpha", 15.0, "QoS threshold alpha (1c)");
  double* beta =
      parser.add_double("beta", 27.0, "resource capacity beta (1d)");
  int* horizon = parser.add_int("horizon", 10000, "time slots T");
  int* seed = parser.add_int("seed", 42, "world seed");
  const int* h_t = parser.add_int("h", 3, "hypercube parts per dimension");
  const double* gamma =
      parser.add_double("gamma", 0.0, "LFSC exploration rate (0 = auto)");
  const std::string* coverage = parser.add_string(
      "coverage", "abstract", "coverage model: abstract | geometric");
  double* likelihood_lo = parser.add_double(
      "likelihood-lo", 0.0, "lower end of the mean completion likelihood");
  double* likelihood_hi = parser.add_double(
      "likelihood-hi", 1.0, "upper end of the mean completion likelihood");
  double* blockage =
      parser.add_double("blockage", 0.0, "mmWave blockage probability");
  const std::string* policies_flag = parser.add_string(
      "policies", "Oracle,LFSC,vUCB,FML,Random", "comma-separated roster");
  const std::string* csv_prefix = parser.add_string(
      "csv", "", "write <prefix>_reward.csv / _violations.csv");
  const int* replicates = parser.add_int(
      "replicates", 1, "seeds to replicate (>1 prints mean ± 95% CI)");
  int* tasks_min =
      parser.add_int("tasks-min", 35, "min tasks per SCN coverage");
  int* tasks_max =
      parser.add_int("tasks-max", 100, "max tasks per SCN coverage");
  const std::string* scenario_path = parser.add_string(
      "scenario", "",
      "compile a scenario spec file (scenarios/*.scn) into the workload; "
      "explicit world flags override the spec");
  const std::string* trace_in = parser.add_string(
      "trace", "", "replay a workload trace file instead of generating");
  const std::string* trace_out = parser.add_string(
      "record-trace", "", "record this run's workload to a trace file");
  const std::string* state_in = parser.add_string(
      "load-state", "", "warm-start LFSC from a saved state file");
  const std::string* state_out = parser.add_string(
      "save-state", "", "save LFSC's learned state after the run");
  const std::string* telemetry_json = parser.add_string(
      "telemetry", "",
      "write LFSC slot-pipeline telemetry (snapshot + series) as JSON");
  const std::string* telemetry_csv = parser.add_string(
      "telemetry-csv", "", "write the sampled telemetry series as CSV");
  const int* telemetry_interval = parser.add_int(
      "telemetry-interval", 0,
      "slots between telemetry samples (0 = horizon/1000)");
  const std::string* checkpoint_path = parser.add_string(
      "checkpoint", "", "crash-safe checkpoint file (atomically rewritten)");
  const int* checkpoint_every = parser.add_int(
      "checkpoint-every", 0,
      "slots between periodic checkpoints (0 = only on interrupt/finish)");
  const bool* resume = parser.add_bool(
      "resume", false, "resume from --checkpoint instead of starting fresh");
  const double* fault_outage_prob = parser.add_double(
      "fault-outage-prob", 0.0, "per-slot probability an SCN starts an outage");
  const int* fault_outage_min = parser.add_int(
      "fault-outage-min", 1, "minimum outage burst length (slots)");
  const int* fault_outage_max = parser.add_int(
      "fault-outage-max", 1, "maximum outage burst length (slots)");
  const double* fault_loss_prob = parser.add_double(
      "fault-loss-prob", 0.0, "probability a task's feedback is lost");
  const double* fault_delay_prob = parser.add_double(
      "fault-delay-prob", 0.0, "probability a task's feedback arrives late");
  const int* fault_delay_slots = parser.add_int(
      "fault-delay-slots", 1, "lateness of delayed feedback (slots)");
  const double* fault_corrupt_prob = parser.add_double(
      "fault-corrupt-prob", 0.0,
      "probability a task's feedback is corrupted (NaN / out-of-range)");
  const int* fault_seed = parser.add_int(
      "fault-seed", 0xFA17, "seed of the fault process (independent of world)");
  const int* slot_budget_us = parser.add_int(
      "slot-budget-us", 0,
      "per-slot compute budget for LFSC in microseconds (0 = unbudgeted)");
  const std::string* degrade = parser.add_string(
      "degrade", "auto",
      "degradation ladder: auto | full | explore-capped | greedy-only | shed");
  const int* audit_stride = parser.add_int(
      "audit-stride", 0,
      "audit LFSC invariants every N slots (0 = never)");
  const std::string* solver_flag = parser.add_string(
      "solver", "auto",
      "LFSC assignment solver: auto | greedy | packed | radix | flow | bnb");
  const bool* improve_flag = parser.add_bool(
      "improve", false,
      "spend leftover --slot-budget-us refining the greedy assignment with "
      "shift-swap moves (no-op without a budget)");
  const int* admission_queue = parser.add_int(
      "admission-queue", 0,
      "bound on the admission backlog in tasks (0 = no admission control)");
  const double* admission_capacity = parser.add_double(
      "admission-capacity", 1.0,
      "admission drain rate as a multiple of c*M tasks per slot");
  const int* admission_seed = parser.add_int(
      "admission-seed", 0xADC0,
      "seed of the deterministic shed ordering (independent of world)");
  const int* shards = parser.add_int(
      "shards", 0,
      "run LFSC's per-SCN phases on the thread pool in N contiguous SCN "
      "shards (0 = serial; bit-identical for any value, DESIGN.md §12)");
  const bool* force_scalar = parser.add_bool(
      "force-scalar", false,
      "disable the SIMD kernel dispatch (bit-identical, for triage)");

  switch (parser.parse(argc, argv, std::cerr)) {
    case FlagParser::Result::kHelp:
      return 0;
    case FlagParser::Result::kError:
      return 2;
    case FlagParser::Result::kOk:
      break;
  }

  // Input validation: fail fast with a one-line error (exit 2) instead of
  // crashing deep inside the simulator on a nonsense configuration.
  const auto fail = [](const std::string& message) {
    std::cerr << "lfsc_run: " << message << "\n";
    return 2;
  };
  // Scenario mode: parse the spec first so it can provide the world
  // defaults; any world flag the user passed explicitly overrides the
  // spec (and feeds back into it, keeping one source of truth).
  ScenarioSpec scenario_spec;
  const bool scenario_mode = !scenario_path->empty();
  if (scenario_mode) {
    try {
      scenario_spec = parse_scenario_file(*scenario_path);
    } catch (const std::invalid_argument& e) {
      return fail(e.what());
    }
    if (!trace_in->empty() || !trace_out->empty()) {
      return fail("--scenario generates its own workload (incompatible with "
                  "--trace/--record-trace)");
    }
    if (parser.provided("coverage")) {
      return fail("--scenario fixes the coverage construction (incompatible "
                  "with --coverage)");
    }
    const auto merge_int = [&](const char* flag, int* store, int& field) {
      if (parser.provided(flag)) field = *store; else *store = field;
    };
    const auto merge_double = [&](const char* flag, double* store,
                                  double& field) {
      if (parser.provided(flag)) field = *store; else *store = field;
    };
    merge_int("scns", scns, scenario_spec.scns);
    merge_int("capacity", capacity, scenario_spec.capacity);
    merge_double("alpha", alpha, scenario_spec.alpha);
    merge_double("beta", beta, scenario_spec.beta);
    merge_int("horizon", horizon, scenario_spec.horizon);
    merge_int("tasks-min", tasks_min, scenario_spec.tasks_min);
    merge_int("tasks-max", tasks_max, scenario_spec.tasks_max);
    merge_double("likelihood-lo", likelihood_lo, scenario_spec.likelihood_lo);
    merge_double("likelihood-hi", likelihood_hi, scenario_spec.likelihood_hi);
    merge_double("blockage", blockage, scenario_spec.blockage_base);
    if (parser.provided("seed")) {
      scenario_spec.seed = static_cast<std::uint64_t>(*seed);
    } else {
      *seed = static_cast<int>(scenario_spec.seed);
    }
    try {
      scenario_spec.validate();  // flag overrides may have broken it
    } catch (const std::invalid_argument& e) {
      return fail(e.what());
    }
  }

  if (*horizon <= 0) return fail("--horizon must be positive");
  if (*scns <= 0) return fail("--scns must be positive");
  if (*capacity <= 0) return fail("--capacity must be positive (c >= 1)");
  if (*alpha <= 0.0) return fail("--alpha must be positive");
  if (*beta <= 0.0) return fail("--beta must be positive");
  if (*h_t <= 0) return fail("--h must be positive");
  if (*gamma < 0.0 || *gamma > 1.0) return fail("--gamma must be in [0, 1]");
  if (*replicates <= 0) return fail("--replicates must be positive");
  if (*tasks_min <= 0) return fail("--tasks-min must be positive");
  if (*tasks_max < *tasks_min) {
    return fail("--tasks-max must be >= --tasks-min");
  }
  if (*likelihood_lo < 0.0 || *likelihood_hi > 1.0 ||
      *likelihood_lo > *likelihood_hi) {
    return fail("--likelihood-lo/--likelihood-hi must satisfy "
                "0 <= lo <= hi <= 1");
  }
  if (*blockage < 0.0 || *blockage > 1.0) {
    return fail("--blockage must be in [0, 1]");
  }
  if (*telemetry_interval < 0) {
    return fail("--telemetry-interval must be >= 0");
  }
  if (*checkpoint_every < 0) return fail("--checkpoint-every must be >= 0");
  if (*slot_budget_us < 0) return fail("--slot-budget-us must be >= 0");
  if (*audit_stride < 0) return fail("--audit-stride must be >= 0");
  if (*admission_queue < 0) return fail("--admission-queue must be >= 0");
  if (*shards < 0) return fail("--shards must be >= 0");
  DegradeRung forced_rung = DegradeRung::kFull;
  const bool force_rung = *degrade != "auto";
  if (force_rung && !parse_rung(*degrade, forced_rung)) {
    return fail("--degrade must be one of auto, full, explore-capped, "
                "greedy-only, shed");
  }
  SolverKind solver_kind = SolverKind::kAuto;
  if (!parse_solver(*solver_flag, solver_kind)) {
    return fail("--solver must be one of auto, greedy, packed, radix, flow, "
                "bnb");
  }
  if (force_rung && *slot_budget_us > 0) {
    return fail("--degrade <rung> pins the ladder and is incompatible with "
                "--slot-budget-us (a forced rung never reads the clock)");
  }
  if ((*checkpoint_every > 0 || *resume) && checkpoint_path->empty()) {
    return fail("--checkpoint-every/--resume require --checkpoint <path>");
  }
  for (const std::string* out_path :
       {csv_prefix, trace_out, state_out, telemetry_json, telemetry_csv,
        checkpoint_path}) {
    if (out_path->empty()) continue;
    if (const auto err = check_output_path(*out_path); !err.empty()) {
      return fail("cannot write '" + *out_path + "': " + err);
    }
  }

  FaultConfig fault_config;
  fault_config.outage_prob = *fault_outage_prob;
  fault_config.outage_min_slots = *fault_outage_min;
  fault_config.outage_max_slots = *fault_outage_max;
  fault_config.loss_prob = *fault_loss_prob;
  fault_config.delay_prob = *fault_delay_prob;
  fault_config.delay_slots = *fault_delay_slots;
  fault_config.corrupt_prob = *fault_corrupt_prob;
  fault_config.seed = static_cast<std::uint64_t>(*fault_seed);
  try {
    fault_config.validate();
  } catch (const std::invalid_argument& e) {
    return fail(e.what());
  }

  PaperSetup setup;
  setup.set_num_scns(*scns);
  setup.net.capacity_c = *capacity;
  setup.net.qos_alpha = *alpha;
  setup.net.resource_beta = *beta;
  setup.env.likelihood_lo = *likelihood_lo;
  setup.env.likelihood_hi = *likelihood_hi;
  setup.env.blockage_prob = *blockage;
  setup.coverage.tasks_per_scn_min = *tasks_min;
  setup.coverage.tasks_per_scn_max = *tasks_max;
  setup.set_seed(static_cast<std::uint64_t>(*seed));
  setup.set_horizon(static_cast<std::size_t>(*horizon));
  setup.lfsc.parts_per_dim = static_cast<std::size_t>(*h_t);
  setup.lfsc.gamma = *gamma;
  if (force_rung) {
    setup.lfsc.overload.force = true;
    setup.lfsc.overload.forced_rung = forced_rung;
  }
  setup.lfsc.audit_stride = static_cast<std::size_t>(*audit_stride);
  setup.lfsc.solver = solver_kind;
  setup.lfsc.improve = *improve_flag;
  if (*shards > 0) {
    // Sharding lives in the parallel per-SCN path; one flag turns both
    // on (bit-identical to serial for any value, DESIGN.md §12).
    setup.lfsc.parallel_scns = true;
    setup.lfsc.shards = *shards;
  }
  if (*force_scalar) simd::set_force_scalar(true);

  AdmissionConfig admission_config;
  admission_config.max_queue = *admission_queue;
  admission_config.capacity_factor = *admission_capacity;
  admission_config.seed = static_cast<std::uint64_t>(*admission_seed);
  try {
    admission_config.validate();
  } catch (const std::invalid_argument& e) {
    return fail(e.what());
  }

  const bool want_telemetry =
      !telemetry_json->empty() || !telemetry_csv->empty();

  if (*replicates > 1) {
    if (!state_in->empty() || !state_out->empty() || !trace_in->empty() ||
        !trace_out->empty() || want_telemetry || !checkpoint_path->empty() ||
        fault_config.any() || *slot_budget_us > 0 || force_rung ||
        *audit_stride > 0 || admission_config.enabled() || scenario_mode) {
      std::cerr << "lfsc_run: --load-state/--save-state/--trace/"
                   "--record-trace/--telemetry/--checkpoint/--fault-*/"
                   "--slot-budget-us/--degrade/--audit-stride/--admission-*/"
                   "--scenario "
                   "are single-run flags (incompatible with --replicates)\n";
      return 2;
    }
    const auto rep = replicate_paper_experiment(
        setup, *horizon, static_cast<std::size_t>(*replicates),
        static_cast<std::uint64_t>(*seed));
    std::cout << *replicates << " replicates, T=" << *horizon << ", "
              << *scns << " SCNs (mean ± 95% CI)\n\n";
    Table table({"policy", "reward", "QoS viol", "res viol", "ratio"});
    for (const auto& p : rep.policies) {
      table.add_row({p.name, p.reward.to_string(), p.qos_violation.to_string(),
                     p.resource_violation.to_string(),
                     p.performance_ratio.to_string(4)});
    }
    table.print(std::cout);
    return 0;
  }

  std::unique_ptr<ScenarioSource> scenario_source;
  std::unique_ptr<Simulator> simulator;
  if (scenario_mode) {
    try {
      scenario_source = std::make_unique<ScenarioSource>(scenario_spec);
    } catch (const std::exception& e) {
      return fail(e.what());
    }
  } else {
    std::unique_ptr<CoverageModel> cov;
    if (!trace_in->empty()) {
      cov = std::make_unique<TraceCoverage>(load_trace(*trace_in), *scns);
    } else if (*coverage == "geometric") {
      GeometricCoverageConfig geo;
      geo.num_scns = *scns;
      geo.num_wds = *scns * 25;
      cov = std::make_unique<GeometricCoverage>(geo);
    } else if (*coverage == "abstract") {
      cov = std::make_unique<AbstractCoverage>(setup.coverage);
    } else {
      std::cerr << "lfsc_run: unknown coverage model '" << *coverage << "'\n";
      return 2;
    }
    simulator = std::make_unique<Simulator>(setup.net, setup.env,
                                            std::move(cov));
  }
  SlotSource& sim = scenario_mode
                        ? static_cast<SlotSource&>(*scenario_source)
                        : static_cast<SlotSource&>(*simulator);

  if (!trace_out->empty()) {
    // Record the workload this configuration generates (a separate pass
    // over a forked world so the experiment below is unaffected).
    auto recorder = simulator->fork();
    TraceWriter writer(*trace_out);
    for (int t = 1; t <= *horizon; ++t) {
      writer.add_slot(recorder.generate_slot(t).info);
    }
    std::cout << "workload trace -> " << *trace_out << " (" << *horizon
              << " slots)\n";
  }

  std::vector<std::unique_ptr<Policy>> owned;
  LfscPolicy* lfsc_instance = nullptr;
  int lfsc_index = -1;
  for (const auto& name : split_csv(*policies_flag)) {
    if (name == "Oracle") {
      owned.push_back(std::make_unique<OraclePolicy>(setup.net));
    } else if (name == "LFSC") {
      auto lfsc = std::make_unique<LfscPolicy>(setup.net, setup.lfsc);
      lfsc_instance = lfsc.get();
      lfsc_index = static_cast<int>(owned.size());
      owned.push_back(std::move(lfsc));
    } else if (name == "vUCB") {
      owned.push_back(std::make_unique<VucbPolicy>(setup.net));
    } else if (name == "FML") {
      owned.push_back(std::make_unique<FmlPolicy>(setup.net));
    } else if (name == "Random") {
      owned.push_back(std::make_unique<RandomPolicy>(setup.net));
    } else if (name == "LinUCB") {
      owned.push_back(std::make_unique<LinUcbPolicy>(setup.net));
    } else if (name == "Thompson") {
      owned.push_back(std::make_unique<ThompsonPolicy>(setup.net));
    } else {
      std::cerr << "lfsc_run: unknown policy '" << name
                << "' (known: Oracle, LFSC, vUCB, FML, Random, LinUCB, "
                   "Thompson)\n";
      return 2;
    }
  }
  if (owned.empty()) {
    std::cerr << "lfsc_run: empty policy roster\n";
    return 2;
  }

  if (!state_in->empty()) {
    if (lfsc_instance == nullptr) {
      std::cerr << "lfsc_run: --load-state requires LFSC in --policies\n";
      return 2;
    }
    std::ifstream in(*state_in);
    if (!in) {
      std::cerr << "lfsc_run: cannot open state file " << *state_in << "\n";
      return 2;
    }
    lfsc_instance->load(in);
    std::cout << "warm-started LFSC from " << *state_in << "\n";
  }

  if (want_telemetry && lfsc_instance == nullptr) {
    std::cerr << "lfsc_run: --telemetry/--telemetry-csv require LFSC in "
                 "--policies\n";
    return 2;
  }
  if ((*slot_budget_us > 0 || force_rung || *audit_stride > 0 ||
       solver_kind != SolverKind::kAuto || *improve_flag) &&
      lfsc_instance == nullptr) {
    std::cerr << "lfsc_run: --slot-budget-us/--degrade/--audit-stride/"
                 "--solver/--improve require LFSC in --policies\n";
    return 2;
  }

  auto policies = policy_pointers(owned);
  RunConfig run_config{.horizon = *horizon};
  if (want_telemetry) {
    run_config.telemetry = &lfsc_instance->telemetry();
    run_config.telemetry_interval = *telemetry_interval;
    run_config.telemetry_policy = lfsc_index;
  }
  std::unique_ptr<FaultModel> faults;
  if (fault_config.any()) {
    faults = std::make_unique<FaultModel>(fault_config, *scns);
    run_config.faults = faults.get();
  }
  run_config.slot_budget_us = static_cast<std::uint32_t>(*slot_budget_us);
  std::unique_ptr<AdmissionControl> admission;
  if (admission_config.enabled()) {
    admission = std::make_unique<AdmissionControl>(admission_config, setup.net);
    run_config.admission = admission.get();
  }
  if (!checkpoint_path->empty()) {
    run_config.checkpoint_path = *checkpoint_path;
    run_config.checkpoint_every = *checkpoint_every;
    run_config.resume = *resume;
    // With a checkpoint configured, Ctrl-C and a supervisor's TERM both
    // become a graceful stop: the runner finishes the current slot,
    // writes a final checkpoint, and the process exits cleanly with
    // status 3.
    run_config.stop = &g_stop;
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
  }

  ExperimentResult result;
  try {
    result = run_experiment(sim, policies, run_config);
  } catch (const std::exception& e) {
    std::cerr << "lfsc_run: " << e.what() << "\n";
    return 2;
  }

  if (run_config.resume) {
    std::cout << "resumed from " << *checkpoint_path << "\n";
  }
  if (result.interrupted) {
    std::cout << "interrupted after slot " << result.completed_slots << "/"
              << *horizon << "; checkpoint -> " << *checkpoint_path
              << " (re-run with --resume to continue)\n";
  }

  if (!state_out->empty()) {
    if (lfsc_instance == nullptr) {
      std::cerr << "lfsc_run: --save-state requires LFSC in --policies\n";
      return 2;
    }
    std::ofstream out(*state_out);
    if (!out) {
      std::cerr << "lfsc_run: cannot open state file " << *state_out << "\n";
      return 2;
    }
    lfsc_instance->save(out);
    std::cout << "LFSC state -> " << *state_out << "\n";
  }

  if (!telemetry_json->empty()) {
    std::ofstream out(*telemetry_json);
    if (!out) {
      std::cerr << "lfsc_run: cannot open telemetry file " << *telemetry_json
                << "\n";
      return 2;
    }
    telemetry::write_json(out, lfsc_instance->telemetry(),
                          &result.telemetry_series, "LFSC");
    std::cout << "telemetry -> " << *telemetry_json << "\n";
  }
  if (!telemetry_csv->empty()) {
    std::ofstream out(*telemetry_csv);
    if (!out) {
      std::cerr << "lfsc_run: cannot open telemetry file " << *telemetry_csv
                << "\n";
      return 2;
    }
    telemetry::write_csv(out, result.telemetry_series);
    std::cout << "telemetry series -> " << *telemetry_csv << "\n";
  }
  if (want_telemetry && !telemetry::kEnabled) {
    std::cout << "note: telemetry instrumentation compiled out "
                 "(LFSC_TELEMETRY=OFF); exports are empty shells\n";
  }

  if (scenario_mode) {
    std::cout << "scenario '" << scenario_spec.name << "' ("
              << *scenario_path << ")\n";
  }
  std::cout << *scns << " SCNs, c=" << *capacity << ", alpha=" << *alpha
            << ", beta=" << *beta << ", T=" << *horizon << "\n\n";
  Table table({"policy", "reward", "QoS viol (1c)", "res viol (1d)",
               "ratio"});
  for (const auto& rec : result.series) {
    table.add_row({std::string(rec.name()), Table::num(rec.total_reward(), 1),
                   Table::num(rec.total_qos_violation(), 1),
                   Table::num(rec.total_resource_violation(), 1),
                   Table::num(rec.final_performance_ratio(), 4)});
  }
  table.print(std::cout);
  std::cout << "(" << Table::num(result.wall_seconds, 2) << "s)\n";

  if (!csv_prefix->empty()) {
    std::vector<std::pair<std::string, std::vector<double>>> reward, viol;
    for (const auto& rec : result.series) {
      reward.emplace_back(rec.name(), rec.cumulative_reward());
      auto qos = rec.cumulative_qos_violation();
      const auto res = rec.cumulative_resource_violation();
      for (std::size_t i = 0; i < qos.size(); ++i) qos[i] += res[i];
      viol.emplace_back(rec.name(), std::move(qos));
    }
    const std::size_t stride =
        static_cast<std::size_t>(*horizon) > 2000
            ? static_cast<std::size_t>(*horizon) / 2000
            : 1;
    write_series_csv(*csv_prefix + "_reward.csv", reward, stride);
    write_series_csv(*csv_prefix + "_violations.csv", viol, stride);
    std::cout << "series -> " << *csv_prefix << "_reward.csv, "
              << *csv_prefix << "_violations.csv\n";
  }
  return result.interrupted ? 3 : 0;
}
