// Differential fuzzer: optimized LfscPolicy vs the naive paper
// transliteration (src/reference) over randomized instances.
//
//   lfsc_diff_fuzz [--seeds N] [--instances N] [--base-seed S]
//                  [--inject-off-by-one] [--no-parallel] [--no-es]
//                  [--improve]
//
// Runs `seeds x instances` randomized instances (default 20 x 25 = 500)
// and exits non-zero at the first divergence, printing the instance seed
// so the failure replays with --seeds 1 --instances 1 --base-seed <seed>.
// --inject-off-by-one flips the reference's epsilon off-by-one bug on;
// the run then SUCCEEDS only if the harness catches it (self-test mode).
//
// --improve switches to the solver-layer mode: random assignment
// instances (with parallel duplicate edges and randomized mid-pass
// deadlines) through greedy -> shift-swap improver -> flow, checking on
// every instance that greedy <= improved <= flow optimum, that the
// reported gain matches the recomputed weights, and that the improved
// assignment still satisfies capacity (1a) and task uniqueness (1b).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "reference/differential.h"
#include "solver/improve.h"
#include "solver/min_cost_flow.h"

namespace {

std::uint64_t parse_u64(const char* arg, const char* flag) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(arg, &end, 10);
  if (end == arg || *end != '\0') {
    std::fprintf(stderr, "lfsc_diff_fuzz: bad value for %s: %s\n", flag, arg);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(value);
}

/// Total weight of `a` under `edges`, best-edge per (scn, local) so
/// planted duplicates resolve the way every solver picks them.
double assignment_weight(const lfsc::Assignment& a,
                         const std::vector<lfsc::Edge>& edges, int num_scns,
                         int num_tasks) {
  std::vector<std::vector<double>> best(
      static_cast<std::size_t>(num_scns),
      std::vector<double>(static_cast<std::size_t>(num_tasks), 0.0));
  for (const lfsc::Edge& e : edges) {
    double& slot = best[static_cast<std::size_t>(e.scn)]
                       [static_cast<std::size_t>(e.local)];
    slot = std::max(slot, e.weight);
  }
  double total = 0.0;
  for (std::size_t m = 0; m < a.selected.size(); ++m) {
    for (const int local : a.selected[m]) {
      total += best[m][static_cast<std::size_t>(local)];
    }
  }
  return total;
}

/// One improver fuzz instance; returns a non-empty violation detail on
/// failure.
std::string fuzz_improve_one(std::uint64_t seed) {
  lfsc::RngStream rng(seed);
  const int scns = 2 + static_cast<int>(rng.uniform() * 6);
  const int tasks = 4 + static_cast<int>(rng.uniform() * 60);
  const int capacity = 1 + static_cast<int>(rng.uniform() * 4);
  const double density = 0.1 + rng.uniform() * 0.7;

  std::vector<lfsc::Edge> edges;
  for (int m = 0; m < scns; ++m) {
    for (int i = 0; i < tasks; ++i) {
      if (rng.uniform() >= density) continue;
      lfsc::Edge e;
      e.scn = m;
      e.task = i;
      e.local = i;
      e.weight = rng.uniform(0.01, 1.0);
      edges.push_back(e);
      if (rng.uniform() < 0.15) {  // parallel duplicate (scn, local)
        e.weight = rng.uniform(0.01, 1.0);
        edges.push_back(e);
      }
    }
  }

  const lfsc::Assignment greedy =
      lfsc::greedy_select(scns, tasks, capacity, edges);
  const double greedy_w = assignment_weight(greedy, edges, scns, tasks);

  lfsc::Assignment improved = greedy;
  lfsc::ShiftSwapOptions opts;
  // A third of the runs get a deadline that fires mid-pass, exercising
  // the anytime cut; the result must stay feasible and never-worse.
  long long fuel = -1;
  if (rng.uniform() < 0.33) {
    fuel = 1 + static_cast<long long>(rng.uniform() * 40.0);
    opts.check_stride = 4;
    opts.deadline = [&fuel]() { return --fuel < 0; };
  }
  lfsc::ShiftSwapScratch scratch;
  const lfsc::ShiftSwapStats stats = lfsc::improve_shift_swap(
      scns, tasks, capacity, edges, improved, opts, scratch);
  const double improved_w = assignment_weight(improved, edges, scns, tasks);

  char buf[256];
  if (stats.gained < 0.0) {
    std::snprintf(buf, sizeof buf, "negative gain %.17g", stats.gained);
    return buf;
  }
  if (std::abs(improved_w - (greedy_w + stats.gained)) > 1e-9) {
    std::snprintf(buf, sizeof buf,
                  "gain mismatch: greedy %.17g + gained %.17g != improved "
                  "%.17g",
                  greedy_w, stats.gained, improved_w);
    return buf;
  }
  if (improved_w + 1e-9 < greedy_w) {
    std::snprintf(buf, sizeof buf, "improved %.17g < greedy %.17g",
                  improved_w, greedy_w);
    return buf;
  }
  const auto flow = lfsc::max_weight_b_matching(scns, tasks, capacity, edges);
  if (improved_w > flow.total_weight + 1e-9) {
    std::snprintf(buf, sizeof buf, "improved %.17g > flow optimum %.17g",
                  improved_w, flow.total_weight);
    return buf;
  }
  // Feasibility: capacity (1a) and task uniqueness (1b).
  std::vector<char> task_taken(static_cast<std::size_t>(tasks), 0);
  for (int m = 0; m < scns; ++m) {
    const auto& sel = improved.selected[static_cast<std::size_t>(m)];
    if (static_cast<int>(sel.size()) > capacity) {
      std::snprintf(buf, sizeof buf, "(1a) violated: SCN %d holds %zu > c=%d",
                    m, sel.size(), capacity);
      return buf;
    }
    for (const int local : sel) {
      char& taken = task_taken[static_cast<std::size_t>(local)];
      if (taken) {
        std::snprintf(buf, sizeof buf, "(1b) violated: task %d selected twice",
                      local);
        return buf;
      }
      taken = 1;
    }
  }
  return "";
}

int run_improve_fuzz(std::uint64_t num_seeds, std::uint64_t instances_per_seed,
                     std::uint64_t base_seed) {
  std::uint64_t total = 0, violations = 0;
  for (std::uint64_t s = 0; s < num_seeds; ++s) {
    for (std::uint64_t i = 0; i < instances_per_seed; ++i) {
      const std::uint64_t seed =
          (base_seed + s) * 0x9E3779B97F4A7C15ULL + i * 0x100000001B3ULL;
      const std::string detail = fuzz_improve_one(seed);
      ++total;
      if (!detail.empty()) {
        ++violations;
        std::fprintf(stderr,
                     "IMPROVER VIOLATION at instance seed %llu:\n  %s\n"
                     "replay: lfsc_diff_fuzz --improve --seeds 1 "
                     "--instances 1 --base-seed %llu\n",
                     static_cast<unsigned long long>(seed), detail.c_str(),
                     static_cast<unsigned long long>(seed));
      }
    }
  }
  std::printf("lfsc_diff_fuzz --improve: %llu instances, %llu violations\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(violations));
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t num_seeds = 20;
  std::uint64_t instances_per_seed = 25;
  std::uint64_t base_seed = 1;
  bool improve_mode = false;
  lfsc::DiffOptions opts;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lfsc_diff_fuzz: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--seeds") == 0) {
      num_seeds = parse_u64(next(), "--seeds");
    } else if (std::strcmp(arg, "--instances") == 0) {
      instances_per_seed = parse_u64(next(), "--instances");
    } else if (std::strcmp(arg, "--base-seed") == 0) {
      base_seed = parse_u64(next(), "--base-seed");
    } else if (std::strcmp(arg, "--inject-off-by-one") == 0) {
      opts.inject_epsilon_off_by_one = true;
    } else if (std::strcmp(arg, "--no-parallel") == 0) {
      opts.check_parallel = false;
    } else if (std::strcmp(arg, "--no-es") == 0) {
      opts.check_es_edges = false;
    } else if (std::strcmp(arg, "--improve") == 0) {
      improve_mode = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "usage: lfsc_diff_fuzz [--seeds N] [--instances N] [--base-seed S]\n"
          "                      [--inject-off-by-one] [--no-parallel] "
          "[--no-es] [--improve]\n");
      return 0;
    } else {
      std::fprintf(stderr, "lfsc_diff_fuzz: unknown flag %s\n", arg);
      return 2;
    }
  }

  if (improve_mode) {
    return run_improve_fuzz(num_seeds, instances_per_seed, base_seed);
  }

  std::uint64_t total = 0;
  std::uint64_t diverged = 0;
  long long slots = 0, capped = 0, tie_skips = 0, exact = 0;
  double max_p_gap = 0.0, max_l_gap = 0.0, max_w_gap = 0.0;
  std::string first_detail;
  std::uint64_t first_seed = 0;

  for (std::uint64_t s = 0; s < num_seeds; ++s) {
    for (std::uint64_t i = 0; i < instances_per_seed; ++i) {
      // Spread instance seeds across the space so corpus seeds differ in
      // every bit, not just the low ones.
      const std::uint64_t seed =
          (base_seed + s) * 0x9E3779B97F4A7C15ULL + i * 0x100000001B3ULL;
      const lfsc::DiffInstance inst = lfsc::random_instance(seed);
      const lfsc::DiffResult res = lfsc::run_differential(inst, opts);
      ++total;
      slots += res.slots_run;
      capped += res.capped_scn_slots;
      tie_skips += res.key_tie_skips;
      exact += res.exact_checks;
      if (res.max_probability_gap > max_p_gap) max_p_gap = res.max_probability_gap;
      if (res.max_multiplier_gap > max_l_gap) max_l_gap = res.max_multiplier_gap;
      if (res.max_weight_gap > max_w_gap) max_w_gap = res.max_weight_gap;
      if (res.diverged) {
        ++diverged;
        if (first_detail.empty()) {
          first_detail = res.detail;
          first_seed = seed;
        }
        if (!opts.inject_epsilon_off_by_one) {
          std::fprintf(stderr,
                       "DIVERGENCE at instance seed %llu:\n  %s\n"
                       "replay: lfsc_diff_fuzz --seeds 1 --instances 1 "
                       "--base-seed %llu\n",
                       static_cast<unsigned long long>(seed),
                       res.detail.c_str(),
                       static_cast<unsigned long long>(seed));
        }
      }
    }
  }

  std::printf(
      "lfsc_diff_fuzz: %llu instances, %lld slots, %lld capped SCN-slots, "
      "%lld key-tie skips, %lld exact checks\n"
      "  max gaps: probability %.3g, multiplier %.3g, weight %.3g\n"
      "  divergences: %llu\n",
      static_cast<unsigned long long>(total), slots, capped, tie_skips, exact,
      max_p_gap, max_l_gap, max_w_gap,
      static_cast<unsigned long long>(diverged));

  if (opts.inject_epsilon_off_by_one) {
    // Self-test: the injected bug must be caught on a corpus this size.
    if (diverged == 0) {
      std::fprintf(stderr,
                   "SELF-TEST FAILED: injected epsilon off-by-one was not "
                   "detected\n");
      return 1;
    }
    std::printf("self-test: injected bug detected (first at seed %llu: %s)\n",
                static_cast<unsigned long long>(first_seed),
                first_detail.c_str());
    return 0;
  }
  return diverged == 0 ? 0 : 1;
}
