// Differential fuzzer: optimized LfscPolicy vs the naive paper
// transliteration (src/reference) over randomized instances.
//
//   lfsc_diff_fuzz [--seeds N] [--instances N] [--base-seed S]
//                  [--inject-off-by-one] [--no-parallel] [--no-es]
//
// Runs `seeds x instances` randomized instances (default 20 x 25 = 500)
// and exits non-zero at the first divergence, printing the instance seed
// so the failure replays with --seeds 1 --instances 1 --base-seed <seed>.
// --inject-off-by-one flips the reference's epsilon off-by-one bug on;
// the run then SUCCEEDS only if the harness catches it (self-test mode).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "reference/differential.h"

namespace {

std::uint64_t parse_u64(const char* arg, const char* flag) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(arg, &end, 10);
  if (end == arg || *end != '\0') {
    std::fprintf(stderr, "lfsc_diff_fuzz: bad value for %s: %s\n", flag, arg);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(value);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t num_seeds = 20;
  std::uint64_t instances_per_seed = 25;
  std::uint64_t base_seed = 1;
  lfsc::DiffOptions opts;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lfsc_diff_fuzz: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--seeds") == 0) {
      num_seeds = parse_u64(next(), "--seeds");
    } else if (std::strcmp(arg, "--instances") == 0) {
      instances_per_seed = parse_u64(next(), "--instances");
    } else if (std::strcmp(arg, "--base-seed") == 0) {
      base_seed = parse_u64(next(), "--base-seed");
    } else if (std::strcmp(arg, "--inject-off-by-one") == 0) {
      opts.inject_epsilon_off_by_one = true;
    } else if (std::strcmp(arg, "--no-parallel") == 0) {
      opts.check_parallel = false;
    } else if (std::strcmp(arg, "--no-es") == 0) {
      opts.check_es_edges = false;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "usage: lfsc_diff_fuzz [--seeds N] [--instances N] [--base-seed S]\n"
          "                      [--inject-off-by-one] [--no-parallel] "
          "[--no-es]\n");
      return 0;
    } else {
      std::fprintf(stderr, "lfsc_diff_fuzz: unknown flag %s\n", arg);
      return 2;
    }
  }

  std::uint64_t total = 0;
  std::uint64_t diverged = 0;
  long long slots = 0, capped = 0, tie_skips = 0, exact = 0;
  double max_p_gap = 0.0, max_l_gap = 0.0, max_w_gap = 0.0;
  std::string first_detail;
  std::uint64_t first_seed = 0;

  for (std::uint64_t s = 0; s < num_seeds; ++s) {
    for (std::uint64_t i = 0; i < instances_per_seed; ++i) {
      // Spread instance seeds across the space so corpus seeds differ in
      // every bit, not just the low ones.
      const std::uint64_t seed =
          (base_seed + s) * 0x9E3779B97F4A7C15ULL + i * 0x100000001B3ULL;
      const lfsc::DiffInstance inst = lfsc::random_instance(seed);
      const lfsc::DiffResult res = lfsc::run_differential(inst, opts);
      ++total;
      slots += res.slots_run;
      capped += res.capped_scn_slots;
      tie_skips += res.key_tie_skips;
      exact += res.exact_checks;
      if (res.max_probability_gap > max_p_gap) max_p_gap = res.max_probability_gap;
      if (res.max_multiplier_gap > max_l_gap) max_l_gap = res.max_multiplier_gap;
      if (res.max_weight_gap > max_w_gap) max_w_gap = res.max_weight_gap;
      if (res.diverged) {
        ++diverged;
        if (first_detail.empty()) {
          first_detail = res.detail;
          first_seed = seed;
        }
        if (!opts.inject_epsilon_off_by_one) {
          std::fprintf(stderr,
                       "DIVERGENCE at instance seed %llu:\n  %s\n"
                       "replay: lfsc_diff_fuzz --seeds 1 --instances 1 "
                       "--base-seed %llu\n",
                       static_cast<unsigned long long>(seed),
                       res.detail.c_str(),
                       static_cast<unsigned long long>(seed));
        }
      }
    }
  }

  std::printf(
      "lfsc_diff_fuzz: %llu instances, %lld slots, %lld capped SCN-slots, "
      "%lld key-tie skips, %lld exact checks\n"
      "  max gaps: probability %.3g, multiplier %.3g, weight %.3g\n"
      "  divergences: %llu\n",
      static_cast<unsigned long long>(total), slots, capped, tie_skips, exact,
      max_p_gap, max_l_gap, max_w_gap,
      static_cast<unsigned long long>(diverged));

  if (opts.inject_epsilon_off_by_one) {
    // Self-test: the injected bug must be caught on a corpus this size.
    if (diverged == 0) {
      std::fprintf(stderr,
                   "SELF-TEST FAILED: injected epsilon off-by-one was not "
                   "detected\n");
      return 1;
    }
    std::printf("self-test: injected bug detected (first at seed %llu: %s)\n",
                static_cast<unsigned long long>(first_seed),
                first_detail.c_str());
    return 0;
  }
  return diverged == 0 ? 0 : 1;
}
