// Design ablations for LFSC (DESIGN.md Sec. 6):
//   * hypercube granularity h_T (context partition resolution);
//   * exploration rate gamma;
//   * Lagrangian constraint terms on/off;
//   * cross-SCN greedy coordination vs independent DepRound;
//   * Efraimidis-Spirakis randomized edges vs the literal deterministic
//     w(m,i) ∝ p weighting.
// Run on a reduced setup so all variants complete quickly; scale with
// LFSC_BENCH_T / LFSC_BENCH_SCNS.
#include <functional>
#include <iostream>
#include <vector>

#include "common/csv.h"
#include "fig_common.h"
#include "harness/sweep.h"
#include "lfsc/lfsc_policy.h"

int main() {
  using namespace lfsc;
  using namespace lfsc::bench;

  const int horizon = env_int("LFSC_BENCH_T", 4000);
  const int scns = env_int("LFSC_BENCH_SCNS", 10);

  struct Variant {
    std::string label;
    std::function<void(LfscConfig&)> tweak;
    bool validate = true;
  };
  std::vector<Variant> variants;
  variants.push_back({"baseline (h=3, auto gamma)", [](LfscConfig&) {}});
  for (const std::size_t h : {1u, 2u, 4u, 6u}) {
    variants.push_back({"h_T = " + std::to_string(h),
                        [h](LfscConfig& c) { c.parts_per_dim = h; }});
  }
  for (const double g : {0.01, 0.05, 0.2, 0.5}) {
    variants.push_back({"gamma = " + Table::num(g, 2),
                        [g](LfscConfig& c) { c.gamma = g; }});
  }
  variants.push_back({"no Lagrangian terms",
                      [](LfscConfig& c) { c.use_lagrangian = false; }});
  variants.push_back({"no SCN coordination (DepRound)",
                      [](LfscConfig& c) { c.coordinate_scns = false; },
                      /*validate=*/false});
  variants.push_back({"deterministic edges (literal paper)",
                      [](LfscConfig& c) { c.deterministic_edges = true; }});

  struct Row {
    std::string label;
    double reward;
    double violation;
    double ratio;
  };

  std::cerr << "[bench] LFSC ablations: " << variants.size()
            << " variants, " << scns << " SCNs, T=" << horizon << "\n";
  const std::function<Row(std::size_t)> eval = [&](std::size_t i) {
    PaperSetup s;
    s.set_num_scns(scns);
    s.set_horizon(static_cast<std::size_t>(horizon));
    s.lfsc.expected_tasks_per_scn = 68;
    variants[i].tweak(s.lfsc);
    auto sim = s.make_simulator();
    LfscPolicy policy(s.net, s.lfsc);
    Policy* policies[] = {&policy};
    const auto result = run_experiment(
        sim, policies, {.horizon = horizon, .validate = variants[i].validate});
    const auto& rec = result.series.front();
    return Row{variants[i].label, rec.total_reward(), rec.total_violation(),
               rec.final_performance_ratio()};
  };
  const auto rows = sweep_parallel<Row>(variants.size(), eval);

  std::cout << "\n== LFSC design ablations (" << scns << " SCNs, T="
            << horizon << ") ==\n";
  Table table({"variant", "total reward", "total violation", "ratio"});
  CsvWriter csv("ablation.csv");
  csv.header({"variant", "reward", "violation", "ratio"});
  for (const auto& row : rows) {
    table.add_row({row.label, Table::num(row.reward, 1),
                   Table::num(row.violation, 1), Table::num(row.ratio, 4)});
    csv.row({row.label, CsvWriter::format(row.reward),
             CsvWriter::format(row.violation), CsvWriter::format(row.ratio)});
  }
  table.print(std::cout);
  std::cout << "\nfull table -> ablation.csv\n"
            << "\nexpected directions: h_T=1 merges all contexts (no "
               "learning signal);\nlarge h_T slows learning (more cubes to "
               "estimate); no-Lagrangian inflates\nviolations; no-coordination "
               "double-offloads tasks (its reward counts\nduplicates and "
               "(1b) is violated).\n";
  return 0;
}
