// Figure 3: total compound reward and total QoS violation vs the minimum
// completed task threshold alpha in {13, 14, 15, 16, 17} (paper Sec. 5).
//
// Paper shape to reproduce: as alpha grows, LFSC's total reward decreases
// (it spends selections on high-likelihood tasks to chase the threshold)
// yet stays closest to the Oracle; vUCB and FML rewards are flat because
// alpha never enters their decision; violations grow for everyone, but
// most slowly for LFSC.
#include <functional>
#include <iostream>

#include "common/csv.h"
#include "fig_common.h"
#include "harness/sweep.h"

int main() {
  using namespace lfsc;
  using namespace lfsc::bench;

  const int horizon = env_int("LFSC_BENCH_T", 10000);
  const int scns = env_int("LFSC_BENCH_SCNS", 30);
  const std::vector<double> alphas{13.0, 14.0, 15.0, 16.0, 17.0};

  struct Row {
    double alpha;
    std::vector<std::string> names;
    std::vector<double> rewards;
    std::vector<double> qos_violations;
  };

  std::cerr << "[bench] alpha sweep: " << alphas.size() << " points, "
            << scns << " SCNs, T=" << horizon << "\n";
  const std::function<Row(std::size_t)> eval = [&](std::size_t i) {
    PaperSetup s;
    s.set_num_scns(scns);
    s.set_horizon(static_cast<std::size_t>(horizon));
    s.net.qos_alpha = alphas[i];
    auto sim = s.make_simulator();
    auto owned = make_paper_policies(s);
    auto policies = policy_pointers(owned);
    const auto result = run_experiment(sim, policies, {.horizon = horizon});
    Row row;
    row.alpha = alphas[i];
    for (const auto& rec : result.series) {
      row.names.push_back(rec.name());
      row.rewards.push_back(rec.total_reward());
      row.qos_violations.push_back(rec.total_qos_violation());
    }
    return row;
  };
  const auto rows = sweep_parallel<Row>(alphas.size(), eval);

  std::cout << "\n== Fig 3 (left): total compound reward vs alpha ==\n";
  std::vector<std::string> columns{"alpha"};
  for (const auto& name : rows.front().names) columns.push_back(name);
  Table reward_table(columns);
  for (const auto& row : rows) {
    std::vector<std::string> cells{Table::num(row.alpha, 0)};
    for (const double r : row.rewards) cells.push_back(Table::num(r, 1));
    reward_table.add_row(std::move(cells));
  }
  reward_table.print(std::cout);

  std::cout << "\n== Fig 3 (right): total QoS violation (1c) vs alpha ==\n";
  Table viol_table(columns);
  for (const auto& row : rows) {
    std::vector<std::string> cells{Table::num(row.alpha, 0)};
    for (const double v : row.qos_violations) cells.push_back(Table::num(v, 1));
    viol_table.add_row(std::move(cells));
  }
  viol_table.print(std::cout);

  CsvWriter csv("fig3.csv");
  std::vector<std::string> header{"alpha"};
  for (const auto& name : rows.front().names) {
    header.push_back(name + "_reward");
  }
  for (const auto& name : rows.front().names) {
    header.push_back(name + "_qos_violation");
  }
  csv.header(header);
  for (const auto& row : rows) {
    std::vector<double> values{row.alpha};
    values.insert(values.end(), row.rewards.begin(), row.rewards.end());
    values.insert(values.end(), row.qos_violations.begin(),
                  row.qos_violations.end());
    csv.row_values(values);
  }
  std::cout << "\nfull sweep -> fig3.csv\n";

  // Shape checks in text form.
  const auto index_of = [&](const std::string& name) {
    for (std::size_t k = 0; k < rows.front().names.size(); ++k) {
      if (rows.front().names[k] == name) return k;
    }
    return std::size_t{0};
  };
  const auto spread = [&](const std::string& name) {
    const std::size_t k = index_of(name);
    double lo = rows.front().rewards[k], hi = lo;
    for (const auto& row : rows) {
      lo = std::min(lo, row.rewards[k]);
      hi = std::max(hi, row.rewards[k]);
    }
    return (hi - lo) / std::max(1e-9, hi);
  };
  std::cout << "\nreward sensitivity to alpha (max-min)/max: LFSC="
            << Table::num(100.0 * spread("LFSC"), 1)
            << "% vUCB=" << Table::num(100.0 * spread("vUCB"), 1)
            << "% FML=" << Table::num(100.0 * spread("FML"), 1)
            << "%  (paper: vUCB/FML flat)\n";
  return 0;
}
