// Component micro-benchmarks (google-benchmark): the per-slot costs that
// determine whether the MBS controller can run LFSC in real time —
// probability calculation (Alg. 2), greedy assignment (Alg. 4), the
// weight update (Alg. 3), slot generation, and the exact solvers used by
// the oracle validation path.
#include <benchmark/benchmark.h>

#include <array>
#include <cmath>
#include <vector>

#include "bandit/exp3m.h"
#include "bandit/partition.h"
#include "common/rng.h"
#include "harness/paper_setup.h"
#include "lfsc/lfsc_policy.h"
#include "metrics/metrics.h"
#include "solver/greedy_assignment.h"
#include "solver/min_cost_flow.h"

namespace {

using namespace lfsc;

void BM_Exp3mProbabilities(benchmark::State& state) {
  const auto num_arms = static_cast<std::size_t>(state.range(0));
  RngStream rng(1);
  std::vector<double> weights(num_arms);
  for (auto& w : weights) w = std::exp(rng.uniform(-4.0, 4.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exp3m_probabilities(weights, 20, 0.05));
  }
}
BENCHMARK(BM_Exp3mProbabilities)->Arg(35)->Arg(100)->Arg(1000);

void BM_GreedyAssignment(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  RngStream rng(2);
  std::vector<Edge> edges;
  for (int m = 0; m < 30; ++m) {
    for (int i = 0; i < tasks; ++i) {
      if (rng.uniform() < 0.05) {
        Edge e;
        e.scn = m;
        e.task = i;
        e.local = i;
        e.weight = rng.uniform();
        edges.push_back(e);
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_select(30, tasks, 20, edges));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_GreedyAssignment)->Arg(500)->Arg(2000)->Arg(8000);

void BM_MaxWeightBMatching(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  RngStream rng(3);
  std::vector<Edge> edges;
  for (int m = 0; m < 10; ++m) {
    for (int i = 0; i < tasks; ++i) {
      if (rng.uniform() < 0.2) {
        Edge e;
        e.scn = m;
        e.task = i;
        e.local = i;
        e.weight = rng.uniform();
        edges.push_back(e);
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_weight_b_matching(10, tasks, 5, edges));
  }
}
BENCHMARK(BM_MaxWeightBMatching)->Arg(100)->Arg(400);

void BM_PartitionIndex(benchmark::State& state) {
  HypercubePartition part(3, 3);
  RngStream rng(4);
  std::vector<std::array<double, 3>> contexts(1024);
  for (auto& c : contexts) c = {rng.uniform(), rng.uniform(), rng.uniform()};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(part.index(contexts[i++ & 1023]));
  }
}
BENCHMARK(BM_PartitionIndex);

void BM_SimulatorSlot(benchmark::State& state) {
  PaperSetup s;
  s.set_num_scns(static_cast<int>(state.range(0)));
  auto sim = s.make_simulator();
  int t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.generate_slot(++t));
  }
}
BENCHMARK(BM_SimulatorSlot)->Arg(10)->Arg(30);

void BM_LfscFullSlotStep(benchmark::State& state) {
  PaperSetup s;
  s.set_num_scns(static_cast<int>(state.range(0)));
  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);
  int t = 0;
  for (auto _ : state) {
    const auto slot = sim.generate_slot(++t);
    const auto assignment = policy.select(slot.info);
    policy.observe(slot.info, assignment, make_feedback(slot, assignment));
  }
}
BENCHMARK(BM_LfscFullSlotStep)->Arg(10)->Arg(30);

}  // namespace

BENCHMARK_MAIN();
