// Shared plumbing for the figure-reproduction binaries: run the paper
// setup, print downsampled series as console tables, and emit CSVs.
//
// Every figure bench honors two environment variables so the full paper
// scale (T=10000, 30 SCNs) can be dialed down on small machines:
//   LFSC_BENCH_T      horizon override (default: per-bench)
//   LFSC_BENCH_SCNS   SCN count override (default: 30)
#pragma once

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "harness/paper_setup.h"
#include "harness/runner.h"
#include "harness/series_io.h"

namespace lfsc::bench {

struct FigureRun {
  PaperSetup setup;
  int horizon = 10000;
  ExperimentResult result;
};

/// Applies env overrides to the canonical paper setup and runs the full
/// policy roster once.
inline FigureRun run_paper_experiment(int default_horizon,
                                      std::uint64_t seed = 42) {
  FigureRun run;
  run.horizon = env_int("LFSC_BENCH_T", default_horizon);
  const int scns = env_int("LFSC_BENCH_SCNS", 30);
  run.setup.set_num_scns(scns);
  run.setup.set_seed(seed);
  run.setup.set_horizon(static_cast<std::size_t>(run.horizon));
  auto sim = run.setup.make_simulator();
  auto owned = make_paper_policies(run.setup);
  auto policies = policy_pointers(owned);
  std::cerr << "[bench] running paper setup: " << scns << " SCNs, T="
            << run.horizon << "\n";
  run.result = run_experiment(sim, policies, {.horizon = run.horizon});
  return run;
}

/// Prints named series downsampled to ~`points` rows, one column per
/// series, and writes the full-resolution CSV.
inline void print_and_save_series(
    const std::string& title, const std::string& csv_path,
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    std::size_t points = 20, int precision = 1) {
  std::cout << "\n== " << title << " ==\n";
  if (series.empty() || series.front().second.empty()) {
    std::cout << "(no data)\n";
    return;
  }
  std::vector<std::string> columns{"t"};
  for (const auto& [name, values] : series) columns.push_back(name);
  Table table(columns);
  const auto indices =
      downsample_indices(series.front().second.size(), points);
  for (const auto idx : indices) {
    std::vector<std::string> row{std::to_string(idx + 1)};
    for (const auto& [name, values] : series) {
      row.push_back(Table::num(values[idx], precision));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  const std::size_t stride =
      series.front().second.size() > 2000
          ? series.front().second.size() / 2000
          : 1;
  write_series_csv(csv_path, series, stride);
  std::cout << "full series -> " << csv_path << "\n";
}

/// Centered moving average (window w) used for readable per-slot curves.
inline std::vector<double> smooth(std::span<const double> xs, std::size_t w) {
  std::vector<double> out(xs.size(), 0.0);
  if (xs.empty()) return out;
  double sum = 0.0;
  std::size_t left = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sum += xs[i];
    if (i >= w) {
      sum -= xs[left];
      ++left;
    }
    out[i] = sum / static_cast<double>(i - left + 1);
  }
  return out;
}

}  // namespace lfsc::bench
