// Extended baseline comparison: the paper's roster plus two more
// bandit families from its related-work section — LinUCB (parametric
// contextual model, Li et al. [20]) and Thompson sampling (posterior
// randomization) — on the paper setup. Answers two questions the paper
// leaves open: does a parametric context model beat the hypercube
// partition on this workload, and does any constraint-unaware learner
// approach LFSC's performance ratio? Scale with LFSC_BENCH_T /
// LFSC_BENCH_SCNS.
#include <iostream>

#include "baselines/linucb.h"
#include "baselines/thompson.h"
#include "common/csv.h"
#include "fig_common.h"

int main() {
  using namespace lfsc;
  using namespace lfsc::bench;

  const int horizon = env_int("LFSC_BENCH_T", 6000);
  const int scns = env_int("LFSC_BENCH_SCNS", 30);

  PaperSetup setup;
  setup.set_num_scns(scns);
  setup.set_horizon(static_cast<std::size_t>(horizon));
  auto sim = setup.make_simulator();
  auto owned = make_paper_policies(setup);
  LinUcbPolicy linucb(setup.net);
  ThompsonPolicy thompson(setup.net);
  auto policies = policy_pointers(owned);
  policies.push_back(&linucb);
  policies.push_back(&thompson);

  std::cerr << "[bench] baseline zoo: " << policies.size() << " policies, "
            << scns << " SCNs, T=" << horizon << "\n";
  const auto result = run_experiment(sim, policies, {.horizon = horizon});

  std::cout << "\n== extended baseline comparison (" << scns << " SCNs, T="
            << horizon << ") ==\n";
  Table table({"policy", "reward", "QoS viol", "res viol", "ratio",
               "tail reward/slot"});
  CsvWriter csv("baseline_zoo.csv");
  csv.header({"policy", "reward", "qos", "res", "ratio", "tail_reward"});
  const std::size_t tail = static_cast<std::size_t>(horizon) / 10;
  for (const auto& rec : result.series) {
    table.add_row({std::string(rec.name()), Table::num(rec.total_reward(), 1),
                   Table::num(rec.total_qos_violation(), 1),
                   Table::num(rec.total_resource_violation(), 1),
                   Table::num(rec.final_performance_ratio(), 4),
                   Table::num(rec.mean_reward_tail(tail), 2)});
    csv.row({std::string(rec.name()), CsvWriter::format(rec.total_reward()),
             CsvWriter::format(rec.total_qos_violation()),
             CsvWriter::format(rec.total_resource_violation()),
             CsvWriter::format(rec.final_performance_ratio()),
             CsvWriter::format(rec.mean_reward_tail(tail))});
  }
  table.print(std::cout);
  std::cout << "\nfull table -> baseline_zoo.csv\n"
            << "\nreading: the ground truth is piecewise-constant per context "
               "category, so the\nhypercube learners (vUCB/Thompson/FML) fit "
               "it exactly in the limit while\nLinUCB's linear model is "
               "misspecified; none of them touches LFSC's ratio\nbecause "
               "none of them sees the constraints.\n";
  return 0;
}
