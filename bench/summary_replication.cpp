// Replicated summary: the headline comparison (total reward, violations,
// performance ratio per policy) across several independent worlds, as
// mean ± 95% CI. Quantifies how seed-sensitive the single-run figures
// are. Scale with LFSC_BENCH_T / LFSC_BENCH_SCNS / LFSC_BENCH_REPS.
#include <iostream>

#include "common/csv.h"
#include "fig_common.h"
#include "harness/replication.h"

int main() {
  using namespace lfsc;
  using namespace lfsc::bench;

  const int horizon = env_int("LFSC_BENCH_T", 3000);
  const int scns = env_int("LFSC_BENCH_SCNS", 30);
  const int reps = env_int("LFSC_BENCH_REPS", 5);

  PaperSetup setup;
  setup.set_num_scns(scns);
  std::cerr << "[bench] replication: " << reps << " worlds, " << scns
            << " SCNs, T=" << horizon << "\n";
  const auto result = replicate_paper_experiment(
      setup, horizon, static_cast<std::size_t>(reps));

  std::cout << "\n== replicated summary (" << reps << " worlds, T=" << horizon
            << ", mean ± 95% CI) ==\n";
  Table table({"policy", "total reward", "QoS viol (1c)", "res viol (1d)",
               "perf ratio"});
  for (const auto& p : result.policies) {
    table.add_row({p.name, p.reward.to_string(), p.qos_violation.to_string(),
                   p.resource_violation.to_string(),
                   p.performance_ratio.to_string(4)});
  }
  table.print(std::cout);

  CsvWriter csv2("replication.csv");
  csv2.header({"policy", "reward_mean", "reward_ci95", "qos_mean", "qos_ci95",
               "res_mean", "res_ci95", "ratio_mean", "ratio_ci95"});
  for (const auto& p : result.policies) {
    csv2.row({p.name, CsvWriter::format(p.reward.mean),
              CsvWriter::format(p.reward.ci95),
              CsvWriter::format(p.qos_violation.mean),
              CsvWriter::format(p.qos_violation.ci95),
              CsvWriter::format(p.resource_violation.mean),
              CsvWriter::format(p.resource_violation.ci95),
              CsvWriter::format(p.performance_ratio.mean),
              CsvWriter::format(p.performance_ratio.ci95)});
  }
  std::cout << "\nfull table -> replication.csv\n";

  const auto& lfsc = result.find("LFSC");
  const auto& vucb = result.find("vUCB");
  const double share =
      (lfsc.qos_violation.mean + lfsc.resource_violation.mean) /
      std::max(1e-9, vucb.qos_violation.mean + vucb.resource_violation.mean);
  std::cout << "\nLFSC/vUCB violation share across worlds: "
            << Table::num(100.0 * share, 1)
            << "% (paper reports ~30% early-stage, decreasing)\n";
  return 0;
}
