// Figure 2(a): cumulative compound reward vs time slot for Oracle, LFSC,
// vUCB, FML and Random (paper Sec. 5, T = 10000).
//
// Paper shape to reproduce: LFSC's cumulative reward nearly coincides
// with the Oracle's; vUCB and FML exceed both (they ignore the
// constraints); Random trails everyone.
#include <iostream>

#include "fig_common.h"

int main() {
  using namespace lfsc;
  using namespace lfsc::bench;

  const auto run = run_paper_experiment(/*default_horizon=*/10000);

  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (const auto& rec : run.result.series) {
    series.emplace_back(rec.name(), rec.cumulative_reward());
  }
  print_and_save_series("Fig 2(a): cumulative compound reward", "fig2a.csv",
                        series);

  std::cout << "\nshape check (paper: LFSC ~= Oracle, vUCB/FML above, "
               "Random below):\n";
  Table table({"policy", "total reward", "vs Oracle"});
  const double oracle = run.result.find("Oracle").total_reward();
  for (const auto& rec : run.result.series) {
    table.add_row({rec.name(), Table::num(rec.total_reward(), 1),
                   Table::num(100.0 * rec.total_reward() / oracle, 1) + "%"});
  }
  table.print(std::cout);
  return 0;
}
