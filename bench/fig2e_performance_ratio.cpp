// Performance ratio over time (Sec. 5 metric): cumulative reward divided
// by cumulative reward plus cumulative violations.
//
// Paper shape to reproduce: LFSC's ratio dominates every learning
// baseline and approaches the Oracle's as t grows.
#include <iostream>

#include "fig_common.h"

int main() {
  using namespace lfsc;
  using namespace lfsc::bench;

  const auto run = run_paper_experiment(/*default_horizon=*/10000);

  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (const auto& rec : run.result.series) {
    series.emplace_back(rec.name(), rec.performance_ratio());
  }
  print_and_save_series("performance ratio = reward / (reward + violations)",
                        "fig2e.csv", series, 20, 4);

  std::cout << "\nfinal ratios:\n";
  Table table({"policy", "ratio"});
  for (const auto& rec : run.result.series) {
    table.add_row({rec.name(), Table::num(rec.final_performance_ratio(), 4)});
  }
  table.print(std::cout);
  return 0;
}
