// Figure 2(c)/(d): cumulative violations of the QoS constraint (1c) and
// the resource constraint (1d) vs time.
//
// Paper shape to reproduce: LFSC's violations stay a small fraction of
// the constraint-unaware baselines — the paper reports early-stage LFSC
// totals at ~30% of vUCB, ~32% of FML and ~20% of Random, shrinking
// further over time.
#include <iostream>

#include "fig_common.h"

int main() {
  using namespace lfsc;
  using namespace lfsc::bench;

  const auto run = run_paper_experiment(/*default_horizon=*/10000);

  std::vector<std::pair<std::string, std::vector<double>>> qos, res;
  for (const auto& rec : run.result.series) {
    qos.emplace_back(rec.name(), rec.cumulative_qos_violation());
    res.emplace_back(rec.name(), rec.cumulative_resource_violation());
  }
  print_and_save_series("Fig 2(c): cumulative QoS violation (1c)",
                        "fig2c.csv", qos);
  print_and_save_series("Fig 2(d): cumulative resource violation (1d)",
                        "fig2d.csv", res);

  // Early-stage percentages, the paper's headline comparison.
  const std::size_t early = std::min<std::size_t>(
      1000, run.result.series.front().slots());
  const auto early_total = [&](const SeriesRecorder& rec) {
    double sum = 0.0;
    for (std::size_t t = 0; t < early; ++t) {
      sum += rec.qos_violation()[t] + rec.resource_violation()[t];
    }
    return sum;
  };
  const double lfsc = early_total(run.result.find("LFSC"));
  std::cout << "\nearly-stage totals (first " << early
            << " slots; paper: LFSC at ~30%/32%/20% of vUCB/FML/Random):\n";
  Table table({"baseline", "baseline total", "LFSC total", "LFSC share"});
  for (const char* name : {"vUCB", "FML", "Random"}) {
    const double base = early_total(run.result.find(name));
    table.add_row({name, Table::num(base, 1), Table::num(lfsc, 1),
                   Table::num(base > 0 ? 100.0 * lfsc / base : 0.0, 1) + "%"});
  }
  table.print(std::cout);

  // And the trend: LFSC's share should shrink from the first to the
  // second half of the run.
  const std::size_t half = run.result.series.front().slots() / 2;
  const auto window_total = [&](const SeriesRecorder& rec, std::size_t lo,
                                std::size_t hi) {
    double sum = 0.0;
    for (std::size_t t = lo; t < hi; ++t) {
      sum += rec.qos_violation()[t] + rec.resource_violation()[t];
    }
    return sum;
  };
  const auto& lf = run.result.find("LFSC");
  const auto& vu = run.result.find("vUCB");
  const double share_first =
      window_total(lf, 0, half) / std::max(1e-9, window_total(vu, 0, half));
  const double share_second = window_total(lf, half, 2 * half) /
                              std::max(1e-9, window_total(vu, half, 2 * half));
  std::cout << "\nLFSC/vUCB violation share: first half "
            << Table::num(100.0 * share_first, 1) << "%, second half "
            << Table::num(100.0 * share_second, 1)
            << "% (paper: decreasing)\n";
  return 0;
}
