// Figure 2(b): per-time-slot compound reward vs time.
//
// Paper shape to reproduce: LFSC's per-slot reward starts above the
// Oracle's (it grabs high-reward tasks while still ignorant of the
// constraints; the paper reports the crossover near t ~ 74), dips while
// it learns, then converges to just below the Oracle. vUCB/FML stay
// above both throughout; Random stays low.
#include <iostream>

#include "fig_common.h"

int main() {
  using namespace lfsc;
  using namespace lfsc::bench;

  const auto run = run_paper_experiment(/*default_horizon=*/10000);

  // A light moving average (window 25) keeps the console series readable
  // without hiding the early transient; the CSV holds the raw values.
  std::vector<std::pair<std::string, std::vector<double>>> smoothed;
  std::vector<std::pair<std::string, std::vector<double>>> raw;
  for (const auto& rec : run.result.series) {
    raw.emplace_back(rec.name(),
                     std::vector<double>(rec.reward().begin(),
                                         rec.reward().end()));
    smoothed.emplace_back(rec.name(), smooth(rec.reward(), 25));
  }
  print_and_save_series("Fig 2(b): per-slot compound reward (smoothed w=25)",
                        "fig2b.csv", raw, 20, 2);

  // Early-stage detail: the paper highlights LFSC > Oracle in the first
  // slots before learning kicks in.
  const auto& lfsc = run.result.find("LFSC");
  const auto& oracle = run.result.find("Oracle");
  int crossover = -1;
  for (std::size_t t = 0; t < lfsc.reward().size(); ++t) {
    if (lfsc.reward()[t] < oracle.reward()[t]) {
      crossover = static_cast<int>(t) + 1;
      break;
    }
  }
  double lfsc_early = 0.0, oracle_early = 0.0;
  const std::size_t early_window =
      std::min<std::size_t>(50, lfsc.reward().size());
  for (std::size_t t = 0; t < early_window; ++t) {
    lfsc_early += lfsc.reward()[t];
    oracle_early += oracle.reward()[t];
  }
  std::cout << "\nearly-stage check (paper: LFSC above Oracle for the first "
               "~74 slots):\n"
            << "  mean reward, first " << early_window
            << " slots: LFSC=" << Table::num(lfsc_early / early_window, 2)
            << " Oracle=" << Table::num(oracle_early / early_window, 2)
            << "\n  first slot with LFSC < Oracle: t=" << crossover << "\n";

  std::cout << "\nconverged regime (last 10% of slots), mean per-slot "
               "reward:\n";
  Table table({"policy", "tail mean", "vs Oracle"});
  const std::size_t tail = lfsc.slots() / 10;
  const double oracle_tail = oracle.mean_reward_tail(tail);
  for (const auto& rec : run.result.series) {
    table.add_row(
        {rec.name(), Table::num(rec.mean_reward_tail(tail), 2),
         Table::num(100.0 * rec.mean_reward_tail(tail) / oracle_tail, 1) +
             "%"});
  }
  table.print(std::cout);
  return 0;
}
