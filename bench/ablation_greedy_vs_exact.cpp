// Solver-zoo bench: every registered AssignmentSolver plus the anytime
// shift-swap improver across instance shapes, reporting quality and
// wall time per solver. Subsumes the original Lemma 2 empirics (greedy
// vs exact max-weight b-matching): the lemma proves a 1/(c+1)
// worst-case factor; the numbers below show how close practice runs.
//
// Quality is recomputed from the edge list by (scn, local) keeping the
// *maximum* weight over duplicates — a dense overwrite table would
// collapse parallel edges to whichever came last, misattributing the
// solver's pick (the generator plants duplicates on purpose to keep
// this path honest). Degenerate trials (optimal weight <= 0) are
// counted and reported, never silently dropped.
//
// Flags:
//   --trials N   instances per shape (default 8)
//   --json PATH  write the BENCH_solver_zoo.json perf artifact
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "solver/assignment_solver.h"
#include "solver/improve.h"

namespace {

using namespace lfsc;

struct Shape {
  int scns;
  int tasks;
  int capacity;
  double density;
};

/// Total weight of `assignment` under `edges`, resolving a duplicate
/// (scn, local) pair to its best edge — the edge every solver here
/// prefers when parallel edges exist.
double assignment_weight_max(const Assignment& assignment,
                             const std::vector<Edge>& edges, int num_scns,
                             int num_tasks) {
  std::vector<std::vector<double>> best(
      static_cast<std::size_t>(num_scns),
      std::vector<double>(static_cast<std::size_t>(num_tasks), 0.0));
  for (const Edge& e : edges) {
    double& slot = best[static_cast<std::size_t>(e.scn)]
                       [static_cast<std::size_t>(e.local)];
    slot = std::max(slot, e.weight);
  }
  double total = 0.0;
  for (std::size_t m = 0; m < assignment.selected.size(); ++m) {
    for (const int local : assignment.selected[m]) {
      total += best[m][static_cast<std::size_t>(local)];
    }
  }
  return total;
}

struct SolverStats {
  RunningStats weight;
  RunningStats ratio;  ///< vs the flow optimum, non-degenerate trials only
  double wall_us = 0.0;
  int timed_trials = 0;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser parser("ablation_greedy_vs_exact",
                    "solver zoo: quality and wall time of every "
                    "assignment solver, plus the shift-swap improver");
  const int* trials_flag =
      parser.add_int("trials", 8, "instances per shape");
  const std::string* json_path = parser.add_string(
      "json", "", "write the BENCH_solver_zoo.json perf artifact");
  switch (parser.parse(argc, argv, std::cerr)) {
    case FlagParser::Result::kHelp:
      return 0;
    case FlagParser::Result::kError:
      return 2;
    case FlagParser::Result::kOk:
      break;
  }
  if (*trials_flag <= 0) {
    std::cerr << "ablation_greedy_vs_exact: --trials must be positive\n";
    return 2;
  }
  const int kTrials = *trials_flag;

  const std::vector<Shape> shapes{
      {5, 50, 3, 0.5},  {10, 100, 5, 0.3}, {30, 500, 20, 0.15},
      {10, 60, 2, 0.8}, {4, 200, 10, 0.6}, {30, 2000, 20, 0.04},
  };
  const std::vector<SolverKind> zoo{SolverKind::kGreedy, SolverKind::kPacked,
                                    SolverKind::kRadix, SolverKind::kFlow,
                                    SolverKind::kBnb};

  std::cout << "Assignment-solver zoo (ratio = weight/flow optimum; "
               "Lemma 2 floor = 1/(c+1); " << kTrials << " trials)\n";

  struct ShapeReport {
    Shape shape;
    std::vector<SolverStats> solvers;  // parallel to `zoo`
    RunningStats improve_delta;        // improver gain over greedy
    double improve_wall_us = 0.0;
    int skipped = 0;  ///< degenerate trials (optimal weight <= 0)
  };
  std::vector<ShapeReport> reports;

  Assignment assignment;
  GreedySelectScratch scratch;
  ShiftSwapScratch improve_scratch;
  Stopwatch watch;
  for (const auto& shape : shapes) {
    ShapeReport report;
    report.shape = shape;
    report.solvers.resize(zoo.size());
    RngStream rng(static_cast<std::uint64_t>(shape.scns * 7919 + shape.tasks));
    for (int trial = 0; trial < kTrials; ++trial) {
      std::vector<Edge> edges;
      for (int m = 0; m < shape.scns; ++m) {
        for (int i = 0; i < shape.tasks; ++i) {
          if (rng.uniform() >= shape.density) continue;
          Edge e;
          e.scn = m;
          e.task = i;
          e.local = i;
          e.weight = rng.uniform(0.01, 1.0);
          edges.push_back(e);
          // Occasional parallel edge on the same (scn, local): keeps the
          // max-resolving weight recompute honest (see header comment).
          if (rng.uniform() < 0.1) {
            e.weight = rng.uniform(0.01, 1.0);
            edges.push_back(e);
          }
        }
      }

      // The flow solve is the exact optimum for (1a)/(1b); it anchors
      // every ratio, so run it first to detect degenerate trials.
      double flow_weight = 0.0;
      std::vector<double> weights(zoo.size(), 0.0);
      for (std::size_t s = 0; s < zoo.size(); ++s) {
        watch.reset();
        solve_assignment(zoo[s], shape.scns, shape.tasks, shape.capacity,
                         edges, assignment, scratch);
        report.solvers[s].wall_us += watch.seconds() * 1e6;
        ++report.solvers[s].timed_trials;
        weights[s] = assignment_weight_max(assignment, edges, shape.scns,
                                           shape.tasks);
        report.solvers[s].weight.add(weights[s]);
        if (zoo[s] == SolverKind::kFlow) flow_weight = weights[s];

        // Improver delta, measured off the reference greedy with no
        // deadline (the anytime path's best case; gain >= 0 always).
        if (zoo[s] == SolverKind::kGreedy) {
          watch.reset();
          const ShiftSwapStats st = improve_shift_swap(
              shape.scns, shape.tasks, shape.capacity, edges, assignment,
              ShiftSwapOptions{}, improve_scratch);
          report.improve_wall_us += watch.seconds() * 1e6;
          report.improve_delta.add(st.gained);
        }
      }
      if (flow_weight <= 0.0) {
        // Degenerate instance: no positive-weight matching exists, a
        // ratio would be 0/0. Count it instead of pretending the trial
        // never happened.
        ++report.skipped;
        continue;
      }
      for (std::size_t s = 0; s < zoo.size(); ++s) {
        report.solvers[s].ratio.add(weights[s] / flow_weight);
      }
    }
    reports.push_back(std::move(report));
  }

  for (const auto& report : reports) {
    const Shape& shape = report.shape;
    std::cout << "\n" << shape.scns << " SCNs, " << shape.tasks
              << " tasks, c=" << shape.capacity << ", density "
              << Table::num(shape.density, 2) << " (lemma floor "
              << Table::num(1.0 / (shape.capacity + 1), 4) << ", skipped "
              << report.skipped << "/" << kTrials << " degenerate)\n";
    Table table({"solver", "mean ratio", "min ratio", "us/solve",
                 "reward/us"});
    for (std::size_t s = 0; s < zoo.size(); ++s) {
      const SolverStats& st = report.solvers[s];
      const double us =
          st.wall_us / std::max(1, st.timed_trials);
      table.add_row({std::string(solver_name(zoo[s])),
                     Table::num(st.ratio.mean(), 4),
                     Table::num(st.ratio.min(), 4), Table::num(us, 1),
                     Table::num(st.weight.mean() / us, 4)});
    }
    table.print(std::cout);
    std::cout << "improver: mean gain " << Table::num(
                     report.improve_delta.mean(), 4)
              << " over greedy (min " << Table::num(
                     report.improve_delta.min(), 4)
              << ", " << Table::num(
                     report.improve_wall_us / kTrials, 1)
              << " us/solve)\n";
  }
  std::cout << "\nconclusion: every greedy variant ties bit-for-bit and "
               "sits within a few\npercent of optimal — far above the "
               "worst-case 1/(c+1) bound — and the\nshift-swap improver "
               "closes part of the remaining gap for microseconds.\n";

  if (!json_path->empty()) {
    std::ofstream out(*json_path);
    if (!out) {
      std::cerr << "cannot write " << *json_path << "\n";
      return 1;
    }
    out.precision(10);
    out << "{\n  \"benchmark\": \"solver_zoo\",\n  \"trials\": " << kTrials
        << ",\n  \"shapes\": [\n";
    for (std::size_t r = 0; r < reports.size(); ++r) {
      const auto& report = reports[r];
      out << "    {\"scns\": " << report.shape.scns << ", \"tasks\": "
          << report.shape.tasks << ", \"capacity\": " << report.shape.capacity
          << ", \"density\": " << report.shape.density
          << ", \"skipped_trials\": " << report.skipped
          << ",\n     \"improve\": {\"mean_delta\": "
          << report.improve_delta.mean()
          << ", \"min_delta\": " << report.improve_delta.min()
          << ", \"us_per_solve\": " << report.improve_wall_us / kTrials
          << "},\n     \"solvers\": [\n";
      for (std::size_t s = 0; s < report.solvers.size(); ++s) {
        const SolverStats& st = report.solvers[s];
        const double us = st.wall_us / std::max(1, st.timed_trials);
        out << "       {\"name\": \"" << solver_name(zoo[s])
            << "\", \"mean_ratio\": " << st.ratio.mean()
            << ", \"min_ratio\": " << st.ratio.min()
            << ", \"us_per_solve\": " << us
            << ", \"reward_per_us\": " << st.weight.mean() / us << "}"
            << (s + 1 < report.solvers.size() ? ",\n" : "\n");
      }
      out << "     ]}" << (r + 1 < reports.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::cerr << "json -> " << *json_path << "\n";
  }
  return 0;
}
