// Lemma 2 empirics: Alg. 4's greedy assignment vs the exact max-weight
// b-matching (min-cost flow) across instance shapes. The lemma proves a
// 1/(c+1) worst-case factor; the paper notes practice is far closer to
// optimal — this bench quantifies that.
#include <iostream>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "solver/greedy_assignment.h"
#include "solver/min_cost_flow.h"

int main() {
  using namespace lfsc;

  struct Shape {
    int scns;
    int tasks;
    int capacity;
    double density;
  };
  const std::vector<Shape> shapes{
      {5, 50, 3, 0.5},  {10, 100, 5, 0.3}, {30, 500, 20, 0.15},
      {10, 60, 2, 0.8}, {4, 200, 10, 0.6}, {30, 2000, 20, 0.04},
  };
  constexpr int kTrials = 8;

  std::cout << "Alg. 4 greedy vs exact max-weight b-matching "
               "(ratio = greedy/optimal; Lemma 2 floor = 1/(c+1))\n\n";
  Table table({"SCNs", "tasks", "c", "density", "mean ratio", "min ratio",
               "lemma floor"});
  for (const auto& shape : shapes) {
    RunningStats ratio;
    RngStream rng(static_cast<std::uint64_t>(shape.scns * 7919 + shape.tasks));
    for (int trial = 0; trial < kTrials; ++trial) {
      std::vector<Edge> edges;
      for (int m = 0; m < shape.scns; ++m) {
        for (int i = 0; i < shape.tasks; ++i) {
          if (rng.uniform() < shape.density) {
            Edge e;
            e.scn = m;
            e.task = i;
            e.local = i;
            e.weight = rng.uniform(0.01, 1.0);
            edges.push_back(e);
          }
        }
      }
      const auto exact = max_weight_b_matching(shape.scns, shape.tasks,
                                               shape.capacity, edges);
      const auto greedy =
          greedy_select(shape.scns, shape.tasks, shape.capacity, edges);
      // Recompute greedy weight from the edge list.
      double greedy_weight = 0.0;
      std::vector<std::vector<double>> weight_of(
          static_cast<std::size_t>(shape.scns),
          std::vector<double>(static_cast<std::size_t>(shape.tasks), 0.0));
      for (const auto& e : edges) {
        weight_of[static_cast<std::size_t>(e.scn)]
                 [static_cast<std::size_t>(e.local)] = e.weight;
      }
      for (std::size_t m = 0; m < greedy.selected.size(); ++m) {
        for (const int local : greedy.selected[m]) {
          greedy_weight += weight_of[m][static_cast<std::size_t>(local)];
        }
      }
      if (exact.total_weight > 0.0) {
        ratio.add(greedy_weight / exact.total_weight);
      }
    }
    table.add_row({std::to_string(shape.scns), std::to_string(shape.tasks),
                   std::to_string(shape.capacity),
                   Table::num(shape.density, 2),
                   Table::num(ratio.mean(), 4), Table::num(ratio.min(), 4),
                   Table::num(1.0 / (shape.capacity + 1), 4)});
  }
  table.print(std::cout);
  std::cout << "\nconclusion: the greedy sits within a few percent of "
               "optimal on realistic\nshapes — far above the worst-case "
               "1/(c+1) bound, matching the paper's remark.\n";
  return 0;
}
