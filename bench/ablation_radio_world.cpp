// Substrate robustness: do the paper's conclusions survive replacing the
// configured (table-driven) environment with the physics-derived radio
// world? Runs the full roster on both and compares the orderings the
// figures rest on. Scale with LFSC_BENCH_T.
#include <iostream>
#include <memory>

#include "baselines/fml.h"
#include "baselines/oracle.h"
#include "baselines/random_policy.h"
#include "baselines/vucb.h"
#include "fig_common.h"
#include "lfsc/lfsc_policy.h"
#include "radio/radio_simulator.h"

int main() {
  using namespace lfsc;
  using namespace lfsc::bench;

  const int horizon = env_int("LFSC_BENCH_T", 4000);

  // Matched scale for both worlds: 10 SCNs, c=8.
  NetworkConfig net{.num_scns = 10,
                    .capacity_c = 8,
                    .qos_alpha = 4.0,
                    .resource_beta = 11.0};

  const auto run_roster = [&](SlotSource& sim, std::size_t expected_tasks) {
    OraclePolicy oracle(net);
    LfscConfig lfsc_config;
    lfsc_config.horizon = static_cast<std::size_t>(horizon);
    lfsc_config.expected_tasks_per_scn = expected_tasks;
    LfscPolicy lfsc(net, lfsc_config);
    VucbPolicy vucb(net);
    FmlPolicy fml(net);
    RandomPolicy random(net);
    Policy* policies[] = {&oracle, &lfsc, &vucb, &fml, &random};
    return run_experiment(sim, policies, {.horizon = horizon});
  };

  std::cerr << "[bench] substrate robustness, T=" << horizon << "\n";

  PaperSetup table_setup;
  table_setup.set_num_scns(net.num_scns);
  table_setup.net = net;
  table_setup.coverage.tasks_per_scn_min = 25;
  table_setup.coverage.tasks_per_scn_max = 55;
  table_setup.set_horizon(static_cast<std::size_t>(horizon));
  auto table_sim = table_setup.make_simulator();
  const auto table_result = run_roster(table_sim, 40);

  RadioSimConfig radio_config;
  radio_config.geometry.num_wds = 220;
  radio_config.geometry.area_km = 2.0;
  RadioSimulator radio_sim(net, radio_config);
  const auto radio_result = run_roster(radio_sim, 40);

  const auto print_world = [](const char* title,
                              const ExperimentResult& result) {
    std::cout << "\n== " << title << " ==\n";
    Table table({"policy", "reward", "violations", "ratio"});
    for (const auto& rec : result.series) {
      table.add_row({std::string(rec.name()),
                     Table::num(rec.total_reward(), 1),
                     Table::num(rec.total_violation(), 1),
                     Table::num(rec.final_performance_ratio(), 4)});
    }
    table.print(std::cout);
  };
  print_world("table-driven environment (paper setup)", table_result);
  print_world("physics-driven radio world (3GPP UMi mmWave + edge compute)",
              radio_result);

  const auto check = [](const ExperimentResult& result) {
    const bool lfsc_best_ratio =
        result.find("LFSC").final_performance_ratio() >
            result.find("vUCB").final_performance_ratio() &&
        result.find("LFSC").final_performance_ratio() >
            result.find("Random").final_performance_ratio();
    const bool lfsc_low_violation =
        result.find("LFSC").total_violation() <
        result.find("Random").total_violation();
    return lfsc_best_ratio && lfsc_low_violation;
  };
  std::cout << "\nconclusion stability: LFSC leads ratio & undercuts Random "
            << "violations on the\ntable world: "
            << (check(table_result) ? "yes" : "NO")
            << "; on the radio world: "
            << (check(radio_result) ? "yes" : "NO") << "\n";
  return 0;
}
