// City-scale slot pipeline throughput: the paper's controller loop at
// metropolitan deployment sizes (default 2000 SCNs vs the paper's 30),
// exercising the SoA weight tables, the SIMD Exp3.M kernels, the radix
// greedy, and the sharded multi-SCN execution together.
//
// The headline is the same bucket split as bench/slot_throughput.cpp —
// generate / policy / feedback — with `policy` (Alg. 2 -> 4 -> 3) the
// number under the real-time budget. Wall-clock comparisons follow the
// matched-window A/B rule (EXPERIMENTS.md).
//
// Flags:
//   --scns N         SCN count (default 2000, env LFSC_BENCH_SCNS)
//   --shards N       LfscConfig::shards (0 = auto; implies parallel_scns)
//   --slots N        timed slots (default 30, env LFSC_BENCH_T)
//   --warmup N       untimed warmup slots (default 3)
//   --force-scalar   pin the SIMD dispatch to the scalar kernel table
//   --json PATH      write the JSON artifact (BENCH_city_scale.json at
//                    the repo root tracks the city-scale trajectory)
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/simd.h"
#include "common/stopwatch.h"
#include "harness/paper_setup.h"
#include "lfsc/lfsc_policy.h"
#include "metrics/metrics.h"
#include "telemetry/telemetry.h"

namespace {

using namespace lfsc;

struct Options {
  int scns = 0;
  int shards = 0;
  int slots = 0;
  int warmup = 3;
  bool force_scalar = false;
  std::string json_path;
};

Options parse(int argc, char** argv) {
  Options opt;
  opt.scns = env_int("LFSC_BENCH_SCNS", 2000);
  opt.slots = env_int("LFSC_BENCH_T", 30);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scns") {
      opt.scns = std::atoi(next());
    } else if (arg == "--shards") {
      opt.shards = std::atoi(next());
    } else if (arg == "--slots") {
      opt.slots = std::atoi(next());
    } else if (arg == "--warmup") {
      opt.warmup = std::atoi(next());
    } else if (arg == "--force-scalar") {
      opt.force_scalar = true;
    } else if (arg == "--json") {
      opt.json_path = next();
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      std::exit(2);
    }
  }
  if (opt.scns <= 0) opt.scns = 1;
  if (opt.slots <= 0) opt.slots = 1;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (opt.force_scalar) simd::set_force_scalar(true);

  PaperSetup setup;
  setup.set_seed(42);
  setup.set_num_scns(opt.scns);
  setup.set_horizon(static_cast<std::size_t>(opt.slots + opt.warmup));
  // City scale always runs the sharded pipeline; --shards 0 lets the
  // policy pick (4x workers), a positive value pins the shard count.
  setup.lfsc.parallel_scns = true;
  setup.lfsc.shards = opt.shards;
  auto sim = setup.make_simulator();
  LfscPolicy policy(setup.net, setup.lfsc);

  std::cerr << "[city_scale] " << setup.net.num_scns << " SCNs, c="
            << setup.net.capacity_c << ", slots=" << opt.slots << " (+"
            << opt.warmup << " warmup), shards=" << opt.shards
            << " (0=auto), simd=" << simd::active_name() << ", telemetry="
            << (telemetry::kEnabled ? "on" : "off") << "\n";

  double cumulative_reward = 0.0;
  double gen_s = 0.0, policy_s = 0.0, feedback_s = 0.0;
  double sel_s = 0.0, obs_s = 0.0;
  Stopwatch phase;
  Slot slot;              // reused across slots (capacities stay warm)
  Assignment assignment;  // likewise, via the select(info, out) overload
  for (int t = 1; t <= opt.warmup + opt.slots; ++t) {
    const bool timed = t > opt.warmup;
    phase.reset();
    sim.generate_slot(t, slot);
    if (timed) gen_s += phase.seconds();

    phase.reset();
    policy.select(slot.info, assignment);
    const double select_s = phase.seconds();

    phase.reset();
    const auto feedback = make_feedback(slot, assignment);
    if (timed) feedback_s += phase.seconds();

    phase.reset();
    policy.observe(slot.info, assignment, feedback);
    if (timed) {
      const double observe_s = phase.seconds();
      policy_s += select_s + observe_s;
      sel_s += select_s;
      obs_s += observe_s;
    }

    cumulative_reward += evaluate_slot(slot, assignment, setup.net).reward;
  }

  const auto slots = static_cast<double>(opt.slots);
  const double total_s = gen_s + policy_s + feedback_s;
  const double policy_rate = slots / policy_s;

  std::printf("bucket      ms/slot      slots/sec\n");
  std::printf("generate   %8.2f   %12.2f\n", 1e3 * gen_s / slots,
              slots / gen_s);
  std::printf("policy     %8.2f   %12.2f   <- Alg.2->4->3 (headline)\n",
              1e3 * policy_s / slots, policy_rate);
  std::printf("  select   %8.2f\n", 1e3 * sel_s / slots);
  std::printf("  observe  %8.2f\n", 1e3 * obs_s / slots);
  std::printf("feedback   %8.2f   %12.2f\n", 1e3 * feedback_s / slots,
              slots / feedback_s);
  std::printf("total      %8.2f   %12.2f\n", 1e3 * total_s / slots,
              slots / total_s);
  std::printf("cumulative reward %.6f\n", cumulative_reward);

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    if (!out) {
      std::cerr << "cannot write " << opt.json_path << "\n";
      return 1;
    }
    out.precision(10);
    out << "{\n"
        << "  \"benchmark\": \"city_scale\",\n"
        << "  \"setup\": {\"num_scns\": " << setup.net.num_scns
        << ", \"capacity_c\": " << setup.net.capacity_c
        << ", \"tasks_per_scn\": [" << setup.coverage.tasks_per_scn_min
        << ", " << setup.coverage.tasks_per_scn_max << "], \"slots\": "
        << opt.slots << ", \"shards\": " << opt.shards
        << ", \"simd\": \"" << simd::active_name() << "\", \"telemetry\": "
        << (telemetry::kEnabled ? "true" : "false") << "},\n"
        << "  \"policy_slots_per_sec\": " << policy_rate << ",\n"
        << "  \"policy_ms_per_slot\": " << 1e3 * policy_s / slots << ",\n"
        << "  \"select_ms_per_slot\": " << 1e3 * sel_s / slots << ",\n"
        << "  \"observe_ms_per_slot\": " << 1e3 * obs_s / slots << ",\n"
        << "  \"generate_slots_per_sec\": " << slots / gen_s << ",\n"
        << "  \"feedback_slots_per_sec\": " << slots / feedback_s << ",\n"
        << "  \"total_slots_per_sec\": " << slots / total_s << ",\n"
        << "  \"cumulative_reward\": " << cumulative_reward << "\n"
        << "}\n";
    std::cerr << "json -> " << opt.json_path << "\n";
  }
  return 0;
}
