// End-to-end slot throughput of the MBS controller loop on the paper
// setup (Sec. 5: 30 SCNs, c = 20, |D_{m,t}| ~ U[35,100]).
//
// The per-slot wall time is split into three buckets so the controller's
// real-time budget (the number this repo's perf work tracks across PRs)
// is separated from simulation overhead:
//   * generate — Simulator::generate_slot (world sampling, not the
//     controller);
//   * policy   — LfscPolicy::select + observe, i.e. the paper's slot
//     path Alg. 2 -> Alg. 4 -> Alg. 3 (the headline metric);
//   * feedback — make_feedback (harness-side realization lookup).
//
// Flags:
//   --slots N        slots to run after warmup (default 2000,
//                    env LFSC_BENCH_T overrides the default)
//   --warmup N       warmup slots excluded from timing (default 50)
//   --parallel 0|1   LfscConfig::parallel_scns (default 0)
//   --json PATH      write a JSON report (use BENCH_slot_throughput.json
//                    at the repo root to track the perf trajectory)
//   --baseline X     matched-window pre-change policy slots/sec (emits a
//                    speedup_vs_baseline field)
//   --seed-baseline X  override the recorded PR 1 seed baseline
//   --prev-baseline X  override the recorded previous-PR baseline
//   --force-scalar   pin the SIMD dispatch to the scalar kernel table
//
// Baseline bookkeeping rule (EXPERIMENTS.md): the JSON always carries
// two fixed reference points — `seed_baseline` (the matched-window
// pre-PR-1 number, 2325.8) and `prev_pr_baseline` (the headline of the
// previous PR's artifact) — so `speedup_vs_seed` tracks the cumulative
// trajectory and `speedup_vs_prev_pr` the latest step. `--baseline`
// stays what it always was: a same-window A/B reference.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/simd.h"
#include "common/stopwatch.h"
#include "harness/paper_setup.h"
#include "lfsc/lfsc_policy.h"
#include "metrics/metrics.h"
#include "telemetry/telemetry.h"

namespace {

using namespace lfsc;

/// Matched-window policy slots/sec before the PR 1 slot-path overhaul
/// (the repo's perf origin) and at the previous PR's artifact. See the
/// baseline rule in EXPERIMENTS.md.
constexpr double kSeedBaseline = 2325.8;
constexpr double kPrevPrBaseline = 4186.183991;

struct Options {
  int slots = 0;
  int warmup = 50;
  bool parallel = false;
  bool force_scalar = false;
  std::string json_path;
  double baseline = 0.0;
  double seed_baseline = kSeedBaseline;
  double prev_baseline = kPrevPrBaseline;
};

Options parse(int argc, char** argv) {
  Options opt;
  opt.slots = env_int("LFSC_BENCH_T", 2000);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--slots") {
      opt.slots = std::atoi(next());
    } else if (arg == "--warmup") {
      opt.warmup = std::atoi(next());
    } else if (arg == "--parallel") {
      opt.parallel = std::atoi(next()) != 0;
    } else if (arg == "--json") {
      opt.json_path = next();
    } else if (arg == "--baseline") {
      opt.baseline = std::atof(next());
    } else if (arg == "--seed-baseline") {
      opt.seed_baseline = std::atof(next());
    } else if (arg == "--prev-baseline") {
      opt.prev_baseline = std::atof(next());
    } else if (arg == "--force-scalar") {
      opt.force_scalar = true;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      std::exit(2);
    }
  }
  if (opt.slots <= 0) opt.slots = 1;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  if (opt.force_scalar) simd::set_force_scalar(true);

  PaperSetup setup;
  setup.set_seed(42);
  setup.set_horizon(static_cast<std::size_t>(opt.slots + opt.warmup));
  setup.lfsc.parallel_scns = opt.parallel;
  auto sim = setup.make_simulator();
  LfscPolicy policy(setup.net, setup.lfsc);

  std::cerr << "[slot_throughput] " << setup.net.num_scns << " SCNs, c="
            << setup.net.capacity_c << ", slots=" << opt.slots
            << " (+" << opt.warmup << " warmup), parallel_scns="
            << (opt.parallel ? 1 : 0) << ", simd="
            << simd::active_name() << ", telemetry="
            << (telemetry::kEnabled ? "on" : "off") << "\n";

  double cumulative_reward = 0.0;
  double gen_s = 0.0, policy_s = 0.0, feedback_s = 0.0;
  double sel_s = 0.0, obs_s = 0.0;
  Stopwatch phase;
  Slot slot;              // reused across slots (capacities stay warm)
  Assignment assignment;  // likewise, via the select(info, out) overload
  for (int t = 1; t <= opt.warmup + opt.slots; ++t) {
    const bool timed = t > opt.warmup;
    phase.reset();
    sim.generate_slot(t, slot);
    if (timed) gen_s += phase.seconds();

    phase.reset();
    policy.select(slot.info, assignment);
    const double select_s = phase.seconds();

    phase.reset();
    const auto feedback = make_feedback(slot, assignment);
    if (timed) feedback_s += phase.seconds();

    phase.reset();
    policy.observe(slot.info, assignment, feedback);
    if (timed) {
      const double observe_s = phase.seconds();
      policy_s += select_s + observe_s;
      sel_s += select_s;
      obs_s += observe_s;
    }

    cumulative_reward +=
        evaluate_slot(slot, assignment, setup.net).reward;
  }

  const auto slots = static_cast<double>(opt.slots);
  const double total_s = gen_s + policy_s + feedback_s;
  const double policy_rate = slots / policy_s;
  const double total_rate = slots / total_s;

  std::printf("bucket      us/slot      slots/sec\n");
  std::printf("generate   %8.1f   %12.1f\n", 1e6 * gen_s / slots,
              slots / gen_s);
  std::printf("policy     %8.1f   %12.1f   <- Alg.2->4->3 (headline)\n",
              1e6 * policy_s / slots, policy_rate);
  std::printf("  select   %8.1f\n", 1e6 * sel_s / slots);
  std::printf("  observe  %8.1f\n", 1e6 * obs_s / slots);
  std::printf("feedback   %8.1f   %12.1f\n", 1e6 * feedback_s / slots,
              slots / feedback_s);
  std::printf("total      %8.1f   %12.1f\n", 1e6 * total_s / slots,
              total_rate);
  std::printf("cumulative reward %.6f\n", cumulative_reward);

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    if (!out) {
      std::cerr << "cannot write " << opt.json_path << "\n";
      return 1;
    }
    out.precision(10);
    out << "{\n"
        << "  \"benchmark\": \"slot_throughput\",\n"
        << "  \"setup\": {\"num_scns\": " << setup.net.num_scns
        << ", \"capacity_c\": " << setup.net.capacity_c
        << ", \"tasks_per_scn\": [" << setup.coverage.tasks_per_scn_min
        << ", " << setup.coverage.tasks_per_scn_max << "], \"slots\": "
        << opt.slots << ", \"parallel_scns\": "
        << (opt.parallel ? "true" : "false") << ", \"simd\": \""
        << simd::active_name() << "\", \"telemetry\": "
        << (telemetry::kEnabled ? "true" : "false") << "},\n"
        << "  \"policy_slots_per_sec\": " << policy_rate << ",\n"
        << "  \"policy_us_per_slot\": " << 1e6 * policy_s / slots << ",\n"
        << "  \"generate_slots_per_sec\": " << slots / gen_s << ",\n"
        << "  \"feedback_slots_per_sec\": " << slots / feedback_s << ",\n"
        << "  \"total_slots_per_sec\": " << total_rate << ",\n"
        << "  \"cumulative_reward\": " << cumulative_reward << ",\n"
        << "  \"seed_baseline\": " << opt.seed_baseline << ",\n"
        << "  \"speedup_vs_seed\": " << policy_rate / opt.seed_baseline
        << ",\n"
        << "  \"prev_pr_baseline\": " << opt.prev_baseline << ",\n"
        << "  \"speedup_vs_prev_pr\": " << policy_rate / opt.prev_baseline;
    if (opt.baseline > 0.0) {
      out << ",\n  \"baseline_policy_slots_per_sec\": " << opt.baseline
          << ",\n  \"speedup_vs_baseline\": " << policy_rate / opt.baseline;
    }
    out << "\n}\n";
    std::cerr << "json -> " << opt.json_path << "\n";
  }
  return 0;
}
