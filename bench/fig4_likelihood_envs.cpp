// Figure 4: performance under different channel environments, modeled by
// the range the completion likelihood V is drawn from (the paper varies
// the likelihood range to emulate friendlier or harsher mmWave
// conditions).
//
// Paper shape to reproduce: harsher environments (lower likelihood)
// depress everyone's reward and inflate QoS violations; LFSC tracks the
// Oracle across environments while the constraint-unaware baselines'
// violations blow up fastest in harsh channels.
#include <functional>
#include <iostream>

#include "common/csv.h"
#include "fig_common.h"
#include "harness/sweep.h"

int main() {
  using namespace lfsc;
  using namespace lfsc::bench;

  const int horizon = env_int("LFSC_BENCH_T", 10000);
  const int scns = env_int("LFSC_BENCH_SCNS", 30);

  struct Env {
    const char* label;
    double lo;
    double hi;
    double blockage;
  };
  const std::vector<Env> envs{
      {"harsh   V~[0,0.5], 20% blockage", 0.0, 0.5, 0.20},
      {"default V~[0,1]", 0.0, 1.0, 0.00},
      {"mid     V~[0.25,0.75]", 0.25, 0.75, 0.00},
      {"good    V~[0.5,1]", 0.5, 1.0, 0.00},
  };

  struct Row {
    const Env* env;
    std::vector<std::string> names;
    std::vector<double> rewards;
    std::vector<double> violations;
    std::vector<double> ratios;
  };

  std::cerr << "[bench] likelihood environments: " << envs.size()
            << " points, " << scns << " SCNs, T=" << horizon << "\n";
  const std::function<Row(std::size_t)> eval = [&](std::size_t i) {
    PaperSetup s;
    s.set_num_scns(scns);
    s.set_horizon(static_cast<std::size_t>(horizon));
    s.env.likelihood_lo = envs[i].lo;
    s.env.likelihood_hi = envs[i].hi;
    s.env.blockage_prob = envs[i].blockage;
    auto sim = s.make_simulator();
    auto owned = make_paper_policies(s);
    auto policies = policy_pointers(owned);
    const auto result = run_experiment(sim, policies, {.horizon = horizon});
    Row row;
    row.env = &envs[i];
    for (const auto& rec : result.series) {
      row.names.push_back(rec.name());
      row.rewards.push_back(rec.total_reward());
      row.violations.push_back(rec.total_violation());
      row.ratios.push_back(rec.final_performance_ratio());
    }
    return row;
  };
  const auto rows = sweep_parallel<Row>(envs.size(), eval);

  const auto print_metric = [&](const std::string& title,
                                auto metric_of, int precision) {
    std::cout << "\n== Fig 4: " << title << " ==\n";
    std::vector<std::string> columns{"environment"};
    for (const auto& name : rows.front().names) columns.push_back(name);
    Table table(columns);
    for (const auto& row : rows) {
      std::vector<std::string> cells{row.env->label};
      for (std::size_t k = 0; k < row.names.size(); ++k) {
        cells.push_back(Table::num(metric_of(row, k), precision));
      }
      table.add_row(std::move(cells));
    }
    table.print(std::cout);
  };
  print_metric("total compound reward",
               [](const Row& r, std::size_t k) { return r.rewards[k]; }, 1);
  print_metric("total violations (1c)+(1d)",
               [](const Row& r, std::size_t k) { return r.violations[k]; }, 1);
  print_metric("performance ratio",
               [](const Row& r, std::size_t k) { return r.ratios[k]; }, 4);

  CsvWriter csv("fig4.csv");
  std::vector<std::string> header{"environment", "likelihood_lo",
                                  "likelihood_hi", "blockage"};
  for (const auto& name : rows.front().names) header.push_back(name + "_reward");
  for (const auto& name : rows.front().names) {
    header.push_back(name + "_violation");
  }
  csv.header(header);
  for (const auto& row : rows) {
    std::vector<std::string> cells{row.env->label,
                                   CsvWriter::format(row.env->lo),
                                   CsvWriter::format(row.env->hi),
                                   CsvWriter::format(row.env->blockage)};
    for (const double r : row.rewards) cells.push_back(CsvWriter::format(r));
    for (const double v : row.violations) cells.push_back(CsvWriter::format(v));
    csv.row(cells);
  }
  std::cout << "\nfull sweep -> fig4.csv\n";
  return 0;
}
