// Theorem 1 empirics. The paper proves sub-linear bounds for LFSC's
// regret R(T) and violations V1(T), V2(T), with constants tuned to the
// horizon. Within a single run this manifests as:
//   * a regret growth exponent theta < 1 (S(t) ~ C t^theta);
//   * violation *rates* that settle at a small constant — far below the
//     constraint-unaware baselines' — so cumulative violation curves keep
//     rising but at a visibly smaller slope (exactly the paper's Fig. 2
//     violation plots).
// This bench fits the tail exponents and reports tail per-slot violation
// rates relative to the Random baseline.
#include <iostream>

#include "fig_common.h"
#include "metrics/regret.h"

int main() {
  using namespace lfsc;
  using namespace lfsc::bench;

  const auto run = run_paper_experiment(/*default_horizon=*/10000);
  const auto& oracle = run.result.find("Oracle");
  const std::size_t tail = oracle.slots() / 10;

  std::cout << "\n== Theorem 1 (a): regret growth exponent "
               "(R(t) ~ C t^theta; theta < 1 is sub-linear) ==\n";
  Table regret_table({"policy", "final regret vs Oracle", "theta",
                      "sub-linear?"});
  for (const auto& rec : run.result.series) {
    if (rec.name() == "Oracle") continue;
    const auto regret = cumulative_regret(oracle.reward(), rec.reward());
    const double final_regret = regret.back();
    if (final_regret <= 0.0) {
      // Constraint-unaware policies out-earn the constrained Oracle;
      // reward-regret against it is not meaningful for them.
      regret_table.add_row({rec.name(), Table::num(final_regret, 1), "-",
                            "n/a (outearns Oracle)"});
      continue;
    }
    const double theta = estimate_growth_exponent(regret);
    regret_table.add_row({rec.name(), Table::num(final_regret, 1),
                          Table::num(theta, 3),
                          theta < 0.95 ? "yes" : "no"});
  }
  regret_table.print(std::cout);

  std::cout << "\n== Theorem 1 (b): violation rates, last 10% of the run "
               "(per slot) ==\n";
  const auto tail_rate = [&](std::span<const double> xs) {
    double sum = 0.0;
    for (std::size_t i = xs.size() - tail; i < xs.size(); ++i) sum += xs[i];
    return sum / static_cast<double>(tail);
  };
  const auto& random = run.result.find("Random");
  const double random_rate =
      tail_rate(random.qos_violation()) + tail_rate(random.resource_violation());
  Table viol_table({"policy", "QoS rate", "resource rate", "total rate",
                    "vs Random"});
  for (const auto& rec : run.result.series) {
    const double qos = tail_rate(rec.qos_violation());
    const double res = tail_rate(rec.resource_violation());
    viol_table.add_row(
        {std::string(rec.name()), Table::num(qos, 2), Table::num(res, 2),
         Table::num(qos + res, 2),
         Table::num(100.0 * (qos + res) / random_rate, 1) + "%"});
  }
  viol_table.print(std::cout);

  std::cout << "\nreading: LFSC's regret grows sub-linearly (it converges "
               "toward the Oracle's\nper-slot reward), and its steady "
               "violation rate is a small fraction of the\nbaselines' — the "
               "within-run signature of Theorem 1, whose constants are\n"
               "horizon-tuned (delta ~ 1/sqrt(T) leaves a residual rate "
               "proportional to the\ndual regularization, see DESIGN.md).\n";
  return 0;
}
