// Telemetry through the real pipeline: LfscPolicy's instrumented slot
// path must produce bit-identical non-timer metrics for any
// parallel_scns worker count (the per-stream accumulation /
// deterministic-merge contract), and the harness capture path
// (RunConfig::telemetry -> ExperimentResult::telemetry_series ->
// write_json) must agree with the SeriesRecorder it mirrors.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "harness/paper_setup.h"
#include "harness/runner.h"
#include "lfsc/lfsc_policy.h"
#include "metrics/metrics.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"

namespace lfsc {
namespace {

#define SKIP_IF_TELEMETRY_OFF()                                            \
  do {                                                                     \
    if (!telemetry::kEnabled) GTEST_SKIP() << "LFSC_TELEMETRY=OFF build";  \
  } while (false)

/// Runs `slots` slots of the small setup through a fresh LfscPolicy and
/// returns its telemetry snapshot.
std::vector<telemetry::MetricSnapshot> run_and_snapshot(bool parallel,
                                                        ThreadPool* pool,
                                                        int slots) {
  auto s = small_setup();
  s.lfsc.parallel_scns = parallel;
  s.lfsc.pool = pool;
  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);
  for (int t = 1; t <= slots; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto assignment = policy.select(slot.info);
    policy.observe(slot.info, assignment, make_feedback(slot, assignment));
  }
  return policy.telemetry().snapshot();
}

TEST(TelemetryIntegration, BitIdenticalAcrossParallelScnsWorkerCounts) {
  SKIP_IF_TELEMETRY_OFF();
  const int kSlots = 120;
  const auto serial = run_and_snapshot(false, nullptr, kSlots);
  ThreadPool pool(4);
  const auto parallel = run_and_snapshot(true, &pool, kSlots);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& a = serial[i];
    const auto& b = parallel[i];
    ASSERT_EQ(a.name, b.name);
    ASSERT_EQ(a.kind, b.kind);
    if (a.kind == telemetry::Kind::kTimer) continue;  // wall time varies
    SCOPED_TRACE(a.name);
    EXPECT_EQ(a.count, b.count);
    // Bit-identical, not approximately equal: per-stream values are
    // computed by the same deterministic per-SCN arithmetic and merged
    // in ascending stream order on both paths.
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.sum, b.sum);
    EXPECT_EQ(a.stream_values, b.stream_values);
    EXPECT_EQ(a.bucket_counts, b.bucket_counts);
  }
}

TEST(TelemetryIntegration, PolicyMetricsCoverTheSlotPath) {
  SKIP_IF_TELEMETRY_OFF();
  const int kSlots = 30;
  const auto snaps = run_and_snapshot(false, nullptr, kSlots);
  const auto find = [&](const std::string& name)
      -> const telemetry::MetricSnapshot* {
    for (const auto& s : snaps) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };

  const auto* slots = find("lfsc.slots");
  ASSERT_NE(slots, nullptr);
  EXPECT_EQ(slots->count, static_cast<std::uint64_t>(kSlots));

  const auto s = small_setup();
  const auto scns = static_cast<std::uint64_t>(s.net.num_scns);
  for (const char* timer :
       {"lfsc.select", "lfsc.observe", "lfsc.alg4.greedy_select",
        "lfsc.alg2.calculating", "lfsc.alg3.updating"}) {
    const auto* snap = find(timer);
    ASSERT_NE(snap, nullptr) << timer;
    EXPECT_EQ(snap->count, static_cast<std::uint64_t>(kSlots)) << timer;
    EXPECT_GT(snap->sum, 0.0) << timer;
  }

  const auto* accepted = find("lfsc.scn.accepted");
  ASSERT_NE(accepted, nullptr);
  EXPECT_GT(accepted->count, 0u);
  EXPECT_EQ(accepted->stream_values.size(), scns);

  const auto* occupancy = find("lfsc.cells.touched");
  ASSERT_NE(occupancy, nullptr);
  EXPECT_EQ(occupancy->count, static_cast<std::uint64_t>(kSlots) * scns);

  const auto* lambda = find("lfsc.lagrange.qos");
  ASSERT_NE(lambda, nullptr);
  EXPECT_EQ(lambda->stream_values.size(), scns);
}

TEST(TelemetryIntegration, HarnessCaptureMatchesSeriesRecorder) {
  SKIP_IF_TELEMETRY_OFF();
  auto s = small_setup();
  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);
  Policy* roster[] = {&policy};

  RunConfig config{.horizon = 80};
  config.telemetry = &policy.telemetry();
  config.telemetry_interval = 20;
  const auto result = run_experiment(sim, roster, config);
  const SeriesRecorder& rec = result.series[0];

  // Final snapshot mirrors the recorder exactly.
  const auto snaps = policy.telemetry().snapshot();
  double cum_reward = -1.0, cum_qos = -1.0, cum_res = -1.0;
  std::uint64_t harness_slots = 0, policy_slots = 0;
  for (const auto& snap : snaps) {
    if (snap.name == "harness.cum_reward") cum_reward = snap.value;
    if (snap.name == "harness.cum_qos_violation") cum_qos = snap.value;
    if (snap.name == "harness.cum_resource_violation") cum_res = snap.value;
    if (snap.name == "harness.slots") harness_slots = snap.count;
    if (snap.name == "lfsc.slots") policy_slots = snap.count;
  }
  EXPECT_EQ(harness_slots, rec.slots());
  EXPECT_EQ(policy_slots, rec.slots());
  EXPECT_DOUBLE_EQ(cum_reward, rec.total_reward());
  EXPECT_DOUBLE_EQ(cum_qos, rec.total_qos_violation());
  EXPECT_DOUBLE_EQ(cum_res, rec.total_resource_violation());

  // The sampled series covers every interval plus the final slot, and
  // its harness columns match the recorder's prefix sums at each sample.
  const auto& series = result.telemetry_series;
  ASSERT_EQ(series.t, (std::vector<int>{20, 40, 60, 80}));
  std::size_t reward_col = series.names.size();
  for (std::size_t c = 0; c < series.names.size(); ++c) {
    if (series.names[c] == "harness.cum_reward") reward_col = c;
  }
  ASSERT_LT(reward_col, series.names.size());
  const auto cumulative = rec.cumulative_reward();
  for (std::size_t r = 0; r < series.t.size(); ++r) {
    EXPECT_DOUBLE_EQ(series.rows[r][reward_col],
                     cumulative[static_cast<std::size_t>(series.t[r]) - 1]);
  }
}

TEST(TelemetryIntegration, JsonExportRoundTripsRecorderTotals) {
  SKIP_IF_TELEMETRY_OFF();
  auto s = small_setup();
  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);
  Policy* roster[] = {&policy};

  RunConfig config{.horizon = 50};
  config.telemetry = &policy.telemetry();
  config.telemetry_interval = 25;
  const auto result = run_experiment(sim, roster, config);

  std::ostringstream out;
  telemetry::write_json(out, policy.telemetry(), &result.telemetry_series,
                        "LFSC");
  const std::string json = out.str();

  // Minimal field extraction: locate the metric object by name, read the
  // numeric field that follows. Doubles are printed at precision 17, so
  // strtod round-trips them exactly.
  const auto json_number_after = [&](const std::string& anchor,
                                     const std::string& field) {
    const auto at = json.find(anchor);
    EXPECT_NE(at, std::string::npos) << anchor;
    const auto key = json.find("\"" + field + "\": ", at);
    EXPECT_NE(key, std::string::npos) << field;
    return std::strtod(json.c_str() + key + field.size() + 4, nullptr);
  };

  const SeriesRecorder& rec = result.series[0];
  EXPECT_DOUBLE_EQ(
      json_number_after("\"name\": \"harness.cum_reward\"", "value"),
      rec.total_reward());
  EXPECT_DOUBLE_EQ(
      json_number_after("\"name\": \"harness.slots\"", "value"),
      static_cast<double>(rec.slots()));
  EXPECT_DOUBLE_EQ(json_number_after("\"name\": \"lfsc.slots\"", "value"),
                   static_cast<double>(rec.slots()));
  // The series block made it out with both sample rows.
  EXPECT_NE(json.find("\"t\": [25, 50]"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"harness.cum_reward\", \"values\": ["),
            std::string::npos);
}

}  // namespace
}  // namespace lfsc
