#include "metrics/regret.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace lfsc {
namespace {

std::vector<double> power_law(std::size_t n, double exponent, double scale = 1.0,
                              double noise = 0.0, std::uint64_t seed = 1) {
  RngStream rng(seed);
  std::vector<double> out(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double base = scale * std::pow(static_cast<double>(t + 1), exponent);
    out[t] = base * (1.0 + noise * (rng.uniform() - 0.5));
  }
  return out;
}

TEST(CumulativeRegret, PrefixSumOfDifferences) {
  const std::vector<double> oracle{3.0, 3.0, 3.0};
  const std::vector<double> policy{1.0, 2.0, 4.0};
  const auto regret = cumulative_regret(oracle, policy);
  EXPECT_EQ(regret, (std::vector<double>{2.0, 3.0, 2.0}));
}

TEST(CumulativeRegret, LengthMismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(cumulative_regret(a, b), std::invalid_argument);
}

TEST(GrowthExponent, RecoversKnownExponents) {
  for (const double theta : {0.3, 0.5, 0.8, 1.0}) {
    const auto series = power_law(5000, theta);
    EXPECT_NEAR(estimate_growth_exponent(series), theta, 0.01)
        << "theta=" << theta;
  }
}

TEST(GrowthExponent, RobustToMultiplicativeNoise) {
  const auto series = power_law(8000, 0.5, 2.0, /*noise=*/0.2);
  EXPECT_NEAR(estimate_growth_exponent(series), 0.5, 0.05);
}

TEST(GrowthExponent, TailFractionSkipsTransient) {
  // A series that is flat early and sqrt-like late: the tail fit should
  // see ~0.5, a full fit would be biased.
  std::vector<double> series(4000);
  for (std::size_t t = 0; t < series.size(); ++t) {
    series[t] = t < 1000 ? 50.0
                         : 50.0 + std::sqrt(static_cast<double>(t - 999));
  }
  const double tail = estimate_growth_exponent(series, 0.25);
  EXPECT_LT(tail, 0.6);
  EXPECT_GT(tail, 0.05);
}

TEST(GrowthExponent, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(estimate_growth_exponent(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(estimate_growth_exponent(std::vector<double>{1.0}), 0.0);
  const std::vector<double> nonpositive{0.0, -1.0, 0.0, -2.0};
  EXPECT_DOUBLE_EQ(estimate_growth_exponent(nonpositive), 0.0);
  EXPECT_THROW(estimate_growth_exponent(std::vector<double>{1.0, 2.0}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(estimate_growth_exponent(std::vector<double>{1.0, 2.0}, 1.5),
               std::invalid_argument);
}

TEST(IsSublinear, ClassifiesCorrectly) {
  EXPECT_TRUE(is_sublinear(power_law(3000, 0.5)));
  EXPECT_TRUE(is_sublinear(power_law(3000, 0.8)));
  EXPECT_FALSE(is_sublinear(power_law(3000, 1.0)));
  EXPECT_FALSE(is_sublinear(power_law(3000, 1.2)));
}

}  // namespace
}  // namespace lfsc
