#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace lfsc {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256StarStar a(42);
  Xoshiro256StarStar b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, JumpChangesSequence) {
  Xoshiro256StarStar a(42);
  Xoshiro256StarStar b(42);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

class RngStreamTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngStreamTest, UniformInUnitInterval) {
  RngStream rng(GetParam());
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST_P(RngStreamTest, UniformMeanNearHalf) {
  RngStream rng(GetParam());
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST_P(RngStreamTest, UniformRangeRespectsBounds) {
  RngStream rng(GetParam());
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.0, 7.5);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.5);
  }
}

TEST_P(RngStreamTest, UniformIntCoversFullRangeInclusive) {
  RngStream rng(GetParam());
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto x = rng.uniform_int(3, 9);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 9);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);  // all of {3..9} after 5000 draws
}

TEST_P(RngStreamTest, UniformIntDegenerate) {
  RngStream rng(GetParam());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST_P(RngStreamTest, UniformIntUnbiased) {
  RngStream rng(GetParam());
  std::array<int, 4> counts{};
  constexpr int kN = 80000;
  for (int i = 0; i < kN; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 3))];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.25, 0.01);
  }
}

TEST_P(RngStreamTest, BernoulliFrequency) {
  RngStream rng(GetParam());
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST_P(RngStreamTest, BernoulliExtremes) {
  RngStream rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));  // clamped
    EXPECT_TRUE(rng.bernoulli(2.0));    // clamped
  }
}

TEST_P(RngStreamTest, NormalMomentsMatch) {
  RngStream rng(GetParam());
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.03);
}

TEST_P(RngStreamTest, NormalShiftScale) {
  RngStream rng(GetParam());
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.05);
}

TEST_P(RngStreamTest, ExponentialMean) {
  RngStream rng(GetParam());
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST_P(RngStreamTest, DiscreteMatchesWeights) {
  RngStream rng(GetParam());
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.discrete(weights)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kN, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.6, 0.01);
}

TEST_P(RngStreamTest, ShuffleIsPermutation) {
  RngStream rng(GetParam());
  std::vector<int> items(50);
  std::iota(items.begin(), items.end(), 0);
  auto shuffled = items;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

TEST_P(RngStreamTest, SampleWithoutReplacementDistinct) {
  RngStream rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sample_without_replacement(30, 12);
    ASSERT_EQ(sample.size(), 12u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 12u);
    for (const auto s : sample) EXPECT_LT(s, 30u);
  }
}

TEST_P(RngStreamTest, SampleWithoutReplacementClampsK) {
  RngStream rng(GetParam());
  const auto sample = rng.sample_without_replacement(5, 10);
  EXPECT_EQ(sample.size(), 5u);
}

TEST_P(RngStreamTest, SampleWithoutReplacementUniformMarginals) {
  RngStream rng(GetParam());
  std::array<int, 10> counts{};
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    for (const auto s : rng.sample_without_replacement(10, 3)) {
      ++counts[s];
    }
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.3, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngStreamTest,
                         ::testing::Values(1ull, 42ull, 987654321ull,
                                           0xDEADBEEFull));

TEST(RngStream, StreamsAreIndependent) {
  RngStream a(7, 0);
  RngStream b(7, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.bits() == b.bits()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(RngStream, SameSeedSameStreamIdentical) {
  RngStream a(7, 3);
  RngStream b(7, 3);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.bits(), b.bits());
}

TEST(RngStream, StreamCorrelationIsLow) {
  // Pearson correlation between two parallel streams should be ~0.
  RngStream a(99, 10);
  RngStream b(99, 11);
  constexpr int kN = 50000;
  double sa = 0, sb = 0, sab = 0, saa = 0, sbb = 0;
  for (int i = 0; i < kN; ++i) {
    const double x = a.uniform();
    const double y = b.uniform();
    sa += x;
    sb += y;
    sab += x * y;
    saa += x * x;
    sbb += y * y;
  }
  const double cov = sab / kN - (sa / kN) * (sb / kN);
  const double var_a = saa / kN - (sa / kN) * (sa / kN);
  const double var_b = sbb / kN - (sb / kN) * (sb / kN);
  const double corr = cov / std::sqrt(var_a * var_b);
  EXPECT_NEAR(corr, 0.0, 0.02);
}

}  // namespace
}  // namespace lfsc
