#include "faults/fault_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace lfsc {
namespace {

FaultConfig all_families() {
  FaultConfig c;
  c.outage_prob = 0.05;
  c.outage_min_slots = 2;
  c.outage_max_slots = 5;
  c.loss_prob = 0.1;
  c.delay_prob = 0.2;
  c.delay_slots = 3;
  c.corrupt_prob = 0.05;
  return c;
}

TEST(FaultConfig, ValidatesRanges) {
  EXPECT_NO_THROW(FaultConfig{}.validate());
  EXPECT_NO_THROW(all_families().validate());

  FaultConfig c;
  c.outage_prob = -0.1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.loss_prob = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.loss_prob = 0.6;
  c.delay_prob = 0.3;
  c.delay_slots = 1;
  c.corrupt_prob = 0.2;  // 0.6 + 0.3 + 0.2 > 1: fates must partition
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.outage_min_slots = 4;
  c.outage_max_slots = 2;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.outage_min_slots = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.delay_prob = 0.1;
  c.delay_slots = 0;  // delayed feedback must actually be late
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(FaultConfig, AnyDetectsActiveFamilies) {
  EXPECT_FALSE(FaultConfig{}.any());
  FaultConfig c;
  c.corrupt_prob = 0.01;
  EXPECT_TRUE(c.any());
}

TEST(FaultModel, ClassifyIsAPureFunction) {
  // Two independent instances, queried in different orders, agree on
  // every fate: no hidden RNG stream advances.
  const auto config = all_families();
  FaultModel a(config, 4), b(config, 4);
  std::vector<FaultModel::Fate> forward;
  for (int t = 1; t <= 50; ++t) {
    for (int m = 0; m < 4; ++m) {
      for (int j = 0; j < 10; ++j) forward.push_back(a.classify(t, m, j));
    }
  }
  std::size_t i = forward.size();
  for (int t = 50; t >= 1; --t) {
    for (int m = 3; m >= 0; --m) {
      for (int j = 9; j >= 0; --j) {
        --i;
        EXPECT_EQ(forward[i], b.classify(t, m, j))
            << "t=" << t << " m=" << m << " j=" << j;
      }
    }
  }
}

TEST(FaultModel, FateFrequenciesTrackProbabilities) {
  FaultConfig config;
  config.loss_prob = 0.1;
  config.delay_prob = 0.2;
  config.delay_slots = 2;
  config.corrupt_prob = 0.05;
  FaultModel model(config, 1);
  int counts[4] = {};
  const int n = 20000;
  for (int t = 1; t <= n; ++t) {
    counts[static_cast<int>(model.classify(t, 0, 0))]++;
  }
  const double total = n;
  EXPECT_NEAR(counts[static_cast<int>(FaultModel::Fate::kLost)] / total,
              0.1, 0.02);
  EXPECT_NEAR(counts[static_cast<int>(FaultModel::Fate::kDelayed)] / total,
              0.2, 0.02);
  EXPECT_NEAR(counts[static_cast<int>(FaultModel::Fate::kCorrupted)] / total,
              0.05, 0.02);
  EXPECT_NEAR(counts[static_cast<int>(FaultModel::Fate::kDeliver)] / total,
              0.65, 0.03);
}

TEST(FaultModel, EverythingDeliversWhenDisabled) {
  FaultModel model(FaultConfig{}, 3);
  EXPECT_FALSE(model.enabled());
  for (int t = 1; t <= 20; ++t) {
    model.begin_slot(t);
    EXPECT_EQ(model.down_scns(), 0);
    for (int m = 0; m < 3; ++m) {
      EXPECT_FALSE(model.scn_down(m));
      EXPECT_EQ(model.classify(t, m, 0), FaultModel::Fate::kDeliver);
    }
  }
}

TEST(FaultModel, OutageBurstsRespectMinimumLength) {
  FaultConfig config;
  config.outage_prob = 0.1;
  config.outage_min_slots = 3;
  config.outage_max_slots = 6;
  FaultModel model(config, 2);
  // Every maximal down-run is at least min_slots long (runs can chain,
  // so there is no upper-bound assertion).
  int run[2] = {};
  bool saw_outage = false;
  for (int t = 1; t <= 2000; ++t) {
    model.begin_slot(t);
    for (int m = 0; m < 2; ++m) {
      if (model.scn_down(m)) {
        ++run[m];
        saw_outage = true;
      } else {
        if (run[m] > 0) {
          EXPECT_GE(run[m], 3) << "SCN " << m << " at t=" << t;
        }
        run[m] = 0;
      }
    }
  }
  EXPECT_TRUE(saw_outage);
}

TEST(FaultModel, DownCountMatchesFlags) {
  FaultConfig config;
  config.outage_prob = 0.3;
  FaultModel model(config, 5);
  for (int t = 1; t <= 200; ++t) {
    model.begin_slot(t);
    int down = 0;
    for (int m = 0; m < 5; ++m) down += model.scn_down(m) ? 1 : 0;
    EXPECT_EQ(model.down_scns(), down);
  }
}

TEST(FaultModel, CorruptPoisonsFeedback) {
  const auto config = all_families();
  FaultModel model(config, 2);
  bool saw_nonfinite = false, saw_out_of_range = false;
  for (int t = 1; t <= 64; ++t) {
    TaskFeedback f;
    f.local_index = 0;
    f.u = 0.5;
    f.v = 0.5;
    f.q = 1.0;
    const auto bad = model.corrupt(t, 0, 0, f);
    EXPECT_EQ(bad.local_index, f.local_index);
    // Every variant is either non-finite or wildly out of range — the
    // exact poison rotates deterministically with the key.
    const bool nonfinite = !std::isfinite(bad.u) || !std::isfinite(bad.v) ||
                           !std::isfinite(bad.q);
    const bool out_of_range =
        std::abs(bad.u) > 100.0 || std::abs(bad.v) > 100.0 || bad.q <= 0.0 ||
        bad.q > 100.0;
    EXPECT_TRUE(nonfinite || out_of_range) << "t=" << t;
    saw_nonfinite |= nonfinite;
    saw_out_of_range |= out_of_range && !nonfinite;
  }
  EXPECT_TRUE(saw_nonfinite);
  EXPECT_TRUE(saw_out_of_range);
}

TEST(FaultModel, StateRoundTripContinuesTheSchedule) {
  FaultConfig config;
  config.outage_prob = 0.2;
  config.outage_min_slots = 2;
  config.outage_max_slots = 4;
  FaultModel reference(config, 3);
  FaultModel first_half(config, 3);
  for (int t = 1; t <= 100; ++t) {
    reference.begin_slot(t);
    first_half.begin_slot(t);
  }
  std::string blob;
  first_half.save_state(blob);

  FaultModel resumed(config, 3);
  resumed.load_state(blob);
  for (int t = 101; t <= 200; ++t) {
    reference.begin_slot(t);
    resumed.begin_slot(t);
    for (int m = 0; m < 3; ++m) {
      EXPECT_EQ(reference.scn_down(m), resumed.scn_down(m))
          << "t=" << t << " m=" << m;
    }
  }
}

TEST(FaultModel, LoadStateRejectsMismatchedShape) {
  FaultConfig config;
  config.outage_prob = 0.1;
  FaultModel four(config, 4);
  std::string blob;
  four.save_state(blob);

  FaultModel three(config, 3);
  EXPECT_THROW(three.load_state(blob), std::runtime_error);
  EXPECT_THROW(three.load_state("garbage"), std::runtime_error);
}

}  // namespace
}  // namespace lfsc
