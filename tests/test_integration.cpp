// End-to-end behavioral checks mirroring the paper's qualitative claims
// (Sec. 5) on a scaled-down world that runs in seconds:
//   * LFSC's effective reward approaches the Oracle's;
//   * LFSC's violations are far below the constraint-unaware baselines;
//   * LFSC's performance ratio beats vUCB/FML/Random;
//   * LFSC's per-slot violations shrink as it learns.
#include <gtest/gtest.h>

#include "harness/paper_setup.h"
#include "harness/runner.h"

namespace lfsc {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto s = small_setup();
    s.set_horizon(3000);
    auto sim = s.make_simulator();
    owned_ = new std::vector<std::unique_ptr<Policy>>(make_paper_policies(s));
    auto policies = policy_pointers(*owned_);
    result_ = new ExperimentResult(
        run_experiment(sim, policies, {.horizon = 3000}));
  }

  static void TearDownTestSuite() {
    delete result_;
    delete owned_;
    result_ = nullptr;
    owned_ = nullptr;
  }

  static ExperimentResult* result_;
  static std::vector<std::unique_ptr<Policy>>* owned_;
};

ExperimentResult* IntegrationTest::result_ = nullptr;
std::vector<std::unique_ptr<Policy>>* IntegrationTest::owned_ = nullptr;

TEST_F(IntegrationTest, EveryPolicyEarnsReward) {
  for (const auto& series : result_->series) {
    EXPECT_GT(series.total_reward(), 0.0) << series.name();
  }
}

TEST_F(IntegrationTest, LfscRewardApproachesOracle) {
  const auto& oracle = result_->find("Oracle");
  const auto& lfsc = result_->find("LFSC");
  // Tail window (converged regime): LFSC within 40% of Oracle reward.
  const double oracle_tail = oracle.mean_reward_tail(500);
  const double lfsc_tail = lfsc.mean_reward_tail(500);
  EXPECT_GT(lfsc_tail, 0.6 * oracle_tail)
      << "lfsc=" << lfsc_tail << " oracle=" << oracle_tail;
}

TEST_F(IntegrationTest, LfscViolationsFarBelowConstraintUnawareBaselines) {
  const double lfsc = result_->find("LFSC").total_violation();
  const double vucb = result_->find("vUCB").total_violation();
  const double fml = result_->find("FML").total_violation();
  const double random = result_->find("Random").total_violation();
  // Paper: LFSC early-stage violations are ~30%/32%/20% of vUCB/FML/
  // Random and shrink further; we assert the direction with margin.
  EXPECT_LT(lfsc, 0.7 * vucb);
  EXPECT_LT(lfsc, 0.7 * fml);
  EXPECT_LT(lfsc, 0.7 * random);
}

TEST_F(IntegrationTest, LfscHasBestPerformanceRatioAmongLearners) {
  const double lfsc = result_->find("LFSC").final_performance_ratio();
  EXPECT_GT(lfsc, result_->find("vUCB").final_performance_ratio());
  EXPECT_GT(lfsc, result_->find("FML").final_performance_ratio());
  EXPECT_GT(lfsc, result_->find("Random").final_performance_ratio());
}

TEST_F(IntegrationTest, LfscViolationsShrinkOverTime) {
  const auto& lfsc = result_->find("LFSC");
  const auto qos = lfsc.qos_violation();
  const std::size_t n = qos.size();
  double early = 0.0, late = 0.0;
  const std::size_t window = n / 5;
  for (std::size_t i = 0; i < window; ++i) {
    early += qos[i];
    late += qos[n - 1 - i];
  }
  EXPECT_LE(late, early * 1.05)
      << "early=" << early << " late=" << late
      << " (learning should not increase violations)";
}

TEST_F(IntegrationTest, OracleMeetsResourceConstraintAlways) {
  const auto& oracle = result_->find("Oracle");
  EXPECT_DOUBLE_EQ(oracle.total_resource_violation(), 0.0);
}

TEST_F(IntegrationTest, ConstraintUnawarePoliciesEarnMoreRawRewardThanOracle) {
  // The paper notes vUCB/FML cumulative rewards exceed even the Oracle
  // because they ignore alpha/beta. Verify the direction for at least one.
  const double oracle = result_->find("Oracle").total_reward();
  const double vucb = result_->find("vUCB").total_reward();
  const double fml = result_->find("FML").total_reward();
  EXPECT_GT(std::max(vucb, fml), 0.85 * oracle);
}

}  // namespace
}  // namespace lfsc
