#include "solver/greedy_assignment.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "solver/min_cost_flow.h"

namespace lfsc {
namespace {

Edge make_edge(int scn, int task, double weight, int local = -1) {
  Edge e;
  e.scn = scn;
  e.task = task;
  e.local = local < 0 ? task : local;
  e.weight = weight;
  return e;
}

double total_weight(const Assignment& a,
                    const std::vector<std::vector<double>>& w) {
  double sum = 0.0;
  for (std::size_t m = 0; m < a.selected.size(); ++m) {
    for (const int local : a.selected[m]) {
      sum += w[m][static_cast<std::size_t>(local)];
    }
  }
  return sum;
}

TEST(GreedySelect, PicksHighestWeightEdges) {
  std::vector<Edge> edges{make_edge(0, 0, 0.9), make_edge(0, 1, 0.5),
                          make_edge(0, 2, 0.1)};
  const auto a = greedy_select(1, 3, 2, edges);
  ASSERT_EQ(a.selected.size(), 1u);
  EXPECT_EQ(a.selected[0], (std::vector<int>{0, 1}));
}

TEST(GreedySelect, RespectsCapacity) {
  std::vector<Edge> edges;
  for (int i = 0; i < 10; ++i) edges.push_back(make_edge(0, i, 1.0 + i));
  const auto a = greedy_select(1, 10, 3, edges);
  EXPECT_EQ(a.selected[0].size(), 3u);
}

TEST(GreedySelect, NeverAssignsTaskTwice) {
  // Task 0 covered by both SCNs; the higher-weight edge wins, the other
  // SCN takes its next best.
  std::vector<Edge> edges{make_edge(0, 0, 0.9, 0), make_edge(1, 0, 0.8, 0),
                          make_edge(1, 1, 0.5, 1)};
  const auto a = greedy_select(2, 2, 1, edges);
  EXPECT_EQ(a.selected[0], (std::vector<int>{0}));
  EXPECT_EQ(a.selected[1], (std::vector<int>{1}));
}

TEST(GreedySelect, SkipsNonPositiveWeights) {
  std::vector<Edge> edges{make_edge(0, 0, 0.0), make_edge(0, 1, -1.0),
                          make_edge(0, 2, 0.3)};
  const auto a = greedy_select(1, 3, 5, edges);
  EXPECT_EQ(a.selected[0], (std::vector<int>{2}));
}

TEST(GreedySelect, EmptyInputs) {
  const auto a = greedy_select(3, 0, 2, {});
  EXPECT_EQ(a.selected.size(), 3u);
  for (const auto& s : a.selected) EXPECT_TRUE(s.empty());
  const std::vector<Edge> one{make_edge(0, 0, 1.0)};
  const auto b = greedy_select(2, 5, 0, one);
  for (const auto& s : b.selected) EXPECT_TRUE(s.empty());
}

TEST(GreedySelect, DeterministicUnderPermutation) {
  RngStream rng(3);
  std::vector<Edge> edges;
  for (int m = 0; m < 4; ++m) {
    for (int i = 0; i < 20; ++i) {
      edges.push_back(make_edge(m, i, rng.uniform(), i));
    }
  }
  const auto a = greedy_select(4, 20, 3, edges);
  auto shuffled = edges;
  rng.shuffle(shuffled);
  const auto b = greedy_select(4, 20, 3, shuffled);
  EXPECT_EQ(a.selected, b.selected);
}

TEST(GreedySelect, RejectsBadInput) {
  EXPECT_THROW(greedy_select(-1, 1, 1, {}), std::invalid_argument);
  std::vector<Edge> bad{make_edge(5, 0, 1.0)};
  EXPECT_THROW(greedy_select(2, 1, 1, bad), std::out_of_range);
}

TEST(GreedySelect, CascadeExampleFromPaper) {
  // Local optimum at SCN 0 would take task A (0.9); task A is also SCN
  // 1's only option. Greedy global order: SCN0 gets A (0.9 > 0.8), SCN1
  // gets nothing for it, so it takes its remaining edge — demonstrating
  // the conflict the coordination resolves (no duplicate offloading).
  std::vector<Edge> edges{make_edge(0, 0, 0.9, 0), make_edge(0, 1, 0.7, 1),
                          make_edge(1, 0, 0.8, 0)};
  const auto a = greedy_select(2, 2, 1, edges);
  std::set<int> tasks_assigned;
  EXPECT_EQ(a.selected[0].size(), 1u);
  EXPECT_TRUE(a.selected[1].empty());  // its only task was taken
}

// Property sweep: Lemma 2's (c+1)-approximation versus the exact
// max-weight b-matching, over random instances of varying shape.
struct GreedyGapParam {
  int scns;
  int tasks;
  int capacity;
  double density;
};

class GreedyGapTest : public ::testing::TestWithParam<GreedyGapParam> {};

TEST_P(GreedyGapTest, WithinLemma2BoundAndEmpiricallyClose) {
  const auto param = GetParam();
  RngStream rng(static_cast<std::uint64_t>(param.scns * 1000 + param.tasks));
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Edge> edges;
    std::vector<std::vector<double>> weights(
        static_cast<std::size_t>(param.scns));
    for (int m = 0; m < param.scns; ++m) {
      auto& row = weights[static_cast<std::size_t>(m)];
      for (int i = 0; i < param.tasks; ++i) {
        if (rng.uniform() > param.density) {
          row.push_back(0.0);  // keep local==task for simplicity
          continue;
        }
        const double w = rng.uniform(0.01, 1.0);
        row.push_back(w);
        edges.push_back(make_edge(m, i, w, i));
      }
      row.resize(static_cast<std::size_t>(param.tasks), 0.0);
    }
    const auto greedy = greedy_select(param.scns, param.tasks, param.capacity,
                                      edges);
    const auto exact = max_weight_b_matching(param.scns, param.tasks,
                                             param.capacity, edges);
    const double greedy_w = total_weight(greedy, weights);
    ASSERT_GE(exact.total_weight, greedy_w - 1e-9);
    // Lemma 2 guarantees greedy >= exact / (c+1); empirically the greedy
    // on these instances achieves >= 80% of optimal.
    EXPECT_GE(greedy_w * (param.capacity + 1), exact.total_weight - 1e-9);
    EXPECT_GE(greedy_w, 0.8 * exact.total_weight)
        << "scns=" << param.scns << " tasks=" << param.tasks;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GreedyGapTest,
    ::testing::Values(GreedyGapParam{2, 10, 2, 0.8},
                      GreedyGapParam{4, 30, 3, 0.5},
                      GreedyGapParam{6, 60, 5, 0.3},
                      GreedyGapParam{3, 20, 1, 0.9},
                      GreedyGapParam{8, 40, 4, 0.4}));

}  // namespace
}  // namespace lfsc
