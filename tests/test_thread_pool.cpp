#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lfsc {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor must wait for all 100
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WorkerCountDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  parallel_for(pool, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroAndOneCounts) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(pool, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, RethrowsIterationFailure) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 10,
                            [](std::size_t i) {
                              if (i == 5) throw std::logic_error("bad");
                            }),
               std::logic_error);
}

TEST(ParallelFor, ResultOrderIndependentOfScheduling) {
  // Writes to disjoint slots: result must equal the serial computation
  // regardless of worker count.
  std::vector<double> serial(200), parallel(200);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    serial[i] = static_cast<double>(i * i);
  }
  ThreadPool pool(8);
  parallel_for(pool, parallel.size(), [&](std::size_t i) {
    parallel[i] = static_cast<double>(i * i);
  });
  EXPECT_EQ(serial, parallel);
}

TEST(DefaultThreadPool, IsReusableSingleton) {
  ThreadPool& a = default_thread_pool();
  ThreadPool& b = default_thread_pool();
  EXPECT_EQ(&a, &b);
  std::atomic<int> counter{0};
  parallel_for(50, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace lfsc
