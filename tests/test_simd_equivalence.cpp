// SIMD/scalar equivalence tests (DESIGN.md §12): the AVX2 kernels must
// be bit-identical to the scalar reference on the full slot path, not
// just per-kernel — 1/p IPW feedback amplifies a single ulp into a
// macroscopically different trajectory within a few slots, so "close"
// is indistinguishable from "wrong" here. Every test drives whole
// policies and compares byte-identical save() state.
//
// On hosts without AVX2 (or builds without the AVX2 TU) the two modes
// collapse to the same scalar code and the comparisons hold vacuously;
// the CI matrix runs this file on an AVX2 host to make them real.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "harness/paper_setup.h"
#include "lfsc/lfsc_policy.h"
#include "metrics/metrics.h"
#include "reference/differential.h"
#include "solver/greedy_assignment.h"

namespace lfsc {
namespace {

/// Restores the process-wide dispatch override on scope exit so a
/// failing assertion cannot leak forced-scalar mode into later tests.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool force) { simd::set_force_scalar(force); }
  ~ScopedForceScalar() { simd::set_force_scalar(false); }
  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;
};

/// True when the vector path is actually reachable in this process; when
/// false the scalar-vs-vector comparisons are vacuous (still valid).
bool vector_path_available() {
  simd::set_force_scalar(false);
  return std::string(simd::active_name()) != "scalar";
}

struct RunResult {
  double cumulative_reward = 0.0;
  std::string state;       ///< save() blob after the last slot
  std::string checkpoint;  ///< exact save_checkpoint() image
};

struct RunOptions {
  bool force_scalar = false;
  bool parallel = false;
  int shards = 0;          ///< 0 = auto (only meaningful when parallel)
  ThreadPool* pool = nullptr;
  int first_slot = 1;
  int slots = 100;
  std::string resume_from;  ///< checkpoint blob to load before slot 1
};

/// Drives the small paper setup for [first_slot, first_slot+slots) and
/// returns the trajectory endpoint. Slot generation is keyed by t, so
/// two runs covering adjacent windows compose into one longer run.
RunResult run_policy(const RunOptions& opt) {
  const ScopedForceScalar guard(opt.force_scalar);
  auto s = small_setup();
  s.lfsc.parallel_scns = opt.parallel;
  s.lfsc.shards = opt.shards;
  s.lfsc.pool = opt.pool;
  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);
  if (!opt.resume_from.empty()) policy.load_checkpoint(opt.resume_from);
  RunResult out;
  Slot slot;
  Assignment assignment;
  for (int t = opt.first_slot; t < opt.first_slot + opt.slots; ++t) {
    sim.generate_slot(t, slot);
    policy.select(slot.info, assignment);
    out.cumulative_reward += evaluate_slot(slot, assignment, s.net).reward;
    policy.observe(slot.info, assignment, make_feedback(slot, assignment));
  }
  std::ostringstream blob;
  policy.save(blob);
  out.state = blob.str();
  policy.save_checkpoint(out.checkpoint);
  return out;
}

TEST(SimdEquivalence, PolicyTrajectoryBitIdenticalScalarVsVector) {
  RunOptions scalar;
  scalar.force_scalar = true;
  RunOptions vector;
  vector.force_scalar = false;
  const RunResult a = run_policy(scalar);
  const RunResult b = run_policy(vector);
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.cumulative_reward, b.cumulative_reward);
  EXPECT_GT(a.cumulative_reward, 0.0);
  if (!vector_path_available()) {
    GTEST_SKIP() << "no AVX2 at runtime: comparison was scalar-vs-scalar";
  }
}

TEST(SimdEquivalence, DifferentialCorpusPassesInBothModes) {
  // The randomized ref-vs-opt harness under each dispatch mode: forced
  // scalar pins opt-scalar against the reference, the default mode pins
  // opt-AVX2 against it (the reference's own exp calls go through
  // simd::exp_canonical, which is mode-independent by construction).
  for (const bool force : {true, false}) {
    const ScopedForceScalar guard(force);
    for (const std::uint64_t seed : {2ull, 13ull, 1997ull, 424242ull}) {
      const DiffResult res = run_differential(random_instance(seed));
      EXPECT_FALSE(res.diverged)
          << "seed " << seed << " (force_scalar=" << force
          << "): " << res.detail;
    }
  }
}

TEST(SimdEquivalence, ShardCountAndSimdModeNeverChangeTheTrajectory) {
  // The full matrix {serial, 1, 3, 8 shards} x {scalar, vector} must
  // land on one byte-identical learned state: shard boundaries only
  // partition the per-SCN loop, and each SCN owns a keyed RNG stream.
  RunOptions base;
  base.force_scalar = true;
  const RunResult golden = run_policy(base);
  ThreadPool pool(4);
  for (const bool force : {true, false}) {
    for (const int shards : {0, 1, 3, 8}) {
      RunOptions opt;
      opt.force_scalar = force;
      opt.parallel = true;
      opt.shards = shards;
      opt.pool = &pool;
      const RunResult got = run_policy(opt);
      EXPECT_EQ(golden.state, got.state)
          << "shards=" << shards << " force_scalar=" << force;
      EXPECT_EQ(golden.cumulative_reward, got.cumulative_reward)
          << "shards=" << shards << " force_scalar=" << force;
    }
  }
}

TEST(SimdEquivalence, CheckpointRoundTripsAcrossSimdModes) {
  // Save under the vector path, resume under forced scalar (the
  // migration a checkpoint moved between hosts actually performs). The
  // spliced run must equal an uninterrupted all-scalar run bit for bit.
  RunOptions first_half;
  first_half.slots = 50;
  const RunResult mid = run_policy(first_half);

  RunOptions second_half;
  second_half.force_scalar = true;
  second_half.first_slot = 51;
  second_half.slots = 50;
  second_half.resume_from = mid.checkpoint;
  const RunResult resumed = run_policy(second_half);

  RunOptions full;
  full.force_scalar = true;
  full.slots = 100;
  const RunResult straight = run_policy(full);
  EXPECT_EQ(straight.state, resumed.state);
}

/// Builds a random packed edge staging that satisfies the greedy
/// precondition (tasks ascending within each SCN bucket). Weights are
/// quantized to a handful of levels so ties — where the (weight desc,
/// scn asc, task asc) order contract actually bites — are common.
void random_staging(std::uint64_t seed, int num_scns, int num_tasks,
                    std::vector<int>& bucket_start,
                    std::vector<std::uint64_t>& entries) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<float> weight(0.0f, 1.0f);
  bucket_start.assign(static_cast<std::size_t>(num_scns) + 1, 0);
  entries.clear();
  for (int m = 0; m < num_scns; ++m) {
    bucket_start[static_cast<std::size_t>(m)] =
        static_cast<int>(entries.size());
    int local = 0;
    for (int task = 0; task < num_tasks; ++task) {
      if ((gen() & 3) != 0) continue;  // ~25% coverage
      float w = weight(gen);
      if ((gen() & 1) != 0) w = static_cast<float>(gen() % 5) * 0.25f;
      entries.push_back(pack_greedy_entry(w, task, local++));
    }
  }
  bucket_start[static_cast<std::size_t>(num_scns)] =
      static_cast<int>(entries.size());
}

TEST(SimdEquivalence, RadixGreedyMatchesPackedGreedyExactly) {
  // Covers both sides of the kRadixMinEdges cutover plus degenerate
  // shapes; the two variants must agree entry-for-entry, ties included.
  GreedySelectScratch scratch_a;
  GreedySelectScratch scratch_b;
  std::vector<int> bucket_start;
  std::vector<std::uint64_t> entries;
  const struct {
    std::uint64_t seed;
    int num_scns, num_tasks, capacity_c;
  } cases[] = {
      {1, 30, 600, 20},   // paper scale, ~4.5k edges
      {2, 8, 40, 3},      // tiny, heavy saturation
      {3, 2000, 70, 20},  // many SCNs, sparse buckets
      {4, 1, 5000, 7},    // one SCN saturates immediately
      {5, 16, 0, 4},      // no tasks at all
  };
  for (const auto& c : cases) {
    random_staging(c.seed, c.num_scns, c.num_tasks, bucket_start, entries);
    Assignment radix;
    greedy_select_radix(c.num_scns, c.num_tasks, c.capacity_c, bucket_start,
                        entries, radix, scratch_a);
    // greedy_select_packed consumes its entries in place (heap sifts);
    // give it a copy so both variants see the same staging.
    std::vector<std::uint64_t> mutable_entries = entries;
    Assignment packed;
    greedy_select_packed(c.num_scns, c.num_tasks, c.capacity_c, bucket_start,
                         mutable_entries, packed, scratch_b);
    ASSERT_EQ(radix.selected, packed.selected)
        << "seed " << c.seed << " (" << c.num_scns << " SCNs, "
        << c.num_tasks << " tasks, c=" << c.capacity_c << ")";
  }
}

TEST(SimdEquivalence, RadixGreedyRejectsOversizedSlots) {
  // The packed task field is 16 bits; both packed variants must refuse
  // a slot that cannot be represented rather than alias task indices.
  GreedySelectScratch scratch;
  std::vector<int> bucket_start = {0, 0};
  std::vector<std::uint64_t> entries;
  Assignment out;
  EXPECT_THROW(greedy_select_radix(1, 0x10001, 4, bucket_start, entries, out,
                                   scratch),
               std::invalid_argument);
}

}  // namespace
}  // namespace lfsc
