// Warm-start persistence of LfscPolicy state, and the policy-parallel
// runner mode (bit-identical to serial).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>

#include "harness/paper_setup.h"
#include "harness/runner.h"
#include "lfsc/lfsc_policy.h"
#include "metrics/metrics.h"

namespace lfsc {
namespace {

void train(LfscPolicy& policy, Simulator& sim, int slots) {
  for (int t = 1; t <= slots; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto a = policy.select(slot.info);
    policy.observe(slot.info, a, make_feedback(slot, a));
  }
}

TEST(LfscState, SaveLoadRoundTripsExactly) {
  auto s = small_setup();
  auto sim = s.make_simulator();
  LfscPolicy trained(s.net, s.lfsc);
  train(trained, sim, 100);

  std::stringstream blob;
  trained.save(blob);

  LfscPolicy fresh(s.net, s.lfsc);
  fresh.load(blob);
  for (int m = 0; m < s.net.num_scns; ++m) {
    ASSERT_EQ(fresh.weights(m).size(), trained.weights(m).size());
    for (std::size_t f = 0; f < fresh.weights(m).size(); ++f) {
      EXPECT_DOUBLE_EQ(fresh.weights(m)[f], trained.weights(m)[f]);
    }
    EXPECT_DOUBLE_EQ(fresh.lambda_qos(m), trained.lambda_qos(m));
    EXPECT_DOUBLE_EQ(fresh.lambda_resource(m), trained.lambda_resource(m));
  }
}

TEST(LfscState, WarmStartContinuesIdentically) {
  auto s = small_setup();
  // Train A for 60 slots; checkpoint at 30 into B; both must agree on
  // the remaining 30 slots (same rng seed => same exploration draws is
  // NOT given across instances, so compare weights, which evolve from
  // feedback of the *same* assignments only if selections match; instead
  // verify the warm-started policy performs comparably: its tail reward
  // must beat a cold policy's early reward on the same world).
  auto sim_a = s.make_simulator();
  LfscPolicy a(s.net, s.lfsc);
  train(a, sim_a, 400);
  std::stringstream blob;
  a.save(blob);

  // Warm policy starts with trained weights; cold starts from scratch.
  LfscPolicy warm(s.net, s.lfsc);
  warm.load(blob);
  LfscPolicy cold(s.net, s.lfsc);
  auto sim_w = s.make_simulator();
  auto sim_c = s.make_simulator();
  SeriesRecorder warm_rec("warm"), cold_rec("cold");
  for (int t = 1; t <= 150; ++t) {
    const auto slot_w = sim_w.generate_slot(t);
    const auto aw = warm.select(slot_w.info);
    warm_rec.add(evaluate_slot(slot_w, aw, s.net));
    warm.observe(slot_w.info, aw, make_feedback(slot_w, aw));

    const auto slot_c = sim_c.generate_slot(t);
    const auto ac = cold.select(slot_c.info);
    cold_rec.add(evaluate_slot(slot_c, ac, s.net));
    cold.observe(slot_c.info, ac, make_feedback(slot_c, ac));
  }
  EXPECT_LT(warm_rec.total_violation(), cold_rec.total_violation());
}

TEST(LfscState, LoadRejectsGarbage) {
  auto s = small_setup();
  LfscPolicy policy(s.net, s.lfsc);
  std::stringstream bad("not-a-state 1\n");
  EXPECT_THROW(policy.load(bad), std::runtime_error);
  std::stringstream truncated("LFSC-STATE 1\n4 27\n0.1 0.2 1.0\n");
  EXPECT_THROW(policy.load(truncated), std::runtime_error);
}

TEST(LfscState, LoadRejectsShapeMismatch) {
  auto s = small_setup();
  LfscPolicy policy(s.net, s.lfsc);
  std::stringstream blob;
  policy.save(blob);

  auto other = s;
  other.lfsc.parts_per_dim = 4;  // different partition
  LfscPolicy different(other.net, other.lfsc);
  EXPECT_THROW(different.load(blob), std::runtime_error);
}

TEST(LfscState, LoadRejectsNonPositiveWeights) {
  auto s = small_setup();
  LfscPolicy policy(s.net, s.lfsc);
  std::stringstream blob;
  policy.save(blob);
  std::string text = blob.str();
  // Corrupt the first weight (the "1" after the two multipliers).
  const auto pos = text.find("0 0 1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 5, "0 0 0");
  std::stringstream corrupted(text);
  EXPECT_THROW(policy.load(corrupted), std::runtime_error);
}

TEST(LfscState, LoadRejectsNonFiniteWeights) {
  // Regression: a non-finite weight used to be accepted and then poison
  // every probability computed from its table. load() must reject the
  // blob instead of repairing or propagating it.
  auto s = small_setup();
  LfscPolicy policy(s.net, s.lfsc);
  std::stringstream blob;
  policy.save(blob);
  std::string text = blob.str();
  const auto pos = text.find("0 0 1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 5, "0 0 inf");
  std::stringstream corrupted(text);
  EXPECT_THROW(policy.load(corrupted), std::runtime_error);
}

TEST(LfscState, LoadRejectsNonFiniteMultipliers) {
  // A "nan" multiplier must throw, never restore: the old behavior let
  // the box projection silently clamp it to 0.0 and mask the corruption.
  // (Whether the stream extraction itself rejects the token or the
  // explicit isfinite guard fires is platform detail; both throw.)
  auto s = small_setup();
  LfscPolicy policy(s.net, s.lfsc);
  std::stringstream blob;
  policy.save(blob);
  std::string text = blob.str();
  const auto pos = text.find("0 0 1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 5, "nan 0 1");
  std::stringstream corrupted(text);
  EXPECT_THROW(policy.load(corrupted), std::runtime_error);
}

TEST(LfscState, CheckpointRejectsNonFiniteMultiplier) {
  // Binary checkpoints can hold any bit pattern, so the isfinite guard
  // is load-bearing there: overwrite the first SCN's qos multiplier with
  // a NaN image and the restore must throw.
  auto s = small_setup();
  LfscPolicy policy(s.net, s.lfsc);
  std::string blob;
  policy.save_checkpoint(blob);
  // Layout (blob v2): u32 version, u32 scns, u32 cells, i32 t, i32 delay
  // window; overload-ladder block (u8 rung, u32 streak, u32 backoff,
  // u32 slots-since-recovery, 7x u64 counters); u8 slot rung; u64 audit
  // checks; u64 audit violations; then per SCN f64 weight_scale followed
  // by the f64 qos multiplier.
  const std::size_t overload_block =
      sizeof(std::uint8_t) + 3 * sizeof(std::uint32_t) +
      7 * sizeof(std::uint64_t);
  const std::size_t audit_block =
      sizeof(std::uint8_t) + 2 * sizeof(std::uint64_t);
  const std::size_t qos_offset = 5 * sizeof(std::uint32_t) + overload_block +
                                 audit_block + sizeof(double);
  ASSERT_GE(blob.size(), qos_offset + sizeof(double));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(blob.data() + qos_offset, &nan, sizeof nan);
  EXPECT_THROW(policy.load_checkpoint(blob), std::runtime_error);
}

TEST(Runner, ParallelPoliciesMatchSerialExactly) {
  auto s = small_setup();
  auto sim1 = s.make_simulator();
  auto owned1 = make_paper_policies(s);
  auto p1 = policy_pointers(owned1);
  const auto serial = run_experiment(sim1, p1, {.horizon = 60});

  auto sim2 = s.make_simulator();
  auto owned2 = make_paper_policies(s);
  auto p2 = policy_pointers(owned2);
  const auto parallel = run_experiment(
      sim2, p2, {.horizon = 60, .parallel_policies = true});

  for (std::size_t k = 0; k < serial.series.size(); ++k) {
    EXPECT_DOUBLE_EQ(serial.series[k].total_reward(),
                     parallel.series[k].total_reward());
    EXPECT_DOUBLE_EQ(serial.series[k].total_violation(),
                     parallel.series[k].total_violation());
  }
}

}  // namespace
}  // namespace lfsc
