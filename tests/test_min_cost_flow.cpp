#include "solver/min_cost_flow.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/rng.h"
#include "solver/branch_and_bound.h"

namespace lfsc {
namespace {

Edge make_edge(int scn, int task, double weight) {
  Edge e;
  e.scn = scn;
  e.task = task;
  e.local = task;
  e.weight = weight;
  return e;
}

TEST(MaxWeightBMatching, SimpleAssignment) {
  // Two SCNs, two tasks; crossing weights force the non-greedy pairing.
  std::vector<Edge> edges{make_edge(0, 0, 0.6), make_edge(0, 1, 0.9),
                          make_edge(1, 0, 0.1), make_edge(1, 1, 0.8)};
  const auto result = max_weight_b_matching(2, 2, 1, edges);
  // Optimal: (0,0)+(1,1) = 1.4 beats (0,1)+(1,0) = 1.0 and (0,1) alone.
  EXPECT_NEAR(result.total_weight, 1.4, 1e-9);
  EXPECT_EQ(result.assignment.selected[0], (std::vector<int>{0}));
  EXPECT_EQ(result.assignment.selected[1], (std::vector<int>{1}));
}

TEST(MaxWeightBMatching, GreedyWouldBeSuboptimalHere) {
  // Greedy takes (0,1)=0.9 first, forcing SCN 1 to 0.1: total 1.0 < 1.4.
  // The flow solver must beat that.
  std::vector<Edge> edges{make_edge(0, 0, 0.6), make_edge(0, 1, 0.9),
                          make_edge(1, 0, 0.1), make_edge(1, 1, 0.8)};
  const auto result = max_weight_b_matching(2, 2, 1, edges);
  EXPECT_GT(result.total_weight, 1.0);
}

TEST(MaxWeightBMatching, RespectsCapacity) {
  std::vector<Edge> edges;
  for (int i = 0; i < 6; ++i) edges.push_back(make_edge(0, i, 1.0));
  const auto result = max_weight_b_matching(1, 6, 2, edges);
  EXPECT_EQ(result.assignment.selected[0].size(), 2u);
  EXPECT_NEAR(result.total_weight, 2.0, 1e-9);
}

TEST(MaxWeightBMatching, IgnoresNonPositiveEdges) {
  std::vector<Edge> edges{make_edge(0, 0, -0.5), make_edge(0, 1, 0.0),
                          make_edge(0, 2, 0.4)};
  const auto result = max_weight_b_matching(1, 3, 3, edges);
  EXPECT_EQ(result.assignment.selected[0], (std::vector<int>{2}));
  EXPECT_NEAR(result.total_weight, 0.4, 1e-9);
}

TEST(MaxWeightBMatching, EmptyInstances) {
  const auto a = max_weight_b_matching(2, 0, 3, {});
  EXPECT_DOUBLE_EQ(a.total_weight, 0.0);
  const auto b = max_weight_b_matching(0, 0, 0, {});
  EXPECT_TRUE(b.assignment.selected.empty());
}

TEST(MaxWeightBMatching, PartialMatchingWhenTasksScarce) {
  std::vector<Edge> edges{make_edge(0, 0, 0.5), make_edge(1, 0, 0.7)};
  const auto result = max_weight_b_matching(2, 1, 3, edges);
  // Only one task exists; the better SCN takes it.
  EXPECT_NEAR(result.total_weight, 0.7, 1e-9);
  EXPECT_TRUE(result.assignment.selected[0].empty());
  EXPECT_EQ(result.assignment.selected[1], (std::vector<int>{0}));
}

TEST(MaxWeightBMatching, RejectsOutOfRangeEdges) {
  std::vector<Edge> bad{make_edge(0, 7, 0.5)};
  EXPECT_THROW(max_weight_b_matching(1, 3, 1, bad), std::out_of_range);
}

TEST(MaxWeightBMatching, RejectsMalformedInputUpFront) {
  // Parse-don't-guess: malformed edges throw even when the solver would
  // never select them (non-positive weight used to mask bad endpoints).
  std::vector<Edge> bad_skipped{make_edge(0, 9, -1.0)};
  EXPECT_THROW(max_weight_b_matching(1, 3, 1, bad_skipped),
               std::out_of_range);

  std::vector<Edge> nan_weight{
      make_edge(0, 0, std::numeric_limits<double>::quiet_NaN())};
  EXPECT_THROW(max_weight_b_matching(1, 3, 1, nan_weight),
               std::invalid_argument);
  std::vector<Edge> inf_weight{
      make_edge(0, 0, std::numeric_limits<double>::infinity())};
  EXPECT_THROW(max_weight_b_matching(1, 3, 1, inf_weight),
               std::invalid_argument);

  std::vector<Edge> negative_local{make_edge(0, 0, 0.5)};
  negative_local[0].local = -2;
  EXPECT_THROW(max_weight_b_matching(1, 3, 1, negative_local),
               std::out_of_range);

  EXPECT_THROW(max_weight_b_matching(-1, 3, 1, {}), std::invalid_argument);
  EXPECT_THROW(max_weight_b_matching(1, 3, -1, {}), std::invalid_argument);
}

TEST(MaxWeightBMatching, AgreesWithBranchAndBoundOnRandomInstances) {
  RngStream rng(55);
  for (int trial = 0; trial < 15; ++trial) {
    const int scns = 2 + static_cast<int>(rng.uniform_int(0, 2));
    const int tasks = 5 + static_cast<int>(rng.uniform_int(0, 10));
    const int cap = 1 + static_cast<int>(rng.uniform_int(0, 2));
    std::vector<Edge> edges;
    for (int m = 0; m < scns; ++m) {
      for (int i = 0; i < tasks; ++i) {
        if (rng.uniform() < 0.6) {
          edges.push_back(make_edge(m, i, rng.uniform(0.01, 1.0)));
        }
      }
    }
    const auto flow = max_weight_b_matching(scns, tasks, cap, edges);
    ExactProblem problem;
    problem.num_scns = scns;
    problem.num_tasks = tasks;
    problem.capacity_c = cap;
    problem.edges = edges;
    const auto exact = solve_exact(problem);
    ASSERT_TRUE(exact.optimal);
    EXPECT_NEAR(flow.total_weight, exact.total_weight, 1e-6)
        << "scns=" << scns << " tasks=" << tasks << " cap=" << cap;
  }
}

TEST(MaxWeightBMatching, TotalWeightMatchesSelectedEdges) {
  RngStream rng(77);
  std::vector<Edge> edges;
  std::vector<std::vector<double>> w(3, std::vector<double>(12, 0.0));
  for (int m = 0; m < 3; ++m) {
    for (int i = 0; i < 12; ++i) {
      const double weight = rng.uniform(0.01, 1.0);
      w[static_cast<std::size_t>(m)][static_cast<std::size_t>(i)] = weight;
      edges.push_back(make_edge(m, i, weight));
    }
  }
  const auto result = max_weight_b_matching(3, 12, 4, edges);
  double recomputed = 0.0;
  for (std::size_t m = 0; m < 3; ++m) {
    for (const int local : result.assignment.selected[m]) {
      recomputed += w[m][static_cast<std::size_t>(local)];
    }
  }
  EXPECT_NEAR(result.total_weight, recomputed, 1e-9);
}

}  // namespace
}  // namespace lfsc
