// The Policy contract, verified uniformly for every strategy in the
// repository (parameterized suite):
//   * select() returns structurally valid assignments (capacity (1a),
//     uniqueness (1b), index validity) on arbitrary worlds;
//   * learning uses feedback only — policies never peek at realizations
//     (enforced by type for honest policies; the Oracle is exempt and
//     declared via needs_realizations());
//   * reset() restores a state equivalent to freshly constructed for
//     deterministic policies, and a *valid* state for randomized ones;
//   * empty slots and degenerate coverage are handled.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "baselines/fml.h"
#include "baselines/linucb.h"
#include "baselines/oracle.h"
#include "baselines/random_policy.h"
#include "baselines/thompson.h"
#include "baselines/vucb.h"
#include "extensions/joint_policy.h"
#include "harness/paper_setup.h"
#include "lfsc/lfsc_policy.h"
#include "metrics/metrics.h"
#include "metrics/recorder.h"

namespace lfsc {
namespace {

struct PolicyCase {
  const char* label;
  std::function<std::unique_ptr<Policy>(const PaperSetup&)> make;
};

PolicyCase cases[] = {
    {"Oracle",
     [](const PaperSetup& s) { return std::make_unique<OraclePolicy>(s.net); }},
    {"LFSC",
     [](const PaperSetup& s) {
       return std::make_unique<LfscPolicy>(s.net, s.lfsc);
     }},
    {"vUCB",
     [](const PaperSetup& s) { return std::make_unique<VucbPolicy>(s.net); }},
    {"FML",
     [](const PaperSetup& s) { return std::make_unique<FmlPolicy>(s.net); }},
    {"Random",
     [](const PaperSetup& s) { return std::make_unique<RandomPolicy>(s.net); }},
    {"LinUCB",
     [](const PaperSetup& s) { return std::make_unique<LinUcbPolicy>(s.net); }},
    {"Thompson",
     [](const PaperSetup& s) {
       return std::make_unique<ThompsonPolicy>(s.net);
     }},
    {"JointMBS",
     [](const PaperSetup& s) {
       return std::make_unique<JointMbsPolicy>(
           std::make_unique<LfscPolicy>(s.net, s.lfsc));
     }},
};

class PolicyContract : public ::testing::TestWithParam<PolicyCase> {
 protected:
  static void step(Policy& policy, const Slot& slot,
                   const NetworkConfig& net) {
    const Assignment a = policy.needs_realizations()
                             ? policy.select_omniscient(slot)
                             : policy.select(slot.info);
    ASSERT_EQ(validate_assignment(slot.info, a, net), std::nullopt);
    if (!policy.needs_realizations()) {
      policy.observe(slot.info, a, make_feedback(slot, a));
    }
  }
};

TEST_P(PolicyContract, ValidAssignmentsAcrossWorldShapes) {
  for (const std::uint64_t seed : {1ull, 99ull}) {
    PaperSetup s = small_setup();
    s.set_seed(seed);
    auto sim = s.make_simulator();
    auto policy = GetParam().make(s);
    for (int t = 1; t <= 40; ++t) {
      step(*policy, sim.generate_slot(t), s.net);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST_P(PolicyContract, HandlesEmptyAndSparseSlots) {
  PaperSetup s = small_setup();
  auto policy = GetParam().make(s);

  // Empty slot: no tasks anywhere.
  Slot empty;
  empty.info.t = 1;
  empty.info.coverage.assign(static_cast<std::size_t>(s.net.num_scns), {});
  empty.real.u.resize(static_cast<std::size_t>(s.net.num_scns));
  empty.real.v.resize(static_cast<std::size_t>(s.net.num_scns));
  empty.real.q.resize(static_cast<std::size_t>(s.net.num_scns));
  const Assignment on_empty = policy->needs_realizations()
                                  ? policy->select_omniscient(empty)
                                  : policy->select(empty.info);
  EXPECT_EQ(on_empty.total_selected(), 0u);
  if (!policy->needs_realizations()) {
    SlotFeedback feedback;
    feedback.per_scn.resize(static_cast<std::size_t>(s.net.num_scns));
    policy->observe(empty.info, on_empty, feedback);
  }

  // Sparse slot: one task visible to one SCN.
  Slot sparse = empty;
  sparse.info.t = 2;
  Task task;
  task.id = 7;
  task.context = make_context(10.0, 2.0, ResourceType::kGpu);
  sparse.info.tasks.push_back(task);
  sparse.info.coverage[0] = {0};
  sparse.real.u[0] = {0.8};
  sparse.real.v[0] = {0.9};
  sparse.real.q[0] = {1.2};
  const Assignment on_sparse = policy->needs_realizations()
                                   ? policy->select_omniscient(sparse)
                                   : policy->select(sparse.info);
  EXPECT_EQ(validate_assignment(sparse.info, on_sparse, s.net), std::nullopt);
  EXPECT_LE(on_sparse.total_selected(), 1u);
}

TEST_P(PolicyContract, SurvivesManySlotsWithoutDrift) {
  PaperSetup s = small_setup();
  auto sim = s.make_simulator();
  auto policy = GetParam().make(s);
  SeriesRecorder rec(GetParam().label);
  for (int t = 1; t <= 250; ++t) {
    const auto slot = sim.generate_slot(t);
    const Assignment a = policy->needs_realizations()
                             ? policy->select_omniscient(slot)
                             : policy->select(slot.info);
    ASSERT_EQ(validate_assignment(slot.info, a, s.net), std::nullopt);
    rec.add(evaluate_slot(slot, a, s.net));
    if (!policy->needs_realizations()) {
      policy->observe(slot.info, a, make_feedback(slot, a));
    }
  }
  // Tail reward must remain healthy: no collapse from numerical drift.
  EXPECT_GT(rec.mean_reward_tail(50), 0.25 * rec.total_reward() / 250.0);
}

TEST_P(PolicyContract, ResetYieldsWorkingPolicy) {
  PaperSetup s = small_setup();
  auto sim = s.make_simulator();
  auto policy = GetParam().make(s);
  for (int t = 1; t <= 30; ++t) step(*policy, sim.generate_slot(t), s.net);
  policy->reset();
  auto sim2 = s.make_simulator();
  for (int t = 1; t <= 10; ++t) step(*policy, sim2.generate_slot(t), s.net);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyContract,
                         ::testing::ValuesIn(cases),
                         [](const ::testing::TestParamInfo<PolicyCase>& param_info) {
                           return std::string(param_info.param.label);
                         });

}  // namespace
}  // namespace lfsc
