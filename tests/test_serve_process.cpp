// Process-level tests of the service contract (DESIGN.md §14), run
// against the real binaries: lfsc_run stopping gracefully on SIGTERM
// with a final checkpoint (exit 3), lfsc_serve draining on SIGTERM
// (exit 0, final generation written), and the headline recovery
// guarantee — SIGKILL mid-run, restart with --resume-latest, re-stream,
// and the state-backed stats fields match an uninterrupted run
// byte-for-byte.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "test_util.h"

namespace lfsc {
namespace {

struct ChildProc {
  pid_t pid = -1;
  FILE* to_child = nullptr;    ///< nullptr when stdin is /dev/null
  FILE* from_child = nullptr;  ///< nullptr when stdout is /dev/null
};

/// Forks `binary` with argv `args`. When `wire` is true, stdin/stdout
/// are connected over pipes for protocol traffic; otherwise both ends
/// are /dev/null (batch tools that would block on an unread pipe).
ChildProc spawn(const char* binary, const std::vector<std::string>& args,
                bool wire) {
  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  if (wire) {
    EXPECT_EQ(::pipe(to_child), 0);
    EXPECT_EQ(::pipe(from_child), 0);
  }
  ChildProc out;
  out.pid = ::fork();
  if (out.pid == 0) {
    if (wire) {
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
    } else {
      const int null_fd = ::open("/dev/null", O_RDWR);
      ::dup2(null_fd, STDIN_FILENO);
      ::dup2(null_fd, STDOUT_FILENO);
      ::close(null_fd);
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary));
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(binary, argv.data());
    std::_Exit(127);
  }
  if (wire) {
    ::close(to_child[0]);
    ::close(from_child[1]);
    out.to_child = ::fdopen(to_child[1], "w");
    out.from_child = ::fdopen(from_child[0], "r");
  }
  return out;
}

std::string read_response(ChildProc& proc) {
  std::string line;
  int c;
  while ((c = std::fgetc(proc.from_child)) != EOF && c != '\n') {
    line.push_back(static_cast<char>(c));
  }
  return line;
}

std::string request(ChildProc& proc, const std::string& line) {
  std::fputs(line.c_str(), proc.to_child);
  std::fputc('\n', proc.to_child);
  std::fflush(proc.to_child);
  return read_response(proc);
}

void close_pipes(ChildProc& proc) {
  if (proc.to_child != nullptr) std::fclose(proc.to_child);
  if (proc.from_child != nullptr) std::fclose(proc.from_child);
  proc.to_child = nullptr;
  proc.from_child = nullptr;
}

/// waitpid with a deadline: a hung child must fail the test, not wedge
/// the whole suite.
bool wait_exit(pid_t pid, int& status, int timeout_ms = 15000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) return true;
    if (r < 0) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, &status, 0);
  return false;
}

std::map<std::string, std::string> parse_stats(const std::string& line) {
  std::map<std::string, std::string> out;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      out[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return out;
}

/// Same deterministic stream as tests/test_serve.cpp: the process-level
/// run must be reproducible so the interrupted and uninterrupted runs
/// see identical traffic.
std::vector<std::string> make_task_lines(int slot, int count,
                                         int num_scns = 6) {
  std::mt19937 rng(static_cast<unsigned>(1000 + slot));
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<std::string> lines;
  for (int i = 0; i < count; ++i) {
    const int m0 = static_cast<int>(rng() % static_cast<unsigned>(num_scns));
    const int m1 = (m0 + 1 + static_cast<int>(
                                 rng() % static_cast<unsigned>(num_scns - 1))) %
                   num_scns;
    std::ostringstream os;
    os.precision(17);
    os << "task " << i << ' ' << 5.0 + 10.0 * unit(rng) << ' '
       << 1.0 + 2.0 * unit(rng) << ' '
       << (i % 3 == 0 ? "cpu" : i % 3 == 1 ? "gpu" : "cpugpu") << ' ' << m0
       << ':' << unit(rng) << ':' << unit(rng) << ':' << 1.0 + unit(rng)
       << ',' << m1 << ':' << unit(rng) << ':' << unit(rng) << ':'
       << 1.0 + unit(rng);
    lines.push_back(os.str());
  }
  return lines;
}

void drive_slots(ChildProc& proc, int from, int to) {
  for (int t = from; t <= to; ++t) {
    for (const auto& line : make_task_lines(t, 10)) {
      ASSERT_EQ(request(proc, line).rfind("ok", 0), 0u) << line;
    }
    const std::string tick = request(proc, "tick");
    ASSERT_EQ(tick, "ok slot=" + std::to_string(t) + " tasks=10");
  }
}

const std::vector<std::string> kServeArgs = {
    "--scns", "6", "--capacity", "5", "--alpha", "3", "--beta", "7",
    "--telemetry-interval", "1",
};

std::vector<std::string> serve_args(
    const std::initializer_list<std::string>& extra) {
  std::vector<std::string> args = kServeArgs;
  args.insert(args.end(), extra.begin(), extra.end());
  return args;
}

// ---------------------------------------------------------------------
// lfsc_run: SIGTERM under supervision = graceful stop, exit 3,
// checkpoint on disk.
// ---------------------------------------------------------------------

TEST(ServeProcess, LfscRunSigtermWritesFinalCheckpointAndExitsThree) {
  ScopedTempDir tmp;
  const std::string ckpt = tmp.path("run.ckpt");
  // A horizon far beyond what can finish before the signal lands.
  ChildProc proc = spawn(
      LFSC_RUN_BIN,
      {"--horizon", "2000000", "--scns", "6", "--capacity", "5", "--alpha",
       "3", "--beta", "7", "--policies", "LFSC", "--checkpoint", ckpt,
       "--checkpoint-every", "200"},
      /*wire=*/false);
  ASSERT_GT(proc.pid, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  ASSERT_EQ(::kill(proc.pid, SIGTERM), 0);
  int status = 0;
  ASSERT_TRUE(wait_exit(proc.pid, status)) << "lfsc_run ignored SIGTERM";
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 3) << "interrupted runs must exit 3";
  EXPECT_TRUE(std::filesystem::exists(ckpt))
      << "no final checkpoint after SIGTERM";
}

// ---------------------------------------------------------------------
// lfsc_serve: SIGTERM = drain (finish slot, checkpoint, exit 0).
// ---------------------------------------------------------------------

TEST(ServeProcess, ServeSigtermDrainsAndExitsZero) {
  ScopedTempDir tmp;
  const std::string prefix = tmp.path("ckpt");
  ChildProc proc =
      spawn(LFSC_SERVE_BIN, serve_args({"--checkpoint", prefix}), true);
  ASSERT_GT(proc.pid, 0);
  drive_slots(proc, 1, 2);  // the service is demonstrably up
  ASSERT_EQ(::kill(proc.pid, SIGTERM), 0);
  int status = 0;
  ASSERT_TRUE(wait_exit(proc.pid, status)) << "lfsc_serve ignored SIGTERM";
  close_pipes(proc);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "drain must exit 0";
  EXPECT_TRUE(std::filesystem::exists(prefix + ".g1"))
      << "drain did not write a final checkpoint generation";
}

// ---------------------------------------------------------------------
// The headline guarantee: kill -9 mid-run, restart --resume-latest,
// re-stream from the checkpointed slot — state-backed stats fields
// match an uninterrupted run byte-for-byte.
// ---------------------------------------------------------------------

TEST(ServeProcess, SigkillThenResumeLatestMatchesUninterruptedRun) {
  ScopedTempDir tmp;
  constexpr int kSlots = 12;
  constexpr int kCrashAfter = 6;

  // Reference run: the full stream, never interrupted.
  ChildProc reference = spawn(LFSC_SERVE_BIN, serve_args({}), true);
  ASSERT_GT(reference.pid, 0);
  drive_slots(reference, 1, kSlots);
  const std::string want_stats = request(reference, "stats");
  ASSERT_EQ(want_stats.rfind("ok ", 0), 0u);
  ASSERT_EQ(request(reference, "shutdown"), "ok shutdown");
  int status = 0;
  ASSERT_TRUE(wait_exit(reference.pid, status));
  close_pipes(reference);
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // Victim: half the stream, a checkpoint, then SIGKILL — no drain, no
  // flush, nothing graceful.
  const std::string prefix = tmp.path("ckpt");
  ChildProc victim =
      spawn(LFSC_SERVE_BIN, serve_args({"--checkpoint", prefix}), true);
  ASSERT_GT(victim.pid, 0);
  drive_slots(victim, 1, kCrashAfter);
  ASSERT_EQ(request(victim, "checkpoint"), "ok generation=1");
  // Work past the checkpoint that the kill wipes out.
  for (const auto& line : make_task_lines(kCrashAfter + 1, 10)) {
    ASSERT_EQ(request(victim, line).rfind("ok", 0), 0u);
  }
  ASSERT_EQ(::kill(victim.pid, SIGKILL), 0);
  ASSERT_TRUE(wait_exit(victim.pid, status));
  close_pipes(victim);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Recovery: --resume-latest, then the client re-streams everything
  // after the checkpointed slot.
  ChildProc resumed = spawn(
      LFSC_SERVE_BIN,
      serve_args({"--checkpoint", prefix, "--resume-latest"}), true);
  ASSERT_GT(resumed.pid, 0);
  const std::string stats_at_resume = request(resumed, "stats");
  EXPECT_EQ(parse_stats(stats_at_resume).at("slots"),
            std::to_string(kCrashAfter))
      << stats_at_resume;
  drive_slots(resumed, kCrashAfter + 1, kSlots);
  const std::string got_stats = request(resumed, "stats");
  ASSERT_EQ(request(resumed, "shutdown"), "ok shutdown");
  ASSERT_TRUE(wait_exit(resumed.pid, status));
  close_pipes(resumed);

  // Byte-exact comparison of every state-backed field; process-local
  // counters (ticks, deadline_misses, protocol_errors, checkpoints)
  // reset with the process by design.
  const auto got = parse_stats(got_stats);
  const auto want = parse_stats(want_stats);
  for (const char* field :
       {"slots", "reward", "qos_violation", "resource_violation", "offered",
        "admitted", "shed", "backlog", "rung", "escalations", "recoveries",
        "audit_checks", "audit_violations"}) {
    ASSERT_TRUE(got.count(field) != 0 && want.count(field) != 0) << field;
    EXPECT_EQ(got.at(field), want.at(field))
        << field << ":\n  got  " << got_stats << "\n  want " << want_stats;
  }
}

// ---------------------------------------------------------------------
// Handoff in stdin mode: `handoff` writes the final generation (pending
// queue and service counters included) and exits 0; a successor started
// with --resume-latest continues to a stats line that matches the
// uninterrupted reference byte-for-byte — every field, not just the
// state-backed subset, because the serve counters ride the checkpoint.
// ---------------------------------------------------------------------

TEST(ServeProcess, HandoffHandsFullStateToSuccessorByteExact) {
  ScopedTempDir tmp;
  constexpr int kSlots = 12;
  constexpr int kHandoffAfter = 8;

  // Reference: one process, `checkpoint` issued exactly where the
  // handoff run hands off, next slot's tasks already queued.
  ChildProc reference = spawn(
      LFSC_SERVE_BIN, serve_args({"--checkpoint", tmp.path("ref")}), true);
  ASSERT_GT(reference.pid, 0);
  drive_slots(reference, 1, kHandoffAfter);
  for (const auto& line : make_task_lines(kHandoffAfter + 1, 10)) {
    ASSERT_EQ(request(reference, line).rfind("ok", 0), 0u);
  }
  ASSERT_EQ(request(reference, "checkpoint"), "ok generation=1");
  ASSERT_EQ(request(reference, "tick"),
            "ok slot=" + std::to_string(kHandoffAfter + 1) + " tasks=10");
  drive_slots(reference, kHandoffAfter + 2, kSlots);
  const std::string want_stats = request(reference, "stats");
  ASSERT_EQ(request(reference, "shutdown"), "ok shutdown");
  int status = 0;
  ASSERT_TRUE(wait_exit(reference.pid, status));
  close_pipes(reference);
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // Old process: same stream to the handoff point; `handoff` must write
  // the final generation and exit 0 without further commands.
  const std::string prefix = tmp.path("ckpt");
  ChildProc old_proc =
      spawn(LFSC_SERVE_BIN, serve_args({"--checkpoint", prefix}), true);
  ASSERT_GT(old_proc.pid, 0);
  drive_slots(old_proc, 1, kHandoffAfter);
  for (const auto& line : make_task_lines(kHandoffAfter + 1, 10)) {
    ASSERT_EQ(request(old_proc, line).rfind("ok", 0), 0u);
  }
  ASSERT_EQ(request(old_proc, "handoff"), "ok handoff generation=1");
  ASSERT_TRUE(wait_exit(old_proc.pid, status)) << "handoff did not exit";
  close_pipes(old_proc);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // Successor: resumes the final generation; the queued tasks crossed.
  ChildProc successor = spawn(
      LFSC_SERVE_BIN,
      serve_args({"--checkpoint", prefix, "--resume-latest"}), true);
  ASSERT_GT(successor.pid, 0);
  EXPECT_EQ(parse_stats(request(successor, "stats")).at("slots"),
            std::to_string(kHandoffAfter));
  ASSERT_EQ(request(successor, "tick"),
            "ok slot=" + std::to_string(kHandoffAfter + 1) + " tasks=10");
  drive_slots(successor, kHandoffAfter + 2, kSlots);
  EXPECT_EQ(request(successor, "stats"), want_stats)
      << "post-handoff stats must be byte-identical, every field";
  ASSERT_EQ(request(successor, "shutdown"), "ok shutdown");
  ASSERT_TRUE(wait_exit(successor.pid, status));
  close_pipes(successor);
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace lfsc
