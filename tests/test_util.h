// Shared test utilities.
#pragma once

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

namespace lfsc {

/// A per-test scratch directory under ::testing::TempDir(), removed
/// recursively on destruction. The directory name embeds the suite and
/// test names: ctest -j runs cases as concurrent processes, so a shared
/// path would race writer against writer.
class ScopedTempDir {
 public:
  ScopedTempDir() {
    std::string leaf = "lfsc_";
    if (const auto* info =
            ::testing::UnitTest::GetInstance()->current_test_info()) {
      leaf += std::string(info->test_suite_name()) + "_" + info->name();
    }
    for (char& c : leaf) {
      if (c == '/') c = '_';  // parameterized test names contain '/'
    }
    dir_ = std::filesystem::path(::testing::TempDir()) / leaf;
    std::filesystem::create_directories(dir_);
  }
  ~ScopedTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);  // best-effort cleanup
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  /// Absolute path for a file named `name` inside the directory.
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

}  // namespace lfsc
