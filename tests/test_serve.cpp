// Tests for the serve layer (DESIGN.md §14): protocol parsing and
// chunking, the fuzz corpus that must never disturb learner state,
// live reconfiguration (next-slot effect, atomic rejection), generation
// checkpoints with corrupt-scan recovery, and the crash/resume
// bit-identity contract — in serial and parallel_scns flavors.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "harness/checkpoint.h"
#include "harness/paper_setup.h"
#include "serve/protocol.h"
#include "serve/serve.h"
#include "test_util.h"

namespace lfsc::serve {
namespace {

// ---------------------------------------------------------------------
// Protocol parsing
// ---------------------------------------------------------------------

TEST(ServeProtocol, ParsesTaskLine) {
  Command cmd;
  ASSERT_EQ(parse_command(
                "task 7 12.5 2.5 gpu 0:0.8:0.9:1.5,3:0.25:0.5:1.25", cmd),
            "");
  EXPECT_EQ(cmd.kind, Command::Kind::kTask);
  EXPECT_EQ(cmd.task.instance, 0);
  EXPECT_EQ(cmd.task.wd_id, 7);
  EXPECT_DOUBLE_EQ(cmd.task.input_mbit, 12.5);
  EXPECT_DOUBLE_EQ(cmd.task.output_mbit, 2.5);
  EXPECT_EQ(cmd.task.resource, ResourceType::kGpu);
  ASSERT_EQ(cmd.task.coverage.size(), 2u);
  EXPECT_EQ(cmd.task.coverage[0].scn, 0);
  EXPECT_DOUBLE_EQ(cmd.task.coverage[0].u, 0.8);
  EXPECT_DOUBLE_EQ(cmd.task.coverage[0].v, 0.9);
  EXPECT_DOUBLE_EQ(cmd.task.coverage[0].q, 1.5);
  EXPECT_EQ(cmd.task.coverage[1].scn, 3);
  EXPECT_DOUBLE_EQ(cmd.task.coverage[1].q, 1.25);
}

TEST(ServeProtocol, ParsesInstanceSelector) {
  Command cmd;
  ASSERT_EQ(parse_command("task @2 1 10 2 cpu 0:0.5:0.5:1.5", cmd), "");
  EXPECT_EQ(cmd.task.instance, 2);
  EXPECT_EQ(cmd.task.wd_id, 1);
}

TEST(ServeProtocol, ParsesBareCommandsAndCrLf) {
  const std::pair<const char*, Command::Kind> cases[] = {
      {"tick", Command::Kind::kTick},
      {"checkpoint", Command::Kind::kCheckpoint},
      {"stats", Command::Kind::kStats},
      {"telemetry", Command::Kind::kTelemetry},
      {"handoff", Command::Kind::kHandoff},
      {"drain", Command::Kind::kDrain},
      {"shutdown", Command::Kind::kShutdown},
  };
  for (const auto& [text, kind] : cases) {
    Command cmd;
    EXPECT_EQ(parse_command(text, cmd), "") << text;
    EXPECT_EQ(cmd.kind, kind) << text;
    EXPECT_EQ(parse_command(std::string(text) + "\r", cmd), "") << text;
    EXPECT_NE(parse_command(std::string(text) + " now", cmd), "") << text;
  }
}

TEST(ServeProtocol, ParsesReconfigKeys) {
  Command cmd;
  ASSERT_EQ(parse_command(
                "reconfig slot_budget_us=150 admission_max_queue=40 "
                "admission_capacity_factor=0.5 qos_alpha=12 "
                "resource_beta=22.5 telemetry_interval=7 telemetry_push=9",
                cmd),
            "");
  EXPECT_EQ(cmd.kind, Command::Kind::kReconfig);
  EXPECT_EQ(cmd.reconfig.slot_budget_us.value(), 150u);
  EXPECT_EQ(cmd.reconfig.admission_max_queue.value(), 40);
  EXPECT_DOUBLE_EQ(cmd.reconfig.admission_capacity_factor.value(), 0.5);
  EXPECT_DOUBLE_EQ(cmd.reconfig.qos_alpha.value(), 12.0);
  EXPECT_DOUBLE_EQ(cmd.reconfig.resource_beta.value(), 22.5);
  EXPECT_EQ(cmd.reconfig.telemetry_interval.value(), 7);
  EXPECT_EQ(cmd.reconfig.telemetry_push.value(), 9);
  Command single;
  ASSERT_EQ(parse_command("reconfig qos_alpha=3", single), "");
  EXPECT_TRUE(single.reconfig.slot_budget_us == std::nullopt);
  EXPECT_FALSE(single.reconfig.empty());
}

/// The fuzz corpus: every line is wrong in a different way, and each
/// must produce exactly one error without touching any state. Shared by
/// the parser rejection test and the controller state-fingerprint test,
/// and mirrored by the sanitizer pass in CI.
const std::vector<std::string>& fuzz_corpus() {
  static const std::vector<std::string> corpus = {
      "",                                         // empty
      "\r",                                       // blank after CR strip
      "bogus",                                    // unknown verb
      "TASK 1 10 2 cpu 0:0.5:0.5:1.5",            // case-sensitive
      "task",                                     // no fields
      "task 1 10 2 cpu",                          // missing coverage
      "task 1 10 2 cpu 0:0.5:0.5:1.5 extra",      // trailing garbage
      "task  1 10 2 cpu 0:0.5:0.5:1.5",           // double space
      "task 1 10 2 cpu 0:0.5:0.5:1.5 ",           // trailing blank token
      "task x 10 2 cpu 0:0.5:0.5:1.5",            // non-numeric wd
      "task 1 nan 2 cpu 0:0.5:0.5:1.5",           // NaN input
      "task 1 inf 2 cpu 0:0.5:0.5:1.5",           // infinite input
      "task 1 0x1p3 2 cpu 0:0.5:0.5:1.5",         // hex float
      "task 1 1e999 2 cpu 0:0.5:0.5:1.5",         // overflow
      "task 1 10 2 fpga 0:0.5:0.5:1.5",           // unknown resource
      "task 1 10 2 cpu 0:1.5:0.5:1.5",            // u out of [0,1]
      "task 1 10 2 cpu 0:0.5:-0.1:1.5",           // v out of [0,1]
      "task 1 10 2 cpu 0:0.5:0.5:0.5",            // q out of [1,2]
      "task 1 10 2 cpu 0:0.5:0.5:2.5",            // q out of [1,2]
      "task 1 10 2 cpu -1:0.5:0.5:1.5",           // negative SCN
      "task 1 10 2 cpu 0:0.5:0.5:1.5,0:0.6:0.6:1.6",  // duplicate SCN
      "task 1 10 2 cpu 0:0.5:0.5",                // short coverage entry
      "task 1 10 2 cpu 0:0.5:0.5:1.5:9",          // long coverage entry
      "task 1 10 2 cpu ,",                        // empty entries
      "task @9999999 1 10 2 cpu 0:0.5:0.5:1.5",   // huge instance
      "task @x 1 10 2 cpu 0:0.5:0.5:1.5",         // bad selector
      "tick now",                                 // args on bare verb
      "reconfig",                                 // no pairs
      "reconfig gamma=0.5",                       // unknown key
      "reconfig qos_alpha",                       // no '='
      "reconfig =5",                              // empty key
      "reconfig qos_alpha=nan",                   // NaN value
      "reconfig qos_alpha=-1",                    // out of range
      "reconfig resource_beta=0",                 // out of range
      "reconfig admission_capacity_factor=0",     // out of range
      "reconfig admission_max_queue=-5",          // out of range
      "reconfig slot_budget_us=999999999999",     // out of range
      "reconfig slot_budget_us=10 slot_budget_us=20",  // duplicate key
      "reconfig qos_alpha=5 gamma=0.1",           // one bad key poisons all
      "reconfig telemetry_push=-1",               // out of range
      "reconfig telemetry_push=x",                // non-numeric
      "reconfig telemetry_push=1 telemetry_push=2",  // duplicate key
      "telemetry json",                           // args on bare verb
      "handoff now",                              // args on bare verb
      std::string("task 1 10 2 cpu 0:0.5:0.5:1.5\0 x", 30),  // embedded NUL
  };
  return corpus;
}

TEST(ServeProtocol, RejectsEveryFuzzLineWithOneError) {
  for (const std::string& line : fuzz_corpus()) {
    Command cmd;
    const std::string err = parse_command(line, cmd);
    EXPECT_NE(err, "") << "accepted: '" << line << "'";
    EXPECT_EQ(err.find('\n'), std::string::npos) << line;
  }
}

// ---------------------------------------------------------------------
// LineChunker
// ---------------------------------------------------------------------

TEST(ServeLineChunker, ReassemblesAcrossFeeds) {
  LineChunker chunker;
  chunker.feed("ti");
  EXPECT_FALSE(chunker.next().has_value());
  chunker.feed("ck\nsta");
  auto line = chunker.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->text, "tick");
  EXPECT_FALSE(line->oversized);
  EXPECT_FALSE(chunker.next().has_value());
  chunker.feed("ts\r\n");
  line = chunker.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->text, "stats\r");  // CR left for parse_command to strip
}

TEST(ServeLineChunker, ReportsOversizedOnceAndRecovers) {
  LineChunker chunker(16);
  chunker.feed(std::string(100, 'a'));
  auto line = chunker.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_TRUE(line->oversized);
  EXPECT_FALSE(chunker.next().has_value());
  chunker.feed(std::string(100, 'b'));  // still the same unterminated line
  EXPECT_FALSE(chunker.next().has_value());
  EXPECT_LE(chunker.buffered(), 16u);
  chunker.feed("\ntick\n");  // terminator ends the flood; next line is clean
  line = chunker.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_FALSE(line->oversized);
  EXPECT_EQ(line->text, "tick");
}

// ---------------------------------------------------------------------
// ServeController helpers
// ---------------------------------------------------------------------

ServeConfig make_config(const std::string& checkpoint_prefix = "",
                        bool parallel = false, int instances = 1) {
  ServeConfig config;
  config.setup = small_setup();
  // Pin the network shape the expectations below are written against
  // (small_setup()'s constants are free to drift): 6 SCNs, c=5,
  // alpha=3, beta=7 — the same shape scripts/serve_smoke.py drives.
  config.setup.set_num_scns(6);
  config.setup.net.capacity_c = 5;
  config.setup.net.qos_alpha = 3.0;
  config.setup.net.resource_beta = 7.0;
  config.setup.lfsc.parallel_scns = parallel;
  if (parallel) config.setup.lfsc.shards = 3;
  config.instances = instances;
  config.telemetry_interval = 1;
  config.checkpoint_prefix = checkpoint_prefix;
  return config;
}

/// Deterministic task-line stream: `count` tasks per slot, every task
/// covered by 2 SCNs with in-range realizations.
std::vector<std::string> make_task_lines(int slot, int count,
                                         int num_scns = 6) {
  std::mt19937 rng(static_cast<unsigned>(1000 + slot));
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<std::string> lines;
  for (int i = 0; i < count; ++i) {
    const int m0 = static_cast<int>(rng() % static_cast<unsigned>(num_scns));
    const int m1 = (m0 + 1 + static_cast<int>(
                                 rng() % static_cast<unsigned>(num_scns - 1))) %
                   num_scns;
    std::ostringstream os;
    os.precision(17);
    os << "task " << i << ' ' << 5.0 + 10.0 * unit(rng) << ' '
       << 1.0 + 2.0 * unit(rng) << ' '
       << (i % 3 == 0 ? "cpu" : i % 3 == 1 ? "gpu" : "cpugpu") << ' ' << m0
       << ':' << unit(rng) << ':' << unit(rng) << ':' << 1.0 + unit(rng)
       << ',' << m1 << ':' << unit(rng) << ':' << unit(rng) << ':'
       << 1.0 + unit(rng);
    lines.push_back(os.str());
  }
  return lines;
}

void expect_ok(ServeController& controller, const std::string& line) {
  const std::string response = controller.handle_line(line);
  ASSERT_EQ(response.rfind("ok", 0), 0u) << line << " -> " << response;
}

std::map<std::string, std::string> parse_stats(const std::string& line) {
  std::map<std::string, std::string> out;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      out[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return out;
}

/// The stats fields backed by checkpointed state (survive kill -9 +
/// resume). Process-local fields — ticks, deadline_misses,
/// protocol_errors, checkpoints — intentionally reset with the process.
const std::vector<std::string>& state_backed_fields() {
  static const std::vector<std::string> fields = {
      "slots", "reward", "qos_violation", "resource_violation",
      "offered", "admitted", "shed", "backlog", "rung",
      "escalations", "recoveries", "audit_checks", "audit_violations",
  };
  return fields;
}

void expect_state_backed_equal(const std::string& got_line,
                               const std::string& want_line) {
  const auto got = parse_stats(got_line);
  const auto want = parse_stats(want_line);
  for (const std::string& field : state_backed_fields()) {
    ASSERT_TRUE(got.count(field) && want.count(field)) << field;
    EXPECT_EQ(got.at(field), want.at(field))
        << field << ": '" << got_line << "' vs '" << want_line << "'";
  }
}

// ---------------------------------------------------------------------
// Fuzz corpus against a live controller: state must not move.
// ---------------------------------------------------------------------

TEST(ServeController, FuzzCorpusLeavesLearnerUntouched) {
  ServeController controller(make_config());
  // Learn something first so the fingerprint is non-trivial.
  for (int t = 1; t <= 3; ++t) {
    for (const auto& line : make_task_lines(t, 8)) {
      expect_ok(controller, line);
    }
    expect_ok(controller, "tick");
  }
  ASSERT_EQ(controller.policy().audit_now(), 0);
  std::string before;
  controller.policy().save_checkpoint(before);
  const std::string stats_before = controller.handle_line("stats");

  // Parse-level garbage plus lines that only the controller can reject
  // (range checks that need the instance/SCN configuration).
  std::vector<std::string> lines = fuzz_corpus();
  lines.push_back("task 1 10 2 cpu 9999:0.5:0.5:1.5");  // SCN out of range
  lines.push_back("task @3 1 10 2 cpu 0:0.5:0.5:1.5");  // no such instance
  lines.push_back("checkpoint");  // no --checkpoint prefix configured
  lines.push_back("handoff");     // same: handoff needs a prefix
  std::uint64_t errors = 0;
  for (const std::string& line : lines) {
    const std::string response = controller.handle_line(line);
    EXPECT_EQ(response.rfind("err ", 0), 0u)
        << "'" << line << "' -> " << response;
    EXPECT_EQ(response.find('\n'), std::string::npos) << line;
    ++errors;
  }
  EXPECT_EQ(controller.protocol_errors(), errors);
  EXPECT_FALSE(controller.handoff_requested())
      << "a rejected handoff must not arm the handoff state machine";

  // Weight tables, multipliers, counters: bit-identical. (audit_now()
  // itself advances the checkpointed audit_checks counter, so the
  // clean-state audit runs after the snapshot, not between the two.)
  std::string after;
  controller.policy().save_checkpoint(after);
  EXPECT_EQ(before, after);
  EXPECT_EQ(controller.policy().audit_now(), 0);
  // And the next slot behaves as if the garbage never arrived.
  expect_ok(controller, "tick");
  const auto before_map = parse_stats(stats_before);
  const auto after_map = parse_stats(controller.handle_line("stats"));
  EXPECT_EQ(after_map.at("offered"), before_map.at("offered"));
}

TEST(ServeController, OversizedLineCountsAsProtocolError) {
  ServeController controller(make_config());
  const std::string response =
      controller.note_oversized_line(LineChunker::kDefaultMaxLine);
  EXPECT_EQ(response.rfind("err ", 0), 0u);
  EXPECT_EQ(controller.protocol_errors(), 1u);
}

// ---------------------------------------------------------------------
// Live reconfiguration
// ---------------------------------------------------------------------

TEST(ServeController, ReconfigTakesEffectNextSlot) {
  ServeController controller(make_config());
  // small_setup: alpha=3, M=6 -> an empty slot accrues 18 QoS violation.
  expect_ok(controller, "tick");
  auto stats = parse_stats(controller.handle_line("stats"));
  const double qos1 = std::stod(stats.at("qos_violation"));
  EXPECT_NEAR(qos1, 18.0, 1e-9);

  expect_ok(controller, "reconfig qos_alpha=1");
  expect_ok(controller, "tick");  // now 6 per empty slot
  stats = parse_stats(controller.handle_line("stats"));
  EXPECT_NEAR(std::stod(stats.at("qos_violation")) - qos1, 6.0, 1e-9);
}

TEST(ServeController, ReconfigAdmissionShedsNextSlot) {
  ServeController controller(make_config());
  expect_ok(controller,
            "reconfig admission_max_queue=2 admission_capacity_factor=0.05");
  // capacity = ceil(0.05 * 5 * 6) = 2 per slot, queue bound 2: offering
  // 12 tasks must shed at least 8.
  for (const auto& line : make_task_lines(1, 12)) {
    expect_ok(controller, line);
  }
  expect_ok(controller, "tick");
  const auto stats = parse_stats(controller.handle_line("stats"));
  EXPECT_EQ(std::stod(stats.at("offered")), 12.0);
  EXPECT_GT(std::stod(stats.at("shed")), 0.0);
  EXPECT_EQ(std::stod(stats.at("offered")),
            std::stod(stats.at("admitted")) + std::stod(stats.at("shed")));
}

TEST(ServeController, ReconfigSlotBudgetOnAndOffKeepsLadderInvariant) {
  ServeController controller(make_config());
  expect_ok(controller, "tick");  // budget reconfig after the first slot
  expect_ok(controller, "reconfig slot_budget_us=50");
  for (int t = 0; t < 3; ++t) {
    for (const auto& line : make_task_lines(10 + t, 20)) {
      expect_ok(controller, line);
    }
    expect_ok(controller, "tick");
  }
  expect_ok(controller, "reconfig slot_budget_us=0");  // back to unbudgeted
  expect_ok(controller, "tick");
  const auto stats = parse_stats(controller.handle_line("stats"));
  // Removing the budget steps the ladder home, counting one recovery
  // per rung: escalations - recoveries == rung must hold, and the rung
  // must be kFull (0) again.
  EXPECT_EQ(std::stod(stats.at("rung")), 0.0);
  EXPECT_EQ(std::stod(stats.at("escalations")),
            std::stod(stats.at("recoveries")));
}

TEST(ServeController, InvalidReconfigIsAtomicallyRejected) {
  ServeController controller(make_config());
  const AdmissionConfig before = controller.admission().config();
  // Valid admission_max_queue rides with an invalid qos_alpha: the
  // whole command must be rejected, not the valid half applied.
  const std::string response =
      controller.handle_line("reconfig admission_max_queue=7 qos_alpha=bad");
  EXPECT_EQ(response.rfind("err ", 0), 0u);
  EXPECT_EQ(controller.admission().config().max_queue, before.max_queue);
  // The empty-slot QoS accrual still uses the original alpha = 3.
  expect_ok(controller, "tick");
  const auto stats = parse_stats(controller.handle_line("stats"));
  EXPECT_NEAR(std::stod(stats.at("qos_violation")), 18.0, 1e-9);
}

TEST(ServeController, ReconfigTelemetryInterval) {
  ServeController controller(make_config());
  expect_ok(controller, "reconfig telemetry_interval=5");
  for (int t = 0; t < 7; ++t) expect_ok(controller, "tick");
  const auto stats = parse_stats(controller.handle_line("stats"));
  EXPECT_EQ(std::stod(stats.at("slots")), 7.0);
}

// ---------------------------------------------------------------------
// Ingress load shedding (`err busy`)
// ---------------------------------------------------------------------

TEST(ServeController, BusySheddingIsNotAProtocolError) {
  ServeConfig config = make_config();
  config.max_pending = 4;
  ServeController controller(config);
  const auto lines = make_task_lines(1, 6);
  for (int i = 0; i < 4; ++i) expect_ok(controller, lines[i]);
  // The bound is reached: well-formed tasks bounce with `err busy`,
  // counted as load shedding, not protocol garbage.
  EXPECT_EQ(controller.handle_line(lines[4]), "err busy");
  EXPECT_EQ(controller.handle_line(lines[5]), "err busy");
  EXPECT_EQ(controller.busy_rejects(), 2u);
  EXPECT_EQ(controller.protocol_errors(), 0u);
  const auto stats = parse_stats(controller.handle_line("stats"));
  EXPECT_EQ(stats.at("busy_rejects"), "2");
  EXPECT_EQ(stats.at("protocol_errors"), "0");
  // The tick drains the queue, so the next slot admits tasks again.
  EXPECT_EQ(controller.handle_line("tick"), "ok slot=1 tasks=4");
  expect_ok(controller, make_task_lines(2, 1)[0]);
}

// ---------------------------------------------------------------------
// Telemetry command + strided auto-push
// ---------------------------------------------------------------------

TEST(ServeController, TelemetryIsOneLineOfJson) {
  ServeController controller(make_config());
  expect_ok(controller, "tick");
  const std::string response = controller.handle_line("telemetry");
  ASSERT_EQ(response.rfind("ok {", 0), 0u) << response;
  EXPECT_NE(response.find("\"lfsc.telemetry/1\""), std::string::npos);
  EXPECT_NE(response.find("serve.busy_rejects"), std::string::npos)
      << "serve-level registry missing from the merged snapshot";
  EXPECT_EQ(response.find('\n'), std::string::npos) << "must be one line";
  EXPECT_EQ(controller.protocol_errors(), 0u);
}

TEST(ServeController, TelemetryPushFiresOnTheStride) {
  ServeController controller(make_config());
  EXPECT_FALSE(controller.take_push().has_value()) << "push defaults off";
  expect_ok(controller, "reconfig telemetry_push=3");
  for (int t = 1; t <= 7; ++t) {
    expect_ok(controller, "tick");
    const auto push = controller.take_push();
    EXPECT_EQ(push.has_value(), t % 3 == 0) << "slot " << t;
    if (push) {
      EXPECT_EQ(push->rfind("{", 0), 0u);
      EXPECT_EQ(push->find('\n'), std::string::npos);
    }
    EXPECT_FALSE(controller.take_push().has_value()) << "take must drain";
  }
  expect_ok(controller, "reconfig telemetry_push=0");  // disable again
  for (int t = 0; t < 3; ++t) expect_ok(controller, "tick");
  EXPECT_FALSE(controller.take_push().has_value());
}

// ---------------------------------------------------------------------
// Generation checkpoints: scan, corruption, pruning (satellite of the
// recovery path; the write/read primitives are covered in
// test_checkpoint.cpp).
// ---------------------------------------------------------------------

class ServeCheckpointTest : public ::testing::Test {
 protected:
  ScopedTempDir tmp_;
};

TEST_F(ServeCheckpointTest, ScanPicksNewestAndSkipsCorrupt) {
  const std::string prefix = tmp_.path("ckpt");
  ServeConfig config = make_config(prefix);
  config.checkpoint_keep = 10;
  ServeController controller(config);
  for (int g = 0; g < 3; ++g) {
    for (const auto& line : make_task_lines(g + 1, 5)) {
      expect_ok(controller, line);
    }
    expect_ok(controller, "tick");
    expect_ok(controller, "checkpoint");
  }
  ASSERT_EQ(list_checkpoint_generations(prefix).size(), 3u);

  // Newest wins when intact.
  {
    ServeController resumed(config);
    ASSERT_TRUE(resumed.resume_latest());
    EXPECT_EQ(resumed.completed_slots(), 3);
    EXPECT_EQ(resumed.checkpoint_generation(), 4u);
  }

  // Truncate g3 (torn write) and zero g2 (crashed before data): the
  // scan must fall back to g1 with one warning per skip.
  {
    std::error_code ec;
    const auto g3 = checkpoint_generation_path(prefix, 3);
    std::filesystem::resize_file(g3, std::filesystem::file_size(g3) / 2, ec);
    ASSERT_FALSE(ec);
    std::ofstream(checkpoint_generation_path(prefix, 2),
                  std::ios::trunc | std::ios::binary);
    ServeController resumed(config);
    ASSERT_TRUE(resumed.resume_latest());
    EXPECT_EQ(resumed.completed_slots(), 1);
    EXPECT_EQ(resumed.checkpoint_generation(), 2u);
  }

  // All generations corrupt: cold start, no throw.
  {
    for (int g = 1; g <= 3; ++g) {
      std::ofstream out(checkpoint_generation_path(prefix, g),
                        std::ios::trunc | std::ios::binary);
      out << "not a checkpoint";
    }
    ServeController resumed(config);
    EXPECT_FALSE(resumed.resume_latest());
    EXPECT_EQ(resumed.completed_slots(), 0);
  }
}

TEST_F(ServeCheckpointTest, ListIgnoresStrayFilesAndPrunes) {
  const std::string prefix = tmp_.path("ckpt");
  ServeConfig config = make_config(prefix);
  config.checkpoint_keep = 2;
  ServeController controller(config);
  // Stray siblings that must not parse as generations.
  for (const char* name : {"ckpt.g1.tmp", "ckpt.gx", "ckpt.g", "ckpt2.g7"}) {
    std::ofstream(tmp_.path(name)) << "x";
  }
  for (int g = 0; g < 4; ++g) {
    expect_ok(controller, "tick");
    expect_ok(controller, "checkpoint");
  }
  const auto generations = list_checkpoint_generations(prefix);
  ASSERT_EQ(generations.size(), 2u) << "keep=2 must prune older generations";
  EXPECT_EQ(generations.front(), 3u);
  EXPECT_EQ(generations.back(), 4u);
}

TEST_F(ServeCheckpointTest, DrainWritesFinalGenerationOnce) {
  ServeConfig config = make_config(tmp_.path("ckpt"));
  ServeController controller(config);
  expect_ok(controller, "tick");
  controller.drain();
  EXPECT_TRUE(controller.drained());
  EXPECT_EQ(list_checkpoint_generations(config.checkpoint_prefix).size(), 1u);
  controller.drain();  // idempotent
  EXPECT_EQ(list_checkpoint_generations(config.checkpoint_prefix).size(), 1u);
}

TEST_F(ServeCheckpointTest, ExternalSourceQueueSurvivesResume) {
  ServeConfig config = make_config(tmp_.path("ckpt"));
  ServeController controller(config);
  for (const auto& line : make_task_lines(1, 3)) {
    expect_ok(controller, line);
  }
  expect_ok(controller, "checkpoint");  // queue captured un-ticked

  ServeController resumed(config);
  ASSERT_TRUE(resumed.resume_latest());
  const std::string tick = resumed.handle_line("tick");
  EXPECT_EQ(tick, "ok slot=1 tasks=3") << "queued tasks lost across resume";
}

// ---------------------------------------------------------------------
// Crash/resume bit-identity (the tentpole acceptance test): a stream
// interrupted by an unflushed teardown and recovered via
// resume_latest() must land in the exact state of an uninterrupted run.
// ---------------------------------------------------------------------

class ServeCrashResume : public ::testing::TestWithParam<bool> {
 protected:
  ScopedTempDir tmp_;
};

TEST_P(ServeCrashResume, KillAndResumeIsBitIdentical) {
  const bool parallel = GetParam();
  constexpr int kSlots = 20;
  constexpr int kCrashAfter = 9;  // checkpointed slot; the "kill" point
  constexpr const char* kReconfig =
      "reconfig admission_max_queue=30 qos_alpha=2.5";

  // Live reconfiguration is operator configuration, not checkpointed
  // state: on restart the supervisor re-issues it (flags or a reconfig
  // line) before traffic resumes — modeled here by re-sending it
  // whenever the drive starts past the slot that applied it.
  const auto drive = [&](ServeController& controller, int from, int to) {
    if (from > 5) expect_ok(controller, kReconfig);
    for (int t = from; t <= to; ++t) {
      for (const auto& line : make_task_lines(t, 12)) {
        expect_ok(controller, line);
      }
      if (t == 5) expect_ok(controller, kReconfig);
      expect_ok(controller, "tick");
    }
  };

  // Reference: one controller, no interruption.
  ServeConfig ref_config = make_config(tmp_.path("ref"), parallel);
  ServeController reference(ref_config);
  drive(reference, 1, kSlots);
  const std::string want_stats = reference.handle_line("stats");
  std::string want_blob;
  reference.policy().save_checkpoint(want_blob);

  // Crashed: same stream up to the checkpoint, then the controller is
  // destroyed with everything after the checkpoint unsaved (kill -9
  // equivalence for in-process state), and a fresh controller resumes.
  ServeConfig config = make_config(tmp_.path("crash"), parallel);
  {
    ServeController victim(config);
    drive(victim, 1, kCrashAfter);
    expect_ok(victim, "checkpoint");
    // Post-checkpoint work that the crash wipes out.
    for (const auto& line : make_task_lines(kCrashAfter + 1, 12)) {
      expect_ok(victim, line);
    }
    expect_ok(victim, "tick");
  }
  ServeController resumed(config);
  ASSERT_TRUE(resumed.resume_latest());
  ASSERT_EQ(resumed.completed_slots(), kCrashAfter);
  // The client re-streams everything after the checkpointed slot.
  drive(resumed, kCrashAfter + 1, kSlots);

  expect_state_backed_equal(resumed.handle_line("stats"), want_stats);
  std::string got_blob;
  resumed.policy().save_checkpoint(got_blob);
  EXPECT_EQ(got_blob, want_blob) << "learner state diverged after resume";
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, ServeCrashResume,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "ParallelScns" : "Serial";
                         });

// ---------------------------------------------------------------------
// Handoff (DESIGN.md §16): the old controller writes a final generation
// carrying the pending ingress queue and the service counters; a fresh
// controller resumes it and must continue as if the process never
// changed — byte-identical stats line, byte-identical learner blob, and
// a canonically identical next checkpoint generation.
// ---------------------------------------------------------------------

/// Non-timer metric rows, minus checkpoint.resumes — the same
/// determinism contract as tests/test_checkpoint.cpp: timers measure
/// wall seconds, and resumes definitionally differ between a
/// handed-off run and an uninterrupted one.
std::vector<telemetry::MetricSnapshot> comparable_rows(
    const std::vector<telemetry::MetricSnapshot>& metrics) {
  std::vector<telemetry::MetricSnapshot> out;
  for (const auto& snap : metrics) {
    if (snap.kind == telemetry::Kind::kTimer) continue;
    if (snap.name == "checkpoint.resumes") continue;
    out.push_back(snap);
  }
  return out;
}

void expect_canonically_equal_checkpoints(const CheckpointState& got,
                                          const CheckpointState& want) {
  EXPECT_EQ(got.completed_slots, want.completed_slots);
  EXPECT_EQ(got.horizon, want.horizon);
  ASSERT_EQ(got.policies.size(), want.policies.size());
  for (std::size_t k = 0; k < want.policies.size(); ++k) {
    EXPECT_EQ(got.policies[k].name, want.policies[k].name);
    EXPECT_EQ(got.policies[k].blob, want.policies[k].blob)
        << "learner image diverged: " << want.policies[k].name;
    EXPECT_EQ(got.policies[k].reward, want.policies[k].reward);
    EXPECT_EQ(got.policies[k].qos, want.policies[k].qos);
    EXPECT_EQ(got.policies[k].res, want.policies[k].res);
    EXPECT_EQ(got.policies[k].delayed.size(), want.policies[k].delayed.size());
  }
  EXPECT_EQ(got.faults_blob, want.faults_blob);
  EXPECT_EQ(got.admission_blob, want.admission_blob);
  EXPECT_EQ(got.scenario_blob, want.scenario_blob)
      << "pending ingress queue diverged";
  EXPECT_EQ(got.serve_blob, want.serve_blob)
      << "service counters diverged";

  const auto got_rows = comparable_rows(got.metrics);
  const auto want_rows = comparable_rows(want.metrics);
  ASSERT_EQ(got_rows.size(), want_rows.size());
  for (std::size_t i = 0; i < want_rows.size(); ++i) {
    EXPECT_EQ(got_rows[i].name, want_rows[i].name);
    EXPECT_EQ(got_rows[i].count, want_rows[i].count) << want_rows[i].name;
    EXPECT_EQ(got_rows[i].value, want_rows[i].value) << want_rows[i].name;
    EXPECT_EQ(got_rows[i].sum, want_rows[i].sum) << want_rows[i].name;
    EXPECT_EQ(got_rows[i].stream_values, want_rows[i].stream_values)
        << want_rows[i].name;
    EXPECT_EQ(got_rows[i].bucket_counts, want_rows[i].bucket_counts)
        << want_rows[i].name;
  }

  // Sampled series: column-for-column, masking wall-clock timer columns
  // and checkpoint.resumes.
  ASSERT_EQ(got.telemetry_series.t, want.telemetry_series.t);
  ASSERT_EQ(got.telemetry_series.names, want.telemetry_series.names);
  std::vector<bool> comparable(want.telemetry_series.names.size(), true);
  for (const auto& snap : want.metrics) {
    if (snap.kind != telemetry::Kind::kTimer &&
        snap.name != "checkpoint.resumes") {
      continue;
    }
    for (std::size_t c = 0; c < comparable.size(); ++c) {
      if (want.telemetry_series.names[c] == snap.name) comparable[c] = false;
    }
  }
  ASSERT_EQ(got.telemetry_series.rows.size(),
            want.telemetry_series.rows.size());
  for (std::size_t r = 0; r < want.telemetry_series.rows.size(); ++r) {
    for (std::size_t c = 0; c < comparable.size(); ++c) {
      if (!comparable[c]) continue;
      EXPECT_EQ(got.telemetry_series.rows[r][c],
                want.telemetry_series.rows[r][c])
          << "row " << r << " column " << want.telemetry_series.names[c];
    }
  }
}

class ServeHandoff : public ::testing::TestWithParam<bool> {
 protected:
  ScopedTempDir tmp_;
};

TEST_P(ServeHandoff, SuccessorContinuesBitIdentical) {
  const bool parallel = GetParam();
  constexpr int kSlots = 18;
  constexpr int kHandoffAfter = 8;

  const auto drive = [](ServeController& controller, int from, int to) {
    for (int t = from; t <= to; ++t) {
      for (const auto& line : make_task_lines(t, 10)) {
        expect_ok(controller, line);
      }
      expect_ok(controller, "tick");
    }
  };

  // Reference: uninterrupted, but issuing `checkpoint` exactly where the
  // handoff run hands off — with the next slot's tasks already queued —
  // so the checkpoint counters and the captured ingress queue line up.
  ServeConfig ref_config = make_config(tmp_.path("ref"), parallel);
  ServeController reference(ref_config);
  drive(reference, 1, kHandoffAfter);
  for (const auto& line : make_task_lines(kHandoffAfter + 1, 10)) {
    expect_ok(reference, line);
  }
  ASSERT_EQ(reference.handle_line("checkpoint"), "ok generation=1");
  expect_ok(reference, "tick");
  drive(reference, kHandoffAfter + 2, kSlots);
  const std::string want_stats = reference.handle_line("stats");
  ASSERT_EQ(reference.handle_line("checkpoint"), "ok generation=2");
  std::string want_blob;
  reference.policy().save_checkpoint(want_blob);

  // Old process: identical stream to the handoff point. The tasks for
  // slot kHandoffAfter+1 are already queued and must cross the handoff
  // inside the final generation's ingress-queue blob.
  ServeConfig config = make_config(tmp_.path("hand"), parallel);
  {
    ServeController old(config);
    drive(old, 1, kHandoffAfter);
    for (const auto& line : make_task_lines(kHandoffAfter + 1, 10)) {
      expect_ok(old, line);
    }
    ASSERT_EQ(old.handle_line("handoff"), "ok handoff generation=1");
    EXPECT_TRUE(old.handoff_requested());
  }  // destroyed: nothing after the final generation survives

  ServeController successor(config);
  ASSERT_TRUE(successor.resume_latest());
  ASSERT_EQ(successor.completed_slots(), kHandoffAfter);
  // No task dropped, none duplicated: the first tick completes the next
  // slot with exactly the 10 tasks queued before the handoff.
  ASSERT_EQ(successor.handle_line("tick"),
            "ok slot=" + std::to_string(kHandoffAfter + 1) + " tasks=10");
  drive(successor, kHandoffAfter + 2, kSlots);

  // Every stats field — including ticks, protocol_errors, busy_rejects
  // and checkpoints, which ride the serve blob — byte-identical.
  EXPECT_EQ(successor.handle_line("stats"), want_stats);
  std::string got_blob;
  successor.policy().save_checkpoint(got_blob);
  EXPECT_EQ(got_blob, want_blob) << "learner state diverged after handoff";

  // And the next generation each side writes is canonically identical.
  ASSERT_EQ(successor.handle_line("checkpoint"), "ok generation=2");
  expect_canonically_equal_checkpoints(
      read_checkpoint_file(
          checkpoint_generation_path(tmp_.path("hand"), 2)),
      read_checkpoint_file(checkpoint_generation_path(tmp_.path("ref"), 2)));
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, ServeHandoff,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& param) {
                           return param.param ? "ParallelScns" : "Serial";
                         });

// ---------------------------------------------------------------------
// Multi-instance
// ---------------------------------------------------------------------

TEST(ServeMultiInstance, RoutesTasksAndResumesPerInstance) {
  ScopedTempDir tmp;
  ServeConfig config = make_config(tmp.path("multi"), false, 2);
  ServeController controller(config);
  EXPECT_EQ(controller.num_instances(), 2);
  expect_ok(controller, "task 1 10 2 cpu 0:0.9:0.9:1.1");
  expect_ok(controller, "task @1 2 12 3 gpu 1:0.8:0.7:1.3");
  expect_ok(controller, "task @1 3 11 2 cpu 2:0.6:0.5:1.2");
  EXPECT_EQ(controller.handle_line("task @2 4 10 2 cpu 0:0.5:0.5:1.5")
                .rfind("err ", 0),
            0u)
      << "instance out of range must be rejected";
  expect_ok(controller, "tick");
  expect_ok(controller, "checkpoint");

  // Both instances checkpoint under their own suffix.
  EXPECT_EQ(list_checkpoint_generations(tmp.path("multi") + ".i0").size(), 1u);
  EXPECT_EQ(list_checkpoint_generations(tmp.path("multi") + ".i1").size(), 1u);

  ServeController resumed(config);
  ASSERT_TRUE(resumed.resume_latest());
  EXPECT_EQ(resumed.completed_slots(0), 1);
  EXPECT_EQ(resumed.completed_slots(1), 1);
  for (int k = 0; k < 2; ++k) {
    std::string want, got;
    controller.policy(k).save_checkpoint(want);
    resumed.policy(k).save_checkpoint(got);
    EXPECT_EQ(got, want) << "instance " << k;
  }
}

}  // namespace
}  // namespace lfsc::serve
