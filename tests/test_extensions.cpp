#include <gtest/gtest.h>

#include "baselines/oracle.h"
#include "baselines/random_policy.h"
#include "extensions/joint_policy.h"
#include "extensions/mbs.h"
#include "extensions/persistent.h"
#include "harness/paper_setup.h"
#include "lfsc/lfsc_policy.h"
#include "metrics/metrics.h"

namespace lfsc {
namespace {

// --- MBS fallback ---

Slot tiny_slot() {
  Slot slot;
  slot.info.t = 1;
  slot.info.tasks.resize(4);
  for (int i = 0; i < 4; ++i) slot.info.tasks[static_cast<std::size_t>(i)].id = i;
  slot.info.coverage = {{0, 1, 2}, {2, 3}};
  slot.real.u = {{1.0, 0.8, 0.6}, {0.6, 0.4}};
  slot.real.v = {{1.0, 1.0, 1.0}, {1.0, 1.0}};
  slot.real.q = {{1.0, 1.0, 1.0}, {1.0, 1.0}};
  return slot;
}

TEST(MbsFallback, AbsorbsUnassignedTasksByValue) {
  const auto slot = tiny_slot();
  Assignment a;
  a.selected = {{0}, {}};  // only task 0 served by SCN 0
  MbsConfig config{.capacity = 2, .reward_discount = 0.5};
  const auto out = evaluate_mbs_fallback(slot, a, config);
  EXPECT_EQ(out.scn_tasks, 1);
  EXPECT_EQ(out.mbs_tasks, 2);
  EXPECT_EQ(out.unserved_tasks, 1);
  // Unserved: task1 (g=0.8), task2 (g mean of 0.6,0.6 = 0.6), task3 (0.4).
  // MBS takes the top two at 50%: 0.5*(0.8 + 0.6) = 0.7.
  EXPECT_NEAR(out.mbs_reward, 0.7, 1e-12);
}

TEST(MbsFallback, CapacityZeroServesNothing) {
  const auto slot = tiny_slot();
  Assignment a;
  a.selected = {{}, {}};
  const auto out = evaluate_mbs_fallback(slot, a, {.capacity = 0});
  EXPECT_EQ(out.mbs_tasks, 0);
  EXPECT_DOUBLE_EQ(out.mbs_reward, 0.0);
  EXPECT_EQ(out.unserved_tasks, 4);
}

TEST(MbsFallback, FullAssignmentLeavesNothing) {
  const auto slot = tiny_slot();
  Assignment a;
  a.selected = {{0, 1, 2}, {1}};  // all four tasks served
  const auto out = evaluate_mbs_fallback(slot, a, {});
  EXPECT_EQ(out.scn_tasks, 4);
  EXPECT_EQ(out.mbs_tasks, 0);
  EXPECT_EQ(out.unserved_tasks, 0);
}

TEST(MbsFallback, RejectsBadConfig) {
  const auto slot = tiny_slot();
  Assignment a;
  a.selected = {{}, {}};
  EXPECT_THROW(evaluate_mbs_fallback(slot, a, {.capacity = -1}),
               std::invalid_argument);
  EXPECT_THROW(
      evaluate_mbs_fallback(slot, a, {.capacity = 1, .reward_discount = 1.5}),
      std::invalid_argument);
}

TEST(MbsFallback, SystemRewardExceedsScnOnlyReward) {
  auto s = small_setup();
  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);
  double scn_reward = 0.0, mbs_extra = 0.0;
  for (int t = 1; t <= 50; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto a = policy.select(slot.info);
    scn_reward += evaluate_slot(slot, a, s.net).reward;
    mbs_extra += evaluate_mbs_fallback(slot, a, {}).mbs_reward;
    policy.observe(slot.info, a, make_feedback(slot, a));
  }
  EXPECT_GT(mbs_extra, 0.0);
}

// --- Joint MBS + SCN policy ---

TEST(JointPolicy, ClassifiesHeavyLatencyTolerantTasks) {
  auto s = small_setup();
  JointMbsPolicy joint(std::make_unique<RandomPolicy>(s.net),
                       {.heavy_input_mbit = 16.0, .max_output_mbit = 4.0});
  Task heavy;
  heavy.context = make_context(18.0, 2.0, ResourceType::kCpu);
  Task light;
  light.context = make_context(6.0, 2.0, ResourceType::kCpu);
  EXPECT_TRUE(joint.is_mbs_bound(heavy));
  EXPECT_FALSE(joint.is_mbs_bound(light));
  EXPECT_EQ(joint.name(), "Joint(Random+MBS)");
}

TEST(JointPolicy, NeverSelectsMbsBoundTasks) {
  auto s = small_setup();
  auto sim = s.make_simulator();
  JointMbsPolicy joint(std::make_unique<LfscPolicy>(s.net, s.lfsc));
  for (int t = 1; t <= 30; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto a = joint.select(slot.info);
    ASSERT_EQ(validate_assignment(slot.info, a, s.net), std::nullopt);
    for (std::size_t m = 0; m < a.selected.size(); ++m) {
      for (const int local : a.selected[m]) {
        const int task = slot.info.coverage[m][static_cast<std::size_t>(local)];
        EXPECT_FALSE(
            joint.is_mbs_bound(slot.info.tasks[static_cast<std::size_t>(task)]))
            << "selected an MBS-bound task";
      }
    }
    joint.observe(slot.info, a, make_feedback(slot, a));
    EXPECT_GT(joint.last_mbs_routed(), 0u);  // some heavy tasks exist
  }
}

TEST(JointPolicy, InnerLearnerStillLearns) {
  // The wrapped LFSC must keep producing valid assignments and improving:
  // run a few hundred slots and confirm the index translation holds up.
  auto s = small_setup();
  auto sim = s.make_simulator();
  JointMbsPolicy joint(std::make_unique<LfscPolicy>(s.net, s.lfsc));
  SeriesRecorder rec("joint");
  for (int t = 1; t <= 300; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto a = joint.select(slot.info);
    rec.add(evaluate_slot(slot, a, s.net));
    joint.observe(slot.info, a, make_feedback(slot, a));
  }
  EXPECT_GT(rec.total_reward(), 0.0);
}

TEST(JointPolicy, ObserveWithoutSelectThrows) {
  auto s = small_setup();
  JointMbsPolicy joint(std::make_unique<RandomPolicy>(s.net));
  SlotInfo info;
  info.t = 5;
  Assignment a;
  SlotFeedback fb;
  EXPECT_THROW(joint.observe(info, a, fb), std::logic_error);
}

TEST(JointPolicy, RequiresInnerPolicy) {
  EXPECT_THROW(JointMbsPolicy(nullptr), std::invalid_argument);
}

TEST(JointPolicy, ResetForwards) {
  auto s = small_setup();
  auto sim = s.make_simulator();
  JointMbsPolicy joint(std::make_unique<LfscPolicy>(s.net, s.lfsc));
  const auto slot = sim.generate_slot(1);
  const auto a = joint.select(slot.info);
  joint.observe(slot.info, a, make_feedback(slot, a));
  joint.reset();
  EXPECT_EQ(joint.last_mbs_routed(), 0u);
}

// --- Persistent re-submission ---

// An under-loaded variant: demand fluctuates below and above capacity,
// so slack slots exist for the backlog to drain into — the regime where
// re-submission actually adds throughput.
PaperSetup underloaded_setup() {
  auto s = small_setup();
  s.coverage.tasks_per_scn_min = 4;
  s.coverage.tasks_per_scn_max = 30;  // c = 10 sits inside this range
  return s;
}

TEST(Persistent, ServedFractionBeatsOneShotWhenSlackExists) {
  auto s = underloaded_setup();
  auto sim1 = s.make_simulator();
  auto sim2 = s.make_simulator();
  RandomPolicy p1(s.net), p2(s.net);
  const auto oneshot = run_persistent_experiment(
      sim1, p1, {.horizon = 100}, {.max_patience = 0});
  const auto patient = run_persistent_experiment(
      sim2, p2, {.horizon = 100}, {.max_patience = 3});
  EXPECT_GT(patient.stats.served_fraction(), oneshot.stats.served_fraction());
  EXPECT_GT(patient.stats.mean_wait_slots, 0.0);
  EXPECT_DOUBLE_EQ(oneshot.stats.mean_wait_slots, 0.0);
}

TEST(Persistent, SaturatedSystemThroughputIsCapacityBound) {
  // With demand always above capacity, patience redistributes *which*
  // tasks are served but cannot raise the served fraction: per-slot
  // service is pinned at the capacity bound.
  auto s = small_setup();  // 30-60 tasks per SCN vs c = 10: saturated
  auto sim1 = s.make_simulator();
  auto sim2 = s.make_simulator();
  RandomPolicy p1(s.net), p2(s.net);
  const auto oneshot = run_persistent_experiment(
      sim1, p1, {.horizon = 80}, {.max_patience = 0});
  const auto patient = run_persistent_experiment(
      sim2, p2, {.horizon = 80}, {.max_patience = 3});
  EXPECT_NEAR(patient.stats.served_fraction(),
              oneshot.stats.served_fraction(), 0.02);
}

TEST(Persistent, AccountingIsConserved) {
  auto s = small_setup();
  auto sim = s.make_simulator();
  RandomPolicy policy(s.net);
  const auto result = run_persistent_experiment(sim, policy, {.horizon = 60},
                                                {.max_patience = 2});
  const auto& st = result.stats;
  // Every unique task is eventually served or expired (including the
  // final backlog swept up at the horizon).
  EXPECT_EQ(st.total_tasks, st.served_tasks + st.expired_tasks);
  EXPECT_GT(st.total_tasks, 0);
  EXPECT_GT(st.max_backlog, 0);
  EXPECT_EQ(result.series.slots(), 60u);
}

TEST(Persistent, PatienceZeroMatchesPlainRunReward) {
  auto s = small_setup();
  auto sim1 = s.make_simulator();
  auto sim2 = s.make_simulator();
  RandomPolicy p1(s.net), p2(s.net);
  const auto persistent = run_persistent_experiment(
      sim1, p1, {.horizon = 40}, {.max_patience = 0});
  Policy* roster[] = {&p2};
  const auto plain = run_experiment(sim2, roster, {.horizon = 40});
  EXPECT_DOUBLE_EQ(persistent.series.total_reward(),
                   plain.series[0].total_reward());
}

TEST(Persistent, LfscHandlesInjectedTasks) {
  auto s = underloaded_setup();
  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);
  const auto result = run_persistent_experiment(sim, policy, {.horizon = 80},
                                                {.max_patience = 3});
  EXPECT_GT(result.stats.served_fraction(), 0.5);
  EXPECT_GT(result.series.total_reward(), 0.0);
}

// A policy that never serves anything: every task in every slot ages
// out through the full patience window.
class NullPolicy : public Policy {
 public:
  std::string_view name() const noexcept override { return "Null"; }
  Assignment select(const SlotInfo& info) override {
    Assignment a;
    a.selected.resize(info.coverage.size());
    return a;
  }
};

TEST(Persistent, AllTasksExpireUnderNullPolicy) {
  auto s = small_setup();
  auto sim = s.make_simulator();
  NullPolicy policy;
  const auto result = run_persistent_experiment(sim, policy, {.horizon = 40},
                                                {.max_patience = 2});
  const auto& st = result.stats;
  EXPECT_GT(st.total_tasks, 0);
  EXPECT_EQ(st.served_tasks, 0);
  EXPECT_EQ(st.expired_tasks, st.total_tasks);
  EXPECT_DOUBLE_EQ(st.served_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(st.mean_wait_slots, 0.0);  // no served task ever waited
  EXPECT_DOUBLE_EQ(result.series.total_reward(), 0.0);
}

TEST(Persistent, PatienceZeroNeverCarriesBacklog) {
  auto s = small_setup();
  auto sim = s.make_simulator();
  NullPolicy policy;
  // Even when nothing is served, zero patience expires every task in
  // its arrival slot — the backlog never forms.
  const auto result = run_persistent_experiment(sim, policy, {.horizon = 30},
                                                {.max_patience = 0});
  EXPECT_EQ(result.stats.max_backlog, 0);
  EXPECT_EQ(result.stats.expired_tasks, result.stats.total_tasks);
}

TEST(Persistent, SaturatedBacklogExceedsCapacity) {
  // Saturated demand (30-60 tasks per SCN vs c = 10) with patience:
  // the re-submission backlog must grow past what one slot can serve,
  // and the accounting invariant still holds at the horizon sweep.
  auto s = small_setup();
  auto sim = s.make_simulator();
  RandomPolicy policy(s.net);
  const auto result = run_persistent_experiment(sim, policy, {.horizon = 50},
                                                {.max_patience = 4});
  const auto& st = result.stats;
  EXPECT_GT(st.max_backlog, static_cast<long>(s.net.capacity_c));
  EXPECT_EQ(st.total_tasks, st.served_tasks + st.expired_tasks);
  EXPECT_GT(st.expired_tasks, 0);
}

TEST(Persistent, RejectsBadArguments) {
  auto s = small_setup();
  auto sim = s.make_simulator();
  RandomPolicy policy(s.net);
  EXPECT_THROW(run_persistent_experiment(sim, policy, {.horizon = 0}, {}),
               std::invalid_argument);
  EXPECT_THROW(run_persistent_experiment(sim, policy, {.horizon = 10},
                                         {.max_patience = -1}),
               std::invalid_argument);
  OraclePolicy oracle(s.net);
  EXPECT_THROW(run_persistent_experiment(sim, oracle, {.horizon = 10}, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace lfsc
