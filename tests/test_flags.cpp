#include "common/flags.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace lfsc {
namespace {

FlagParser::Result run(FlagParser& parser, std::vector<const char*> args,
                       std::string* err_text = nullptr) {
  args.insert(args.begin(), "prog");
  std::ostringstream err;
  const auto result =
      parser.parse(static_cast<int>(args.size()), args.data(), err);
  if (err_text != nullptr) *err_text = err.str();
  return result;
}

TEST(Flags, DefaultsSurviveEmptyArgv) {
  FlagParser parser("p", "d");
  const int* n = parser.add_int("n", 7, "count");
  const double* x = parser.add_double("x", 1.5, "value");
  const std::string* s = parser.add_string("s", "abc", "text");
  const bool* b = parser.add_bool("b", false, "toggle");
  EXPECT_EQ(run(parser, {}), FlagParser::Result::kOk);
  EXPECT_EQ(*n, 7);
  EXPECT_DOUBLE_EQ(*x, 1.5);
  EXPECT_EQ(*s, "abc");
  EXPECT_FALSE(*b);
  EXPECT_FALSE(parser.provided("n"));
}

TEST(Flags, SpaceAndEqualsForms) {
  FlagParser parser("p", "d");
  const int* n = parser.add_int("n", 0, "count");
  const double* x = parser.add_double("x", 0, "value");
  EXPECT_EQ(run(parser, {"--n", "42", "--x=2.25"}), FlagParser::Result::kOk);
  EXPECT_EQ(*n, 42);
  EXPECT_DOUBLE_EQ(*x, 2.25);
  EXPECT_TRUE(parser.provided("n"));
  EXPECT_TRUE(parser.provided("x"));
}

TEST(Flags, BoolForms) {
  FlagParser parser("p", "d");
  const bool* a = parser.add_bool("a", false, "");
  const bool* b = parser.add_bool("b", true, "");
  const bool* c = parser.add_bool("c", false, "");
  EXPECT_EQ(run(parser, {"--a", "--b=false", "--c", "true"}),
            FlagParser::Result::kOk);
  EXPECT_TRUE(*a);
  EXPECT_FALSE(*b);
  EXPECT_TRUE(*c);
}

TEST(Flags, BareBoolFollowedByAnotherFlag) {
  FlagParser parser("p", "d");
  const bool* a = parser.add_bool("a", false, "");
  const int* n = parser.add_int("n", 0, "");
  EXPECT_EQ(run(parser, {"--a", "--n", "3"}), FlagParser::Result::kOk);
  EXPECT_TRUE(*a);
  EXPECT_EQ(*n, 3);
}

TEST(Flags, UnknownFlagFails) {
  FlagParser parser("p", "d");
  parser.add_int("n", 0, "");
  std::string err;
  EXPECT_EQ(run(parser, {"--nope", "1"}, &err), FlagParser::Result::kError);
  EXPECT_NE(err.find("unknown flag"), std::string::npos);
  EXPECT_NE(err.find("--n"), std::string::npos);  // usage printed
}

TEST(Flags, InvalidValuesFail) {
  FlagParser parser("p", "d");
  parser.add_int("n", 0, "");
  parser.add_double("x", 0, "");
  parser.add_bool("b", false, "");
  EXPECT_EQ(run(parser, {"--n", "abc"}), FlagParser::Result::kError);
  FlagParser parser2("p", "d");
  parser2.add_double("x", 0, "");
  EXPECT_EQ(run(parser2, {"--x", "1.5garbage"}), FlagParser::Result::kError);
  FlagParser parser3("p", "d");
  parser3.add_bool("b", false, "");
  EXPECT_EQ(run(parser3, {"--b=maybe"}), FlagParser::Result::kError);
}

TEST(Flags, MissingValueFails) {
  FlagParser parser("p", "d");
  parser.add_int("n", 0, "");
  std::string err;
  EXPECT_EQ(run(parser, {"--n"}, &err), FlagParser::Result::kError);
  EXPECT_NE(err.find("expects a value"), std::string::npos);
}

TEST(Flags, HelpShortCircuits) {
  FlagParser parser("p", "does things");
  parser.add_int("n", 5, "the count");
  std::string err;
  EXPECT_EQ(run(parser, {"--help"}, &err), FlagParser::Result::kHelp);
  EXPECT_NE(err.find("does things"), std::string::npos);
  EXPECT_NE(err.find("the count"), std::string::npos);
  EXPECT_NE(err.find("default: 5"), std::string::npos);
}

TEST(Flags, PositionalArgumentsRejected) {
  FlagParser parser("p", "d");
  EXPECT_EQ(run(parser, {"stray"}), FlagParser::Result::kError);
}

TEST(Flags, DuplicateRegistrationThrows) {
  FlagParser parser("p", "d");
  parser.add_int("n", 0, "");
  EXPECT_THROW(parser.add_double("n", 0, ""), std::invalid_argument);
  EXPECT_THROW(parser.add_int("", 0, ""), std::invalid_argument);
}

TEST(Flags, NegativeNumbersParse) {
  FlagParser parser("p", "d");
  const int* n = parser.add_int("n", 0, "");
  const double* x = parser.add_double("x", 0, "");
  EXPECT_EQ(run(parser, {"--n", "-5", "--x", "-0.25"}),
            FlagParser::Result::kOk);
  EXPECT_EQ(*n, -5);
  EXPECT_DOUBLE_EQ(*x, -0.25);
}

TEST(Flags, LastValueWins) {
  FlagParser parser("p", "d");
  const int* n = parser.add_int("n", 0, "");
  EXPECT_EQ(run(parser, {"--n", "1", "--n", "2"}), FlagParser::Result::kOk);
  EXPECT_EQ(*n, 2);
}

}  // namespace
}  // namespace lfsc
