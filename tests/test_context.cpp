#include "sim/context.h"

#include <gtest/gtest.h>

namespace lfsc {
namespace {

TEST(Context, NormalizesIntoUnitCube) {
  const auto ctx = make_context(12.5, 2.5, ResourceType::kGpu);
  EXPECT_DOUBLE_EQ(ctx.normalized[0], 0.5);  // (12.5-5)/15
  EXPECT_DOUBLE_EQ(ctx.normalized[1], 0.5);  // (2.5-1)/3
  EXPECT_DOUBLE_EQ(ctx.normalized[2], 0.5);  // (1+0.5)/3
}

TEST(Context, ClampsOutOfRangeRawValues) {
  const auto low = make_context(0.0, 0.0, ResourceType::kCpu);
  EXPECT_DOUBLE_EQ(low.input_mbit, 5.0);
  EXPECT_DOUBLE_EQ(low.normalized[0], 0.0);
  const auto high = make_context(100.0, 100.0, ResourceType::kCpuGpu);
  EXPECT_DOUBLE_EQ(high.input_mbit, 20.0);
  EXPECT_DOUBLE_EQ(high.normalized[0], 1.0);
  EXPECT_DOUBLE_EQ(high.normalized[1], 1.0);
}

TEST(Context, ResourceTypesMapToDistinctThirds) {
  const auto cpu = make_context(10, 2, ResourceType::kCpu);
  const auto gpu = make_context(10, 2, ResourceType::kGpu);
  const auto both = make_context(10, 2, ResourceType::kCpuGpu);
  EXPECT_LT(cpu.normalized[2], 1.0 / 3.0);
  EXPECT_GT(gpu.normalized[2], 1.0 / 3.0);
  EXPECT_LT(gpu.normalized[2], 2.0 / 3.0);
  EXPECT_GT(both.normalized[2], 2.0 / 3.0);
}

TEST(Context, CustomRanges) {
  ContextRanges ranges;
  ranges.input_mbit_lo = 0.0;
  ranges.input_mbit_hi = 10.0;
  const auto ctx = make_context(2.5, 1.0, ResourceType::kCpu, ranges);
  EXPECT_DOUBLE_EQ(ctx.normalized[0], 0.25);
}

TEST(Context, ResourceTypeNames) {
  EXPECT_EQ(to_string(ResourceType::kCpu), "CPU");
  EXPECT_EQ(to_string(ResourceType::kGpu), "GPU");
  EXPECT_EQ(to_string(ResourceType::kCpuGpu), "CPU+GPU");
}

}  // namespace
}  // namespace lfsc
