#include "metrics/metrics.h"

#include <gtest/gtest.h>

namespace lfsc {
namespace {

// Hand-built two-SCN slot with known realizations.
Slot make_slot() {
  Slot slot;
  slot.info.t = 1;
  slot.info.tasks.resize(3);
  for (int i = 0; i < 3; ++i) slot.info.tasks[static_cast<std::size_t>(i)].id = i;
  slot.info.coverage = {{0, 1}, {1, 2}};
  slot.real.u = {{1.0, 0.5}, {0.8, 0.6}};
  slot.real.v = {{0.9, 0.4}, {0.7, 1.0}};
  slot.real.q = {{1.0, 2.0}, {1.6, 1.2}};
  return slot;
}

NetworkConfig net2() {
  return NetworkConfig{.num_scns = 2, .capacity_c = 2, .qos_alpha = 1.0,
                       .resource_beta = 2.5};
}

TEST(EvaluateSlot, RewardAndViolationsExact) {
  const auto slot = make_slot();
  Assignment a;
  a.selected = {{0, 1}, {1}};
  const auto outcome = evaluate_slot(slot, a, net2());
  // SCN0: g = 1*0.9/1 + 0.5*0.4/2 = 0.9 + 0.1 = 1.0; v-sum = 1.3; q-sum = 3.0
  // SCN1: g = 0.6*1.0/1.2 = 0.5; v-sum = 1.0; q-sum = 1.2
  EXPECT_NEAR(outcome.reward, 1.5, 1e-12);
  EXPECT_NEAR(outcome.qos_violation, 0.0, 1e-12);  // both meet alpha=1
  EXPECT_NEAR(outcome.resource_violation, 0.5, 1e-12);  // SCN0: 3.0-2.5
  EXPECT_EQ(outcome.tasks_selected, 3);
  EXPECT_EQ(outcome.scns_meeting_qos, 2);
  EXPECT_EQ(outcome.scns_within_beta, 1);
}

TEST(EvaluateSlot, EmptyAssignmentViolatesQosOnly) {
  const auto slot = make_slot();
  Assignment a;
  a.selected = {{}, {}};
  const auto outcome = evaluate_slot(slot, a, net2());
  EXPECT_DOUBLE_EQ(outcome.reward, 0.0);
  EXPECT_DOUBLE_EQ(outcome.qos_violation, 2.0);  // alpha per SCN unmet
  EXPECT_DOUBLE_EQ(outcome.resource_violation, 0.0);
}

TEST(EvaluateSlot, ShapeErrors) {
  const auto slot = make_slot();
  Assignment wrong_scns;
  wrong_scns.selected = {{}};
  EXPECT_THROW(evaluate_slot(slot, wrong_scns, net2()), std::invalid_argument);
  Assignment bad_index;
  bad_index.selected = {{5}, {}};
  EXPECT_THROW(evaluate_slot(slot, bad_index, net2()), std::out_of_range);
}

TEST(ValidateAssignment, AcceptsValid) {
  const auto slot = make_slot();
  Assignment a;
  a.selected = {{0}, {0, 1}};
  EXPECT_EQ(validate_assignment(slot.info, a, net2()), std::nullopt);
}

TEST(ValidateAssignment, DetectsCapacityViolation) {
  const auto slot = make_slot();
  NetworkConfig net = net2();
  net.capacity_c = 1;
  Assignment a;
  a.selected = {{0, 1}, {}};
  const auto error = validate_assignment(slot.info, a, net);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("capacity"), std::string::npos);
}

TEST(ValidateAssignment, DetectsDuplicateOffloading) {
  const auto slot = make_slot();
  // Task 1 is local index 1 at SCN0 and local index 0 at SCN1.
  Assignment a;
  a.selected = {{1}, {0}};
  const auto error = validate_assignment(slot.info, a, net2());
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("(1b)"), std::string::npos);
}

TEST(ValidateAssignment, DetectsBadLocalIndexAndDuplicates) {
  const auto slot = make_slot();
  Assignment bad;
  bad.selected = {{7}, {}};
  EXPECT_TRUE(validate_assignment(slot.info, bad, net2()).has_value());
  Assignment dup;
  dup.selected = {{0, 0}, {}};
  EXPECT_TRUE(validate_assignment(slot.info, dup, net2()).has_value());
  Assignment wrong_shape;
  wrong_shape.selected = {{}};
  EXPECT_TRUE(validate_assignment(slot.info, wrong_shape, net2()).has_value());
}

TEST(MakeFeedback, ContainsExactlySelectedTasks) {
  const auto slot = make_slot();
  Assignment a;
  a.selected = {{1}, {0, 1}};
  const auto feedback = make_feedback(slot, a);
  ASSERT_EQ(feedback.per_scn.size(), 2u);
  ASSERT_EQ(feedback.per_scn[0].size(), 1u);
  ASSERT_EQ(feedback.per_scn[1].size(), 2u);
  EXPECT_EQ(feedback.per_scn[0][0].local_index, 1);
  EXPECT_DOUBLE_EQ(feedback.per_scn[0][0].u, 0.5);
  EXPECT_DOUBLE_EQ(feedback.per_scn[0][0].v, 0.4);
  EXPECT_DOUBLE_EQ(feedback.per_scn[0][0].q, 2.0);
  EXPECT_NEAR(feedback.per_scn[0][0].compound(), 0.1, 1e-12);
}

TEST(TaskFeedback, CompoundHandlesZeroQ) {
  TaskFeedback f;
  f.u = 1.0;
  f.v = 1.0;
  f.q = 0.0;
  EXPECT_DOUBLE_EQ(f.compound(), 0.0);
}

}  // namespace
}  // namespace lfsc
