#include "sim/environment.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lfsc {
namespace {

TaskContext ctx_at(double a, double b, double c) {
  TaskContext ctx;
  ctx.normalized = {a, b, c};
  return ctx;
}

TEST(Environment, MeansWithinConfiguredRanges) {
  EnvironmentConfig config;
  config.num_scns = 5;
  config.likelihood_lo = 0.25;
  config.likelihood_hi = 0.75;
  Environment env(config);
  for (int m = 0; m < 5; ++m) {
    for (double x = 0.05; x < 1.0; x += 0.3) {
      const auto ctx = ctx_at(x, 1.0 - x, x);
      EXPECT_GE(env.mean_reward(m, ctx), 0.0);
      EXPECT_LE(env.mean_reward(m, ctx), 1.0);
      EXPECT_GE(env.mean_likelihood(m, ctx), 0.25);
      EXPECT_LE(env.mean_likelihood(m, ctx), 0.75);
      EXPECT_GE(env.mean_consumption(m, ctx), 1.0);
      EXPECT_LE(env.mean_consumption(m, ctx), 2.0);
    }
  }
}

TEST(Environment, DrawsStayInValidRanges) {
  EnvironmentConfig config;
  config.num_scns = 3;
  Environment env(config);
  RngStream stream(1);
  for (int i = 0; i < 10000; ++i) {
    const auto ctx = ctx_at(stream.uniform(), stream.uniform(), stream.uniform());
    const auto d = env.draw(i % 3, ctx, stream);
    EXPECT_GE(d.u, 0.0);
    EXPECT_LE(d.u, 1.0);
    EXPECT_GE(d.v, 0.0);
    EXPECT_LE(d.v, 1.0);
    EXPECT_GE(d.q, 1.0);
    EXPECT_LE(d.q, 2.0);
  }
}

TEST(Environment, DrawsAreStationaryAroundMeans) {
  EnvironmentConfig config;
  config.num_scns = 1;
  config.jitter = 0.1;
  Environment env(config);
  const auto ctx = ctx_at(0.4, 0.6, 0.2);
  RngStream stream(2);
  double sum_u = 0, sum_v = 0, sum_q = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const auto d = env.draw(0, ctx, stream);
    sum_u += d.u;
    sum_v += d.v;
    sum_q += d.q;
  }
  // Clipping skews the mean only when the latent mean is near a boundary;
  // tolerate that with a loose bound.
  EXPECT_NEAR(sum_u / kN, env.mean_reward(0, ctx), 0.06);
  EXPECT_NEAR(sum_v / kN, env.mean_likelihood(0, ctx), 0.06);
  EXPECT_NEAR(sum_q / kN, env.mean_consumption(0, ctx), 0.06);
}

TEST(Environment, SameSeedSameGroundTruth) {
  EnvironmentConfig config;
  config.num_scns = 4;
  Environment a(config), b(config);
  for (int m = 0; m < 4; ++m) {
    const auto ctx = ctx_at(0.1 * m, 0.9 - 0.1 * m, 0.5);
    EXPECT_DOUBLE_EQ(a.mean_reward(m, ctx), b.mean_reward(m, ctx));
    EXPECT_DOUBLE_EQ(a.mean_likelihood(m, ctx), b.mean_likelihood(m, ctx));
    EXPECT_DOUBLE_EQ(a.mean_consumption(m, ctx), b.mean_consumption(m, ctx));
  }
}

TEST(Environment, DifferentSeedsDifferentGroundTruth) {
  EnvironmentConfig a_cfg, b_cfg;
  a_cfg.num_scns = b_cfg.num_scns = 2;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  Environment a(a_cfg), b(b_cfg);
  const auto ctx = ctx_at(0.3, 0.3, 0.3);
  EXPECT_NE(a.mean_reward(0, ctx), b.mean_reward(0, ctx));
}

TEST(Environment, GroundTruthStableWhenAddingScns) {
  // Per-SCN streams: SCN 0's ground truth must not change when more SCNs
  // are configured (important for sweep comparability).
  EnvironmentConfig small, large;
  small.num_scns = 2;
  large.num_scns = 20;
  Environment a(small), b(large);
  const auto ctx = ctx_at(0.7, 0.2, 0.9);
  EXPECT_DOUBLE_EQ(a.mean_reward(0, ctx), b.mean_reward(0, ctx));
  EXPECT_DOUBLE_EQ(a.mean_reward(1, ctx), b.mean_reward(1, ctx));
}

TEST(Environment, LatentCellsDistinguishContexts) {
  EnvironmentConfig config;
  config.num_scns = 1;
  config.latent_grid = 6;
  Environment env(config);
  EXPECT_EQ(env.latent_cell_count(), 216u);
  EXPECT_NE(env.latent_cell(ctx_at(0.05, 0.05, 0.05)),
            env.latent_cell(ctx_at(0.95, 0.95, 0.95)));
  // Same latent cell -> identical means.
  const auto c1 = ctx_at(0.01, 0.01, 0.01);
  const auto c2 = ctx_at(0.15, 0.15, 0.15);  // both in cell 0 with grid 6
  EXPECT_EQ(env.latent_cell(c1), env.latent_cell(c2));
  EXPECT_DOUBLE_EQ(env.mean_reward(0, c1), env.mean_reward(0, c2));
}

TEST(Environment, BlockageZeroesLikelihoodAtGivenRate) {
  EnvironmentConfig config;
  config.num_scns = 1;
  config.blockage_prob = 0.25;
  config.likelihood_lo = 0.8;  // keep natural draws away from 0
  config.likelihood_hi = 1.0;
  config.jitter = 0.05;
  Environment env(config);
  const auto ctx = ctx_at(0.5, 0.5, 0.5);
  RngStream stream(3);
  int blocked = 0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    if (env.draw(0, ctx, stream).v == 0.0) ++blocked;
  }
  EXPECT_NEAR(static_cast<double>(blocked) / kN, 0.25, 0.01);
  // Mean likelihood reports the blockage haircut.
  EXPECT_LE(env.mean_likelihood(0, ctx), 0.75);
}

TEST(Environment, MeanCompoundIsConsistent) {
  EnvironmentConfig config;
  config.num_scns = 2;
  Environment env(config);
  const auto ctx = ctx_at(0.2, 0.8, 0.4);
  const double expected = env.mean_reward(1, ctx) *
                          env.mean_likelihood(1, ctx) /
                          env.mean_consumption(1, ctx);
  EXPECT_DOUBLE_EQ(env.mean_compound(1, ctx), expected);
}

TEST(Environment, ValidatesConfig) {
  EnvironmentConfig bad;
  bad.num_scns = 0;
  EXPECT_THROW(Environment{bad}, std::invalid_argument);
  EnvironmentConfig inverted;
  inverted.likelihood_lo = 0.9;
  inverted.likelihood_hi = 0.1;
  EXPECT_THROW(Environment{inverted}, std::invalid_argument);
  EnvironmentConfig grid;
  grid.latent_grid = 0;
  EXPECT_THROW(Environment{grid}, std::invalid_argument);
}

}  // namespace
}  // namespace lfsc
