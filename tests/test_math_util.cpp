#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace lfsc {
namespace {

TEST(PositivePart, Basics) {
  EXPECT_DOUBLE_EQ(positive_part(3.5), 3.5);
  EXPECT_DOUBLE_EQ(positive_part(0.0), 0.0);
  EXPECT_DOUBLE_EQ(positive_part(-2.0), 0.0);
}

TEST(ApproxEqual, AbsoluteAndRelative) {
  EXPECT_TRUE(approx_equal(1.0, 1.0));
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(approx_equal(1e12, 1e12 + 1.0, 1e-9));  // relative
  EXPECT_FALSE(approx_equal(1.0, 1.1));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
}

TEST(Linspace, EndpointsAndSpacing) {
  const auto xs = linspace(0.0, 1.0, 5);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1.0);
  EXPECT_DOUBLE_EQ(xs[2], 0.5);
}

TEST(Linspace, SinglePointAndEmpty) {
  EXPECT_TRUE(linspace(0, 1, 0).empty());
  const auto one = linspace(3.0, 9.0, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 3.0);
}

TEST(RunningStats, MeanVarMinMax) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RngStream rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(KahanSum, RecoversSmallIncrementsOnLargeBase) {
  KahanSum sum;
  sum.add(1e16);
  for (int i = 0; i < 10000; ++i) sum.add(1.0);
  EXPECT_DOUBLE_EQ(sum.value(), 1e16 + 10000.0);
}

TEST(KahanSum, MatchesExactForSmallSeries) {
  KahanSum sum;
  for (int i = 1; i <= 100; ++i) sum.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(sum.value(), 5050.0);
}

TEST(MeanStddevOf, SpanHelpers) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean_of(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(stddev_of(std::vector<double>{7.0}), 0.0);
}

}  // namespace
}  // namespace lfsc
