#include "bandit/partition.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

#include "common/rng.h"

namespace lfsc {
namespace {

TEST(Partition, CellCountIsPow) {
  EXPECT_EQ(HypercubePartition(3, 3).cell_count(), 27u);
  EXPECT_EQ(HypercubePartition(2, 5).cell_count(), 25u);
  EXPECT_EQ(HypercubePartition(1, 7).cell_count(), 7u);
  EXPECT_EQ(HypercubePartition(4, 1).cell_count(), 1u);
}

TEST(Partition, RejectsDegenerateArguments) {
  EXPECT_THROW(HypercubePartition(0, 3), std::invalid_argument);
  EXPECT_THROW(HypercubePartition(3, 0), std::invalid_argument);
  EXPECT_THROW(HypercubePartition(64, 1000), std::invalid_argument);  // overflow
}

TEST(Partition, IndexInRangeForAllContexts) {
  HypercubePartition part(3, 3);
  RngStream rng(1);
  for (int i = 0; i < 10000; ++i) {
    const std::array<double, 3> ctx{rng.uniform(), rng.uniform(), rng.uniform()};
    EXPECT_LT(part.index(ctx), part.cell_count());
  }
}

TEST(Partition, BoundaryOneBelongsToLastCell) {
  HypercubePartition part(1, 4);
  EXPECT_EQ(part.index(std::array{0.0}), 0u);
  EXPECT_EQ(part.index(std::array{0.9999}), 3u);
  EXPECT_EQ(part.index(std::array{1.0}), 3u);
}

TEST(Partition, ClampsOutOfRangeCoordinates) {
  HypercubePartition part(2, 3);
  EXPECT_EQ(part.index(std::array{-5.0, -1.0}), part.index(std::array{0.0, 0.0}));
  EXPECT_EQ(part.index(std::array{5.0, 2.0}), part.index(std::array{1.0, 1.0}));
}

TEST(Partition, RowMajorLayout) {
  HypercubePartition part(2, 3);
  // (part_0, part_1) -> index part_0*3 + part_1.
  EXPECT_EQ(part.index(std::array{0.1, 0.1}), 0u);
  EXPECT_EQ(part.index(std::array{0.1, 0.5}), 1u);
  EXPECT_EQ(part.index(std::array{0.5, 0.1}), 3u);
  EXPECT_EQ(part.index(std::array{0.9, 0.9}), 8u);
}

TEST(Partition, CellCenterRoundTripsThroughIndex) {
  HypercubePartition part(3, 4);
  for (std::size_t cell = 0; cell < part.cell_count(); ++cell) {
    const auto center = part.cell_center(cell);
    EXPECT_EQ(part.index(center), cell);
    for (const double c : center) {
      EXPECT_GT(c, 0.0);
      EXPECT_LT(c, 1.0);
    }
  }
}

TEST(Partition, CellCenterRejectsBadIndex) {
  HypercubePartition part(2, 2);
  EXPECT_THROW(part.cell_center(4), std::out_of_range);
}

TEST(Partition, AllCellsReachable) {
  HypercubePartition part(2, 4);
  std::set<std::size_t> seen;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      seen.insert(part.index(std::array{(a + 0.5) / 4.0, (b + 0.5) / 4.0}));
    }
  }
  EXPECT_EQ(seen.size(), part.cell_count());
}

TEST(Partition, ShortContextPadsWithCellZero) {
  HypercubePartition part(3, 3);
  // Two coordinates provided; the missing third dimension defaults to
  // part 0 (the index is well-defined, never UB).
  const std::array<double, 2> two{0.5, 0.5};
  EXPECT_EQ(part.index(two), part.index(std::array{0.5, 0.5, 0.0}));
}

TEST(Partition, CellSide) {
  EXPECT_DOUBLE_EQ(HypercubePartition(3, 4).cell_side(), 0.25);
}

class PartitionGranularity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionGranularity, NearbyContextsShareCellsFarOnesDoNot) {
  const std::size_t h = GetParam();
  HypercubePartition part(3, h);
  const double side = part.cell_side();
  // Contexts within the same cell interior map identically.
  const std::array<double, 3> base{side * 0.25, side * 0.25, side * 0.25};
  const std::array<double, 3> near{side * 0.75, side * 0.75, side * 0.75};
  EXPECT_EQ(part.index(base), part.index(near));
  if (h > 1) {
    const std::array<double, 3> far{1.0 - side * 0.5, side * 0.5, side * 0.5};
    EXPECT_NE(part.index(base), part.index(far));
  }
}

INSTANTIATE_TEST_SUITE_P(Granularities, PartitionGranularity,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

}  // namespace
}  // namespace lfsc
