// Tests for the scenario compiler (DESIGN.md §13): spec parsing and
// one-line rejection of malformed files, the checked-in scenario
// families, modulation internals, and the determinism contract —
// bit-identical streams across instances, forks, checkpoint/resume
// mid-drift, and any shards x parallel_scns combination.
#include "scenario/scenario_source.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/random_policy.h"
#include "harness/paper_setup.h"
#include "harness/runner.h"
#include "lfsc/lfsc_policy.h"
#include "scenario/scenario_spec.h"
#include "sim/admission.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace lfsc {
namespace {

/// Small world mirroring small_setup(): 6 SCNs, c=5, alpha=3, beta=7,
/// |D_mt| in [8, 20] — fast enough for slot-by-slot comparisons.
ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.name = "test";
  spec.horizon = 200;
  spec.seed = 7;
  spec.scns = 6;
  spec.capacity = 5;
  spec.alpha = 3.0;
  spec.beta = 7.0;
  spec.tasks_min = 8;
  spec.tasks_max = 20;
  return spec;
}

void expect_same_slot(const Slot& a, const Slot& b, int t) {
  ASSERT_EQ(a.info.t, b.info.t) << "slot " << t;
  ASSERT_EQ(a.info.tasks.size(), b.info.tasks.size()) << "slot " << t;
  for (std::size_t i = 0; i < a.info.tasks.size(); ++i) {
    EXPECT_EQ(a.info.tasks[i].id, b.info.tasks[i].id) << "slot " << t;
  }
  ASSERT_EQ(a.info.coverage, b.info.coverage) << "slot " << t;
  EXPECT_EQ(a.real.u, b.real.u) << "slot " << t;
  EXPECT_EQ(a.real.v, b.real.v) << "slot " << t;
  EXPECT_EQ(a.real.q, b.real.q) << "slot " << t;
}

// --- parser ---

TEST(ScenarioSpecParse, RoundTripsEveryField) {
  const auto spec = parse_scenario_text(
      "# comment\n"
      "name = full\n"
      "horizon = 500\n"
      "seed = 9\n"
      "scns = 12\n"
      "capacity = 8\n"
      "alpha = 4.5\n"
      "beta = 11\n"
      "tasks.min = 10\n"
      "tasks.max = 30\n"
      "coverage.degree = 1.5\n"
      "likelihood.lo = 0.2\n"
      "likelihood.hi = 0.8\n"
      "jitter = 0.05\n"
      "blockage.base = 0.1\n"
      "arrival.diurnal.amplitude = 0.5\n"
      "arrival.diurnal.period = 100\n"
      "arrival.diurnal.phase = 0.25\n"
      "arrival.flash.prob = 0.01\n"
      "arrival.flash.factor = 15\n"
      "arrival.flash.min = 3\n"
      "arrival.flash.max = 9\n"
      "hetero.arrival.spread = 0.4\n"
      "hetero.capacity.spread = 0.3\n"
      "blockage.burst.prob = 0.02\n"
      "blockage.burst.value = 0.6\n"
      "blockage.burst.min = 5\n"
      "blockage.burst.max = 20\n"
      "blockage.groups = 3\n"
      "drift.u.kind = linear\n"
      "drift.u.magnitude = 0.4\n"
      "drift.u.period = 250\n"
      "drift.v.kind = switch\n"
      "drift.v.magnitude = 0.3\n"
      "drift.v.period = 50\n"
      "drift.q.kind = walk\n"
      "drift.q.magnitude = 0.02\n");
  EXPECT_EQ(spec.name, "full");
  EXPECT_EQ(spec.horizon, 500);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.scns, 12);
  EXPECT_EQ(spec.capacity, 8);
  EXPECT_DOUBLE_EQ(spec.alpha, 4.5);
  EXPECT_DOUBLE_EQ(spec.beta, 11.0);
  EXPECT_EQ(spec.tasks_min, 10);
  EXPECT_EQ(spec.tasks_max, 30);
  EXPECT_DOUBLE_EQ(spec.coverage_degree, 1.5);
  EXPECT_DOUBLE_EQ(spec.likelihood_lo, 0.2);
  EXPECT_DOUBLE_EQ(spec.likelihood_hi, 0.8);
  EXPECT_DOUBLE_EQ(spec.jitter, 0.05);
  EXPECT_DOUBLE_EQ(spec.blockage_base, 0.1);
  EXPECT_DOUBLE_EQ(spec.diurnal_amplitude, 0.5);
  EXPECT_EQ(spec.diurnal_period, 100);
  EXPECT_DOUBLE_EQ(spec.diurnal_phase, 0.25);
  EXPECT_DOUBLE_EQ(spec.flash_prob, 0.01);
  EXPECT_DOUBLE_EQ(spec.flash_factor, 15.0);
  EXPECT_EQ(spec.flash_min, 3);
  EXPECT_EQ(spec.flash_max, 9);
  EXPECT_DOUBLE_EQ(spec.hetero_arrival_spread, 0.4);
  EXPECT_DOUBLE_EQ(spec.hetero_capacity_spread, 0.3);
  EXPECT_DOUBLE_EQ(spec.burst_prob, 0.02);
  EXPECT_DOUBLE_EQ(spec.burst_value, 0.6);
  EXPECT_EQ(spec.burst_min, 5);
  EXPECT_EQ(spec.burst_max, 20);
  EXPECT_EQ(spec.blockage_groups, 3);
  EXPECT_EQ(spec.drift_u.kind, ScenarioSpec::DriftKind::kLinear);
  EXPECT_DOUBLE_EQ(spec.drift_u.magnitude, 0.4);
  EXPECT_EQ(spec.drift_u.period, 250);
  EXPECT_EQ(spec.drift_v.kind, ScenarioSpec::DriftKind::kSwitch);
  EXPECT_EQ(spec.drift_v.period, 50);
  EXPECT_EQ(spec.drift_q.kind, ScenarioSpec::DriftKind::kWalk);
  EXPECT_DOUBLE_EQ(spec.drift_q.magnitude, 0.02);
}

/// Every rejection is a single line naming the offending line number —
/// the CLI prints it verbatim and exits 2.
void expect_one_line_error(const std::string& text,
                           const std::string& must_contain) {
  try {
    (void)parse_scenario_text(text);
    FAIL() << "expected rejection containing '" << must_contain << "'";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.find('\n'), std::string::npos) << msg;
    // Syntactic errors carry "scenario: line N: ..."; whole-spec
    // validation errors carry "scenario: ..." — both one line, prefixed.
    EXPECT_NE(msg.find("scenario: "), std::string::npos) << msg;
    EXPECT_NE(msg.find(must_contain), std::string::npos) << msg;
  }
}

TEST(ScenarioSpecParse, RejectsMalformedSpecsWithOneLineErrors) {
  expect_one_line_error("nosuchkey = 1\n", "unknown key 'nosuchkey'");
  expect_one_line_error("horizon = ten\n", "not an integer");
  expect_one_line_error("alpha = wide\n", "not a number");
  expect_one_line_error("drift.u.kind = cubic\n", "cubic");
  expect_one_line_error("horizon 100\n", "expected 'key = value'");
  expect_one_line_error("horizon = 0\n", "horizon");
  expect_one_line_error("arrival.diurnal.amplitude = 1.2\n", "amplitude");
  // amplitude > 0 needs a period
  expect_one_line_error("arrival.diurnal.amplitude = 0.5\n", "period");
  expect_one_line_error("arrival.flash.factor = 0.5\n", "factor");
  expect_one_line_error(
      "arrival.flash.min = 9\narrival.flash.max = 3\n"
      "arrival.flash.prob = 0.1\narrival.flash.factor = 2\n",
      "flash");
  expect_one_line_error("blockage.groups = 99\n", "groups");
  expect_one_line_error("drift.u.kind = switch\ndrift.u.magnitude = 0.5\n",
                        "period");
  expect_one_line_error("tasks.min = 50\ntasks.max = 20\n", "tasks");
}

TEST(ScenarioSpecParse, FileErrorsNameThePath) {
  ScopedTempDir tmp;
  EXPECT_THROW((void)parse_scenario_file(tmp.path("missing.scn")),
               std::invalid_argument);
}

TEST(ScenarioSpec, FingerprintSeparatesSpecs) {
  const auto a = small_spec();
  auto b = small_spec();
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.diurnal_amplitude = 0.3;
  b.diurnal_period = 50;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// --- checked-in families ---

TEST(ScenarioFamilies, EveryCheckedInSpecParsesAndValidates) {
  namespace fs = std::filesystem;
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(LFSC_SCENARIO_DIR)) {
    if (entry.path().extension() != ".scn") continue;
    const auto spec = parse_scenario_file(entry.path().string());
    EXPECT_NE(spec.name, "unnamed") << entry.path();
    names.push_back(spec.name);
    // Each family must actually run.
    ScenarioSource source(spec);
    const auto slot = source.generate_slot(1);
    EXPECT_EQ(slot.info.coverage.size(),
              static_cast<std::size_t>(spec.scns));
  }
  std::sort(names.begin(), names.end());
  EXPECT_GE(names.size(), 6u) << "ISSUE.md requires >= 6 named families";
  EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) == names.end())
      << "family names must be unique";
}

// --- stream determinism ---

TEST(ScenarioSource, SameSpecSameStream) {
  auto spec = small_spec();
  spec.diurnal_amplitude = 0.4;
  spec.diurnal_period = 40;
  spec.drift_u.kind = ScenarioSpec::DriftKind::kWalk;
  spec.drift_u.magnitude = 0.02;
  ScenarioSource a(spec);
  ScenarioSource b(spec);
  Slot sb;
  for (int t = 1; t <= 60; ++t) {
    const Slot sa = a.generate_slot(t);
    b.generate_slot(t, sb);  // mixed overloads must agree too
    expect_same_slot(sa, sb, t);
  }
}

TEST(ScenarioSource, ForkContinuesIdentically) {
  auto spec = small_spec();
  spec.drift_q.kind = ScenarioSpec::DriftKind::kWalk;
  spec.drift_q.magnitude = 0.01;
  ScenarioSource a(spec);
  for (int t = 1; t <= 20; ++t) (void)a.generate_slot(t);
  ScenarioSource b = a.fork();
  for (int t = 21; t <= 40; ++t) {
    const Slot sa = a.generate_slot(t);
    const Slot sb = b.generate_slot(t);
    expect_same_slot(sa, sb, t);
  }
}

TEST(ScenarioSource, SaveLoadRestoresWalkExactly) {
  auto spec = small_spec();
  spec.drift_u.kind = ScenarioSpec::DriftKind::kWalk;
  spec.drift_u.magnitude = 0.05;
  ScenarioSource a(spec);
  for (int t = 1; t <= 30; ++t) (void)a.generate_slot(t);
  std::string blob;
  a.save_state(blob);
  ASSERT_FALSE(blob.empty());

  // A fresh source restored from the blob carries a's exact walk offset
  // without replaying a single slot.
  ScenarioSource b(spec);
  b.load_state(blob);
  EXPECT_EQ(b.drift_offset(0, 30), a.drift_offset(0, 30));
  EXPECT_NE(b.drift_offset(0, 30), 0.0) << "walk never moved in 30 slots";

  // The runner's resume path then fast-forwards the completed slots to
  // rebuild generator state (task ids); the restored walk makes its
  // advance_walk calls no-ops. The tail must match exactly.
  for (int t = 1; t <= 30; ++t) (void)b.generate_slot(t);
  for (int t = 31; t <= 50; ++t) {
    const Slot sa = a.generate_slot(t);
    const Slot sb = b.generate_slot(t);
    expect_same_slot(sa, sb, t);
  }
}

TEST(ScenarioSource, LoadStateRejectsForeignBlobs) {
  const auto spec = small_spec();
  ScenarioSource source(spec);
  EXPECT_THROW(source.load_state(""), std::runtime_error);

  auto other = small_spec();
  other.seed = 1234;
  ScenarioSource different_seed(other);
  std::string blob;
  ScenarioSource(spec).save_state(blob);
  EXPECT_THROW(different_seed.load_state(blob), std::runtime_error);
}

TEST(SlotSourceDefault, RejectsScenarioBlobOnResume) {
  // Resuming a --scenario checkpoint without --scenario must fail loudly
  // instead of silently regenerating a different world.
  auto sim = small_setup().make_simulator();
  EXPECT_NO_THROW(sim.load_state(""));
  EXPECT_THROW(sim.load_state("scenario-bytes"), std::runtime_error);
}

// --- modulation internals ---

TEST(ScenarioModulation, DiurnalWaveHasUnitMeanAndAmplitude) {
  auto spec = small_spec();
  spec.diurnal_amplitude = 0.5;
  spec.diurnal_period = 80;
  ScenarioSource source(spec);
  double lo = 2.0, hi = 0.0, sum = 0.0;
  for (int t = 1; t <= 80; ++t) {
    const double f = source.diurnal_factor(t);
    lo = std::min(lo, f);
    hi = std::max(hi, f);
    sum += f;
  }
  EXPECT_NEAR(lo, 0.5, 1e-3);
  EXPECT_NEAR(hi, 1.5, 1e-3);
  EXPECT_NEAR(sum / 80.0, 1.0, 1e-6);  // wave is load-neutral on average
}

TEST(ScenarioModulation, FlashCrowdsSpikeByTheConfiguredFactor) {
  auto spec = small_spec();
  spec.flash_prob = 0.02;
  spec.flash_factor = 12.0;
  spec.flash_min = 4;
  spec.flash_max = 10;
  ScenarioSource source(spec);
  int live = 0;
  for (int t = 1; t <= 2000; ++t) {
    const double f = source.flash_factor(t);
    ASSERT_TRUE(f == 1.0 || f == 12.0) << "slot " << t << " factor " << f;
    if (f > 1.0) ++live;
  }
  EXPECT_GT(live, 0) << "no spike in 2000 slots at p=0.02";
  EXPECT_LT(live, 2000);
}

TEST(ScenarioModulation, HeterogeneityStaysInRange) {
  auto spec = small_spec();
  spec.scns = 30;
  spec.hetero_arrival_spread = 0.6;
  spec.hetero_capacity_spread = 0.4;
  ScenarioSource source(spec);
  for (int m = 0; m < spec.scns; ++m) {
    EXPECT_GE(source.arrival_weight(m), 0.4);
    EXPECT_LE(source.arrival_weight(m), 1.6);
    EXPECT_GE(source.capacity_scale(m), 0.6);
    EXPECT_LE(source.capacity_scale(m), 1.0);
  }
  // The spread must actually spread: not all SCNs identical.
  EXPECT_NE(source.arrival_weight(0), source.arrival_weight(1));
}

TEST(ScenarioModulation, LinearDriftRampsToMagnitude) {
  auto spec = small_spec();
  spec.drift_u.kind = ScenarioSpec::DriftKind::kLinear;
  spec.drift_u.magnitude = 0.4;
  spec.drift_u.period = 100;
  const ScenarioSource source(spec);
  EXPECT_NEAR(source.drift_offset(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(source.drift_offset(0, 50), 0.2, 1e-9);
  EXPECT_NEAR(source.drift_offset(0, 100), 0.4, 1e-12);
  EXPECT_NEAR(source.drift_offset(0, 500), 0.4, 1e-12);  // holds after ramp
  EXPECT_EQ(source.drift_offset(1, 50), 0.0);  // V has no drift configured
}

TEST(ScenarioModulation, SwitchDriftChangesAcrossRegimes) {
  auto spec = small_spec();
  spec.drift_u.kind = ScenarioSpec::DriftKind::kSwitch;
  spec.drift_u.magnitude = 0.6;
  spec.drift_u.period = 50;
  const ScenarioSource source(spec);
  // Regime r spans slots [r*P, r*P + P - 1]: constant within, and at
  // least one boundary moves the level.
  bool moved = false;
  for (int regime = 0; regime < 8; ++regime) {
    const int base = regime * 50;
    const double level = source.drift_offset(0, base);
    EXPECT_GE(level, -0.6);
    EXPECT_LE(level, 0.6);
    EXPECT_EQ(source.drift_offset(0, base + 49), level);
    if (regime > 0 && level != source.drift_offset(0, base - 1)) moved = true;
  }
  EXPECT_TRUE(moved) << "8 regimes with identical offsets at magnitude 0.6";
}

TEST(ScenarioModulation, DriftActuallyMovesRealizations) {
  auto spec = small_spec();
  spec.horizon = 400;
  spec.drift_u.kind = ScenarioSpec::DriftKind::kLinear;
  spec.drift_u.magnitude = 0.5;
  spec.drift_u.period = 400;
  ScenarioSource source(spec);
  const auto mean_u = [&](int from, int to) {
    double sum = 0.0;
    std::size_t n = 0;
    for (int t = from; t <= to; ++t) {
      const Slot slot = source.generate_slot(t);
      for (const auto& row : slot.real.u) {
        sum = std::accumulate(row.begin(), row.end(), sum);
        n += row.size();
      }
    }
    return sum / static_cast<double>(n);
  };
  const double early = mean_u(1, 40);
  const double late = mean_u(360, 400);
  EXPECT_GT(late, early + 0.15)
      << "U drifted by 0.5 but the realized mean barely moved";
}

TEST(ScenarioModulation, BlockageBurstsZeroCompletionsByGroup) {
  auto spec = small_spec();
  spec.scns = 12;
  spec.burst_prob = 0.05;
  spec.burst_value = 1.0;  // every completion in a bursting group blocked
  spec.burst_min = 5;
  spec.burst_max = 10;
  spec.blockage_groups = 3;
  ScenarioSource source(spec);
  bool saw_blocked_slot = false;
  for (int t = 1; t <= 300 && !saw_blocked_slot; ++t) {
    const Slot slot = source.generate_slot(t);
    for (int m = 0; m < spec.scns; ++m) {
      if (source.blockage_prob(t, m) != 1.0) continue;
      const auto& v = slot.real.v[static_cast<std::size_t>(m)];
      if (v.empty()) continue;
      saw_blocked_slot = true;
      for (const double x : v) EXPECT_EQ(x, 0.0) << "slot " << t;
    }
  }
  EXPECT_TRUE(saw_blocked_slot) << "no burst hit a non-empty SCN in 300 slots";
}

// --- harness integration ---

TEST(ScenarioHarness, FlashCrowdTriggersAdmissionShedding) {
  auto spec = small_spec();
  spec.flash_prob = 0.02;
  spec.flash_factor = 20.0;
  spec.flash_min = 5;
  spec.flash_max = 10;
  ScenarioSource source(spec);

  AdmissionConfig ac;
  ac.capacity_factor = 1.0;
  ac.max_queue = 4 * spec.scns * spec.capacity;
  AdmissionControl admission(ac, source.network());

  NetworkConfig net = source.network();
  RandomPolicy random(net);
  Policy* roster[] = {&random};
  RunConfig config;
  config.horizon = 400;
  config.admission = &admission;
  (void)run_experiment(source, roster, config);

  EXPECT_GT(admission.total_shed(), 0u)
      << "a 20x flash crowd should overflow a 4-slot queue";
  EXPECT_EQ(admission.offered(), admission.admitted() + admission.total_shed());
}

/// StopAfterSlot stand-in for SIGINT (same shape as test_checkpoint.cpp).
class StopAfterSlot : public Policy {
 public:
  StopAfterSlot(Policy& inner, int stop_after, std::atomic<bool>& stop)
      : inner_(inner), stop_after_(stop_after), stop_(stop) {}
  std::string_view name() const noexcept override { return inner_.name(); }
  Assignment select(const SlotInfo& info) override {
    return inner_.select(info);
  }
  void observe(const SlotInfo& info, const Assignment& assignment,
               const SlotFeedback& feedback) override {
    inner_.observe(info, assignment, feedback);
    if (info.t == stop_after_) stop_.store(true);
  }
  bool needs_realizations() const noexcept override {
    return inner_.needs_realizations();
  }
  Assignment select_omniscient(const Slot& slot) override {
    return inner_.select_omniscient(slot);
  }
  void reset() override { inner_.reset(); }
  bool supports_checkpoint() const noexcept override {
    return inner_.supports_checkpoint();
  }
  void save_checkpoint(std::string& out) const override {
    inner_.save_checkpoint(out);
  }
  void load_checkpoint(std::string_view blob) override {
    inner_.load_checkpoint(blob);
  }

 private:
  Policy& inner_;
  int stop_after_;
  std::atomic<bool>& stop_;
};

void expect_same_series(const SeriesRecorder& a, const SeriesRecorder& b) {
  ASSERT_EQ(a.slots(), b.slots());
  for (std::size_t i = 0; i < a.slots(); ++i) {
    EXPECT_EQ(a.reward()[i], b.reward()[i]) << "slot " << i + 1;
    EXPECT_EQ(a.qos_violation()[i], b.qos_violation()[i]) << "slot " << i + 1;
    EXPECT_EQ(a.resource_violation()[i], b.resource_violation()[i])
        << "slot " << i + 1;
  }
}

/// The non-stationary spec used for resume/shard identity checks: the
/// random walk is the one piece of evolving scenario state, so it is
/// the regime where a checkpoint bug would show.
ScenarioSpec drifting_spec() {
  auto spec = small_spec();
  spec.diurnal_amplitude = 0.4;
  spec.diurnal_period = 60;
  spec.drift_u.kind = ScenarioSpec::DriftKind::kWalk;
  spec.drift_u.magnitude = 0.02;
  spec.drift_v.kind = ScenarioSpec::DriftKind::kSwitch;
  spec.drift_v.magnitude = 0.3;
  spec.drift_v.period = 40;
  return spec;
}

LfscConfig scenario_lfsc_config(const ScenarioSpec& spec) {
  LfscConfig cfg;
  cfg.horizon = static_cast<std::size_t>(spec.horizon);
  cfg.seed = spec.seed ^ 0x5eed;
  return cfg;
}

TEST(ScenarioHarness, ResumeMidDriftIsBitIdentical) {
  ScopedTempDir tmp;
  const auto spec = drifting_spec();
  const int horizon = spec.horizon;
  const NetworkConfig net = ScenarioSource(spec).network();

  // Reference: uninterrupted run.
  ScenarioSource ref_source(spec);
  LfscPolicy ref_lfsc(net, scenario_lfsc_config(spec));
  RandomPolicy ref_random(net);
  Policy* ref_roster[] = {&ref_lfsc, &ref_random};
  RunConfig ref_config;
  ref_config.horizon = horizon;
  const auto ref = run_experiment(ref_source, ref_roster, ref_config);
  ASSERT_EQ(ref.completed_slots, horizon);

  // Interrupted at T/2 with a checkpoint mid-walk.
  const std::string ckpt = tmp.path("scenario.ckpt");
  {
    ScenarioSource source(spec);
    LfscPolicy lfsc(net, scenario_lfsc_config(spec));
    RandomPolicy random(net);
    std::atomic<bool> stop{false};
    StopAfterSlot stopper(random, horizon / 2, stop);
    Policy* roster[] = {&lfsc, &stopper};
    RunConfig config;
    config.horizon = horizon;
    config.checkpoint_path = ckpt;
    config.stop = &stop;
    const auto first = run_experiment(source, roster, config);
    ASSERT_TRUE(first.interrupted);
    ASSERT_EQ(first.completed_slots, horizon / 2);
  }

  // Resume in a "new process": the walk state comes back from the blob,
  // the fast-forward replays slots 1..T/2, and the tail must match the
  // uninterrupted run exactly.
  ScenarioSource source(spec);
  LfscPolicy lfsc(net, scenario_lfsc_config(spec));
  RandomPolicy random(net);
  Policy* roster[] = {&lfsc, &random};
  RunConfig config;
  config.horizon = horizon;
  config.checkpoint_path = ckpt;
  config.resume = true;
  const auto resumed = run_experiment(source, roster, config);
  EXPECT_FALSE(resumed.interrupted);
  ASSERT_EQ(resumed.completed_slots, horizon);
  ASSERT_EQ(resumed.series.size(), ref.series.size());
  for (std::size_t k = 0; k < ref.series.size(); ++k) {
    expect_same_series(resumed.series[k], ref.series[k]);
  }
}

TEST(ScenarioHarness, ShardsAndParallelScnsAreBitIdentical) {
  const auto spec = drifting_spec();
  const NetworkConfig net = ScenarioSource(spec).network();

  std::vector<SeriesRecorder> reference;
  struct Combo {
    bool parallel;
    int shards;
  };
  const Combo combos[] = {{false, 0}, {true, 0}, {true, 1}, {true, 3}};
  for (const auto& combo : combos) {
    ScenarioSource source(spec);
    auto cfg = scenario_lfsc_config(spec);
    cfg.parallel_scns = combo.parallel;
    cfg.shards = combo.shards;
    LfscPolicy lfsc(net, cfg);
    Policy* roster[] = {&lfsc};
    RunConfig config;
    config.horizon = spec.horizon;
    auto result = run_experiment(source, roster, config);
    if (reference.empty()) {
      reference = std::move(result.series);
      continue;
    }
    SCOPED_TRACE(::testing::Message() << "parallel=" << combo.parallel
                                      << " shards=" << combo.shards);
    expect_same_series(result.series[0], reference[0]);
  }
}

}  // namespace
}  // namespace lfsc
