#include <gtest/gtest.h>

#include <set>

#include "baselines/fml.h"
#include "baselines/random_policy.h"
#include "baselines/vucb.h"
#include "harness/paper_setup.h"
#include "metrics/metrics.h"

namespace lfsc {
namespace {

PaperSetup setup() { return small_setup(); }

template <typename P>
void run_policy_slots(P& policy, Simulator& sim, int slots) {
  for (int t = 1; t <= slots; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto assignment = policy.select(slot.info);
    ASSERT_EQ(validate_assignment(slot.info, assignment, sim.network()),
              std::nullopt)
        << "policy " << policy.name() << " at t=" << t;
    policy.observe(slot.info, assignment, make_feedback(slot, assignment));
  }
}

TEST(Vucb, ValidAssignmentsOverManySlots) {
  auto s = setup();
  auto sim = s.make_simulator();
  VucbPolicy policy(s.net);
  run_policy_slots(policy, sim, 100);
}

TEST(Vucb, FillsCapacityWhenTasksAbound) {
  auto s = setup();
  auto sim = s.make_simulator();
  VucbPolicy policy(s.net);
  const auto slot = sim.generate_slot(1);
  const auto assignment = policy.select(slot.info);
  // Plenty of tasks (>= 8 per SCN) and positive indices everywhere:
  // constraint-unaware vUCB fills most capacity. With coverage overlap
  // some SCNs may lose contested tasks; total is the robust check.
  EXPECT_GE(assignment.total_selected(),
            static_cast<std::size_t>(s.net.num_scns * s.net.capacity_c) / 2);
}

TEST(Vucb, StatsAreUpdatedFromFeedbackOnly) {
  auto s = setup();
  auto sim = s.make_simulator();
  VucbPolicy policy(s.net);
  const auto slot = sim.generate_slot(1);
  const auto assignment = policy.select(slot.info);
  policy.observe(slot.info, assignment, make_feedback(slot, assignment));
  std::size_t total_pulls = 0;
  for (int m = 0; m < s.net.num_scns; ++m) {
    const auto& table = policy.stats(m);
    for (std::size_t cell = 0; cell < table.size(); ++cell) {
      total_pulls += table[cell].pulls;
    }
  }
  EXPECT_EQ(total_pulls, assignment.total_selected());
}

TEST(Vucb, ResetClearsStats) {
  auto s = setup();
  auto sim = s.make_simulator();
  VucbPolicy policy(s.net);
  run_policy_slots(policy, sim, 10);
  policy.reset();
  for (int m = 0; m < s.net.num_scns; ++m) {
    const auto& table = policy.stats(m);
    for (std::size_t cell = 0; cell < table.size(); ++cell) {
      EXPECT_EQ(table[cell].pulls, 0u);
    }
  }
}

TEST(Fml, ValidAssignmentsOverManySlots) {
  auto s = setup();
  auto sim = s.make_simulator();
  FmlPolicy policy(s.net);
  run_policy_slots(policy, sim, 100);
}

TEST(Fml, ExplorationThresholdGrowsSublinearly) {
  auto s = setup();
  FmlPolicy policy(s.net);
  const double t100 = policy.exploration_threshold(100);
  const double t10000 = policy.exploration_threshold(10000);
  EXPECT_GT(t10000, t100);
  // Sub-linear: threshold at 100x the time is far less than 100x.
  EXPECT_LT(t10000, 20.0 * t100);
}

TEST(Fml, EventuallyExploitsGoodArms) {
  auto s = setup();
  auto sim = s.make_simulator();
  FmlPolicy policy(s.net);
  // After warmup, assignments should be valid and capacity well used.
  run_policy_slots(policy, sim, 200);
  const auto slot = sim.generate_slot(201);
  const auto assignment = policy.select(slot.info);
  EXPECT_GT(assignment.total_selected(), 0u);
}

TEST(RandomPolicy, ValidAndFillsCapacity) {
  auto s = setup();
  auto sim = s.make_simulator();
  RandomPolicy policy(s.net);
  for (int t = 1; t <= 50; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto assignment = policy.select(slot.info);
    ASSERT_EQ(validate_assignment(slot.info, assignment, s.net), std::nullopt);
    EXPECT_GT(assignment.total_selected(), 0u);
  }
}

TEST(RandomPolicy, SelectionsVaryAcrossSlots) {
  auto s = setup();
  auto sim = s.make_simulator();
  RandomPolicy policy(s.net);
  const auto slot = sim.generate_slot(1);
  const auto a = policy.select(slot.info);
  const auto b = policy.select(slot.info);  // same slot, fresh draw
  EXPECT_NE(a.selected, b.selected);
}

TEST(RandomPolicy, SelectionsAreUniformishOverTasks) {
  // On a single SCN with n tasks and capacity c, each task should be
  // picked with probability ~c/n.
  NetworkConfig net{.num_scns = 1, .capacity_c = 2, .qos_alpha = 0.0,
                    .resource_beta = 100.0};
  RandomPolicy policy(net);
  SlotInfo info;
  info.t = 1;
  info.tasks.resize(8);
  info.coverage = {{0, 1, 2, 3, 4, 5, 6, 7}};
  std::vector<int> hits(8, 0);
  constexpr int kTrials = 20000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto a = policy.select(info);
    for (const int local : a.selected[0]) ++hits[static_cast<std::size_t>(local)];
  }
  for (const int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / kTrials, 0.25, 0.02);
  }
}

TEST(Baselines, NamesAreStable) {
  auto s = setup();
  EXPECT_EQ(VucbPolicy(s.net).name(), "vUCB");
  EXPECT_EQ(FmlPolicy(s.net).name(), "FML");
  EXPECT_EQ(RandomPolicy(s.net).name(), "Random");
}

}  // namespace
}  // namespace lfsc
