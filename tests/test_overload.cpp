// Overload-protection subsystem (DESIGN.md §11): the degradation-ladder
// state machine, the determinism contract (budget unset => bit-identical
// output), forced-rung feasibility, admission control, the invariant
// auditor, and checkpoint/resume through all of it.
#include "lfsc/overload.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/binio.h"
#include "baselines/random_policy.h"
#include "faults/fault_model.h"
#include "harness/checkpoint.h"
#include "harness/paper_setup.h"
#include "harness/runner.h"
#include "lfsc/audit.h"
#include "lfsc/lfsc_policy.h"
#include "reference/differential.h"
#include "sim/admission.h"
#include "test_util.h"

namespace lfsc {
namespace {

// --- ladder state machine (synthetic costs, no clock) ---

OverloadConfig ladder_config() {
  OverloadConfig cfg;
  cfg.slot_budget_us = 100;
  cfg.recover_after = 2;
  cfg.recover_fraction = 0.5;
  return cfg;
}

TEST(OverloadLadder, EscalatesOnOverBudgetAndRecoversOnComfort) {
  OverloadController c(ladder_config());
  EXPECT_EQ(c.rung(), DegradeRung::kFull);

  c.apply_measurement(150.0);
  EXPECT_EQ(c.rung(), DegradeRung::kExploreCapped);
  EXPECT_EQ(c.counters().over_budget_slots, 1u);
  EXPECT_EQ(c.counters().escalations, 1u);

  // Comfortable = cost <= recover_fraction * budget. A merely-ok slot
  // (under budget but above the fraction) resets the streak.
  c.apply_measurement(40.0);
  c.apply_measurement(80.0);  // ok but not comfortable: streak back to 0
  c.apply_measurement(40.0);
  EXPECT_EQ(c.rung(), DegradeRung::kExploreCapped);
  c.apply_measurement(40.0);  // second consecutive comfortable slot
  EXPECT_EQ(c.rung(), DegradeRung::kFull);
  EXPECT_EQ(c.counters().recoveries, 1u);
}

TEST(OverloadLadder, EscalatesThroughAllRungsAndStopsAtShed) {
  OverloadController c(ladder_config());
  for (int i = 0; i < 6; ++i) c.apply_measurement(1000.0);
  EXPECT_EQ(c.rung(), DegradeRung::kShed);
  // Escalations saturate at the bottom rung; over-budget slots keep
  // counting.
  EXPECT_EQ(c.counters().escalations, 3u);
  EXPECT_EQ(c.counters().over_budget_slots, 6u);
  EXPECT_EQ(c.counters().escalations - c.counters().recoveries,
            static_cast<std::uint64_t>(c.rung()));
}

TEST(OverloadLadder, FailedRecoveryProbeBacksOffExponentially) {
  OverloadController c(ladder_config());  // recover_after = backoff = 2
  c.apply_measurement(150.0);             // rung 1
  c.apply_measurement(10.0);
  c.apply_measurement(10.0);  // streak 2 >= backoff 2: recover to rung 0
  ASSERT_EQ(c.rung(), DegradeRung::kFull);

  // The probe fails immediately: escalate and double the backoff.
  c.apply_measurement(150.0);
  ASSERT_EQ(c.rung(), DegradeRung::kExploreCapped);
  c.apply_measurement(10.0);
  c.apply_measurement(10.0);
  EXPECT_EQ(c.rung(), DegradeRung::kExploreCapped)
      << "recovered after the old backoff; the failed probe did not double "
         "it";
  c.apply_measurement(10.0);
  c.apply_measurement(10.0);  // streak 4 >= doubled backoff 4
  EXPECT_EQ(c.rung(), DegradeRung::kFull);

  // This probe survives its window, so the backoff resets: the next
  // escalation + 2 comfortable slots recover again.
  c.apply_measurement(10.0);
  c.apply_measurement(10.0);
  c.apply_measurement(150.0);
  c.apply_measurement(10.0);
  c.apply_measurement(10.0);
  EXPECT_EQ(c.rung(), DegradeRung::kFull);
  EXPECT_EQ(c.counters().escalations, 3u);
  EXPECT_EQ(c.counters().recoveries, 3u);
}

TEST(OverloadLadder, SaveLoadRoundTripsExactState) {
  OverloadController a(ladder_config());
  a.apply_measurement(150.0);
  a.apply_measurement(150.0);
  a.apply_measurement(10.0);
  BlobWriter w;
  a.save(w);
  const std::string blob = w.take();

  OverloadController b(ladder_config());
  BlobReader r(blob);
  b.load(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(b.rung(), a.rung());
  EXPECT_EQ(b.counters().over_budget_slots, a.counters().over_budget_slots);
  EXPECT_EQ(b.counters().escalations, a.counters().escalations);

  // The loaded controller continues exactly where the saved one left
  // off (same recovery streak), not from a fresh streak.
  a.apply_measurement(10.0);
  b.apply_measurement(10.0);
  EXPECT_EQ(b.rung(), a.rung());
}

TEST(OverloadLadder, RejectsCorruptRungByte) {
  BlobWriter w;
  OverloadController a(ladder_config());
  a.save(w);
  std::string blob = w.take();
  blob[0] = 9;  // rung out of range
  OverloadController b(ladder_config());
  BlobReader r(blob);
  EXPECT_THROW(b.load(r), std::runtime_error);
}

TEST(OverloadLadder, ConfigValidates) {
  OverloadConfig cfg;
  cfg.force = true;
  cfg.slot_budget_us = 10;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = OverloadConfig{};
  cfg.recover_after = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = OverloadConfig{};
  cfg.recover_fraction = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = OverloadConfig{};
  cfg.degraded_gamma = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_FALSE(parse_rung("auto", cfg.forced_rung));
  EXPECT_TRUE(parse_rung("greedy-only", cfg.forced_rung));
  EXPECT_EQ(cfg.forced_rung, DegradeRung::kGreedyOnly);
}

// --- forced rungs stay feasible and learn/serve as specified ---

void run_forced_rung(DegradeRung rung, bool parallel_scns) {
  auto s = small_setup();
  s.lfsc.parallel_scns = parallel_scns;
  s.lfsc.overload.force = true;
  s.lfsc.overload.forced_rung = rung;
  auto sim = s.make_simulator();
  LfscPolicy lfsc(s.net, s.lfsc);
  Policy* roster[] = {&lfsc};
  RunConfig config;
  config.horizon = 80;
  config.validate = true;  // every assignment checked against (1a)/(1b)
  const auto result = run_experiment(sim, roster, config);
  EXPECT_EQ(result.completed_slots, 80);

  const auto& oc = lfsc.overload().counters();
  if (rung == DegradeRung::kShed) {
    EXPECT_EQ(result.series[0].total_reward(), 0.0);
    EXPECT_EQ(oc.shed_slots, 80u);
  } else {
    EXPECT_GT(result.series[0].total_reward(), 0.0);
    if (rung == DegradeRung::kFull) {
      EXPECT_EQ(oc.degraded_slots, 0u);
    } else {
      EXPECT_EQ(oc.degraded_slots, 80u);
    }
  }
  // Forced rungs never adapt.
  EXPECT_EQ(oc.escalations, 0u);
  EXPECT_EQ(oc.recoveries, 0u);
  // The learner state stays finite on every rung.
  for (int m = 0; m < s.net.num_scns; ++m) {
    for (const double w : lfsc.weights(m)) {
      ASSERT_TRUE(std::isfinite(w) && w > 0.0) << "SCN " << m;
    }
    ASSERT_TRUE(std::isfinite(lfsc.lambda_qos(m)));
    ASSERT_TRUE(std::isfinite(lfsc.lambda_resource(m)));
  }
}

TEST(ForcedRung, FullIsValid) {
  run_forced_rung(DegradeRung::kFull, false);
}
TEST(ForcedRung, ExploreCappedIsValid) {
  run_forced_rung(DegradeRung::kExploreCapped, false);
}
TEST(ForcedRung, GreedyOnlyIsValid) {
  run_forced_rung(DegradeRung::kGreedyOnly, false);
}
TEST(ForcedRung, ShedIsValid) {
  run_forced_rung(DegradeRung::kShed, false);
}
TEST(ForcedRung, ExploreCappedParallelIsValid) {
  run_forced_rung(DegradeRung::kExploreCapped, true);
}
TEST(ForcedRung, GreedyOnlyParallelIsValid) {
  run_forced_rung(DegradeRung::kGreedyOnly, true);
}

TEST(ForcedRung, UncoordinatedExploreCappedIsValid) {
  auto s = small_setup();
  s.lfsc.coordinate_scns = false;
  s.lfsc.overload.force = true;
  s.lfsc.overload.forced_rung = DegradeRung::kGreedyOnly;
  auto sim = s.make_simulator();
  LfscPolicy lfsc(s.net, s.lfsc);
  Policy* roster[] = {&lfsc};
  RunConfig config;
  config.horizon = 40;
  config.validate = false;  // the no-coordination ablation violates (1b)
  const auto result = run_experiment(sim, roster, config);
  EXPECT_EQ(result.completed_slots, 40);
  EXPECT_GT(result.series[0].total_reward(), 0.0);
}

// --- determinism contract: budget unset / never-binding ---

/// Runs the standard small experiment and returns the policy's full
/// checkpoint image (weights, multipliers, RNG streams, accumulators —
/// everything) plus the reward series for bit-exact comparison.
struct RunImage {
  std::string blob;
  std::vector<double> reward;
};

RunImage run_and_image(const LfscConfig& lfsc_config, int horizon,
                       std::uint32_t runner_budget_us) {
  auto s = small_setup();
  s.lfsc = lfsc_config;
  auto sim = s.make_simulator();
  LfscPolicy lfsc(s.net, s.lfsc);
  Policy* roster[] = {&lfsc};
  RunConfig config;
  config.horizon = horizon;
  config.slot_budget_us = runner_budget_us;
  const auto result = run_experiment(sim, roster, config);
  RunImage image;
  lfsc.save_checkpoint(image.blob);
  image.reward.assign(result.series[0].reward().begin(),
                      result.series[0].reward().end());
  return image;
}

/// The policy blob holds the overload block (rung, streaks, counters)
/// which legitimately differs between a budgeted and an unbudgeted run
/// even when every decision matched. Compare only the learner state: we
/// strip nothing here but compare the decision-relevant outputs instead.
void expect_same_learning(const LfscConfig& cfg, int horizon,
                          std::uint32_t budget_us, bool parallel) {
  LfscConfig c = cfg;
  c.parallel_scns = parallel;
  const RunImage base = run_and_image(c, horizon, 0);
  const RunImage budgeted = run_and_image(c, horizon, budget_us);
  // Reward series bit-exact.
  ASSERT_EQ(base.reward.size(), budgeted.reward.size());
  for (std::size_t i = 0; i < base.reward.size(); ++i) {
    ASSERT_EQ(base.reward[i], budgeted.reward[i]) << "slot " << i + 1;
  }
}

TEST(BudgetDeterminism, NeverBindingBudgetIsBitIdenticalSerial) {
  auto s = small_setup();
  // ~18 minutes per slot: the clock runs but the ladder never engages.
  expect_same_learning(s.lfsc, 120, 1u << 30, false);
}

TEST(BudgetDeterminism, NeverBindingBudgetIsBitIdenticalParallel) {
  auto s = small_setup();
  expect_same_learning(s.lfsc, 120, 1u << 30, true);
}

TEST(BudgetDeterminism, UnbudgetedPolicyNeverReadsTheClock) {
  auto s = small_setup();
  LfscPolicy lfsc(s.net, s.lfsc);
  EXPECT_FALSE(lfsc.overload().enabled());
  EXPECT_FALSE(lfsc.overload().timing());
}

TEST(BudgetDeterminism, SetSlotBudgetAfterFirstSlotThrows) {
  auto s = small_setup();
  auto sim = s.make_simulator();
  LfscPolicy lfsc(s.net, s.lfsc);
  Policy* roster[] = {&lfsc};
  RunConfig config;
  config.horizon = 2;
  run_experiment(sim, roster, config);
  EXPECT_THROW(lfsc.set_slot_budget(100), std::logic_error);
}

// --- differential harness: infinite budget matches the reference ---

TEST(BudgetDifferential, InfiniteBudgetMatchesReference) {
  for (const std::uint64_t seed : {11ull, 2027ull, 0xB00Dull}) {
    DiffInstance inst = random_instance(seed);
    inst.lfsc.overload.slot_budget_us = 1u << 30;
    const DiffResult res = run_differential(inst);
    EXPECT_FALSE(res.diverged) << "seed " << seed << ": " << res.detail;
  }
}

// --- resume mid-degradation ---

/// Forwards to an inner policy and requests a graceful stop after
/// observing slot `stop_after` (deterministic stand-in for SIGINT).
class StopAfterSlot : public Policy {
 public:
  StopAfterSlot(Policy& inner, int stop_after, std::atomic<bool>& stop)
      : inner_(inner), stop_after_(stop_after), stop_(stop) {}
  std::string_view name() const noexcept override { return inner_.name(); }
  Assignment select(const SlotInfo& info) override {
    return inner_.select(info);
  }
  void observe(const SlotInfo& info, const Assignment& assignment,
               const SlotFeedback& feedback) override {
    inner_.observe(info, assignment, feedback);
    if (info.t == stop_after_) stop_.store(true);
  }
  bool supports_checkpoint() const noexcept override {
    return inner_.supports_checkpoint();
  }
  void save_checkpoint(std::string& out) const override {
    inner_.save_checkpoint(out);
  }
  void load_checkpoint(std::string_view blob) override {
    inner_.load_checkpoint(blob);
  }
  void reset() override { inner_.reset(); }

 private:
  Policy& inner_;
  int stop_after_;
  std::atomic<bool>& stop_;
};

void run_resume_mid_degradation(DegradeRung rung) {
  ScopedTempDir tmp;
  const int horizon = 60;
  auto s = small_setup();
  s.lfsc.overload.force = true;
  s.lfsc.overload.forced_rung = rung;

  AdmissionConfig ac;
  ac.max_queue = 200;

  // Reference: uninterrupted run on the degraded rung.
  auto ref_sim = s.make_simulator();
  LfscPolicy ref_lfsc(s.net, s.lfsc);
  RandomPolicy ref_random(s.net);
  AdmissionControl ref_admission(ac, s.net);
  Policy* ref_roster[] = {&ref_lfsc, &ref_random};
  RunConfig ref_config;
  ref_config.horizon = horizon;
  ref_config.checkpoint_path = tmp.path("ref.ckpt");
  ref_config.admission = &ref_admission;
  const auto ref = run_experiment(ref_sim, ref_roster, ref_config);
  ASSERT_EQ(ref.completed_slots, horizon);

  // Interrupted at T/2, then resumed by a fresh roster.
  const std::string ckpt = tmp.path("run.ckpt");
  {
    auto sim = s.make_simulator();
    LfscPolicy lfsc(s.net, s.lfsc);
    RandomPolicy random(s.net);
    AdmissionControl admission(ac, s.net);
    std::atomic<bool> stop{false};
    StopAfterSlot stopper(random, horizon / 2, stop);
    Policy* roster[] = {&lfsc, &stopper};
    RunConfig config;
    config.horizon = horizon;
    config.checkpoint_path = ckpt;
    config.admission = &admission;
    config.stop = &stop;
    const auto first = run_experiment(sim, roster, config);
    ASSERT_TRUE(first.interrupted);
    ASSERT_EQ(first.completed_slots, horizon / 2);
  }
  auto sim = s.make_simulator();
  LfscPolicy lfsc(s.net, s.lfsc);
  RandomPolicy random(s.net);
  AdmissionControl admission(ac, s.net);
  Policy* roster[] = {&lfsc, &random};
  RunConfig config;
  config.horizon = horizon;
  config.checkpoint_path = ckpt;
  config.admission = &admission;
  config.resume = true;
  const auto resumed = run_experiment(sim, roster, config);
  ASSERT_EQ(resumed.completed_slots, horizon);

  // Bit-identical outcome series and learner state.
  for (std::size_t k = 0; k < ref.series.size(); ++k) {
    const auto got_r = resumed.series[k].reward();
    const auto want_r = ref.series[k].reward();
    ASSERT_EQ(got_r.size(), want_r.size()) << "policy " << k;
    for (std::size_t i = 0; i < got_r.size(); ++i) {
      ASSERT_EQ(got_r[i], want_r[i]) << "policy " << k << " slot " << i + 1;
      ASSERT_EQ(resumed.series[k].qos_violation()[i],
                ref.series[k].qos_violation()[i])
          << "policy " << k << " slot " << i + 1;
    }
  }
  for (int m = 0; m < s.net.num_scns; ++m) {
    const auto got = lfsc.weights(m);
    const auto want = ref_lfsc.weights(m);
    ASSERT_EQ(got.size(), want.size()) << "SCN " << m;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "SCN " << m << " cell " << i;
    }
    EXPECT_EQ(lfsc.lambda_qos(m), ref_lfsc.lambda_qos(m)) << "SCN " << m;
  }
  // Ladder counters came back from the checkpoint and kept counting.
  EXPECT_EQ(lfsc.overload().counters().degraded_slots,
            ref_lfsc.overload().counters().degraded_slots);
  EXPECT_EQ(lfsc.overload().counters().shed_slots,
            ref_lfsc.overload().counters().shed_slots);
  // Admission state came back exactly.
  EXPECT_EQ(admission.offered(), ref_admission.offered());
  EXPECT_EQ(admission.total_shed(), ref_admission.total_shed());
  EXPECT_EQ(admission.backlog(), ref_admission.backlog());
}

TEST(ResumeMidDegradation, ExploreCappedBitIdentical) {
  run_resume_mid_degradation(DegradeRung::kExploreCapped);
}
TEST(ResumeMidDegradation, GreedyOnlyBitIdentical) {
  run_resume_mid_degradation(DegradeRung::kGreedyOnly);
}

TEST(ResumeMidDegradation, MissingAdmissionBlobIsRejected) {
  ScopedTempDir tmp;
  const std::string ckpt = tmp.path("run.ckpt");
  auto s = small_setup();
  {
    auto sim = s.make_simulator();
    LfscPolicy lfsc(s.net, s.lfsc);
    Policy* roster[] = {&lfsc};
    RunConfig config;
    config.horizon = 20;
    config.checkpoint_path = ckpt;
    run_experiment(sim, roster, config);  // no admission configured
  }
  auto sim = s.make_simulator();
  LfscPolicy lfsc(s.net, s.lfsc);
  Policy* roster[] = {&lfsc};
  AdmissionConfig ac;
  ac.max_queue = 100;
  AdmissionControl admission(ac, s.net);
  RunConfig config;
  config.horizon = 20;
  config.checkpoint_path = ckpt;
  config.admission = &admission;
  config.resume = true;
  EXPECT_THROW(run_experiment(sim, roster, config), std::runtime_error);
}

// --- checkpoint file version gate ---

TEST(CheckpointVersion, OldVersionIsRejectedByNumber) {
  ScopedTempDir tmp;
  const std::string path = tmp.path("run.ckpt");
  CheckpointState state;
  state.completed_slots = 1;
  state.horizon = 2;
  write_checkpoint_file(path, state);

  // Rewrite the version word (first payload field, right after the
  // 8-byte magic) and fix up the CRC footer so only the version check
  // can object.
  std::string file;
  {
    std::ifstream in(path, std::ios::binary);
    file.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(file.size(), 16u);
  const std::uint32_t old_version = 1;
  std::memcpy(file.data() + 8, &old_version, sizeof old_version);
  const std::uint32_t crc =
      crc32(std::string_view(file.data(), file.size() - 4));
  std::memcpy(file.data() + file.size() - 4, &crc, sizeof crc);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
  }

  try {
    read_checkpoint_file(path);
    FAIL() << "old file version was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

// --- admission control ---

AdmissionConfig small_admission() {
  AdmissionConfig ac;
  ac.max_queue = 120;
  ac.capacity_factor = 0.5;
  return ac;
}

TEST(Admission, ShedIsDeterministicAndConsistent) {
  auto s = small_setup();
  auto sim_a = s.make_simulator();
  auto sim_b = s.make_simulator();
  AdmissionControl a(small_admission(), s.net);
  AdmissionControl b(small_admission(), s.net);
  for (int t = 1; t <= 40; ++t) {
    Slot slot_a = sim_a.generate_slot(t);
    Slot slot_b = sim_b.generate_slot(t);
    const int shed_a = a.admit(slot_a);
    const int shed_b = b.admit(slot_b);
    EXPECT_EQ(shed_a, shed_b) << "slot " << t;
    ASSERT_EQ(slot_a.info.coverage, slot_b.info.coverage) << "slot " << t;
    // Coverage lists and realization rows stay aligned after shedding.
    for (std::size_t m = 0; m < slot_a.info.coverage.size(); ++m) {
      ASSERT_EQ(slot_a.info.coverage[m].size(), slot_a.real.u[m].size());
      ASSERT_EQ(slot_a.info.coverage[m].size(), slot_a.real.v[m].size());
      ASSERT_EQ(slot_a.info.coverage[m].size(), slot_a.real.q[m].size());
    }
    // Backlog bound holds every slot.
    EXPECT_LE(a.backlog(), small_admission().max_queue);
    EXPECT_GE(a.backlog(), 0);
  }
  EXPECT_EQ(a.offered(), a.admitted() + a.total_shed());
  EXPECT_GT(a.total_shed(), 0u) << "test load never saturated the queue";
}

TEST(Admission, DifferentSeedShedsDifferently) {
  auto s = small_setup();
  auto sim_a = s.make_simulator();
  auto sim_b = s.make_simulator();
  AdmissionConfig cfg_b = small_admission();
  cfg_b.seed = 7;
  AdmissionControl a(small_admission(), s.net);
  AdmissionControl b(cfg_b, s.net);
  bool any_difference = false;
  for (int t = 1; t <= 40 && !any_difference; ++t) {
    Slot slot_a = sim_a.generate_slot(t);
    Slot slot_b = sim_b.generate_slot(t);
    a.admit(slot_a);
    b.admit(slot_b);
    any_difference = slot_a.info.coverage != slot_b.info.coverage;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Admission, StateRoundTripsAndRejectsForeignSeed) {
  auto s = small_setup();
  auto sim = s.make_simulator();
  AdmissionControl a(small_admission(), s.net);
  for (int t = 1; t <= 10; ++t) {
    Slot slot = sim.generate_slot(t);
    a.admit(slot);
  }
  std::string blob;
  a.save_state(blob);

  AdmissionControl b(small_admission(), s.net);
  b.load_state(blob);
  EXPECT_EQ(b.backlog(), a.backlog());
  EXPECT_EQ(b.offered(), a.offered());
  EXPECT_EQ(b.total_shed(), a.total_shed());

  AdmissionConfig other = small_admission();
  other.seed = 99;
  AdmissionControl c(other, s.net);
  EXPECT_THROW(c.load_state(blob), std::runtime_error);
}

TEST(Admission, ConfigValidates) {
  AdmissionConfig ac;
  ac.max_queue = -1;
  EXPECT_THROW(ac.validate(), std::invalid_argument);
  ac = AdmissionConfig{};
  ac.capacity_factor = 0.0;
  EXPECT_THROW(ac.validate(), std::invalid_argument);
  ac = AdmissionConfig{};
  ac.max_queue = 10;
  EXPECT_NO_THROW(ac.validate());
}

// --- invariant auditor ---

TEST(Audit, PureChecksCatchEachFamily) {
  const double w_ok[] = {0.5, 1.0, 0.25};
  EXPECT_EQ(audit_weight_table(w_ok, 1.0), "");
  const double w_nan[] = {0.5, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_NE(audit_weight_table(w_nan, 1.0), "");
  const double w_neg[] = {0.5, -0.1};
  EXPECT_NE(audit_weight_table(w_neg, 1.0), "");
  const double w_over[] = {0.5, 2.0};
  EXPECT_NE(audit_weight_table(w_over, 1.0), "");
  EXPECT_NE(audit_weight_table(w_ok, 0.0), "");

  const double p_ok[] = {1.0, 0.5, 0.5};
  const std::uint8_t capped[] = {1, 0, 0};
  EXPECT_EQ(audit_probabilities(p_ok, capped, 2, true), "");
  const double p_sum[] = {1.0, 0.5, 0.25};  // sum != min(c, K)
  EXPECT_NE(audit_probabilities(p_sum, capped, 2, true), "");
  EXPECT_EQ(audit_probabilities(p_sum, capped, 2, false), "")
      << "degraded vectors do not preserve the sum";
  const double p_range[] = {1.0, 1.5, -0.5};
  EXPECT_NE(audit_probabilities(p_range, capped, 2, false), "");
  const double p_capped_low[] = {0.5, 0.5, 1.0};
  EXPECT_NE(audit_probabilities(p_capped_low, capped, 2, false), "")
      << "capped arm with p != 1 must fail";

  EXPECT_EQ(audit_multipliers(0.0, 1.0, 2.0), "");
  EXPECT_NE(audit_multipliers(-0.5, 1.0, 2.0), "");
  EXPECT_NE(audit_multipliers(0.0, 3.0, 2.0), "");
  EXPECT_NE(audit_multipliers(std::numeric_limits<double>::infinity(), 0.0,
                              2.0),
            "");
}

TEST(Audit, CleanPolicyPassesAndPoisonQuarantines) {
  auto s = small_setup();
  auto sim = s.make_simulator();
  LfscPolicy lfsc(s.net, s.lfsc);
  Policy* roster[] = {&lfsc};
  RunConfig config;
  config.horizon = 30;
  run_experiment(sim, roster, config);

  EXPECT_EQ(lfsc.audit_now(), 0);
  EXPECT_GT(lfsc.audit_checks(), 0u);
  EXPECT_EQ(lfsc.audit_violations(), 0u);

  lfsc.debug_set_weight(1, 0, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(lfsc.audit_now(), 1);
  EXPECT_TRUE(lfsc.quarantined(1));
  EXPECT_FALSE(lfsc.quarantined(0));
  EXPECT_NE(lfsc.last_audit_detail(), "");

  // Quarantine is idempotent: the poisoned SCN is skipped from now on.
  EXPECT_EQ(lfsc.audit_now(), 0);
  EXPECT_EQ(lfsc.audit_violations(), 1u);

  // The quarantined policy keeps serving valid slots.
  auto sim2 = s.make_simulator();
  RunConfig more;
  more.horizon = 30;
  const auto result = run_experiment(sim2, roster, more);
  EXPECT_EQ(result.completed_slots, 30);
  EXPECT_GT(result.series[0].total_reward(), 0.0);
}

TEST(Audit, StridedAuditRunsDuringTheLoop) {
  auto s = small_setup();
  s.lfsc.audit_stride = 8;
  auto sim = s.make_simulator();
  LfscPolicy lfsc(s.net, s.lfsc);
  Policy* roster[] = {&lfsc};
  RunConfig config;
  config.horizon = 40;
  run_experiment(sim, roster, config);
  // 5 strided audits x SCN count, all clean.
  EXPECT_EQ(lfsc.audit_checks(),
            5u * static_cast<std::uint64_t>(s.net.num_scns));
  EXPECT_EQ(lfsc.audit_violations(), 0u);
}

TEST(Audit, QuarantineStateSurvivesCheckpoint) {
  auto s = small_setup();
  LfscPolicy a(s.net, s.lfsc);
  auto sim = s.make_simulator();
  Policy* roster[] = {&a};
  RunConfig config;
  config.horizon = 10;
  run_experiment(sim, roster, config);
  a.debug_set_weight(0, 0, std::numeric_limits<double>::quiet_NaN());
  ASSERT_EQ(a.audit_now(), 1);

  std::string blob;
  a.save_checkpoint(blob);
  LfscPolicy b(s.net, s.lfsc);
  b.load_checkpoint(blob);
  EXPECT_TRUE(b.quarantined(0));
  EXPECT_EQ(b.audit_violations(), 1u);
  EXPECT_EQ(b.audit_checks(), a.audit_checks());
}

// --- full-stack integration: budget + admission + faults ---

TEST(OverloadIntegration, ChaosRunCompletesWithConsistentCounters) {
  auto s = small_setup();
  s.lfsc.audit_stride = 16;
  auto sim = s.make_simulator();
  LfscPolicy lfsc(s.net, s.lfsc);
  Policy* roster[] = {&lfsc};

  FaultConfig fc;
  fc.outage_prob = 0.01;
  fc.outage_min_slots = 1;
  fc.outage_max_slots = 3;
  fc.loss_prob = 0.05;
  fc.corrupt_prob = 0.02;
  FaultModel faults(fc, s.net.num_scns);
  AdmissionConfig ac;
  ac.max_queue = 60;
  ac.capacity_factor = 0.25;
  AdmissionControl admission(ac, s.net);

  RunConfig config;
  config.horizon = 400;
  config.faults = &faults;
  config.admission = &admission;
  config.slot_budget_us = 50;  // tight enough to engage on most machines
  config.telemetry = &lfsc.telemetry();
  const auto result = run_experiment(sim, roster, config);

  EXPECT_EQ(result.completed_slots, 400);
  const auto& oc = lfsc.overload().counters();
  EXPECT_EQ(oc.escalations - oc.recoveries,
            static_cast<std::uint64_t>(lfsc.overload().rung()));
  EXPECT_EQ(admission.offered(), admission.admitted() + admission.total_shed());
  EXPECT_LE(admission.backlog(), ac.max_queue);
  EXPECT_EQ(lfsc.audit_violations(), 0u);
  EXPECT_GT(lfsc.audit_checks(), 0u);
  for (int m = 0; m < s.net.num_scns; ++m) {
    for (const double w : lfsc.weights(m)) {
      ASSERT_TRUE(std::isfinite(w) && w > 0.0);
    }
  }
}

}  // namespace
}  // namespace lfsc
