#include <gtest/gtest.h>

#include "baselines/linucb.h"
#include "baselines/thompson.h"
#include "harness/paper_setup.h"
#include "harness/runner.h"
#include "metrics/metrics.h"

namespace lfsc {
namespace {

PaperSetup setup() { return small_setup(); }

template <typename P>
void run_slots(P& policy, Simulator& sim, int slots) {
  for (int t = 1; t <= slots; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto a = policy.select(slot.info);
    ASSERT_EQ(validate_assignment(slot.info, a, sim.network()), std::nullopt)
        << policy.name() << " t=" << t;
    policy.observe(slot.info, a, make_feedback(slot, a));
  }
}

TEST(LinUcb, ValidAssignmentsOverManySlots) {
  auto s = setup();
  auto sim = s.make_simulator();
  LinUcbPolicy policy(s.net);
  run_slots(policy, sim, 100);
}

TEST(LinUcb, ThetaConvergesOnLinearRewards) {
  // Synthetic single-SCN world where g is exactly linear in the context:
  // g = 0.2 + 0.5*x0 - 0.1*x1 + 0.3*x2. Theta must approach those
  // coefficients.
  NetworkConfig net{.num_scns = 1, .capacity_c = 2, .qos_alpha = 0.0,
                    .resource_beta = 100.0};
  LinUcbPolicy policy(net, {.alpha = 0.3, .ridge = 1.0});
  RngStream rng(3);
  for (int t = 1; t <= 2000; ++t) {
    SlotInfo info;
    info.t = t;
    info.tasks.resize(4);
    info.coverage = {{0, 1, 2, 3}};
    for (auto& task : info.tasks) {
      task.context = make_context(rng.uniform(5.0, 20.0),
                                  rng.uniform(1.0, 4.0),
                                  static_cast<ResourceType>(rng.uniform_int(0, 2)));
    }
    const auto a = policy.select(info);
    SlotFeedback feedback;
    feedback.per_scn.resize(1);
    for (const int local : a.selected[0]) {
      const auto& x =
          info.tasks[static_cast<std::size_t>(info.coverage[0][
              static_cast<std::size_t>(local)])].context.normalized;
      const double g = 0.2 + 0.5 * x[0] - 0.1 * x[1] + 0.3 * x[2];
      TaskFeedback f;
      f.local_index = local;
      // compound() = u*v/q = g when u=g, v=1, q=1.
      f.u = g;
      f.v = 1.0;
      f.q = 1.0;
      feedback.per_scn[0].push_back(f);
    }
    policy.observe(info, a, feedback);
  }
  const auto theta = policy.theta(0);
  ASSERT_EQ(theta.size(), 4u);
  EXPECT_NEAR(theta[0], 0.2, 0.05);
  EXPECT_NEAR(theta[1], 0.5, 0.08);
  EXPECT_NEAR(theta[2], -0.1, 0.08);
  EXPECT_NEAR(theta[3], 0.3, 0.08);
}

TEST(LinUcb, RejectsBadRidge) {
  auto s = setup();
  EXPECT_THROW(LinUcbPolicy(s.net, {.alpha = 0.5, .ridge = 0.0}),
               std::invalid_argument);
}

TEST(LinUcb, ResetClearsModel) {
  auto s = setup();
  auto sim = s.make_simulator();
  LinUcbPolicy policy(s.net);
  run_slots(policy, sim, 20);
  policy.reset();
  const auto theta = policy.theta(0);
  for (const double v : theta) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Thompson, ValidAssignmentsOverManySlots) {
  auto s = setup();
  auto sim = s.make_simulator();
  ThompsonPolicy policy(s.net);
  run_slots(policy, sim, 100);
}

TEST(Thompson, SelectionIsStochasticButLearns) {
  auto s = setup();
  auto sim = s.make_simulator();
  ThompsonPolicy policy(s.net);
  const auto slot = sim.generate_slot(1);
  const auto a = policy.select(slot.info);
  const auto b = policy.select(slot.info);
  EXPECT_NE(a.selected, b.selected);  // fresh posterior draws
}

TEST(Thompson, BeatsRandomAfterLearning) {
  auto s = setup();
  auto sim = s.make_simulator();
  ThompsonPolicy thompson(s.net);
  // Compare tail reward of Thompson vs a uniform-random policy on the
  // same worlds.
  double thompson_tail = 0.0, random_tail = 0.0;
  RngStream rng(9);
  for (int t = 1; t <= 600; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto a = thompson.select(slot.info);
    const auto outcome = evaluate_slot(slot, a, s.net);
    thompson.observe(slot.info, a, make_feedback(slot, a));
    // Random: c random tasks per SCN without conflicts.
    Assignment random;
    random.selected.resize(slot.info.coverage.size());
    std::vector<bool> taken(slot.info.tasks.size(), false);
    for (std::size_t m = 0; m < slot.info.coverage.size(); ++m) {
      const auto& cover = slot.info.coverage[m];
      for (const auto j : rng.sample_without_replacement(
               cover.size(), static_cast<std::size_t>(s.net.capacity_c))) {
        if (taken[static_cast<std::size_t>(cover[j])]) continue;
        taken[static_cast<std::size_t>(cover[j])] = true;
        random.selected[m].push_back(static_cast<int>(j));
      }
    }
    const auto random_outcome = evaluate_slot(slot, random, s.net);
    if (t > 300) {
      thompson_tail += outcome.reward;
      random_tail += random_outcome.reward;
    }
  }
  EXPECT_GT(thompson_tail, 1.15 * random_tail);
}

TEST(ExtraBaselines, FullRosterRunsTogether) {
  auto s = setup();
  auto sim = s.make_simulator();
  auto owned = make_paper_policies(s);
  LinUcbPolicy linucb(s.net);
  ThompsonPolicy thompson(s.net);
  auto policies = policy_pointers(owned);
  policies.push_back(&linucb);
  policies.push_back(&thompson);
  const auto result = run_experiment(sim, policies, {.horizon = 60});
  EXPECT_EQ(result.series.size(), 7u);
  EXPECT_GT(result.find("LinUCB").total_reward(), 0.0);
  EXPECT_GT(result.find("Thompson").total_reward(), 0.0);
}

}  // namespace
}  // namespace lfsc
