#include "harness/checkpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/random_policy.h"
#include "faults/fault_model.h"
#include "harness/paper_setup.h"
#include "harness/runner.h"
#include "lfsc/lfsc_policy.h"
#include "test_util.h"

namespace lfsc {
namespace {

// --- file format ---

CheckpointState sample_state() {
  CheckpointState state;
  state.completed_slots = 7;
  state.horizon = 20;
  CheckpointPolicyState p;
  p.name = "LFSC";
  p.blob = std::string("\x00\x01raw\xff", 6);
  p.reward = {1.0, 2.5, -0.25};
  p.qos = {0.0, 1.0, 0.0};
  p.res = {0.5, 0.0, 0.0};
  CheckpointDelayedBatch batch;
  batch.origin_t = 5;
  batch.arrival_t = 8;
  batch.feedback.per_scn.resize(2);
  batch.feedback.per_scn[1].push_back({3, 0.5, 1.0, 2.0});
  p.delayed.push_back(batch);
  state.policies.push_back(p);
  state.faults_blob = "fault-bytes";
  telemetry::MetricSnapshot m;
  m.name = "faults.feedback.total";
  m.kind = telemetry::Kind::kCounter;
  m.value = 42.0;
  m.stream_values = {40.0, 2.0};
  state.metrics.push_back(m);
  state.telemetry_series.names = {"a", "b"};
  state.telemetry_series.t = {1, 2};
  state.telemetry_series.rows = {{0.1, 0.2}, {0.3, 0.4}};
  return state;
}

class CheckpointFileTest : public ::testing::Test {
 protected:
  ScopedTempDir tmp_;
  std::string path_ = tmp_.path("run.ckpt");
};

TEST_F(CheckpointFileTest, RoundTripPreservesEverything) {
  const auto state = sample_state();
  write_checkpoint_file(path_, state);
  const auto loaded = read_checkpoint_file(path_);

  EXPECT_EQ(loaded.completed_slots, state.completed_slots);
  EXPECT_EQ(loaded.horizon, state.horizon);
  ASSERT_EQ(loaded.policies.size(), 1u);
  const auto& p = loaded.policies[0];
  EXPECT_EQ(p.name, "LFSC");
  EXPECT_EQ(p.blob, state.policies[0].blob);
  EXPECT_EQ(p.reward, state.policies[0].reward);
  EXPECT_EQ(p.qos, state.policies[0].qos);
  EXPECT_EQ(p.res, state.policies[0].res);
  ASSERT_EQ(p.delayed.size(), 1u);
  EXPECT_EQ(p.delayed[0].origin_t, 5);
  EXPECT_EQ(p.delayed[0].arrival_t, 8);
  ASSERT_EQ(p.delayed[0].feedback.per_scn.size(), 2u);
  ASSERT_EQ(p.delayed[0].feedback.per_scn[1].size(), 1u);
  EXPECT_EQ(p.delayed[0].feedback.per_scn[1][0].local_index, 3);
  EXPECT_DOUBLE_EQ(p.delayed[0].feedback.per_scn[1][0].q, 2.0);
  EXPECT_EQ(loaded.faults_blob, "fault-bytes");
  ASSERT_EQ(loaded.metrics.size(), 1u);
  EXPECT_EQ(loaded.metrics[0].name, "faults.feedback.total");
  EXPECT_EQ(loaded.metrics[0].stream_values, state.metrics[0].stream_values);
  EXPECT_EQ(loaded.telemetry_series.names, state.telemetry_series.names);
  EXPECT_EQ(loaded.telemetry_series.rows, state.telemetry_series.rows);
}

TEST_F(CheckpointFileTest, RewriteReplacesAtomically) {
  auto state = sample_state();
  write_checkpoint_file(path_, state);
  state.completed_slots = 15;
  write_checkpoint_file(path_, state);
  EXPECT_EQ(read_checkpoint_file(path_).completed_slots, 15);
  // No stray temp file left behind.
  std::ifstream tmp(path_ + ".tmp");
  EXPECT_FALSE(tmp.good());
}

TEST_F(CheckpointFileTest, DetectsCorruptionViaCrc) {
  write_checkpoint_file(path_, sample_state());
  // Flip one byte in the middle of the payload.
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(40);
  char byte = 0;
  f.seekg(40);
  f.get(byte);
  f.seekp(40);
  f.put(static_cast<char>(byte ^ 0x5A));
  f.close();
  EXPECT_THROW(read_checkpoint_file(path_), std::runtime_error);
}

TEST_F(CheckpointFileTest, RejectsTruncationAndForeignFiles) {
  EXPECT_THROW(read_checkpoint_file(path_), std::runtime_error);  // missing

  std::ofstream(path_, std::ios::binary) << "LFSC";  // truncated magic
  EXPECT_THROW(read_checkpoint_file(path_), std::runtime_error);

  std::ofstream(path_, std::ios::binary)
      << "definitely not a checkpoint file at all";
  EXPECT_THROW(read_checkpoint_file(path_), std::runtime_error);
}

// --- resume determinism ---

/// Forwards to an inner policy and requests a graceful stop after
/// observing slot `stop_after` — a deterministic stand-in for SIGINT.
class StopAfterSlot : public Policy {
 public:
  StopAfterSlot(Policy& inner, int stop_after, std::atomic<bool>& stop)
      : inner_(inner), stop_after_(stop_after), stop_(stop) {}

  std::string_view name() const noexcept override { return inner_.name(); }
  Assignment select(const SlotInfo& info) override {
    return inner_.select(info);
  }
  void observe(const SlotInfo& info, const Assignment& assignment,
               const SlotFeedback& feedback) override {
    inner_.observe(info, assignment, feedback);
    if (info.t == stop_after_) stop_.store(true);
  }
  bool needs_realizations() const noexcept override {
    return inner_.needs_realizations();
  }
  Assignment select_omniscient(const Slot& slot) override {
    return inner_.select_omniscient(slot);
  }
  void reset() override { inner_.reset(); }
  bool enable_delayed_feedback(int max_delay) override {
    return inner_.enable_delayed_feedback(max_delay);
  }
  void observe_delayed(int origin_t, const SlotFeedback& feedback) override {
    inner_.observe_delayed(origin_t, feedback);
  }
  bool supports_checkpoint() const noexcept override {
    return inner_.supports_checkpoint();
  }
  void save_checkpoint(std::string& out) const override {
    inner_.save_checkpoint(out);
  }
  void load_checkpoint(std::string_view blob) override {
    inner_.load_checkpoint(blob);
  }

 private:
  Policy& inner_;
  int stop_after_;
  std::atomic<bool>& stop_;
};

FaultConfig test_faults() {
  FaultConfig f;
  f.outage_prob = 0.01;
  f.outage_min_slots = 2;
  f.outage_max_slots = 4;
  f.loss_prob = 0.1;
  f.delay_prob = 0.15;
  f.delay_slots = 3;
  f.corrupt_prob = 0.02;
  return f;
}

/// Non-timer telemetry rows, minus checkpoint.resumes (the one counter
/// that definitionally differs between an interrupted-and-resumed run
/// and an uninterrupted one). Timers measure wall time and are outside
/// the determinism contract.
std::vector<telemetry::MetricSnapshot> comparable_rows(
    const telemetry::Registry& registry) {
  std::vector<telemetry::MetricSnapshot> out;
  for (auto& snap : registry.snapshot()) {
    if (snap.kind == telemetry::Kind::kTimer) continue;
    if (snap.name == "checkpoint.resumes") continue;
    out.push_back(std::move(snap));
  }
  return out;
}

void expect_same_rows(const std::vector<telemetry::MetricSnapshot>& a,
                      const std::vector<telemetry::MetricSnapshot>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].count, b[i].count) << a[i].name;
    EXPECT_EQ(a[i].value, b[i].value) << a[i].name;
    EXPECT_EQ(a[i].sum, b[i].sum) << a[i].name;
    EXPECT_EQ(a[i].stream_values, b[i].stream_values) << a[i].name;
    EXPECT_EQ(a[i].bucket_counts, b[i].bucket_counts) << a[i].name;
  }
}

void expect_same_series(const SeriesRecorder& a, const SeriesRecorder& b) {
  ASSERT_EQ(a.slots(), b.slots());
  for (std::size_t i = 0; i < a.slots(); ++i) {
    EXPECT_EQ(a.reward()[i], b.reward()[i]) << "slot " << i + 1;
    EXPECT_EQ(a.qos_violation()[i], b.qos_violation()[i]) << "slot " << i + 1;
    EXPECT_EQ(a.resource_violation()[i], b.resource_violation()[i])
        << "slot " << i + 1;
  }
}

void run_resume_determinism(bool parallel_scns) {
  ScopedTempDir tmp;
  // The stop lands exactly on a periodic checkpoint slot: the runner's
  // last_checkpoint_t guard must then skip the redundant final rewrite,
  // keeping the checkpoint.writes counter identical to the reference.
  const int horizon = 200;
  const int stop_after = horizon / 2;
  auto s = small_setup();
  s.lfsc.parallel_scns = parallel_scns;

  const auto base_config = [&](const std::string& path) {
    RunConfig c;
    c.horizon = horizon;
    c.checkpoint_path = path;
    c.checkpoint_every = 50;
    return c;
  };

  // Reference: one uninterrupted run (checkpointing on, so the
  // checkpoint.writes counter is comparable).
  auto ref_sim = s.make_simulator();
  LfscPolicy ref_lfsc(s.net, s.lfsc);
  RandomPolicy ref_random(s.net);
  FaultModel ref_faults(test_faults(), s.net.num_scns);
  Policy* ref_roster[] = {&ref_lfsc, &ref_random};
  auto ref_config = base_config(tmp.path("ref.ckpt"));
  ref_config.faults = &ref_faults;
  ref_config.telemetry = &ref_lfsc.telemetry();
  const auto ref = run_experiment(ref_sim, ref_roster, ref_config);
  EXPECT_FALSE(ref.interrupted);
  EXPECT_EQ(ref.completed_slots, horizon);

  // Interrupted run: a wrapper flips the stop flag after slot T/2, the
  // runner writes a final checkpoint and returns early.
  const std::string ckpt = tmp.path("run.ckpt");
  {
    auto sim = s.make_simulator();
    LfscPolicy lfsc(s.net, s.lfsc);
    RandomPolicy random(s.net);
    std::atomic<bool> stop{false};
    StopAfterSlot stopper(random, stop_after, stop);
    FaultModel faults(test_faults(), s.net.num_scns);
    Policy* roster[] = {&lfsc, &stopper};
    auto config = base_config(ckpt);
    config.faults = &faults;
    config.telemetry = &lfsc.telemetry();
    config.stop = &stop;
    const auto first = run_experiment(sim, roster, config);
    EXPECT_TRUE(first.interrupted);
    EXPECT_EQ(first.completed_slots, stop_after);
  }

  // Resume in a "new process": fresh simulator, fresh policies, fresh
  // fault model — everything must come back from the file.
  auto sim = s.make_simulator();
  LfscPolicy lfsc(s.net, s.lfsc);
  RandomPolicy random(s.net);
  FaultModel faults(test_faults(), s.net.num_scns);
  Policy* roster[] = {&lfsc, &random};
  auto config = base_config(ckpt);
  config.faults = &faults;
  config.telemetry = &lfsc.telemetry();
  config.resume = true;
  const auto resumed = run_experiment(sim, roster, config);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.completed_slots, horizon);

  ASSERT_EQ(resumed.series.size(), ref.series.size());
  for (std::size_t k = 0; k < ref.series.size(); ++k) {
    expect_same_series(resumed.series[k], ref.series[k]);
  }
  for (int m = 0; m < s.net.num_scns; ++m) {
    EXPECT_EQ(lfsc.weights(m), ref_lfsc.weights(m)) << "SCN " << m;
    EXPECT_EQ(lfsc.lambda_qos(m), ref_lfsc.lambda_qos(m)) << "SCN " << m;
    EXPECT_EQ(lfsc.lambda_resource(m), ref_lfsc.lambda_resource(m))
        << "SCN " << m;
  }
  if (telemetry::kEnabled) {
    expect_same_rows(comparable_rows(lfsc.telemetry()),
                     comparable_rows(ref_lfsc.telemetry()));
    // Sampled series match column-for-column, except timer columns
    // (wall seconds) and checkpoint.resumes.
    ASSERT_EQ(resumed.telemetry_series.t, ref.telemetry_series.t);
    ASSERT_EQ(resumed.telemetry_series.names, ref.telemetry_series.names);
    std::vector<bool> comparable(ref.telemetry_series.names.size(), true);
    for (const auto& snap : lfsc.telemetry().snapshot()) {
      if (snap.kind != telemetry::Kind::kTimer &&
          snap.name != "checkpoint.resumes") {
        continue;
      }
      for (std::size_t c = 0; c < comparable.size(); ++c) {
        if (ref.telemetry_series.names[c] == snap.name) comparable[c] = false;
      }
    }
    for (std::size_t r = 0; r < ref.telemetry_series.rows.size(); ++r) {
      for (std::size_t c = 0; c < comparable.size(); ++c) {
        if (!comparable[c]) continue;
        EXPECT_EQ(resumed.telemetry_series.rows[r][c],
                  ref.telemetry_series.rows[r][c])
            << "row " << r << " column " << ref.telemetry_series.names[c];
      }
    }
  }
}

TEST(CheckpointResume, BitIdenticalSerialScns) {
  run_resume_determinism(/*parallel_scns=*/false);
}

TEST(CheckpointResume, BitIdenticalParallelScns) {
  run_resume_determinism(/*parallel_scns=*/true);
}

TEST(CheckpointResume, ResumeValidatesShape) {
  ScopedTempDir tmp;
  const std::string ckpt = tmp.path("run.ckpt");
  auto s = small_setup();
  {
    auto sim = s.make_simulator();
    LfscPolicy lfsc(s.net, s.lfsc);
    Policy* roster[] = {&lfsc};
    RunConfig config;
    config.horizon = 30;
    config.checkpoint_path = ckpt;
    run_experiment(sim, roster, config);
  }
  // Different horizon.
  {
    auto sim = s.make_simulator();
    LfscPolicy lfsc(s.net, s.lfsc);
    Policy* roster[] = {&lfsc};
    RunConfig config;
    config.horizon = 60;
    config.checkpoint_path = ckpt;
    config.resume = true;
    EXPECT_THROW(run_experiment(sim, roster, config), std::runtime_error);
  }
  // Different roster.
  {
    auto sim = s.make_simulator();
    LfscPolicy lfsc(s.net, s.lfsc);
    RandomPolicy random(s.net);
    Policy* roster[] = {&lfsc, &random};
    RunConfig config;
    config.horizon = 30;
    config.checkpoint_path = ckpt;
    config.resume = true;
    EXPECT_THROW(run_experiment(sim, roster, config), std::runtime_error);
  }
  // Resume without a path is rejected outright.
  {
    auto sim = s.make_simulator();
    LfscPolicy lfsc(s.net, s.lfsc);
    Policy* roster[] = {&lfsc};
    RunConfig config;
    config.horizon = 30;
    config.resume = true;
    EXPECT_THROW(run_experiment(sim, roster, config), std::invalid_argument);
  }
}

// --- fault-injection integration (DESIGN.md §9 acceptance) ---

TEST(FaultInjectionIntegration, LongDegradedRunStaysFinite) {
  auto s = small_setup();
  auto sim = s.make_simulator();
  LfscPolicy lfsc(s.net, s.lfsc);
  RandomPolicy random(s.net);
  Policy* roster[] = {&lfsc, &random};

  FaultConfig fc;
  fc.outage_prob = 0.005;
  fc.outage_min_slots = 2;
  fc.outage_max_slots = 6;
  fc.loss_prob = 0.1;
  fc.delay_prob = 0.15;
  fc.delay_slots = 3;
  fc.corrupt_prob = 0.02;
  FaultModel faults(fc, s.net.num_scns);

  RunConfig config;
  config.horizon = 10000;
  config.faults = &faults;
  config.telemetry = &lfsc.telemetry();
  const auto result = run_experiment(sim, roster, config);

  EXPECT_FALSE(result.interrupted);
  EXPECT_EQ(result.completed_slots, 10000);
  EXPECT_GT(result.series[0].total_reward(), 0.0);

  // Degraded feedback must never leak a non-finite value into the
  // learner: every weight and multiplier is finite at the end.
  for (int m = 0; m < s.net.num_scns; ++m) {
    for (const double w : lfsc.weights(m)) {
      ASSERT_TRUE(std::isfinite(w)) << "SCN " << m;
      ASSERT_GT(w, 0.0) << "SCN " << m;
    }
    ASSERT_TRUE(std::isfinite(lfsc.lambda_qos(m))) << "SCN " << m;
    ASSERT_TRUE(std::isfinite(lfsc.lambda_resource(m))) << "SCN " << m;
  }

  if (!telemetry::kEnabled) return;
  const auto rows = lfsc.telemetry().snapshot();
  const auto counter = [&](const std::string& name) -> double {
    for (const auto& r : rows) {
      if (r.name == name) return r.value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return -1.0;
  };
  const double total = counter("faults.feedback.total");
  const double delivered = counter("faults.feedback.delivered");
  const double lost = counter("faults.feedback.lost");
  const double delayed = counter("faults.feedback.delayed");
  const double corrupted = counter("faults.feedback.corrupted");
  EXPECT_GT(total, 0.0);
  EXPECT_GT(lost, 0.0);
  EXPECT_GT(delayed, 0.0);
  EXPECT_GT(corrupted, 0.0);
  // The four fates partition every observation.
  EXPECT_EQ(delivered + lost + delayed + corrupted, total);
  // Every delayed observation is eventually delivered late, dropped
  // with its down SCN, or still in flight at the horizon.
  const double late_delivered = counter("faults.feedback.late_delivered");
  const double inflight_lost = counter("faults.feedback.inflight_lost");
  EXPECT_GT(late_delivered, 0.0);
  EXPECT_LE(late_delivered + inflight_lost, delayed);
  // Only the last delay_slots origin slots can still be in flight at
  // the horizon (at most every covered task of those slots).
  const double max_in_flight =
      fc.delay_slots * s.net.num_scns * s.coverage.tasks_per_scn_max;
  EXPECT_GE(late_delivered + inflight_lost, delayed - max_in_flight);
  // LFSC accepts delayed feedback, so nothing is late-dropped.
  EXPECT_EQ(counter("faults.feedback.late_dropped"), 0.0);
  // Outage accounting: every started burst is down for >= 1 slot.
  const double outage_slots = counter("faults.outage_slots");
  const double outages = counter("faults.outages_started");
  EXPECT_GT(outages, 0.0);
  EXPECT_GE(outage_slots, outages);
  // Corrupted observations were rejected by the policy's sanitizer.
  EXPECT_EQ(counter("lfsc.feedback.rejected"), corrupted);
}

}  // namespace
}  // namespace lfsc
