#include "lfsc/lagrange.h"

#include <gtest/gtest.h>

namespace lfsc {
namespace {

TEST(Lagrange, StartsAtZero) {
  LagrangeMultipliers lm(0.1, 0.01, 5.0);
  EXPECT_DOUBLE_EQ(lm.qos(), 0.0);
  EXPECT_DOUBLE_EQ(lm.resource(), 0.0);
}

TEST(Lagrange, QosShortfallRaisesQosMultiplier) {
  LagrangeMultipliers lm(0.1, 0.0, 5.0);
  // completed 5 < alpha 15: gap (15-5)/15 = 2/3 -> lambda = 0.1 * 2/3.
  lm.update(/*completed=*/5.0, /*resource=*/10.0, /*alpha=*/15.0, /*beta=*/27.0);
  EXPECT_NEAR(lm.qos(), 0.1 * (10.0 / 15.0), 1e-12);
  EXPECT_DOUBLE_EQ(lm.resource(), 0.0);  // within beta: projected to 0
}

TEST(Lagrange, ResourceOverrunRaisesResourceMultiplier) {
  LagrangeMultipliers lm(0.1, 0.0, 5.0);
  lm.update(/*completed=*/20.0, /*resource=*/30.0, 15.0, 27.0);
  EXPECT_DOUBLE_EQ(lm.qos(), 0.0);
  EXPECT_NEAR(lm.resource(), 0.1 * (3.0 / 27.0), 1e-12);
}

TEST(Lagrange, SatisfiedConstraintsDecayMultipliers) {
  LagrangeMultipliers lm(0.1, 0.0, 5.0);
  // Build up pressure, then satisfy the constraint: multiplier shrinks.
  for (int i = 0; i < 20; ++i) lm.update(0.0, 40.0, 15.0, 27.0);
  const double qos_high = lm.qos();
  const double res_high = lm.resource();
  EXPECT_GT(qos_high, 0.0);
  EXPECT_GT(res_high, 0.0);
  for (int i = 0; i < 5; ++i) lm.update(20.0, 20.0, 15.0, 27.0);
  EXPECT_LT(lm.qos(), qos_high);
  EXPECT_LT(lm.resource(), res_high);
}

TEST(Lagrange, ProjectionKeepsMultipliersInBox) {
  LagrangeMultipliers lm(1.0, 0.0, 0.5);
  for (int i = 0; i < 100; ++i) lm.update(0.0, 100.0, 15.0, 27.0);
  EXPECT_LE(lm.qos(), 0.5);
  EXPECT_LE(lm.resource(), 0.5);
  // Push the other way: never below zero.
  for (int i = 0; i < 100; ++i) lm.update(100.0, 0.0, 15.0, 27.0);
  EXPECT_GE(lm.qos(), 0.0);
  EXPECT_GE(lm.resource(), 0.0);
}

TEST(Lagrange, RegularizationDecaysTowardZero) {
  LagrangeMultipliers with_reg(0.1, 1.0, 5.0);
  LagrangeMultipliers without(0.1, 0.0, 5.0);
  for (int i = 0; i < 50; ++i) {
    with_reg.update(0.0, 40.0, 15.0, 27.0);
    without.update(0.0, 40.0, 15.0, 27.0);
  }
  EXPECT_LT(with_reg.qos(), without.qos());
}

TEST(Lagrange, SteadyStateBalancesGapAndDecay) {
  // With constant gap g and decay, lambda converges to g/delta (when the
  // box allows): fixed point of l = (1-ed)l + e*g.
  const double eta = 0.05, delta = 0.2;
  LagrangeMultipliers lm(eta, delta, 100.0);
  for (int i = 0; i < 5000; ++i) lm.update(0.0, 27.0, 15.0, 27.0);
  EXPECT_NEAR(lm.qos(), 1.0 / delta, 1e-6);  // gap = 1 (normalized)
}

TEST(Lagrange, ResetClears) {
  LagrangeMultipliers lm(0.1, 0.0, 5.0);
  lm.update(0.0, 40.0, 15.0, 27.0);
  lm.reset();
  EXPECT_DOUBLE_EQ(lm.qos(), 0.0);
  EXPECT_DOUBLE_EQ(lm.resource(), 0.0);
}

TEST(Lagrange, ZeroAlphaBetaAreSafe) {
  LagrangeMultipliers lm(0.1, 0.0, 5.0);
  lm.update(5.0, 5.0, 0.0, 0.0);  // guards against division by zero
  EXPECT_DOUBLE_EQ(lm.qos(), 0.0);
  EXPECT_DOUBLE_EQ(lm.resource(), 0.0);
}

}  // namespace
}  // namespace lfsc
