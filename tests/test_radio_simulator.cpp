#include "radio/radio_simulator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/oracle.h"
#include "harness/runner.h"
#include "lfsc/lfsc_policy.h"
#include "metrics/metrics.h"

namespace lfsc {
namespace {

NetworkConfig radio_net() {
  return NetworkConfig{.num_scns = 8,
                       .capacity_c = 6,
                       .qos_alpha = 3.0,
                       .resource_beta = 8.0};
}

RadioSimConfig radio_config() {
  RadioSimConfig config;
  config.geometry.num_scns = 8;
  config.geometry.num_wds = 150;
  config.geometry.area_km = 2.0;
  config.seed = 11;
  return config;
}

TEST(RadioSimulator, SlotShapeAndRanges) {
  RadioSimulator sim(radio_net(), radio_config());
  for (int t = 1; t <= 10; ++t) {
    const auto slot = sim.generate_slot(t);
    ASSERT_EQ(slot.info.coverage.size(), 8u);
    for (std::size_t m = 0; m < 8; ++m) {
      ASSERT_EQ(slot.real.u[m].size(), slot.info.coverage[m].size());
      for (std::size_t j = 0; j < slot.real.u[m].size(); ++j) {
        EXPECT_GE(slot.real.u[m][j], 0.0);
        EXPECT_LE(slot.real.u[m][j], 1.0);
        EXPECT_GE(slot.real.v[m][j], 0.0);
        EXPECT_LE(slot.real.v[m][j], 1.0);
        EXPECT_GE(slot.real.q[m][j], 1.0);
        EXPECT_LE(slot.real.q[m][j], 2.0);
      }
    }
  }
}

TEST(RadioSimulator, LikelihoodDegradesWithDistance) {
  // Average v over near vs far links: physics must make far links worse.
  RadioSimulator sim(radio_net(), radio_config());
  const auto& scns = sim.geometry().scn_positions();
  double near_sum = 0.0, far_sum = 0.0;
  int near_n = 0, far_n = 0;
  for (int t = 1; t <= 40; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto& wds = sim.geometry().wd_positions();
    for (std::size_t m = 0; m < slot.info.coverage.size(); ++m) {
      for (std::size_t j = 0; j < slot.info.coverage[m].size(); ++j) {
        const auto& task =
            slot.info.tasks[static_cast<std::size_t>(slot.info.coverage[m][j])];
        const auto& wd = wds[static_cast<std::size_t>(task.wd_id)];
        const double d = std::hypot(scns[m].x - wd.x, scns[m].y - wd.y);
        if (d < 0.15) {
          near_sum += slot.real.v[m][j];
          ++near_n;
        } else if (d > 0.3) {
          far_sum += slot.real.v[m][j];
          ++far_n;
        }
      }
    }
  }
  ASSERT_GT(near_n, 20);
  ASSERT_GT(far_n, 20);
  EXPECT_GT(near_sum / near_n, far_sum / far_n + 0.05);
}

TEST(RadioSimulator, TaskValueConsistentAcrossScns) {
  // u is a property of the task: every covering SCN must see the same
  // value in a slot.
  RadioSimulator sim(radio_net(), radio_config());
  const auto slot = sim.generate_slot(1);
  std::vector<double> value(slot.info.tasks.size(), -1.0);
  for (std::size_t m = 0; m < slot.info.coverage.size(); ++m) {
    for (std::size_t j = 0; j < slot.info.coverage[m].size(); ++j) {
      const auto task = static_cast<std::size_t>(slot.info.coverage[m][j]);
      if (value[task] < 0.0) {
        value[task] = slot.real.u[m][j];
      } else {
        EXPECT_DOUBLE_EQ(value[task], slot.real.u[m][j]);
      }
    }
  }
}

TEST(RadioSimulator, DeterministicPerSeed) {
  RadioSimulator a(radio_net(), radio_config());
  RadioSimulator b(radio_net(), radio_config());
  for (int t = 1; t <= 5; ++t) {
    const auto sa = a.generate_slot(t);
    const auto sb = b.generate_slot(t);
    EXPECT_EQ(sa.info.coverage, sb.info.coverage);
    EXPECT_EQ(sa.real.v, sb.real.v);
    EXPECT_EQ(sa.real.u, sb.real.u);
  }
}

TEST(RadioSimulator, NominalRateDecreasesWithDistance) {
  RadioSimulator sim(radio_net(), radio_config());
  // Near links saturate at the spectral-efficiency ceiling; compare a
  // ceiling-limited link against one deep in the budget-limited regime.
  EXPECT_GT(sim.nominal_rate_mbps(50.0), sim.nominal_rate_mbps(3000.0));
  EXPECT_GE(sim.nominal_rate_mbps(10000.0), 0.0);
}

TEST(RadioSimulator, ValidatesConfig) {
  auto config = radio_config();
  config.airtime_per_task_s = 0.0;
  EXPECT_THROW(RadioSimulator(radio_net(), config), std::invalid_argument);
}

TEST(RadioSimulator, HarnessRunsLfscOnRadioWorld) {
  // SlotSource integration: the standard runner and policies work
  // unchanged on the physics-driven world, and the Oracle beats Random.
  RadioSimulator sim(radio_net(), radio_config());
  auto net = radio_net();
  OraclePolicy oracle(net);
  LfscConfig lfsc_config;
  lfsc_config.horizon = 200;
  lfsc_config.expected_tasks_per_scn = 30;
  LfscPolicy lfsc(net, lfsc_config);
  Policy* policies[] = {&oracle, &lfsc};
  const auto result = run_experiment(sim, policies, {.horizon = 200});
  EXPECT_GT(result.find("Oracle").total_reward(), 0.0);
  EXPECT_GT(result.find("LFSC").total_reward(), 0.0);
  EXPECT_GE(result.find("Oracle").total_reward(),
            result.find("LFSC").total_reward());
}

TEST(RadioSimulator, BlockageInterruptsTasks) {
  // With extreme blockage density, most links collapse to v = 0.
  auto config = radio_config();
  config.link.blockage_rate_per_m = 0.1;
  config.link.blockage_loss_db = 60.0;
  RadioSimulator sim(radio_net(), config);
  int zero = 0, total = 0;
  for (int t = 1; t <= 10; ++t) {
    const auto slot = sim.generate_slot(t);
    for (const auto& row : slot.real.v) {
      for (const double v : row) {
        zero += v == 0.0 ? 1 : 0;
        ++total;
      }
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(zero) / total, 0.5);
}

}  // namespace
}  // namespace lfsc
