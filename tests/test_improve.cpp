// Shift-swap improver properties (DESIGN.md §15): never worse than the
// greedy it starts from, constraint-preserving by construction, byte-
// identical to its input when no move is accepted, and deadline-obedient
// so the anytime contract holds under a slot budget.
#include "solver/improve.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "harness/paper_setup.h"
#include "lfsc/lfsc_policy.h"
#include "metrics/metrics.h"
#include "solver/greedy_assignment.h"
#include "solver/min_cost_flow.h"

namespace lfsc {
namespace {

Edge make_edge(int scn, int task, double weight, int local) {
  Edge e;
  e.scn = scn;
  e.task = task;
  e.local = local;
  e.weight = weight;
  return e;
}

/// Assignment weight with local == task generators: each (scn, local)
/// resolves to its best edge, matching the improver's duplicate rule.
double weight_of(const Assignment& a, const std::vector<Edge>& edges,
                 int num_scns, int num_tasks) {
  std::vector<std::vector<double>> best(
      static_cast<std::size_t>(num_scns),
      std::vector<double>(static_cast<std::size_t>(num_tasks), 0.0));
  for (const Edge& e : edges) {
    auto& slot =
        best[static_cast<std::size_t>(e.scn)][static_cast<std::size_t>(e.local)];
    if (e.weight > slot) slot = e.weight;
  }
  double sum = 0.0;
  for (std::size_t m = 0; m < a.selected.size(); ++m) {
    for (const int local : a.selected[m]) {
      sum += best[m][static_cast<std::size_t>(local)];
    }
  }
  return sum;
}

/// The canonical swap-improvable instance: greedy takes (m0, a) at 2.0
/// and leaves b with its weak (m1, b) edge; exchanging a and b across
/// the two saturated SCNs gains 0.85.
std::vector<Edge> swap_instance() {
  return {make_edge(0, 0, 2.0, 0), make_edge(0, 1, 1.9, 1),
          make_edge(1, 0, 1.95, 0), make_edge(1, 1, 1.0, 1)};
}

TEST(ShiftSwap, FindsTheProfitableSwap) {
  const auto edges = swap_instance();
  auto a = greedy_select(2, 2, 1, edges);
  ASSERT_EQ(a.selected[0], (std::vector<int>{0}));  // task 0 at 2.0
  ASSERT_EQ(a.selected[1], (std::vector<int>{1}));  // task 1 at 1.0

  ShiftSwapScratch scratch;
  const auto stats =
      improve_shift_swap(2, 2, 1, edges, a, ShiftSwapOptions{}, scratch);
  EXPECT_EQ(stats.swaps, 1);
  EXPECT_NEAR(stats.gained, 0.85, 1e-12);
  EXPECT_FALSE(stats.deadline_hit);
  EXPECT_EQ(a.selected[0], (std::vector<int>{1}));  // task 1 at 1.9
  EXPECT_EQ(a.selected[1], (std::vector<int>{0}));  // task 0 at 1.95
}

TEST(ShiftSwap, NoMoveLeavesInputByteIdentical) {
  // Single SCN: no shift target, no swap partner — the improver must
  // return without touching the assignment vectors at all.
  std::vector<Edge> edges;
  RngStream rng(7);
  for (int i = 0; i < 20; ++i) edges.push_back(make_edge(0, i, rng.uniform(), i));
  auto a = greedy_select(1, 20, 5, edges);
  const auto before = a;
  ShiftSwapScratch scratch;
  const auto stats =
      improve_shift_swap(1, 20, 5, edges, a, ShiftSwapOptions{}, scratch);
  EXPECT_EQ(stats.moves(), 0);
  EXPECT_EQ(stats.gained, 0.0);
  EXPECT_EQ(a.selected, before.selected);
}

TEST(ShiftSwap, ImmediateDeadlineStopsBeforeAnyMove) {
  const auto edges = swap_instance();
  auto a = greedy_select(2, 2, 1, edges);
  const auto before = a;
  ShiftSwapOptions opts;
  opts.deadline = [] { return true; };
  ShiftSwapScratch scratch;
  const auto stats = improve_shift_swap(2, 2, 1, edges, a, opts, scratch);
  EXPECT_TRUE(stats.deadline_hit);
  EXPECT_EQ(stats.moves(), 0);
  EXPECT_EQ(a.selected, before.selected);
}

TEST(ShiftSwap, DeadlineIsPolledMidPass) {
  // A deadline that fires on the N-th poll stops the search between
  // candidate evaluations; whatever was applied so far must still be a
  // feasible assignment no worse than the input.
  RngStream rng(11);
  std::vector<Edge> edges;
  const int scns = 6, tasks = 40, c = 3;
  for (int m = 0; m < scns; ++m) {
    for (int i = 0; i < tasks; ++i) {
      if (rng.uniform() < 0.5) edges.push_back(make_edge(m, i, rng.uniform(), i));
    }
  }
  auto greedy = greedy_select(scns, tasks, c, edges);
  const double greedy_w = weight_of(greedy, edges, scns, tasks);
  for (const int fire_after : {1, 2, 5, 50}) {
    auto a = greedy;
    int polls = 0;
    ShiftSwapOptions opts;
    opts.check_stride = 8;
    opts.deadline = [&polls, fire_after] { return ++polls >= fire_after; };
    ShiftSwapScratch scratch;
    improve_shift_swap(scns, tasks, c, edges, a, opts, scratch);
    EXPECT_GT(polls, 0);
    EXPECT_GE(weight_of(a, edges, scns, tasks), greedy_w - 1e-12);
    std::set<int> seen;
    for (std::size_t m = 0; m < a.selected.size(); ++m) {
      EXPECT_LE(a.selected[m].size(), static_cast<std::size_t>(c));  // (1a)
      for (const int local : a.selected[m]) {
        EXPECT_TRUE(seen.insert(local).second);  // (1b): local == task
      }
    }
  }
}

TEST(ShiftSwap, FrozenScnsPinBothEndpoints) {
  const auto edges = swap_instance();
  for (const int frozen_scn : {0, 1}) {
    auto a = greedy_select(2, 2, 1, edges);
    const auto before = a;
    std::vector<std::uint8_t> frozen(2, 0);
    frozen[static_cast<std::size_t>(frozen_scn)] = 1;
    ShiftSwapOptions opts;
    opts.frozen_scns = frozen;
    ShiftSwapScratch scratch;
    const auto stats = improve_shift_swap(2, 2, 1, edges, a, opts, scratch);
    // The only profitable move swaps across both SCNs; freezing either
    // one must veto it.
    EXPECT_EQ(stats.moves(), 0) << "frozen scn " << frozen_scn;
    EXPECT_EQ(a.selected, before.selected);
  }
}

TEST(ShiftSwap, DuplicateEdgesCollapseToTheBest) {
  auto edges = swap_instance();
  // Parallel edges on existing (scn, local) pairs with junk weights must
  // not confuse the parse or the gain accounting.
  edges.push_back(make_edge(0, 0, 0.01, 0));
  edges.push_back(make_edge(1, 1, 0.02, 1));
  auto a = greedy_select(2, 2, 1, edges);
  ShiftSwapScratch scratch;
  const auto stats =
      improve_shift_swap(2, 2, 1, edges, a, ShiftSwapOptions{}, scratch);
  EXPECT_EQ(stats.swaps, 1);
  EXPECT_NEAR(stats.gained, 0.85, 1e-12);
}

TEST(ShiftSwap, MalformedAssignmentThrowsWithoutMutation) {
  const auto edges = swap_instance();
  ShiftSwapScratch scratch;

  // Capacity violation (1a).
  Assignment over;
  over.selected = {{0, 1}, {}};
  auto copy = over;
  EXPECT_THROW(improve_shift_swap(2, 2, 1, edges, over, ShiftSwapOptions{},
                                  scratch),
               std::invalid_argument);
  EXPECT_EQ(over.selected, copy.selected);

  // Unknown (scn, local) pair.
  Assignment unknown;
  unknown.selected = {{7}, {}};
  copy = unknown;
  EXPECT_THROW(improve_shift_swap(2, 2, 1, edges, unknown, ShiftSwapOptions{},
                                  scratch),
               std::invalid_argument);
  EXPECT_EQ(unknown.selected, copy.selected);

  // Task assigned twice (1b): local 0 names task 0 on both SCNs.
  Assignment twice;
  twice.selected = {{0}, {0}};
  copy = twice;
  EXPECT_THROW(improve_shift_swap(2, 2, 1, edges, twice, ShiftSwapOptions{},
                                  scratch),
               std::invalid_argument);
  EXPECT_EQ(twice.selected, copy.selected);

  // Wrong SCN count, bad sizes, bad frozen span.
  Assignment wrong;
  wrong.selected = {{}};
  EXPECT_THROW(improve_shift_swap(2, 2, 1, edges, wrong, ShiftSwapOptions{},
                                  scratch),
               std::invalid_argument);
  Assignment ok;
  ok.selected = {{}, {}};
  EXPECT_THROW(improve_shift_swap(-1, 2, 1, edges, ok, ShiftSwapOptions{},
                                  scratch),
               std::invalid_argument);
  ShiftSwapOptions bad_frozen;
  const std::vector<std::uint8_t> one(1, 0);
  bad_frozen.frozen_scns = one;
  EXPECT_THROW(improve_shift_swap(2, 2, 1, edges, ok, bad_frozen, scratch),
               std::invalid_argument);

  // Malformed edges: out-of-range endpoint, non-finite weight.
  const std::vector<Edge> out_of_range{make_edge(5, 0, 1.0, 0)};
  EXPECT_THROW(improve_shift_swap(2, 2, 1, out_of_range, ok,
                                  ShiftSwapOptions{}, scratch),
               std::out_of_range);
  const std::vector<Edge> nan_weight{
      make_edge(0, 0, std::numeric_limits<double>::quiet_NaN(), 0)};
  EXPECT_THROW(improve_shift_swap(2, 2, 1, nan_weight, ok, ShiftSwapOptions{},
                                  scratch),
               std::invalid_argument);
}

// Property sweep over random shapes: improved >= greedy, improved <=
// exact optimum, (1a)/(1b) always.
struct ImproveParam {
  int scns;
  int tasks;
  int capacity;
  double density;
};

class ImprovePropertyTest : public ::testing::TestWithParam<ImproveParam> {};

TEST_P(ImprovePropertyTest, NeverWorseAndFeasible) {
  const auto param = GetParam();
  RngStream rng(static_cast<std::uint64_t>(param.scns * 131 + param.tasks));
  ShiftSwapScratch scratch;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Edge> edges;
    for (int m = 0; m < param.scns; ++m) {
      for (int i = 0; i < param.tasks; ++i) {
        if (rng.uniform() < param.density) {
          edges.push_back(make_edge(m, i, rng.uniform(0.01, 1.0), i));
        }
      }
    }
    auto a = greedy_select(param.scns, param.tasks, param.capacity, edges);
    const double greedy_w = weight_of(a, edges, param.scns, param.tasks);
    const auto stats = improve_shift_swap(param.scns, param.tasks,
                                          param.capacity, edges, a,
                                          ShiftSwapOptions{}, scratch);
    const double improved_w = weight_of(a, edges, param.scns, param.tasks);
    EXPECT_GE(stats.gained, 0.0);
    EXPECT_NEAR(improved_w, greedy_w + stats.gained, 1e-9);
    const auto exact = max_weight_b_matching(param.scns, param.tasks,
                                             param.capacity, edges);
    EXPECT_LE(improved_w, exact.total_weight + 1e-9);
    std::set<int> seen;
    for (std::size_t m = 0; m < a.selected.size(); ++m) {
      EXPECT_LE(a.selected[m].size(),
                static_cast<std::size_t>(param.capacity));  // (1a)
      for (const int local : a.selected[m]) {
        EXPECT_TRUE(seen.insert(local).second);  // (1b): local == task
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ImprovePropertyTest,
    ::testing::Values(ImproveParam{2, 10, 1, 0.9}, ImproveParam{4, 30, 3, 0.5},
                      ImproveParam{6, 60, 5, 0.3}, ImproveParam{8, 40, 2, 0.6},
                      ImproveParam{3, 25, 4, 0.8}));

// ---------------------------------------------------------------------
// Policy integration: with `improve` set but no slot budget, the slot
// path must stay bit-identical to a plain-greedy policy for any
// parallel_scns x shards combination — the improver gate requires a
// live budget, so no clock is read and no assignment is touched.
// ---------------------------------------------------------------------

struct RunResult {
  double cumulative_reward = 0.0;
  std::string state;
};

RunResult run_policy(bool improve, bool parallel, ThreadPool* pool, int shards,
                     int slots) {
  auto s = small_setup();
  s.lfsc.improve = improve;
  s.lfsc.parallel_scns = parallel;
  s.lfsc.pool = pool;
  s.lfsc.shards = shards;
  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);
  RunResult out;
  for (int t = 1; t <= slots; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto assignment = policy.select(slot.info);
    out.cumulative_reward += evaluate_slot(slot, assignment, s.net).reward;
    policy.observe(slot.info, assignment, make_feedback(slot, assignment));
  }
  std::ostringstream blob;
  policy.save(blob);
  out.state = blob.str();
  return out;
}

TEST(ImprovePolicy, BudgetUnsetIsBitIdenticalToGreedyForAnyShardCount) {
  constexpr int kSlots = 60;
  const RunResult plain = run_policy(false, false, nullptr, 0, kSlots);
  ThreadPool pool(3);
  const RunResult serial = run_policy(true, false, nullptr, 0, kSlots);
  const RunResult sharded1 = run_policy(true, true, &pool, 1, kSlots);
  const RunResult sharded5 = run_policy(true, true, &pool, 5, kSlots);
  EXPECT_EQ(plain.state, serial.state);
  EXPECT_EQ(plain.state, sharded1.state);
  EXPECT_EQ(plain.state, sharded5.state);
  EXPECT_EQ(plain.cumulative_reward, serial.cumulative_reward);
  EXPECT_EQ(plain.cumulative_reward, sharded1.cumulative_reward);
  EXPECT_EQ(plain.cumulative_reward, sharded5.cumulative_reward);
  EXPECT_GT(plain.cumulative_reward, 0.0);
}

TEST(ImprovePolicy, BudgetedImproverRunsAndKeepsTheSlotPathHealthy) {
  auto s = small_setup();
  s.lfsc.improve = true;
  s.lfsc.overload.slot_budget_us = 50'000;  // roomy: improver gets leftover
  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);
  double reward = 0.0;
  for (int t = 1; t <= 40; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto assignment = policy.select(slot.info);
    std::set<std::pair<std::size_t, int>> seen;
    for (std::size_t m = 0; m < assignment.selected.size(); ++m) {
      EXPECT_LE(static_cast<int>(assignment.selected[m].size()),
                s.net.capacity_c);
      for (const int local : assignment.selected[m]) {
        EXPECT_TRUE(seen.insert({m, local}).second);
      }
    }
    reward += evaluate_slot(slot, assignment, s.net).reward;
    policy.observe(slot.info, assignment, make_feedback(slot, assignment));
  }
  EXPECT_GT(reward, 0.0);
}

TEST(ImprovePolicy, RejectsBadImproveBudgetFraction) {
  auto s = small_setup();
  s.lfsc.improve_budget_fraction = 0.0;
  EXPECT_THROW(LfscPolicy(s.net, s.lfsc), std::invalid_argument);
  s.lfsc.improve_budget_fraction = 1.5;
  EXPECT_THROW(LfscPolicy(s.net, s.lfsc), std::invalid_argument);
  s.lfsc.improve_budget_fraction =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(LfscPolicy(s.net, s.lfsc), std::invalid_argument);
}

}  // namespace
}  // namespace lfsc
