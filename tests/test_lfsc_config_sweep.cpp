// Property sweep over LFSC's configuration space: for every corner of
// (h_T, gamma, eta_scale, Lagrangian, edge mode) the invariants must
// hold — valid assignments, probability-vector sanity, finite positive
// weights, bounded multipliers. These are the guarantees Alg. 1-3 rely
// on regardless of tuning.
#include <gtest/gtest.h>

#include <cmath>

#include "harness/paper_setup.h"
#include "lfsc/lfsc_policy.h"
#include "metrics/metrics.h"

namespace lfsc {
namespace {

struct ConfigCase {
  const char* label;
  std::size_t parts_per_dim;
  double gamma;
  double eta_scale;
  bool use_lagrangian;
  bool deterministic_edges;
};

ConfigCase kCases[] = {
    {"defaults", 3, 0.0, 1.0, true, false},
    {"coarse_partition", 1, 0.0, 1.0, true, false},
    {"fine_partition", 5, 0.0, 1.0, true, false},
    {"tiny_gamma", 3, 0.001, 1.0, true, false},
    {"huge_gamma", 3, 1.0, 1.0, true, false},
    {"hot_eta", 3, 0.1, 10.0, true, false},
    {"cold_eta", 3, 0.1, 0.01, true, false},
    {"no_lagrangian", 3, 0.0, 1.0, false, false},
    {"deterministic_edges", 3, 0.0, 1.0, true, true},
    {"deterministic_no_lagrangian", 2, 0.05, 2.0, false, true},
};

class LfscConfigSweep : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(LfscConfigSweep, InvariantsHoldOver200Slots) {
  const auto& param = GetParam();
  PaperSetup s = small_setup();
  s.lfsc.parts_per_dim = param.parts_per_dim;
  s.lfsc.gamma = param.gamma;
  s.lfsc.eta_scale = param.eta_scale;
  s.lfsc.use_lagrangian = param.use_lagrangian;
  s.lfsc.deterministic_edges = param.deterministic_edges;

  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);

  for (int t = 1; t <= 200; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto assignment = policy.select(slot.info);
    ASSERT_EQ(validate_assignment(slot.info, assignment, s.net), std::nullopt)
        << param.label << " t=" << t;

    // Probability vectors: valid marginals summing to min(c, |D_mt|).
    for (int m = 0; m < s.net.num_scns; ++m) {
      const auto& probs = policy.last_probabilities(m);
      double sum = 0.0;
      for (const double p : probs) {
        ASSERT_GE(p, 0.0) << param.label;
        ASSERT_LE(p, 1.0 + 1e-9) << param.label;
        sum += p;
      }
      const double expected = std::min<double>(
          static_cast<double>(s.net.capacity_c),
          static_cast<double>(probs.size()));
      ASSERT_NEAR(sum, expected, 1e-6) << param.label << " scn=" << m;
    }

    policy.observe(slot.info, assignment, make_feedback(slot, assignment));

    // Weights finite, positive, max-normalized; multipliers boxed.
    for (int m = 0; m < s.net.num_scns; ++m) {
      double max_w = 0.0;
      for (const double w : policy.weights(m)) {
        ASSERT_TRUE(std::isfinite(w)) << param.label;
        ASSERT_GT(w, 0.0) << param.label;
        max_w = std::max(max_w, w);
      }
      ASSERT_NEAR(max_w, 1.0, 1e-9) << param.label;
      ASSERT_GE(policy.lambda_qos(m), 0.0);
      ASSERT_LE(policy.lambda_qos(m), s.lfsc.lambda_max);
      ASSERT_GE(policy.lambda_resource(m), 0.0);
      ASSERT_LE(policy.lambda_resource(m), s.lfsc.lambda_max);
    }
  }
}

TEST_P(LfscConfigSweep, NoLagrangianKeepsMultipliersUpdatedButUnused) {
  // Even with the Lagrangian disabled, the dual state machinery runs
  // (cheap) — the ablation only removes the terms from the weight update.
  const auto& param = GetParam();
  if (param.use_lagrangian) GTEST_SKIP();
  PaperSetup s = small_setup();
  s.lfsc.use_lagrangian = false;
  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);
  for (int t = 1; t <= 50; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto a = policy.select(slot.info);
    policy.observe(slot.info, a, make_feedback(slot, a));
  }
  // Weights must still be learnable (not all stuck at the initial 1.0).
  int changed = 0;
  for (const double w : policy.weights(0)) {
    if (std::fabs(w - 1.0) > 1e-12) ++changed;
  }
  EXPECT_GT(changed, 0);
}

INSTANTIATE_TEST_SUITE_P(ConfigSpace, LfscConfigSweep,
                         ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<ConfigCase>& param_info) {
                           return std::string(param_info.param.label);
                         });

}  // namespace
}  // namespace lfsc
