#include "harness/replication.h"

#include <gtest/gtest.h>

namespace lfsc {
namespace {

TEST(SummarizeMetric, MeanStddevCi) {
  const auto s = summarize_metric({2.0, 4.0, 6.0, 8.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.581988897, 1e-8);
  EXPECT_NEAR(s.ci95, 1.96 * 2.581988897 / 2.0, 1e-8);
  EXPECT_EQ(s.replicates, 4u);
}

TEST(SummarizeMetric, SingleValueHasNoInterval) {
  const auto s = summarize_metric({3.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.ci95, 0.0);
}

TEST(SummarizeMetric, ToStringFormat) {
  // mean 2, stddev sqrt(2), ci95 = 1.96*sqrt(2)/sqrt(2) = 1.96 -> "2.0".
  const auto s = summarize_metric({1.0, 3.0});
  EXPECT_EQ(s.to_string(1), "2.0 ± 2.0");
  EXPECT_EQ(s.to_string(2), "2.00 ± 1.96");
}

TEST(Replication, AggregatesAcrossSeeds) {
  auto s = small_setup();
  const auto result = replicate_paper_experiment(s, /*horizon=*/150,
                                                 /*replicates=*/3);
  EXPECT_EQ(result.replicates, 3u);
  EXPECT_EQ(result.horizon, 150);
  ASSERT_EQ(result.policies.size(), 5u);
  for (const auto& p : result.policies) {
    EXPECT_GT(p.reward.mean, 0.0) << p.name;
    EXPECT_EQ(p.reward.replicates, 3u);
    // Different worlds give different totals, so spread is nonzero.
    EXPECT_GT(p.reward.stddev, 0.0) << p.name;
    EXPECT_GE(p.performance_ratio.mean, 0.0);
    EXPECT_LE(p.performance_ratio.mean, 1.0);
  }
}

TEST(Replication, FindByName) {
  auto s = small_setup();
  const auto result = replicate_paper_experiment(s, 50, 2);
  EXPECT_EQ(result.find("LFSC").name, "LFSC");
  EXPECT_THROW(result.find("missing"), std::out_of_range);
}

TEST(Replication, OracleDominatesRandomInEveryWorld) {
  auto s = small_setup();
  const auto result = replicate_paper_experiment(s, 200, 3);
  EXPECT_GT(result.find("Oracle").reward.mean,
            result.find("Random").reward.mean);
  EXPECT_LT(result.find("Oracle").resource_violation.mean, 1e-9);
}

TEST(Replication, RejectsZeroReplicates) {
  auto s = small_setup();
  EXPECT_THROW(replicate_paper_experiment(s, 10, 0), std::invalid_argument);
}

TEST(Replication, DeterministicForFixedBaseSeed) {
  auto s = small_setup();
  const auto a = replicate_paper_experiment(s, 60, 2, /*base_seed=*/5);
  const auto b = replicate_paper_experiment(s, 60, 2, /*base_seed=*/5);
  for (std::size_t k = 0; k < a.policies.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.policies[k].reward.mean, b.policies[k].reward.mean);
  }
}

}  // namespace
}  // namespace lfsc
