#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "harness/paper_setup.h"

namespace lfsc {
namespace {

Simulator make_small() {
  return small_setup().make_simulator();
}

TEST(Simulator, SlotHasConsistentShape) {
  auto sim = make_small();
  const auto slot = sim.generate_slot(1);
  const auto scns = slot.info.coverage.size();
  EXPECT_EQ(scns, 4u);
  ASSERT_EQ(slot.real.u.size(), scns);
  ASSERT_EQ(slot.real.v.size(), scns);
  ASSERT_EQ(slot.real.q.size(), scns);
  for (std::size_t m = 0; m < scns; ++m) {
    EXPECT_EQ(slot.real.u[m].size(), slot.info.coverage[m].size());
    EXPECT_EQ(slot.real.v[m].size(), slot.info.coverage[m].size());
    EXPECT_EQ(slot.real.q[m].size(), slot.info.coverage[m].size());
  }
  EXPECT_EQ(slot.info.t, 1);
}

TEST(Simulator, RealizationsWithinModelRanges) {
  auto sim = make_small();
  for (int t = 1; t <= 20; ++t) {
    const auto slot = sim.generate_slot(t);
    for (std::size_t m = 0; m < slot.real.u.size(); ++m) {
      for (std::size_t j = 0; j < slot.real.u[m].size(); ++j) {
        EXPECT_GE(slot.real.u[m][j], 0.0);
        EXPECT_LE(slot.real.u[m][j], 1.0);
        EXPECT_GE(slot.real.v[m][j], 0.0);
        EXPECT_LE(slot.real.v[m][j], 1.0);
        EXPECT_GE(slot.real.q[m][j], 1.0);
        EXPECT_LE(slot.real.q[m][j], 2.0);
      }
    }
  }
}

TEST(Simulator, SameSeedReproducesSlots) {
  auto a = make_small();
  auto b = make_small();
  for (int t = 1; t <= 10; ++t) {
    const auto sa = a.generate_slot(t);
    const auto sb = b.generate_slot(t);
    ASSERT_EQ(sa.info.tasks.size(), sb.info.tasks.size());
    EXPECT_EQ(sa.info.coverage, sb.info.coverage);
    EXPECT_EQ(sa.real.u, sb.real.u);
    EXPECT_EQ(sa.real.v, sb.real.v);
    EXPECT_EQ(sa.real.q, sb.real.q);
  }
}

TEST(Simulator, SlotsAreIndependentOfGenerationOrder) {
  // Abstract coverage is stateless, so slot 5 is identical whether or not
  // slots 1-4 were generated first.
  auto a = make_small();
  auto b = make_small();
  for (int t = 1; t <= 4; ++t) a.generate_slot(t);
  const auto sa = a.generate_slot(5);
  const auto sb = b.generate_slot(5);
  EXPECT_EQ(sa.info.coverage, sb.info.coverage);
  EXPECT_EQ(sa.real.u, sb.real.u);
}

TEST(Simulator, DifferentSlotsDiffer) {
  auto sim = make_small();
  const auto s1 = sim.generate_slot(1);
  const auto s2 = sim.generate_slot(2);
  EXPECT_NE(s1.info.coverage, s2.info.coverage);
}

TEST(Simulator, ForkReproducesOriginal) {
  auto sim = make_small();
  auto fork = sim.fork();
  const auto sa = sim.generate_slot(3);
  const auto sb = fork.generate_slot(3);
  EXPECT_EQ(sa.info.coverage, sb.info.coverage);
  EXPECT_EQ(sa.real.v, sb.real.v);
}

TEST(Simulator, RejectsScnCountMismatch) {
  PaperSetup s = small_setup();
  AbstractCoverageConfig cov = s.coverage;
  cov.num_scns = 3;  // != net.num_scns (4)
  EXPECT_THROW(Simulator(s.net, s.env, std::make_unique<AbstractCoverage>(cov)),
               std::invalid_argument);
}

TEST(Simulator, RejectsNullCoverage) {
  PaperSetup s = small_setup();
  EXPECT_THROW(Simulator(s.net, s.env, nullptr), std::invalid_argument);
}

TEST(Simulator, PaperScaleSlotShape) {
  PaperSetup s;  // the full 30-SCN setup
  auto sim = s.make_simulator();
  const auto slot = sim.generate_slot(1);
  EXPECT_EQ(slot.info.coverage.size(), 30u);
  for (const auto& c : slot.info.coverage) {
    EXPECT_GE(c.size(), 35u);
    EXPECT_LE(c.size(), 100u);
  }
}

}  // namespace
}  // namespace lfsc
