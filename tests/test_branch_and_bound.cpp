#include "solver/branch_and_bound.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/rng.h"

namespace lfsc {
namespace {

Edge make_edge(int scn, int task, double weight) {
  Edge e;
  e.scn = scn;
  e.task = task;
  e.local = task;
  e.weight = weight;
  return e;
}

TEST(BranchAndBound, TrivialSingleEdge) {
  ExactProblem p;
  p.num_scns = 1;
  p.num_tasks = 1;
  p.capacity_c = 1;
  p.edges = {make_edge(0, 0, 0.7)};
  const auto r = solve_exact(p);
  EXPECT_TRUE(r.optimal);
  EXPECT_NEAR(r.total_weight, 0.7, 1e-12);
  EXPECT_EQ(r.assignment.selected[0], (std::vector<int>{0}));
}

TEST(BranchAndBound, SkipsWhenNothingPositive) {
  ExactProblem p;
  p.num_scns = 1;
  p.num_tasks = 2;
  p.capacity_c = 2;
  p.edges = {make_edge(0, 0, -1.0), make_edge(0, 1, 0.0)};
  const auto r = solve_exact(p);
  EXPECT_DOUBLE_EQ(r.total_weight, 0.0);
  EXPECT_TRUE(r.assignment.selected[0].empty());
}

TEST(BranchAndBound, CapacityForcesChoice) {
  ExactProblem p;
  p.num_scns = 1;
  p.num_tasks = 3;
  p.capacity_c = 2;
  p.edges = {make_edge(0, 0, 0.5), make_edge(0, 1, 0.9), make_edge(0, 2, 0.7)};
  const auto r = solve_exact(p);
  EXPECT_NEAR(r.total_weight, 1.6, 1e-12);  // 0.9 + 0.7
}

TEST(BranchAndBound, ResourceConstraintBinds) {
  ExactProblem p;
  p.num_scns = 1;
  p.num_tasks = 3;
  p.capacity_c = 3;
  p.resource_beta = 2.0;
  p.edges = {make_edge(0, 0, 0.9), make_edge(0, 1, 0.8), make_edge(0, 2, 0.7)};
  p.edge_resource = {1.5, 1.5, 0.5};
  const auto r = solve_exact(p);
  // All three violate beta together; best feasible pair is {0, 2}
  // (resource 2.0, weight 1.6) — {0,1} needs 3.0.
  EXPECT_NEAR(r.total_weight, 1.6, 1e-12);
  EXPECT_EQ(r.assignment.selected[0], (std::vector<int>{0, 2}));
}

TEST(BranchAndBound, TaskUniquenessAcrossScns) {
  ExactProblem p;
  p.num_scns = 2;
  p.num_tasks = 1;
  p.capacity_c = 1;
  p.edges = {make_edge(0, 0, 0.6), make_edge(1, 0, 0.9)};
  const auto r = solve_exact(p);
  EXPECT_NEAR(r.total_weight, 0.9, 1e-12);
  EXPECT_TRUE(r.assignment.selected[0].empty());
  EXPECT_EQ(r.assignment.selected[1], (std::vector<int>{0}));
}

TEST(BranchAndBound, CrossingWeightsGlobalOptimum) {
  // Same instance where plain greedy is suboptimal.
  ExactProblem p;
  p.num_scns = 2;
  p.num_tasks = 2;
  p.capacity_c = 1;
  p.edges = {make_edge(0, 0, 0.6), make_edge(0, 1, 0.9),
             make_edge(1, 0, 0.1), make_edge(1, 1, 0.8)};
  const auto r = solve_exact(p);
  EXPECT_NEAR(r.total_weight, 1.4, 1e-12);
}

TEST(BranchAndBound, MatchesBruteForceOnTinyInstances) {
  // Exhaustive check: every task assigned to one of <=2 SCNs or skipped.
  RngStream rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const int tasks = 4 + static_cast<int>(rng.uniform_int(0, 2));
    ExactProblem p;
    p.num_scns = 2;
    p.num_tasks = tasks;
    p.capacity_c = 2;
    std::vector<std::vector<double>> w(2, std::vector<double>(
                                             static_cast<std::size_t>(tasks)));
    for (int m = 0; m < 2; ++m) {
      for (int i = 0; i < tasks; ++i) {
        const double weight = rng.uniform(0.0, 1.0);
        w[static_cast<std::size_t>(m)][static_cast<std::size_t>(i)] = weight;
        p.edges.push_back(make_edge(m, i, weight));
      }
    }
    // Brute force over 3^tasks assignments.
    double best = 0.0;
    int combos = 1;
    for (int i = 0; i < tasks; ++i) combos *= 3;
    for (int mask = 0; mask < combos; ++mask) {
      int code = mask;
      int load0 = 0, load1 = 0;
      double value = 0.0;
      bool ok = true;
      for (int i = 0; i < tasks && ok; ++i) {
        const int choice = code % 3;
        code /= 3;
        if (choice == 1) {
          value += w[0][static_cast<std::size_t>(i)];
          ok = ++load0 <= 2;
        } else if (choice == 2) {
          value += w[1][static_cast<std::size_t>(i)];
          ok = ++load1 <= 2;
        }
      }
      if (ok) best = std::max(best, value);
    }
    const auto r = solve_exact(p);
    ASSERT_TRUE(r.optimal);
    EXPECT_NEAR(r.total_weight, best, 1e-9) << "tasks=" << tasks;
  }
}

TEST(BranchAndBound, NodeBudgetTruncationIsReported) {
  RngStream rng(9);
  ExactProblem p;
  p.num_scns = 4;
  p.num_tasks = 30;
  p.capacity_c = 5;
  for (int m = 0; m < 4; ++m) {
    for (int i = 0; i < 30; ++i) {
      p.edges.push_back(make_edge(m, i, rng.uniform(0.4, 0.6)));
    }
  }
  const auto r = solve_exact(p, /*max_nodes=*/100);
  EXPECT_FALSE(r.optimal);
  EXPECT_LE(r.nodes_explored, 100u);
  EXPECT_GE(r.total_weight, 0.0);
}

TEST(BranchAndBound, ValidatesInput) {
  ExactProblem p;
  p.num_scns = -1;
  EXPECT_THROW(solve_exact(p), std::invalid_argument);
  ExactProblem q;
  q.num_scns = 1;
  q.num_tasks = 1;
  q.capacity_c = 1;
  q.edges = {make_edge(0, 0, 1.0)};
  q.edge_resource = {1.0, 2.0};  // size mismatch
  EXPECT_THROW(solve_exact(q), std::invalid_argument);
  ExactProblem r;
  r.num_scns = 1;
  r.num_tasks = 1;
  r.capacity_c = 1;
  r.edges = {make_edge(0, 5, 1.0)};  // task out of range
  EXPECT_THROW(solve_exact(r), std::out_of_range);
}

TEST(BranchAndBound, RejectsMalformedInputUpFront) {
  // Parse-don't-guess: every edge is validated before the search runs,
  // including edges the bound would prune (weight <= 0) and the
  // per-edge resource vector.
  ExactProblem skipped;
  skipped.num_scns = 1;
  skipped.num_tasks = 1;
  skipped.capacity_c = 1;
  skipped.edges = {make_edge(0, 5, -1.0)};  // bad endpoint, weight <= 0
  EXPECT_THROW(solve_exact(skipped), std::out_of_range);

  ExactProblem nan_weight;
  nan_weight.num_scns = 1;
  nan_weight.num_tasks = 1;
  nan_weight.capacity_c = 1;
  nan_weight.edges = {
      make_edge(0, 0, std::numeric_limits<double>::quiet_NaN())};
  EXPECT_THROW(solve_exact(nan_weight), std::invalid_argument);

  ExactProblem negative_local;
  negative_local.num_scns = 1;
  negative_local.num_tasks = 1;
  negative_local.capacity_c = 1;
  negative_local.edges = {make_edge(0, 0, 0.5)};
  negative_local.edges[0].local = -3;
  EXPECT_THROW(solve_exact(negative_local), std::out_of_range);

  ExactProblem nan_resource;
  nan_resource.num_scns = 1;
  nan_resource.num_tasks = 1;
  nan_resource.capacity_c = 1;
  nan_resource.edges = {make_edge(0, 0, 0.5)};
  nan_resource.edge_resource = {std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW(solve_exact(nan_resource), std::invalid_argument);
}

}  // namespace
}  // namespace lfsc
