#include "harness/runner.h"

#include <gtest/gtest.h>

#include "harness/paper_setup.h"

namespace lfsc {
namespace {

TEST(Runner, RunsAllPoliciesAndRecordsSeries) {
  auto s = small_setup();
  auto sim = s.make_simulator();
  auto owned = make_paper_policies(s);
  auto policies = policy_pointers(owned);
  const auto result = run_experiment(sim, policies, {.horizon = 50});
  ASSERT_EQ(result.series.size(), 5u);
  for (const auto& series : result.series) {
    EXPECT_EQ(series.slots(), 50u);
    EXPECT_GT(series.total_reward(), 0.0);
  }
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST(Runner, FindLocatesByNameAndThrowsOtherwise) {
  auto s = small_setup();
  auto sim = s.make_simulator();
  auto owned = make_paper_policies(s);
  auto policies = policy_pointers(owned);
  const auto result = run_experiment(sim, policies, {.horizon = 5});
  EXPECT_EQ(result.find("LFSC").name(), "LFSC");
  EXPECT_EQ(result.find("Oracle").name(), "Oracle");
  EXPECT_THROW(result.find("nope"), std::out_of_range);
}

TEST(Runner, DeterministicAcrossRuns) {
  auto s = small_setup();
  auto sim1 = s.make_simulator();
  auto owned1 = make_paper_policies(s);
  auto p1 = policy_pointers(owned1);
  const auto r1 = run_experiment(sim1, p1, {.horizon = 40});

  auto sim2 = s.make_simulator();
  auto owned2 = make_paper_policies(s);
  auto p2 = policy_pointers(owned2);
  const auto r2 = run_experiment(sim2, p2, {.horizon = 40});

  for (std::size_t k = 0; k < r1.series.size(); ++k) {
    EXPECT_DOUBLE_EQ(r1.series[k].total_reward(), r2.series[k].total_reward());
    EXPECT_DOUBLE_EQ(r1.series[k].total_violation(),
                     r2.series[k].total_violation());
  }
}

TEST(Runner, RejectsNonPositiveHorizon) {
  auto s = small_setup();
  auto sim = s.make_simulator();
  auto owned = make_paper_policies(s);
  auto policies = policy_pointers(owned);
  EXPECT_THROW(run_experiment(sim, policies, {.horizon = 0}),
               std::invalid_argument);
}

// A deliberately broken policy to exercise validation.
class CheatingPolicy final : public Policy {
 public:
  std::string_view name() const noexcept override { return "Cheater"; }
  Assignment select(const SlotInfo& info) override {
    Assignment a;
    a.selected.assign(info.coverage.size(), {});
    // Select the same first task from every SCN covering it: violates (1b)
    // whenever coverage overlaps; also over-selects capacity if c == 0.
    for (std::size_t m = 0; m < info.coverage.size(); ++m) {
      if (!info.coverage[m].empty()) a.selected[m].push_back(0);
    }
    return a;
  }
};

TEST(Runner, ValidationCatchesConstraintViolations) {
  auto s = small_setup();
  s.coverage.coverage_degree = 3.0;  // strong overlap: duplicates certain
  auto sim = s.make_simulator();
  CheatingPolicy cheater;
  Policy* policies[] = {&cheater};
  EXPECT_THROW(run_experiment(sim, policies, {.horizon = 20}),
               std::logic_error);
  // With validation off the same run completes.
  auto sim2 = s.make_simulator();
  const auto result = run_experiment(
      sim2, policies, {.horizon = 20, .validate = false});
  EXPECT_EQ(result.series[0].slots(), 20u);
}

TEST(Runner, OracleDominatesRandomOnModerateHorizon) {
  auto s = small_setup();
  auto sim = s.make_simulator();
  auto owned = make_paper_policies(s);
  auto policies = policy_pointers(owned);
  const auto result = run_experiment(sim, policies, {.horizon = 200});
  EXPECT_GT(result.find("Oracle").total_reward(),
            result.find("Random").total_reward());
}

}  // namespace
}  // namespace lfsc
