// Differential tests: the optimized LfscPolicy against the naive
// reference transliteration (src/reference). The heavy randomized corpus
// lives in tools/lfsc_diff_fuzz; these tests pin a fixed seed set plus
// the harness's self-test (an injected reference bug must be caught).
#include "reference/differential.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "reference/reference_policy.h"

namespace lfsc {
namespace {

/// Fixed smoke corpus: small but varied (the instance generator derives
/// every shape parameter from the seed). Chosen once; never "fixed up"
/// to make a failure pass — a divergence here is a real bug on one side.
const std::uint64_t kCorpusSeeds[] = {
    1,      2,      3,      5,          8,         13,        21,
    1997,   86028157, 0xDEADBEEF, 0xCAFED00D, 1u << 20,  (1u << 31) + 7,
    424242, 0xFEEDFACE,
};

TEST(Differential, FixedCorpusHasNoDivergences) {
  int capped = 0;
  int exact = 0;
  int slots = 0;
  for (const std::uint64_t seed : kCorpusSeeds) {
    const DiffInstance inst = random_instance(seed);
    const DiffResult res = run_differential(inst);
    EXPECT_FALSE(res.diverged) << "seed " << seed << ": " << res.detail;
    slots += res.slots_run;
    capped += res.capped_scn_slots;
    exact += res.exact_checks;
  }
  // The corpus must actually exercise the interesting paths, or the
  // zero-divergence result is vacuous.
  EXPECT_GT(slots, 500);
  EXPECT_GT(capped, 0) << "no instance ever capped an arm";
  EXPECT_GT(exact, 0) << "no instance was small enough for solve_exact";
}

TEST(Differential, SerialOnlyCorpusMatches) {
  // The parallel/ES twins off: isolates the plain serial ref-vs-opt pair.
  DiffOptions opts;
  opts.check_parallel = false;
  opts.check_es_edges = false;
  for (const std::uint64_t seed : {7ull, 1009ull, 31337ull}) {
    const DiffResult res = run_differential(random_instance(seed), opts);
    EXPECT_FALSE(res.diverged) << "seed " << seed << ": " << res.detail;
  }
}

TEST(Differential, InjectedEpsilonOffByOneIsCaught) {
  // Self-test: perturb the reference with the classic Alg. 2 off-by-one
  // (cap one arm fewer than the consistent cut). The harness must flag a
  // divergence on a corpus that caps — otherwise the fuzzer would also
  // be blind to the same bug on the optimized side.
  DiffOptions opts;
  opts.inject_epsilon_off_by_one = true;
  bool caught = false;
  int capped = 0;
  for (const std::uint64_t seed : kCorpusSeeds) {
    const DiffResult res = run_differential(random_instance(seed), opts);
    capped += res.capped_scn_slots;
    if (res.diverged) {
      caught = true;
      break;
    }
  }
  EXPECT_TRUE(caught) << "injected off-by-one not detected ("
                      << capped << " capped SCN-slots seen)";
}

TEST(Differential, InjectionHookActuallyChangesTheCapSet) {
  // Sanity check on the hook itself: with weights concentrated enough to
  // cap, the injected reference caps one arm fewer.
  NetworkConfig net;
  net.num_scns = 1;
  net.capacity_c = 2;
  net.qos_alpha = 1.0;
  net.resource_beta = 4.0;
  LfscConfig cfg;
  cfg.gamma = 0.1;
  cfg.deterministic_edges = true;
  cfg.parts_per_dim = 2;
  cfg.eta_scale = 8.0;        // concentrate fast so the cap engages
  cfg.use_lagrangian = false;  // no penalty noise in the drive

  SlotInfo info;
  info.t = 1;
  info.tasks.resize(6);
  for (std::size_t i = 0; i < info.tasks.size(); ++i) {
    auto& task = info.tasks[i];
    task.id = static_cast<std::int64_t>(i);
    // One DISTINCT hypercube per task: an arm sharing its cube with
    // another would cap only past a share its duplicate makes
    // unreachable (w appears once per covered task in the arm vector).
    task.context.normalized = {(i & 1) != 0 ? 0.9 : 0.1,
                               (i & 2) != 0 ? 0.9 : 0.1,
                               (i & 4) != 0 ? 0.9 : 0.1};
  }
  info.coverage = {{0, 1, 2, 3, 4, 5}};

  ReferenceLfscPolicy honest(net, cfg);
  ReferenceLfscPolicy buggy(net, cfg);
  buggy.inject_epsilon_off_by_one(true);

  // Drive both with feedback that strongly favors task 0's hypercube so
  // its weight dominates and the cap engages.
  for (int t = 1; t <= 200; ++t) {
    info.t = t;
    const Assignment a = honest.select(info);
    (void)buggy.select(info);
    SlotFeedback fb;
    fb.per_scn.resize(1);
    for (const int local : a.selected[0]) {
      TaskFeedback f;
      f.local_index = local;
      f.u = local == 0 ? 1.0 : 0.01;
      f.v = local == 0 ? 1.0 : 0.01;
      f.q = 1.0;
      fb.per_scn[0].push_back(f);
    }
    honest.observe(info, a, fb);
    buggy.observe(info, a, fb);
  }
  info.t = 201;
  (void)honest.select(info);
  (void)buggy.select(info);
  ASSERT_GT(honest.last_num_capped(0), 0u)
      << "weights never concentrated enough to cap";
  EXPECT_EQ(buggy.last_num_capped(0), honest.last_num_capped(0) - 1);
}

TEST(Differential, PoisonedFeedbackInstancesStillMatch) {
  // Instances that exercise the sanitization envelope: both sides must
  // reject exactly the same observations.
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    DiffInstance inst = random_instance(seed);
    if (!inst.poison_feedback) continue;
    const DiffResult res = run_differential(inst);
    EXPECT_FALSE(res.diverged) << "seed " << seed << ": " << res.detail;
  }
}

TEST(Differential, TinySlotShapesForceAllCapped) {
  // K_m <= c every slot: the forced-selection branch on both sides.
  DiffInstance inst = random_instance(3);
  inst.min_tasks = 0;
  inst.max_tasks = inst.net.capacity_c;
  const DiffResult res = run_differential(inst);
  EXPECT_FALSE(res.diverged) << res.detail;
}

TEST(Differential, ReferenceRequiresCoordinatedPath) {
  LfscConfig cfg;
  cfg.coordinate_scns = false;
  EXPECT_THROW(ReferenceLfscPolicy(NetworkConfig{}, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace lfsc
