#include "harness/series_io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "test_util.h"

namespace lfsc {
namespace {

TEST(DownsampleIndices, FewerPointsThanData) {
  const auto idx = downsample_indices(100, 10);
  ASSERT_FALSE(idx.empty());
  EXPECT_LE(idx.size(), 11u);
  EXPECT_EQ(idx.back(), 99u);
  for (std::size_t i = 1; i < idx.size(); ++i) EXPECT_GT(idx[i], idx[i - 1]);
}

TEST(DownsampleIndices, MorePointsThanDataReturnsAll) {
  const auto idx = downsample_indices(5, 100);
  EXPECT_EQ(idx, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(DownsampleIndices, EdgeCases) {
  EXPECT_TRUE(downsample_indices(0, 10).empty());
  EXPECT_TRUE(downsample_indices(10, 0).empty());
  const auto one = downsample_indices(10, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 9u);
}

class SeriesCsvTest : public ::testing::Test {
 protected:
  ScopedTempDir tmp_;
  std::string path_ = tmp_.path("series.csv");

  std::string read() const {
    std::ifstream in(path_);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }
};

TEST_F(SeriesCsvTest, WritesHeaderAndStridedRows) {
  write_series_csv(path_,
                   {{"a", {1, 2, 3, 4, 5}}, {"b", {10, 20, 30, 40, 50}}},
                   /*stride=*/2);
  EXPECT_EQ(read(), "t,a,b\n1,1,10\n3,3,30\n5,5,50\n");
}

TEST_F(SeriesCsvTest, AlwaysIncludesFinalSlot) {
  write_series_csv(path_, {{"a", {1, 2, 3, 4}}}, /*stride=*/3);
  // rows: t=1 (idx 0), t=4 (final).
  EXPECT_EQ(read(), "t,a\n1,1\n4,4\n");
}

TEST_F(SeriesCsvTest, RejectsRaggedAndZeroStride) {
  EXPECT_THROW(write_series_csv(path_, {{"a", {1, 2}}, {"b", {1}}}),
               std::invalid_argument);
  EXPECT_THROW(write_series_csv(path_, {{"a", {1}}}, 0), std::invalid_argument);
}

TEST_F(SeriesCsvTest, EmptySeriesProducesHeaderOnly) {
  write_series_csv(path_, {{"a", {}}});
  EXPECT_EQ(read(), "t,a\n");
}

}  // namespace
}  // namespace lfsc
