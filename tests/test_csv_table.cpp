#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "common/csv.h"
#include "common/table.h"
#include "test_util.h"

namespace lfsc {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  ScopedTempDir tmp_;
  std::string path_ = tmp_.path("table.csv");
};

TEST_F(CsvWriterTest, HeaderAndRows) {
  {
    CsvWriter csv(path_);
    csv.header({"a", "b", "c"});
    csv.row({"1", "2", "3"});
    csv.row_values({0.5, 1.25, -2.0});
  }
  EXPECT_EQ(read_file(path_), "a,b,c\n1,2,3\n0.5,1.25,-2\n");
}

TEST_F(CsvWriterTest, QuotesSpecialCharacters) {
  {
    CsvWriter csv(path_);
    csv.row({"plain", "has,comma", "has\"quote", "has\nnewline"});
  }
  EXPECT_EQ(read_file(path_),
            "plain,\"has,comma\",\"has\"\"quote\",\"has\nnewline\"\n");
}

TEST_F(CsvWriterTest, LabeledRowAndCount) {
  {
    CsvWriter csv(path_);
    csv.labeled_row("LFSC", {1.0, 2.0});
    csv.labeled_row("Oracle", {3.0, 4.0});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  EXPECT_EQ(read_file(path_), "LFSC,1,2\nOracle,3,4\n");
}

TEST_F(CsvWriterTest, FormatRoundTripsAndHandlesNonFinite) {
  EXPECT_EQ(CsvWriter::format(0.1), "0.1");
  EXPECT_EQ(CsvWriter::format(-3.0), "-3");
  EXPECT_EQ(CsvWriter::format(std::nan("")), "nan");
  EXPECT_EQ(CsvWriter::format(HUGE_VAL), "inf");
  EXPECT_EQ(CsvWriter::format(-HUGE_VAL), "-inf");
}

TEST(CsvWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST(Table, AlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"x", "1.0"});
  table.add_row({"longer-name", "2.5"});
  const std::string out = table.to_string();
  // Header present, rule present, both rows present.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("longer-name  2.5"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, PadsMissingCellsAndRejectsExtra) {
  Table table({"a", "b", "c"});
  table.add_row({"only-a"});
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_THROW(table.add_row({"1", "2", "3", "4"}), std::invalid_argument);
}

TEST(Table, RequiresColumns) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace lfsc
