#include "sim/generator.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace lfsc {
namespace {

TEST(TaskGenerator, IdsAreUniqueAndMonotone) {
  TaskGenerator gen;
  RngStream rng(1);
  std::int64_t prev = -1;
  for (int i = 0; i < 1000; ++i) {
    const auto task = gen.next(rng);
    EXPECT_GT(task.id, prev);
    prev = task.id;
  }
  EXPECT_EQ(gen.tasks_created(), 1000);
}

TEST(TaskGenerator, SizesWithinPaperRanges) {
  TaskGenerator gen;
  RngStream rng(2);
  for (int i = 0; i < 5000; ++i) {
    const auto task = gen.next(rng);
    EXPECT_GE(task.context.input_mbit, 5.0);
    EXPECT_LE(task.context.input_mbit, 20.0);
    EXPECT_GE(task.context.output_mbit, 1.0);
    EXPECT_LE(task.context.output_mbit, 4.0);
  }
}

TEST(TaskGenerator, SizeMeansMatchUniform) {
  TaskGenerator gen;
  RngStream rng(3);
  double in_sum = 0, out_sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const auto task = gen.next(rng);
    in_sum += task.context.input_mbit;
    out_sum += task.context.output_mbit;
  }
  EXPECT_NEAR(in_sum / kN, 12.5, 0.1);
  EXPECT_NEAR(out_sum / kN, 2.5, 0.05);
}

TEST(TaskGenerator, AllResourceTypesAppearUniformly) {
  TaskGenerator gen;
  RngStream rng(4);
  std::array<int, 3> counts{};
  constexpr int kN = 30000;
  for (int i = 0; i < kN; ++i) {
    ++counts[static_cast<std::size_t>(gen.next(rng).context.resource)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 1.0 / 3.0, 0.02);
  }
}

TEST(TaskGenerator, CategoricalModeProducesDiscreteSizes) {
  TaskGeneratorConfig config;
  config.continuous_sizes = false;
  config.size_categories = 3;
  TaskGenerator gen(config);
  RngStream rng(5);
  std::set<double> inputs;
  for (int i = 0; i < 1000; ++i) {
    inputs.insert(gen.next(rng).context.input_mbit);
  }
  EXPECT_EQ(inputs.size(), 3u);  // exactly the three bin midpoints
  // Midpoints of [5,20] split in three: 7.5, 12.5, 17.5.
  EXPECT_TRUE(inputs.count(7.5) == 1);
  EXPECT_TRUE(inputs.count(12.5) == 1);
  EXPECT_TRUE(inputs.count(17.5) == 1);
}

TEST(TaskGenerator, WdIdIsRecorded) {
  TaskGenerator gen;
  RngStream rng(6);
  EXPECT_EQ(gen.next(rng, 17).wd_id, 17);
  EXPECT_EQ(gen.next(rng).wd_id, 0);
}

TEST(TaskGenerator, DeterministicGivenStream) {
  TaskGenerator g1, g2;
  RngStream r1(9), r2(9);
  for (int i = 0; i < 100; ++i) {
    const auto a = g1.next(r1);
    const auto b = g2.next(r2);
    EXPECT_DOUBLE_EQ(a.context.input_mbit, b.context.input_mbit);
    EXPECT_DOUBLE_EQ(a.context.output_mbit, b.context.output_mbit);
    EXPECT_EQ(a.context.resource, b.context.resource);
  }
}

}  // namespace
}  // namespace lfsc
