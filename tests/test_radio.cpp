#include <gtest/gtest.h>

#include <cmath>

#include "radio/compute.h"
#include "radio/link.h"
#include "radio/pathloss.h"

namespace lfsc {
namespace {

// --- pathloss / LoS ---

TEST(Pathloss, LosProbabilityShape) {
  EXPECT_DOUBLE_EQ(los_probability(5.0), 1.0);
  EXPECT_DOUBLE_EQ(los_probability(18.0), 1.0);
  // Monotonically decreasing beyond 18 m.
  double prev = 1.0;
  for (double d = 20.0; d <= 500.0; d += 20.0) {
    const double p = los_probability(d);
    EXPECT_LT(p, prev) << "d=" << d;
    EXPECT_GT(p, 0.0);
    prev = p;
  }
  EXPECT_LT(los_probability(500.0), 0.1);
}

TEST(Pathloss, IncreasesWithDistanceAndFrequency) {
  const double d100 = pathloss_db(100.0, true);
  const double d200 = pathloss_db(200.0, true);
  EXPECT_GT(d200, d100);
  // 21 dB/decade LoS slope: doubling the distance adds ~6.3 dB.
  EXPECT_NEAR(d200 - d100, 21.0 * std::log10(2.0), 1e-9);

  PathlossConfig high;
  high.carrier_ghz = 60.0;
  EXPECT_GT(pathloss_db(100.0, true, high), pathloss_db(100.0, true));
}

TEST(Pathloss, NlosNeverBelowLos) {
  for (double d = 10.0; d <= 1000.0; d *= 1.7) {
    EXPECT_GE(pathloss_db(d, false), pathloss_db(d, true)) << "d=" << d;
  }
}

TEST(Pathloss, ClampsBelowMinDistance) {
  EXPECT_DOUBLE_EQ(pathloss_db(1.0, true), pathloss_db(10.0, true));
}

TEST(Pathloss, DrawMatchesModelStatistics) {
  RngStream stream(1);
  constexpr double kDistance = 60.0;
  int los_count = 0;
  double loss_sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const auto draw = draw_channel(kDistance, stream);
    los_count += draw.line_of_sight ? 1 : 0;
    loss_sum += draw.pathloss_db;
  }
  EXPECT_NEAR(static_cast<double>(los_count) / kN, los_probability(kDistance),
              0.01);
  // Mean loss sits between the pure LoS and pure NLoS values.
  const double mean = loss_sum / kN;
  EXPECT_GT(mean, pathloss_db(kDistance, true) - 1.0);
  EXPECT_LT(mean, pathloss_db(kDistance, false) + 1.0);
}

// --- link budget ---

TEST(Link, NoisePowerFormula) {
  LinkConfig config;
  // -174 + 10log10(400e6) + 7 = -174 + 86.02 + 7.
  EXPECT_NEAR(noise_power_dbm(config), -80.98, 0.01);
}

TEST(Link, BeamformingGainGrowsWithArray) {
  LinkConfig small;
  small.tx_antennas = 16;
  LinkConfig large;
  large.tx_antennas = 256;
  EXPECT_GT(beamforming_gain_db(large), beamforming_gain_db(small));
  // 64x4 = 256 elements: 24.1 dB minus 3 dB misalignment.
  EXPECT_NEAR(beamforming_gain_db(LinkConfig{}), 21.08, 0.01);
}

TEST(Link, BlockageProbabilityGrowsWithDistance) {
  LinkConfig config;
  EXPECT_DOUBLE_EQ(blockage_probability(0.0, config), 0.0);
  double prev = 0.0;
  for (double d = 50.0; d <= 800.0; d += 150.0) {
    const double p = blockage_probability(d, config);
    EXPECT_GT(p, prev);
    EXPECT_LT(p, 1.0);
    prev = p;
  }
}

TEST(Link, RateDecreasesWithDistanceAndCapsAtCeiling) {
  LinkConfig config;
  // Very short link: spectral efficiency ceiling binds.
  const double near_snr = snr_db(pathloss_db(10.0, true), config);
  EXPECT_NEAR(achievable_rate_mbps(near_snr, config),
              config.bandwidth_mhz * config.max_spectral_efficiency, 1e-6);
  // Rate monotone non-increasing with distance (LoS, no shadowing).
  double prev = 1e18;
  for (double d = 20.0; d <= 2000.0; d *= 1.6) {
    const double rate =
        achievable_rate_mbps(snr_db(pathloss_db(d, true), config), config);
    EXPECT_LE(rate, prev + 1e-9) << "d=" << d;
    prev = rate;
  }
}

TEST(Link, OutageBelowDemodFloor) {
  LinkConfig config;
  EXPECT_DOUBLE_EQ(achievable_rate_mbps(-15.0, config), 0.0);
  EXPECT_GT(achievable_rate_mbps(-5.0, config), 0.0);
}

TEST(Link, DrawBlockageReducesRateOnAverage) {
  LinkConfig config;
  config.blockage_rate_per_m = 0.01;  // frequent blockers
  RngStream stream(2);
  double blocked_sum = 0.0, clear_sum = 0.0;
  int blocked_n = 0, clear_n = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto draw = draw_link(120.0, stream, config);
    if (draw.blocked) {
      blocked_sum += draw.rate_mbps;
      ++blocked_n;
    } else {
      clear_sum += draw.rate_mbps;
      ++clear_n;
    }
  }
  ASSERT_GT(blocked_n, 100);
  ASSERT_GT(clear_n, 100);
  EXPECT_LT(blocked_sum / blocked_n, 0.5 * (clear_sum / clear_n));
}

// --- compute model ---

TEST(Compute, DemandFollowsResourceType) {
  const auto cpu_task = make_context(10.0, 2.0, ResourceType::kCpu);
  const auto gpu_task = make_context(10.0, 2.0, ResourceType::kGpu);
  const auto both_task = make_context(10.0, 2.0, ResourceType::kCpuGpu);
  const auto cpu = compute_demand(cpu_task);
  const auto gpu = compute_demand(gpu_task);
  const auto both = compute_demand(both_task);
  EXPECT_GT(cpu.cpu_gcycles, 0.0);
  EXPECT_DOUBLE_EQ(cpu.gpu_gcycles, 0.0);
  EXPECT_GT(gpu.gpu_gcycles, 0.0);
  // GPU tasks still pay CPU output assembly.
  EXPECT_GT(gpu.cpu_gcycles, 0.0);
  EXPECT_LT(gpu.cpu_gcycles, cpu.cpu_gcycles);
  // Mixed pipeline splits the input across engines.
  EXPECT_GT(both.cpu_gcycles, gpu.cpu_gcycles);
  EXPECT_LT(both.gpu_gcycles, gpu.gpu_gcycles);
}

TEST(Compute, UtilizationMonotoneInInputSize) {
  double prev = -1.0;
  for (double mbit = 5.0; mbit <= 20.0; mbit += 2.5) {
    const auto ctx = make_context(mbit, 2.0, ResourceType::kCpu);
    const double util = server_utilization(ctx);
    EXPECT_GT(util, prev);
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 1.0);
    prev = util;
  }
}

TEST(Compute, QStaysOnPaperScale) {
  RngStream rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto ctx = make_context(rng.uniform(5.0, 20.0),
                                  rng.uniform(1.0, 4.0),
                                  static_cast<ResourceType>(rng.uniform_int(0, 2)));
    const double q = resource_consumption_q(ctx);
    EXPECT_GE(q, 1.0);
    EXPECT_LE(q, 2.0);
  }
}

TEST(Compute, ZeroCapacityIsSafe) {
  EdgeServerConfig broken;
  broken.cpu_gcycles_per_slot = 0.0;
  broken.gpu_gcycles_per_slot = 0.0;
  const auto ctx = make_context(10.0, 2.0, ResourceType::kCpu);
  EXPECT_DOUBLE_EQ(server_utilization(ctx, broken), 0.0);
}

}  // namespace
}  // namespace lfsc
