// Performance-overhaul regression tests (see DESIGN.md "Performance"):
//
//  * the parallel per-SCN slot path must be bit-identical to the serial
//    path for any worker count (byte-identical save() state and equal
//    cumulative reward), which the stream-keyed per-SCN RNGs guarantee;
//  * the bucketed lazy-heap greedy must produce exactly the assignment
//    of the straightforward sort-based reference, including on weight
//    ties, where the (weight desc, scn asc, task asc) tie-break decides.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "harness/paper_setup.h"
#include "lfsc/lfsc_policy.h"
#include "metrics/metrics.h"
#include "solver/greedy_assignment.h"

namespace lfsc {
namespace {

struct RunResult {
  double cumulative_reward = 0.0;
  std::string state;  ///< save() blob after the last slot
};

/// Drives `slots` slots of the small paper setup through one policy
/// configured with the given parallel settings.
RunResult run_policy(bool parallel, ThreadPool* pool, int slots) {
  auto s = small_setup();
  s.lfsc.parallel_scns = parallel;
  s.lfsc.pool = pool;
  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);
  RunResult out;
  for (int t = 1; t <= slots; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto assignment = policy.select(slot.info);
    out.cumulative_reward += evaluate_slot(slot, assignment, s.net).reward;
    policy.observe(slot.info, assignment, make_feedback(slot, assignment));
  }
  std::ostringstream blob;
  policy.save(blob);
  out.state = blob.str();
  return out;
}

TEST(SlotPathDeterminism, ParallelMatchesSerialBitExactly) {
  constexpr int kSlots = 120;
  const RunResult serial = run_policy(false, nullptr, kSlots);

  ThreadPool one(1);
  ThreadPool four(4);
  const RunResult par1 = run_policy(true, &one, kSlots);
  const RunResult par4 = run_policy(true, &four, kSlots);

  // Byte-identical learned state: weights, multipliers, everything.
  EXPECT_EQ(serial.state, par1.state);
  EXPECT_EQ(serial.state, par4.state);
  // Identical trajectory, not just identical endpoint.
  EXPECT_EQ(serial.cumulative_reward, par1.cumulative_reward);
  EXPECT_EQ(serial.cumulative_reward, par4.cumulative_reward);
  // Sanity: the run did something.
  EXPECT_GT(serial.cumulative_reward, 0.0);
  EXPECT_FALSE(serial.state.empty());
}

/// Straight-line reference for Alg. 4: sort all edges by
/// (weight desc, scn asc, task asc) and accept greedily. This is the
/// order contract the bucketed lazy-heap implementation must reproduce.
Assignment reference_greedy(int num_scns, int num_tasks, int capacity_c,
                            std::vector<Edge> edges) {
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    if (a.scn != b.scn) return a.scn < b.scn;
    return a.task < b.task;
  });
  Assignment out;
  out.selected.resize(static_cast<std::size_t>(num_scns));
  std::vector<int> load(static_cast<std::size_t>(num_scns), 0);
  std::vector<char> assigned(static_cast<std::size_t>(num_tasks), 0);
  for (const Edge& e : edges) {
    if (e.weight <= 0.0) break;
    const auto m = static_cast<std::size_t>(e.scn);
    if (load[m] >= capacity_c || assigned[static_cast<std::size_t>(e.task)]) {
      continue;
    }
    out.selected[m].push_back(e.local);
    assigned[static_cast<std::size_t>(e.task)] = 1;
    ++load[m];
  }
  for (auto& s : out.selected) std::sort(s.begin(), s.end());
  return out;
}

/// Random instance; weights are drawn from a small discrete set about
/// half the time so cross-SCN and within-SCN ties are common.
std::vector<Edge> random_instance(RngStream& rng, int num_scns, int num_tasks) {
  std::vector<Edge> edges;
  for (int m = 0; m < num_scns; ++m) {
    for (int task = 0; task < num_tasks; ++task) {
      if (!rng.bernoulli(0.4)) continue;
      Edge e;
      e.scn = m;
      e.task = task;
      e.local = static_cast<int>(edges.size());
      if (rng.bernoulli(0.5)) {
        e.weight = 0.25 * static_cast<double>(rng.uniform_int(-1, 4));
      } else {
        e.weight = rng.uniform(-0.1, 1.0);
      }
      edges.push_back(e);
    }
  }
  return edges;
}

TEST(GreedyHeapVsSortReference, IdenticalOnRandomTieHeavyInstances) {
  RngStream rng(20260807);
  GreedySelectScratch scratch;
  for (int round = 0; round < 60; ++round) {
    const int num_scns = static_cast<int>(rng.uniform_int(1, 10));
    const int num_tasks = static_cast<int>(rng.uniform_int(1, 50));
    const int capacity = static_cast<int>(rng.uniform_int(1, 6));
    const auto edges = random_instance(rng, num_scns, num_tasks);

    const Assignment expected =
        reference_greedy(num_scns, num_tasks, capacity, edges);
    const Assignment flat = greedy_select(num_scns, num_tasks, capacity, edges);
    ASSERT_EQ(flat.selected, expected.selected) << "round " << round;

    // Scratch overload, reusing buffers across rounds.
    Assignment reused;
    greedy_select(num_scns, num_tasks, capacity, edges, reused, scratch);
    ASSERT_EQ(reused.selected, expected.selected) << "round " << round;
  }
}

TEST(GreedyBucketedOverload, MatchesFlatOverload) {
  RngStream rng(77);
  GreedySelectScratch scratch;
  std::vector<GreedyBucketEntry> entries;
  std::vector<int> bucket_start;
  for (int round = 0; round < 40; ++round) {
    const int num_scns = static_cast<int>(rng.uniform_int(1, 8));
    const int num_tasks = static_cast<int>(rng.uniform_int(1, 40));
    const int capacity = static_cast<int>(rng.uniform_int(1, 5));
    const auto edges = random_instance(rng, num_scns, num_tasks);
    const Assignment expected =
        greedy_select(num_scns, num_tasks, capacity, edges);

    // Group by SCN, preserving order (random_instance emits edges in SCN
    // order already, but rebuild offsets the way a caller would).
    bucket_start.assign(static_cast<std::size_t>(num_scns) + 1, 0);
    for (const Edge& e : edges) ++bucket_start[static_cast<std::size_t>(e.scn) + 1];
    for (int m = 0; m < num_scns; ++m) {
      bucket_start[static_cast<std::size_t>(m) + 1] +=
          bucket_start[static_cast<std::size_t>(m)];
    }
    entries.resize(edges.size());
    std::vector<int> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (const Edge& e : edges) {
      entries[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.scn)]++)] =
          {e.weight, e.task, e.local};
    }

    Assignment got;
    greedy_select_bucketed(num_scns, num_tasks, capacity, bucket_start, entries,
                           got, scratch);
    ASSERT_EQ(got.selected, expected.selected) << "round " << round;
  }
}

TEST(GreedyBucketedOverload, RejectsBadOffsets) {
  GreedySelectScratch scratch;
  Assignment out;
  std::vector<GreedyBucketEntry> entries{{1.0, 0, 0}};
  std::vector<int> bucket_start{0, 1};  // sized for 1 SCN, not 2
  EXPECT_THROW(greedy_select_bucketed(2, 1, 1, bucket_start, entries, out,
                                      scratch),
               std::invalid_argument);
}

}  // namespace
}  // namespace lfsc
