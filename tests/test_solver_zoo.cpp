// AssignmentSolver registry (DESIGN.md §15): name round-trips, every
// greedy kind bit-identical to the Alg. 4 reference, the exact kinds at
// least as good — and the radix/packed cutover pinned at the
// kRadixMinEdges boundary (255/256/257 edges), on all-equal-weight ties
// and on saturated key fields, where an ordering divergence would hide.
#include "solver/assignment_solver.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "solver/min_cost_flow.h"

namespace lfsc {
namespace {

Edge make_edge(int scn, int task, double weight, int local) {
  Edge e;
  e.scn = scn;
  e.task = task;
  e.local = local;
  e.weight = weight;
  return e;
}

double weight_of(const Assignment& a, const std::vector<Edge>& edges,
                 int num_scns) {
  std::vector<std::vector<std::pair<int, double>>> best(
      static_cast<std::size_t>(num_scns));
  for (const Edge& e : edges) {
    auto& row = best[static_cast<std::size_t>(e.scn)];
    bool found = false;
    for (auto& [local, w] : row) {
      if (local == e.local) {
        if (e.weight > w) w = e.weight;
        found = true;
      }
    }
    if (!found) row.emplace_back(e.local, e.weight);
  }
  double sum = 0.0;
  for (std::size_t m = 0; m < a.selected.size(); ++m) {
    for (const int local : a.selected[m]) {
      for (const auto& [l, w] : best[m]) {
        if (l == local) sum += w;
      }
    }
  }
  return sum;
}

TEST(SolverZoo, NamesRoundTrip) {
  const std::vector<SolverKind> kinds{SolverKind::kAuto,  SolverKind::kGreedy,
                                      SolverKind::kPacked, SolverKind::kRadix,
                                      SolverKind::kFlow,  SolverKind::kBnb};
  for (const SolverKind kind : kinds) {
    SolverKind parsed = SolverKind::kAuto;
    EXPECT_TRUE(parse_solver(solver_name(kind), parsed))
        << solver_name(kind);
    EXPECT_EQ(parsed, kind);
  }
  SolverKind out = SolverKind::kAuto;
  EXPECT_FALSE(parse_solver("simplex", out));
  EXPECT_FALSE(parse_solver("", out));
  EXPECT_FALSE(parse_solver("GREEDY", out));
}

TEST(SolverZoo, EveryGreedyKindMatchesTheReference) {
  RngStream rng(17);
  GreedySelectScratch scratch;
  Assignment out;
  for (int trial = 0; trial < 6; ++trial) {
    const int scns = 3 + trial;
    const int tasks = 20 + 30 * trial;  // crosses the 256-edge auto cutover
    std::vector<Edge> edges;
    for (int m = 0; m < scns; ++m) {
      for (int i = 0; i < tasks; ++i) {
        if (rng.uniform() < 0.6) {
          // Float-quantised weights: the packed kinds compare float
          // bits, so exact-float inputs keep the double reference's
          // order identical to theirs.
          const double w =
              static_cast<double>(static_cast<float>(rng.uniform(0.01, 1.0)));
          edges.push_back(make_edge(m, i, w, i));
        }
      }
    }
    const auto reference = greedy_select(scns, tasks, 4, edges);
    for (const SolverKind kind : {SolverKind::kAuto, SolverKind::kGreedy,
                                  SolverKind::kPacked, SolverKind::kRadix}) {
      solve_assignment(kind, scns, tasks, 4, edges, out, scratch);
      EXPECT_EQ(out.selected, reference.selected)
          << solver_name(kind) << " trial " << trial << " ("
          << edges.size() << " edges)";
    }
  }
}

TEST(SolverZoo, ExactKindsAreAtLeastAsGoodAsGreedy) {
  RngStream rng(23);
  GreedySelectScratch scratch;
  Assignment out;
  for (int trial = 0; trial < 5; ++trial) {
    // Small enough that solve_exact runs to proven optimality within
    // its node budget, so bnb == flow is a hard equality.
    const int scns = 3, tasks = 16, c = 2;
    std::vector<Edge> edges;
    for (int m = 0; m < scns; ++m) {
      for (int i = 0; i < tasks; ++i) {
        if (rng.uniform() < 0.5) {
          edges.push_back(make_edge(m, i, rng.uniform(0.01, 1.0), i));
        }
      }
    }
    const auto greedy = greedy_select(scns, tasks, c, edges);
    const double greedy_w = weight_of(greedy, edges, scns);
    solve_assignment(SolverKind::kFlow, scns, tasks, c, edges, out, scratch);
    const double flow_w = weight_of(out, edges, scns);
    solve_assignment(SolverKind::kBnb, scns, tasks, c, edges, out, scratch);
    const double bnb_w = weight_of(out, edges, scns);
    EXPECT_GE(flow_w, greedy_w - 1e-9);
    // Both exact solvers run to optimality at this size: same value.
    EXPECT_NEAR(bnb_w, flow_w, 1e-9);
  }
}

// ---------------------------------------------------------------------
// Radix-cutover boundary: packed and radix must agree bit-for-bit at
// 255 / 256 / 257 edges — exactly around kRadixMinEdges, where the auto
// dispatch flips implementation.
// ---------------------------------------------------------------------

/// Builds an instance with exactly `num_edges` edges spread over
/// `scns` SCNs with the given weight generator.
template <typename WeightFn>
std::vector<Edge> boundary_instance(int num_edges, int scns, int tasks,
                                    WeightFn&& weight) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_edges));
  for (int k = 0; k < num_edges; ++k) {
    const int m = k % scns;
    const int i = k % tasks;
    edges.push_back(make_edge(m, i, weight(k), i));
  }
  return edges;
}

class RadixBoundaryTest : public ::testing::TestWithParam<int> {};

TEST_P(RadixBoundaryTest, PackedAndRadixAgreeBitForBit) {
  const int num_edges = GetParam();
  const int scns = 7, tasks = 90, c = 5;
  GreedySelectScratch scratch;
  Assignment packed, radix, autod;

  RngStream rng(static_cast<std::uint64_t>(num_edges));
  const auto random_instance = boundary_instance(
      num_edges, scns, tasks, [&](int) {
        return static_cast<double>(
            static_cast<float>(rng.uniform(0.01, 1.0)));
      });
  // All-equal weights: every comparison is a tie, so the (scn asc, task
  // asc) tie-break carries the whole ordering.
  const auto tied_instance =
      boundary_instance(num_edges, scns, tasks, [](int) { return 0.5; });
  // Two-level weights that collide at float precision: the packed key
  // compares float bits, so doubles that round to the same float must
  // tie the same way in both implementations.
  const auto float_collision_instance = boundary_instance(
      num_edges, scns, tasks,
      [](int k) { return 0.25 + (k % 2) * 1e-12; });

  const auto check = [&](const std::vector<Edge>& edges,
                         bool against_reference) {
    solve_assignment(SolverKind::kPacked, scns, tasks, c, edges, packed,
                     scratch);
    solve_assignment(SolverKind::kRadix, scns, tasks, c, edges, radix,
                     scratch);
    solve_assignment(SolverKind::kAuto, scns, tasks, c, edges, autod,
                     scratch);
    EXPECT_EQ(packed.selected, radix.selected) << num_edges << " edges";
    EXPECT_EQ(packed.selected, autod.selected) << num_edges << " edges";
    if (against_reference) {
      const auto reference = greedy_select(scns, tasks, c, edges);
      EXPECT_EQ(packed.selected, reference.selected) << num_edges << " edges";
    }
  };
  check(random_instance, true);
  check(tied_instance, true);
  // The collision instance intentionally separates double order from
  // float order, so the double-precision reference is out of scope —
  // the contract under test is packed == radix == auto.
  check(float_collision_instance, false);
}

INSTANTIATE_TEST_SUITE_P(AroundKRadixMinEdges, RadixBoundaryTest,
                         ::testing::Values(255, 256, 257));

TEST(SolverZoo, SaturatedPackedKeyFieldsStayConsistent) {
  // Task and local indices at the very top of the packed 16-bit fields,
  // plus weights at the extremes of the positive float range: the radix
  // byte passes and the packed heap must still produce the reference
  // assignment.
  const int tasks = 0x10000;  // packed limit, inclusive
  const int scns = 2, c = 2;
  std::vector<Edge> edges;
  const int kBig = 0xFFFF;
  edges.push_back(make_edge(0, kBig, 3e38, kBig));          // near FLT_MAX
  edges.push_back(make_edge(0, kBig - 1, 1e-40, kBig - 1));  // subnormal float
  edges.push_back(make_edge(1, kBig, 3e38, kBig));
  edges.push_back(make_edge(1, 0, 0.5, 0));
  edges.push_back(make_edge(0, 0, 0.5, 0));
  // Pad past kRadixMinEdges so the auto path picks radix too.
  for (int k = 0; k < 300; ++k) {
    edges.push_back(make_edge(k % scns, 1 + k % 1000, 0.25, 1 + k % 1000));
  }
  GreedySelectScratch scratch;
  Assignment packed, radix;
  solve_assignment(SolverKind::kPacked, scns, tasks, c, edges, packed,
                   scratch);
  solve_assignment(SolverKind::kRadix, scns, tasks, c, edges, radix, scratch);
  EXPECT_EQ(packed.selected, radix.selected);
  const auto reference = greedy_select(scns, tasks, c, edges);
  EXPECT_EQ(packed.selected, reference.selected);
}

TEST(SolverZoo, PackedFallsBackBeyondSixteenBitTasks) {
  // One task index past the packed field: solve_assignment must still
  // produce the reference result (wide bucketed fallback), not throw.
  const int tasks = 0x10000 + 1;
  std::vector<Edge> edges{make_edge(0, 0x10000, 0.9, 0x10000),
                          make_edge(0, 5, 0.5, 5)};
  GreedySelectScratch scratch;
  Assignment out;
  for (const SolverKind kind : {SolverKind::kAuto, SolverKind::kPacked,
                                SolverKind::kRadix}) {
    solve_assignment(kind, 1, tasks, 1, edges, out, scratch);
    EXPECT_EQ(out.selected[0], (std::vector<int>{0x10000}))
        << solver_name(kind);
  }
}

TEST(SolverZoo, RejectsMalformedInput) {
  GreedySelectScratch scratch;
  Assignment out;
  const std::vector<Edge> bad{make_edge(5, 0, 1.0, 0)};
  for (const SolverKind kind :
       {SolverKind::kAuto, SolverKind::kGreedy, SolverKind::kPacked,
        SolverKind::kRadix, SolverKind::kFlow, SolverKind::kBnb}) {
    EXPECT_THROW(solve_assignment(kind, 2, 1, 1, bad, out, scratch),
                 std::out_of_range)
        << solver_name(kind);
    EXPECT_THROW(solve_assignment(kind, -1, 1, 1, {}, out, scratch),
                 std::invalid_argument)
        << solver_name(kind);
  }
}

}  // namespace
}  // namespace lfsc
