#include "harness/paper_setup.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/policy.h"

namespace lfsc {
namespace {

TEST(PaperSetup, DefaultsMatchSection5) {
  PaperSetup s;
  EXPECT_EQ(s.net.num_scns, 30);
  EXPECT_EQ(s.net.capacity_c, 20);
  EXPECT_DOUBLE_EQ(s.net.qos_alpha, 15.0);
  EXPECT_DOUBLE_EQ(s.net.resource_beta, 27.0);
  EXPECT_EQ(s.coverage.tasks_per_scn_min, 35);
  EXPECT_EQ(s.coverage.tasks_per_scn_max, 100);
  EXPECT_DOUBLE_EQ(s.env.reward_lo, 0.0);
  EXPECT_DOUBLE_EQ(s.env.reward_hi, 1.0);
  EXPECT_DOUBLE_EQ(s.env.consumption_lo, 1.0);
  EXPECT_DOUBLE_EQ(s.env.consumption_hi, 2.0);
  EXPECT_EQ(s.lfsc.parts_per_dim, 3u);
}

TEST(PaperSetup, SettersPropagate) {
  PaperSetup s;
  s.set_num_scns(12);
  EXPECT_EQ(s.net.num_scns, 12);
  EXPECT_EQ(s.env.num_scns, 12);
  EXPECT_EQ(s.coverage.num_scns, 12);
  s.set_horizon(777);
  EXPECT_EQ(s.lfsc.horizon, 777u);
  s.set_seed(99);
  EXPECT_EQ(s.env.seed, 99u);
  EXPECT_NE(s.lfsc.seed, 99u);  // decorrelated from the world seed
}

TEST(PaperSetup, SmallSetupPreservesDensityRegime) {
  const auto s = small_setup();
  // Tasks per hypercube per SCN should be comparable to the paper scale
  // (~67 tasks / 27 cubes ≈ 2.5): the small setup must stay above ~1.
  const double mean_tasks =
      0.5 * (s.coverage.tasks_per_scn_min + s.coverage.tasks_per_scn_max);
  EXPECT_GT(mean_tasks / 27.0, 1.0);
  // Constraint scaling mirrors the paper's c : alpha : beta proportions.
  EXPECT_NEAR(s.net.qos_alpha / s.net.capacity_c, 15.0 / 20.0, 1e-12);
  EXPECT_NEAR(s.net.resource_beta / s.net.capacity_c, 27.0 / 20.0, 1e-12);
}

TEST(PaperSetup, RosterHasCanonicalOrder) {
  const auto s = small_setup();
  const auto owned = make_paper_policies(s);
  ASSERT_EQ(owned.size(), 5u);
  EXPECT_EQ(owned[0]->name(), "Oracle");
  EXPECT_EQ(owned[1]->name(), "LFSC");
  EXPECT_EQ(owned[2]->name(), "vUCB");
  EXPECT_EQ(owned[3]->name(), "FML");
  EXPECT_EQ(owned[4]->name(), "Random");
  const auto pointers = policy_pointers(owned);
  ASSERT_EQ(pointers.size(), 5u);
  EXPECT_EQ(pointers[0], owned[0].get());
}

TEST(EnvInt, ParsesAndFallsBack) {
  ::setenv("LFSC_TEST_ENV_INT", "123", 1);
  EXPECT_EQ(env_int("LFSC_TEST_ENV_INT", 7), 123);
  ::setenv("LFSC_TEST_ENV_INT", "garbage", 1);
  EXPECT_EQ(env_int("LFSC_TEST_ENV_INT", 7), 7);
  ::setenv("LFSC_TEST_ENV_INT", "-5", 1);
  EXPECT_EQ(env_int("LFSC_TEST_ENV_INT", 7), 7);  // non-positive rejected
  ::setenv("LFSC_TEST_ENV_INT", "", 1);
  EXPECT_EQ(env_int("LFSC_TEST_ENV_INT", 7), 7);
  ::unsetenv("LFSC_TEST_ENV_INT");
  EXPECT_EQ(env_int("LFSC_TEST_ENV_INT", 7), 7);
}

}  // namespace
}  // namespace lfsc
