#include "sim/coverage.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace lfsc {
namespace {

SlotInfo generate_once(CoverageModel& model, std::uint64_t seed) {
  SlotInfo info;
  info.t = 1;
  TaskGenerator gen;
  RngStream stream(seed);
  model.generate(stream, gen, info);
  return info;
}

TEST(AbstractCoverage, RespectsDemandRange) {
  AbstractCoverage cov({.num_scns = 30,
                        .tasks_per_scn_min = 35,
                        .tasks_per_scn_max = 100,
                        .coverage_degree = 1.3});
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto info = generate_once(cov, seed);
    ASSERT_EQ(info.coverage.size(), 30u);
    for (const auto& c : info.coverage) {
      EXPECT_GE(c.size(), 35u);
      EXPECT_LE(c.size(), 100u);
    }
  }
}

TEST(AbstractCoverage, CoverageIndicesValidSortedUnique) {
  AbstractCoverage cov({});
  const auto info = generate_once(cov, 42);
  for (const auto& cover : info.coverage) {
    EXPECT_TRUE(std::is_sorted(cover.begin(), cover.end()));
    std::set<int> unique(cover.begin(), cover.end());
    EXPECT_EQ(unique.size(), cover.size());
    for (const int task : cover) {
      EXPECT_GE(task, 0);
      EXPECT_LT(task, static_cast<int>(info.tasks.size()));
    }
  }
}

TEST(AbstractCoverage, OverlapMatchesCoverageDegree) {
  AbstractCoverage cov({.num_scns = 30,
                        .tasks_per_scn_min = 35,
                        .tasks_per_scn_max = 100,
                        .coverage_degree = 1.5});
  double total_cover = 0.0;
  double total_tasks = 0.0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto info = generate_once(cov, seed);
    for (const auto& c : info.coverage) {
      total_cover += static_cast<double>(c.size());
    }
    total_tasks += static_cast<double>(info.tasks.size());
  }
  // Mean SCNs-per-task should track the configured degree. Sampling
  // without replacement caps per-SCN multiplicity, so allow slack.
  EXPECT_NEAR(total_cover / total_tasks, 1.5, 0.1);
}

TEST(AbstractCoverage, SomeTasksCoveredByMultipleScns) {
  AbstractCoverage cov({});
  const auto info = generate_once(cov, 7);
  std::vector<int> degree(info.tasks.size(), 0);
  for (const auto& c : info.coverage) {
    for (const int task : c) ++degree[static_cast<std::size_t>(task)];
  }
  EXPECT_GT(*std::max_element(degree.begin(), degree.end()), 1);
}

TEST(AbstractCoverage, DisjointDegreeOneIsMostlySingleCovered) {
  AbstractCoverage cov({.num_scns = 10,
                        .tasks_per_scn_min = 20,
                        .tasks_per_scn_max = 20,
                        .coverage_degree = 1.0});
  const auto info = generate_once(cov, 3);
  // degree 1.0 => pool size == total demand; random sampling still
  // collides, but the mean degree must be ~1.
  double cover = 0;
  for (const auto& c : info.coverage) cover += static_cast<double>(c.size());
  EXPECT_NEAR(cover / static_cast<double>(info.tasks.size()), 1.0, 0.05);
}

TEST(AbstractCoverage, ValidatesConfig) {
  EXPECT_THROW(AbstractCoverage({.num_scns = 0}), std::invalid_argument);
  EXPECT_THROW(AbstractCoverage({.num_scns = 1,
                                 .tasks_per_scn_min = 10,
                                 .tasks_per_scn_max = 5}),
               std::invalid_argument);
  EXPECT_THROW(AbstractCoverage({.num_scns = 1,
                                 .tasks_per_scn_min = 1,
                                 .tasks_per_scn_max = 2,
                                 .coverage_degree = 0.5}),
               std::invalid_argument);
}

TEST(AbstractCoverage, CloneProducesIdenticalSlots) {
  AbstractCoverage cov({});
  auto clone = cov.clone();
  const auto a = generate_once(cov, 11);
  const auto b = generate_once(*clone, 11);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  EXPECT_EQ(a.coverage, b.coverage);
}

TEST(GeometricCoverage, CoverageIsWithinRadius) {
  GeometricCoverage cov({.num_scns = 10,
                         .num_wds = 100,
                         .area_km = 4.0,
                         .coverage_radius_km = 1.0,
                         .task_probability = 1.0});
  SlotInfo info;
  TaskGenerator gen;
  RngStream stream(1);
  cov.generate(stream, gen, info);
  const auto& scns = cov.scn_positions();
  const auto& wds = cov.wd_positions();
  for (std::size_t m = 0; m < info.coverage.size(); ++m) {
    for (const int task : info.coverage[m]) {
      const int wd = info.tasks[static_cast<std::size_t>(task)].wd_id;
      const double dx = scns[m].x - wds[static_cast<std::size_t>(wd)].x;
      const double dy = scns[m].y - wds[static_cast<std::size_t>(wd)].y;
      EXPECT_LE(std::hypot(dx, dy), 1.0 + 1e-9);
    }
  }
}

TEST(GeometricCoverage, MobilityMovesDevicesBoundedPerSlot) {
  GeometricCoverage cov(
      {.num_scns = 5, .num_wds = 50, .wd_speed_km_per_slot = 0.05});
  const auto before = cov.wd_positions();
  SlotInfo info;
  TaskGenerator gen;
  RngStream stream(2);
  cov.generate(stream, gen, info);
  const auto& after = cov.wd_positions();
  double total_move = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    const double d = std::hypot(after[i].x - before[i].x,
                                after[i].y - before[i].y);
    EXPECT_LE(d, 0.05 + 1e-9);
    total_move += d;
  }
  EXPECT_GT(total_move, 0.0);
}

TEST(GeometricCoverage, TaskProbabilityZeroMeansNoTasks) {
  GeometricCoverage cov({.num_scns = 3, .num_wds = 50, .task_probability = 0.0});
  SlotInfo info;
  TaskGenerator gen;
  RngStream stream(3);
  cov.generate(stream, gen, info);
  EXPECT_TRUE(info.tasks.empty());
  for (const auto& c : info.coverage) EXPECT_TRUE(c.empty());
}

TEST(GeometricCoverage, CloneSharesLayoutAndState) {
  GeometricCoverage cov({.num_scns = 4, .num_wds = 20});
  SlotInfo warmup;
  TaskGenerator gen;
  RngStream stream(4);
  cov.generate(stream, gen, warmup);  // advance mobility
  auto clone = cov.clone();
  auto* geo = dynamic_cast<GeometricCoverage*>(clone.get());
  ASSERT_NE(geo, nullptr);
  EXPECT_EQ(geo->wd_positions().size(), cov.wd_positions().size());
  for (std::size_t i = 0; i < cov.wd_positions().size(); ++i) {
    EXPECT_DOUBLE_EQ(geo->wd_positions()[i].x, cov.wd_positions()[i].x);
    EXPECT_DOUBLE_EQ(geo->wd_positions()[i].y, cov.wd_positions()[i].y);
  }
}

TEST(GeometricCoverage, ValidatesConfig) {
  EXPECT_THROW(GeometricCoverage({.num_scns = 0}), std::invalid_argument);
  EXPECT_THROW(GeometricCoverage({.num_scns = 1, .area_km = -1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace lfsc
