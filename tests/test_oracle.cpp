#include "baselines/oracle.h"

#include <gtest/gtest.h>

#include "harness/paper_setup.h"
#include "metrics/metrics.h"
#include "solver/branch_and_bound.h"

namespace lfsc {
namespace {

PaperSetup setup() { return small_setup(); }

TEST(Oracle, NeedsRealizations) {
  auto s = setup();
  OraclePolicy oracle(s.net);
  EXPECT_TRUE(oracle.needs_realizations());
  EXPECT_EQ(oracle.name(), "Oracle");
}

TEST(Oracle, ProducesValidAssignments) {
  auto s = setup();
  auto sim = s.make_simulator();
  OraclePolicy oracle(s.net);
  for (int t = 1; t <= 50; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto assignment = oracle.select_omniscient(slot);
    EXPECT_EQ(validate_assignment(slot.info, assignment, s.net), std::nullopt);
  }
}

TEST(Oracle, RespectsResourceCapStrictly) {
  auto s = setup();
  auto sim = s.make_simulator();
  OraclePolicy oracle(s.net);
  for (int t = 1; t <= 50; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto assignment = oracle.select_omniscient(slot);
    const auto outcome = evaluate_slot(slot, assignment, s.net);
    EXPECT_DOUBLE_EQ(outcome.resource_violation, 0.0) << "t=" << t;
  }
}

TEST(Oracle, QosRepairReducesQosViolation) {
  auto s = setup();
  auto sim = s.make_simulator();
  OraclePolicy with_repair(s.net, {.repair_qos = true});
  OraclePolicy without_repair(s.net, {.repair_qos = false});
  double v_with = 0.0, v_without = 0.0;
  for (int t = 1; t <= 100; ++t) {
    const auto slot = sim.generate_slot(t);
    v_with += evaluate_slot(slot, with_repair.select_omniscient(slot), s.net)
                  .qos_violation;
    v_without +=
        evaluate_slot(slot, without_repair.select_omniscient(slot), s.net)
            .qos_violation;
  }
  EXPECT_LE(v_with, v_without);
  EXPECT_LT(v_with, 0.9 * v_without + 1e-9);
}

TEST(Oracle, NearExactOnSmallInstancesWithoutRepair) {
  // With repair and QoS disabled, the oracle is a greedy for the pure
  // reward problem; compare with branch-and-bound on small slots.
  NetworkConfig net{.num_scns = 3, .capacity_c = 3, .qos_alpha = 0.0,
                    .resource_beta = 5.0};
  EnvironmentConfig env;
  env.num_scns = 3;
  AbstractCoverageConfig cov{.num_scns = 3,
                             .tasks_per_scn_min = 5,
                             .tasks_per_scn_max = 10,
                             .coverage_degree = 1.4};
  Simulator sim(net, env, std::make_unique<AbstractCoverage>(cov));
  OraclePolicy oracle(net, {.repair_qos = false});

  double greedy_total = 0.0, exact_total = 0.0;
  for (int t = 1; t <= 25; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto assignment = oracle.select_omniscient(slot);
    greedy_total += evaluate_slot(slot, assignment, net).reward;

    ExactProblem problem;
    problem.num_scns = net.num_scns;
    problem.num_tasks = static_cast<int>(slot.info.tasks.size());
    problem.capacity_c = net.capacity_c;
    problem.resource_beta = net.resource_beta;
    for (std::size_t m = 0; m < slot.info.coverage.size(); ++m) {
      for (std::size_t j = 0; j < slot.info.coverage[m].size(); ++j) {
        Edge e;
        e.scn = static_cast<int>(m);
        e.task = slot.info.coverage[m][j];
        e.local = static_cast<int>(j);
        const double q = slot.real.q[m][j];
        e.weight = q > 0 ? slot.real.u[m][j] * slot.real.v[m][j] / q : 0.0;
        problem.edges.push_back(e);
        problem.edge_resource.push_back(q);
      }
    }
    const auto exact = solve_exact(problem, 500000);
    exact_total += exact.total_weight;
    EXPECT_LE(evaluate_slot(slot, assignment, net).reward,
              exact.total_weight + 1e-9);
  }
  // The greedy oracle captures nearly all of the exact optimum.
  EXPECT_GT(greedy_total, 0.9 * exact_total);
}

TEST(Oracle, SelectWithoutRealizationsIsEmpty) {
  auto s = setup();
  auto sim = s.make_simulator();
  OraclePolicy oracle(s.net);
  const auto slot = sim.generate_slot(1);
  const auto assignment = oracle.select(slot.info);
  EXPECT_EQ(assignment.total_selected(), 0u);
}

TEST(Oracle, BeatsRandomInReward) {
  auto s = setup();
  auto sim = s.make_simulator();
  OraclePolicy oracle(s.net);
  double oracle_reward = 0.0, random_reward = 0.0;
  RngStream rng(1);
  for (int t = 1; t <= 50; ++t) {
    const auto slot = sim.generate_slot(t);
    oracle_reward +=
        evaluate_slot(slot, oracle.select_omniscient(slot), s.net).reward;
    // Random baseline inline: c random tasks per SCN (may be fewer).
    Assignment random;
    random.selected.resize(slot.info.coverage.size());
    std::vector<bool> taken(slot.info.tasks.size(), false);
    for (std::size_t m = 0; m < slot.info.coverage.size(); ++m) {
      const auto& cover = slot.info.coverage[m];
      const auto picks = rng.sample_without_replacement(
          cover.size(), static_cast<std::size_t>(s.net.capacity_c));
      for (const auto j : picks) {
        const int task = cover[j];
        if (taken[static_cast<std::size_t>(task)]) continue;
        taken[static_cast<std::size_t>(task)] = true;
        random.selected[m].push_back(static_cast<int>(j));
      }
    }
    random_reward += evaluate_slot(slot, random, s.net).reward;
  }
  EXPECT_GT(oracle_reward, 1.3 * random_reward);
}

}  // namespace
}  // namespace lfsc
