#include "lfsc/lfsc_policy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "harness/paper_setup.h"
#include "metrics/metrics.h"

namespace lfsc {
namespace {

PaperSetup setup() { return small_setup(); }

TEST(LfscPolicy, ProducesValidAssignments) {
  auto s = setup();
  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);
  for (int t = 1; t <= 50; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto assignment = policy.select(slot.info);
    EXPECT_EQ(validate_assignment(slot.info, assignment, s.net), std::nullopt);
    policy.observe(slot.info, assignment, make_feedback(slot, assignment));
  }
}

TEST(LfscPolicy, ProbabilitiesAreValidMarginals) {
  auto s = setup();
  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);
  const auto slot = sim.generate_slot(1);
  policy.select(slot.info);
  for (int m = 0; m < s.net.num_scns; ++m) {
    const auto& probs = policy.last_probabilities(m);
    ASSERT_EQ(probs.size(), slot.info.coverage[static_cast<std::size_t>(m)].size());
    double sum = 0.0;
    for (const double p : probs) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0 + 1e-9);
      sum += p;
    }
    const auto expected = std::min<double>(
        static_cast<double>(s.net.capacity_c), static_cast<double>(probs.size()));
    EXPECT_NEAR(sum, expected, 1e-6);
  }
}

TEST(LfscPolicy, WeightsStayFiniteAndPositiveOverLongRuns) {
  auto s = setup();
  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);
  for (int t = 1; t <= 500; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto assignment = policy.select(slot.info);
    policy.observe(slot.info, assignment, make_feedback(slot, assignment));
  }
  for (int m = 0; m < s.net.num_scns; ++m) {
    double max_w = 0.0;
    for (const double w : policy.weights(m)) {
      EXPECT_TRUE(std::isfinite(w));
      EXPECT_GT(w, 0.0);
      max_w = std::max(max_w, w);
    }
    EXPECT_NEAR(max_w, 1.0, 1e-9);  // normalized after every update
  }
}

TEST(LfscPolicy, LambdasStayInBox) {
  auto s = setup();
  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);
  for (int t = 1; t <= 300; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto assignment = policy.select(slot.info);
    policy.observe(slot.info, assignment, make_feedback(slot, assignment));
    for (int m = 0; m < s.net.num_scns; ++m) {
      EXPECT_GE(policy.lambda_qos(m), 0.0);
      EXPECT_LE(policy.lambda_qos(m), s.lfsc.lambda_max);
      EXPECT_GE(policy.lambda_resource(m), 0.0);
      EXPECT_LE(policy.lambda_resource(m), s.lfsc.lambda_max);
    }
  }
}

TEST(LfscPolicy, AutoGammaIsReasonable) {
  auto s = setup();
  LfscPolicy policy(s.net, s.lfsc);
  EXPECT_GT(policy.gamma(), 0.0);
  EXPECT_LE(policy.gamma(), 1.0);
}

TEST(LfscPolicy, ExplicitGammaIsHonored) {
  auto s = setup();
  s.lfsc.gamma = 0.42;
  LfscPolicy policy(s.net, s.lfsc);
  EXPECT_DOUBLE_EQ(policy.gamma(), 0.42);
}

TEST(LfscPolicy, ObserveWithoutSelectThrows) {
  auto s = setup();
  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);
  const auto slot = sim.generate_slot(1);
  Assignment empty;
  empty.selected.assign(static_cast<std::size_t>(s.net.num_scns), {});
  SlotFeedback feedback;
  feedback.per_scn.resize(static_cast<std::size_t>(s.net.num_scns));
  EXPECT_THROW(policy.observe(slot.info, empty, feedback), std::logic_error);
}

TEST(LfscPolicy, OversizedSlotFallsBackToBucketedGreedy) {
  // Regression: a slot with more tasks than the 16-bit packed-edge limit
  // (0x10000) used to abort mid-run. Such slots must take the unpacked
  // bucketed greedy and apply the same (weight desc, scn asc, task asc)
  // contract as the packed path.
  NetworkConfig net;
  net.num_scns = 2;
  net.capacity_c = 3;
  LfscConfig cfg;
  cfg.gamma = 0.1;
  cfg.deterministic_edges = true;
  LfscPolicy policy(net, cfg);

  constexpr std::size_t kTasks = 0x10000 + 1;
  SlotInfo info;
  info.t = 1;
  info.tasks.resize(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    info.tasks[i].id = static_cast<std::int64_t>(i);
    info.tasks[i].context.normalized = {0.5, 0.5, 0.5};
  }
  info.coverage.resize(2);
  info.coverage[0].resize(kTasks);
  std::iota(info.coverage[0].begin(), info.coverage[0].end(), 0);
  info.coverage[1] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};

  const Assignment a = policy.select(info);
  EXPECT_EQ(validate_assignment(info, a, net), std::nullopt);
  ASSERT_EQ(a.selected.size(), 2u);
  // Uniform weights + deterministic edges: SCN 1's marginals (3/10)
  // outrank SCN 0's (3/65537), so SCN 1 takes tasks {0,1,2} and the wide
  // SCN the next ids — ties broken by task index, as in the packed path.
  EXPECT_EQ(a.selected[1], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(a.selected[0], (std::vector<int>{3, 4, 5}));

  // The oversized slot round-trips through observe, and the next small
  // slot (packed path again) still works on the same policy.
  SlotFeedback fb;
  fb.per_scn.resize(2);
  for (std::size_t m = 0; m < 2; ++m) {
    for (const int local : a.selected[m]) {
      TaskFeedback f;
      f.local_index = local;
      f.u = 0.5;
      f.v = 0.5;
      f.q = 1.0;
      fb.per_scn[m].push_back(f);
    }
  }
  policy.observe(info, a, fb);

  info.t = 2;
  info.tasks.resize(16);
  info.coverage[0] = {0, 1, 2, 3, 4, 5, 6, 7};
  info.coverage[1] = {8, 9, 10, 11, 12, 13, 14, 15};
  const Assignment b = policy.select(info);
  EXPECT_EQ(validate_assignment(info, b, net), std::nullopt);
}

TEST(LfscPolicy, ScnCountMismatchThrows) {
  auto s = setup();
  LfscPolicy policy(s.net, s.lfsc);
  SlotInfo info;
  info.t = 1;
  info.coverage.resize(3);  // != 6
  EXPECT_THROW(policy.select(info), std::invalid_argument);
}

TEST(LfscPolicy, ResetRestoresInitialState) {
  auto s = setup();
  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);
  for (int t = 1; t <= 50; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto a = policy.select(slot.info);
    policy.observe(slot.info, a, make_feedback(slot, a));
  }
  policy.reset();
  for (int m = 0; m < s.net.num_scns; ++m) {
    for (const double w : policy.weights(m)) EXPECT_DOUBLE_EQ(w, 1.0);
    EXPECT_DOUBLE_EQ(policy.lambda_qos(m), 0.0);
  }
  // After reset the policy replays identically on the same world.
  auto sim2 = s.make_simulator();
  LfscPolicy fresh(s.net, s.lfsc);
  for (int t = 1; t <= 10; ++t) {
    const auto slot = sim2.generate_slot(t);
    const auto a = policy.select(slot.info);
    const auto b = fresh.select(slot.info);
    EXPECT_EQ(a.selected, b.selected);
    policy.observe(slot.info, a, make_feedback(slot, a));
    fresh.observe(slot.info, b, make_feedback(slot, b));
  }
}

TEST(LfscPolicy, LearnsToPreferHighRewardHypercube) {
  // Deterministic micro-world: one SCN, two tasks per slot — one from a
  // high-compound-reward context region, one from a low region. After
  // learning, the high cube's weight must dominate.
  NetworkConfig net{.num_scns = 1, .capacity_c = 1, .qos_alpha = 0.0,
                    .resource_beta = 100.0};
  LfscConfig config;
  config.gamma = 0.1;
  config.horizon = 2000;
  config.expected_tasks_per_scn = 2;
  LfscPolicy policy(net, config);

  const auto good = make_context(6.0, 1.2, ResourceType::kCpu);   // cube A
  const auto bad = make_context(19.0, 3.8, ResourceType::kCpuGpu);  // cube B
  const std::size_t good_cell = policy.partition().index(good.normalized);
  const std::size_t bad_cell = policy.partition().index(bad.normalized);
  ASSERT_NE(good_cell, bad_cell);

  for (int t = 1; t <= 1500; ++t) {
    SlotInfo info;
    info.t = t;
    info.tasks.resize(2);
    info.tasks[0].id = 2 * t;
    info.tasks[0].context = good;
    info.tasks[1].id = 2 * t + 1;
    info.tasks[1].context = bad;
    info.coverage = {{0, 1}};
    const auto assignment = policy.select(info);
    SlotFeedback feedback;
    feedback.per_scn.resize(1);
    for (const int local : assignment.selected[0]) {
      TaskFeedback f;
      f.local_index = local;
      const bool is_good = local == 0;
      f.u = is_good ? 0.9 : 0.1;
      f.v = is_good ? 0.9 : 0.2;
      f.q = is_good ? 1.0 : 2.0;
      feedback.per_scn[0].push_back(f);
    }
    policy.observe(info, assignment, feedback);
  }
  const auto& weights = policy.weights(0);
  EXPECT_GT(weights[good_cell], 10.0 * weights[bad_cell])
      << "good=" << weights[good_cell] << " bad=" << weights[bad_cell];
}

TEST(LfscPolicy, NoCoordinationAblationDuplicatesTasks) {
  auto s = setup();
  s.lfsc.coordinate_scns = false;
  s.coverage.coverage_degree = 2.5;  // heavy overlap to force duplicates
  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);
  bool found_duplicate = false;
  for (int t = 1; t <= 30 && !found_duplicate; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto assignment = policy.select(slot.info);
    found_duplicate =
        validate_assignment(slot.info, assignment, s.net).has_value();
    policy.observe(slot.info, assignment, make_feedback(slot, assignment));
  }
  EXPECT_TRUE(found_duplicate)
      << "independent DepRound should eventually violate (1b) under overlap";
}

TEST(LfscPolicy, DeterministicEdgesVariantIsValidToo) {
  auto s = setup();
  s.lfsc.deterministic_edges = true;
  auto sim = s.make_simulator();
  LfscPolicy policy(s.net, s.lfsc);
  for (int t = 1; t <= 30; ++t) {
    const auto slot = sim.generate_slot(t);
    const auto assignment = policy.select(slot.info);
    EXPECT_EQ(validate_assignment(slot.info, assignment, s.net), std::nullopt);
    policy.observe(slot.info, assignment, make_feedback(slot, assignment));
  }
}

}  // namespace
}  // namespace lfsc
