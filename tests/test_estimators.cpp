#include "bandit/estimators.h"

#include <gtest/gtest.h>

#include "bandit/ucb.h"
#include "common/rng.h"

namespace lfsc {
namespace {

TEST(ArmStats, RunningMeansAreExact) {
  ArmStats stats;
  stats.add(1.0, 0.5, 1.5);
  stats.add(0.0, 1.0, 2.0);
  EXPECT_EQ(stats.pulls, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_g, 0.5);
  EXPECT_DOUBLE_EQ(stats.mean_v, 0.75);
  EXPECT_DOUBLE_EQ(stats.mean_q, 1.75);
  stats.reset();
  EXPECT_EQ(stats.pulls, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_g, 0.0);
}

TEST(ArmStatsTable, IndependentCells) {
  ArmStatsTable table(4);
  table[1].add(1.0, 1.0, 1.0);
  table[3].add(0.5, 0.5, 0.5);
  EXPECT_EQ(table[0].pulls, 0u);
  EXPECT_EQ(table[1].pulls, 1u);
  EXPECT_EQ(table[2].pulls, 0u);
  EXPECT_EQ(table[3].pulls, 1u);
  table.reset();
  EXPECT_EQ(table[1].pulls, 0u);
}

TEST(UcbIndex, UnpulledArmIsInfinite) {
  ArmStats stats;
  EXPECT_TRUE(std::isinf(ucb_index(stats, 10)));
}

TEST(UcbIndex, BonusShrinksWithPulls) {
  ArmStats few, many;
  for (int i = 0; i < 2; ++i) few.add(0.5, 0.5, 1.0);
  for (int i = 0; i < 200; ++i) many.add(0.5, 0.5, 1.0);
  EXPECT_GT(ucb_index(few, 1000), ucb_index(many, 1000));
  EXPECT_GT(ucb_index(many, 1000), 0.5);  // bonus is positive
}

TEST(UcbIndex, GrowsWithTime) {
  ArmStats stats;
  stats.add(0.5, 0.5, 1.0);
  EXPECT_LT(ucb_index(stats, 10), ucb_index(stats, 10000));
}

TEST(IpwAccumulator, UnselectedTasksContributeZeroButCount) {
  IpwSlotAccumulator acc(3);
  acc.add_task(0, /*selected=*/false, 0.5, 0.8, 0.9, 0.7);
  EXPECT_TRUE(acc.touched(0));
  EXPECT_DOUBLE_EQ(acc.estimate_g(0), 0.0);
  EXPECT_DOUBLE_EQ(acc.estimate_v(0), 0.0);
}

TEST(IpwAccumulator, SelectedTaskIsInverseWeighted) {
  IpwSlotAccumulator acc(3);
  acc.add_task(1, /*selected=*/true, 0.25, 0.5, 0.8, 0.6);
  EXPECT_DOUBLE_EQ(acc.estimate_g(1), 2.0);   // 0.5 / 0.25
  EXPECT_DOUBLE_EQ(acc.estimate_v(1), 3.2);   // 0.8 / 0.25
  EXPECT_DOUBLE_EQ(acc.estimate_q(1), 2.4);   // 0.6 / 0.25
}

TEST(IpwAccumulator, AveragesOverTasksInSameCell) {
  IpwSlotAccumulator acc(2);
  acc.add_task(0, true, 0.5, 1.0, 1.0, 1.0);   // contributes 2
  acc.add_task(0, false, 0.5, 0.0, 0.0, 0.0);  // contributes 0
  EXPECT_DOUBLE_EQ(acc.estimate_g(0), 1.0);    // (2 + 0) / 2
}

TEST(IpwAccumulator, UntouchedCellsReportZero) {
  IpwSlotAccumulator acc(2);
  EXPECT_FALSE(acc.touched(1));
  EXPECT_DOUBLE_EQ(acc.estimate_g(1), 0.0);
}

TEST(IpwAccumulator, ResetClearsState) {
  IpwSlotAccumulator acc(1);
  acc.add_task(0, true, 0.5, 1.0, 1.0, 1.0);
  acc.reset();
  EXPECT_FALSE(acc.touched(0));
  EXPECT_DOUBLE_EQ(acc.estimate_g(0), 0.0);
}

TEST(IpwAccumulator, EstimateIsUnbiasedOverRandomSelection) {
  // E[x * 1(sel)/p] must equal E[x]: simulate Bernoulli(p) selection of a
  // task with fixed observables and check the long-run mean.
  RngStream rng(21);
  const double p = 0.3;
  const double g = 0.6;
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    IpwSlotAccumulator acc(1);
    const bool sel = rng.bernoulli(p);
    acc.add_task(0, sel, p, g, 0.0, 0.0);
    sum += acc.estimate_g(0);
  }
  EXPECT_NEAR(sum / kN, g, 0.01);
}

}  // namespace
}  // namespace lfsc
