#include "bandit/exp3m.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

namespace lfsc {
namespace {

double sum_of(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

TEST(Exp3M, UniformWeightsGiveUniformProbabilities) {
  const std::vector<double> w(10, 1.0);
  const auto result = exp3m_probabilities(w, 3, 0.1);
  for (const double p : result.p) EXPECT_NEAR(p, 0.3, 1e-12);
  EXPECT_NEAR(sum_of(result.p), 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(result.epsilon, 0.0);  // no capping needed
}

TEST(Exp3M, ProbabilitiesSumToKAndStayInUnitInterval) {
  RngStream rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 5 + static_cast<std::size_t>(rng.uniform_int(0, 45));
    const std::size_t k = 1 + static_cast<std::size_t>(
                              rng.uniform_int(0, static_cast<int>(n) - 2));
    std::vector<double> w(n);
    for (auto& x : w) x = std::exp(rng.uniform(-8.0, 8.0));
    const double gamma = rng.uniform(0.01, 0.9);
    const auto result = exp3m_probabilities(w, k, gamma);
    double sum = 0.0;
    for (const double p : result.p) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0 + 1e-9);
      sum += p;
    }
    EXPECT_NEAR(sum, static_cast<double>(k), 1e-6)
        << "n=" << n << " k=" << k << " gamma=" << gamma;
  }
}

TEST(Exp3M, DominantWeightIsCappedAtOne) {
  std::vector<double> w{1000.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  const auto result = exp3m_probabilities(w, 2, 0.1);
  EXPECT_TRUE(result.capped[0]);
  EXPECT_NEAR(result.p[0], 1.0, 1e-9);
  for (std::size_t i = 1; i < w.size(); ++i) {
    EXPECT_FALSE(result.capped[i]);
    EXPECT_LT(result.p[i], 1.0);
  }
  EXPECT_GT(result.epsilon, 0.0);
  EXPECT_EQ(result.num_capped, 1u);
  EXPECT_NEAR(sum_of(result.p), 2.0, 1e-9);
}

TEST(Exp3M, MultipleDominantWeightsAllCapped) {
  std::vector<double> w{500.0, 400.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  const auto result = exp3m_probabilities(w, 3, 0.05);
  EXPECT_TRUE(result.capped[0]);
  EXPECT_TRUE(result.capped[1]);
  EXPECT_NEAR(result.p[0], 1.0, 1e-9);
  EXPECT_NEAR(result.p[1], 1.0, 1e-9);
  EXPECT_EQ(result.num_capped, 2u);
  EXPECT_NEAR(sum_of(result.p), 3.0, 1e-9);
}

TEST(Exp3M, MonotoneInWeights) {
  std::vector<double> w{0.5, 1.0, 2.0, 4.0, 8.0};
  const auto result = exp3m_probabilities(w, 2, 0.2);
  for (std::size_t i = 1; i < w.size(); ++i) {
    EXPECT_GE(result.p[i], result.p[i - 1] - 1e-12);
  }
}

TEST(Exp3M, ExplorationFloorHolds) {
  // Every arm gets at least k*gamma/K regardless of weights.
  std::vector<double> w{1e-6, 1.0, 1e6};
  const double gamma = 0.3;
  const auto result = exp3m_probabilities(w, 1, gamma);
  for (const double p : result.p) {
    EXPECT_GE(p, gamma / 3.0 - 1e-12);
  }
}

TEST(Exp3M, FewerArmsThanPlaysSelectsAll) {
  std::vector<double> w{1.0, 5.0, 0.1};
  const auto result = exp3m_probabilities(w, 5, 0.2);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.p[i], 1.0);
    EXPECT_TRUE(result.capped[i]);
  }
  EXPECT_EQ(result.num_capped, w.size());
}

TEST(Exp3M, GammaOneIsUniform) {
  std::vector<double> w{1.0, 100.0, 10000.0, 3.0};
  const auto result = exp3m_probabilities(w, 2, 1.0);
  for (const double p : result.p) EXPECT_DOUBLE_EQ(p, 0.5);
}

TEST(Exp3M, ScaleInvariance) {
  std::vector<double> w{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  auto scaled = w;
  for (auto& x : scaled) x *= 1e6;
  const auto a = exp3m_probabilities(w, 2, 0.15);
  const auto b = exp3m_probabilities(scaled, 2, 0.15);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(a.p[i], b.p[i], 1e-9);
  }
}

TEST(Exp3M, RejectsInvalidArguments) {
  std::vector<double> w{1.0, 2.0};
  EXPECT_THROW(exp3m_probabilities(w, 0, 0.1), std::invalid_argument);
  EXPECT_THROW(exp3m_probabilities(w, 1, -0.1), std::invalid_argument);
  EXPECT_THROW(exp3m_probabilities(w, 1, 1.5), std::invalid_argument);
  std::vector<double> bad{1.0, 0.0};
  EXPECT_THROW(exp3m_probabilities(bad, 1, 0.1), std::invalid_argument);
  std::vector<double> neg{1.0, -1.0};
  EXPECT_THROW(exp3m_probabilities(neg, 1, 0.1), std::invalid_argument);
}

TEST(Exp3M, EmptyArmsGiveEmptyResult) {
  const auto result = exp3m_probabilities({}, 3, 0.1);
  EXPECT_TRUE(result.p.empty());
}

TEST(Exp3MDefaultGamma, FormulaProperties) {
  const double g = exp3m_default_gamma(100, 20, 10000);
  EXPECT_GT(g, 0.0);
  EXPECT_LT(g, 1.0);
  // Longer horizons explore less.
  EXPECT_LT(exp3m_default_gamma(100, 20, 100000), g);
  // Degenerate inputs are safe.
  EXPECT_DOUBLE_EQ(exp3m_default_gamma(0, 20, 1000), 0.0);
  EXPECT_DOUBLE_EQ(exp3m_default_gamma(10, 20, 1000), 0.0);  // K <= k
}

TEST(DepRound, SelectsExactlyKWhenSumIsIntegral) {
  RngStream rng(7);
  std::vector<double> p{0.5, 0.5, 0.5, 0.5, 0.5, 0.5};  // sum = 3
  for (int i = 0; i < 200; ++i) {
    const auto s = dep_round(p, rng);
    EXPECT_EQ(s.size(), 3u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  }
}

TEST(DepRound, PreservesMarginals) {
  RngStream rng(8);
  const std::vector<double> p{0.9, 0.7, 0.5, 0.5, 0.3, 0.1};  // sum = 3
  std::vector<int> hits(p.size(), 0);
  constexpr int kTrials = 50000;
  for (int trial = 0; trial < kTrials; ++trial) {
    for (const auto i : dep_round(p, rng)) ++hits[i];
  }
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / kTrials, p[i], 0.01)
        << "arm " << i;
  }
}

TEST(DepRound, DeterministicEntriesAlwaysRespected) {
  RngStream rng(9);
  const std::vector<double> p{1.0, 0.0, 1.0, 0.5, 0.5};
  for (int i = 0; i < 100; ++i) {
    const auto s = dep_round(p, rng);
    EXPECT_NE(std::find(s.begin(), s.end(), 0u), s.end());
    EXPECT_NE(std::find(s.begin(), s.end(), 2u), s.end());
    EXPECT_EQ(std::find(s.begin(), s.end(), 1u), s.end());
    EXPECT_EQ(s.size(), 3u);
  }
}

TEST(DepRound, HandlesNonIntegralSum) {
  RngStream rng(10);
  const std::vector<double> p{0.6, 0.6};  // sum = 1.2
  int total = 0;
  constexpr int kTrials = 20000;
  for (int trial = 0; trial < kTrials; ++trial) {
    total += static_cast<int>(dep_round(p, rng).size());
  }
  EXPECT_NEAR(static_cast<double>(total) / kTrials, 1.2, 0.02);
}

TEST(DepRound, RejectsOutOfRangeProbabilities) {
  RngStream rng(11);
  EXPECT_THROW(dep_round({0.5, 1.5}, rng), std::invalid_argument);
  EXPECT_THROW(dep_round({-0.2, 0.5}, rng), std::invalid_argument);
}

TEST(DepRound, CardinalityExactUnderAccumulatedFloatError) {
  // Marginals integral only up to double rounding (7 * (3/7) = 3 - 4e-16):
  // the residual fractional mass sits inside the tolerance, so the
  // cardinality must still be exactly 3 on every draw — never 2 or 4 via
  // a spurious trailing Bernoulli.
  RngStream rng(21);
  const std::vector<double> p(7, 3.0 / 7.0);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(dep_round(p, rng).size(), 3u);
  }
}

TEST(DepRound, SingleResidualFractionalEntryKeepsItsMarginal) {
  // One fractional entry among deterministic ones hits the final
  // Bernoulli branch directly (no pair to round against).
  RngStream rng(22);
  const std::vector<double> p{1.0, 0.25, 0.0, 1.0};
  int included = 0;
  constexpr int kTrials = 40000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto s = dep_round(p, rng);
    ASSERT_GE(s.size(), 2u);
    ASSERT_LE(s.size(), 3u);
    EXPECT_NE(std::find(s.begin(), s.end(), 0u), s.end());
    EXPECT_NE(std::find(s.begin(), s.end(), 3u), s.end());
    if (s.size() == 3u) ++included;  // only arm 1 can be the third
  }
  EXPECT_NEAR(static_cast<double>(included) / kTrials, 0.25, 0.01);
}

TEST(DepRound, AllCappedConsumesNoRandomness) {
  // K <= k slot shapes pass p = 1.0 for every arm; the rounding must
  // select them all without touching the stream, or replay determinism
  // would fork on slots that force full selection.
  RngStream used(23);
  RngStream untouched(23);
  const auto s = dep_round({1.0, 1.0, 1.0}, used);
  EXPECT_EQ(s, (std::vector<std::size_t>{0, 1, 2}));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(used.uniform(), untouched.uniform()) << "draw " << i;
  }
}

TEST(Exp3MIntegration, WeightsLearnedFromRewardsShiftProbabilities) {
  // Tiny two-arm learning loop: arm 1 pays 1, arm 0 pays 0. After a few
  // hundred Exp3.M rounds arm 1's probability must dominate.
  RngStream rng(12);
  std::vector<double> w{1.0, 1.0};
  const double gamma = 0.1;
  for (int t = 0; t < 500; ++t) {
    const auto probs = exp3m_probabilities(w, 1, gamma);
    const auto sel = dep_round(probs.p, rng);
    ASSERT_EQ(sel.size(), 1u);
    const std::size_t arm = sel[0];
    const double reward = arm == 1 ? 1.0 : 0.0;
    const double ipw = reward / probs.p[arm];
    if (!probs.capped[arm]) {
      w[arm] *= std::exp(gamma / 2.0 * ipw);
    }
    const double mx = std::max(w[0], w[1]);
    w[0] /= mx;
    w[1] /= mx;
  }
  const auto final_probs = exp3m_probabilities(w, 1, gamma);
  EXPECT_GT(final_probs.p[1], 0.8);
}

// --- numeric guard (DESIGN.md §9) ---

void expect_valid_distribution(const CappedProbabilities& result,
                               std::size_t k) {
  double sum = 0.0;
  for (const double p : result.p) {
    ASSERT_TRUE(std::isfinite(p));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0 + 1e-9);
    sum += p;
  }
  EXPECT_NEAR(sum, static_cast<double>(k), 1e-6);
}

TEST(Exp3MNumericGuard, NearOverflowWeightsStayFinite) {
  // The raw sum overflows to infinity; the guard re-expresses the
  // weights max-normalized and still produces a valid distribution.
  std::vector<double> w{1e308, 8e307, 5e307, 1e300, 1e290, 1.0};
  const auto result = exp3m_probabilities(w, 2, 0.1);
  expect_valid_distribution(result, 2);
  // Relative order survives the rescue.
  for (std::size_t i = 1; i < w.size(); ++i) {
    EXPECT_LE(result.p[i], result.p[i - 1] + 1e-12);
  }
}

TEST(Exp3MNumericGuard, NearZeroWeightsStayFinite) {
  // Denormal weights: 1/max would overflow; the guard must not produce
  // infinities or NaNs.
  std::vector<double> w{5e-320, 4e-320, 3e-320, 2e-320, 1e-320};
  const auto result = exp3m_probabilities(w, 2, 0.05);
  expect_valid_distribution(result, 2);
}

TEST(Exp3MNumericGuard, MixedExtremeScalesKeepStableCapSet) {
  // The cap set of a degenerate-scale input matches the cap set of the
  // same weights pre-normalized by hand.
  std::vector<double> raw{1e308, 1e302, 1e300, 1e299, 1e298, 1e297};
  std::vector<double> normalized = raw;
  for (auto& x : normalized) x /= 1e308;
  const auto a = exp3m_probabilities(raw, 2, 0.1);
  const auto b = exp3m_probabilities(normalized, 2, 0.1);
  expect_valid_distribution(a, 2);
  ASSERT_EQ(a.capped.size(), b.capped.size());
  for (std::size_t i = 0; i < a.capped.size(); ++i) {
    EXPECT_EQ(a.capped[i], b.capped[i]) << "arm " << i;
  }
  EXPECT_EQ(a.num_capped, b.num_capped);
}

TEST(Exp3MNumericGuard, ExtremeGammaWithExtremeWeights) {
  std::vector<double> w{1e308, 1e-320, 1.0, 1e200, 1e-100};
  for (const double gamma : {1e-12, 0.5, 1.0 - 1e-12, 1.0}) {
    const auto result = exp3m_probabilities(w, 2, gamma);
    expect_valid_distribution(result, 2);
  }
}

TEST(Exp3MNumericGuard, NonFiniteWeightsAreRejected) {
  // A NaN observation must be stopped at the update (the policy's
  // sanitizer) — if one ever reaches the weights, the draw refuses to
  // run rather than emitting a poisoned distribution.
  std::vector<double> nan_w{1.0, std::nan(""), 2.0};
  EXPECT_THROW(exp3m_probabilities(nan_w, 1, 0.1), std::invalid_argument);
  std::vector<double> inf_w{1.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW(exp3m_probabilities(inf_w, 1, 0.1), std::invalid_argument);
}

}  // namespace
}  // namespace lfsc
