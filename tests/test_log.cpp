#include "common/log.h"

#include <gtest/gtest.h>

namespace lfsc {
namespace {

// Restores the global level after each test so suites stay independent.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }
  LogLevel previous_ = LogLevel::kInfo;
};

TEST_F(LogTest, LevelRoundTrips) {
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST_F(LogTest, MessagesBelowThresholdAreSuppressed) {
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  log_message(LogLevel::kInfo, "should not appear");
  log_message(LogLevel::kWarn, "nor this");
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(out.empty()) << out;
}

TEST_F(LogTest, MessagesAtOrAboveThresholdAppearWithTag) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  log_message(LogLevel::kInfo, "hello info");
  log_message(LogLevel::kError, "hello error");
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[INFO ] hello info"), std::string::npos);
  EXPECT_NE(out.find("[ERROR] hello error"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  log_message(LogLevel::kError, "even errors");
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST_F(LogTest, StreamMacroFormatsValues) {
  set_log_level(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  LFSC_LOG_DEBUG << "x=" << 42 << " y=" << 1.5;
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[DEBUG] x=42 y=1.5"), std::string::npos);
}

}  // namespace
}  // namespace lfsc
