#include "sim/trace.h"

#include <gtest/gtest.h>

#include <fstream>

#include "harness/paper_setup.h"
#include "harness/runner.h"
#include "lfsc/lfsc_policy.h"
#include "test_util.h"

namespace lfsc {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  ScopedTempDir tmp_;
  std::string path_ = tmp_.path("trace.csv");
};

TEST_F(TraceTest, RoundTripPreservesSlots) {
  auto s = small_setup();
  auto sim = s.make_simulator();
  std::vector<SlotInfo> originals;
  {
    TraceWriter writer(path_);
    for (int t = 1; t <= 5; ++t) {
      const auto slot = sim.generate_slot(t);
      writer.add_slot(slot.info);
      originals.push_back(slot.info);
    }
    EXPECT_EQ(writer.slots_written(), 5u);
  }
  const auto trace = load_trace(path_);
  ASSERT_EQ(trace.slots.size(), 5u);
  EXPECT_EQ(trace.num_scns, s.net.num_scns);
  for (std::size_t k = 0; k < originals.size(); ++k) {
    const auto& orig = originals[k];
    const auto& loaded = trace.slots[k];
    ASSERT_EQ(loaded.tasks.size(), orig.tasks.size());
    EXPECT_EQ(loaded.coverage, orig.coverage);
    for (std::size_t i = 0; i < orig.tasks.size(); ++i) {
      EXPECT_EQ(loaded.tasks[i].id, orig.tasks[i].id);
      EXPECT_EQ(loaded.tasks[i].wd_id, orig.tasks[i].wd_id);
      EXPECT_DOUBLE_EQ(loaded.tasks[i].context.input_mbit,
                       orig.tasks[i].context.input_mbit);
      EXPECT_DOUBLE_EQ(loaded.tasks[i].context.output_mbit,
                       orig.tasks[i].context.output_mbit);
      EXPECT_EQ(loaded.tasks[i].context.resource,
                orig.tasks[i].context.resource);
      EXPECT_EQ(loaded.tasks[i].context.normalized,
                orig.tasks[i].context.normalized);
    }
  }
}

TEST_F(TraceTest, ReplayThroughSimulatorMatchesRecordedArrivals) {
  auto s = small_setup();
  auto source = s.make_simulator();
  {
    TraceWriter writer(path_);
    for (int t = 1; t <= 4; ++t) writer.add_slot(source.generate_slot(t).info);
  }
  Simulator replay(s.net, s.env,
                   std::make_unique<TraceCoverage>(load_trace(path_)));
  auto source2 = s.make_simulator();
  for (int t = 1; t <= 8; ++t) {  // wraps after 4
    const auto replayed = replay.generate_slot(t);
    const auto original = source2.generate_slot(((t - 1) % 4) + 1);
    EXPECT_EQ(replayed.info.coverage, original.info.coverage) << "t=" << t;
    EXPECT_EQ(replayed.info.t, t);
    // Realizations are drawn fresh (slot-keyed), but shapes must agree.
    for (std::size_t m = 0; m < replayed.real.u.size(); ++m) {
      EXPECT_EQ(replayed.real.u[m].size(), original.real.u[m].size());
    }
  }
}

TEST_F(TraceTest, PoliciesRunOnReplayedTrace) {
  auto s = small_setup();
  auto source = s.make_simulator();
  {
    TraceWriter writer(path_);
    for (int t = 1; t <= 10; ++t) writer.add_slot(source.generate_slot(t).info);
  }
  Simulator replay(s.net, s.env,
                   std::make_unique<TraceCoverage>(load_trace(path_)));
  LfscPolicy lfsc(s.net, s.lfsc);
  Policy* policies[] = {&lfsc};
  const auto result = run_experiment(replay, policies, {.horizon = 30});
  EXPECT_EQ(result.series[0].slots(), 30u);
  EXPECT_GT(result.series[0].total_reward(), 0.0);
}

TEST_F(TraceTest, MinScnsExpandsNetwork) {
  auto s = small_setup();
  auto source = s.make_simulator();
  {
    TraceWriter writer(path_);
    writer.add_slot(source.generate_slot(1).info);
  }
  const auto cov = TraceCoverage::from_file(path_, /*min_scns=*/10);
  EXPECT_EQ(cov.num_scns(), 10);
}

TEST_F(TraceTest, UncoveredTasksSurviveRoundTrip) {
  SlotInfo info;
  info.t = 1;
  info.tasks.resize(2);
  info.tasks[0].id = 100;
  info.tasks[0].context = make_context(10, 2, ResourceType::kCpu);
  info.tasks[1].id = 101;  // covered by no SCN
  info.tasks[1].context = make_context(15, 3, ResourceType::kGpu);
  info.coverage = {{0}, {}};
  {
    TraceWriter writer(path_);
    writer.add_slot(info);
  }
  const auto trace = load_trace(path_);
  ASSERT_EQ(trace.slots.size(), 1u);
  EXPECT_EQ(trace.slots[0].tasks.size(), 2u);
  EXPECT_EQ(trace.slots[0].tasks[1].id, 101);
  EXPECT_EQ(trace.num_scns, 1);  // only SCN 0 appears
}

TEST_F(TraceTest, RejectsMalformedFiles) {
  const auto write_file = [&](const std::string& content) {
    std::ofstream out(path_);
    out << content;
  };
  write_file("wrong,header\n");
  EXPECT_THROW(load_trace(path_), std::runtime_error);

  write_file("slot,task_id,wd_id,input_mbit,output_mbit,resource,scns\n");
  EXPECT_THROW(load_trace(path_), std::runtime_error);  // no slots

  write_file(
      "slot,task_id,wd_id,input_mbit,output_mbit,resource,scns\n"
      "1,0,0,10,2,9,0\n");  // bad resource
  EXPECT_THROW(load_trace(path_), std::runtime_error);

  write_file(
      "slot,task_id,wd_id,input_mbit,output_mbit,resource,scns\n"
      "1,0,0,ten,2,0,0\n");  // bad number
  EXPECT_THROW(load_trace(path_), std::runtime_error);

  write_file(
      "slot,task_id,wd_id,input_mbit,output_mbit,resource,scns\n"
      "2,0,0,10,2,0,0\n"
      "1,1,0,10,2,0,0\n");  // out of order
  EXPECT_THROW(load_trace(path_), std::runtime_error);

  EXPECT_THROW(load_trace("/nonexistent/trace.csv"), std::runtime_error);
}

TEST(TraceCoverage, RejectsEmptyTrace) {
  EXPECT_THROW(TraceCoverage(Trace{}), std::invalid_argument);
}

}  // namespace
}  // namespace lfsc
