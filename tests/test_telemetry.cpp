// Unit semantics of the telemetry primitives (counter, gauge, timer,
// histogram), the per-stream accumulation + deterministic-merge rule,
// the Registry's lookup-or-create contract, and the JSON/CSV exporters.
// Under LFSC_TELEMETRY=OFF most tests skip (the API is stubbed to
// no-ops); the stub contract itself is covered at the bottom.
#include "telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "telemetry/export.h"

namespace lfsc::telemetry {
namespace {

#define SKIP_IF_TELEMETRY_OFF()                                 \
  do {                                                          \
    if (!kEnabled) GTEST_SKIP() << "LFSC_TELEMETRY=OFF build";  \
  } while (false)

TEST(TelemetryCounter, AccumulatesAndMergesStreams) {
  SKIP_IF_TELEMETRY_OFF();
  Counter c(3);
  EXPECT_EQ(c.streams(), 3u);
  EXPECT_EQ(c.value(), 0u);
  c.add();              // default: +1 on stream 0
  c.add(5, 1);
  c.add(7, 2);
  c.add(2, 1);
  EXPECT_EQ(c.stream_value(0), 1u);
  EXPECT_EQ(c.stream_value(1), 7u);
  EXPECT_EQ(c.stream_value(2), 7u);
  EXPECT_EQ(c.value(), 15u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(c.streams(), 3u);  // registrations survive reset
}

TEST(TelemetryGauge, KeepsLastValuePerStream) {
  SKIP_IF_TELEMETRY_OFF();
  Gauge g(2);
  g.set(1.5, 0);
  g.set(2.5, 1);
  g.set(0.25, 0);  // overwrites, not accumulates
  EXPECT_DOUBLE_EQ(g.stream_value(0), 0.25);
  EXPECT_DOUBLE_EQ(g.stream_value(1), 2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.75);  // aggregate = stream sum
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(TelemetryTimer, TracksCountTotalMinMaxAcrossStreams) {
  SKIP_IF_TELEMETRY_OFF();
  Timer t(2);
  t.add(0.5, 0);
  t.add(0.25, 0);
  t.add(2.0, 1);
  EXPECT_EQ(t.count(), 3u);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 2.75);
  EXPECT_DOUBLE_EQ(t.min_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(t.max_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(t.stream_total(0), 0.75);
  EXPECT_DOUBLE_EQ(t.stream_total(1), 2.0);
}

TEST(TelemetryTimer, ScopedTimerRecordsNonNegativeSample) {
  SKIP_IF_TELEMETRY_OFF();
  Timer t;
  {
    const ScopedTimer scope(t);
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
  }
  EXPECT_EQ(t.count(), 1u);
  EXPECT_GE(t.total_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(t.total_seconds(), t.max_seconds());
}

TEST(TelemetryHistogram, InclusiveUpperBoundsAndOverflow) {
  SKIP_IF_TELEMETRY_OFF();
  // Bounds are sorted + deduplicated on construction.
  Histogram h({4.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 4.0}));
  h.observe(0.5);   // <= 1       -> bucket 0
  h.observe(1.0);   // == bound 1 -> bucket 0 (inclusive)
  h.observe(1.5);   //            -> bucket 1
  h.observe(4.0);   // == bound 4 -> bucket 2
  h.observe(99.0);  // overflow
  EXPECT_EQ(h.merged_counts(), (std::vector<std::uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.0);
  EXPECT_DOUBLE_EQ(h.mean(), 21.2);
}

TEST(TelemetryHistogram, MergesStreamShardsByBucket) {
  SKIP_IF_TELEMETRY_OFF();
  Histogram h({1.0, 2.0}, 2);
  h.observe(0.5, 0);
  h.observe(0.5, 1);
  h.observe(1.5, 1);
  h.observe(9.0, 0);
  EXPECT_EQ(h.merged_counts(), (std::vector<std::uint64_t>{2, 1, 1}));
  EXPECT_EQ(h.count(), 4u);
}

TEST(TelemetryRegistry, LookupOrCreateReturnsSameMetric) {
  SKIP_IF_TELEMETRY_OFF();
  Registry registry;
  Counter& a = registry.counter("x.count", "items");
  Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(TelemetryRegistry, KindMismatchThrows) {
  SKIP_IF_TELEMETRY_OFF();
  Registry registry;
  registry.counter("metric");
  EXPECT_THROW(registry.gauge("metric"), std::logic_error);
  EXPECT_THROW(registry.timer("metric"), std::logic_error);
  EXPECT_THROW(registry.histogram("metric", {1.0}), std::logic_error);
}

TEST(TelemetryRegistry, SnapshotCarriesEveryKind) {
  SKIP_IF_TELEMETRY_OFF();
  Registry registry;
  registry.counter("c", "items", 2).add(4, 1);
  registry.gauge("g").set(1.25);
  registry.timer("t").add(0.5);
  registry.histogram("h", {1.0, 2.0}).observe(1.5);

  const auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 4u);
  EXPECT_EQ(snaps[0].name, "c");
  EXPECT_EQ(snaps[0].kind, Kind::kCounter);
  EXPECT_EQ(snaps[0].count, 4u);
  EXPECT_EQ(snaps[0].stream_values, (std::vector<double>{0.0, 4.0}));
  EXPECT_EQ(snaps[1].kind, Kind::kGauge);
  EXPECT_DOUBLE_EQ(snaps[1].value, 1.25);
  EXPECT_EQ(snaps[2].kind, Kind::kTimer);
  EXPECT_EQ(snaps[2].count, 1u);
  EXPECT_DOUBLE_EQ(snaps[2].sum, 0.5);
  EXPECT_EQ(snaps[3].kind, Kind::kHistogram);
  EXPECT_EQ(snaps[3].bucket_counts, (std::vector<std::uint64_t>{0, 1, 0}));
  EXPECT_DOUBLE_EQ(snaps[3].value, 1.5);  // mean
}

TEST(TelemetryRegistry, ColumnNamesAndValuesStayAligned) {
  SKIP_IF_TELEMETRY_OFF();
  Registry registry;
  registry.counter("c", "", 2).add(1, 0);
  registry.gauge("g", "", 3).set(2.0, 2);
  registry.timer("t").add(0.125);
  registry.histogram("h", {1.0}).observe(0.5);

  std::vector<std::string> names;
  registry.column_names(names);
  std::vector<double> values;
  registry.column_values(values);
  ASSERT_EQ(names.size(), values.size());
  // c, c[0], c[1], g[0..2], t, h.count, h.mean
  const std::vector<std::string> expected{"c",    "c[0]", "c[1]",
                                          "g[0]", "g[1]", "g[2]",
                                          "t",    "h.count", "h.mean"};
  EXPECT_EQ(names, expected);
  EXPECT_DOUBLE_EQ(values[0], 1.0);
  EXPECT_DOUBLE_EQ(values[5], 2.0);
  EXPECT_DOUBLE_EQ(values[6], 0.125);
  EXPECT_DOUBLE_EQ(values[7], 1.0);
  EXPECT_DOUBLE_EQ(values[8], 0.5);
}

TEST(TelemetryTimeSeries, SamplesRowsAlignedWithColumns) {
  SKIP_IF_TELEMETRY_OFF();
  Registry registry;
  Counter& c = registry.counter("events");
  TimeSeries series;
  c.add(2);
  series.sample(registry, 10);
  c.add(3);
  series.sample(registry, 20);
  ASSERT_EQ(series.t, (std::vector<int>{10, 20}));
  ASSERT_EQ(series.names.size(), 1u);
  ASSERT_EQ(series.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(series.rows[0][0], 2.0);
  EXPECT_DOUBLE_EQ(series.rows[1][0], 5.0);

  std::ostringstream csv;
  write_csv(csv, series);
  EXPECT_EQ(csv.str(), "t,events\n10,2\n20,5\n");
}

TEST(TelemetryExport, JsonCarriesSchemaMetricsAndSeries) {
  SKIP_IF_TELEMETRY_OFF();
  Registry registry;
  registry.counter("events").add(7);
  registry.gauge("level").set(0.5);
  TimeSeries series;
  series.sample(registry, 1);

  std::ostringstream out;
  write_json(out, registry, &series, "unit-test");
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema\": \"lfsc.telemetry/1\""), std::string::npos);
  EXPECT_NE(json.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"events\", \"kind\": \"counter\""),
            std::string::npos);
  EXPECT_NE(json.find("\"value\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  EXPECT_NE(json.find("\"t\": [1]"), std::string::npos);
}

// The OFF build keeps the full API surface but everything reads zero;
// exporters emit an "enabled": false shell. (In the ON build the same
// assertions hold for a freshly-registered registry, so run both ways.)
TEST(TelemetryDisabledContract, StubsReadZeroAndExportsStayValid) {
  Registry registry;
  Counter& c = registry.counter("c");
  Gauge& g = registry.gauge("g");
  Timer& t = registry.timer("t");
  Histogram& h = registry.histogram("h", {1.0});
  if (!kEnabled) {
    c.add(5);
    g.set(1.0);
    t.add(1.0);
    h.observe(0.5);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    EXPECT_DOUBLE_EQ(t.total_seconds(), 0.0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(registry.empty());
    EXPECT_TRUE(registry.snapshot().empty());
  }

  TimeSeries series;
  if (!kEnabled) {
    series.sample(registry, 1);
    EXPECT_TRUE(series.empty());
  }

  std::ostringstream json;
  write_json(json, registry, &series, "contract");
  const std::string expected_enabled =
      kEnabled ? "\"enabled\": true" : "\"enabled\": false";
  EXPECT_NE(json.str().find(expected_enabled), std::string::npos);

  std::ostringstream csv;
  write_csv(csv, series);
  EXPECT_EQ(csv.str().substr(0, 1), "t");
}

}  // namespace
}  // namespace lfsc::telemetry
