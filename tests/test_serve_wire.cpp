// Wire-level tests of the lfsc_serve Unix-socket front-end (DESIGN.md
// §16), against the real binary over real sockets: line reassembly
// across arbitrary write boundaries, the 64 KiB oversized-line bound,
// per-peer chunker isolation under interleaved writes, the --max-peers
// cap, the live-socket startup probe (never steal a served path, always
// reclaim a stale one), slow-peer eviction at the --peer-buffer bound,
// and the zero-downtime handoff: old process passes the listening
// socket to a --takeover successor which continues byte-identically
// with no task dropped or duplicated.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "telemetry/telemetry.h"
#include "test_util.h"

namespace lfsc {
namespace {

const std::vector<std::string> kServeArgs = {
    "--scns", "6", "--capacity", "5", "--alpha", "3", "--beta", "7",
    "--telemetry-interval", "1",
};

/// Forks lfsc_serve with stdio on /dev/null (socket mode needs neither).
pid_t spawn_serve(const std::vector<std::string>& extra) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    const int null_fd = ::open("/dev/null", O_RDWR);
    ::dup2(null_fd, STDIN_FILENO);
    ::dup2(null_fd, STDOUT_FILENO);
    ::close(null_fd);
    std::vector<std::string> args = kServeArgs;
    args.insert(args.end(), extra.begin(), extra.end());
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(LFSC_SERVE_BIN));
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(LFSC_SERVE_BIN, argv.data());
    std::_Exit(127);
  }
  return pid;
}

bool wait_exit(pid_t pid, int& status, int timeout_ms = 20000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) return true;
    if (r < 0) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, &status, 0);
  return false;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Connect with retry: the service creates the socket after its (brief)
/// learner construction, so the first connects may race it.
int connect_retry(const std::string& path, int timeout_ms = 15000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const int fd = connect_unix(path);
    if (fd >= 0) return fd;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

/// One protocol client over a connected socket: raw sends (so tests can
/// split lines at arbitrary byte boundaries) plus a buffered line
/// reader that can skip asynchronous `push` broadcasts.
class SockClient {
 public:
  explicit SockClient(int fd) : fd_(fd) {}
  ~SockClient() { close(); }
  SockClient(const SockClient&) = delete;
  SockClient& operator=(const SockClient&) = delete;

  int fd() const { return fd_; }
  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool send(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Next line (terminator stripped); "<eof>" / "<timeout>" sentinels
  /// keep assertion messages readable when the service misbehaves.
  std::string read_line(int timeout_ms = 15000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const auto nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return "<timeout>";
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) return "<timeout>";
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n == 0) return "<eof>";
      if (n < 0) {
        if (errno == EINTR) continue;
        return "<eof>";
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Next command response, skipping interleaved `push` broadcasts.
  std::string next_response(int timeout_ms = 15000) {
    for (;;) {
      std::string line = read_line(timeout_ms);
      if (line.rfind("push ", 0) == 0) continue;
      return line;
    }
  }

  std::string request(const std::string& line) {
    if (!send(line + "\n")) return "<send-failed>";
    return next_response();
  }

 private:
  int fd_;
  std::string buffer_;
};

std::map<std::string, std::string> parse_stats(const std::string& line) {
  std::map<std::string, std::string> out;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      out[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return out;
}

/// Same deterministic per-slot stream as tests/test_serve.cpp.
std::vector<std::string> make_task_lines(int slot, int count,
                                         int num_scns = 6) {
  std::mt19937 rng(static_cast<unsigned>(1000 + slot));
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<std::string> lines;
  for (int i = 0; i < count; ++i) {
    const int m0 = static_cast<int>(rng() % static_cast<unsigned>(num_scns));
    const int m1 = (m0 + 1 + static_cast<int>(
                                 rng() % static_cast<unsigned>(num_scns - 1))) %
                   num_scns;
    std::ostringstream os;
    os.precision(17);
    os << "task " << i << ' ' << 5.0 + 10.0 * unit(rng) << ' '
       << 1.0 + 2.0 * unit(rng) << ' '
       << (i % 3 == 0 ? "cpu" : i % 3 == 1 ? "gpu" : "cpugpu") << ' ' << m0
       << ':' << unit(rng) << ':' << unit(rng) << ':' << 1.0 + unit(rng)
       << ',' << m1 << ':' << unit(rng) << ':' << unit(rng) << ':'
       << 1.0 + unit(rng);
    lines.push_back(os.str());
  }
  return lines;
}

void drive_slots(SockClient& client, int from, int to) {
  for (int t = from; t <= to; ++t) {
    for (const auto& line : make_task_lines(t, 10)) {
      ASSERT_EQ(client.request(line).rfind("ok", 0), 0u) << line;
    }
    ASSERT_EQ(client.request("tick"),
              "ok slot=" + std::to_string(t) + " tasks=10");
  }
}

void shutdown_and_reap(SockClient& client, pid_t pid) {
  EXPECT_EQ(client.request("shutdown"), "ok shutdown");
  int status = 0;
  ASSERT_TRUE(wait_exit(pid, status));
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// ---------------------------------------------------------------------
// Line reassembly across arbitrary write boundaries.
// ---------------------------------------------------------------------

TEST(ServeWire, ReassemblesLinesSplitAtEveryByte) {
  ScopedTempDir tmp;
  const std::string sock = tmp.path("s.sock");
  const pid_t pid = spawn_serve({"--socket", sock});
  ASSERT_GT(pid, 0);
  SockClient client(connect_retry(sock));
  ASSERT_GE(client.fd(), 0);

  // One byte per send(): the chunker must see the same line a
  // well-behaved client would have written in one piece.
  const std::string task = "task 1 10 2 cpu 0:0.5:0.5:1.5\n";
  for (const char c : task) {
    ASSERT_TRUE(client.send(std::string(1, c)));
  }
  EXPECT_EQ(client.next_response(), "ok queued=1");

  // Two commands split mid-verb across three writes.
  ASSERT_TRUE(client.send("ti"));
  ASSERT_TRUE(client.send("ck\nsta"));
  ASSERT_TRUE(client.send("ts\n"));
  EXPECT_EQ(client.next_response(), "ok slot=1 tasks=1");
  const std::string stats = client.next_response();
  EXPECT_EQ(stats.rfind("ok instances=1 ", 0), 0u) << stats;
  EXPECT_EQ(parse_stats(stats).at("protocol_errors"), "0");
  shutdown_and_reap(client, pid);
}

// ---------------------------------------------------------------------
// Oversized (> 64 KiB) lines: exactly one error, then clean recovery.
// ---------------------------------------------------------------------

TEST(ServeWire, OversizedLineYieldsExactlyOneError) {
  ScopedTempDir tmp;
  const std::string sock = tmp.path("s.sock");
  const pid_t pid = spawn_serve({"--socket", sock});
  ASSERT_GT(pid, 0);
  SockClient client(connect_retry(sock));
  ASSERT_GE(client.fd(), 0);

  ASSERT_TRUE(client.send(std::string(70000, 'a') + "\n"));
  EXPECT_EQ(client.next_response(), "err oversized line (max 65536 bytes)");
  // The flood is discarded up to its terminator; the next line is clean
  // and the counter moved exactly once.
  EXPECT_EQ(client.request("task 1 10 2 cpu 0:0.5:0.5:1.5"), "ok queued=1");
  const auto stats = parse_stats(client.request("stats"));
  EXPECT_EQ(stats.at("protocol_errors"), "1");
  shutdown_and_reap(client, pid);
}

// ---------------------------------------------------------------------
// Interleaved multi-peer writes: chunkers are per-peer, responses go to
// the right socket, and one malformed line = one error.
// ---------------------------------------------------------------------

TEST(ServeWire, InterleavedPeersKeepIndependentChunkers) {
  ScopedTempDir tmp;
  const std::string sock = tmp.path("s.sock");
  const pid_t pid = spawn_serve({"--socket", sock});
  ASSERT_GT(pid, 0);
  SockClient a(connect_retry(sock));
  SockClient b(connect_retry(sock));
  ASSERT_GE(a.fd(), 0);
  ASSERT_GE(b.fd(), 0);

  // A parks half a task line; B's complete traffic must be unaffected.
  const std::string task = "task 1 10 2 cpu 0:0.5:0.5:1.5";
  ASSERT_TRUE(a.send(task.substr(0, 17)));
  EXPECT_EQ(b.request("task 2 11 2 gpu 1:0.6:0.6:1.2"), "ok queued=1");
  EXPECT_EQ(b.request("bogus").rfind("err ", 0), 0u);
  ASSERT_TRUE(a.send(task.substr(17) + "\n"));
  EXPECT_EQ(a.next_response(), "ok queued=2");
  EXPECT_EQ(b.request("tick"), "ok slot=1 tasks=2");
  const auto stats = parse_stats(a.request("stats"));
  EXPECT_EQ(stats.at("protocol_errors"), "1")
      << "exactly one err per malformed line";
  shutdown_and_reap(b, pid);
}

// ---------------------------------------------------------------------
// --max-peers: the N+1th client is told `err busy` and disconnected.
// ---------------------------------------------------------------------

TEST(ServeWire, MaxPeersCapSheds) {
  ScopedTempDir tmp;
  const std::string sock = tmp.path("s.sock");
  const pid_t pid = spawn_serve({"--socket", sock, "--max-peers", "1"});
  ASSERT_GT(pid, 0);
  SockClient first(connect_retry(sock));
  ASSERT_GE(first.fd(), 0);
  ASSERT_EQ(first.request("stats").rfind("ok ", 0), 0u);  // accepted

  SockClient second(connect_unix(sock));
  ASSERT_GE(second.fd(), 0);  // connect lands in the backlog regardless
  EXPECT_EQ(second.next_response(), "err busy");
  EXPECT_EQ(second.read_line(), "<eof>");
  // The accepted peer is unaffected.
  EXPECT_EQ(first.request("tick"), "ok slot=1 tasks=0");
  shutdown_and_reap(first, pid);
}

// ---------------------------------------------------------------------
// Startup probe: never unlink a live service's socket; do reclaim a
// stale one left by a dead process.
// ---------------------------------------------------------------------

TEST(ServeWire, RefusesToStealALiveSocket) {
  ScopedTempDir tmp;
  const std::string sock = tmp.path("s.sock");
  const pid_t pid = spawn_serve({"--socket", sock});
  ASSERT_GT(pid, 0);
  SockClient client(connect_retry(sock));
  ASSERT_GE(client.fd(), 0);

  const pid_t thief = spawn_serve({"--socket", sock});
  ASSERT_GT(thief, 0);
  int status = 0;
  ASSERT_TRUE(wait_exit(thief, status)) << "second service must exit, fast";
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2)
      << "starting on a live socket must fail with exit 2";
  // And it must not have unlinked the path out from under the owner.
  EXPECT_EQ(client.request("tick"), "ok slot=1 tasks=0");
  shutdown_and_reap(client, pid);
}

TEST(ServeWire, ReclaimsStaleSocketOfADeadProcess) {
  ScopedTempDir tmp;
  const std::string sock = tmp.path("s.sock");
  const pid_t victim = spawn_serve({"--socket", sock});
  ASSERT_GT(victim, 0);
  {
    SockClient probe(connect_retry(sock));
    ASSERT_GE(probe.fd(), 0);
  }
  ASSERT_EQ(::kill(victim, SIGKILL), 0);  // dies without unlinking
  int status = 0;
  ASSERT_TRUE(wait_exit(victim, status));

  const pid_t heir = spawn_serve({"--socket", sock});
  ASSERT_GT(heir, 0);
  SockClient client(connect_retry(sock));
  ASSERT_GE(client.fd(), 0) << "stale socket file was not reclaimed";
  EXPECT_EQ(client.request("tick"), "ok slot=1 tasks=0");
  shutdown_and_reap(client, heir);
}

// ---------------------------------------------------------------------
// Slow-peer eviction: a client that stops reading is cut at the
// --peer-buffer bound while the service keeps ticking.
// ---------------------------------------------------------------------

TEST(ServeWire, SlowPeerIsEvictedAtItsBufferBound) {
  ScopedTempDir tmp;
  const std::string sock = tmp.path("s.sock");
  const pid_t pid =
      spawn_serve({"--socket", sock, "--peer-buffer", "4096"});
  ASSERT_GT(pid, 0);
  SockClient driver(connect_retry(sock));
  SockClient slow(connect_retry(sock));
  ASSERT_GE(driver.fd(), 0);
  ASSERT_GE(slow.fd(), 0);
  ASSERT_EQ(driver.request("reconfig telemetry_push=1"),
            "ok reconfig telemetry_push=1");

  // Every tick pushes a telemetry line to both peers. The slow peer
  // never reads: once the kernel buffer stops absorbing, its output
  // buffer grows to the bound and it must be evicted — detected by a
  // write probe hitting the closed socket (EPIPE/ECONNRESET).
  bool evicted = false;
  for (int t = 1; t <= 4000 && !evicted; ++t) {
    ASSERT_EQ(driver.request("tick").rfind("ok slot=", 0), 0u);
    if (t % 8 != 0) continue;
    const ssize_t n = ::send(slow.fd(), "x", 1, MSG_NOSIGNAL);
    evicted = n < 0 && (errno == EPIPE || errno == ECONNRESET);
  }
  EXPECT_TRUE(evicted) << "slow peer never evicted within its bound";
  // The tick path never blocked on the stalled peer.
  const std::string stats = driver.request("stats");
  ASSERT_EQ(stats.rfind("ok ", 0), 0u);
  if (telemetry::kEnabled) {
    const std::string json = driver.request("telemetry");
    const auto name = json.find("serve.peer.evicted_slow");
    ASSERT_NE(name, std::string::npos) << json;
    const auto value = json.find("\"value\": ", name);
    ASSERT_NE(value, std::string::npos);
    EXPECT_GE(std::stol(json.substr(value + 9)), 1);
  }
  shutdown_and_reap(driver, pid);
}

// ---------------------------------------------------------------------
// The tentpole end to end: handoff passes the listening socket to a
// --takeover successor; the queued tasks cross intact and the
// post-handoff run is byte-identical to an uninterrupted reference.
// ---------------------------------------------------------------------

TEST(ServeWire, HandoffToTakeoverSuccessorIsLossless) {
  ScopedTempDir tmp;
  constexpr int kSlots = 12;
  constexpr int kHandoffAfter = 8;

  // Reference: one process, same stream, `checkpoint` where the handoff
  // run hands off (tasks for the next slot already queued).
  const std::string ref_sock = tmp.path("ref.sock");
  const pid_t ref_pid = spawn_serve(
      {"--socket", ref_sock, "--checkpoint", tmp.path("ref")});
  ASSERT_GT(ref_pid, 0);
  std::string want_stats;
  {
    SockClient client(connect_retry(ref_sock));
    ASSERT_GE(client.fd(), 0);
    drive_slots(client, 1, kHandoffAfter);
    for (const auto& line : make_task_lines(kHandoffAfter + 1, 10)) {
      ASSERT_EQ(client.request(line).rfind("ok", 0), 0u);
    }
    ASSERT_EQ(client.request("checkpoint"), "ok generation=1");
    ASSERT_EQ(client.request("tick"),
              "ok slot=" + std::to_string(kHandoffAfter + 1) + " tasks=10");
    drive_slots(client, kHandoffAfter + 2, kSlots);
    want_stats = client.request("stats");
    ASSERT_EQ(want_stats.rfind("ok ", 0), 0u);
    shutdown_and_reap(client, ref_pid);
  }

  // Old process: identical stream to the handoff point, next slot's
  // tasks queued, then `handoff`.
  const std::string sock = tmp.path("live.sock");
  const std::string prefix = tmp.path("hand");
  const pid_t old_pid =
      spawn_serve({"--socket", sock, "--checkpoint", prefix});
  ASSERT_GT(old_pid, 0);
  SockClient old_client(connect_retry(sock));
  ASSERT_GE(old_client.fd(), 0);
  drive_slots(old_client, 1, kHandoffAfter);
  for (const auto& line : make_task_lines(kHandoffAfter + 1, 10)) {
    ASSERT_EQ(old_client.request(line).rfind("ok", 0), 0u);
  }
  ASSERT_EQ(old_client.request("handoff"), "ok handoff generation=1");

  // Successor: --takeover receives the listening socket over
  // <socket>.handoff and resumes the final generation; the predecessor
  // must then exit 0 on its own.
  const pid_t new_pid = spawn_serve(
      {"--socket", sock, "--checkpoint", prefix, "--takeover"});
  ASSERT_GT(new_pid, 0);
  int status = 0;
  ASSERT_TRUE(wait_exit(old_pid, status)) << "predecessor did not exit";
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  old_client.close();

  // Same path, new process, nothing lost: the first tick completes the
  // next slot with exactly the tasks queued before the handoff.
  SockClient client(connect_retry(sock));
  ASSERT_GE(client.fd(), 0);
  const auto resumed = parse_stats(client.request("stats"));
  EXPECT_EQ(resumed.at("slots"), std::to_string(kHandoffAfter));
  ASSERT_EQ(client.request("tick"),
            "ok slot=" + std::to_string(kHandoffAfter + 1) + " tasks=10");
  drive_slots(client, kHandoffAfter + 2, kSlots);

  // The whole stats line — service counters included — byte-identical
  // to the run that never changed processes.
  EXPECT_EQ(client.request("stats"), want_stats);
  shutdown_and_reap(client, new_pid);
}

}  // namespace
}  // namespace lfsc
