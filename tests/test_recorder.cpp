#include "metrics/recorder.h"

#include <gtest/gtest.h>

namespace lfsc {
namespace {

SlotOutcome make_outcome(double reward, double qos, double res) {
  SlotOutcome o;
  o.reward = reward;
  o.qos_violation = qos;
  o.resource_violation = res;
  return o;
}

TEST(SeriesRecorder, AccumulatesTotals) {
  SeriesRecorder rec("LFSC");
  rec.add(make_outcome(1.0, 0.5, 0.0));
  rec.add(make_outcome(2.0, 0.0, 0.25));
  EXPECT_EQ(rec.name(), "LFSC");
  EXPECT_EQ(rec.slots(), 2u);
  EXPECT_DOUBLE_EQ(rec.total_reward(), 3.0);
  EXPECT_DOUBLE_EQ(rec.total_qos_violation(), 0.5);
  EXPECT_DOUBLE_EQ(rec.total_resource_violation(), 0.25);
  EXPECT_DOUBLE_EQ(rec.total_violation(), 0.75);
}

TEST(SeriesRecorder, CumulativeSeriesArePrefixSums) {
  SeriesRecorder rec("x");
  rec.add(make_outcome(1.0, 1.0, 0.0));
  rec.add(make_outcome(2.0, 0.0, 1.0));
  rec.add(make_outcome(3.0, 2.0, 0.0));
  EXPECT_EQ(rec.cumulative_reward(), (std::vector<double>{1.0, 3.0, 6.0}));
  EXPECT_EQ(rec.cumulative_qos_violation(),
            (std::vector<double>{1.0, 1.0, 3.0}));
  EXPECT_EQ(rec.cumulative_resource_violation(),
            (std::vector<double>{0.0, 1.0, 1.0}));
}

TEST(SeriesRecorder, PerformanceRatioDefinition) {
  SeriesRecorder rec("x");
  rec.add(make_outcome(3.0, 1.0, 0.0));  // ratio 3/4
  rec.add(make_outcome(1.0, 0.0, 1.0));  // cumulative: 4/(4+2) = 2/3
  const auto ratio = rec.performance_ratio();
  ASSERT_EQ(ratio.size(), 2u);
  EXPECT_NEAR(ratio[0], 0.75, 1e-12);
  EXPECT_NEAR(ratio[1], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(rec.final_performance_ratio(), 2.0 / 3.0, 1e-12);
}

TEST(SeriesRecorder, RatioIsOneWithoutViolations) {
  SeriesRecorder rec("clean");
  rec.add(make_outcome(1.0, 0.0, 0.0));
  EXPECT_DOUBLE_EQ(rec.final_performance_ratio(), 1.0);
  SeriesRecorder empty("empty");
  EXPECT_DOUBLE_EQ(empty.final_performance_ratio(), 1.0);
}

TEST(SeriesRecorder, TailMeans) {
  SeriesRecorder rec("x");
  for (int i = 1; i <= 10; ++i) {
    rec.add(make_outcome(static_cast<double>(i), static_cast<double>(10 - i),
                         0.0));
  }
  EXPECT_DOUBLE_EQ(rec.mean_reward_tail(2), 9.5);        // (9+10)/2
  EXPECT_DOUBLE_EQ(rec.mean_qos_violation_tail(2), 0.5); // (1+0)/2
  EXPECT_DOUBLE_EQ(rec.mean_reward_tail(100), 5.5);      // clamps to size
  SeriesRecorder empty("e");
  EXPECT_DOUBLE_EQ(empty.mean_reward_tail(5), 0.0);
}

TEST(SeriesRecorder, SpansViewLiveData) {
  SeriesRecorder rec("x");
  rec.add(make_outcome(1.5, 0.25, 0.75));
  ASSERT_EQ(rec.reward().size(), 1u);
  EXPECT_DOUBLE_EQ(rec.reward()[0], 1.5);
  EXPECT_DOUBLE_EQ(rec.qos_violation()[0], 0.25);
  EXPECT_DOUBLE_EQ(rec.resource_violation()[0], 0.75);
}

}  // namespace
}  // namespace lfsc
