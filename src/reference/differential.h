// Differential fuzz harness: drives the optimized LfscPolicy and the
// naive ReferenceLfscPolicy (reference_policy.h) through identical
// randomized slot streams and compares them slot by slot.
//
// What is compared, and how tightly (full table in DESIGN.md §10):
//   * Alg. 2 probability vectors     — within DiffTolerances::probability
//     (the two sides sum and normalize in different orders; the shared
//     floor/renormalization schedule keeps the gap to association noise);
//   * capped set S', |S'|, epsilon_t — exact flags / |S'|, relative
//     tolerance on epsilon;
//   * Alg. 4 assignments             — exact, except slots where the two
//     sides' float-precision edge keys differ (a double-ulp probability
//     gap that crosses a float rounding boundary changes the key order
//     legitimately; such slots are counted, not failed);
//   * Lagrange multipliers           — within DiffTolerances::multiplier;
//   * final weight tables            — within DiffTolerances::weight
//     on the flushed (max == 1) views, with cells in the positivity-
//     floor zone exempt (a floor pinned a few renorm-divisions apart can
//     sit at neighboring representable values);
//   * invariants on BOTH sides, every slot: sum p = min(c, K_m),
//     p in [0,1], capped => p == 1, constraints (1a)/(1b), and on small
//     slots the Lemma 2 bound greedy >= OPT/(c+1) via solve_exact;
//   * twin runs of the optimized policy with parallel_scns and with
//     Efraimidis-Spirakis edges — bit-exact probability/weight match
//     against the serial deterministic run (they share every stream).
#pragma once

#include <cstdint>
#include <string>

#include "lfsc/config.h"
#include "sim/network.h"

namespace lfsc {

struct DiffTolerances {
  /// Per-arm |p_ref - p_opt|: cross-implementation summation/association
  /// noise, amplified by up to ~K slots of IPW compounding (DESIGN.md §10).
  double probability = 5e-5;
  /// |sum p - min(c, K_m)| per SCN-slot, scaled by max(1, K_m).
  double prob_sum = 1e-8;
  /// Relative gap on epsilon_t when both sides capped.
  double epsilon_rel = 1e-6;
  /// |lambda_ref - lambda_opt|; the dual ascent consumes identical
  /// realized sums, so this is pure arithmetic-association noise.
  double multiplier = 1e-9;
  /// Max-normalized final weight tables, outside the floor zone.
  double weight = 1e-5;
  /// Both sides below this => the cell sits in the positivity-floor
  /// zone; absolute floor values may differ by renorm-division rounding.
  double weight_floor_zone = 1e-4;
};

/// One randomized problem instance: network shape, algorithm tunables
/// and slot-stream generator parameters. Fully determined by `seed`.
struct DiffInstance {
  std::uint64_t seed = 0;
  NetworkConfig net;
  LfscConfig lfsc;  ///< deterministic_edges/parallel_scns set by the runner
  int slots = 60;
  int min_tasks = 0;   ///< per-slot task count, uniform in [min, max]
  int max_tasks = 40;
  double coverage_density = 0.6;  ///< P(task in SCN coverage); 1 = full
  bool wide_feedback = false;     ///< u,v,q near the sanitization envelope
  bool poison_feedback = false;   ///< occasional insane values (both reject)
};

/// Deterministically derives a randomized instance from `seed`,
/// exercising SCN counts, capacities, coverage shapes, c/alpha/beta,
/// exploration rates, aggressive eta scales and K <= c slot shapes.
DiffInstance random_instance(std::uint64_t seed);

struct DiffOptions {
  DiffTolerances tol;
  /// Runs the reference with a deliberate off-by-one in the epsilon
  /// fixed point (caps one arm fewer than the consistent cut); the
  /// harness must then report a divergence on instances that cap.
  bool inject_epsilon_off_by_one = false;
  /// Twin optimized run with parallel_scns = true; must stay bit-exact.
  bool check_parallel = true;
  /// Twin optimized run with Efraimidis-Spirakis edges on the shared
  /// feedback stream; probabilities/weights must stay bit-exact and its
  /// assignments must satisfy (1a)/(1b).
  bool check_es_edges = true;
  /// Upper bound on solve_exact calls per instance (small slots only).
  int max_exact_checks = 50;
};

struct DiffResult {
  bool diverged = false;
  std::string detail;  ///< first divergence: check, slot, SCN, values
  int slots_run = 0;
  int capped_scn_slots = 0;  ///< SCN-slots with a non-empty S'
  int key_tie_skips = 0;     ///< assignment compares skipped (float-key tie)
  int exact_checks = 0;      ///< Lemma 2 bound evaluations run
  double max_probability_gap = 0.0;
  double max_multiplier_gap = 0.0;
  double max_weight_gap = 0.0;  ///< outside the floor zone
};

/// Runs one differential instance. Returns at the first divergence.
DiffResult run_differential(const DiffInstance& inst,
                            const DiffOptions& opts = {});

}  // namespace lfsc
