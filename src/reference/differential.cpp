#include "reference/differential.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "lfsc/lfsc_policy.h"
#include "reference/reference_policy.h"
#include "sim/task.h"
#include "solver/bipartite.h"
#include "solver/branch_and_bound.h"

namespace lfsc {
namespace {

/// Stream ids of the harness's own randomness, disjoint from the policy
/// streams (kScnStreamBase) so instance generation never perturbs the
/// policies' draws.
constexpr std::uint64_t kWorldStream = 0xD1FF0001ULL;
constexpr std::uint64_t kFeedbackSeedSalt = 0xF33DF33DULL;

std::string describe(int t, int m, const std::string& what) {
  std::ostringstream out;
  out << "slot " << t << " scn " << m << ": " << what;
  return out.str();
}

/// One randomized slot: task contexts uniform in [0,1]^3, coverage as an
/// independent per-(SCN, task) inclusion draw.
void generate_slot(const DiffInstance& inst, int t, RngStream& world,
                   SlotInfo& info) {
  info.t = t;
  const auto num_tasks = static_cast<std::size_t>(
      world.uniform_int(inst.min_tasks, inst.max_tasks));
  info.tasks.assign(num_tasks, Task{});
  for (std::size_t i = 0; i < num_tasks; ++i) {
    auto& task = info.tasks[i];
    task.id = static_cast<std::int64_t>(t) * 1'000'000 +
              static_cast<std::int64_t>(i);
    task.wd_id = static_cast<int>(i);
    for (auto& coord : task.context.normalized) coord = world.uniform();
  }
  info.coverage.assign(static_cast<std::size_t>(inst.net.num_scns), {});
  for (auto& cover : info.coverage) {
    for (std::size_t i = 0; i < num_tasks; ++i) {
      if (inst.coverage_density >= 1.0 ||
          world.uniform() < inst.coverage_density) {
        cover.push_back(static_cast<int>(i));
      }
    }
  }
}

/// Bandit feedback for `assignment`, keyed by (seed, t, m) so every
/// policy twin receives bit-identical observations regardless of the
/// order the twins run in.
SlotFeedback synthesize_feedback(const DiffInstance& inst, int t,
                                 const Assignment& assignment) {
  SlotFeedback fb;
  fb.per_scn.resize(assignment.selected.size());
  for (std::size_t m = 0; m < assignment.selected.size(); ++m) {
    RngStream draws(inst.seed ^ kFeedbackSeedSalt,
                    (static_cast<std::uint64_t>(t) << 20) |
                        static_cast<std::uint64_t>(m));
    for (const int local : assignment.selected[m]) {
      TaskFeedback f;
      f.local_index = local;
      if (inst.wide_feedback) {
        // Near the sanitization envelope (|u|,|v| <= 100, q in (0,100]).
        f.u = draws.uniform(0.0, 100.0);
        f.v = draws.uniform(0.0, 100.0);
        f.q = draws.uniform(0.5, 100.0);
      } else {
        // The paper's model ranges: U,V in [0,1], Q in [1,2].
        f.u = draws.uniform();
        f.v = draws.uniform();
        f.q = draws.uniform(1.0, 2.0);
      }
      if (inst.poison_feedback && draws.uniform() < 0.08) {
        // Insane observation — both sides must reject it identically.
        switch (draws.uniform_int(0, 3)) {
          case 0: f.u = std::numeric_limits<double>::quiet_NaN(); break;
          case 1: f.v = std::numeric_limits<double>::infinity(); break;
          case 2: f.q = -1.0; break;
          default: f.u = 1e9; break;
        }
      }
      fb.per_scn[m].push_back(f);
    }
  }
  return fb;
}

/// Checks constraints (1a) and (1b) plus index hygiene (locals valid,
/// strictly ascending). Returns a description of the first violation.
bool assignment_valid(const SlotInfo& info, const Assignment& a,
                      int capacity_c, std::string& why) {
  if (a.selected.size() != info.coverage.size()) {
    why = "assignment SCN count mismatch";
    return false;
  }
  std::vector<char> taken(info.tasks.size(), 0);
  for (std::size_t m = 0; m < a.selected.size(); ++m) {
    const auto& sel = a.selected[m];
    const auto& cover = info.coverage[m];
    if (sel.size() > static_cast<std::size_t>(capacity_c)) {
      why = "capacity (1a) violated";
      return false;
    }
    int prev = -1;
    for (const int local : sel) {
      if (local <= prev) {
        why = "locals not strictly ascending";
        return false;
      }
      prev = local;
      if (local < 0 || static_cast<std::size_t>(local) >= cover.size()) {
        why = "local index out of coverage";
        return false;
      }
      const auto task = static_cast<std::size_t>(cover[local]);
      if (taken[task]) {
        why = "task assigned twice (1b)";
        return false;
      }
      taken[task] = 1;
    }
  }
  return true;
}

/// Per-SCN Alg. 2 invariants that hold for any correct implementation:
/// p in [0,1], sum p = min(c, K_m), capped => p == 1.
bool probabilities_invariant(const std::vector<double>& p,
                             const std::vector<std::uint8_t>& capped,
                             int capacity_c, const DiffTolerances& tol,
                             std::string& why) {
  double sum = 0.0;
  for (std::size_t j = 0; j < p.size(); ++j) {
    if (!(p[j] >= 0.0) || !(p[j] <= 1.0) || !std::isfinite(p[j])) {
      why = "probability outside [0,1]";
      return false;
    }
    if (capped[j] != 0 && p[j] < 1.0 - 1e-9) {
      why = "capped arm with p < 1";
      return false;
    }
    sum += p[j];
  }
  const double expected =
      std::min(static_cast<double>(capacity_c), static_cast<double>(p.size()));
  if (std::abs(sum - expected) >
      tol.prob_sum * std::max<double>(1.0, static_cast<double>(p.size()))) {
    why = "sum p != min(c, K)";
    return false;
  }
  return true;
}

}  // namespace

DiffInstance random_instance(std::uint64_t seed) {
  DiffInstance inst;
  inst.seed = seed;
  RngStream g(seed, kWorldStream);

  inst.net.num_scns = static_cast<int>(g.uniform_int(1, 6));
  inst.net.capacity_c = static_cast<int>(g.uniform_int(1, 8));
  const auto c = static_cast<double>(inst.net.capacity_c);
  inst.net.qos_alpha = g.uniform(0.0, 1.5 * c);
  inst.net.resource_beta = g.uniform(0.5, 2.5 * c);

  inst.lfsc.parts_per_dim = static_cast<std::size_t>(g.uniform_int(1, 4));
  const double gamma_mode = g.uniform();
  if (gamma_mode < 0.3) {
    inst.lfsc.gamma = 0.0;  // auto formula
  } else if (gamma_mode < 0.95) {
    inst.lfsc.gamma = g.uniform(0.02, 0.95);
  } else {
    inst.lfsc.gamma = 1.0;  // pure exploration
  }
  // Aggressive learning rates drive weights to degenerate scales —
  // deep concentration, caps, floors — within a short horizon.
  constexpr double kEtaScales[] = {0.5, 1.0, 2.0, 4.0, 8.0};
  inst.lfsc.eta_scale = kEtaScales[g.uniform_int(0, 4)];
  inst.lfsc.lambda_max = g.uniform(0.5, 5.0);
  inst.lfsc.use_lagrangian = g.uniform() < 0.85;
  inst.lfsc.seed = SplitMix64(seed).next();

  inst.slots = static_cast<int>(g.uniform_int(30, 100));
  inst.lfsc.horizon = static_cast<std::size_t>(inst.slots);

  if (g.uniform() < 0.25) {
    // Tiny slots: K_m <= c dominates (the forced-selection branch).
    inst.min_tasks = 0;
    inst.max_tasks = inst.net.capacity_c;
  } else {
    inst.min_tasks = std::max(0, inst.net.capacity_c - 2);
    inst.max_tasks = std::min<int>(
        60, inst.net.capacity_c * static_cast<int>(g.uniform_int(2, 6)));
  }
  inst.coverage_density = g.uniform() < 0.15 ? 1.0 : g.uniform(0.25, 1.0);
  inst.lfsc.expected_tasks_per_scn = static_cast<std::size_t>(std::max(
      1.0, 0.5 * (inst.min_tasks + inst.max_tasks) * inst.coverage_density));

  inst.wide_feedback = g.uniform() < 0.2;
  inst.poison_feedback = g.uniform() < 0.15;
  return inst;
}

DiffResult run_differential(const DiffInstance& inst,
                            const DiffOptions& opts) {
  DiffResult res;
  const DiffTolerances& tol = opts.tol;

  // The primary pair runs the paper's deterministic edge weighting
  // w(m,i) ∝ p, where the assignment is a pure function of the
  // probabilities and can be compared exactly.
  LfscConfig det = inst.lfsc;
  det.deterministic_edges = true;
  det.parallel_scns = false;
  det.coordinate_scns = true;

  ReferenceLfscPolicy ref(inst.net, det);
  ref.inject_epsilon_off_by_one(opts.inject_epsilon_off_by_one);
  LfscPolicy opt(inst.net, det);

  LfscConfig par_cfg = det;
  par_cfg.parallel_scns = true;
  LfscPolicy par(inst.net, par_cfg);

  LfscConfig es_cfg = det;
  es_cfg.deterministic_edges = false;
  LfscPolicy es(inst.net, es_cfg);

  const auto fail = [&res](int t, int m, const std::string& what) {
    res.diverged = true;
    res.detail = describe(t, m, what);
    return res;
  };

  if (std::abs(ref.gamma() - opt.gamma()) > 1e-12) {
    return fail(0, -1, "effective gamma mismatch");
  }

  RngStream world(inst.seed, kWorldStream + 1);
  SlotInfo info;
  const auto num_scns = static_cast<std::size_t>(inst.net.num_scns);
  for (int t = 1; t <= inst.slots; ++t) {
    generate_slot(inst, t, world, info);
    ++res.slots_run;

    const Assignment a_opt = opt.select(info);
    const Assignment a_ref = ref.select(info);
    Assignment a_par, a_es;
    if (opts.check_parallel) a_par = par.select(info);
    if (opts.check_es_edges) a_es = es.select(info);

    std::string why;
    if (!assignment_valid(info, a_opt, inst.net.capacity_c, why)) {
      return fail(t, -1, "optimized assignment invalid: " + why);
    }
    if (!assignment_valid(info, a_ref, inst.net.capacity_c, why)) {
      return fail(t, -1, "reference assignment invalid: " + why);
    }
    if (opts.check_parallel && !(a_par.selected == a_opt.selected)) {
      return fail(t, -1, "parallel_scns assignment differs from serial");
    }
    if (opts.check_es_edges &&
        !assignment_valid(info, a_es, inst.net.capacity_c, why)) {
      return fail(t, -1, "Efraimidis-Spirakis assignment invalid: " + why);
    }

    bool keys_identical = true;
    for (std::size_t m = 0; m < num_scns; ++m) {
      const auto& pr = ref.last_probabilities(static_cast<int>(m));
      const auto& ro = opt.last_result(static_cast<int>(m));
      const std::size_t K = info.coverage[m].size();
      if (pr.size() != K || ro.p.size() != K) {
        return fail(t, static_cast<int>(m), "probability vector size");
      }

      // Alg. 2 outputs: per-arm probabilities within tolerance, capped
      // set and |S'| exact, epsilon within relative tolerance.
      for (std::size_t j = 0; j < K; ++j) {
        const double gap = std::abs(pr[j] - ro.p[j]);
        res.max_probability_gap = std::max(res.max_probability_gap, gap);
        if (gap > tol.probability) {
          std::ostringstream what;
          what << "probability gap " << gap << " at arm " << j << " (ref "
               << pr[j] << " opt " << ro.p[j] << ")";
          return fail(t, static_cast<int>(m), what.str());
        }
        if (static_cast<float>(pr[j]) != static_cast<float>(ro.p[j])) {
          keys_identical = false;
        }
      }
      const auto& rc = ref.last_capped(static_cast<int>(m));
      if (ref.last_num_capped(static_cast<int>(m)) != ro.num_capped) {
        std::ostringstream what;
        what << "|S'| mismatch (ref "
             << ref.last_num_capped(static_cast<int>(m)) << " opt "
             << ro.num_capped << ")";
        return fail(t, static_cast<int>(m), what.str());
      }
      for (std::size_t j = 0; j < K; ++j) {
        if ((rc[j] != 0) != (ro.capped[j] != 0)) {
          return fail(t, static_cast<int>(m), "capped set mismatch");
        }
      }
      if (ro.num_capped > 0 && K > static_cast<std::size_t>(inst.net.capacity_c)) {
        ++res.capped_scn_slots;
        // epsilon is on the weight scale, which the two sides keep
        // differently (raw vs max-normalized); the ratio epsilon/sum(w')
        // is the scale-invariant fixed-point quantity.
        const double ratio_ref = ref.last_epsilon(static_cast<int>(m)) /
                                 ref.last_weight_sum(static_cast<int>(m));
        const double ratio_opt = ro.epsilon / ro.weight_sum;
        if (std::abs(ratio_ref - ratio_opt) >
            tol.epsilon_rel * std::max(std::abs(ratio_opt), 1e-12)) {
          std::ostringstream what;
          what << "epsilon/sum(w') mismatch (ref " << ratio_ref << " opt "
               << ratio_opt << ")";
          return fail(t, static_cast<int>(m), what.str());
        }
      }

      // Invariants, on both sides independently.
      if (!probabilities_invariant(pr, rc, inst.net.capacity_c, tol, why)) {
        return fail(t, static_cast<int>(m), "reference invariant: " + why);
      }
      if (!probabilities_invariant(ro.p, ro.capped, inst.net.capacity_c, tol,
                                   why)) {
        return fail(t, static_cast<int>(m), "optimized invariant: " + why);
      }

      // The Efraimidis-Spirakis twin shares weights and feedback with
      // the deterministic run, so its Alg. 2 output is bit-identical.
      if (opts.check_es_edges &&
          es.last_probabilities(static_cast<int>(m)) != ro.p) {
        return fail(t, static_cast<int>(m),
                    "Efraimidis-Spirakis twin probability drift");
      }
    }

    // Alg. 4: exact match, unless a double-ulp probability gap crossed a
    // float rounding boundary and legitimately changed the key order.
    if (!(a_ref.selected == a_opt.selected)) {
      if (keys_identical) {
        return fail(t, -1,
                    "assignment mismatch with identical float edge keys");
      }
      ++res.key_tie_skips;
    }

    // Lemma 2 on small slots: greedy >= OPT / (c+1) under the slot's own
    // deterministic edge weights (constraints (1a)/(1b) only).
    std::size_t num_edges = 0;
    for (const auto& cover : info.coverage) num_edges += cover.size();
    if (num_edges > 0 && num_edges <= 24 &&
        res.exact_checks < opts.max_exact_checks) {
      ExactProblem problem;
      problem.num_scns = inst.net.num_scns;
      problem.num_tasks = static_cast<int>(info.tasks.size());
      problem.capacity_c = inst.net.capacity_c;
      problem.edges = build_edges(info, [&](int m, int j) {
        return static_cast<double>(
            static_cast<float>(opt.last_probabilities(m)[
                static_cast<std::size_t>(j)]));
      });
      const ExactResult exact = solve_exact(problem, 500'000);
      if (exact.optimal) {
        ++res.exact_checks;
        const double greedy_total =
            assignment_weight(a_opt, [&](int m, int j) {
              return static_cast<double>(
                  static_cast<float>(opt.last_probabilities(m)[
                      static_cast<std::size_t>(j)]));
            });
        const double bound = exact.total_weight /
                             (static_cast<double>(inst.net.capacity_c) + 1.0);
        if (greedy_total + 1e-9 < bound) {
          std::ostringstream what;
          what << "greedy " << greedy_total << " below Lemma 2 bound "
               << bound << " (OPT " << exact.total_weight << ")";
          return fail(t, -1, what.str());
        }
      }
    }

    // Shared feedback, derived from the optimized assignment, so every
    // twin's learner state stays comparable.
    const SlotFeedback fb = synthesize_feedback(inst, t, a_opt);
    opt.observe(info, a_opt, fb);
    ref.observe(info, a_ref, fb);
    if (opts.check_parallel) par.observe(info, a_par, fb);
    if (opts.check_es_edges) es.observe(info, a_es, fb);

    // Alg. 3 dual ascent: identical realized sums on both sides.
    for (std::size_t m = 0; m < num_scns; ++m) {
      const int mi = static_cast<int>(m);
      const double gap_qos = std::abs(ref.lambda_qos(mi) - opt.lambda_qos(mi));
      const double gap_res =
          std::abs(ref.lambda_resource(mi) - opt.lambda_resource(mi));
      res.max_multiplier_gap =
          std::max({res.max_multiplier_gap, gap_qos, gap_res});
      if (gap_qos > tol.multiplier || gap_res > tol.multiplier) {
        std::ostringstream what;
        what << "multiplier gap (qos " << gap_qos << " res " << gap_res
             << ")";
        return fail(t, mi, what.str());
      }
      if (opts.check_parallel &&
          (par.lambda_qos(mi) != opt.lambda_qos(mi) ||
           par.lambda_resource(mi) != opt.lambda_resource(mi))) {
        return fail(t, mi, "parallel_scns multiplier drift");
      }
    }
  }

  // Final weight tables: flushed max-normalized views within tolerance,
  // floor zone exempt (floors pinned a few renorm-divisions apart can
  // sit at neighboring representable values — DESIGN.md §10).
  for (std::size_t m = 0; m < num_scns; ++m) {
    const int mi = static_cast<int>(m);
    const auto& wo = opt.weights(mi);
    const auto& wr = ref.weights(mi);
    if (wo.size() != wr.size()) return fail(inst.slots, mi, "weight table size");
    for (std::size_t cell = 0; cell < wo.size(); ++cell) {
      if (wo[cell] <= tol.weight_floor_zone &&
          wr[cell] <= tol.weight_floor_zone) {
        continue;
      }
      const double gap = std::abs(wo[cell] - wr[cell]);
      res.max_weight_gap = std::max(res.max_weight_gap, gap);
      if (gap > tol.weight) {
        std::ostringstream what;
        what << "weight gap " << gap << " at cell " << cell << " (ref "
             << wr[cell] << " opt " << wo[cell] << ")";
        return fail(inst.slots, mi, what.str());
      }
    }
    if (opts.check_parallel && par.weights(mi) != wo) {
      return fail(inst.slots, mi, "parallel_scns weight drift");
    }
    if (opts.check_es_edges && es.weights(mi) != wo) {
      return fail(inst.slots, mi, "Efraimidis-Spirakis weight drift");
    }
  }

  return res;
}

}  // namespace lfsc
