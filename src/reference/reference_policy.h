// Paper-fidelity reference oracle: a deliberately naive transliteration
// of the paper's per-slot subroutines, used ONLY as the ground truth of
// the differential harness (tools/lfsc_diff_fuzz, tests/test_differential).
//
//   * Calculating  (Alg. 2): dense O(K) per SCN — full weight copy, full
//     descending sort for the epsilon_t fixed point, capped set S' by
//     value, gamma mixture applied arm by arm;
//   * GreedySelect (Alg. 4): one flat edge list, one global sort by
//     (weight desc, scn asc, task asc), one linear greedy scan;
//   * Updating     (Alg. 3): dense per-hypercube IPW tables allocated
//     fresh every slot, a full-table weight sweep, and inline projected
//     dual ascent.
//
// Nothing here reuses scratch, packs keys, or keeps heaps — every layout
// trick the optimized LfscPolicy plays is absent by design, so a
// divergence between the two isolates the trick that broke. The two
// implementations share only the things that are part of the *numeric
// contract* rather than the data layout: the per-SCN RNG stream keying
// (lfsc/config.h kScnStreamBase), the float-precision edge-key
// transform, and the positivity-floor / renormalization schedule (floor
// at 1e-12 of the running peak weight, full renormalization when the
// peak exceeds 1e6). DESIGN.md §10 documents why each of these is
// observable behavior, not an optimization — the floor in particular
// sets the probabilities of every uncapped arm in deep-concentration
// slots, so flooring on a different schedule forks the trajectories.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "lfsc/config.h"
#include "sim/network.h"
#include "sim/policy.h"

namespace lfsc {

class ReferenceLfscPolicy final : public Policy {
 public:
  /// Accepts the same tunables as LfscPolicy so one config drives both
  /// sides of a differential run. Only the paper's algorithm is
  /// implemented: `coordinate_scns` must stay true and `parallel_scns`
  /// is ignored (the reference is always serial).
  ReferenceLfscPolicy(const NetworkConfig& net, LfscConfig config = {});

  std::string_view name() const noexcept override { return "LFSC-Reference"; }
  Assignment select(const SlotInfo& info) override;
  void observe(const SlotInfo& info, const Assignment& assignment,
               const SlotFeedback& feedback) override;
  void reset() override;

  // --- introspection (mirrors LfscPolicy's accessors) ---

  double gamma() const noexcept { return gamma_; }
  double lambda_qos(int scn) const {
    return scn_[static_cast<std::size_t>(scn)].lambda_qos;
  }
  double lambda_resource(int scn) const {
    return scn_[static_cast<std::size_t>(scn)].lambda_res;
  }
  const std::vector<double>& last_probabilities(int scn) const {
    return scn_[static_cast<std::size_t>(scn)].p;
  }
  const std::vector<std::uint8_t>& last_capped(int scn) const {
    return scn_[static_cast<std::size_t>(scn)].capped;
  }
  std::size_t last_num_capped(int scn) const {
    return scn_[static_cast<std::size_t>(scn)].num_capped;
  }
  double last_epsilon(int scn) const {
    return scn_[static_cast<std::size_t>(scn)].epsilon;
  }
  /// Sum of the capped weights sum(w') behind the last probabilities.
  /// epsilon is on the weight scale, so cross-implementation comparisons
  /// must use the scale-invariant ratio epsilon / weight_sum.
  double last_weight_sum(int scn) const {
    return scn_[static_cast<std::size_t>(scn)].weight_sum;
  }

  /// Hypercube weights of SCN `m`, normalized so max == 1 (with the
  /// positivity floor). Like LfscPolicy::weights, this flushes the
  /// pending renormalization before returning the view.
  const std::vector<double>& weights(int scn);

  /// Fault-injection hook for the harness's self-test: when enabled, the
  /// epsilon fixed-point solve caps one arm fewer than the consistent
  /// cut — the classic off-by-one Alg. 2 invites. test_differential
  /// proves the fuzz harness flags a run with this bug injected.
  void inject_epsilon_off_by_one(bool on) noexcept {
    inject_epsilon_off_by_one_ = on;
  }

 private:
  struct Scn {
    std::vector<double> weights;  ///< dense per hypercube, raw scale
    /// Running peak weight since the last renormalization; the floor
    /// pins at floor_scale * 1e-12 (the shared numeric contract).
    double floor_scale = 1.0;
    double lambda_qos = 0.0;
    double lambda_res = 0.0;
    std::vector<double> p;               ///< last Alg. 2 probabilities
    std::vector<std::uint8_t> capped;    ///< last S' membership
    std::size_t num_capped = 0;
    double epsilon = 0.0;
    double weight_sum = 0.0;  ///< sum(w') of the last calculate()
    std::vector<std::size_t> cells;  ///< hypercube of each covered task
    RngStream rng;                   ///< (seed, kScnStreamBase + m)

    Scn(std::size_t num_cells, RngStream stream)
        : weights(num_cells, 1.0), rng(stream) {}
  };

  /// Alg. 2 transliteration for one SCN, writing p/capped/num_capped/
  /// epsilon. `task_weights` is the dense weight lookup per covered task.
  void calculate(Scn& scn, const std::vector<double>& task_weights) const;

  /// Full-table max-renormalization with the positivity floor; resets
  /// floor_scale. Same arithmetic as LfscPolicy::renormalize.
  static void renormalize(Scn& scn);

  std::size_t cell_index(const Task& task) const;

  NetworkConfig net_;
  LfscConfig config_;
  std::size_t cell_count_;
  double gamma_;
  double eta_lambda_;
  double delta_;
  std::vector<Scn> scn_;
  bool inject_epsilon_off_by_one_ = false;
};

}  // namespace lfsc
