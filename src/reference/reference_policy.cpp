#include "reference/reference_policy.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/simd.h"

namespace lfsc {
namespace {

/// Same exponent clamp, positivity floor and renormalization band the
/// optimized policy uses — these are part of the update's numeric
/// contract (DESIGN.md §10), not an optimization, so the reference
/// applies the same numbers on the same schedule. The floor in
/// particular is observable through Alg. 2: in deep-concentration slots
/// every uncapped arm sits at the floor and the floor value carries real
/// probability mass, so flooring at a different time would fork the
/// trajectories legitimately and the differential harness could compare
/// nothing.
constexpr double kMaxExponent = 60.0;
constexpr double kWeightFloor = 1e-12;
constexpr double kScaleHigh = 1e6;

/// Same degraded-feedback envelope as LfscPolicy (DESIGN.md §9): both
/// sides of a differential run must reject exactly the same
/// observations or their trajectories legitimately fork.
bool feedback_sane(const TaskFeedback& f) noexcept {
  return std::isfinite(f.u) && std::isfinite(f.v) && std::isfinite(f.q) &&
         std::abs(f.u) <= 100.0 && std::abs(f.v) <= 100.0 && f.q > 0.0 &&
         f.q <= 100.0;
}

/// One bipartite edge of the Alg. 4 graph, kept as plain fields — the
/// reference sorts the whole flat list every slot.
struct RefEdge {
  double key = 0.0;
  int scn = 0;
  int task = 0;
  int local = 0;
};

}  // namespace

ReferenceLfscPolicy::ReferenceLfscPolicy(const NetworkConfig& net,
                                         LfscConfig config)
    : net_(net), config_(config) {
  net_.validate();
  if (!config_.coordinate_scns) {
    throw std::invalid_argument(
        "ReferenceLfscPolicy: only the paper's coordinated path (Alg. 4) "
        "is transliterated");
  }

  // Alg. 1 line 2: h_T^D hypercubes.
  cell_count_ = 1;
  for (std::size_t d = 0; d < config_.context_dims; ++d) {
    cell_count_ *= config_.parts_per_dim;
  }

  // gamma = min(1, sqrt(K ln(K/k) / ((e-1) k T))) — the Exp3.M rate,
  // with the same degenerate-input guards the optimized policy applies.
  if (config_.gamma > 0.0) {
    gamma_ = config_.gamma;
  } else {
    const auto K = static_cast<double>(config_.expected_tasks_per_scn);
    const auto k = static_cast<double>(net_.capacity_c);
    const auto T = static_cast<double>(config_.horizon);
    if (config_.expected_tasks_per_scn == 0 || net_.capacity_c == 0 ||
        config_.horizon == 0 ||
        config_.expected_tasks_per_scn <=
            static_cast<std::size_t>(net_.capacity_c)) {
      gamma_ = 0.0;
    } else {
      gamma_ = std::min(
          1.0, std::sqrt(K * std::log(K / k) / ((std::exp(1.0) - 1.0) * k * T)));
    }
  }
  if (gamma_ <= 0.0) gamma_ = 0.01;
  gamma_ = std::min(gamma_, 1.0);

  const auto horizon =
      static_cast<double>(std::max<std::size_t>(1, config_.horizon));
  eta_lambda_ = config_.eta_lambda > 0.0 ? config_.eta_lambda
                                         : 10.0 / std::sqrt(horizon);
  delta_ = config_.delta > 0.0 ? config_.delta : 1.0 / std::sqrt(horizon);

  scn_.reserve(static_cast<std::size_t>(net_.num_scns));
  for (int m = 0; m < net_.num_scns; ++m) {
    scn_.emplace_back(cell_count_,
                      RngStream(config_.seed,
                                kScnStreamBase + static_cast<std::uint64_t>(m)));
  }
}

std::size_t ReferenceLfscPolicy::cell_index(const Task& task) const {
  // Uniform partition of [0,1]^D: coordinate d falls into part
  // floor(x_d * h_T), with 1.0 folded into the last part.
  const auto& x = task.context.normalized;
  const std::size_t parts = config_.parts_per_dim;
  std::size_t idx = 0;
  const std::size_t used = std::min(x.size(), config_.context_dims);
  for (std::size_t d = 0; d < used; ++d) {
    const double coord = std::clamp(x[d], 0.0, 1.0);
    auto part = static_cast<std::size_t>(coord * static_cast<double>(parts));
    part = std::min(part, parts - 1);
    idx = idx * parts + part;
  }
  for (std::size_t d = used; d < config_.context_dims; ++d) idx *= parts;
  return idx;
}

void ReferenceLfscPolicy::calculate(Scn& scn,
                                    const std::vector<double>& task_weights)
    const {
  const std::size_t K = task_weights.size();
  const auto k = static_cast<std::size_t>(net_.capacity_c);
  scn.p.assign(K, 0.0);
  scn.capped.assign(K, 0);
  scn.num_capped = 0;
  scn.epsilon = 0.0;
  scn.weight_sum = 0.0;
  if (K == 0) return;

  // Fewer arms than plays: every arm is played with certainty.
  if (K <= k) {
    scn.p.assign(K, 1.0);
    scn.capped.assign(K, 1);
    scn.num_capped = K;
    return;
  }

  const auto Kd = static_cast<double>(K);
  const auto kd = static_cast<double>(k);

  // gamma == 1 is pure exploration: uniform marginals.
  if (gamma_ >= 1.0) {
    scn.p.assign(K, kd / Kd);
    return;
  }

  double total = 0.0;
  double max_weight = 0.0;
  for (const double w : task_weights) {
    if (!(w > 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument(
          "ReferenceLfscPolicy: weights must be > 0 and finite");
    }
    total += w;
    max_weight = std::max(max_weight, w);
  }

  // Degenerate-scale guard, identical in spirit to exp3m_probabilities:
  // probabilities are scale-invariant, so re-express relative to the
  // maximum when the raw scale is unusable.
  if (!std::isfinite(total) || max_weight < 1e-100) {
    std::vector<double> scaled(K);
    for (std::size_t i = 0; i < K; ++i) {
      scaled[i] = std::max(task_weights[i] / max_weight, 1e-12);
    }
    calculate(scn, scaled);
    return;
  }

  // Alg. 2 lines 6-9: solve the fixed point
  //     epsilon_t / sum(w') = rhs,   rhs = (1/k - gamma/K) / (1 - gamma)
  // over candidate capped-set sizes s, on the fully sorted weight list.
  const double rhs = (1.0 / kd - gamma_ / Kd) / (1.0 - gamma_);
  double epsilon = 0.0;
  std::size_t num_capped = 0;
  if (rhs > 0.0 && max_weight >= rhs * total) {
    std::vector<double> sorted(task_weights);
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    // tail[s] = sum of the K - s smallest weights.
    std::vector<double> tail(K + 1, 0.0);
    for (std::size_t i = K; i-- > 0;) tail[i] = tail[i + 1] + sorted[i];
    for (std::size_t s = 1; s < K; ++s) {
      const double denom = 1.0 - rhs * static_cast<double>(s);
      if (denom <= 0.0) break;  // capping more arms cannot help
      const double eps = rhs * tail[s] / denom;
      // Consistency: exactly the s largest weights reach the cap.
      if (sorted[s - 1] >= eps && sorted[s] < eps) {
        epsilon = eps;
        num_capped = s;
        break;
      }
    }
    if (num_capped == 0) {
      // Weights so concentrated that k arms tie at the cap.
      const double denom = 1.0 - rhs * kd;
      epsilon = denom > 0.0 ? rhs * tail[k] / denom : sorted[k - 1];
      num_capped = k;
    }
    if (inject_epsilon_off_by_one_) {
      // Deliberate bug for the harness's self-test: cap one arm fewer
      // than the consistent cut.
      --num_capped;
      if (num_capped == 0) epsilon = 0.0;
    }
  }

  // Mark S' by value (largest-first; exact ties beyond num_capped stay
  // uncapped) and build the capped weight sum.
  double weight_sum = 0.0;
  if (num_capped > 0) {
    std::size_t remaining = num_capped;
    for (std::size_t i = 0; i < K; ++i) {
      if (remaining > 0 && task_weights[i] >= epsilon) {
        scn.capped[i] = 1;
        --remaining;
        weight_sum += epsilon;
      } else {
        weight_sum += task_weights[i];
      }
    }
  } else {
    weight_sum = total;
  }

  // Alg. 2 line 10: the gamma mixture, arm by arm.
  for (std::size_t i = 0; i < K; ++i) {
    const double w = scn.capped[i] != 0 ? epsilon : task_weights[i];
    scn.p[i] =
        std::clamp(kd * ((1.0 - gamma_) * w / weight_sum + gamma_ / Kd), 0.0,
                   1.0);
  }
  scn.num_capped = num_capped;
  scn.epsilon = epsilon;
  scn.weight_sum = weight_sum;
}

Assignment ReferenceLfscPolicy::select(const SlotInfo& info) {
  if (info.coverage.size() != scn_.size()) {
    throw std::invalid_argument("ReferenceLfscPolicy: SCN count mismatch");
  }

  // Alg. 2 per SCN, then the full bipartite edge list.
  std::vector<RefEdge> edges;
  for (std::size_t m = 0; m < scn_.size(); ++m) {
    auto& scn = scn_[m];
    const auto& cover = info.coverage[m];
    scn.cells.assign(cover.size(), 0);
    std::vector<double> task_weights(cover.size(), 0.0);
    for (std::size_t j = 0; j < cover.size(); ++j) {
      const auto cell =
          cell_index(info.tasks[static_cast<std::size_t>(cover[j])]);
      scn.cells[j] = cell;
      task_weights[j] = scn.weights[cell];
    }
    calculate(scn, task_weights);

    // Edge keys, float precision (the documented key-schedule contract):
    // the paper's literal w(m,i) ∝ p under deterministic_edges, otherwise
    // the Efraimidis-Spirakis order transform 1/(1 - ln(u)/p) with one
    // uniform per fractional arm from this SCN's keyed stream.
    for (std::size_t j = 0; j < cover.size(); ++j) {
      const double p = scn.p[j];
      float key;
      if (config_.deterministic_edges) {
        key = static_cast<float>(p);
      } else if (p >= 1.0) {
        key = 2.0f;
      } else if (p > 0.0) {
        const auto u = static_cast<float>(scn.rng.uniform());
        key = 1.0f /
              (1.0f - std::log(std::max(u, 1e-35f)) / static_cast<float>(p));
      } else {
        key = 0.0f;
      }
      edges.push_back({static_cast<double>(key), static_cast<int>(m),
                       cover[j], static_cast<int>(j)});
    }
  }

  // Alg. 4: sort the whole edge list by (weight desc, scn asc, task asc)
  // and scan greedily, accepting while SCN capacity and task uniqueness
  // allow. This is the order contract the optimized bucket-heap merge
  // must reproduce.
  std::sort(edges.begin(), edges.end(),
            [](const RefEdge& a, const RefEdge& b) {
              if (a.key != b.key) return a.key > b.key;
              if (a.scn != b.scn) return a.scn < b.scn;
              return a.task < b.task;
            });
  Assignment out;
  out.selected.resize(scn_.size());
  std::vector<int> load(scn_.size(), 0);
  std::vector<char> assigned(info.tasks.size(), 0);
  for (const RefEdge& e : edges) {
    if (!(e.key > 0.0)) break;  // sorted: everything after is <= 0 too
    const auto m = static_cast<std::size_t>(e.scn);
    if (load[m] >= net_.capacity_c) continue;            // (1a)
    if (assigned[static_cast<std::size_t>(e.task)]) continue;  // (1b)
    out.selected[m].push_back(e.local);
    assigned[static_cast<std::size_t>(e.task)] = 1;
    ++load[m];
  }
  for (auto& s : out.selected) std::sort(s.begin(), s.end());
  return out;
}

void ReferenceLfscPolicy::observe(const SlotInfo& info,
                                  const Assignment& assignment,
                                  const SlotFeedback& feedback) {
  (void)assignment;
  if (feedback.per_scn.size() != scn_.size()) {
    throw std::invalid_argument(
        "ReferenceLfscPolicy: feedback SCN count mismatch");
  }
  for (std::size_t m = 0; m < scn_.size(); ++m) {
    auto& scn = scn_[m];
    const std::size_t num_tasks = info.coverage[m].size();

    double completed_sum = 0.0;
    double resource_sum = 0.0;
    if (num_tasks > 0) {
      // Alg. 3 lines 1-8: dense IPW tables, allocated fresh — the naive
      // O(cells) shape the sparse accumulator replaced.
      std::vector<double> sum_g(cell_count_, 0.0);
      std::vector<double> sum_v(cell_count_, 0.0);
      std::vector<double> sum_q(cell_count_, 0.0);
      std::vector<std::size_t> count(cell_count_, 0);
      // First-touch order of the covered cells. Part of the numeric
      // contract: the floor of a cell updated mid-sweep depends on the
      // running peak *so far*, so the sweep must visit cells in the same
      // order on both sides.
      std::vector<std::size_t> touched;
      for (std::size_t j = 0; j < num_tasks; ++j) {
        if (count[scn.cells[j]]++ == 0) touched.push_back(scn.cells[j]);
      }
      for (const auto& f : feedback.per_scn[m]) {
        const auto j = static_cast<std::size_t>(f.local_index);
        if (j >= num_tasks) {
          throw std::out_of_range("ReferenceLfscPolicy: bad feedback index");
        }
        if (!feedback_sane(f)) continue;
        const double p = scn.p.empty() ? 0.0 : scn.p[j];
        if (p > 0.0) {
          // IPW contributions x * 1(selected) / p; q normalized to [0,1]
          // for the update, as in the optimized path.
          const double g = f.q > 0.0 ? f.u * f.v / f.q : 0.0;
          sum_g[scn.cells[j]] += g / p;
          sum_v[scn.cells[j]] += f.v / p;
          sum_q[scn.cells[j]] += (f.q / 2.0) / p;
        }
        // Realized totals feed the dual ascent regardless of p.
        completed_sum += f.v;
        resource_sum += f.q;
      }

      const double eta_t = config_.eta_scale * gamma_ *
                           static_cast<double>(net_.capacity_c) /
                           static_cast<double>(num_tasks);
      const double lambda_qos = config_.use_lagrangian ? scn.lambda_qos : 0.0;
      const double lambda_res = config_.use_lagrangian ? scn.lambda_res : 0.0;

      // A hypercube is in S' this slot if any of its covered tasks was
      // capped (tasks in one cube share one weight).
      std::vector<char> cube_capped(cell_count_, 0);
      for (std::size_t j = 0; j < num_tasks; ++j) {
        if (scn.capped[j] != 0) cube_capped[scn.cells[j]] = 1;
      }

      // Alg. 3 lines 9-14: exponential update, full-table sweep. The
      // floor is pinned to the running peak weight (floor_scale), and a
      // full renormalization happens only when the peak leaves the
      // representable band — the same values on the same schedule as the
      // optimized policy (shared numeric contract, DESIGN.md §10), just
      // computed with a naive dense sweep.
      for (const std::size_t cell : touched) {
        if (cube_capped[cell] != 0) continue;
        const auto n = static_cast<double>(count[cell]);
        const double payoff = sum_g[cell] / n + lambda_qos * (sum_v[cell] / n) -
                              lambda_res * (sum_q[cell] / n);
        if (!std::isfinite(payoff)) continue;
        const double exponent =
            std::clamp(eta_t * payoff, -kMaxExponent, kMaxExponent);
        // The canonical polynomial exp (not libm): the optimized policy
        // runs its weight updates through the exp_stream kernel, and the
        // two trajectories must agree beyond rounding chaos — weights
        // feed back through 1/p, so a 1-ulp exp() disagreement amplifies
        // exponentially over a horizon.
        const double updated =
            std::max(scn.weights[cell] * simd::exp_canonical(exponent),
                     scn.floor_scale * kWeightFloor);
        scn.weights[cell] = updated;
        scn.floor_scale = std::max(scn.floor_scale, updated);
      }
      if (scn.floor_scale > kScaleHigh) renormalize(scn);
    }

    // Alg. 3 lines 15-17: regularized projected dual ascent, with
    // alpha/beta-normalized gaps. A non-finite step keeps the previous
    // multiplier (same hardening as LagrangeMultipliers::project).
    const double qos_gap =
        net_.qos_alpha > 0.0 ? (net_.qos_alpha - completed_sum) / net_.qos_alpha
                             : 0.0;
    const double res_gap = net_.resource_beta > 0.0
                               ? (resource_sum - net_.resource_beta) /
                                     net_.resource_beta
                               : 0.0;
    const double next_qos =
        (1.0 - eta_lambda_ * delta_) * scn.lambda_qos + eta_lambda_ * qos_gap;
    const double next_res =
        (1.0 - eta_lambda_ * delta_) * scn.lambda_res + eta_lambda_ * res_gap;
    if (std::isfinite(next_qos)) {
      scn.lambda_qos = std::clamp(next_qos, 0.0, config_.lambda_max);
    }
    if (std::isfinite(next_res)) {
      scn.lambda_res = std::clamp(next_res, 0.0, config_.lambda_max);
    }
  }
}

void ReferenceLfscPolicy::renormalize(Scn& scn) {
  double max_weight = 0.0;
  for (const double w : scn.weights) max_weight = std::max(max_weight, w);
  if (max_weight > 0.0) {
    for (auto& w : scn.weights) {
      w = std::max(w / max_weight, kWeightFloor);
    }
  }
  scn.floor_scale = 1.0;
}

const std::vector<double>& ReferenceLfscPolicy::weights(int scn) {
  auto& state = scn_[static_cast<std::size_t>(scn)];
  renormalize(state);
  return state.weights;
}

void ReferenceLfscPolicy::reset() {
  for (std::size_t m = 0; m < scn_.size(); ++m) {
    auto& scn = scn_[m];
    std::fill(scn.weights.begin(), scn.weights.end(), 1.0);
    scn.floor_scale = 1.0;
    scn.lambda_qos = 0.0;
    scn.lambda_res = 0.0;
    scn.p.clear();
    scn.capped.clear();
    scn.num_capped = 0;
    scn.epsilon = 0.0;
    scn.weight_sum = 0.0;
    scn.cells.clear();
    scn.rng = RngStream(config_.seed,
                        kScnStreamBase + static_cast<std::uint64_t>(m));
  }
}

}  // namespace lfsc
