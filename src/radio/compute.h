// Edge-server compute model: derives the resource consumption Q of a
// task from its demands and the server's capacity, instead of drawing it
// from a configured range.
//
// Q keeps the paper's raw scale [1, 2] (beta = 27 is on that scale):
// Q = 1 + utilization, where utilization in [0, 1] is the fraction of
// the SCN server's per-slot compute the task consumes.
#pragma once

#include "sim/context.h"

namespace lfsc {

struct EdgeServerConfig {
  /// Per-slot compute budget of one SCN's server.
  double cpu_gcycles_per_slot = 60.0;
  double gpu_gcycles_per_slot = 90.0;

  /// Compute demand per Mbit of input, by resource type.
  double cpu_gcycles_per_mbit = 1.2;
  double gpu_gcycles_per_mbit = 1.8;

  /// Output assembly cost per Mbit of output (always CPU).
  double output_gcycles_per_mbit = 0.4;
};

/// Compute demand of a task in gigacycles on each engine.
struct ComputeDemand {
  double cpu_gcycles = 0.0;
  double gpu_gcycles = 0.0;
};
ComputeDemand compute_demand(const TaskContext& ctx,
                             const EdgeServerConfig& config = {}) noexcept;

/// Fraction of one server-slot the task consumes (bottleneck engine),
/// clamped to [0, 1].
double server_utilization(const TaskContext& ctx,
                          const EdgeServerConfig& config = {}) noexcept;

/// The paper-scale resource consumption Q in [1, 2].
double resource_consumption_q(const TaskContext& ctx,
                              const EdgeServerConfig& config = {}) noexcept;

}  // namespace lfsc
