// A physics-driven world: instead of drawing (u, v, q) from configured
// latent tables (Environment), every realization is derived from the
// deployment geometry and the radio/compute substrates:
//
//   v — completion likelihood: the fraction of the task's data the
//       mmWave link can move within its airtime share, given pathloss,
//       shadowing, beamforming and dynamic blockage (0 when blocked
//       into outage — "once blockage happens, the execution of a task
//       is interrupted", Sec. 1);
//   q — resource consumption: 1 + server utilization from the edge
//       compute model;
//   u — task value: grows with input size (bigger jobs are worth more)
//       plus idiosyncratic noise, normalized to [0, 1].
//
// RadioSimulator implements SlotSource, so the whole harness (runner,
// sweeps, metrics) runs unchanged on top of it.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "radio/compute.h"
#include "radio/link.h"
#include "sim/coverage.h"
#include "sim/generator.h"
#include "sim/network.h"
#include "sim/slot_source.h"

namespace lfsc {

struct RadioSimConfig {
  /// mmWave cells are small: 400 m default radius.
  GeometricCoverageConfig geometry{.coverage_radius_km = 0.4};
  PathlossConfig pathloss;

  /// 100 MHz carrier and sparse blockers: tuned so that a mid-cell NLoS
  /// link moves ~10 Mbit per airtime — small tasks (6-10 Mbit total)
  /// complete even without line of sight, large ones (20+ Mbit) need a
  /// strong link. Completion likelihood therefore varies systematically
  /// with the *context* (data volume), which is what a contextual
  /// learner can exploit; link state adds per-task noise on top.
  LinkConfig link{.tx_power_dbm = 30.0,
                  .bandwidth_mhz = 100.0,
                  .tx_antennas = 256,
                  .blockage_rate_per_m = 0.001};
  EdgeServerConfig server;

  /// Airtime each admitted task gets within a slot, seconds.
  double airtime_per_task_s = 0.080;

  /// Value model: u = clamp(value_base + value_per_mbit * input + noise).
  double value_base = 0.35;
  double value_per_input_mbit = 0.02;
  double value_noise = 0.10;

  std::uint64_t seed = 42;
};

class RadioSimulator final : public SlotSource {
 public:
  RadioSimulator(NetworkConfig net, RadioSimConfig config);

  const NetworkConfig& network() const noexcept override { return net_; }
  const RadioSimConfig& config() const noexcept { return config_; }
  const GeometricCoverage& geometry() const noexcept { return coverage_; }

  Slot generate_slot(int t) override;
  using SlotSource::generate_slot;  // keep the reuse overload visible

  /// Expected (pre-shadowing, pre-blockage) link rate at distance d —
  /// exposed for tests and the example's coverage map.
  double nominal_rate_mbps(double distance_m) const noexcept;

 private:
  NetworkConfig net_;
  RadioSimConfig config_;
  GeometricCoverage coverage_;
  TaskGenerator generator_;
};

}  // namespace lfsc
