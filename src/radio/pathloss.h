// mmWave urban-micro pathloss, LoS probability and shadowing, after the
// 3GPP TR 38.901 UMi street-canyon model (simplified to 2D distances).
//
// This is the physical grounding for the paper's "unstable communication
// link ... caused by weak penetration of 5G mmWave": the completion
// likelihood V of the radio-driven environment is *derived* from these
// equations instead of being drawn from a configured range.
#pragma once

#include "common/rng.h"

namespace lfsc {

struct PathlossConfig {
  double carrier_ghz = 28.0;      ///< mmWave carrier frequency
  double shadow_sigma_los_db = 4.0;
  double shadow_sigma_nlos_db = 7.8;

  /// Minimum modeled distance; closer links are clamped (the model is
  /// not calibrated below ~10 m).
  double min_distance_m = 10.0;
};

/// 3GPP UMi line-of-sight probability at 2D distance `d` meters:
///   P_LoS(d) = min(18/d, 1) * (1 - e^{-d/36}) + e^{-d/36}.
/// Monotonically decreasing, 1 at d <= 18 m.
double los_probability(double distance_m) noexcept;

/// UMi street-canyon pathloss in dB (without shadowing):
///   LoS : 32.4 + 21.0 log10(d) + 20 log10(f_GHz)
///   NLoS: max(LoS, 22.4 + 35.3 log10(d) + 21.3 log10(f_GHz))
/// (NLoS is lower-bounded by LoS per the standard.)
double pathloss_db(double distance_m, bool line_of_sight,
                   const PathlossConfig& config = {}) noexcept;

/// One channel realization: Bernoulli LoS state, pathloss, and
/// log-normal shadowing drawn from `stream`.
struct ChannelDraw {
  bool line_of_sight = false;
  double pathloss_db = 0.0;  ///< including shadowing
};
ChannelDraw draw_channel(double distance_m, RngStream& stream,
                         const PathlossConfig& config = {}) noexcept;

}  // namespace lfsc
