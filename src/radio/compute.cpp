#include "radio/compute.h"

#include <algorithm>

namespace lfsc {

ComputeDemand compute_demand(const TaskContext& ctx,
                             const EdgeServerConfig& config) noexcept {
  ComputeDemand demand;
  // Output assembly always runs on the CPU.
  demand.cpu_gcycles = ctx.output_mbit * config.output_gcycles_per_mbit;
  switch (ctx.resource) {
    case ResourceType::kCpu:
      demand.cpu_gcycles += ctx.input_mbit * config.cpu_gcycles_per_mbit;
      break;
    case ResourceType::kGpu:
      demand.gpu_gcycles += ctx.input_mbit * config.gpu_gcycles_per_mbit;
      break;
    case ResourceType::kCpuGpu:
      // Split pipelines: half the input volume on each engine.
      demand.cpu_gcycles += 0.5 * ctx.input_mbit * config.cpu_gcycles_per_mbit;
      demand.gpu_gcycles += 0.5 * ctx.input_mbit * config.gpu_gcycles_per_mbit;
      break;
  }
  return demand;
}

double server_utilization(const TaskContext& ctx,
                          const EdgeServerConfig& config) noexcept {
  const auto demand = compute_demand(ctx, config);
  const double cpu_share =
      config.cpu_gcycles_per_slot > 0.0
          ? demand.cpu_gcycles / config.cpu_gcycles_per_slot
          : 0.0;
  const double gpu_share =
      config.gpu_gcycles_per_slot > 0.0
          ? demand.gpu_gcycles / config.gpu_gcycles_per_slot
          : 0.0;
  return std::clamp(std::max(cpu_share, gpu_share), 0.0, 1.0);
}

double resource_consumption_q(const TaskContext& ctx,
                              const EdgeServerConfig& config) noexcept {
  return 1.0 + server_utilization(ctx, config);
}

}  // namespace lfsc
