// mmWave link budget: beamforming gain, noise floor, SNR, Shannon rate
// with a practical spectral-efficiency ceiling, and dynamic human-body
// blockage — the ingredients that turn a (distance, channel draw) into
// an achievable data rate per slot.
#pragma once

#include "common/rng.h"
#include "radio/pathloss.h"

namespace lfsc {

struct LinkConfig {
  double tx_power_dbm = 23.0;       ///< SCN downlink/uplink power
  double bandwidth_mhz = 400.0;     ///< mmWave carrier bandwidth
  double noise_figure_db = 7.0;
  int tx_antennas = 64;             ///< SCN array (beamforming gain)
  int rx_antennas = 4;              ///< device array
  double beam_misalignment_db = 3.0;  ///< average pointing loss

  /// Practical ceiling on spectral efficiency (256-QAM-ish), bits/s/Hz.
  double max_spectral_efficiency = 7.4;

  /// Human-body / vehicle blockage: density of blockers per meter of
  /// link distance per slot; the blockage probability is
  /// 1 - exp(-rate * distance), capped below 1.
  double blockage_rate_per_m = 0.002;
  double blockage_loss_db = 25.0;   ///< attenuation when blocked
};

/// Thermal noise power over the configured bandwidth, dBm:
/// -174 dBm/Hz + 10 log10(BW) + NF.
double noise_power_dbm(const LinkConfig& config) noexcept;

/// Array gain (dB) for the configured antennas: 10 log10(Ntx * Nrx)
/// minus the average misalignment loss.
double beamforming_gain_db(const LinkConfig& config) noexcept;

/// Probability that a blocker interrupts a link of length `distance_m`
/// during a slot.
double blockage_probability(double distance_m,
                            const LinkConfig& config) noexcept;

/// SNR in dB for a given total pathloss (including shadowing and any
/// blockage loss).
double snr_db(double pathloss_db, const LinkConfig& config) noexcept;

/// Achievable rate in Mbit/s: bandwidth × min(log2(1+SNR), ceiling).
/// Non-positive for SNR below the demodulation floor (-10 dB).
double achievable_rate_mbps(double snr_db_value,
                            const LinkConfig& config) noexcept;

/// Full link realization: channel draw + blockage + rate.
struct LinkDraw {
  bool blocked = false;
  bool line_of_sight = false;
  double snr_db = 0.0;
  double rate_mbps = 0.0;
};
LinkDraw draw_link(double distance_m, RngStream& stream,
                   const LinkConfig& link = {},
                   const PathlossConfig& pathloss = {}) noexcept;

}  // namespace lfsc
