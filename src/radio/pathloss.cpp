#include "radio/pathloss.h"

#include <algorithm>
#include <cmath>

namespace lfsc {

double los_probability(double distance_m) noexcept {
  const double d = std::max(distance_m, 1.0);
  if (d <= 18.0) return 1.0;
  const double decay = std::exp(-d / 36.0);
  return std::min(18.0 / d, 1.0) * (1.0 - decay) + decay;
}

double pathloss_db(double distance_m, bool line_of_sight,
                   const PathlossConfig& config) noexcept {
  const double d = std::max(distance_m, config.min_distance_m);
  const double log_d = std::log10(d);
  const double log_f = std::log10(config.carrier_ghz);
  const double los = 32.4 + 21.0 * log_d + 20.0 * log_f;
  if (line_of_sight) return los;
  const double nlos = 22.4 + 35.3 * log_d + 21.3 * log_f;
  return std::max(los, nlos);
}

ChannelDraw draw_channel(double distance_m, RngStream& stream,
                         const PathlossConfig& config) noexcept {
  ChannelDraw draw;
  draw.line_of_sight = stream.bernoulli(los_probability(distance_m));
  const double sigma = draw.line_of_sight ? config.shadow_sigma_los_db
                                          : config.shadow_sigma_nlos_db;
  draw.pathloss_db =
      pathloss_db(distance_m, draw.line_of_sight, config) +
      stream.normal(0.0, sigma);
  return draw;
}

}  // namespace lfsc
