#include "radio/radio_simulator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lfsc {

RadioSimulator::RadioSimulator(NetworkConfig net, RadioSimConfig config)
    : net_(net),
      config_([&] {
        config.geometry.num_scns = net.num_scns;  // single source of truth
        return config;
      }()),
      coverage_(config_.geometry) {
  net_.validate();
  if (config_.airtime_per_task_s <= 0.0) {
    throw std::invalid_argument("RadioSimulator: airtime must be positive");
  }
}

double RadioSimulator::nominal_rate_mbps(double distance_m) const noexcept {
  const double loss =
      pathloss_db(distance_m, /*line_of_sight=*/true, config_.pathloss);
  return achievable_rate_mbps(snr_db(loss, config_.link), config_.link);
}

Slot RadioSimulator::generate_slot(int t) {
  Slot slot;
  slot.info.t = t;
  RngStream stream(config_.seed, 0x12AD10 + static_cast<std::uint64_t>(t));
  coverage_.generate(stream, generator_, slot.info);

  const auto& scns = coverage_.scn_positions();
  const auto& wds = coverage_.wd_positions();
  const auto num_scns = slot.info.coverage.size();
  slot.real.u.resize(num_scns);
  slot.real.v.resize(num_scns);
  slot.real.q.resize(num_scns);

  // Task value u is a property of the task, not of the serving SCN: draw
  // it once per task so every covering SCN sees the same value.
  std::vector<double> task_value(slot.info.tasks.size());
  for (std::size_t i = 0; i < slot.info.tasks.size(); ++i) {
    const auto& ctx = slot.info.tasks[i].context;
    const double raw = config_.value_base +
                       config_.value_per_input_mbit * ctx.input_mbit +
                       stream.uniform(-config_.value_noise,
                                      config_.value_noise);
    task_value[i] = std::clamp(raw, 0.0, 1.0);
  }

  for (std::size_t m = 0; m < num_scns; ++m) {
    const auto& cover = slot.info.coverage[m];
    slot.real.u[m].resize(cover.size());
    slot.real.v[m].resize(cover.size());
    slot.real.q[m].resize(cover.size());
    for (std::size_t j = 0; j < cover.size(); ++j) {
      const auto& task = slot.info.tasks[static_cast<std::size_t>(cover[j])];
      const auto& wd = wds[static_cast<std::size_t>(task.wd_id)];
      const double dx = (scns[m].x - wd.x) * 1000.0;  // km -> m
      const double dy = (scns[m].y - wd.y) * 1000.0;
      const double distance_m = std::hypot(dx, dy);

      const auto link = draw_link(distance_m, stream, config_.link,
                                  config_.pathloss);
      // Completion likelihood: share of the task's data the link moves in
      // its airtime. An interrupted (blocked-to-outage) link completes
      // nothing.
      const double volume_mbit = task.context.input_mbit +
                                 task.context.output_mbit;
      const double movable_mbit = link.rate_mbps * config_.airtime_per_task_s;
      slot.real.v[m][j] =
          volume_mbit > 0.0 ? std::clamp(movable_mbit / volume_mbit, 0.0, 1.0)
                            : 1.0;
      slot.real.u[m][j] = task_value[static_cast<std::size_t>(cover[j])];
      slot.real.q[m][j] = resource_consumption_q(task.context, config_.server);
    }
  }
  return slot;
}

}  // namespace lfsc
