#include "radio/link.h"

#include <algorithm>
#include <cmath>

namespace lfsc {

double noise_power_dbm(const LinkConfig& config) noexcept {
  return -174.0 + 10.0 * std::log10(config.bandwidth_mhz * 1e6) +
         config.noise_figure_db;
}

double beamforming_gain_db(const LinkConfig& config) noexcept {
  const double elements =
      static_cast<double>(config.tx_antennas) *
      static_cast<double>(std::max(1, config.rx_antennas));
  return 10.0 * std::log10(std::max(1.0, elements)) -
         config.beam_misalignment_db;
}

double blockage_probability(double distance_m,
                            const LinkConfig& config) noexcept {
  const double rate = config.blockage_rate_per_m * std::max(0.0, distance_m);
  return 1.0 - std::exp(-rate);
}

double snr_db(double pathloss_db_value, const LinkConfig& config) noexcept {
  return config.tx_power_dbm + beamforming_gain_db(config) -
         pathloss_db_value - noise_power_dbm(config);
}

double achievable_rate_mbps(double snr_db_value,
                            const LinkConfig& config) noexcept {
  constexpr double kDemodFloorDb = -10.0;
  if (snr_db_value < kDemodFloorDb) return 0.0;
  const double snr_linear = std::pow(10.0, snr_db_value / 10.0);
  const double efficiency = std::min(std::log2(1.0 + snr_linear),
                                     config.max_spectral_efficiency);
  return config.bandwidth_mhz * efficiency;  // MHz * bits/s/Hz = Mbit/s
}

LinkDraw draw_link(double distance_m, RngStream& stream,
                   const LinkConfig& link,
                   const PathlossConfig& pathloss) noexcept {
  LinkDraw draw;
  const auto channel = draw_channel(distance_m, stream, pathloss);
  draw.line_of_sight = channel.line_of_sight;
  draw.blocked = stream.bernoulli(blockage_probability(distance_m, link));
  const double total_loss =
      channel.pathloss_db + (draw.blocked ? link.blockage_loss_db : 0.0);
  draw.snr_db = snr_db(total_loss, link);
  draw.rate_mbps = achievable_rate_mbps(draw.snr_db, link);
  return draw;
}

}  // namespace lfsc
