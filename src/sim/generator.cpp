#include "sim/generator.h"

namespace lfsc {

double TaskGenerator::draw_size(RngStream& stream, double lo, double hi) noexcept {
  if (config_.continuous_sizes) {
    return stream.uniform(lo, hi);
  }
  // Categorical mode: sizes fall on the midpoints of `size_categories`
  // equal bins, mirroring the paper's "three categories by default".
  const int k = config_.size_categories;
  const auto category = static_cast<double>(stream.uniform_int(0, k - 1));
  const double width = (hi - lo) / static_cast<double>(k);
  return lo + (category + 0.5) * width;
}

Task TaskGenerator::next(RngStream& stream, int wd_id) noexcept {
  Task task;
  task.id = next_id_++;
  task.wd_id = wd_id;
  const auto& r = config_.ranges;
  const double input = draw_size(stream, r.input_mbit_lo, r.input_mbit_hi);
  const double output = draw_size(stream, r.output_mbit_lo, r.output_mbit_hi);
  const auto resource = static_cast<ResourceType>(stream.uniform_int(0, 2));
  task.context = make_context(input, output, resource, r);
  return task;
}

}  // namespace lfsc
