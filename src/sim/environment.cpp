#include "sim/environment.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lfsc {
namespace {

std::size_t grid_index(const std::array<double, kContextDims>& coords,
                       int grid) noexcept {
  std::size_t index = 0;
  for (const double coord : coords) {
    auto part = static_cast<std::size_t>(coord * grid);
    part = std::min<std::size_t>(part, static_cast<std::size_t>(grid) - 1);
    index = index * static_cast<std::size_t>(grid) + part;
  }
  return index;
}

}  // namespace

Environment::Environment(const EnvironmentConfig& config) : config_(config) {
  if (config_.num_scns <= 0) {
    throw std::invalid_argument("Environment: num_scns must be positive");
  }
  if (config_.latent_grid <= 0) {
    throw std::invalid_argument("Environment: latent_grid must be positive");
  }
  if (config_.reward_hi < config_.reward_lo ||
      config_.likelihood_hi < config_.likelihood_lo ||
      config_.consumption_hi < config_.consumption_lo) {
    throw std::invalid_argument("Environment: inverted mean range");
  }
  cells_per_scn_ = 1;
  for (std::size_t d = 0; d < kContextDims; ++d) {
    cells_per_scn_ *= static_cast<std::size_t>(config_.latent_grid);
  }
  const std::size_t total = cells_per_scn_ * static_cast<std::size_t>(config_.num_scns);
  mean_u_.resize(total);
  mean_v_.resize(total);
  mean_q_.resize(total);
  // One stream per SCN keyed off the environment seed keeps ground truth
  // independent of how many SCNs other configurations use.
  for (int m = 0; m < config_.num_scns; ++m) {
    RngStream stream(config_.seed, 0x1000 + static_cast<std::uint64_t>(m));
    const std::size_t base = cells_per_scn_ * static_cast<std::size_t>(m);
    for (std::size_t cell = 0; cell < cells_per_scn_; ++cell) {
      mean_u_[base + cell] = stream.uniform(config_.reward_lo, config_.reward_hi);
      mean_v_[base + cell] =
          stream.uniform(config_.likelihood_lo, config_.likelihood_hi);
      mean_q_[base + cell] =
          stream.uniform(config_.consumption_lo, config_.consumption_hi);
    }
  }
}

std::size_t Environment::latent_cell(const TaskContext& ctx) const noexcept {
  return grid_index(ctx.normalized, config_.latent_grid);
}

double Environment::mean_reward(int scn, const TaskContext& ctx) const noexcept {
  return mean_u_[cells_per_scn_ * static_cast<std::size_t>(scn) + latent_cell(ctx)];
}

double Environment::mean_likelihood(int scn,
                                    const TaskContext& ctx) const noexcept {
  const double base =
      mean_v_[cells_per_scn_ * static_cast<std::size_t>(scn) + latent_cell(ctx)];
  return base * (1.0 - config_.blockage_prob);
}

double Environment::mean_consumption(int scn,
                                     const TaskContext& ctx) const noexcept {
  return mean_q_[cells_per_scn_ * static_cast<std::size_t>(scn) + latent_cell(ctx)];
}

double Environment::mean_compound(int scn, const TaskContext& ctx) const noexcept {
  const double q = mean_consumption(scn, ctx);
  return q > 0.0 ? mean_reward(scn, ctx) * mean_likelihood(scn, ctx) / q : 0.0;
}

Environment::Draw Environment::draw(int scn, const TaskContext& ctx,
                                    RngStream& stream) const noexcept {
  const std::size_t idx =
      cells_per_scn_ * static_cast<std::size_t>(scn) + latent_cell(ctx);
  Draw d;
  const double jitter = config_.jitter;
  d.u = std::clamp(mean_u_[idx] + stream.uniform(-jitter, jitter), 0.0, 1.0);
  d.v = std::clamp(mean_v_[idx] + stream.uniform(-jitter, jitter), 0.0, 1.0);
  d.q = std::clamp(mean_q_[idx] + stream.uniform(-jitter, jitter),
                   config_.consumption_lo, config_.consumption_hi);
  // mmWave blockage interrupts the task: completion likelihood collapses.
  if (config_.blockage_prob > 0.0 && stream.bernoulli(config_.blockage_prob)) {
    d.v = 0.0;
  }
  return d;
}

void Environment::draw_cover(int scn, std::span<const int> cover,
                             const std::uint32_t* task_latent,
                             RngStream& stream, double* u, double* v,
                             double* q) const noexcept {
  const double* mu = mean_u_.data() + cells_per_scn_ * static_cast<std::size_t>(scn);
  const double* mv = mean_v_.data() + cells_per_scn_ * static_cast<std::size_t>(scn);
  const double* mq = mean_q_.data() + cells_per_scn_ * static_cast<std::size_t>(scn);
  const double jitter = config_.jitter;
  const double qlo = config_.consumption_lo;
  const double qhi = config_.consumption_hi;
  const double blockage = config_.blockage_prob;
  for (std::size_t j = 0; j < cover.size(); ++j) {
    const std::size_t cell = task_latent[static_cast<std::size_t>(cover[j])];
    u[j] = std::clamp(mu[cell] + stream.uniform(-jitter, jitter), 0.0, 1.0);
    v[j] = std::clamp(mv[cell] + stream.uniform(-jitter, jitter), 0.0, 1.0);
    q[j] = std::clamp(mq[cell] + stream.uniform(-jitter, jitter), qlo, qhi);
    if (blockage > 0.0 && stream.bernoulli(blockage)) v[j] = 0.0;
  }
}

}  // namespace lfsc
