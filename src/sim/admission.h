// Admission control for the slot pipeline (DESIGN.md §11): a bounded
// arrival queue in front of the policies, modelling a gateway that sheds
// offered load exceeding the network's sustained service capacity c·M.
//
// The queue is a fluid-model overlay on the slotted simulator: arrivals
// join a carried backlog, the backlog drains by `capacity_factor · c · M`
// tasks per slot, and arrivals that would push the backlog past
// `max_queue` are shed *before any policy sees the slot* — a shed task
// is removed from every SCN's coverage list (it runs locally on its
// device, the paper's fallback) while remaining in the slot's task list,
// so metrics still see the full offered load.
//
// Shedding is deterministic and policy-order-independent: each task's
// shed priority is a counter-based hash of (seed, slot, task id), the
// same construction the fault model uses, so the shed set is a pure
// function of the admission seed — independent of the policy roster,
// of parallel_scns, and stable across checkpoint/resume.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/network.h"
#include "sim/task.h"
#include "telemetry/telemetry.h"

namespace lfsc {

struct AdmissionConfig {
  /// Sustained service capacity as a multiple of c·M tasks per slot.
  /// Valid: > 0, finite.
  double capacity_factor = 1.0;

  /// Bound on the carried backlog, in tasks. 0 disables admission
  /// control entirely (every task passes through untouched).
  int max_queue = 0;

  /// Seed of the deterministic shed ordering; independent of world,
  /// policy and fault seeds.
  std::uint64_t seed = 0xADC0;

  bool enabled() const noexcept { return max_queue > 0; }

  /// Throws std::invalid_argument on out-of-range parameters.
  void validate() const;
};

class AdmissionControl {
 public:
  AdmissionControl(AdmissionConfig config, const NetworkConfig& net);

  const AdmissionConfig& config() const noexcept { return config_; }
  bool enabled() const noexcept { return config_.enabled(); }

  /// Tasks the queue drains per slot: max(1, ceil(factor · c · M)).
  std::int64_t service_capacity() const noexcept { return capacity_; }

  /// Registers the admission.* counters/backlog gauge on `registry`
  /// (call once, before the run). Without this the control still sheds,
  /// it just counts nothing.
  void attach_telemetry(telemetry::Registry& registry);

  /// Live reconfiguration (serve layer, DESIGN.md §14): replaces the
  /// backlog bound and service capacity between slots, preserving the
  /// carried backlog and every running counter — so the
  /// offered == admitted + shed identity survives the change. A backlog
  /// above a shrunken max_queue is not clamped (clamping would lose
  /// counted tasks); it drains naturally while all new arrivals shed.
  /// Throws std::invalid_argument on out-of-range parameters, leaving
  /// the control untouched.
  void reconfigure(double capacity_factor, int max_queue);

  /// Applies admission control to a freshly generated slot, in slot
  /// order: enqueues the offered tasks, sheds the overflow (removing
  /// shed tasks from every coverage list and the aligned realization
  /// rows), then drains one slot of service capacity. Returns the number
  /// of tasks shed.
  int admit(Slot& slot);

  // Running totals (exact, available under LFSC_TELEMETRY=OFF).
  std::uint64_t offered() const noexcept { return offered_; }
  std::uint64_t admitted() const noexcept { return admitted_; }
  std::uint64_t total_shed() const noexcept { return shed_; }
  std::uint64_t saturated_slots() const noexcept { return saturated_slots_; }
  std::int64_t backlog() const noexcept { return backlog_; }

  /// Exact queue/counter state for crash-safe checkpointing. Rejects a
  /// blob recorded under a different admission seed (a resumed run must
  /// continue the same shed schedule).
  void save_state(std::string& out) const;
  void load_state(std::string_view blob);

 private:
  AdmissionConfig config_;
  /// c·M of the network this control fronts, kept so reconfigure() can
  /// recompute capacity_ without the NetworkConfig.
  double base_capacity_ = 1.0;
  std::int64_t capacity_ = 1;

  std::int64_t backlog_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t saturated_slots_ = 0;

  // Per-slot scratch, reused across slots.
  std::vector<std::uint64_t> rank_;      ///< packed (hash, index) per task
  std::vector<std::uint8_t> shed_flag_;  ///< per global task index

  telemetry::Counter* tel_offered_ = nullptr;    ///< admission.offered
  telemetry::Counter* tel_admitted_ = nullptr;   ///< admission.admitted
  telemetry::Counter* tel_shed_ = nullptr;       ///< admission.shed
  telemetry::Counter* tel_saturated_ = nullptr;  ///< admission.saturated_slots
  telemetry::Gauge* tel_backlog_ = nullptr;      ///< admission.backlog
};

}  // namespace lfsc
