// Trace-driven workloads: record the task arrivals + coverage of any run
// to a CSV file, and replay such a file as a CoverageModel. This is the
// hook for driving the simulator with real-world traces (the paper's
// evaluation is "based on real world data"; with a trace file in this
// format the same experiments run on yours).
//
// Format (header + one row per (slot, task, coverage) tuple):
//   slot,task_id,wd_id,input_mbit,output_mbit,resource,scns
//   1,0,3,12.5,2.0,1,0;4;7
// `resource` is the ResourceType integer; `scns` lists covering SCNs
// separated by ';' (empty = task visible to no SCN).
#pragma once

#include <string>
#include <vector>

#include "sim/coverage.h"
#include "sim/task.h"

namespace lfsc {

/// Streams slots to a trace file. Slots must be added in order.
class TraceWriter {
 public:
  /// Opens `path` (truncates) and writes the header. Throws
  /// std::runtime_error when the file cannot be opened.
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Appends one slot's tasks and coverage.
  void add_slot(const SlotInfo& info);

  std::size_t slots_written() const noexcept { return slots_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t slots_ = 0;
};

/// In-memory parsed trace.
struct Trace {
  int num_scns = 0;  ///< 1 + max SCN index seen
  std::vector<SlotInfo> slots;
};

/// Parses a trace file. Throws std::runtime_error on malformed input.
Trace load_trace(const std::string& path);

/// Replays a trace as a CoverageModel: slot k of the run receives trace
/// slot (k mod trace length) — the trace wraps, so any horizon works.
/// The RngStream/TaskGenerator arguments of generate() are unused (the
/// trace fully determines arrivals); realizations still come from the
/// hosting Simulator's environment.
class TraceCoverage final : public CoverageModel {
 public:
  /// `min_scns` lets a trace recorded on fewer SCNs drive a larger
  /// network (extra SCNs simply see no tasks).
  explicit TraceCoverage(Trace trace, int min_scns = 0);

  /// Convenience: load + construct.
  static TraceCoverage from_file(const std::string& path, int min_scns = 0);

  int num_scns() const noexcept override;
  void generate(RngStream& stream, TaskGenerator& gen, SlotInfo& out) override;
  std::unique_ptr<CoverageModel> clone() const override;

  std::size_t trace_length() const noexcept { return trace_.slots.size(); }

 private:
  Trace trace_;
  int num_scns_;
  std::size_t cursor_ = 0;
};

}  // namespace lfsc
