// The contract between world generators and the experiment harness: a
// SlotSource produces one fully-realized Slot per time step. Simulator
// (context-table environment) and RadioSimulator (physics-derived
// environment) both implement it, so every harness facility — runner,
// sweeps, persistence — works with either.
#pragma once

#include "sim/network.h"
#include "sim/task.h"

namespace lfsc {

class SlotSource {
 public:
  virtual ~SlotSource() = default;

  /// Generates slot `t` (tasks, coverage, realized u/v/q). Stateful
  /// sources (mobility) require slots to be generated in order.
  virtual Slot generate_slot(int t) = 0;

  /// Allocation-reusing variant: fills `out` in place, reusing its vector
  /// capacities across slots. Identical contents (and identical RNG
  /// consumption) to the returning overload; sources that don't override
  /// it fall back to a full regeneration.
  virtual void generate_slot(int t, Slot& out) { out = generate_slot(t); }

  /// The network constants (c, alpha, beta) this world runs under.
  virtual const NetworkConfig& network() const noexcept = 0;
};

}  // namespace lfsc
