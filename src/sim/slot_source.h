// The contract between world generators and the experiment harness: a
// SlotSource produces one fully-realized Slot per time step. Simulator
// (context-table environment) and RadioSimulator (physics-derived
// environment) both implement it, so every harness facility — runner,
// sweeps, persistence — works with either.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "sim/network.h"
#include "sim/task.h"

namespace lfsc {

class SlotSource {
 public:
  virtual ~SlotSource() = default;

  /// Generates slot `t` (tasks, coverage, realized u/v/q). Stateful
  /// sources (mobility) require slots to be generated in order.
  virtual Slot generate_slot(int t) = 0;

  /// Allocation-reusing variant: fills `out` in place, reusing its vector
  /// capacities across slots. Identical contents (and identical RNG
  /// consumption) to the returning overload; sources that don't override
  /// it fall back to a full regeneration.
  virtual void generate_slot(int t, Slot& out) { out = generate_slot(t); }

  /// The network constants (c, alpha, beta) this world runs under.
  virtual const NetworkConfig& network() const noexcept = 0;

  /// Source-private mutable state for crash-safe checkpoints, appended
  /// to `out` (harness/checkpoint.h stores it as the scenario blob).
  /// Sources whose trajectory is fully rebuilt by the runner's in-order
  /// fast-forward — Simulator, RadioSimulator — keep the default empty
  /// blob; ScenarioSource adds its drift-walk state plus a spec
  /// fingerprint guard.
  virtual void save_state(std::string& out) const { (void)out; }

  /// Whether a checkpoint resume can rebuild this source's trajectory by
  /// regenerating slots 1..completed in order. True for every generative
  /// source (Simulator, RadioSimulator, ScenarioSource). False for
  /// sources fed from outside the process (the serve layer's
  /// ExternalSlotSource): their slots came over the wire, cannot be
  /// regenerated, and carry their position in save_state instead — the
  /// client re-streams from the checkpointed slot.
  virtual bool replay_fast_forward() const noexcept { return true; }

  /// Restores (and validates) a save_state blob at resume, called
  /// before the fast-forward. The default accepts only an empty blob:
  /// an old or scenario-free checkpoint stays resumable, but a blob
  /// written by a stateful source (ScenarioSource) must not be silently
  /// dropped by a resume under a plain Simulator — that would rewrite
  /// the world behind the checkpoint.
  virtual void load_state(std::string_view blob) {
    if (!blob.empty()) {
      throw std::runtime_error(
          "SlotSource: checkpoint carries scenario state; resume with the "
          "original --scenario file");
    }
  }
};

}  // namespace lfsc
