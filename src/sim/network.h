// System-level constants of the small cell network (Sec. 3.2):
// communication capacity c, QoS threshold alpha, resource capacity beta.
#pragma once

#include <stdexcept>

namespace lfsc {

struct NetworkConfig {
  int num_scns = 30;

  /// (1a) maximum number of tasks each SCN can accept per slot
  /// (beamforming / RF-chain limit).
  int capacity_c = 20;

  /// (1c) minimum expected number of completed tasks per SCN per slot.
  double qos_alpha = 15.0;

  /// (1d) computation resource capacity per SCN per slot (raw Q scale,
  /// Q in [1,2] per the simulation setup).
  double resource_beta = 27.0;

  void validate() const {
    if (num_scns <= 0) throw std::invalid_argument("num_scns must be > 0");
    if (capacity_c <= 0) throw std::invalid_argument("capacity_c must be > 0");
    if (qos_alpha < 0.0) throw std::invalid_argument("qos_alpha must be >= 0");
    if (resource_beta <= 0.0) {
      throw std::invalid_argument("resource_beta must be > 0");
    }
  }
};

}  // namespace lfsc
