// Ground-truth environment: the unknown random processes U, V, Q of
// Sec. 3.2, realized per (SCN, context) pair.
//
// The processes are stationary (per the paper's assumption for V and Q;
// we keep U stationary as well, matching the simulation setup where
// rewards are "normalized and uniformly distributed in [0,1]").
// Ground truth is defined on a *latent grid* finer than the algorithm's
// hypercube partition, so that learning a hypercube's value is a genuine
// estimation problem (within-hypercube heterogeneity exists).
//
// mmWave blockage (weak diffraction, Sec. 1) is modeled as an additional
// Bernoulli event that zeroes the completion likelihood draw.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "sim/context.h"

namespace lfsc {

struct EnvironmentConfig {
  int num_scns = 30;

  /// Per-dimension resolution of the latent ground-truth grid. Default 3
  /// matches the paper's setup ("divide the input/output data size into
  /// three categories by default"): truth is constant per category cell,
  /// and learners estimate it from noisy realizations. Raise it above the
  /// algorithm's h_T to study model mismatch (within-hypercube
  /// heterogeneity the learner cannot resolve).
  int latent_grid = 3;

  /// Range the per-(SCN, cell) mean reward is drawn from. Paper: U[0,1].
  double reward_lo = 0.0;
  double reward_hi = 1.0;

  /// Range the mean completion likelihood is drawn from. Paper: U[0,1];
  /// Fig. 4 sweeps this range to model different channel environments.
  double likelihood_lo = 0.0;
  double likelihood_hi = 1.0;

  /// Range the mean resource consumption is drawn from. Paper: U[1,2]
  /// (raw scale; beta = 27 is on this scale).
  double consumption_lo = 1.0;
  double consumption_hi = 2.0;

  /// Half-width of the uniform jitter applied to each realization around
  /// its latent mean (clipped back into the valid range).
  double jitter = 0.1;

  /// Probability that an mmWave blockage interrupts a task, forcing the
  /// likelihood realization to 0 for that draw.
  double blockage_prob = 0.0;

  std::uint64_t seed = 42;
};

/// Immutable ground truth plus realization sampling. Thread-safe for
/// concurrent reads; draws consume the caller-provided stream.
class Environment {
 public:
  explicit Environment(const EnvironmentConfig& config);

  const EnvironmentConfig& config() const noexcept { return config_; }
  int num_scns() const noexcept { return config_.num_scns; }

  /// Latent mean of U (reward) for SCN m processing a task with context
  /// `ctx`.
  double mean_reward(int scn, const TaskContext& ctx) const noexcept;

  /// Latent mean of V (completion likelihood), including the blockage
  /// haircut (1 - blockage_prob).
  double mean_likelihood(int scn, const TaskContext& ctx) const noexcept;

  /// Latent mean of Q (resource consumption, raw scale [1,2]).
  double mean_consumption(int scn, const TaskContext& ctx) const noexcept;

  /// E[U]E[V]/E[Q]: the first-order expected compound reward, used by
  /// tests and diagnostics (the processes are independent, so
  /// E[UV] = E[U]E[V]; E[1/Q] != 1/E[Q] but the gap is O(jitter^2)).
  double mean_compound(int scn, const TaskContext& ctx) const noexcept;

  /// One realization of (U, V, Q) for SCN `scn` processing a task with
  /// context `ctx`, drawn from `stream`.
  struct Draw {
    double u = 0.0;
    double v = 0.0;
    double q = 1.0;
  };
  Draw draw(int scn, const TaskContext& ctx, RngStream& stream) const noexcept;

  /// Batch realization over one SCN's coverage list: for each position j,
  /// draws (u, v, q) for the task `cover[j]` whose latent cell the caller
  /// precomputed in `task_latent` (indexed by global task index — one
  /// latent_cell() per task instead of one per (SCN, task) pair). Writes
  /// u/v/q[j]. Draw-for-draw identical to calling draw() per pair; the
  /// per-draw stream consumption order is part of the determinism
  /// contract.
  void draw_cover(int scn, std::span<const int> cover,
                  const std::uint32_t* task_latent, RngStream& stream,
                  double* u, double* v, double* q) const noexcept;

  /// Index of the latent grid cell containing `ctx` (exposed for tests).
  std::size_t latent_cell(const TaskContext& ctx) const noexcept;
  std::size_t latent_cell_count() const noexcept { return cells_per_scn_; }

 private:
  EnvironmentConfig config_;
  std::size_t cells_per_scn_ = 0;
  // Flattened [scn][cell] latent means.
  std::vector<double> mean_u_;
  std::vector<double> mean_v_;
  std::vector<double> mean_q_;
};

}  // namespace lfsc
