#include "sim/context.h"

#include <algorithm>

namespace lfsc {

std::string_view to_string(ResourceType type) noexcept {
  switch (type) {
    case ResourceType::kCpu:
      return "CPU";
    case ResourceType::kGpu:
      return "GPU";
    case ResourceType::kCpuGpu:
      return "CPU+GPU";
  }
  return "unknown";
}

namespace {

double normalize_range(double value, double lo, double hi) noexcept {
  if (hi <= lo) return 0.0;
  return std::clamp((value - lo) / (hi - lo), 0.0, 1.0);
}

}  // namespace

TaskContext make_context(double input_mbit, double output_mbit,
                         ResourceType resource,
                         const ContextRanges& ranges) noexcept {
  TaskContext ctx;
  ctx.input_mbit = std::clamp(input_mbit, ranges.input_mbit_lo,
                              ranges.input_mbit_hi);
  ctx.output_mbit = std::clamp(output_mbit, ranges.output_mbit_lo,
                               ranges.output_mbit_hi);
  ctx.resource = resource;
  ctx.normalized[0] =
      normalize_range(ctx.input_mbit, ranges.input_mbit_lo, ranges.input_mbit_hi);
  ctx.normalized[1] = normalize_range(ctx.output_mbit, ranges.output_mbit_lo,
                                      ranges.output_mbit_hi);
  // Resource type maps to the midpoint of its third of [0,1] so that the
  // three categories fall into distinct partition cells for any h_T >= 3.
  ctx.normalized[2] = (static_cast<double>(ctx.resource) + 0.5) / 3.0;
  return ctx;
}

}  // namespace lfsc
