#include "sim/coverage.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lfsc {

AbstractCoverage::AbstractCoverage(AbstractCoverageConfig config)
    : config_(config) {
  if (config_.num_scns <= 0) {
    throw std::invalid_argument("AbstractCoverage: num_scns must be positive");
  }
  if (config_.tasks_per_scn_min < 0 ||
      config_.tasks_per_scn_max < config_.tasks_per_scn_min) {
    throw std::invalid_argument("AbstractCoverage: invalid |D_mt| range");
  }
  if (config_.coverage_degree < 1.0) {
    throw std::invalid_argument(
        "AbstractCoverage: coverage_degree must be >= 1");
  }
}

void AbstractCoverage::generate(RngStream& stream, TaskGenerator& gen,
                                SlotInfo& out) {
  out.tasks.clear();
  // Reuse the inner coverage vectors: assign(n, {}) would free every
  // per-SCN list each slot, and at city scale that churn dominates the
  // generator. Same contents either way.
  out.coverage.resize(static_cast<std::size_t>(config_.num_scns));
  for (auto& cover : out.coverage) cover.clear();

  // Draw per-SCN demand |D_{m,t}| ~ U[min, max].
  auto& demand = demand_;
  demand.resize(static_cast<std::size_t>(config_.num_scns));
  long total_demand = 0;
  for (auto& d : demand) {
    d = static_cast<int>(stream.uniform_int(config_.tasks_per_scn_min,
                                            config_.tasks_per_scn_max));
    total_demand += d;
  }

  // Pool size chosen so the average task is covered by ~coverage_degree
  // SCNs; each SCN then samples its demand from the shared pool.
  const auto pool_size = static_cast<std::size_t>(std::max<long>(
      1, std::lround(static_cast<double>(total_demand) / config_.coverage_degree)));
  out.tasks.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    out.tasks.push_back(gen.next(stream));
  }

  for (int m = 0; m < config_.num_scns; ++m) {
    const auto want =
        std::min<std::size_t>(static_cast<std::size_t>(demand[static_cast<std::size_t>(m)]),
                              pool_size);
    auto& picks = picks_;
    stream.sample_without_replacement(pool_size, want, picks);
    std::sort(picks.begin(), picks.end());
    auto& cover = out.coverage[static_cast<std::size_t>(m)];
    cover.reserve(picks.size());
    for (const auto p : picks) cover.push_back(static_cast<int>(p));
  }
}

std::unique_ptr<CoverageModel> AbstractCoverage::clone() const {
  return std::make_unique<AbstractCoverage>(*this);
}

GeometricCoverage::GeometricCoverage(GeometricCoverageConfig config)
    : config_(config) {
  if (config_.num_scns <= 0 || config_.num_wds < 0) {
    throw std::invalid_argument("GeometricCoverage: invalid counts");
  }
  if (config_.area_km <= 0.0 || config_.coverage_radius_km <= 0.0) {
    throw std::invalid_argument("GeometricCoverage: invalid geometry");
  }
  // Infrastructure layout is fixed across the run (and across clones):
  // SCNs are attached to fixed structures (streetlights, utility poles).
  RngStream layout(config_.layout_seed, 0xC0FFEE);
  scns_.resize(static_cast<std::size_t>(config_.num_scns));
  for (auto& p : scns_) {
    p.x = layout.uniform(0.0, config_.area_km);
    p.y = layout.uniform(0.0, config_.area_km);
  }
  wds_.resize(static_cast<std::size_t>(config_.num_wds));
  waypoints_.resize(static_cast<std::size_t>(config_.num_wds));
  for (std::size_t i = 0; i < wds_.size(); ++i) {
    wds_[i] = {layout.uniform(0.0, config_.area_km),
               layout.uniform(0.0, config_.area_km)};
    waypoints_[i] = {layout.uniform(0.0, config_.area_km),
                     layout.uniform(0.0, config_.area_km)};
  }
}

void GeometricCoverage::step_mobility(RngStream& stream) {
  const double step = config_.wd_speed_km_per_slot;
  for (std::size_t i = 0; i < wds_.size(); ++i) {
    const double dx = waypoints_[i].x - wds_[i].x;
    const double dy = waypoints_[i].y - wds_[i].y;
    const double dist = std::hypot(dx, dy);
    if (dist <= step) {
      wds_[i] = waypoints_[i];
      waypoints_[i] = {stream.uniform(0.0, config_.area_km),
                       stream.uniform(0.0, config_.area_km)};
    } else {
      wds_[i].x += step * dx / dist;
      wds_[i].y += step * dy / dist;
    }
  }
}

void GeometricCoverage::generate(RngStream& stream, TaskGenerator& gen,
                                 SlotInfo& out) {
  step_mobility(stream);
  out.tasks.clear();
  // Reuse inner vectors (see AbstractCoverage::generate).
  out.coverage.resize(static_cast<std::size_t>(config_.num_scns));
  for (auto& cover : out.coverage) cover.clear();

  const double r2 = config_.coverage_radius_km * config_.coverage_radius_km;
  for (std::size_t i = 0; i < wds_.size(); ++i) {
    if (!stream.bernoulli(config_.task_probability)) continue;
    const int task_index = static_cast<int>(out.tasks.size());
    out.tasks.push_back(gen.next(stream, static_cast<int>(i)));
    for (int m = 0; m < config_.num_scns; ++m) {
      const auto& s = scns_[static_cast<std::size_t>(m)];
      const double dx = s.x - wds_[i].x;
      const double dy = s.y - wds_[i].y;
      if (dx * dx + dy * dy <= r2) {
        out.coverage[static_cast<std::size_t>(m)].push_back(task_index);
      }
    }
  }
}

std::unique_ptr<CoverageModel> GeometricCoverage::clone() const {
  return std::make_unique<GeometricCoverage>(*this);
}

}  // namespace lfsc
