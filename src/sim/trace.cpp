#include "sim/trace.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace lfsc {
namespace {

constexpr std::string_view kHeader =
    "slot,task_id,wd_id,input_mbit,output_mbit,resource,scns";

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, sep)) out.push_back(field);
  if (!line.empty() && line.back() == sep) out.emplace_back();
  return out;
}

int parse_int(const std::string& text, const char* what) {
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::runtime_error(std::string("trace: bad ") + what + " '" + text +
                             "'");
  }
  return value;
}

double parse_double(const std::string& text, const char* what) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("trace: bad ") + what + " '" + text +
                             "'");
  }
}

}  // namespace

struct TraceWriter::Impl {
  std::ofstream out;
};

TraceWriter::TraceWriter(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->out.open(path);
  if (!impl_->out) {
    throw std::runtime_error("TraceWriter: cannot open " + path);
  }
  impl_->out << kHeader << '\n';
}

TraceWriter::~TraceWriter() = default;

void TraceWriter::add_slot(const SlotInfo& info) {
  ++slots_;
  // Invert coverage: per task, the list of covering SCNs.
  std::vector<std::vector<int>> covering(info.tasks.size());
  for (std::size_t m = 0; m < info.coverage.size(); ++m) {
    for (const int task : info.coverage[m]) {
      covering[static_cast<std::size_t>(task)].push_back(static_cast<int>(m));
    }
  }
  auto& out = impl_->out;
  out.precision(17);
  for (std::size_t i = 0; i < info.tasks.size(); ++i) {
    const Task& task = info.tasks[i];
    out << info.t << ',' << task.id << ',' << task.wd_id << ','
        << task.context.input_mbit << ',' << task.context.output_mbit << ','
        << static_cast<int>(task.context.resource) << ',';
    for (std::size_t k = 0; k < covering[i].size(); ++k) {
      if (k > 0) out << ';';
      out << covering[i][k];
    }
    out << '\n';
  }
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    throw std::runtime_error("load_trace: missing or wrong header in " + path);
  }
  Trace trace;
  int current_slot = 0;
  SlotInfo* info = nullptr;
  int max_scn = -1;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = split(line, ',');
    if (fields.size() != 7) {
      throw std::runtime_error("load_trace: line " + std::to_string(line_no) +
                               ": expected 7 fields");
    }
    const int slot = parse_int(fields[0], "slot");
    if (info == nullptr || slot != current_slot) {
      if (info != nullptr && slot < current_slot) {
        throw std::runtime_error("load_trace: slots out of order at line " +
                                 std::to_string(line_no));
      }
      trace.slots.emplace_back();
      info = &trace.slots.back();
      info->t = slot;
      current_slot = slot;
    }
    Task task;
    task.id = parse_int(fields[1], "task_id");
    task.wd_id = parse_int(fields[2], "wd_id");
    const double input = parse_double(fields[3], "input_mbit");
    const double output = parse_double(fields[4], "output_mbit");
    const int resource = parse_int(fields[5], "resource");
    if (resource < 0 || resource > 2) {
      throw std::runtime_error("load_trace: bad resource at line " +
                               std::to_string(line_no));
    }
    task.context =
        make_context(input, output, static_cast<ResourceType>(resource));
    const int task_index = static_cast<int>(info->tasks.size());
    info->tasks.push_back(task);
    if (!fields[6].empty()) {
      for (const auto& scn_text : split(fields[6], ';')) {
        const int scn = parse_int(scn_text, "scn");
        if (scn < 0) {
          throw std::runtime_error("load_trace: negative SCN at line " +
                                   std::to_string(line_no));
        }
        max_scn = std::max(max_scn, scn);
        if (static_cast<std::size_t>(scn) >= info->coverage.size()) {
          info->coverage.resize(static_cast<std::size_t>(scn) + 1);
        }
        info->coverage[static_cast<std::size_t>(scn)].push_back(task_index);
      }
    }
  }
  trace.num_scns = max_scn + 1;
  // Normalize every slot to the trace-wide SCN count and sort coverage.
  for (auto& slot : trace.slots) {
    slot.coverage.resize(static_cast<std::size_t>(trace.num_scns));
    for (auto& cover : slot.coverage) std::sort(cover.begin(), cover.end());
  }
  if (trace.slots.empty()) {
    throw std::runtime_error("load_trace: trace has no slots");
  }
  return trace;
}

TraceCoverage::TraceCoverage(Trace trace, int min_scns)
    : trace_(std::move(trace)),
      num_scns_(std::max(trace_.num_scns, min_scns)) {
  if (trace_.slots.empty()) {
    throw std::invalid_argument("TraceCoverage: empty trace");
  }
  for (auto& slot : trace_.slots) {
    slot.coverage.resize(static_cast<std::size_t>(num_scns_));
  }
}

TraceCoverage TraceCoverage::from_file(const std::string& path, int min_scns) {
  return TraceCoverage(load_trace(path), min_scns);
}

int TraceCoverage::num_scns() const noexcept { return num_scns_; }

void TraceCoverage::generate(RngStream& stream, TaskGenerator& gen,
                             SlotInfo& out) {
  (void)stream;
  (void)gen;
  const int t = out.t;  // preserve the caller's slot index
  out = trace_.slots[cursor_];
  out.t = t;
  cursor_ = (cursor_ + 1) % trace_.slots.size();
}

std::unique_ptr<CoverageModel> TraceCoverage::clone() const {
  return std::make_unique<TraceCoverage>(*this);
}

}  // namespace lfsc
