// The small cell network simulator: combines a coverage model, a task
// generator and the ground-truth environment into a per-slot generator.
//
// Determinism contract: generate_slot(t) draws all randomness from a
// stream keyed by (seed, t). For stateless coverage (AbstractCoverage)
// any slot can be generated independently; for stateful coverage
// (mobility) slots must be generated in order, which the harness does.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/coverage.h"
#include "sim/environment.h"
#include "sim/generator.h"
#include "sim/network.h"
#include "sim/slot_source.h"
#include "sim/task.h"

namespace lfsc {

class Simulator final : public SlotSource {
 public:
  /// Takes ownership of `coverage`. `net.num_scns` must match both the
  /// coverage model and the environment.
  Simulator(NetworkConfig net, const EnvironmentConfig& env,
            std::unique_ptr<CoverageModel> coverage,
            TaskGeneratorConfig gen_config = {});

  const NetworkConfig& network() const noexcept override { return net_; }
  const Environment& environment() const noexcept { return env_; }
  const CoverageModel& coverage() const noexcept { return *coverage_; }

  /// Generates slot `t`: tasks, coverage sets, and the realized
  /// (u, v, q) for every (SCN, covered task) pair.
  Slot generate_slot(int t) override;

  /// Reuse overload: same slot, same draws, no per-slot allocation once
  /// `out`'s capacities are warm. Latent cells are resolved once per task
  /// (not once per (SCN, task) pair) and realizations come out of the
  /// batched Environment::draw_cover.
  void generate_slot(int t, Slot& out) override;

  /// Deep copy (fresh generator ids, copied mobility state); used to run
  /// identical worlds under different policies in sweep workers.
  Simulator fork() const;

 private:
  Simulator(NetworkConfig net, Environment env,
            std::unique_ptr<CoverageModel> coverage, TaskGenerator gen,
            std::uint64_t seed);

  NetworkConfig net_;
  Environment env_;
  std::unique_ptr<CoverageModel> coverage_;
  TaskGenerator generator_;
  std::uint64_t seed_;
  std::vector<std::uint32_t> latent_scratch_;  ///< per-task latent cell
};

}  // namespace lfsc
