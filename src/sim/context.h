// Task context model (Sec. 3.2 of the paper).
//
// A task's context summarizes its meta information: input data size,
// output data size, and the type of computation resource it depends on.
// Contexts live (after normalization) in [0,1]^3; the LFSC algorithm
// partitions that space into hypercubes and learns per-hypercube.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace lfsc {

/// Which compute resource a task exercises on the edge server.
enum class ResourceType : int { kCpu = 0, kGpu = 1, kCpuGpu = 2 };

std::string_view to_string(ResourceType type) noexcept;

/// Number of context dimensions per task (input size, output size,
/// resource type).
inline constexpr std::size_t kContextDims = 3;

/// Value ranges used to normalize raw context fields into [0,1].
/// Defaults follow the paper's simulation setup (Sec. 5).
struct ContextRanges {
  double input_mbit_lo = 5.0;
  double input_mbit_hi = 20.0;
  double output_mbit_lo = 1.0;
  double output_mbit_hi = 4.0;
};

/// A task's context: raw meta information plus its normalized embedding
/// in [0,1]^3. The normalized vector is what the learning algorithms see.
struct TaskContext {
  double input_mbit = 0.0;
  double output_mbit = 0.0;
  ResourceType resource = ResourceType::kCpu;

  /// Normalized coordinates in [0,1]^3:
  ///   [0] input size, [1] output size, [2] resource type (cell midpoint).
  std::array<double, kContextDims> normalized{};
};

/// Builds a TaskContext from raw fields, computing the normalized
/// embedding with the given ranges. Raw values are clamped into range.
TaskContext make_context(double input_mbit, double output_mbit,
                         ResourceType resource,
                         const ContextRanges& ranges = {}) noexcept;

}  // namespace lfsc
