// Task and per-slot data structures shared by the simulator, the
// policies and the experiment harness.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/context.h"

namespace lfsc {

/// One offloading request from a wireless device.
struct Task {
  std::int64_t id = 0;   ///< globally unique across the run
  int wd_id = 0;         ///< originating wireless device (geometric mode)
  TaskContext context;
};

/// What a policy is allowed to see at decision time (beginning of slot t):
/// the tasks present and, per SCN, which of them are in coverage.
/// Realizations of U/V/Q are NOT here — they are revealed only through
/// SlotFeedback after processing (the bandit feedback model).
struct SlotInfo {
  int t = 0;
  std::vector<Task> tasks;  ///< D_t, indexed by "global task index"

  /// coverage[m] lists global task indices within SCN m's coverage
  /// (the set D_{m,t}); sorted ascending.
  std::vector<std::vector<int>> coverage;

  std::size_t num_scns() const noexcept { return coverage.size(); }
};

/// Realized draws of the random processes for this slot:
/// for SCN m and local index j (position within coverage[m]),
/// u[m][j], v[m][j], q[m][j] are the realizations of U, V, Q for the
/// corresponding (SCN, task) pair. Only the Oracle and the metrics see
/// this in full.
struct SlotRealization {
  std::vector<std::vector<double>> u;  ///< task value/reward, in [0,1]
  std::vector<std::vector<double>> v;  ///< completion likelihood, in [0,1]
  std::vector<std::vector<double>> q;  ///< resource consumption, in [1,2]
};

/// A fully generated slot.
struct Slot {
  SlotInfo info;
  SlotRealization real;
};

/// A policy's decision for a slot: selected[m] lists *local* indices j
/// into info.coverage[m] for the tasks SCN m accepts. The harness
/// validates capacity (<= c per SCN) and task uniqueness (constraint 1b).
struct Assignment {
  std::vector<std::vector<int>> selected;

  std::size_t total_selected() const noexcept {
    std::size_t n = 0;
    for (const auto& s : selected) n += s.size();
    return n;
  }
};

/// Bandit feedback delivered to a policy after its assignment ran: the
/// realized (u, v, q) for each task it actually processed, and nothing
/// else. `local_index` refers to the position within coverage[m].
struct TaskFeedback {
  int local_index = 0;
  double u = 0.0;
  double v = 0.0;
  double q = 0.0;

  /// The compound reward realization g = u * v / q (Sec. 3.2).
  double compound() const noexcept { return q > 0.0 ? u * v / q : 0.0; }
};

struct SlotFeedback {
  /// per_scn[m] holds feedback for the tasks SCN m processed in this slot.
  std::vector<std::vector<TaskFeedback>> per_scn;
};

}  // namespace lfsc
