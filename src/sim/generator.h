// Task generation with the paper's published workload marginals:
// input size U[5,20] Mbit, output size U[1,4] Mbit, resource type uniform
// over {CPU, GPU, CPU+GPU} (Sec. 5 simulation setup).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "sim/task.h"

namespace lfsc {

struct TaskGeneratorConfig {
  ContextRanges ranges;

  /// When true (default), raw sizes are drawn uniformly across the full
  /// range. When false, sizes are drawn from one of `h` discrete
  /// categories per dimension ("divide the input/output data size into
  /// three categories", Sec. 5) — useful to test the categorical variant.
  bool continuous_sizes = true;
  int size_categories = 3;
};

/// Stateful task factory; ids increase monotonically across the run.
class TaskGenerator {
 public:
  explicit TaskGenerator(TaskGeneratorConfig config = {}) noexcept
      : config_(config) {}

  const TaskGeneratorConfig& config() const noexcept { return config_; }

  /// Draws one task; `wd_id` tags the originating device (geometric mode).
  Task next(RngStream& stream, int wd_id = 0) noexcept;

  std::int64_t tasks_created() const noexcept { return next_id_; }

 private:
  double draw_size(RngStream& stream, double lo, double hi) noexcept;

  TaskGeneratorConfig config_;
  std::int64_t next_id_ = 0;
};

}  // namespace lfsc
