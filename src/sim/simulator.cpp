#include "sim/simulator.h"

#include <stdexcept>

namespace lfsc {

Simulator::Simulator(NetworkConfig net, const EnvironmentConfig& env,
                     std::unique_ptr<CoverageModel> coverage,
                     TaskGeneratorConfig gen_config)
    : net_(net),
      env_([&] {
        EnvironmentConfig e = env;
        e.num_scns = net.num_scns;  // single source of truth for SCN count
        return Environment(e);
      }()),
      coverage_(std::move(coverage)),
      generator_(gen_config),
      seed_(env.seed) {
  net_.validate();
  if (!coverage_) {
    throw std::invalid_argument("Simulator: coverage model required");
  }
  if (coverage_->num_scns() != net_.num_scns) {
    throw std::invalid_argument(
        "Simulator: coverage model SCN count differs from NetworkConfig");
  }
}

Simulator::Simulator(NetworkConfig net, Environment env,
                     std::unique_ptr<CoverageModel> coverage, TaskGenerator gen,
                     std::uint64_t seed)
    : net_(net),
      env_(std::move(env)),
      coverage_(std::move(coverage)),
      generator_(gen),
      seed_(seed) {}

Slot Simulator::generate_slot(int t) {
  Slot slot;
  slot.info.t = t;
  // Stream keyed by slot index: arrivals, contexts and realizations for
  // slot t never depend on how other slots consumed randomness.
  RngStream stream(seed_, 0x51D0 + static_cast<std::uint64_t>(t));
  coverage_->generate(stream, generator_, slot.info);

  const auto scns = slot.info.coverage.size();
  slot.real.u.resize(scns);
  slot.real.v.resize(scns);
  slot.real.q.resize(scns);
  for (std::size_t m = 0; m < scns; ++m) {
    const auto& cover = slot.info.coverage[m];
    slot.real.u[m].resize(cover.size());
    slot.real.v[m].resize(cover.size());
    slot.real.q[m].resize(cover.size());
    for (std::size_t j = 0; j < cover.size(); ++j) {
      const auto& ctx =
          slot.info.tasks[static_cast<std::size_t>(cover[j])].context;
      const auto d = env_.draw(static_cast<int>(m), ctx, stream);
      slot.real.u[m][j] = d.u;
      slot.real.v[m][j] = d.v;
      slot.real.q[m][j] = d.q;
    }
  }
  return slot;
}

Simulator Simulator::fork() const {
  return Simulator(net_, env_, coverage_->clone(), generator_, seed_);
}

}  // namespace lfsc
