#include "sim/simulator.h"

#include <stdexcept>

namespace lfsc {

Simulator::Simulator(NetworkConfig net, const EnvironmentConfig& env,
                     std::unique_ptr<CoverageModel> coverage,
                     TaskGeneratorConfig gen_config)
    : net_(net),
      env_([&] {
        EnvironmentConfig e = env;
        e.num_scns = net.num_scns;  // single source of truth for SCN count
        return Environment(e);
      }()),
      coverage_(std::move(coverage)),
      generator_(gen_config),
      seed_(env.seed) {
  net_.validate();
  if (!coverage_) {
    throw std::invalid_argument("Simulator: coverage model required");
  }
  if (coverage_->num_scns() != net_.num_scns) {
    throw std::invalid_argument(
        "Simulator: coverage model SCN count differs from NetworkConfig");
  }
}

Simulator::Simulator(NetworkConfig net, Environment env,
                     std::unique_ptr<CoverageModel> coverage, TaskGenerator gen,
                     std::uint64_t seed)
    : net_(net),
      env_(std::move(env)),
      coverage_(std::move(coverage)),
      generator_(gen),
      seed_(seed) {}

Slot Simulator::generate_slot(int t) {
  Slot slot;
  generate_slot(t, slot);
  return slot;
}

void Simulator::generate_slot(int t, Slot& slot) {
  slot.info.t = t;
  // Stream keyed by slot index: arrivals, contexts and realizations for
  // slot t never depend on how other slots consumed randomness.
  RngStream stream(seed_, 0x51D0 + static_cast<std::uint64_t>(t));
  coverage_->generate(stream, generator_, slot.info);

  // Latent cell per task, once — the per-(SCN, task) realization loop
  // below would otherwise re-derive it coverage_degree times per task.
  latent_scratch_.resize(slot.info.tasks.size());
  for (std::size_t i = 0; i < slot.info.tasks.size(); ++i) {
    latent_scratch_[i] =
        static_cast<std::uint32_t>(env_.latent_cell(slot.info.tasks[i].context));
  }

  const auto scns = slot.info.coverage.size();
  slot.real.u.resize(scns);
  slot.real.v.resize(scns);
  slot.real.q.resize(scns);
  for (std::size_t m = 0; m < scns; ++m) {
    const auto& cover = slot.info.coverage[m];
    slot.real.u[m].resize(cover.size());
    slot.real.v[m].resize(cover.size());
    slot.real.q[m].resize(cover.size());
    env_.draw_cover(static_cast<int>(m), cover, latent_scratch_.data(), stream,
                    slot.real.u[m].data(), slot.real.v[m].data(),
                    slot.real.q[m].data());
  }
}

Simulator Simulator::fork() const {
  return Simulator(net_, env_, coverage_->clone(), generator_, seed_);
}

}  // namespace lfsc
