// The policy interface every offloading strategy implements.
//
// Information flow enforces the bandit feedback model structurally:
//  * select() sees only SlotInfo (tasks, contexts, coverage) — never the
//    realized U/V/Q;
//  * observe() delivers realizations only for the tasks the policy's own
//    assignment actually processed;
//  * the Oracle opts into full information via needs_realizations() and
//    select_omniscient().
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "sim/network.h"
#include "sim/task.h"

namespace lfsc {

class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string_view name() const noexcept = 0;

  /// Chooses the slot's assignment from observable information only.
  virtual Assignment select(const SlotInfo& info) = 0;

  /// Allocation-reusing variant: fills `out` (cleared first) with the
  /// same assignment select() would return. Hot harness loops call this
  /// so per-SCN selection lists keep their warm capacity across slots;
  /// policies without an in-place path inherit this wrapper.
  virtual void select(const SlotInfo& info, Assignment& out) {
    out = select(info);
  }

  /// Receives bandit feedback for the tasks processed under `assignment`.
  /// Default: ignore (e.g. the Random policy does not learn).
  virtual void observe(const SlotInfo& info, const Assignment& assignment,
                       const SlotFeedback& feedback) {
    (void)info;
    (void)assignment;
    (void)feedback;
  }

  /// True only for reference policies (the Oracle) that are allowed to
  /// see realizations at decision time. The harness then calls
  /// select_omniscient() instead of select().
  virtual bool needs_realizations() const noexcept { return false; }

  /// Full-information selection; only invoked when needs_realizations().
  virtual Assignment select_omniscient(const Slot& slot) {
    return select(slot.info);
  }

  /// Clears all learned state (weights, counters, multipliers) so the
  /// policy can be reused for another run.
  virtual void reset() {}

  // --- overload protection (DESIGN.md §11) ---

  /// Grants the policy a per-slot deadline budget in microseconds; the
  /// policy may degrade its computation to stay within it, as long as
  /// every assignment still satisfies the hard constraints (1a)/(1b).
  /// Must be called before the first slot. The default declines — the
  /// harness then runs the policy without a deadline.
  virtual bool set_slot_budget(std::uint32_t budget_us) {
    (void)budget_us;
    return false;
  }

  // --- degraded-feedback extension (DESIGN.md §9) ---

  /// Opts the policy into delayed bandit feedback: after this returns
  /// true, the harness may deliver observations for slot t via
  /// observe_delayed() up to `max_delay` slots after observe(t), instead
  /// of bundling everything into observe(). Must be called before the
  /// first slot. The default declines — the harness then drops late
  /// observations for this policy (degraded to lossy feedback).
  virtual bool enable_delayed_feedback(int max_delay) {
    (void)max_delay;
    return false;
  }

  /// Late feedback for slot `origin_t` (an earlier select()/observe()
  /// pair). Only called after enable_delayed_feedback() returned true,
  /// and only within the promised delay window.
  virtual void observe_delayed(int origin_t, const SlotFeedback& feedback) {
    (void)origin_t;
    (void)feedback;
  }

  // --- crash-safe checkpointing (DESIGN.md §9) ---

  /// True when the policy can serialize its exact learner state for a
  /// mid-run checkpoint. Policies that support it guarantee that
  /// save_checkpoint() + load_checkpoint() resumes bit-identically.
  virtual bool supports_checkpoint() const noexcept { return false; }

  /// Appends an exact binary snapshot of all mutable state to `out`.
  virtual void save_checkpoint(std::string& out) const {
    (void)out;
    throw std::logic_error(std::string(name()) +
                           ": checkpointing not supported");
  }

  /// Restores state written by save_checkpoint(). Throws
  /// std::runtime_error on a malformed blob or a shape mismatch.
  virtual void load_checkpoint(std::string_view blob) {
    (void)blob;
    throw std::logic_error(std::string(name()) +
                           ": checkpointing not supported");
  }
};

}  // namespace lfsc
