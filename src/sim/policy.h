// The policy interface every offloading strategy implements.
//
// Information flow enforces the bandit feedback model structurally:
//  * select() sees only SlotInfo (tasks, contexts, coverage) — never the
//    realized U/V/Q;
//  * observe() delivers realizations only for the tasks the policy's own
//    assignment actually processed;
//  * the Oracle opts into full information via needs_realizations() and
//    select_omniscient().
#pragma once

#include <string_view>

#include "sim/network.h"
#include "sim/task.h"

namespace lfsc {

class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string_view name() const noexcept = 0;

  /// Chooses the slot's assignment from observable information only.
  virtual Assignment select(const SlotInfo& info) = 0;

  /// Receives bandit feedback for the tasks processed under `assignment`.
  /// Default: ignore (e.g. the Random policy does not learn).
  virtual void observe(const SlotInfo& info, const Assignment& assignment,
                       const SlotFeedback& feedback) {
    (void)info;
    (void)assignment;
    (void)feedback;
  }

  /// True only for reference policies (the Oracle) that are allowed to
  /// see realizations at decision time. The harness then calls
  /// select_omniscient() instead of select().
  virtual bool needs_realizations() const noexcept { return false; }

  /// Full-information selection; only invoked when needs_realizations().
  virtual Assignment select_omniscient(const Slot& slot) {
    return select(slot.info);
  }

  /// Clears all learned state (weights, counters, multipliers) so the
  /// policy can be reused for another run.
  virtual void reset() {}
};

}  // namespace lfsc
