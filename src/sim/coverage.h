// Coverage models: which tasks are within which SCN's coverage each slot.
//
// Two implementations:
//  * AbstractCoverage — the paper's setup: per slot, SCN m sees
//    |D_{m,t}| ~ U[35,100] tasks drawn from a shared pool, so tasks
//    overlap between SCNs ("a WD may be covered by multiple small cells").
//  * GeometricCoverage — an explicit spatial model: SCNs at fixed
//    positions, wireless devices moving by random waypoint, coverage by
//    Euclidean radius. Used by the geometric example and robustness tests.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "sim/generator.h"
#include "sim/task.h"

namespace lfsc {

/// Produces the task set D_t and the coverage lists D_{m,t} for a slot.
/// Implementations may be stateful (mobility); state must evolve only
/// through generate() so that a fixed seed yields a fixed trajectory.
class CoverageModel {
 public:
  virtual ~CoverageModel() = default;

  virtual int num_scns() const noexcept = 0;

  /// Fills `out.tasks` and `out.coverage` for slot `out.t`, drawing all
  /// randomness from `stream` and creating tasks through `gen`.
  virtual void generate(RngStream& stream, TaskGenerator& gen,
                        SlotInfo& out) = 0;

  /// Deep copy including mobility state; used by parallel sweeps.
  virtual std::unique_ptr<CoverageModel> clone() const = 0;
};

/// Paper-mode coverage (Sec. 5).
struct AbstractCoverageConfig {
  int num_scns = 30;
  int tasks_per_scn_min = 35;  ///< lower end of |D_{m,t}|
  int tasks_per_scn_max = 100; ///< upper end of |D_{m,t}|

  /// Average number of SCNs covering a task; controls overlap. 1.0 means
  /// disjoint coverage, larger values increase contention between SCNs.
  double coverage_degree = 1.3;
};

class AbstractCoverage final : public CoverageModel {
 public:
  explicit AbstractCoverage(AbstractCoverageConfig config);

  int num_scns() const noexcept override { return config_.num_scns; }
  void generate(RngStream& stream, TaskGenerator& gen, SlotInfo& out) override;
  std::unique_ptr<CoverageModel> clone() const override;

  const AbstractCoverageConfig& config() const noexcept { return config_; }

 private:
  AbstractCoverageConfig config_;
  // Per-slot scratch (reused across generate() calls; clone() copies are
  // harmless — the contents are dead between calls).
  std::vector<int> demand_;
  std::vector<std::size_t> picks_;
};

/// Spatial coverage with random-waypoint device mobility.
struct GeometricCoverageConfig {
  int num_scns = 30;
  int num_wds = 600;
  double area_km = 6.0;          ///< side of the square deployment area
  double coverage_radius_km = 1.0;
  double wd_speed_km_per_slot = 0.05;
  double task_probability = 0.9; ///< P(a WD requests offloading in a slot)
  std::uint64_t layout_seed = 7; ///< SCN placement (fixed infrastructure)
};

class GeometricCoverage final : public CoverageModel {
 public:
  explicit GeometricCoverage(GeometricCoverageConfig config);

  int num_scns() const noexcept override { return config_.num_scns; }
  void generate(RngStream& stream, TaskGenerator& gen, SlotInfo& out) override;
  std::unique_ptr<CoverageModel> clone() const override;

  const GeometricCoverageConfig& config() const noexcept { return config_; }

  struct Point {
    double x = 0.0;
    double y = 0.0;
  };
  /// Fixed SCN positions (exposed for the geometric example's map output).
  const std::vector<Point>& scn_positions() const noexcept { return scns_; }
  /// Current device positions (evolve via generate()).
  const std::vector<Point>& wd_positions() const noexcept { return wds_; }

 private:
  void step_mobility(RngStream& stream);

  GeometricCoverageConfig config_;
  std::vector<Point> scns_;
  std::vector<Point> wds_;
  std::vector<Point> waypoints_;
};

}  // namespace lfsc
