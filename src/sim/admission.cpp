#include "sim/admission.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/binio.h"
#include "common/counter_hash.h"

namespace lfsc {

namespace {

/// Domain-separation tag for the shed-priority draw family.
constexpr std::uint64_t kTagShed = 0x0A4D'175DULL;

/// Shed priority of (slot t, task id): a pure function of the admission
/// seed, so the shed set is independent of the policy roster and stable
/// across checkpoint/resume.
std::uint64_t shed_hash(std::uint64_t seed, int t, std::int64_t task_id) {
  std::uint64_t h = mix64(seed ^ mix64(kTagShed));
  h = mix64(h ^ static_cast<std::uint64_t>(t));
  return mix64(h ^ static_cast<std::uint64_t>(task_id));
}

}  // namespace

void AdmissionConfig::validate() const {
  if (!std::isfinite(capacity_factor) || capacity_factor <= 0.0) {
    throw std::invalid_argument(
        "AdmissionConfig: capacity_factor must be finite and > 0");
  }
  if (max_queue < 0) {
    throw std::invalid_argument("AdmissionConfig: max_queue must be >= 0");
  }
}

AdmissionControl::AdmissionControl(AdmissionConfig config,
                                   const NetworkConfig& net)
    : config_(config) {
  config_.validate();
  net.validate();
  base_capacity_ = static_cast<double>(net.capacity_c) *
                   static_cast<double>(net.num_scns);
  capacity_ = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(config_.capacity_factor * base_capacity_)));
}

void AdmissionControl::reconfigure(double capacity_factor, int max_queue) {
  AdmissionConfig next = config_;
  next.capacity_factor = capacity_factor;
  next.max_queue = max_queue;
  next.validate();  // throws before anything is touched
  config_ = next;
  capacity_ = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(config_.capacity_factor * base_capacity_)));
}

void AdmissionControl::attach_telemetry(telemetry::Registry& registry) {
  tel_offered_ = &registry.counter("admission.offered", "tasks");
  tel_admitted_ = &registry.counter("admission.admitted", "tasks");
  tel_shed_ = &registry.counter("admission.shed", "tasks");
  tel_saturated_ = &registry.counter("admission.saturated_slots", "slots");
  tel_backlog_ = &registry.gauge("admission.backlog", "tasks");
}

int AdmissionControl::admit(Slot& slot) {
  if (!enabled()) return 0;
  const std::size_t offered = slot.info.tasks.size();
  backlog_ += static_cast<std::int64_t>(offered);

  int shed_n = 0;
  const std::int64_t overflow = backlog_ - config_.max_queue;
  if (overflow > 0) {
    shed_n = static_cast<int>(
        std::min<std::int64_t>(overflow, static_cast<std::int64_t>(offered)));
  }

  if (shed_n > 0) {
    // Rank this slot's tasks by hashed shed priority (ties broken by
    // index — the low 32 bits carry the index, the high 32 the hash).
    rank_.clear();
    for (std::size_t i = 0; i < offered; ++i) {
      const std::uint64_t h =
          shed_hash(config_.seed, slot.info.t, slot.info.tasks[i].id);
      rank_.push_back((h & 0xFFFFFFFF00000000ULL) |
                      static_cast<std::uint32_t>(i));
    }
    std::nth_element(rank_.begin(),
                     rank_.begin() + static_cast<std::ptrdiff_t>(shed_n),
                     rank_.end());
    shed_flag_.assign(offered, 0);
    for (int i = 0; i < shed_n; ++i) {
      shed_flag_[static_cast<std::uint32_t>(rank_[static_cast<std::size_t>(
          i)])] = 1;
    }

    // Remove shed tasks from every coverage list, compacting the aligned
    // realization rows in lockstep (local indices shift together).
    for (std::size_t m = 0; m < slot.info.coverage.size(); ++m) {
      auto& cov = slot.info.coverage[m];
      auto& u = slot.real.u[m];
      auto& v = slot.real.v[m];
      auto& q = slot.real.q[m];
      std::size_t w = 0;
      for (std::size_t j = 0; j < cov.size(); ++j) {
        if (shed_flag_[static_cast<std::size_t>(cov[j])]) continue;
        cov[w] = cov[j];
        u[w] = u[j];
        v[w] = v[j];
        q[w] = q[j];
        ++w;
      }
      cov.resize(w);
      u.resize(w);
      v.resize(w);
      q.resize(w);
    }

    backlog_ -= shed_n;
    ++saturated_slots_;
    if (tel_saturated_ != nullptr) tel_saturated_->add();
  }

  backlog_ = std::max<std::int64_t>(0, backlog_ - capacity_);

  const std::uint64_t admitted =
      static_cast<std::uint64_t>(offered) - static_cast<std::uint64_t>(shed_n);
  offered_ += offered;
  admitted_ += admitted;
  shed_ += static_cast<std::uint64_t>(shed_n);
  if (tel_offered_ != nullptr) {
    tel_offered_->add(offered);
    tel_admitted_->add(admitted);
    if (shed_n > 0) tel_shed_->add(static_cast<std::uint64_t>(shed_n));
    tel_backlog_->set(static_cast<double>(backlog_));
  }
  return shed_n;
}

void AdmissionControl::save_state(std::string& out) const {
  BlobWriter w;
  w.u64(config_.seed);
  w.u64(static_cast<std::uint64_t>(backlog_));
  w.u64(offered_);
  w.u64(admitted_);
  w.u64(shed_);
  w.u64(saturated_slots_);
  out += w.take();
}

void AdmissionControl::load_state(std::string_view blob) {
  BlobReader r(blob);
  const std::uint64_t seed = r.u64();
  if (seed != config_.seed) {
    throw std::runtime_error(
        "AdmissionControl: checkpoint was recorded under a different "
        "admission seed; resume with the original --admission-seed");
  }
  const std::uint64_t backlog = r.u64();
  if (backlog > static_cast<std::uint64_t>(config_.max_queue)) {
    throw std::runtime_error(
        "AdmissionControl: checkpoint backlog exceeds max_queue");
  }
  backlog_ = static_cast<std::int64_t>(backlog);
  offered_ = r.u64();
  admitted_ = r.u64();
  shed_ = r.u64();
  saturated_slots_ = r.u64();
  if (!r.done()) {
    throw std::runtime_error("AdmissionControl: trailing bytes in checkpoint");
  }
}

}  // namespace lfsc
