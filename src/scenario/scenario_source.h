// ScenarioSource (DESIGN.md §13): compiles a validated ScenarioSpec
// into a SlotSource stream — the third SlotSource implementation next
// to Simulator and RadioSimulator, so the runner, checkpointing and
// sweeps work unchanged.
//
// Determinism contract (shared with the fault model, DESIGN.md §9):
// every modulation decision — diurnal factor, flash-crowd windows,
// per-SCN heterogeneity, blockage-burst windows, switch-regime levels —
// is a pure counter-based hash of (spec seed, t, ...), and per-slot
// draws come from a stream keyed (seed, t). The single piece of
// evolving state is the random-walk drift offset, which advances once
// per slot in slot order (the SlotSource contract for stateful
// sources); resume rebuilds it either by checkpoint restore or by the
// runner's in-order fast-forward — both bit-exact. Output is therefore
// identical for any shards × parallel_scns × SIMD combination: those
// knobs live downstream, in the policy.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/scenario_spec.h"
#include "sim/environment.h"
#include "sim/generator.h"
#include "sim/network.h"
#include "sim/slot_source.h"

namespace lfsc {

class ScenarioSource final : public SlotSource {
 public:
  /// `spec` must already be validated (parse_scenario_* guarantees it;
  /// hand-built specs are validated again here).
  explicit ScenarioSource(const ScenarioSpec& spec);

  const NetworkConfig& network() const noexcept override { return net_; }
  const ScenarioSpec& spec() const noexcept { return spec_; }
  const Environment& environment() const noexcept { return env_; }

  Slot generate_slot(int t) override;
  void generate_slot(int t, Slot& out) override;

  /// Deep copy (fresh generator ids continue, walk state copied); used
  /// to run identical worlds under different policies in sweep workers.
  ScenarioSource fork() const { return *this; }

  // --- modulation internals, exposed for tests and diagnostics ---

  /// Arrival multiplier of the diurnal wave at slot t (1 when disabled).
  double diurnal_factor(int t) const noexcept;
  /// Arrival multiplier of the flash-crowd process at slot t: the spike
  /// factor while a (windowed, counter-hashed) spike is live, else 1.
  double flash_factor(int t) const noexcept;
  /// Effective blockage probability for SCN m at slot t: burst value
  /// while m's group has a live burst, else the stationary base.
  double blockage_prob(int t, int m) const noexcept;
  /// Fixed per-SCN arrival weight / completion-likelihood scale.
  double arrival_weight(int m) const noexcept;
  double capacity_scale(int m) const noexcept;
  /// Additive drift offset of process `dim` (0 = U, 1 = V, 2 = Q) at
  /// slot t. For kWalk this reads the cached walk, valid once slot t
  /// has been generated (or advanced to).
  double drift_offset(int dim, int t) const noexcept;

  /// Exact mutable state (walk offsets) plus the spec fingerprint and
  /// seed, for crash-safe checkpoints. load_state rejects an empty blob
  /// or one from a different scenario/seed — resuming under a different
  /// --scenario would silently rewrite history before the checkpoint.
  void save_state(std::string& out) const override;
  void load_state(std::string_view blob) override;

 private:
  void advance_walk(int t);

  ScenarioSpec spec_;
  NetworkConfig net_;
  Environment env_;
  TaskGenerator generator_;
  std::uint64_t seed_ = 0;

  // Fixed per-SCN heterogeneity, hashed once from the seed.
  std::vector<double> arrival_weight_;
  std::vector<double> capacity_scale_;
  std::vector<int> group_;  ///< blockage-burst group per SCN

  // Random-walk drift state: offsets after absorbing steps 1..walk_t_.
  int walk_t_ = 0;
  double walk_[3] = {0.0, 0.0, 0.0};

  // Per-slot scratch (contents dead between calls; copies harmless).
  std::vector<int> demand_;
  std::vector<std::size_t> picks_;
  std::vector<std::uint32_t> latent_scratch_;
  std::vector<std::uint8_t> burst_active_;  ///< per group, this slot
};

}  // namespace lfsc
