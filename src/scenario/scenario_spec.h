// Declarative scenario specs (DESIGN.md §13): a small key=value file
// format describing a non-stationary workload — diurnal traffic waves,
// flash crowds, heterogeneous per-SCN load and service quality,
// correlated mmWave-blockage bursts, and drifting/switching U, V, Q
// processes. A parsed and validated ScenarioSpec is compiled into a
// SlotSource stream by ScenarioSource (scenario_source.h).
//
// Format: one `key = value` pair per line; `#` starts a comment; blank
// lines are ignored. Unknown keys, malformed values and out-of-range
// parameters are rejected with a one-line std::invalid_argument (the
// CLI maps it to exit 2). The full key reference lives in
// docs/SCENARIOS.md; tools/lfsc_scn_lint cross-checks that document
// against scenario_known_keys() so the two cannot drift.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace lfsc {

struct ScenarioSpec {
  // --- world shape (defaults: the paper's Sec. 5 setup) ---
  std::string name = "unnamed";
  int horizon = 10000;        ///< time slots T
  std::uint64_t seed = 42;    ///< root seed of every scenario draw
  int scns = 30;              ///< number of small cell nodes M
  int capacity = 20;          ///< per-SCN communication capacity c
  double alpha = 15.0;        ///< QoS threshold (1c)
  double beta = 27.0;         ///< resource capacity (1d)
  int tasks_min = 35;         ///< lower end of baseline |D_{m,t}|
  int tasks_max = 100;        ///< upper end of baseline |D_{m,t}|
  double coverage_degree = 1.3;  ///< mean SCNs covering a task
  double likelihood_lo = 0.0;    ///< mean-V range lower end
  double likelihood_hi = 1.0;    ///< mean-V range upper end
  double jitter = 0.1;           ///< per-draw uniform jitter half-width
  double blockage_base = 0.0;    ///< stationary mmWave blockage prob

  // --- diurnal wave: arrivals scale by 1 + A·sin(2π(t/P + phase)) ---
  double diurnal_amplitude = 0.0;  ///< A in [0, 1); 0 disables
  int diurnal_period = 0;          ///< P, slots per "day"
  double diurnal_phase = 0.0;      ///< phase offset, fraction of a period

  // --- flash crowds: network-wide arrival spikes ---
  double flash_prob = 0.0;    ///< per-slot spike start probability
  double flash_factor = 1.0;  ///< arrival multiplier while a spike is live
  int flash_min = 1;          ///< spike length range (slots)
  int flash_max = 1;

  // --- per-SCN heterogeneity (fixed for the run, hashed from seed) ---
  double hetero_arrival_spread = 0.0;   ///< arrival weight in [1-s, 1+s]
  double hetero_capacity_spread = 0.0;  ///< V haircut factor in [1-s, 1]

  // --- correlated mmWave-blockage bursts, layered on blockage_base ---
  double burst_prob = 0.0;   ///< per-slot per-group burst start prob
  double burst_value = 0.0;  ///< blockage prob while a burst is live
  int burst_min = 1;         ///< burst length range (slots)
  int burst_max = 1;
  int blockage_groups = 1;   ///< contiguous SCN groups sharing a burst

  // --- non-stationary U, V, Q processes ---
  enum class DriftKind : std::uint8_t {
    kNone = 0,    ///< stationary (the paper's setting)
    kLinear = 1,  ///< offset ramps 0 -> magnitude over `period` slots
    kSwitch = 2,  ///< fresh offset in [-magnitude, magnitude] per regime
    kWalk = 3,    ///< random walk, step in [-magnitude, magnitude]/slot
  };
  struct Drift {
    DriftKind kind = DriftKind::kNone;
    double magnitude = 0.0;  ///< offset scale, in [0, 1]
    int period = 0;          ///< linear: ramp length (0 = horizon);
                             ///< switch: slots per regime (required)
  };
  Drift drift_u;
  Drift drift_v;
  Drift drift_q;

  /// Throws std::invalid_argument (one line) on out-of-range parameters.
  void validate() const;

  /// Order-independent 64-bit digest of every field. Stored in
  /// checkpoints so a --resume under a different --scenario is rejected
  /// instead of silently rewriting history (same role as the fault-seed
  /// guard, DESIGN.md §9).
  std::uint64_t fingerprint() const noexcept;
};

/// Parses a scenario spec from `text`. Throws std::invalid_argument with
/// a one-line message naming the offending line on any malformed input;
/// the returned spec has been validate()d.
ScenarioSpec parse_scenario_text(std::string_view text);

/// Reads and parses the file at `path` (errors name the file and line).
ScenarioSpec parse_scenario_file(const std::string& path);

/// Every key the parser accepts, in documentation order — the single
/// source of truth shared with tools/lfsc_scn_lint, which fails CI when
/// docs/SCENARIOS.md documents a different set.
std::span<const std::string_view> scenario_known_keys() noexcept;

}  // namespace lfsc
