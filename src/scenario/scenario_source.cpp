#include "scenario/scenario_source.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/binio.h"
#include "common/counter_hash.h"

namespace lfsc {
namespace {

// Domain-separation tags for the scenario draw families (same scheme as
// the fault model's kTag* constants; independent of them by tag value).
constexpr std::uint64_t kTagFlashStart = 0xF1A5'0001ULL;
constexpr std::uint64_t kTagFlashLen = 0xF1A5'0002ULL;
constexpr std::uint64_t kTagBurstStart = 0xB10C'0001ULL;
constexpr std::uint64_t kTagBurstLen = 0xB10C'0002ULL;
constexpr std::uint64_t kTagBurstHit = 0xB10C'0003ULL;
constexpr std::uint64_t kTagHetArrival = 0x04E7'0001ULL;
constexpr std::uint64_t kTagHetCapacity = 0x04E7'0002ULL;
constexpr std::uint64_t kTagSwitch = 0xD51F'0001ULL;
constexpr std::uint64_t kTagWalk = 0xD51F'0002ULL;

/// Per-slot RNG stream base; distinct from Simulator's 0x51D0 so a
/// scenario and a plain simulator sharing a seed stay independent.
constexpr std::uint64_t kSlotStreamBase = 0x5CE2'0000ULL;

/// Burst/spike length for the window starting at slot s: uniform over
/// [min, max] via one hash draw (the fault model's outage-length rule).
int hashed_length(std::uint64_t seed, std::uint64_t tag, int s,
                  std::uint64_t key, int min_len, int max_len) noexcept {
  const double u = hash_unit(seed, tag, static_cast<std::uint64_t>(s), key);
  const int span = max_len - min_len + 1;
  return min_len + std::min(span - 1, static_cast<int>(u * span));
}

/// True when a windowed process (spike/burst) keyed by `key` is live at
/// slot t: some start s in (t - max_len, t] fired and reaches t. Pure
/// function of (seed, t) — no state to carry, O(max_len) per query.
bool window_active(std::uint64_t seed, std::uint64_t start_tag,
                   std::uint64_t len_tag, std::uint64_t key, int t,
                   double prob, int min_len, int max_len) noexcept {
  if (prob <= 0.0) return false;
  const int first = std::max(1, t - max_len + 1);
  for (int s = first; s <= t; ++s) {
    const double u =
        hash_unit(seed, start_tag, static_cast<std::uint64_t>(s), key);
    if (u >= prob) continue;
    if (s + hashed_length(seed, len_tag, s, key, min_len, max_len) > t) {
      return true;
    }
  }
  return false;
}

double clamp01(double x) noexcept { return std::clamp(x, 0.0, 1.0); }

}  // namespace

ScenarioSource::ScenarioSource(const ScenarioSpec& spec)
    : spec_(spec),
      net_{.num_scns = spec.scns,
           .capacity_c = spec.capacity,
           .qos_alpha = spec.alpha,
           .resource_beta = spec.beta},
      env_([&] {
        EnvironmentConfig e;
        e.num_scns = spec.scns;
        e.likelihood_lo = spec.likelihood_lo;
        e.likelihood_hi = spec.likelihood_hi;
        e.jitter = spec.jitter;
        e.blockage_prob = 0.0;  // blockage applied post-draw, per (t, m)
        e.seed = spec.seed;
        return Environment(e);
      }()),
      seed_(spec.seed) {
  spec_.validate();
  net_.validate();

  // Fixed heterogeneity: one hash per SCN, so the profile is a pure
  // function of the seed (stable across fork/resume without state).
  const auto n = static_cast<std::size_t>(spec_.scns);
  arrival_weight_.resize(n);
  capacity_scale_.resize(n);
  group_.resize(n);
  for (std::size_t m = 0; m < n; ++m) {
    arrival_weight_[m] =
        1.0 + spec_.hetero_arrival_spread *
                  (2.0 * hash_unit(seed_, kTagHetArrival, m, 0) - 1.0);
    capacity_scale_[m] =
        1.0 - spec_.hetero_capacity_spread * hash_unit(seed_, kTagHetCapacity, m, 0);
    // Contiguous groups of near-equal size: neighbors share mmWave
    // geometry, so they blockage-burst together.
    group_[m] = static_cast<int>(m * static_cast<std::size_t>(spec_.blockage_groups) / n);
  }
}

double ScenarioSource::diurnal_factor(int t) const noexcept {
  if (spec_.diurnal_amplitude <= 0.0 || spec_.diurnal_period <= 0) return 1.0;
  const double phase =
      static_cast<double>(t) / spec_.diurnal_period + spec_.diurnal_phase;
  return 1.0 + spec_.diurnal_amplitude *
                   std::sin(2.0 * std::numbers::pi * phase);
}

double ScenarioSource::flash_factor(int t) const noexcept {
  return window_active(seed_, kTagFlashStart, kTagFlashLen, /*key=*/0, t,
                       spec_.flash_prob, spec_.flash_min, spec_.flash_max)
             ? spec_.flash_factor
             : 1.0;
}

double ScenarioSource::blockage_prob(int t, int m) const noexcept {
  const auto g =
      static_cast<std::uint64_t>(group_[static_cast<std::size_t>(m)]);
  return window_active(seed_, kTagBurstStart, kTagBurstLen, g, t,
                       spec_.burst_prob, spec_.burst_min, spec_.burst_max)
             ? spec_.burst_value
             : spec_.blockage_base;
}

double ScenarioSource::arrival_weight(int m) const noexcept {
  return arrival_weight_[static_cast<std::size_t>(m)];
}

double ScenarioSource::capacity_scale(int m) const noexcept {
  return capacity_scale_[static_cast<std::size_t>(m)];
}

double ScenarioSource::drift_offset(int dim, int t) const noexcept {
  const ScenarioSpec::Drift& d =
      dim == 0 ? spec_.drift_u : dim == 1 ? spec_.drift_v : spec_.drift_q;
  switch (d.kind) {
    case ScenarioSpec::DriftKind::kNone:
      return 0.0;
    case ScenarioSpec::DriftKind::kLinear: {
      const int ramp = d.period > 0 ? d.period : spec_.horizon;
      return d.magnitude *
             std::min(1.0, static_cast<double>(t) / static_cast<double>(ramp));
    }
    case ScenarioSpec::DriftKind::kSwitch: {
      // Regime r holds for slots [r·period, (r+1)·period): a fresh
      // offset in [-magnitude, magnitude] per regime, switching
      // abruptly at the scheduled slot boundaries.
      const auto regime = static_cast<std::uint64_t>(t / d.period);
      return d.magnitude *
             (2.0 * hash_unit(seed_, kTagSwitch, regime,
                              static_cast<std::uint64_t>(dim)) -
              1.0);
    }
    case ScenarioSpec::DriftKind::kWalk:
      return walk_[dim];
  }
  return 0.0;
}

void ScenarioSource::advance_walk(int t) {
  // Absorb steps walk_t_+1..t (a no-op when already caught up). Each
  // step is a counter hash of its slot, so the walk at slot t is the
  // same sum no matter how many instances replayed the prefix — the
  // property the resume fast-forward relies on. Clamped to [-1, 1]: a
  // drift offset beyond that saturates every clamp downstream anyway.
  const ScenarioSpec::Drift* drifts[3] = {&spec_.drift_u, &spec_.drift_v,
                                          &spec_.drift_q};
  for (int s = walk_t_ + 1; s <= t; ++s) {
    for (int dim = 0; dim < 3; ++dim) {
      if (drifts[dim]->kind != ScenarioSpec::DriftKind::kWalk) continue;
      const double step =
          drifts[dim]->magnitude *
          (2.0 * hash_unit(seed_, kTagWalk, static_cast<std::uint64_t>(s),
                           static_cast<std::uint64_t>(dim)) -
           1.0);
      walk_[dim] = std::clamp(walk_[dim] + step, -1.0, 1.0);
    }
  }
  walk_t_ = std::max(walk_t_, t);
}

Slot ScenarioSource::generate_slot(int t) {
  Slot slot;
  generate_slot(t, slot);
  return slot;
}

void ScenarioSource::generate_slot(int t, Slot& slot) {
  advance_walk(t);
  slot.info.t = t;
  RngStream stream(seed_, kSlotStreamBase + static_cast<std::uint64_t>(t));

  // --- arrivals: the AbstractCoverage shared-pool construction, with
  // per-SCN demand modulated by wave × flash × heterogeneity ---
  slot.info.tasks.clear();
  const auto num_scns = static_cast<std::size_t>(spec_.scns);
  slot.info.coverage.resize(num_scns);
  for (auto& cover : slot.info.coverage) cover.clear();

  const double wave = diurnal_factor(t) * flash_factor(t);
  demand_.resize(num_scns);
  long total_demand = 0;
  for (std::size_t m = 0; m < num_scns; ++m) {
    // One base draw per SCN regardless of modulation, so the stream
    // layout (and thus every later draw) is independent of the
    // modulation parameters' *values* — only the realized counts move.
    const auto base =
        stream.uniform_int(spec_.tasks_min, spec_.tasks_max);
    const double scaled =
        static_cast<double>(base) * wave * arrival_weight_[m];
    demand_[m] = static_cast<int>(std::lround(std::max(0.0, scaled)));
    total_demand += demand_[m];
  }

  const auto pool_size = static_cast<std::size_t>(std::max<long>(
      1, std::lround(static_cast<double>(total_demand) / spec_.coverage_degree)));
  slot.info.tasks.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    slot.info.tasks.push_back(generator_.next(stream));
  }
  for (std::size_t m = 0; m < num_scns; ++m) {
    const auto want = std::min<std::size_t>(
        static_cast<std::size_t>(demand_[m]), pool_size);
    stream.sample_without_replacement(pool_size, want, picks_);
    std::sort(picks_.begin(), picks_.end());
    auto& cover = slot.info.coverage[m];
    cover.reserve(picks_.size());
    for (const auto p : picks_) cover.push_back(static_cast<int>(p));
  }

  // --- realizations: stationary environment draws, then the scenario's
  // non-stationary transforms layered on top ---
  latent_scratch_.resize(slot.info.tasks.size());
  for (std::size_t i = 0; i < slot.info.tasks.size(); ++i) {
    latent_scratch_[i] = static_cast<std::uint32_t>(
        env_.latent_cell(slot.info.tasks[i].context));
  }

  const double off_u = drift_offset(0, t);
  const double off_v = drift_offset(1, t);
  const double off_q = drift_offset(2, t);
  slot.real.u.resize(num_scns);
  slot.real.v.resize(num_scns);
  slot.real.q.resize(num_scns);
  for (std::size_t m = 0; m < num_scns; ++m) {
    const auto& cover = slot.info.coverage[m];
    auto& u = slot.real.u[m];
    auto& v = slot.real.v[m];
    auto& q = slot.real.q[m];
    u.resize(cover.size());
    v.resize(cover.size());
    q.resize(cover.size());
    env_.draw_cover(static_cast<int>(m), cover, latent_scratch_.data(), stream,
                    u.data(), v.data(), q.data());

    const double block_p = blockage_prob(t, static_cast<int>(m));
    const double cap = capacity_scale_[m];
    for (std::size_t j = 0; j < cover.size(); ++j) {
      u[j] = clamp01(u[j] + off_u);
      v[j] = clamp01(v[j] * cap + off_v);
      if (block_p > 0.0) {
        // Per-(slot, SCN, task) hash, not a stream draw: the blockage
        // schedule is order-independent, like the fault model's fates.
        const auto key =
            (static_cast<std::uint64_t>(m) << 32) |
            static_cast<std::uint32_t>(cover[j]);
        if (hash_unit(seed_, kTagBurstHit, static_cast<std::uint64_t>(t),
                      key) < block_p) {
          v[j] = 0.0;
        }
      }
      q[j] = std::clamp(q[j] + off_q, 1.0, 2.0);
    }
  }
}

void ScenarioSource::save_state(std::string& out) const {
  BlobWriter w;
  w.u64(seed_);
  w.u64(spec_.fingerprint());
  w.i32(walk_t_);
  for (const double x : walk_) w.f64(x);
  out += w.take();
}

void ScenarioSource::load_state(std::string_view blob) {
  if (blob.empty()) {
    throw std::runtime_error(
        "ScenarioSource: checkpoint carries no scenario state (it was "
        "written by a run without --scenario)");
  }
  BlobReader r(blob);
  const std::uint64_t seed = r.u64();
  const std::uint64_t fp = r.u64();
  if (seed != seed_ || fp != spec_.fingerprint()) {
    // Every modulation is a pure function of (seed, spec), so resuming
    // under a different scenario silently rewrites history before the
    // checkpoint — same reasoning as the fault-seed guard.
    throw std::runtime_error(
        "ScenarioSource: checkpoint was recorded under a different scenario "
        "spec or seed; resume with the original --scenario file");
  }
  const int t = r.i32();
  double walk[3];
  for (double& x : walk) x = r.f64();
  if (!r.done()) {
    throw std::runtime_error("ScenarioSource: trailing bytes in checkpoint");
  }
  walk_t_ = t;
  for (int i = 0; i < 3; ++i) walk_[i] = walk[i];
}

}  // namespace lfsc
