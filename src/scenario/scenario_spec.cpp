#include "scenario/scenario_spec.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/counter_hash.h"

namespace lfsc {
namespace {

// Documentation order; lfsc_scn_lint compares this list against the
// key-reference table in docs/SCENARIOS.md, both directions.
constexpr std::string_view kKnownKeys[] = {
    "name",
    "horizon",
    "seed",
    "scns",
    "capacity",
    "alpha",
    "beta",
    "tasks.min",
    "tasks.max",
    "coverage.degree",
    "likelihood.lo",
    "likelihood.hi",
    "jitter",
    "blockage.base",
    "arrival.diurnal.amplitude",
    "arrival.diurnal.period",
    "arrival.diurnal.phase",
    "arrival.flash.prob",
    "arrival.flash.factor",
    "arrival.flash.min",
    "arrival.flash.max",
    "hetero.arrival.spread",
    "hetero.capacity.spread",
    "blockage.burst.prob",
    "blockage.burst.value",
    "blockage.burst.min",
    "blockage.burst.max",
    "blockage.groups",
    "drift.u.kind",
    "drift.u.magnitude",
    "drift.u.period",
    "drift.v.kind",
    "drift.v.magnitude",
    "drift.v.period",
    "drift.q.kind",
    "drift.q.magnitude",
    "drift.q.period",
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::invalid_argument("scenario: line " + std::to_string(line) + ": " +
                              message);
}

int parse_int(std::string_view value, int line, std::string_view key) {
  int out = 0;
  const auto* end = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(value.data(), end, out);
  if (ec != std::errc() || ptr != end) {
    fail(line, std::string(key) + ": '" + std::string(value) +
                   "' is not an integer");
  }
  return out;
}

double parse_double(std::string_view value, int line, std::string_view key) {
  // std::from_chars<double> is still missing in some libstdc++ configs;
  // strtod via a bounded copy keeps the parser portable.
  const std::string copy(value);
  char* end = nullptr;
  const double out = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || copy.empty()) {
    fail(line, std::string(key) + ": '" + copy + "' is not a number");
  }
  return out;
}

ScenarioSpec::DriftKind parse_kind(std::string_view value, int line,
                                   std::string_view key) {
  if (value == "none") return ScenarioSpec::DriftKind::kNone;
  if (value == "linear") return ScenarioSpec::DriftKind::kLinear;
  if (value == "switch") return ScenarioSpec::DriftKind::kSwitch;
  if (value == "walk") return ScenarioSpec::DriftKind::kWalk;
  fail(line, std::string(key) + ": '" + std::string(value) +
                 "' is not one of none, linear, switch, walk");
}

void check(bool ok, const std::string& message) {
  if (!ok) throw std::invalid_argument("scenario: " + message);
}

void check_drift(const ScenarioSpec::Drift& d, const char* which) {
  const std::string key = std::string("drift.") + which;
  check(d.magnitude >= 0.0 && d.magnitude <= 1.0,
        key + ".magnitude must be in [0, 1]");
  check(d.period >= 0, key + ".period must be >= 0");
  if (d.kind == ScenarioSpec::DriftKind::kSwitch) {
    check(d.period >= 1, key + ".kind = switch requires " + key +
                             ".period >= 1 (slots per regime)");
  }
}

}  // namespace

void ScenarioSpec::validate() const {
  check(!name.empty(), "name must be non-empty");
  check(horizon > 0, "horizon must be positive");
  check(scns > 0, "scns must be positive");
  check(capacity > 0, "capacity must be positive (c >= 1)");
  check(alpha > 0.0, "alpha must be positive");
  check(beta > 0.0, "beta must be positive");
  check(tasks_min > 0, "tasks.min must be positive");
  check(tasks_max >= tasks_min, "tasks.max must be >= tasks.min");
  check(coverage_degree >= 1.0, "coverage.degree must be >= 1");
  check(likelihood_lo >= 0.0 && likelihood_hi <= 1.0 &&
            likelihood_lo <= likelihood_hi,
        "likelihood.lo/likelihood.hi must satisfy 0 <= lo <= hi <= 1");
  check(jitter >= 0.0 && jitter <= 1.0, "jitter must be in [0, 1]");
  check(blockage_base >= 0.0 && blockage_base <= 1.0,
        "blockage.base must be in [0, 1]");
  check(diurnal_amplitude >= 0.0 && diurnal_amplitude < 1.0,
        "arrival.diurnal.amplitude must be in [0, 1)");
  check(diurnal_period >= 0, "arrival.diurnal.period must be >= 0");
  if (diurnal_amplitude > 0.0) {
    check(diurnal_period >= 2,
          "arrival.diurnal.amplitude > 0 requires arrival.diurnal.period >= 2");
  }
  check(diurnal_phase >= 0.0 && diurnal_phase < 1.0,
        "arrival.diurnal.phase must be in [0, 1)");
  check(flash_prob >= 0.0 && flash_prob <= 1.0,
        "arrival.flash.prob must be in [0, 1]");
  check(flash_factor >= 1.0, "arrival.flash.factor must be >= 1");
  check(flash_min >= 1 && flash_max >= flash_min,
        "need 1 <= arrival.flash.min <= arrival.flash.max");
  check(hetero_arrival_spread >= 0.0 && hetero_arrival_spread < 1.0,
        "hetero.arrival.spread must be in [0, 1)");
  check(hetero_capacity_spread >= 0.0 && hetero_capacity_spread < 1.0,
        "hetero.capacity.spread must be in [0, 1)");
  check(burst_prob >= 0.0 && burst_prob <= 1.0,
        "blockage.burst.prob must be in [0, 1]");
  check(burst_value >= 0.0 && burst_value <= 1.0,
        "blockage.burst.value must be in [0, 1]");
  check(burst_min >= 1 && burst_max >= burst_min,
        "need 1 <= blockage.burst.min <= blockage.burst.max");
  check(blockage_groups >= 1 && blockage_groups <= scns,
        "blockage.groups must be in [1, scns]");
  check_drift(drift_u, "u");
  check_drift(drift_v, "v");
  check_drift(drift_q, "q");
}

std::uint64_t ScenarioSpec::fingerprint() const noexcept {
  // Field-order chained mix64 over a canonical serialization: any field
  // change (including the name) changes the digest.
  std::uint64_t h = mix64(0x5CE2'F1D6ULL);
  for (const char c : name) h = mix64(h ^ static_cast<unsigned char>(c));
  const auto mix_u64 = [&](std::uint64_t v) { h = mix64(h ^ v); };
  const auto mix_f64 = [&](double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    mix_u64(bits);
  };
  mix_u64(static_cast<std::uint64_t>(horizon));
  mix_u64(seed);
  mix_u64(static_cast<std::uint64_t>(scns));
  mix_u64(static_cast<std::uint64_t>(capacity));
  mix_f64(alpha);
  mix_f64(beta);
  mix_u64(static_cast<std::uint64_t>(tasks_min));
  mix_u64(static_cast<std::uint64_t>(tasks_max));
  mix_f64(coverage_degree);
  mix_f64(likelihood_lo);
  mix_f64(likelihood_hi);
  mix_f64(jitter);
  mix_f64(blockage_base);
  mix_f64(diurnal_amplitude);
  mix_u64(static_cast<std::uint64_t>(diurnal_period));
  mix_f64(diurnal_phase);
  mix_f64(flash_prob);
  mix_f64(flash_factor);
  mix_u64(static_cast<std::uint64_t>(flash_min));
  mix_u64(static_cast<std::uint64_t>(flash_max));
  mix_f64(hetero_arrival_spread);
  mix_f64(hetero_capacity_spread);
  mix_f64(burst_prob);
  mix_f64(burst_value);
  mix_u64(static_cast<std::uint64_t>(burst_min));
  mix_u64(static_cast<std::uint64_t>(burst_max));
  mix_u64(static_cast<std::uint64_t>(blockage_groups));
  for (const Drift* d : {&drift_u, &drift_v, &drift_q}) {
    mix_u64(static_cast<std::uint64_t>(d->kind));
    mix_f64(d->magnitude);
    mix_u64(static_cast<std::uint64_t>(d->period));
  }
  return h;
}

ScenarioSpec parse_scenario_text(std::string_view text) {
  ScenarioSpec spec;
  std::istringstream is{std::string(text)};
  std::string raw;
  int line = 0;
  while (std::getline(is, raw)) {
    ++line;
    std::string_view s(raw);
    if (const auto hash = s.find('#'); hash != std::string_view::npos) {
      s = s.substr(0, hash);
    }
    s = trim(s);
    if (s.empty()) continue;
    const auto eq = s.find('=');
    if (eq == std::string_view::npos) {
      fail(line, "expected 'key = value', got '" + std::string(s) + "'");
    }
    const std::string_view key = trim(s.substr(0, eq));
    const std::string_view value = trim(s.substr(eq + 1));
    if (key.empty()) fail(line, "empty key");
    if (value.empty()) fail(line, std::string(key) + ": empty value");

    const auto as_int = [&] { return parse_int(value, line, key); };
    const auto as_f64 = [&] { return parse_double(value, line, key); };
    const auto as_kind = [&] { return parse_kind(value, line, key); };

    if (key == "name") {
      spec.name = std::string(value);
    } else if (key == "horizon") {
      spec.horizon = as_int();
    } else if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(
          parse_int(value, line, key));
    } else if (key == "scns") {
      spec.scns = as_int();
    } else if (key == "capacity") {
      spec.capacity = as_int();
    } else if (key == "alpha") {
      spec.alpha = as_f64();
    } else if (key == "beta") {
      spec.beta = as_f64();
    } else if (key == "tasks.min") {
      spec.tasks_min = as_int();
    } else if (key == "tasks.max") {
      spec.tasks_max = as_int();
    } else if (key == "coverage.degree") {
      spec.coverage_degree = as_f64();
    } else if (key == "likelihood.lo") {
      spec.likelihood_lo = as_f64();
    } else if (key == "likelihood.hi") {
      spec.likelihood_hi = as_f64();
    } else if (key == "jitter") {
      spec.jitter = as_f64();
    } else if (key == "blockage.base") {
      spec.blockage_base = as_f64();
    } else if (key == "arrival.diurnal.amplitude") {
      spec.diurnal_amplitude = as_f64();
    } else if (key == "arrival.diurnal.period") {
      spec.diurnal_period = as_int();
    } else if (key == "arrival.diurnal.phase") {
      spec.diurnal_phase = as_f64();
    } else if (key == "arrival.flash.prob") {
      spec.flash_prob = as_f64();
    } else if (key == "arrival.flash.factor") {
      spec.flash_factor = as_f64();
    } else if (key == "arrival.flash.min") {
      spec.flash_min = as_int();
    } else if (key == "arrival.flash.max") {
      spec.flash_max = as_int();
    } else if (key == "hetero.arrival.spread") {
      spec.hetero_arrival_spread = as_f64();
    } else if (key == "hetero.capacity.spread") {
      spec.hetero_capacity_spread = as_f64();
    } else if (key == "blockage.burst.prob") {
      spec.burst_prob = as_f64();
    } else if (key == "blockage.burst.value") {
      spec.burst_value = as_f64();
    } else if (key == "blockage.burst.min") {
      spec.burst_min = as_int();
    } else if (key == "blockage.burst.max") {
      spec.burst_max = as_int();
    } else if (key == "blockage.groups") {
      spec.blockage_groups = as_int();
    } else if (key == "drift.u.kind") {
      spec.drift_u.kind = as_kind();
    } else if (key == "drift.u.magnitude") {
      spec.drift_u.magnitude = as_f64();
    } else if (key == "drift.u.period") {
      spec.drift_u.period = as_int();
    } else if (key == "drift.v.kind") {
      spec.drift_v.kind = as_kind();
    } else if (key == "drift.v.magnitude") {
      spec.drift_v.magnitude = as_f64();
    } else if (key == "drift.v.period") {
      spec.drift_v.period = as_int();
    } else if (key == "drift.q.kind") {
      spec.drift_q.kind = as_kind();
    } else if (key == "drift.q.magnitude") {
      spec.drift_q.magnitude = as_f64();
    } else if (key == "drift.q.period") {
      spec.drift_q.period = as_int();
    } else {
      fail(line, "unknown key '" + std::string(key) +
                     "' (see docs/SCENARIOS.md for the key reference)");
    }
  }
  spec.validate();
  return spec;
}

ScenarioSpec parse_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::invalid_argument("scenario: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_scenario_text(buf.str());
  } catch (const std::invalid_argument& e) {
    // Prefix the file so sweep/CI output names the offending spec.
    throw std::invalid_argument(path + ": " + e.what());
  }
}

std::span<const std::string_view> scenario_known_keys() noexcept {
  return kKnownKeys;
}

}  // namespace lfsc
