#include "telemetry/telemetry.h"

namespace lfsc::telemetry {

const char* kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
    case Kind::kTimer:
      return "timer";
    case Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

#if LFSC_TELEMETRY_ENABLED

double Timer::min_seconds() const noexcept {
  double min = 0.0;
  bool seen = false;
  for (const auto& s : shards_) {
    if (s.count == 0) continue;
    min = seen ? std::min(min, s.min) : s.min;
    seen = true;
  }
  return min;
}

double Timer::max_seconds() const noexcept {
  double max = 0.0;
  for (const auto& s : shards_) {
    if (s.count > 0) max = std::max(max, s.max);
  }
  return max;
}

Histogram::Histogram(std::vector<double> bounds, std::size_t streams)
    : bounds_(std::move(bounds)), shards_(streams == 0 ? 1 : streams) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  for (auto& s : shards_) s.counts.assign(bounds_.size() + 1, 0);
}

std::vector<std::uint64_t> Histogram::merged_counts() const {
  std::vector<std::uint64_t> merged(bounds_.size() + 1, 0);
  for (const auto& s : shards_) {
    for (std::size_t b = 0; b < merged.size(); ++b) merged[b] += s.counts[b];
  }
  return merged;
}

void Histogram::reset() noexcept {
  for (auto& s : shards_) {
    std::fill(s.counts.begin(), s.counts.end(), 0);
    s.count = 0;
    s.sum = 0.0;
  }
}

void Histogram::restore(const std::vector<std::uint64_t>& merged,
                        std::uint64_t count, double sum) {
  if (merged.size() != bounds_.size() + 1) {
    throw std::logic_error(
        "telemetry::Histogram::restore: bucket count mismatch");
  }
  reset();
  shards_[0].counts = merged;
  shards_[0].count = count;
  shards_[0].sum = sum;
}

Registry::Entry* Registry::find(const std::string& name) noexcept {
  for (auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

namespace {

[[noreturn]] void throw_kind_mismatch(const std::string& name, Kind wanted,
                                      Kind existing) {
  throw std::logic_error("telemetry::Registry: metric '" + name +
                         "' already registered as " + kind_name(existing) +
                         ", requested as " + kind_name(wanted));
}

}  // namespace

Counter& Registry::counter(const std::string& name, const std::string& unit,
                           std::size_t streams) {
  if (Entry* entry = find(name)) {
    if (entry->kind != Kind::kCounter) {
      throw_kind_mismatch(name, Kind::kCounter, entry->kind);
    }
    return *entry->counter;
  }
  entries_.push_back(Entry{name, unit, Kind::kCounter,
                           std::make_unique<Counter>(streams), nullptr,
                           nullptr, nullptr});
  return *entries_.back().counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& unit,
                       std::size_t streams) {
  if (Entry* entry = find(name)) {
    if (entry->kind != Kind::kGauge) {
      throw_kind_mismatch(name, Kind::kGauge, entry->kind);
    }
    return *entry->gauge;
  }
  entries_.push_back(Entry{name, unit, Kind::kGauge, nullptr,
                           std::make_unique<Gauge>(streams), nullptr,
                           nullptr});
  return *entries_.back().gauge;
}

Timer& Registry::timer(const std::string& name, const std::string& unit,
                       std::size_t streams) {
  if (Entry* entry = find(name)) {
    if (entry->kind != Kind::kTimer) {
      throw_kind_mismatch(name, Kind::kTimer, entry->kind);
    }
    return *entry->timer;
  }
  entries_.push_back(Entry{name, unit, Kind::kTimer, nullptr, nullptr,
                           std::make_unique<Timer>(streams), nullptr});
  return *entries_.back().timer;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds,
                               const std::string& unit, std::size_t streams) {
  if (Entry* entry = find(name)) {
    if (entry->kind != Kind::kHistogram) {
      throw_kind_mismatch(name, Kind::kHistogram, entry->kind);
    }
    return *entry->histogram;
  }
  entries_.push_back(
      Entry{name, unit, Kind::kHistogram, nullptr, nullptr, nullptr,
            std::make_unique<Histogram>(std::move(bounds), streams)});
  return *entries_.back().histogram;
}

void Registry::reset() noexcept {
  for (auto& entry : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->reset();
        break;
      case Kind::kGauge:
        entry.gauge->reset();
        break;
      case Kind::kTimer:
        entry.timer->reset();
        break;
      case Kind::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricSnapshot snap;
    snap.name = entry.name;
    snap.unit = entry.unit;
    snap.kind = entry.kind;
    switch (entry.kind) {
      case Kind::kCounter: {
        const Counter& c = *entry.counter;
        snap.value = static_cast<double>(c.value());
        snap.count = c.value();
        if (c.streams() > 1) {
          snap.stream_values.reserve(c.streams());
          for (std::size_t s = 0; s < c.streams(); ++s) {
            snap.stream_values.push_back(
                static_cast<double>(c.stream_value(s)));
          }
        }
        break;
      }
      case Kind::kGauge: {
        const Gauge& g = *entry.gauge;
        snap.value = g.value();
        if (g.streams() > 1) {
          snap.stream_values.reserve(g.streams());
          for (std::size_t s = 0; s < g.streams(); ++s) {
            snap.stream_values.push_back(g.stream_value(s));
          }
        }
        break;
      }
      case Kind::kTimer: {
        const Timer& t = *entry.timer;
        snap.count = t.count();
        snap.sum = t.total_seconds();
        snap.value = snap.sum;
        snap.min = t.min_seconds();
        snap.max = t.max_seconds();
        if (t.streams() > 1) {
          snap.stream_values.reserve(t.streams());
          for (std::size_t s = 0; s < t.streams(); ++s) {
            snap.stream_values.push_back(t.stream_total(s));
          }
        }
        break;
      }
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        snap.count = h.count();
        snap.sum = h.sum();
        snap.value = h.mean();
        snap.bounds = h.bounds();
        snap.bucket_counts = h.merged_counts();
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void Registry::restore(const std::vector<MetricSnapshot>& snaps) {
  for (const auto& snap : snaps) {
    Entry* entry = find(snap.name);
    if (entry == nullptr) continue;
    if (entry->kind != snap.kind) {
      throw_kind_mismatch(snap.name, snap.kind, entry->kind);
    }
    switch (entry->kind) {
      case Kind::kCounter: {
        Counter& c = *entry->counter;
        c.reset();
        if (!snap.stream_values.empty() && c.streams() > 1) {
          const std::size_t n =
              std::min(c.streams(), snap.stream_values.size());
          for (std::size_t s = 0; s < n; ++s) {
            c.add(static_cast<std::uint64_t>(snap.stream_values[s]), s);
          }
        } else {
          c.add(snap.count);
        }
        break;
      }
      case Kind::kGauge: {
        Gauge& g = *entry->gauge;
        g.reset();
        if (!snap.stream_values.empty() && g.streams() > 1) {
          const std::size_t n =
              std::min(g.streams(), snap.stream_values.size());
          for (std::size_t s = 0; s < n; ++s) g.set(snap.stream_values[s], s);
        } else {
          g.set(snap.value);
        }
        break;
      }
      case Kind::kTimer:
        break;  // wall time restarts from zero on resume
      case Kind::kHistogram:
        entry->histogram->restore(snap.bucket_counts, snap.count, snap.sum);
        break;
    }
  }
}

namespace {

std::string stream_column(const std::string& name, std::size_t stream) {
  return name + "[" + std::to_string(stream) + "]";
}

}  // namespace

void Registry::column_names(std::vector<std::string>& out) const {
  for (const auto& entry : entries_) {
    switch (entry.kind) {
      case Kind::kCounter: {
        out.push_back(entry.name);
        const std::size_t streams = entry.counter->streams();
        if (streams > 1) {
          for (std::size_t s = 0; s < streams; ++s) {
            out.push_back(stream_column(entry.name, s));
          }
        }
        break;
      }
      case Kind::kGauge: {
        const std::size_t streams = entry.gauge->streams();
        if (streams > 1) {
          for (std::size_t s = 0; s < streams; ++s) {
            out.push_back(stream_column(entry.name, s));
          }
        } else {
          out.push_back(entry.name);
        }
        break;
      }
      case Kind::kTimer:
        out.push_back(entry.name);
        break;
      case Kind::kHistogram:
        out.push_back(entry.name + ".count");
        out.push_back(entry.name + ".mean");
        break;
    }
  }
}

void Registry::column_values(std::vector<double>& out) const {
  for (const auto& entry : entries_) {
    switch (entry.kind) {
      case Kind::kCounter: {
        const Counter& c = *entry.counter;
        out.push_back(static_cast<double>(c.value()));
        if (c.streams() > 1) {
          for (std::size_t s = 0; s < c.streams(); ++s) {
            out.push_back(static_cast<double>(c.stream_value(s)));
          }
        }
        break;
      }
      case Kind::kGauge: {
        const Gauge& g = *entry.gauge;
        if (g.streams() > 1) {
          for (std::size_t s = 0; s < g.streams(); ++s) {
            out.push_back(g.stream_value(s));
          }
        } else {
          out.push_back(g.value());
        }
        break;
      }
      case Kind::kTimer:
        out.push_back(entry.timer->total_seconds());
        break;
      case Kind::kHistogram:
        out.push_back(static_cast<double>(entry.histogram->count()));
        out.push_back(entry.histogram->mean());
        break;
    }
  }
}

#endif  // LFSC_TELEMETRY_ENABLED

void TimeSeries::sample(const Registry& registry, int slot) {
  if (registry.empty()) return;
  if (names.empty()) registry.column_names(names);
  rows.emplace_back();
  rows.back().reserve(names.size());
  registry.column_values(rows.back());
  t.push_back(slot);
}

}  // namespace lfsc::telemetry
