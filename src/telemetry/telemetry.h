// Near-zero-overhead instrumentation for the slot pipeline: monotonic
// counters, gauges, scoped RAII timers (backed by common/stopwatch.h)
// and fixed-bucket histograms, collected in a per-policy Registry.
//
// Concurrency model — per-stream accumulation, deterministic merge:
// every metric is created with S >= 1 *streams* (shards). Writers on
// different streams never touch the same memory, so the per-SCN slot
// phases (LfscConfig::parallel_scns) can record into stream m = SCN
// index from pool threads without atomics or locks. Aggregate readers
// (value(), total_seconds(), snapshot(), ...) fold the shards in
// ascending stream order — a fixed fold order, so merged floating-point
// sums are bit-identical for any worker count, serial included.
// Registration and aggregate reads are single-threaded by contract
// (construction / between slots / after the run).
//
// Compile-time gating: built with LFSC_TELEMETRY_ENABLED=0 (CMake
// -DLFSC_TELEMETRY=OFF) every class below becomes an empty inline stub —
// call sites compile to nothing, exports emit an "enabled": false
// shell — so instrumented code carries no cost and no #ifdefs.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/stopwatch.h"

#ifndef LFSC_TELEMETRY_ENABLED
#define LFSC_TELEMETRY_ENABLED 1
#endif

namespace lfsc::telemetry {

/// True when the instrumentation is compiled in. Use to gate telemetry
/// work with a cost even when its metric calls would be no-ops (e.g.
/// counting flags before a histogram observe).
inline constexpr bool kEnabled = LFSC_TELEMETRY_ENABLED != 0;

enum class Kind { kCounter, kGauge, kTimer, kHistogram };

/// Stable lowercase name ("counter", "gauge", "timer", "histogram").
const char* kind_name(Kind kind) noexcept;

/// One exported metric, flattened for serialization and tests. Field use
/// by kind:
///  * counter   — value (total); stream_values when streams > 1
///  * gauge     — value (stream sum; == the value for 1 stream);
///                stream_values when streams > 1
///  * timer     — count, sum/min/max (seconds), value = sum;
///                stream_values = per-stream total seconds
///  * histogram — count, sum, value = mean, bounds (upper, inclusive)
///                and bucket_counts (bounds.size() + 1, last = overflow)
struct MetricSnapshot {
  std::string name;
  std::string unit;
  Kind kind = Kind::kCounter;
  std::uint64_t count = 0;
  double value = 0.0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> stream_values;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;
};

#if LFSC_TELEMETRY_ENABLED

/// Monotonic event counter.
class Counter {
 public:
  explicit Counter(std::size_t streams = 1)
      : shards_(streams == 0 ? 1 : streams, 0) {}

  void add(std::uint64_t n = 1, std::size_t stream = 0) noexcept {
    shards_[stream] += n;
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto v : shards_) total += v;
    return total;
  }
  std::uint64_t stream_value(std::size_t stream) const noexcept {
    return shards_[stream];
  }
  std::size_t streams() const noexcept { return shards_.size(); }

  void reset() noexcept { std::fill(shards_.begin(), shards_.end(), 0); }

 private:
  std::vector<std::uint64_t> shards_;
};

/// Last-value gauge. The aggregate of a multi-stream gauge is the sum of
/// its stream values (fixed fold order); per-entity reads use
/// stream_value().
class Gauge {
 public:
  explicit Gauge(std::size_t streams = 1)
      : shards_(streams == 0 ? 1 : streams, 0.0) {}

  void set(double v, std::size_t stream = 0) noexcept { shards_[stream] = v; }

  double value() const noexcept {
    double total = 0.0;
    for (const auto v : shards_) total += v;
    return total;
  }
  double stream_value(std::size_t stream) const noexcept {
    return shards_[stream];
  }
  std::size_t streams() const noexcept { return shards_.size(); }

  void reset() noexcept { std::fill(shards_.begin(), shards_.end(), 0.0); }

 private:
  std::vector<double> shards_;
};

/// Accumulating duration metric (seconds): count, total, min, max.
/// Usually fed through ScopedTimer.
class Timer {
 public:
  explicit Timer(std::size_t streams = 1)
      : shards_(streams == 0 ? 1 : streams) {}

  void add(double seconds, std::size_t stream = 0) noexcept {
    Shard& s = shards_[stream];
    s.min = s.count == 0 ? seconds : std::min(s.min, seconds);
    s.max = std::max(s.max, seconds);
    ++s.count;
    s.total += seconds;
  }

  std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.count;
    return total;
  }
  double total_seconds() const noexcept {
    double total = 0.0;
    for (const auto& s : shards_) total += s.total;
    return total;
  }
  double min_seconds() const noexcept;
  double max_seconds() const noexcept;
  double stream_total(std::size_t stream) const noexcept {
    return shards_[stream].total;
  }
  std::size_t streams() const noexcept { return shards_.size(); }

  void reset() noexcept { std::fill(shards_.begin(), shards_.end(), Shard{}); }

 private:
  /// Padded to a cache line: adjacent streams are written concurrently
  /// by different pool workers (one stream per shard/SCN), and at 32
  /// bytes two shards would false-share a line.
  struct alignas(64) Shard {
    std::uint64_t count = 0;
    double total = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  std::vector<Shard> shards_;
};

/// RAII timer: measures construction-to-destruction wall time on a
/// Stopwatch and adds it to `timer` under `stream`.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer, std::size_t stream = 0) noexcept
      : timer_(&timer), stream_(stream) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { timer_->add(watch_.seconds(), stream_); }

 private:
  Timer* timer_;
  std::size_t stream_;
  Stopwatch watch_;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bucket edges
/// (sorted on construction); a sample lands in the first bucket whose
/// bound >= sample, or in the trailing overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds, std::size_t streams = 1);

  void observe(double v, std::size_t stream = 0) noexcept {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
    Shard& s = shards_[stream];
    ++s.counts[bucket];
    ++s.count;
    s.sum += v;
  }

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket counts folded across streams; size bounds().size() + 1,
  /// last entry = overflow.
  std::vector<std::uint64_t> merged_counts() const;
  std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.count;
    return total;
  }
  double sum() const noexcept {
    double total = 0.0;
    for (const auto& s : shards_) total += s.sum;
    return total;
  }
  double mean() const noexcept {
    const auto n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  std::size_t streams() const noexcept { return shards_.size(); }

  void reset() noexcept;

  /// Replaces the histogram's contents with previously captured merged
  /// state (checkpoint restore). Everything lands in shard 0 — stream
  /// attribution is not recoverable from merged counts, and no reader
  /// exposes per-stream histogram data. `merged` must have
  /// bounds().size() + 1 entries.
  void restore(const std::vector<std::uint64_t>& merged, std::uint64_t count,
               double sum);

 private:
  struct Shard {
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<double> bounds_;
  std::vector<Shard> shards_;
};

/// Named metric collection for one policy (or one harness run).
/// Accessors look up by name and create on first use, so independent
/// components (policy + runner) can share one registry; asking for an
/// existing name with a different kind throws std::logic_error.
/// Returned references stay valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, const std::string& unit = "",
                   std::size_t streams = 1);
  Gauge& gauge(const std::string& name, const std::string& unit = "",
               std::size_t streams = 1);
  Timer& timer(const std::string& name, const std::string& unit = "s",
               std::size_t streams = 1);
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& unit = "", std::size_t streams = 1);

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }

  /// Zeroes every metric (the registrations survive).
  void reset() noexcept;

  /// Flattened view of every metric, in registration order.
  std::vector<MetricSnapshot> snapshot() const;

  /// Restores counters, gauges and histograms from snapshots captured by
  /// snapshot() (checkpoint resume). Snapshots are matched to live
  /// metrics by name; unknown names are ignored, kind mismatches throw
  /// std::logic_error. Timers are deliberately left untouched — wall
  /// time is not part of the resume-determinism contract.
  void restore(const std::vector<MetricSnapshot>& snaps);

  /// Column labels for time-series sampling, in registration order:
  /// counters emit `name` (+ `name[s]` per stream when sharded), gauges
  /// emit `name` or per-stream `name[s]`, timers emit `name` (total
  /// seconds), histograms emit `name.count` and `name.mean`.
  void column_names(std::vector<std::string>& out) const;
  /// Appends the current value of every column, aligned with
  /// column_names().
  void column_values(std::vector<double>& out) const;

 private:
  struct Entry {
    std::string name;
    std::string unit;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Timer> timer;
    std::unique_ptr<Histogram> histogram;
  };
  Entry* find(const std::string& name) noexcept;

  std::vector<Entry> entries_;
};

#else  // !LFSC_TELEMETRY_ENABLED — inline no-op stubs, same API.

class Counter {
 public:
  explicit Counter(std::size_t = 1) noexcept {}
  void add(std::uint64_t = 1, std::size_t = 0) noexcept {}
  std::uint64_t value() const noexcept { return 0; }
  std::uint64_t stream_value(std::size_t) const noexcept { return 0; }
  std::size_t streams() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  explicit Gauge(std::size_t = 1) noexcept {}
  void set(double, std::size_t = 0) noexcept {}
  double value() const noexcept { return 0.0; }
  double stream_value(std::size_t) const noexcept { return 0.0; }
  std::size_t streams() const noexcept { return 0; }
  void reset() noexcept {}
};

class Timer {
 public:
  explicit Timer(std::size_t = 1) noexcept {}
  void add(double, std::size_t = 0) noexcept {}
  std::uint64_t count() const noexcept { return 0; }
  double total_seconds() const noexcept { return 0.0; }
  double min_seconds() const noexcept { return 0.0; }
  double max_seconds() const noexcept { return 0.0; }
  double stream_total(std::size_t) const noexcept { return 0.0; }
  std::size_t streams() const noexcept { return 0; }
  void reset() noexcept {}
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Timer&, std::size_t = 0) noexcept {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  // Non-trivial destructor so `ScopedTimer t(...)` never warns as unused.
  ~ScopedTimer() {}
};

class Histogram {
 public:
  explicit Histogram(std::vector<double> = {}, std::size_t = 1) noexcept {}
  void observe(double, std::size_t = 0) noexcept {}
  const std::vector<double>& bounds() const noexcept {
    static const std::vector<double> kEmpty;
    return kEmpty;
  }
  std::vector<std::uint64_t> merged_counts() const { return {}; }
  std::uint64_t count() const noexcept { return 0; }
  double sum() const noexcept { return 0.0; }
  double mean() const noexcept { return 0.0; }
  std::size_t streams() const noexcept { return 0; }
  void reset() noexcept {}
  void restore(const std::vector<std::uint64_t>&, std::uint64_t,
               double) noexcept {}
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string&, const std::string& = "",
                   std::size_t = 1) noexcept {
    return counter_;
  }
  Gauge& gauge(const std::string&, const std::string& = "",
               std::size_t = 1) noexcept {
    return gauge_;
  }
  Timer& timer(const std::string&, const std::string& = "s",
               std::size_t = 1) noexcept {
    return timer_;
  }
  Histogram& histogram(const std::string&, std::vector<double>,
                       const std::string& = "", std::size_t = 1) noexcept {
    return histogram_;
  }

  bool empty() const noexcept { return true; }
  std::size_t size() const noexcept { return 0; }
  void reset() noexcept {}
  std::vector<MetricSnapshot> snapshot() const { return {}; }
  void restore(const std::vector<MetricSnapshot>&) noexcept {}
  void column_names(std::vector<std::string>&) const {}
  void column_values(std::vector<double>&) const {}

 private:
  Counter counter_;
  Gauge gauge_;
  Timer timer_;
  Histogram histogram_;
};

#endif  // LFSC_TELEMETRY_ENABLED

/// Sampled time series of a registry's scalar columns (SeriesRecorder's
/// telemetry sibling): one row per sample slot. Rows all have
/// names.size() values. No-op (stays empty) when the registry has no
/// metrics — in particular under LFSC_TELEMETRY=OFF.
struct TimeSeries {
  std::vector<std::string> names;
  std::vector<int> t;
  std::vector<std::vector<double>> rows;

  void sample(const Registry& registry, int slot);
  bool empty() const noexcept { return t.empty(); }
};

}  // namespace lfsc::telemetry
