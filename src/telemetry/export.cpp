#include "telemetry/export.h"

#include <ostream>

namespace lfsc::telemetry {
namespace {

/// Minimal JSON string escaping; metric names/units are ASCII
/// identifiers, so only the structural characters need care.
std::string escaped(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

template <typename T>
void write_array(std::ostream& out, const std::vector<T>& values) {
  out << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ", ";
    out << values[i];
  }
  out << ']';
}

void write_metric(std::ostream& out, const MetricSnapshot& snap) {
  out << "    {\"name\": \"" << escaped(snap.name) << "\", \"kind\": \""
      << kind_name(snap.kind) << "\", \"unit\": \"" << escaped(snap.unit)
      << "\"";
  switch (snap.kind) {
    case Kind::kCounter:
      out << ", \"value\": " << snap.count;
      break;
    case Kind::kGauge:
      out << ", \"value\": " << snap.value;
      break;
    case Kind::kTimer:
      out << ", \"count\": " << snap.count << ", \"total_s\": " << snap.sum
          << ", \"min_s\": " << snap.min << ", \"max_s\": " << snap.max;
      break;
    case Kind::kHistogram:
      out << ", \"count\": " << snap.count << ", \"sum\": " << snap.sum
          << ", \"mean\": " << snap.value << ", \"bounds\": ";
      write_array(out, snap.bounds);
      out << ", \"counts\": ";
      write_array(out, snap.bucket_counts);
      break;
  }
  if (!snap.stream_values.empty()) {
    out << ", \"streams\": ";
    write_array(out, snap.stream_values);
  }
  out << "}";
}

}  // namespace

void write_json(std::ostream& out, const Registry& registry,
                const TimeSeries* series, std::string_view label) {
  write_json(out, registry.snapshot(), series, label);
}

void write_json(std::ostream& out,
                const std::vector<MetricSnapshot>& snapshots,
                const TimeSeries* series, std::string_view label) {
  out.precision(17);
  out << "{\n"
      << "  \"schema\": \"lfsc.telemetry/1\",\n"
      << "  \"enabled\": " << (kEnabled ? "true" : "false") << ",\n"
      << "  \"label\": \"" << escaped(label) << "\",\n"
      << "  \"metrics\": [";
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    write_metric(out, snapshots[i]);
  }
  out << (snapshots.empty() ? "]" : "\n  ]");
  if (series != nullptr && !series->empty()) {
    out << ",\n  \"series\": {\n    \"t\": ";
    write_array(out, series->t);
    out << ",\n    \"columns\": [";
    for (std::size_t c = 0; c < series->names.size(); ++c) {
      out << (c == 0 ? "\n" : ",\n");
      out << "      {\"name\": \"" << escaped(series->names[c])
          << "\", \"values\": [";
      for (std::size_t r = 0; r < series->rows.size(); ++r) {
        if (r > 0) out << ", ";
        out << series->rows[r][c];
      }
      out << "]}";
    }
    out << (series->names.empty() ? "]" : "\n    ]") << "\n  }";
  }
  out << "\n}\n";
}

void write_csv(std::ostream& out, const TimeSeries& series) {
  out.precision(17);
  out << "t";
  for (const auto& name : series.names) out << ',' << name;
  out << '\n';
  for (std::size_t r = 0; r < series.t.size(); ++r) {
    out << series.t[r];
    for (const double v : series.rows[r]) out << ',' << v;
    out << '\n';
  }
}

}  // namespace lfsc::telemetry
