// Structured export of a telemetry Registry: a JSON document carrying
// the final snapshot (+ optional sampled time series), and a plain CSV
// of the sampled series (one column per metric, schema in DESIGN.md §8).
// Both work — emitting an empty shell — when the instrumentation is
// compiled out (LFSC_TELEMETRY=OFF).
#pragma once

#include <iosfwd>
#include <string_view>
#include <vector>

#include "telemetry/telemetry.h"

namespace lfsc::telemetry {

/// Writes the `lfsc.telemetry/1` JSON document: schema/enabled header,
/// `label` (e.g. the policy name), the registry's full metric snapshot,
/// and — when `series` is non-null and non-empty — the sampled series as
/// named columns.
void write_json(std::ostream& out, const Registry& registry,
                const TimeSeries* series = nullptr,
                std::string_view label = "");

/// Same document from pre-captured snapshots: lets a caller merge
/// several registries (e.g. the serve layer's own counters appended to
/// the policy registry) into one document.
void write_json(std::ostream& out,
                const std::vector<MetricSnapshot>& snapshots,
                const TimeSeries* series = nullptr,
                std::string_view label = "");

/// Writes the sampled series as CSV: header `t,<column...>`, one row per
/// sample. Writes only the header when the series is empty.
void write_csv(std::ostream& out, const TimeSeries& series);

}  // namespace lfsc::telemetry
