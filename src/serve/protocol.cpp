#include "serve/protocol.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace lfsc::serve {

namespace {

/// Splits `text` on single characters of `sep`, keeping empty tokens —
/// "a,,b" must be a parse error downstream, not silently "a,b".
std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

/// Strict full-token integer parse: ASCII digits with optional sign,
/// nothing else — "12x", "", " 3" and "0x10" all fail.
bool parse_int(std::string_view token, long long& out) {
  if (token.empty() || token.size() > 20) return false;
  std::string buf(token);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size() || end == buf.c_str()) {
    return false;
  }
  out = value;
  return true;
}

/// Strict full-token finite double parse. Rejects "nan"/"inf" (finite
/// is part of the protocol contract) and hex floats by character set.
bool parse_double(std::string_view token, double& out) {
  if (token.empty() || token.size() > 64) return false;
  for (const char c : token) {
    const bool ok = (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                    c == '+' || c == 'e' || c == 'E';
    if (!ok) return false;
  }
  std::string buf(token);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size() || end == buf.c_str() ||
      !std::isfinite(value)) {
    return false;
  }
  out = value;
  return true;
}

std::string parse_task(const std::vector<std::string_view>& tokens,
                       TaskCommand& out) {
  std::size_t i = 1;
  out = TaskCommand{};
  if (i < tokens.size() && !tokens[i].empty() && tokens[i].front() == '@') {
    long long instance = 0;
    if (!parse_int(tokens[i].substr(1), instance) || instance < 0 ||
        instance > 1'000'000) {
      return "task: bad instance selector '" + std::string(tokens[i]) + "'";
    }
    out.instance = static_cast<int>(instance);
    ++i;
  }
  if (tokens.size() - i != 5) {
    return "task: expected [@<i>] <wd_id> <input_mbit> <output_mbit> "
           "<cpu|gpu|cpugpu> <m>:<u>:<v>:<q>[,...]";
  }
  long long wd = 0;
  if (!parse_int(tokens[i], wd) || wd < 0 ||
      wd > std::numeric_limits<int>::max()) {
    return "task: bad wd_id '" + std::string(tokens[i]) + "'";
  }
  out.wd_id = static_cast<int>(wd);
  if (!parse_double(tokens[i + 1], out.input_mbit) || out.input_mbit < 0.0) {
    return "task: bad input_mbit '" + std::string(tokens[i + 1]) + "'";
  }
  if (!parse_double(tokens[i + 2], out.output_mbit) || out.output_mbit < 0.0) {
    return "task: bad output_mbit '" + std::string(tokens[i + 2]) + "'";
  }
  const std::string_view res = tokens[i + 3];
  if (res == "cpu") {
    out.resource = ResourceType::kCpu;
  } else if (res == "gpu") {
    out.resource = ResourceType::kGpu;
  } else if (res == "cpugpu") {
    out.resource = ResourceType::kCpuGpu;
  } else {
    return "task: bad resource '" + std::string(res) +
           "' (cpu | gpu | cpugpu)";
  }
  for (const std::string_view entry : split(tokens[i + 4], ',')) {
    const auto fields = split(entry, ':');
    if (fields.size() != 4) {
      return "task: bad coverage entry '" + std::string(entry) +
             "' (want <m>:<u>:<v>:<q>)";
    }
    TaskCoverageEntry cov;
    long long m = 0;
    if (!parse_int(fields[0], m) || m < 0 || m > 1'000'000) {
      return "task: bad coverage SCN '" + std::string(fields[0]) + "'";
    }
    cov.scn = static_cast<int>(m);
    if (!parse_double(fields[1], cov.u) || cov.u < 0.0 || cov.u > 1.0) {
      return "task: coverage u must be in [0,1], got '" +
             std::string(fields[1]) + "'";
    }
    if (!parse_double(fields[2], cov.v) || cov.v < 0.0 || cov.v > 1.0) {
      return "task: coverage v must be in [0,1], got '" +
             std::string(fields[2]) + "'";
    }
    if (!parse_double(fields[3], cov.q) || cov.q < 1.0 || cov.q > 2.0) {
      return "task: coverage q must be in [1,2], got '" +
             std::string(fields[3]) + "'";
    }
    for (const auto& seen : out.coverage) {
      if (seen.scn == cov.scn) {
        return "task: duplicate coverage SCN " + std::to_string(cov.scn);
      }
    }
    out.coverage.push_back(cov);
  }
  if (out.coverage.empty()) return "task: empty coverage";
  return {};
}

std::string parse_reconfig(const std::vector<std::string_view>& tokens,
                           ReconfigCommand& out) {
  out = ReconfigCommand{};
  if (tokens.size() < 2) {
    return "reconfig: expected <key>=<value> [...]";
  }
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return "reconfig: bad pair '" + std::string(token) +
             "' (want key=value)";
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    long long as_int = 0;
    double as_double = 0.0;
    if (key == "slot_budget_us") {
      if (out.slot_budget_us) return "reconfig: duplicate key slot_budget_us";
      if (!parse_int(value, as_int) || as_int < 0 || as_int > 60'000'000) {
        return "reconfig: slot_budget_us must be an integer in "
               "[0, 60000000], got '" + std::string(value) + "'";
      }
      out.slot_budget_us = static_cast<std::uint32_t>(as_int);
    } else if (key == "admission_max_queue") {
      if (out.admission_max_queue) {
        return "reconfig: duplicate key admission_max_queue";
      }
      if (!parse_int(value, as_int) || as_int < 0 ||
          as_int > std::numeric_limits<int>::max()) {
        return "reconfig: admission_max_queue must be an integer >= 0, "
               "got '" + std::string(value) + "'";
      }
      out.admission_max_queue = static_cast<int>(as_int);
    } else if (key == "admission_capacity_factor") {
      if (out.admission_capacity_factor) {
        return "reconfig: duplicate key admission_capacity_factor";
      }
      if (!parse_double(value, as_double) || as_double <= 0.0) {
        return "reconfig: admission_capacity_factor must be finite and "
               "> 0, got '" + std::string(value) + "'";
      }
      out.admission_capacity_factor = as_double;
    } else if (key == "qos_alpha") {
      if (out.qos_alpha) return "reconfig: duplicate key qos_alpha";
      if (!parse_double(value, as_double) || as_double < 0.0) {
        return "reconfig: qos_alpha must be finite and >= 0, got '" +
               std::string(value) + "'";
      }
      out.qos_alpha = as_double;
    } else if (key == "resource_beta") {
      if (out.resource_beta) return "reconfig: duplicate key resource_beta";
      if (!parse_double(value, as_double) || as_double <= 0.0) {
        return "reconfig: resource_beta must be finite and > 0, got '" +
               std::string(value) + "'";
      }
      out.resource_beta = as_double;
    } else if (key == "telemetry_interval") {
      if (out.telemetry_interval) {
        return "reconfig: duplicate key telemetry_interval";
      }
      if (!parse_int(value, as_int) || as_int < 0 ||
          as_int > std::numeric_limits<int>::max()) {
        return "reconfig: telemetry_interval must be an integer >= 0, "
               "got '" + std::string(value) + "'";
      }
      out.telemetry_interval = static_cast<int>(as_int);
    } else if (key == "telemetry_push") {
      if (out.telemetry_push) {
        return "reconfig: duplicate key telemetry_push";
      }
      if (!parse_int(value, as_int) || as_int < 0 ||
          as_int > std::numeric_limits<int>::max()) {
        return "reconfig: telemetry_push must be an integer >= 0, "
               "got '" + std::string(value) + "'";
      }
      out.telemetry_push = static_cast<int>(as_int);
    } else if (key == "solver") {
      if (out.solver) return "reconfig: duplicate key solver";
      SolverKind kind = SolverKind::kAuto;
      if (!parse_solver(value, kind)) {
        return "reconfig: solver must be one of auto | greedy | packed | "
               "radix | flow | bnb, got '" + std::string(value) + "'";
      }
      out.solver = kind;
    } else if (key == "improve") {
      if (out.improve) return "reconfig: duplicate key improve";
      if (value == "0") {
        out.improve = false;
      } else if (value == "1") {
        out.improve = true;
      } else {
        return "reconfig: improve must be 0 or 1, got '" + std::string(value) +
               "'";
      }
    } else {
      return "reconfig: unknown key '" + std::string(key) + "'";
    }
  }
  return {};
}

}  // namespace

std::string parse_command(std::string_view line, Command& out) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  if (line.empty()) return "empty command";
  const auto tokens = split(line, ' ');
  for (const auto& token : tokens) {
    if (token.empty()) return "malformed spacing (single spaces, no blanks)";
  }
  const std::string_view verb = tokens[0];
  if (verb == "task") {
    out.kind = Command::Kind::kTask;
    return parse_task(tokens, out.task);
  }
  if (verb == "reconfig") {
    out.kind = Command::Kind::kReconfig;
    return parse_reconfig(tokens, out.reconfig);
  }
  const auto bare = [&](Command::Kind kind) -> std::string {
    if (tokens.size() != 1) {
      return std::string(verb) + ": takes no arguments";
    }
    out.kind = kind;
    return {};
  };
  if (verb == "tick") return bare(Command::Kind::kTick);
  if (verb == "checkpoint") return bare(Command::Kind::kCheckpoint);
  if (verb == "stats") return bare(Command::Kind::kStats);
  if (verb == "telemetry") return bare(Command::Kind::kTelemetry);
  if (verb == "handoff") return bare(Command::Kind::kHandoff);
  if (verb == "drain") return bare(Command::Kind::kDrain);
  if (verb == "shutdown") return bare(Command::Kind::kShutdown);
  return "unknown command '" + std::string(verb) + "'";
}

void LineChunker::feed(std::string_view bytes) {
  for (const char c : bytes) {
    if (discarding_) {
      if (c == '\n') discarding_ = false;
      continue;
    }
    if (c == '\n') {
      ready_.push_back({std::move(buffer_), false});
      buffer_.clear();
      continue;
    }
    buffer_.push_back(c);
    if (buffer_.size() > max_line_) {
      // Report the overflow once, now — waiting for the newline would
      // let an unterminated flood buffer unboundedly — then drop the
      // rest of the line.
      buffer_.clear();
      ready_.push_back({std::string(), true});
      discarding_ = true;
    }
  }
}

std::optional<LineChunker::Line> LineChunker::next() {
  if (read_ >= ready_.size()) {
    if (read_ != 0) {
      ready_.clear();
      read_ = 0;
    }
    return std::nullopt;
  }
  return std::move(ready_[read_++]);
}

}  // namespace lfsc::serve
