// A SlotSource fed from outside the process (DESIGN.md §14): the serve
// layer queues protocol `task` commands here, and each `tick` turns the
// queue into one fully-realized Slot — tasks, per-SCN coverage lists
// (sorted by construction) and the aligned u/v/q realization rows the
// metrics and feedback plumbing expect. An empty queue yields an empty
// slot; the learner idles through it.
//
// Unlike the generative sources, a crashed run cannot regenerate lost
// slots (they came over the wire), so replay_fast_forward() is false and
// save_state carries the task-id cursor, the slot position and any
// still-queued tasks — after --resume-latest the id sequence and queue
// continue exactly where the checkpoint left them, and the client
// re-streams from the checkpointed slot.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/protocol.h"
#include "sim/network.h"
#include "sim/slot_source.h"
#include "sim/task.h"

namespace lfsc::serve {

class ExternalSlotSource : public SlotSource {
 public:
  explicit ExternalSlotSource(const NetworkConfig& net);

  /// Queues one streamed task for the next generated slot. The command
  /// must already be protocol-valid; coverage SCNs are range-checked
  /// here (throws std::invalid_argument — the caller maps it to an
  /// `err` line).
  void enqueue(const TaskCommand& task);

  std::size_t pending() const noexcept { return pending_.size(); }

  Slot generate_slot(int t) override;
  void generate_slot(int t, Slot& out) override;
  const NetworkConfig& network() const noexcept override { return net_; }

  bool replay_fast_forward() const noexcept override { return false; }
  void save_state(std::string& out) const override;
  void load_state(std::string_view blob) override;

  /// Slot index of the last generated slot (0 before the first).
  int last_t() const noexcept { return last_t_; }

 private:
  NetworkConfig net_;
  std::vector<TaskCommand> pending_;
  std::int64_t next_id_ = 1;
  int last_t_ = 0;
};

}  // namespace lfsc::serve
