#include "serve/external_source.h"

#include <stdexcept>

#include "common/binio.h"

namespace lfsc::serve {

namespace {
/// save_state guard + layout version for the external-source blob.
constexpr std::uint32_t kBlobMagic = 0x4553'5243;  // "ESRC"
constexpr std::uint32_t kBlobVersion = 1;
}  // namespace

ExternalSlotSource::ExternalSlotSource(const NetworkConfig& net) : net_(net) {
  net_.validate();
}

void ExternalSlotSource::enqueue(const TaskCommand& task) {
  for (const auto& cov : task.coverage) {
    if (cov.scn < 0 || cov.scn >= net_.num_scns) {
      throw std::invalid_argument(
          "task: coverage SCN " + std::to_string(cov.scn) +
          " out of range (this network has " + std::to_string(net_.num_scns) +
          " SCNs)");
    }
  }
  pending_.push_back(task);
}

Slot ExternalSlotSource::generate_slot(int t) {
  Slot slot;
  generate_slot(t, slot);
  return slot;
}

void ExternalSlotSource::generate_slot(int t, Slot& out) {
  const auto scns = static_cast<std::size_t>(net_.num_scns);
  out.info.t = t;
  out.info.tasks.clear();
  out.info.coverage.assign(scns, {});
  out.real.u.assign(scns, {});
  out.real.v.assign(scns, {});
  out.real.q.assign(scns, {});

  out.info.tasks.reserve(pending_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const TaskCommand& task = pending_[i];
    Task built;
    built.id = next_id_++;
    built.wd_id = task.wd_id;
    built.context =
        make_context(task.input_mbit, task.output_mbit, task.resource);
    out.info.tasks.push_back(built);
    // Tasks are appended in queue order, so each coverage list stays
    // sorted ascending by global index — the SlotInfo contract.
    for (const auto& cov : task.coverage) {
      const auto m = static_cast<std::size_t>(cov.scn);
      out.info.coverage[m].push_back(static_cast<int>(i));
      out.real.u[m].push_back(cov.u);
      out.real.v[m].push_back(cov.v);
      out.real.q[m].push_back(cov.q);
    }
  }
  pending_.clear();
  last_t_ = t;
}

void ExternalSlotSource::save_state(std::string& out) const {
  BlobWriter w;
  w.u32(kBlobMagic);
  w.u32(kBlobVersion);
  w.u64(static_cast<std::uint64_t>(next_id_));
  w.i32(last_t_);
  w.u32(static_cast<std::uint32_t>(pending_.size()));
  for (const auto& task : pending_) {
    w.i32(task.wd_id);
    w.f64(task.input_mbit);
    w.f64(task.output_mbit);
    w.u8(static_cast<std::uint8_t>(task.resource));
    w.u32(static_cast<std::uint32_t>(task.coverage.size()));
    for (const auto& cov : task.coverage) {
      w.i32(cov.scn);
      w.f64(cov.u);
      w.f64(cov.v);
      w.f64(cov.q);
    }
  }
  out += w.take();
}

void ExternalSlotSource::load_state(std::string_view blob) {
  if (blob.empty()) {
    throw std::runtime_error(
        "ExternalSlotSource: checkpoint carries no external-source state "
        "(it was written by a generative run, not the service)");
  }
  BlobReader r(blob);
  if (r.u32() != kBlobMagic) {
    throw std::runtime_error(
        "ExternalSlotSource: checkpoint source state is not an "
        "external-source blob");
  }
  const std::uint32_t version = r.u32();
  if (version != kBlobVersion) {
    throw std::runtime_error(
        "ExternalSlotSource: unsupported source-state version " +
        std::to_string(version));
  }
  next_id_ = static_cast<std::int64_t>(r.u64());
  last_t_ = r.i32();
  pending_.assign(r.u32(), {});
  for (auto& task : pending_) {
    task.wd_id = r.i32();
    task.input_mbit = r.f64();
    task.output_mbit = r.f64();
    const std::uint8_t res = r.u8();
    if (res > static_cast<std::uint8_t>(ResourceType::kCpuGpu)) {
      throw std::runtime_error(
          "ExternalSlotSource: corrupt resource type in checkpoint");
    }
    task.resource = static_cast<ResourceType>(res);
    task.coverage.assign(r.u32(), {});
    for (auto& cov : task.coverage) {
      cov.scn = r.i32();
      cov.u = r.f64();
      cov.v = r.f64();
      cov.q = r.f64();
      if (cov.scn < 0 || cov.scn >= net_.num_scns) {
        throw std::runtime_error(
            "ExternalSlotSource: corrupt coverage SCN in checkpoint");
      }
    }
  }
  if (!r.done()) {
    throw std::runtime_error(
        "ExternalSlotSource: trailing bytes in checkpoint source state");
  }
}

}  // namespace lfsc::serve
