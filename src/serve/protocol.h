// The lfsc_serve line protocol (DESIGN.md §14): newline-delimited ASCII
// commands over stdin or a Unix domain socket, one single-line response
// per command — `ok ...` or `err <reason>`, never more, never less.
//
// Grammar (tokens separated by single spaces; no command spans lines):
//
//   task [@<i>] <wd_id> <input_mbit> <output_mbit> <res> <cov>
//        res  := cpu | gpu | cpugpu
//        cov  := <m>:<u>:<v>:<q>[,<m>:<u>:<v>:<q>]...
//        queues one offloading request for instance i (default 0). Each
//        coverage entry names a covering SCN m with the realized
//        u ∈ [0,1], v ∈ [0,1], q ∈ [1,2] the network measured for it.
//   tick
//        runs one slot on every instance from its queued tasks.
//   reconfig <key>=<value> [...]
//        live reconfiguration; validated atomically — one bad key or
//        value rejects the whole command with zero state change. Keys:
//        slot_budget_us, admission_max_queue, admission_capacity_factor,
//        qos_alpha, resource_beta, telemetry_interval, telemetry_push,
//        solver, improve.
//   telemetry
//        one-line `lfsc.telemetry/1` JSON snapshot (`ok {...}`). With
//        `reconfig telemetry_push=N`, the service also pushes the same
//        snapshot unsolicited as `push {...}` every N completed slots.
//   handoff
//        zero-downtime replacement: finish the in-flight slot, write a
//        final checkpoint generation, then hand the listening socket to
//        a `--takeover` successor and exit 0 (DESIGN.md §16).
//   checkpoint | stats | drain | shutdown
//
// Parsing is strict: unknown commands, wrong arity, trailing garbage,
// non-numeric or out-of-range fields, duplicate coverage SCNs and
// oversized lines each yield exactly one `err` line, and the learner
// state is untouched (test-enforced via audit_now() + fingerprint).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/context.h"
#include "solver/assignment_solver.h"

namespace lfsc::serve {

/// One covering SCN of a streamed task, with its realized outcomes.
struct TaskCoverageEntry {
  int scn = 0;
  double u = 0.0;  ///< task value, in [0,1]
  double v = 0.0;  ///< completion likelihood, in [0,1]
  double q = 1.0;  ///< resource consumption, in [1,2]
};

struct TaskCommand {
  int instance = 0;
  int wd_id = 0;
  double input_mbit = 0.0;
  double output_mbit = 0.0;
  ResourceType resource = ResourceType::kCpu;
  std::vector<TaskCoverageEntry> coverage;  ///< non-empty, unique SCNs
};

/// A validated-but-unapplied reconfiguration: every present field has
/// already passed its range check, so application cannot half-fail.
struct ReconfigCommand {
  std::optional<std::uint32_t> slot_budget_us;
  std::optional<int> admission_max_queue;
  std::optional<double> admission_capacity_factor;
  std::optional<double> qos_alpha;
  std::optional<double> resource_beta;
  std::optional<int> telemetry_interval;
  /// Unsolicited `push {json}` snapshot every N completed slots (0 = off).
  std::optional<int> telemetry_push;
  std::optional<SolverKind> solver;  ///< Alg. 4 solver (DESIGN.md §15)
  std::optional<bool> improve;       ///< anytime shift-swap improver

  bool empty() const noexcept {
    return !slot_budget_us && !admission_max_queue &&
           !admission_capacity_factor && !qos_alpha && !resource_beta &&
           !telemetry_interval && !telemetry_push && !solver && !improve;
  }
};

struct Command {
  enum class Kind {
    kTask,
    kTick,
    kReconfig,
    kCheckpoint,
    kStats,
    kTelemetry,
    kHandoff,
    kDrain,
    kShutdown,
  };
  Kind kind = Kind::kStats;
  TaskCommand task;          ///< valid when kind == kTask
  ReconfigCommand reconfig;  ///< valid when kind == kReconfig
};

/// Parses one protocol line into `out`. Returns "" on success, else a
/// one-line error message (no trailing newline) and `out` is
/// unspecified. Never throws on protocol input.
std::string parse_command(std::string_view line, Command& out);

/// Splits a byte stream into protocol lines with a hard per-line size
/// bound. Feed raw reads in; pull complete lines out. A line longer
/// than `max_line` bytes is reported once as oversized (the remainder
/// up to its newline is silently discarded), so a hostile or broken
/// client cannot balloon memory or smuggle a half-parsed command.
class LineChunker {
 public:
  explicit LineChunker(std::size_t max_line = kDefaultMaxLine)
      : max_line_(max_line) {}

  /// 64 KiB: roomy enough for a task line covering thousands of SCNs,
  /// still a hard bound a hostile peer cannot push past.
  static constexpr std::size_t kDefaultMaxLine = 65536;

  void feed(std::string_view bytes);

  struct Line {
    std::string text;      ///< without the terminator; empty if oversized
    bool oversized = false;
  };

  /// Next complete (or oversized) line, if any.
  std::optional<Line> next();

  /// Bytes buffered awaiting a newline (bounded by max_line).
  std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  std::size_t max_line_;
  std::string buffer_;
  std::vector<Line> ready_;
  std::size_t read_ = 0;
  bool discarding_ = false;
};

}  // namespace lfsc::serve
