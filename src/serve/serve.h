// The resident MBS controller behind tools/lfsc_serve (DESIGN.md §14):
// N independent LFSC instances (sharing the process thread pool when
// parallel_scns is on), each a SlotStepper over an ExternalSlotSource,
// driven by the line protocol in serve/protocol.h.
//
// The controller is transport-agnostic: handle_line() maps one request
// line to one response line, and the event loop (stdin, Unix socket, or
// a test calling it directly) owns timers and signals. Fault tolerance
// composes from the existing pieces — generation checkpoints through
// the tmp+fsync+rename path with retry-with-backoff, supervised
// recovery that scans generations newest→oldest past corrupt files, and
// a drain that finishes the in-flight slot and checkpoints before exit.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "harness/paper_setup.h"
#include "harness/step_runner.h"
#include "lfsc/lfsc_policy.h"
#include "serve/external_source.h"
#include "serve/protocol.h"
#include "sim/admission.h"

namespace lfsc::serve {

struct ServeConfig {
  /// Network constants + LFSC learner configuration. Instance k runs
  /// under lfsc seed `setup.lfsc.seed + k` so instances learn on
  /// independent streams; instance 0 is bit-identical to a batch run
  /// with the same setup.
  PaperSetup setup;

  int instances = 1;

  std::uint32_t slot_budget_us = 0;

  /// Admission gateway per instance. An AdmissionControl is always
  /// constructed (max_queue 0 = pass-through) so a live reconfig can
  /// enable, move, or disable the bound without restart.
  AdmissionConfig admission{};

  /// Ingress bound per instance: a `task` arriving while the instance
  /// already holds this many queued tasks is shed with `err busy`
  /// (load control, not a protocol error). 0 = unbounded.
  int max_pending = 0;

  /// Slots between telemetry samples. A resident service samples on a
  /// fixed stride (there is no horizon to derive one from); 0 falls
  /// back to every slot — fine for tests, unbounded growth for a
  /// long-lived service, so lfsc_serve defaults it to 100.
  int telemetry_interval = 100;

  /// Generation-checkpoint prefix; empty disables checkpointing (the
  /// checkpoint/drain commands then report an error/skip the write).
  /// Instance k of a multi-instance service uses `<prefix>.i<k>`.
  std::string checkpoint_prefix{};
  int checkpoint_every = 0;  ///< slots between periodic checkpoints (0 = off)
  int checkpoint_keep = 3;   ///< generations kept per instance

  /// Attempts for each generation write (write_checkpoint_file_retry).
  int checkpoint_attempts = 3;
  int checkpoint_backoff_ms = 10;
};

class ServeController {
 public:
  /// Throws std::invalid_argument on an invalid configuration.
  explicit ServeController(const ServeConfig& config);

  /// One protocol request line → one response line (no terminator).
  /// Protocol problems come back as `err ...` and never throw; a broken
  /// internal invariant still throws (the supervisor restarts us).
  std::string handle_line(std::string_view line);

  /// Timer-driven slot tick (same path as the protocol `tick`). Returns
  /// the number of tasks processed across instances.
  std::size_t tick();

  /// Writes one checkpoint generation for every instance (retry with
  /// backoff), prunes old generations, bumps the generation counter.
  /// Throws std::runtime_error when a write exhausts its retries.
  void checkpoint_now();

  /// Supervised recovery: loads the newest valid checkpoint generation
  /// per instance, skipping corrupt ones with a warning. Returns true
  /// when at least one instance recovered; false means cold start.
  bool resume_latest();

  /// Graceful drain: writes a final checkpoint (when configured) and
  /// marks the controller drained. Idempotent.
  void drain();

  bool drained() const noexcept { return drained_; }
  bool shutdown_requested() const noexcept { return shutdown_; }

  /// True once a `handoff` command (or SIGUSR2 via the front-end) wrote
  /// the final generation: the event loop must stop accepting work and
  /// hand the listening socket to the successor (DESIGN.md §16).
  bool handoff_requested() const noexcept { return handoff_; }

  /// The `lfsc.telemetry/1` snapshot (instance 0's policy registry plus
  /// the serve-level registry) collapsed to one line of JSON.
  std::string telemetry_json();

  /// The pending strided auto-push snapshot, if a slot boundary crossed
  /// the `reconfig telemetry_push=` stride since the last call. The
  /// front-end broadcasts it as a `push {...}` line to every peer.
  std::optional<std::string> take_push();

  /// Serve-level metric registry (`serve.peer.*`, `serve.busy_rejects`).
  /// Deliberately NOT checkpointed: peer churn is transport history, not
  /// controller state, and must not perturb checkpoint byte-identity.
  telemetry::Registry& serve_telemetry() noexcept { return serve_telemetry_; }

  /// Wall-clock tick accounting for the timer loop.
  void note_deadline_miss(std::uint64_t periods) {
    deadline_misses_ += periods;
  }

  /// Accounting + one-line response for a transport-detected oversized
  /// line (the LineChunker reports it before the text reaches
  /// handle_line, so the error counter lives here).
  std::string note_oversized_line(std::size_t max_len) {
    return error("oversized line (max " + std::to_string(max_len) + " bytes)");
  }
  std::uint64_t deadline_misses() const noexcept { return deadline_misses_; }
  std::uint64_t ticks() const noexcept { return ticks_; }
  std::uint64_t protocol_errors() const noexcept { return protocol_errors_; }
  std::uint64_t busy_rejects() const noexcept { return busy_rejects_; }
  std::uint64_t checkpoints_written() const noexcept {
    return checkpoints_written_;
  }

  /// The single-line stats report (instance 0's counters + totals);
  /// everything in it is wall-clock independent, so two runs over the
  /// same command stream produce byte-identical stats lines.
  std::string stats_line() const;

  int num_instances() const noexcept {
    return static_cast<int>(instances_.size());
  }
  int completed_slots(int instance = 0) const;
  LfscPolicy& policy(int instance = 0);
  const AdmissionControl& admission(int instance = 0) const;
  std::uint64_t checkpoint_generation() const noexcept {
    return next_generation_;
  }

 private:
  struct Instance {
    std::unique_ptr<ExternalSlotSource> source;
    std::unique_ptr<LfscPolicy> policy;
    std::unique_ptr<AdmissionControl> admission;
    std::array<Policy*, 1> roster{};
    std::unique_ptr<SlotStepper> stepper;
  };

  std::string instance_prefix(std::size_t k) const;
  std::string apply_reconfig(const ReconfigCommand& request);
  std::string error(std::string message);

  /// The service-level counters as a versioned blob (CheckpointState::
  /// serve_blob): what must ride along in every generation so a
  /// successor process reports a byte-identical stats line.
  std::string save_serve_state() const;
  void load_serve_state(const std::string& blob);

  ServeConfig config_;
  std::vector<std::unique_ptr<Instance>> instances_;
  telemetry::Registry serve_telemetry_;
  telemetry::Counter* busy_counter_ = nullptr;
  std::uint64_t next_generation_ = 1;
  std::uint64_t ticks_ = 0;
  std::uint64_t deadline_misses_ = 0;
  std::uint64_t protocol_errors_ = 0;
  std::uint64_t checkpoints_written_ = 0;
  std::uint64_t busy_rejects_ = 0;
  int telemetry_push_ = 0;
  std::optional<std::string> pending_push_;
  bool drained_ = false;
  bool shutdown_ = false;
  bool handoff_ = false;
};

}  // namespace lfsc::serve
