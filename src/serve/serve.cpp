#include "serve/serve.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/binio.h"
#include "common/log.h"
#include "harness/checkpoint.h"
#include "telemetry/export.h"

namespace lfsc::serve {

namespace {

/// Shortest round-trip-exact rendering of a double: stats lines feed
/// byte-for-byte diffs between an interrupted-and-recovered run and an
/// uninterrupted one, so formatting must not lose bits.
std::string fmt(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string fmt(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  return buf;
}

constexpr std::uint32_t kServeStateMagic = 0x5352'5653;  // "SRVS"
constexpr std::uint32_t kServeStateVersion = 1;

}  // namespace

ServeController::ServeController(const ServeConfig& config) : config_(config) {
  if (config_.instances < 1) {
    throw std::invalid_argument("ServeController: instances must be >= 1");
  }
  if (config_.checkpoint_keep < 1) {
    throw std::invalid_argument(
        "ServeController: checkpoint_keep must be >= 1");
  }
  if (config_.max_pending < 0) {
    throw std::invalid_argument("ServeController: max_pending must be >= 0");
  }
  config_.setup.net.validate();
  config_.admission.validate();
  busy_counter_ = &serve_telemetry_.counter("serve.busy_rejects", "tasks");

  instances_.reserve(static_cast<std::size_t>(config_.instances));
  for (int k = 0; k < config_.instances; ++k) {
    auto inst = std::make_unique<Instance>();
    inst->source = std::make_unique<ExternalSlotSource>(config_.setup.net);
    LfscConfig lfsc = config_.setup.lfsc;
    lfsc.seed += static_cast<std::uint64_t>(k);
    inst->policy = std::make_unique<LfscPolicy>(config_.setup.net, lfsc);
    inst->admission = std::make_unique<AdmissionControl>(config_.admission,
                                                         config_.setup.net);
    inst->roster[0] = inst->policy.get();

    StepConfig step;
    step.horizon = 0;  // resident: unbounded
    step.validate = true;
    step.telemetry = &inst->policy->telemetry();
    step.telemetry_interval =
        config_.telemetry_interval > 0 ? config_.telemetry_interval : 1;
    step.checkpoint_counters = !config_.checkpoint_prefix.empty();
    step.slot_budget_us = config_.slot_budget_us;
    step.admission = inst->admission.get();
    inst->stepper =
        std::make_unique<SlotStepper>(*inst->source, inst->roster, step);
    instances_.push_back(std::move(inst));
  }
}

std::string ServeController::instance_prefix(std::size_t k) const {
  if (instances_.size() == 1) return config_.checkpoint_prefix;
  return config_.checkpoint_prefix + ".i" + std::to_string(k);
}

int ServeController::completed_slots(int instance) const {
  return instances_.at(static_cast<std::size_t>(instance))
      ->stepper->completed_slots();
}

LfscPolicy& ServeController::policy(int instance) {
  return *instances_.at(static_cast<std::size_t>(instance))->policy;
}

const AdmissionControl& ServeController::admission(int instance) const {
  return *instances_.at(static_cast<std::size_t>(instance))->admission;
}

std::string ServeController::error(std::string message) {
  ++protocol_errors_;
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';  // one line, always
  }
  return "err " + message;
}

std::size_t ServeController::tick() {
  std::size_t tasks = 0;
  for (auto& inst : instances_) {
    tasks += inst->source->pending();
    inst->stepper->step();
  }
  ++ticks_;
  if (!config_.checkpoint_prefix.empty() && config_.checkpoint_every > 0 &&
      instances_[0]->stepper->completed_slots() % config_.checkpoint_every ==
          0) {
    checkpoint_now();
  }
  // The auto-push snapshot is taken after any periodic checkpoint so it
  // reflects the complete end-of-slot state (checkpoint.writes included).
  if (telemetry_push_ > 0 &&
      instances_[0]->stepper->completed_slots() % telemetry_push_ == 0) {
    pending_push_ = telemetry_json();
  }
  return tasks;
}

void ServeController::checkpoint_now() {
  if (config_.checkpoint_prefix.empty()) return;
  const std::uint64_t generation = next_generation_;
  // Counted before the capture — like checkpoint.writes — so the blob
  // inside generation g already includes g: a successor resuming from it
  // reports the same `checkpoints=` as the process that wrote it. (Like
  // checkpoint.writes, the count is not rolled back if the write then
  // exhausts its retries.)
  ++checkpoints_written_;
  const std::string serve_blob = save_serve_state();
  for (std::size_t k = 0; k < instances_.size(); ++k) {
    auto& inst = *instances_[k];
    inst.stepper->note_checkpoint_write();
    CheckpointState state;
    inst.stepper->capture(state);
    state.serve_blob = serve_blob;
    const std::string prefix = instance_prefix(k);
    write_checkpoint_file_retry(
        checkpoint_generation_path(prefix, generation), state,
        config_.checkpoint_attempts, config_.checkpoint_backoff_ms);
    prune_checkpoint_generations(prefix, config_.checkpoint_keep);
  }
  ++next_generation_;
}

bool ServeController::resume_latest() {
  if (config_.checkpoint_prefix.empty()) return false;
  bool any = false;
  std::uint64_t newest = 0;
  for (std::size_t k = 0; k < instances_.size(); ++k) {
    const std::string prefix = instance_prefix(k);
    auto recovered = scan_latest_checkpoint(prefix);
    if (!recovered) {
      LFSC_LOG_WARN << "serve: no valid checkpoint generation under "
                    << prefix << "; instance " << k << " starts cold";
      continue;
    }
    instances_[k]->stepper->restore(recovered->state);
    LFSC_LOG_INFO << "serve: instance " << k << " resumed from "
                  << recovered->path << " (slot "
                  << recovered->state.completed_slots << ")";
    newest = std::max(newest, recovered->generation);
    if (!any) {
      // Every instance of a generation carries the same controller-wide
      // serve blob; the first recovered one wins.
      load_serve_state(recovered->state.serve_blob);
    }
    any = true;
  }
  if (any) next_generation_ = newest + 1;
  return any;
}

std::string ServeController::save_serve_state() const {
  BlobWriter w;
  w.u32(kServeStateMagic);
  w.u32(kServeStateVersion);
  w.u64(ticks_);
  w.u64(deadline_misses_);
  w.u64(protocol_errors_);
  w.u64(checkpoints_written_);
  w.u64(busy_rejects_);
  return w.take();
}

void ServeController::load_serve_state(const std::string& blob) {
  if (blob.empty()) return;  // batch (lfsc_run) checkpoint: stay cold
  BlobReader r(blob);
  if (r.u32() != kServeStateMagic) {
    throw std::runtime_error("serve: checkpoint serve-state blob corrupt");
  }
  if (const std::uint32_t version = r.u32(); version != kServeStateVersion) {
    throw std::runtime_error("serve: unsupported serve-state version " +
                             std::to_string(version));
  }
  ticks_ = r.u64();
  deadline_misses_ = r.u64();
  protocol_errors_ = r.u64();
  checkpoints_written_ = r.u64();
  busy_rejects_ = r.u64();
  if (!r.done()) {
    throw std::runtime_error("serve: trailing bytes in serve-state blob");
  }
}

std::string ServeController::telemetry_json() {
  std::ostringstream os;
  auto snapshots = instances_[0]->policy->telemetry().snapshot();
  auto extra = serve_telemetry_.snapshot();
  snapshots.insert(snapshots.end(),
                   std::make_move_iterator(extra.begin()),
                   std::make_move_iterator(extra.end()));
  telemetry::write_json(os, snapshots, nullptr, "serve");
  // Collapse to one line: the writer only emits newlines as formatting
  // (embedded ones inside strings are escaped), so dropping them yields
  // the same JSON document on a single protocol line.
  std::string doc = os.str();
  std::string line;
  line.reserve(doc.size());
  for (const char c : doc) {
    if (c != '\n') line.push_back(c);
  }
  return line;
}

std::optional<std::string> ServeController::take_push() {
  std::optional<std::string> out;
  out.swap(pending_push_);
  return out;
}

void ServeController::drain() {
  if (drained_) return;
  checkpoint_now();
  drained_ = true;
}

std::string ServeController::apply_reconfig(const ReconfigCommand& request) {
  // The parser already range-checked every present field, and the whole
  // command was rejected if any key failed — application below cannot
  // half-fail. alpha/beta validate as a pair against the *staged*
  // values so `reconfig qos_alpha=...` alone composes with the current
  // beta.
  const NetworkConfig& net = instances_[0]->stepper->network();
  const double alpha = request.qos_alpha.value_or(net.qos_alpha);
  const double beta = request.resource_beta.value_or(net.resource_beta);

  std::string applied;
  for (auto& inst : instances_) {
    if (request.slot_budget_us) {
      inst->policy->reconfigure_slot_budget(*request.slot_budget_us);
    }
    if (request.admission_max_queue || request.admission_capacity_factor) {
      const AdmissionConfig& cur = inst->admission->config();
      inst->admission->reconfigure(
          request.admission_capacity_factor.value_or(cur.capacity_factor),
          request.admission_max_queue.value_or(cur.max_queue));
    }
    if (request.qos_alpha || request.resource_beta) {
      inst->policy->set_constraint_thresholds(alpha, beta);
      inst->stepper->network().qos_alpha = alpha;
      inst->stepper->network().resource_beta = beta;
    }
    if (request.telemetry_interval) {
      inst->stepper->set_telemetry_interval(*request.telemetry_interval);
    }
    if (request.solver) inst->policy->set_solver(*request.solver);
    if (request.improve) inst->policy->set_improve(*request.improve);
  }
  if (request.telemetry_push) telemetry_push_ = *request.telemetry_push;
  if (request.slot_budget_us) {
    applied += " slot_budget_us=" + std::to_string(*request.slot_budget_us);
  }
  if (request.admission_max_queue) {
    applied +=
        " admission_max_queue=" + std::to_string(*request.admission_max_queue);
  }
  if (request.admission_capacity_factor) {
    applied += " admission_capacity_factor=" +
               fmt(*request.admission_capacity_factor);
  }
  if (request.qos_alpha) applied += " qos_alpha=" + fmt(*request.qos_alpha);
  if (request.resource_beta) {
    applied += " resource_beta=" + fmt(*request.resource_beta);
  }
  if (request.telemetry_interval) {
    applied +=
        " telemetry_interval=" + std::to_string(*request.telemetry_interval);
  }
  if (request.telemetry_push) {
    applied += " telemetry_push=" + std::to_string(*request.telemetry_push);
  }
  if (request.solver) {
    applied += " solver=" + std::string(solver_name(*request.solver));
  }
  if (request.improve) {
    applied += std::string(" improve=") + (*request.improve ? "1" : "0");
  }
  return "ok reconfig" + applied;
}

std::string ServeController::handle_line(std::string_view line) {
  Command command;
  if (std::string parse_error = parse_command(line, command);
      !parse_error.empty()) {
    return error(std::move(parse_error));
  }
  switch (command.kind) {
    case Command::Kind::kTask: {
      const auto k = static_cast<std::size_t>(command.task.instance);
      if (k >= instances_.size()) {
        return error("task: instance " + std::to_string(command.task.instance) +
                     " out of range (have " +
                     std::to_string(instances_.size()) + ")");
      }
      if (config_.max_pending > 0 &&
          instances_[k]->source->pending() >=
              static_cast<std::size_t>(config_.max_pending)) {
        // Load shedding, not a malformed line: `err busy` tells a
        // well-formed client to back off and is deliberately kept out
        // of the protocol_errors count.
        ++busy_rejects_;
        busy_counter_->add(1);
        return "err busy";
      }
      try {
        instances_[k]->source->enqueue(command.task);
      } catch (const std::invalid_argument& e) {
        return error(e.what());
      }
      return "ok queued=" + std::to_string(instances_[k]->source->pending());
    }
    case Command::Kind::kTick: {
      const std::size_t tasks = tick();
      return "ok slot=" +
             std::to_string(instances_[0]->stepper->completed_slots()) +
             " tasks=" + std::to_string(tasks);
    }
    case Command::Kind::kReconfig:
      return apply_reconfig(command.reconfig);
    case Command::Kind::kCheckpoint: {
      if (config_.checkpoint_prefix.empty()) {
        return error("checkpoint: no --checkpoint prefix configured");
      }
      try {
        checkpoint_now();
      } catch (const std::runtime_error& e) {
        return error(std::string("checkpoint: ") + e.what());
      }
      return "ok generation=" + std::to_string(next_generation_ - 1);
    }
    case Command::Kind::kStats:
      return stats_line();
    case Command::Kind::kTelemetry:
      return "ok " + telemetry_json();
    case Command::Kind::kHandoff: {
      if (config_.checkpoint_prefix.empty()) {
        return error("handoff: no --checkpoint prefix configured");
      }
      try {
        checkpoint_now();
      } catch (const std::runtime_error& e) {
        return error(std::string("handoff: ") + e.what());
      }
      handoff_ = true;
      return "ok handoff generation=" + std::to_string(next_generation_ - 1);
    }
    case Command::Kind::kDrain: {
      try {
        drain();
      } catch (const std::runtime_error& e) {
        return error(std::string("drain: ") + e.what());
      }
      return "ok drained slot=" +
             std::to_string(instances_[0]->stepper->completed_slots());
    }
    case Command::Kind::kShutdown:
      shutdown_ = true;
      return "ok shutdown";
  }
  return error("unreachable command kind");
}

std::string ServeController::stats_line() const {
  const Instance& inst = *instances_[0];
  const SeriesRecorder& series = inst.stepper->series()[0];
  const OverloadCounters& overload = inst.policy->overload().counters();
  const AdmissionControl& adm = *inst.admission;

  std::string out = "ok";
  out += " instances=" + std::to_string(instances_.size());
  out += " slots=" + std::to_string(inst.stepper->completed_slots());
  out += " ticks=" + fmt(ticks_);
  out += " deadline_misses=" + fmt(deadline_misses_);
  out += " protocol_errors=" + fmt(protocol_errors_);
  out += " busy_rejects=" + fmt(busy_rejects_);
  out += " checkpoints=" + fmt(checkpoints_written_);
  out += " reward=" + fmt(series.total_reward());
  out += " qos_violation=" + fmt(series.total_qos_violation());
  out += " resource_violation=" + fmt(series.total_resource_violation());
  out += " offered=" + fmt(adm.offered());
  out += " admitted=" + fmt(adm.admitted());
  out += " shed=" + fmt(adm.total_shed());
  out += " backlog=" + std::to_string(adm.backlog());
  out += " rung=" +
         std::to_string(static_cast<int>(inst.policy->overload().rung()));
  out += " escalations=" + fmt(overload.escalations);
  out += " recoveries=" + fmt(overload.recoveries);
  out += " audit_checks=" + fmt(inst.policy->audit_checks());
  out += " audit_violations=" + fmt(inst.policy->audit_violations());
  return out;
}

}  // namespace lfsc::serve
