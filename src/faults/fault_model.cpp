#include "faults/fault_model.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string_view>

#include "common/binio.h"
#include "common/counter_hash.h"

namespace lfsc {
namespace {

// Domain-separation tags for the independent draw families
// (mix64/hash_unit live in common/counter_hash.h, shared with admission
// control and the scenario compiler).
constexpr std::uint64_t kTagOutageStart = 0x00DA6E'5741ULL;
constexpr std::uint64_t kTagOutageLen = 0x00DA6E'4C45ULL;
constexpr std::uint64_t kTagFate = 0xFA7EULL;
constexpr std::uint64_t kTagCorrupt = 0xC0'44BB47ULL;

void check_prob(double p, const char* name) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string("FaultConfig: ") + name +
                                " must be in [0,1]");
  }
}

}  // namespace

void FaultConfig::validate() const {
  check_prob(outage_prob, "outage_prob");
  check_prob(loss_prob, "loss_prob");
  check_prob(delay_prob, "delay_prob");
  check_prob(corrupt_prob, "corrupt_prob");
  if (loss_prob + delay_prob + corrupt_prob > 1.0) {
    throw std::invalid_argument(
        "FaultConfig: loss_prob + delay_prob + corrupt_prob must be <= 1");
  }
  if (outage_min_slots < 1 || outage_max_slots < outage_min_slots) {
    throw std::invalid_argument(
        "FaultConfig: need 1 <= outage_min_slots <= outage_max_slots");
  }
  if (delay_slots < 0) {
    throw std::invalid_argument("FaultConfig: delay_slots must be >= 0");
  }
  if (delay_prob > 0.0 && delay_slots < 1) {
    throw std::invalid_argument(
        "FaultConfig: delay_prob > 0 requires delay_slots >= 1");
  }
}

FaultModel::FaultModel(FaultConfig config, int num_scns)
    : config_(config),
      remaining_(static_cast<std::size_t>(num_scns), 0),
      down_(static_cast<std::size_t>(num_scns), 0) {
  if (num_scns <= 0) {
    throw std::invalid_argument("FaultModel: num_scns must be >= 1");
  }
  config_.validate();
}

void FaultModel::attach_telemetry(telemetry::Registry& registry) {
  outage_slots_ = &registry.counter("faults.outage_slots");
  outages_started_ = &registry.counter("faults.outages_started");
  feedback_total_ = &registry.counter("faults.feedback.total");
  fate_counters_[0] = &registry.counter("faults.feedback.delivered");
  fate_counters_[1] = &registry.counter("faults.feedback.lost");
  fate_counters_[2] = &registry.counter("faults.feedback.delayed");
  fate_counters_[3] = &registry.counter("faults.feedback.corrupted");
  late_delivered_ = &registry.counter("faults.feedback.late_delivered");
  inflight_lost_ = &registry.counter("faults.feedback.inflight_lost");
  late_dropped_ = &registry.counter("faults.feedback.late_dropped");
}

void FaultModel::begin_slot(int t) {
  down_count_ = 0;
  const auto num_scns = remaining_.size();
  for (std::size_t m = 0; m < num_scns; ++m) {
    if (remaining_[m] > 0) {
      --remaining_[m];
      down_[m] = 1;
      ++down_count_;
      continue;
    }
    down_[m] = 0;
    if (config_.outage_prob <= 0.0) continue;
    const double u = hash_unit(config_.seed, kTagOutageStart,
                               static_cast<std::uint64_t>(t), m);
    if (u < config_.outage_prob) {
      const double len_u = hash_unit(config_.seed, kTagOutageLen,
                                     static_cast<std::uint64_t>(t), m);
      const int span = config_.outage_max_slots - config_.outage_min_slots + 1;
      const int length =
          config_.outage_min_slots +
          std::min(span - 1, static_cast<int>(len_u * span));
      // This slot is the first down slot of the burst.
      remaining_[m] = length - 1;
      down_[m] = 1;
      ++down_count_;
      if (outages_started_ != nullptr) outages_started_->add();
    }
  }
  if (outage_slots_ != nullptr && down_count_ > 0) {
    outage_slots_->add(static_cast<std::uint64_t>(down_count_));
  }
}

FaultModel::Fate FaultModel::classify(int t, int m, int local_index) const {
  const double u = hash_unit(
      config_.seed, kTagFate, static_cast<std::uint64_t>(t),
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(m)) << 32) |
          static_cast<std::uint32_t>(local_index));
  double edge = config_.loss_prob;
  if (u < edge) return Fate::kLost;
  edge += config_.delay_prob;
  if (u < edge) return Fate::kDelayed;
  edge += config_.corrupt_prob;
  if (u < edge) return Fate::kCorrupted;
  return Fate::kDeliver;
}

TaskFeedback FaultModel::corrupt(int t, int m, int local_index,
                                 TaskFeedback f) const {
  const double u = hash_unit(
      config_.seed, kTagCorrupt, static_cast<std::uint64_t>(t),
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(m)) << 32) |
          static_cast<std::uint32_t>(local_index));
  switch (static_cast<int>(u * 4.0) & 3) {
    case 0:
      f.u = std::numeric_limits<double>::quiet_NaN();
      break;
    case 1:
      f.v = std::numeric_limits<double>::infinity();
      break;
    case 2:
      f.q = -1.0;  // out of range: Q lives in [1, 2]
      break;
    default:
      f.u = 1.0e9;  // out of range: U lives in [0, 1]
      break;
  }
  return f;
}

void FaultModel::note_fate(Fate fate, std::uint64_t n) {
  if (feedback_total_ == nullptr || n == 0) return;
  feedback_total_->add(n);
  fate_counters_[static_cast<std::size_t>(fate)]->add(n);
}

void FaultModel::note_late_delivered(std::uint64_t n) {
  if (late_delivered_ != nullptr && n > 0) late_delivered_->add(n);
}

void FaultModel::note_inflight_lost(std::uint64_t n) {
  if (inflight_lost_ != nullptr && n > 0) inflight_lost_->add(n);
}

void FaultModel::note_late_dropped(std::uint64_t n) {
  if (late_dropped_ != nullptr && n > 0) late_dropped_->add(n);
}

void FaultModel::save_state(std::string& out) const {
  BlobWriter w;
  w.u64(config_.seed);
  w.u32(static_cast<std::uint32_t>(remaining_.size()));
  for (const auto r : remaining_) w.i32(r);
  out += w.take();
}

void FaultModel::load_state(std::string_view blob) {
  BlobReader r(blob);
  const std::uint64_t seed = r.u64();
  if (seed != config_.seed) {
    // Fates are pure functions of the seed, so resuming under a
    // different one silently rewrites history before the checkpoint.
    throw std::runtime_error(
        "FaultModel: checkpoint was recorded under a different fault seed; "
        "resume with the original --fault-seed");
  }
  const auto n = r.u32();
  if (n != remaining_.size()) {
    throw std::runtime_error("FaultModel: checkpoint SCN count mismatch");
  }
  for (auto& rem : remaining_) rem = r.i32();
  if (!r.done()) {
    throw std::runtime_error("FaultModel: trailing bytes in checkpoint");
  }
  std::fill(down_.begin(), down_.end(), 0);
  down_count_ = 0;
}

}  // namespace lfsc
