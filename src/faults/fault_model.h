// Seeded, deterministic fault injection for the control plane
// (DESIGN.md §9): the paper's learner is built for an uncertain *radio*
// environment, this layer makes the *pipeline* uncertain too.
//
// Three fault families, all driven by counter-based hashing so every
// event is a pure function of (fault seed, slot, SCN, task) — no hidden
// RNG stream to advance, which is what makes an injected schedule
// independent of the policy roster, of parallel_scns, and of
// checkpoint/resume:
//  * SCN outages — an SCN goes dark for a burst of slots: its coverage
//    is emptied (it accepts nothing) and delayed feedback addressed to
//    it while down is dropped (in-flight loss). The only evolving state
//    is the per-SCN remaining-burst counter, serialized in checkpoints.
//  * Feedback loss & delay — each observation independently either
//    arrives on time, arrives `delay_slots` late, or never arrives.
//  * Observation corruption — an observation is delivered with poisoned
//    fields (NaN / infinity / out-of-range values); hardened policies
//    must reject or clamp it (LfscPolicy counts lfsc.feedback.rejected).
//
// When a telemetry registry is attached, every injected event and every
// recovery action is counted under faults.* (schema in DESIGN.md §9).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/task.h"
#include "telemetry/telemetry.h"

namespace lfsc {

struct FaultConfig {
  /// Probability that an *up* SCN starts an outage burst in a given
  /// slot. Valid: [0, 1]. 0 disables outages.
  double outage_prob = 0.0;

  /// Outage burst length is drawn uniformly from
  /// [outage_min_slots, outage_max_slots]. Valid: 1 <= min <= max.
  int outage_min_slots = 1;
  int outage_max_slots = 1;

  /// Probability an observation is lost outright (never delivered).
  /// Valid: [0, 1].
  double loss_prob = 0.0;

  /// Probability an observation is delayed by exactly `delay_slots`
  /// slots. Valid: [0, 1]; > 0 requires delay_slots >= 1.
  double delay_prob = 0.0;

  /// The paper-facing delay L: a delayed observation for slot t arrives
  /// at slot t + L. Valid: >= 0.
  int delay_slots = 0;

  /// Probability an observation is delivered with corrupted fields.
  /// Valid: [0, 1].
  double corrupt_prob = 0.0;

  /// Root seed of the injected schedule; independent of world and
  /// policy seeds.
  std::uint64_t seed = 0xFA17;

  /// True when any fault family is active.
  bool any() const noexcept {
    return outage_prob > 0.0 || loss_prob > 0.0 || delay_prob > 0.0 ||
           corrupt_prob > 0.0;
  }

  /// Throws std::invalid_argument on out-of-range parameters.
  void validate() const;
};

class FaultModel {
 public:
  /// What happens to one observation on its way back to the learner.
  enum class Fate : std::uint8_t {
    kDeliver = 0,    ///< arrives on time, intact
    kLost = 1,       ///< never arrives
    kDelayed = 2,    ///< arrives delay_slots late
    kCorrupted = 3,  ///< arrives on time with poisoned fields
  };

  FaultModel(FaultConfig config, int num_scns);

  const FaultConfig& config() const noexcept { return config_; }
  bool enabled() const noexcept { return config_.any(); }

  /// Registers the faults.* counters on `registry` (idempotent names;
  /// call once, before the run). Without this the model still injects,
  /// it just counts nothing.
  void attach_telemetry(telemetry::Registry& registry);

  /// Advances the outage process into slot `t`. Must be called once per
  /// slot, in order (checkpoint/restore snapshots the burst counters so
  /// a resumed run continues the same schedule).
  void begin_slot(int t);

  /// True when SCN `m` is down in the current slot.
  bool scn_down(int m) const {
    return down_[static_cast<std::size_t>(m)] != 0;
  }
  int down_scns() const noexcept { return down_count_; }

  /// Fate of the observation for (slot t, SCN m, local task index j).
  /// Pure function of the fault seed — independent of call order.
  Fate classify(int t, int m, int local_index) const;

  /// Deterministically poisons one field of `f` (NaN, infinity, negative
  /// or absurdly large values), keyed like classify().
  TaskFeedback corrupt(int t, int m, int local_index, TaskFeedback f) const;

  // Recovery-action accounting, called by the harness for the policy
  // whose registry is attached (no-ops before attach_telemetry()).
  void note_fate(Fate fate, std::uint64_t n = 1);
  void note_late_delivered(std::uint64_t n = 1);
  void note_inflight_lost(std::uint64_t n = 1);
  void note_late_dropped(std::uint64_t n = 1);

  /// Exact state snapshot (the per-SCN burst counters) for crash-safe
  /// checkpointing.
  void save_state(std::string& out) const;
  void load_state(std::string_view blob);

 private:
  double unit_draw(std::uint64_t tag, std::uint64_t a,
                   std::uint64_t b) const noexcept;

  FaultConfig config_;
  std::vector<std::int32_t> remaining_;  ///< burst slots left, per SCN
  std::vector<std::uint8_t> down_;       ///< down this slot, per SCN
  int down_count_ = 0;

  telemetry::Counter* outage_slots_ = nullptr;    ///< faults.outage_slots
  telemetry::Counter* outages_started_ = nullptr; ///< faults.outages_started
  telemetry::Counter* feedback_total_ = nullptr;  ///< faults.feedback.total
  telemetry::Counter* fate_counters_[4] = {};  ///< .delivered/.lost/.delayed/.corrupted
  telemetry::Counter* late_delivered_ = nullptr;
  telemetry::Counter* inflight_lost_ = nullptr;
  telemetry::Counter* late_dropped_ = nullptr;
};

}  // namespace lfsc
