// Scalar reference implementation of the simd.h kernel table.
//
// This TU is the canonical definition of every kernel's arithmetic:
// the AVX2 TU mirrors the exact operation order (same fma placements,
// same reduction blocking, same polynomials) so the two tables are
// bitwise identical. It is compiled with -ffp-contract=off so the
// compiler cannot fuse the mul/add pairs that are deliberately written
// unfused (fusing them here would diverge from the AVX2 code, which
// only fuses where an explicit fma() appears).
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/simd.h"
#include "common/simd_constants.h"

namespace lfsc::simd::detail {
namespace {

void sum_max_scalar(const double* x, std::size_t n, double* sum,
                    double* max_out) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  double mx[4];
  for (double& v : mx) v = -std::numeric_limits<double>::infinity();
  const std::size_t main = n & ~std::size_t{3};
  for (std::size_t i = 0; i < main; i += 4) {
    for (std::size_t j = 0; j < 4; ++j) {
      const double v = x[i + j];
      acc[j] += v;
      if (v > mx[j]) mx[j] = v;
    }
  }
  for (std::size_t i = main; i < n; ++i) {
    const double v = x[i];
    acc[i - main] += v;
    if (v > mx[i - main]) mx[i - main] = v;
  }
  *sum = (acc[0] + acc[2]) + (acc[1] + acc[3]);
  const double m02 = mx[0] > mx[2] ? mx[0] : mx[2];
  const double m13 = mx[1] > mx[3] ? mx[1] : mx[3];
  *max_out = m02 > m13 ? m02 : m13;
}

void scale_clamp01_scalar(const double* x, std::size_t n, double scale,
                          double base, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    // Deliberately unfused mul + add: matches the arm-level Exp3.M solve
    // (exp3m_probabilities) bit for bit, so swapping it for this kernel
    // does not perturb the trajectory.
    double v = x[i] * scale + base;
    v = v > 0.0 ? v : 0.0;
    v = v < 1.0 ? v : 1.0;
    out[i] = v;
  }
}

void gather_select_prob_scalar(const double* cell_p, const std::uint32_t* cells,
                               const unsigned char* capped, double capped_p,
                               std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = capped[i] != 0 ? capped_p : cell_p[cells[i]];
  }
}

double exp_one(double x) {
  const double t = x * kLog2E;
  const double k = std::nearbyint(t);
  double r = std::fma(k, -kLn2Hi, x);
  r = std::fma(k, -kLn2Lo, r);
  double p = kExpC[12];
  for (int c = 11; c >= 0; --c) p = std::fma(p, r, kExpC[c]);
  const auto ki = static_cast<std::int64_t>(k);
  const double s = std::bit_cast<double>((ki + 1023) << 52);
  return p * s;
}

void exp_stream_scalar(const double* x, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = exp_one(x[i]);
}

float log_one(float u) {
  const auto bits = std::bit_cast<std::int32_t>(u);
  std::int32_t e = (bits >> 23) - 127;
  float m = std::bit_cast<float>((bits & 0x7FFFFF) | 0x3F800000);
  if (m > kSqrt2F) {
    m = m * 0.5f;
    e += 1;
  }
  const float f = m - 1.0f;
  const float s = f / (f + 2.0f);
  const float z = s * s;
  float w = std::fma(z, kLogC7, kLogC5);
  w = std::fma(z, w, kLogC3);
  w = std::fma(z, w, 2.0f);
  const float r = s * w;
  return std::fma(static_cast<float>(e), kLn2F, r);
}

void es_keys_scalar(const double* p, const float* u, std::size_t n,
                    float* keys) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto pf = static_cast<float>(p[i]);
    const float uc = u[i] > kEsFloorU ? u[i] : kEsFloorU;
    const float lg = log_one(uc);
    float key = 1.0f / (1.0f - lg / pf);
    if (pf <= 0.0f) key = 0.0f;
    if (pf >= 1.0f) key = kEsCappedKey;
    keys[i] = key;
  }
}

void renorm_floor_scalar(double* w, std::size_t n, double max_w,
                         double floor_v) {
  for (std::size_t i = 0; i < n; ++i) {
    const double v = w[i] / max_w;
    w[i] = v > floor_v ? v : floor_v;
  }
}

void ipw_payoff_scalar(const double* sum_g, const double* sum_v,
                       const double* sum_q, const std::uint32_t* count,
                       std::size_t n, double lam_q, double lam_r, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    // Division-first association, no fma: exactly the reference
    // transliteration's est_g + λ·est_v − λ'·est_q, so the kernel slots
    // into the update path without perturbing the trajectory.
    const double cnt = static_cast<double>(count[i]);
    out[i] =
        sum_g[i] / cnt + lam_q * (sum_v[i] / cnt) - lam_r * (sum_q[i] / cnt);
  }
}

}  // namespace

const Kernels& scalar_table() {
  static const Kernels table{
      &sum_max_scalar,     &scale_clamp01_scalar, &gather_select_prob_scalar,
      &exp_stream_scalar,  &es_keys_scalar,       &renorm_floor_scalar,
      &ipw_payoff_scalar,
  };
  return table;
}

}  // namespace lfsc::simd::detail

namespace lfsc::simd {

double exp_canonical(double x) {
  double out;
  detail::scalar_table().exp_stream(&x, 1, &out);
  return out;
}

}  // namespace lfsc::simd
