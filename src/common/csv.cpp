#include "common/csv.h"

#include <charconv>
#include <cmath>
#include <stdexcept>

namespace lfsc {
namespace {

bool needs_quoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string quote(std::string_view field) {
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

void CsvWriter::header(std::initializer_list<std::string_view> columns) {
  std::vector<std::string> fields;
  fields.reserve(columns.size());
  for (const auto c : columns) fields.emplace_back(c);
  write_fields(fields);
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  write_fields(columns);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  write_fields(fields);
}

void CsvWriter::row_values(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (const double v : values) fields.push_back(format(v));
  write_fields(fields);
}

void CsvWriter::labeled_row(std::string_view label,
                            const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size() + 1);
  fields.emplace_back(label);
  for (const double v : values) fields.push_back(format(v));
  write_fields(fields);
}

std::string CsvWriter::format(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) return "0";
  return std::string(buf, ptr);
}

void CsvWriter::write_fields(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& field : fields) {
    if (!first) out_ << ',';
    first = false;
    out_ << (needs_quoting(field) ? quote(field) : field);
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace lfsc
