#include "common/math_util.h"

#include <algorithm>

namespace lfsc {

bool approx_equal(double a, double b, double tol) noexcept {
  const double diff = std::fabs(a - b);
  if (diff <= tol) return true;
  return diff <= tol * std::max(std::fabs(a), std::fabs(b));
}

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  std::vector<double> out;
  if (count == 0) return out;
  out.reserve(count);
  if (count == 1) {
    out.push_back(lo);
    return out;
  }
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(lo + step * static_cast<double>(i));
  }
  out.back() = hi;  // avoid drift on the final point
  return out;
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void KahanSum::add(double x) noexcept {
  const double y = x - compensation_;
  const double t = sum_ + y;
  compensation_ = (t - sum_) - y;
  sum_ = t;
}

double mean_of(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  KahanSum sum;
  for (const double v : values) sum.add(v);
  return sum.value() / static_cast<double>(values.size());
}

double stddev_of(std::span<const double> values) noexcept {
  RunningStats stats;
  for (const double v : values) stats.add(v);
  return stats.stddev();
}

}  // namespace lfsc
