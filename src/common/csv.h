// Minimal CSV emission for the benchmark harness: the figure benches write
// one CSV per paper figure so the series can be re-plotted externally.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace lfsc {

/// Streams rows to a CSV file. Fields containing commas, quotes or
/// newlines are quoted per RFC 4180. The file is flushed on destruction.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error when
  /// the file cannot be opened.
  explicit CsvWriter(const std::string& path);

  /// Writes the header row. Must be the first row written, if used.
  void header(std::initializer_list<std::string_view> columns);
  void header(const std::vector<std::string>& columns);

  /// Appends a row of already-formatted fields.
  void row(const std::vector<std::string>& fields);

  /// Appends a row of doubles, formatted with round-trip precision.
  void row_values(const std::vector<double>& values);

  /// Appends a row whose first field is a label followed by doubles.
  void labeled_row(std::string_view label, const std::vector<double>& values);

  const std::string& path() const noexcept { return path_; }
  std::size_t rows_written() const noexcept { return rows_; }

  /// Formats a double with enough digits to round-trip.
  static std::string format(double value);

 private:
  void write_fields(const std::vector<std::string>& fields);

  std::string path_;
  std::ofstream out_;
  std::size_t rows_ = 0;
};

}  // namespace lfsc
