// Fixed-size worker pool plus a parallel-for helper. Used by the harness
// to farm independent experiment runs / sweep points to hardware threads.
// Determinism note: all simulation randomness is stream-keyed (see rng.h),
// so results are identical for any worker count, including 1.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace lfsc {

/// A minimal task-queue thread pool. Tasks are std::function<void()>;
/// submit() returns a future for completion/exception propagation.
class ThreadPool {
 public:
  /// Creates `worker_count` threads; 0 means hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t worker_count = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Enqueues `fn`; the returned future carries its result or exception.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    auto future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Enqueues all `tasks` under a single lock acquisition and wakes every
  /// worker at once — one mutex round-trip and one broadcast instead of
  /// N lock/notify pairs. `tasks` is consumed (left empty).
  void submit_bulk(std::vector<std::function<void()>>& tasks);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs `fn(i)` for i in [0, count) across the pool and blocks until all
/// complete. An exception thrown by any iteration is rethrown (when
/// several iterations throw, one of them is propagated).
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Grain-size variant: indices are dispatched in contiguous blocks of up
/// to `grain` iterations, so `count` small work items cost
/// ceil(count/grain) task enqueues instead of `count` std::function
/// allocations. All blocks are enqueued in one submit_bulk() batch.
/// grain == 1 reproduces the per-index behavior.
void parallel_for(ThreadPool& pool, std::size_t count, std::size_t grain,
                  const std::function<void(std::size_t)>& fn);

/// Convenience overload using a process-wide default pool sized to the
/// hardware.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// The lazily-created process-wide pool used by the convenience overload.
ThreadPool& default_thread_pool();

}  // namespace lfsc
