// Shared constants for the canonical exp/log polynomials used by both
// kernel implementations (simd_scalar.cpp and simd_avx2.cpp). Only
// constants live here — the arithmetic is written out in each TU with
// identical operation order, and bit-equality is enforced by
// tests/test_simd.cpp.
#pragma once

namespace lfsc::simd {
struct Kernels;
}

namespace lfsc::simd::detail {

/// Defined in simd_scalar.cpp.
const Kernels& scalar_table();

/// Defined in simd_avx2.cpp; nullptr when the binary lacks AVX2 codegen
/// (non-x86 target).
const Kernels* avx2_table();

// exp(x), double. Range reduction x = n*ln2 + r with ln2 split in two
// so fma(n, -ln2_hi, x) is exact for |n| <= 1024; r in [-ln2/2, ln2/2].
// Degree-12 Taylor keeps the truncation term below 2e-16 relative.
inline constexpr double kLog2E = 1.4426950408889634074;
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
inline constexpr double kExpC[13] = {
    1.0,                        // 1/0!
    1.0,                        // 1/1!
    0.5,                        // 1/2!
    1.6666666666666666e-01,     // 1/3!
    4.1666666666666664e-02,     // 1/4!
    8.3333333333333332e-03,     // 1/5!
    1.3888888888888889e-03,     // 1/6!
    1.9841269841269841e-04,     // 1/7!
    2.4801587301587302e-05,     // 1/8!
    2.7557319223985893e-06,     // 1/9!
    2.7557319223985888e-07,     // 1/10!
    2.5052108385441720e-08,     // 1/11!
    2.0876756987868100e-09,     // 1/12!
};

// log(u), float, u in [1e-35, 1]. Mantissa split at sqrt(2) so
// f = m - 1 is in [-0.2929, 0.4142]; then the atanh form
// log(1+f) = s*(2 + (2/3)z + (2/5)z^2 + (2/7)z^3), s = f/(f+2),
// z = s*s keeps |s| <= 0.1716 and the truncation below 3e-8.
inline constexpr float kSqrt2F = 1.41421356f;
inline constexpr float kLn2F = 0.693147180f;
inline constexpr float kLogC7 = 2.0f / 7.0f;
inline constexpr float kLogC5 = 2.0f / 5.0f;
inline constexpr float kLogC3 = 2.0f / 3.0f;
inline constexpr float kEsFloorU = 1e-35f;
inline constexpr float kEsCappedKey = 2.0f;

}  // namespace lfsc::simd::detail
