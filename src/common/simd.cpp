// Dispatch for the simd.h kernel table; rules documented in simd.h.
#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/simd_constants.h"

namespace lfsc::simd {
namespace {

// -1: not set programmatically (environment applies); 0/1: forced.
std::atomic<int> g_force_scalar{-1};

bool env_force_scalar() {
  static const bool forced = [] {
    const char* v = std::getenv("LFSC_FORCE_SCALAR");
    if (v == nullptr) return false;
    return !(v[0] == '\0' || std::strcmp(v, "0") == 0 ||
             std::strcmp(v, "off") == 0 || std::strcmp(v, "OFF") == 0 ||
             std::strcmp(v, "false") == 0);
  }();
  return forced;
}

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(_M_X64)
  static const bool has = __builtin_cpu_supports("avx2") &&
                          __builtin_cpu_supports("fma");
  return has;
#else
  return false;
#endif
}

const Kernels* resolve() {
#ifdef LFSC_FORCE_SCALAR_BUILD
  return &detail::scalar_table();
#else
  const int forced = g_force_scalar.load(std::memory_order_relaxed);
  if (forced == 1) return &detail::scalar_table();
  if (forced == -1 && env_force_scalar()) return &detail::scalar_table();
  const Kernels* avx2 = detail::avx2_table();
  if (avx2 != nullptr && cpu_has_avx2()) return avx2;
  return &detail::scalar_table();
#endif
}

}  // namespace

const Kernels& active() { return *resolve(); }

const Kernels& scalar_kernels() { return detail::scalar_table(); }

bool avx2_compiled() { return detail::avx2_table() != nullptr; }

bool avx2_selected() { return resolve() == detail::avx2_table(); }

const char* active_name() { return avx2_selected() ? "avx2" : "scalar"; }

void set_force_scalar(bool force) {
  g_force_scalar.store(force ? 1 : -1, std::memory_order_relaxed);
}

}  // namespace lfsc::simd
