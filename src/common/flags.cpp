#include "common/flags.h"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace lfsc {
namespace {

bool parse_bool(const std::string& text, bool& out) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    out = false;
    return true;
  }
  return false;
}

}  // namespace

FlagParser::FlagParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

FlagParser::Flag& FlagParser::register_flag(const std::string& name,
                                            std::string help) {
  if (name.empty()) throw std::invalid_argument("flag name must be non-empty");
  auto [it, inserted] = flags_.emplace(name, Flag{});
  if (!inserted) throw std::invalid_argument("duplicate flag --" + name);
  it->second.help = std::move(help);
  return it->second;
}

int* FlagParser::add_int(const std::string& name, int default_value,
                         const std::string& help) {
  auto& flag = register_flag(name, help);
  ints_.push_back(std::make_unique<int>(default_value));
  flag.target = ints_.back().get();
  flag.default_repr = std::to_string(default_value);
  return ints_.back().get();
}

double* FlagParser::add_double(const std::string& name, double default_value,
                               const std::string& help) {
  auto& flag = register_flag(name, help);
  doubles_.push_back(std::make_unique<double>(default_value));
  flag.target = doubles_.back().get();
  std::ostringstream os;
  os << default_value;
  flag.default_repr = os.str();
  return doubles_.back().get();
}

std::string* FlagParser::add_string(const std::string& name,
                                    std::string default_value,
                                    const std::string& help) {
  auto& flag = register_flag(name, help);
  strings_.push_back(std::make_unique<std::string>(std::move(default_value)));
  flag.target = strings_.back().get();
  flag.default_repr = *strings_.back();
  return strings_.back().get();
}

bool* FlagParser::add_bool(const std::string& name, bool default_value,
                           const std::string& help) {
  auto& flag = register_flag(name, help);
  bools_.push_back(std::make_unique<bool>(default_value));
  flag.target = bools_.back().get();
  flag.default_repr = default_value ? "true" : "false";
  return bools_.back().get();
}

bool FlagParser::assign(Flag& flag, const std::string& value,
                        std::ostream& err, const std::string& name) {
  bool ok = true;
  std::visit(
      [&](auto* target) {
        using T = std::remove_pointer_t<decltype(target)>;
        if constexpr (std::is_same_v<T, int>) {
          const auto [ptr, ec] = std::from_chars(
              value.data(), value.data() + value.size(), *target);
          ok = ec == std::errc{} && ptr == value.data() + value.size();
        } else if constexpr (std::is_same_v<T, double>) {
          try {
            std::size_t pos = 0;
            *target = std::stod(value, &pos);
            ok = pos == value.size();
          } catch (const std::exception&) {
            ok = false;
          }
        } else if constexpr (std::is_same_v<T, std::string>) {
          *target = value;
        } else {  // bool
          ok = parse_bool(value, *target);
        }
      },
      flag.target);
  if (!ok) {
    err << program_ << ": invalid value '" << value << "' for --" << name
        << "\n";
  }
  return ok;
}

FlagParser::Result FlagParser::parse(int argc, const char* const* argv,
                                     std::ostream& err) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      err << usage();
      return Result::kHelp;
    }
    if (arg.rfind("--", 0) != 0 || arg.size() == 2) {
      err << program_ << ": unexpected argument '" << arg << "'\n";
      return Result::kError;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      err << program_ << ": unknown flag --" << name << "\n" << usage();
      return Result::kError;
    }
    Flag& flag = it->second;
    const bool is_bool = std::holds_alternative<bool*>(flag.target);
    if (!has_value) {
      if (is_bool) {
        // `--name` alone means true, unless the next token is an explicit
        // boolean literal.
        if (i + 1 < argc) {
          bool parsed = false;
          if (parse_bool(argv[i + 1], parsed)) {
            *std::get<bool*>(flag.target) = parsed;
            ++i;
            flag.provided = true;
            continue;
          }
        }
        *std::get<bool*>(flag.target) = true;
        flag.provided = true;
        continue;
      }
      if (i + 1 >= argc) {
        err << program_ << ": flag --" << name << " expects a value\n";
        return Result::kError;
      }
      value = argv[++i];
    }
    if (!assign(flag, value, err, name)) return Result::kError;
    flag.provided = true;
  }
  return Result::kOk;
}

std::string FlagParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nflags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << "  " << flag.help << " (default: "
       << flag.default_repr << ")\n";
  }
  os << "  --help  show this message\n";
  return os.str();
}

bool FlagParser::provided(const std::string& name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second.provided;
}

}  // namespace lfsc
