// Bounds-checked binary blob serialization for checkpoints and other
// exact-state persistence (harness/checkpoint.h). Values are written as
// raw little-endian bytes — doubles round-trip bit-exactly, which the
// resume-determinism contract (DESIGN.md §9) depends on — so blobs are
// portable across processes on the same architecture family, not
// across endianness.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace lfsc {

/// Appends typed values to a growing byte buffer.
class BlobWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }

  /// Length-prefixed byte string (u64 size + payload).
  void str(std::string_view s) {
    u64(s.size());
    raw(s.data(), s.size());
  }

  void f64_span(std::span<const double> xs) {
    u64(xs.size());
    raw(xs.data(), xs.size() * sizeof(double));
  }

  const std::string& data() const noexcept { return buf_; }
  std::string take() noexcept { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    // An empty span/string_view may carry a null data() pointer, which
    // append() must not see even with n == 0.
    if (n != 0) buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Reads typed values back out of a blob; every read is bounds-checked
/// and throws std::runtime_error on underflow (a truncated/corrupt blob
/// must never become undefined behavior).
class BlobReader {
 public:
  explicit BlobReader(std::string_view blob) noexcept : blob_(blob) {}

  std::uint8_t u8() { return read<std::uint8_t>(); }
  std::uint32_t u32() { return read<std::uint32_t>(); }
  std::uint64_t u64() { return read<std::uint64_t>(); }
  std::int32_t i32() { return read<std::int32_t>(); }
  double f64() { return read<double>(); }

  std::string str() {
    const std::uint64_t n = u64();
    check(n);
    std::string out(blob_.substr(pos_, n));
    pos_ += n;
    return out;
  }

  std::vector<double> f64_vec() {
    const std::uint64_t n = u64();
    // Divide rather than multiply: n is attacker-controlled in a corrupt
    // blob and n * sizeof(double) could wrap past the bounds check.
    if (n > (blob_.size() - pos_) / sizeof(double)) {
      throw std::runtime_error("BlobReader: truncated blob");
    }
    std::vector<double> out(n);
    if (n != 0) {
      std::memcpy(out.data(), blob_.data() + pos_, n * sizeof(double));
      pos_ += n * sizeof(double);
    }
    return out;
  }

  std::size_t remaining() const noexcept { return blob_.size() - pos_; }
  bool done() const noexcept { return pos_ == blob_.size(); }

 private:
  template <typename T>
  T read() {
    check(sizeof(T));
    T v;
    std::memcpy(&v, blob_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void check(std::uint64_t n) const {
    if (n > blob_.size() - pos_) {
      throw std::runtime_error("BlobReader: truncated blob");
    }
  }

  std::string_view blob_;
  std::size_t pos_ = 0;
};

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr auto kCrc32Table = make_crc32_table();
}  // namespace detail

/// IEEE 802.3 CRC-32 (the zlib polynomial); the checkpoint footer uses it
/// to detect torn or bit-rotted files before any field is interpreted.
inline std::uint32_t crc32(std::string_view data) noexcept {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = detail::kCrc32Table[(c ^ static_cast<std::uint8_t>(ch)) & 0xFFu] ^
        (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace lfsc
