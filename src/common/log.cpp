#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace lfsc {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", tag(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace lfsc
