// Aligned console tables: all figure/benchmark binaries print the paper's
// rows through this formatter so output stays scannable and diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace lfsc {

/// Collects rows and renders them as a fixed-width ASCII table with a
/// header rule. Numeric cells should be pre-formatted by the caller
/// (see Table::num for the common case).
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Appends a row; missing trailing cells render empty, extra cells are
  /// an error (checked).
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with `precision` fractional digits.
  static std::string num(double value, int precision = 3);

  /// Renders the table to `out` with 2-space column gaps.
  void print(std::ostream& out) const;

  /// Renders to a string (used by tests).
  std::string to_string() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lfsc
