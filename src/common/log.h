// Leveled logging with a global threshold. The harness logs progress at
// Info; the figure benches raise the threshold so stdout stays a clean
// table stream.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace lfsc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level (thread-safe; relaxed atomic).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits `message` to stderr with a level tag when `level` passes the
/// global threshold. Line-buffered; safe for concurrent callers.
void log_message(LogLevel level, std::string_view message);

namespace detail {

/// Stream-style one-shot log line: `LogLine(kInfo) << "x=" << x;`
class LogLine {
 public:
  explicit LogLine(LogLevel level) noexcept : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

#define LFSC_LOG_DEBUG ::lfsc::detail::LogLine(::lfsc::LogLevel::kDebug)
#define LFSC_LOG_INFO ::lfsc::detail::LogLine(::lfsc::LogLevel::kInfo)
#define LFSC_LOG_WARN ::lfsc::detail::LogLine(::lfsc::LogLevel::kWarn)
#define LFSC_LOG_ERROR ::lfsc::detail::LogLine(::lfsc::LogLevel::kError)

}  // namespace lfsc
