// Runtime-dispatched vector kernels for the slot hot path.
//
// Two implementations sit behind one function-pointer table: a scalar
// reference (simd_scalar.cpp, compiled with -ffp-contract=off) and an
// AVX2+FMA build (simd_avx2.cpp, compiled with -mavx2 -mfma on x86-64).
// The pair is *bit-exact by construction*: both follow the same
// canonical operation order — blocked 4-accumulator reductions, the
// same explicit fma() placements, the same polynomial exp/log — so the
// only difference is how many lanes execute per instruction. Elementwise
// IEEE ops (add/mul/div/min/max on finite inputs) are identical per
// lane on both paths; test_simd.cpp asserts bitwise equality across the
// whole table and test_simd_equivalence.cpp asserts whole-trajectory
// equality of the policy under both.
//
// Dispatch: AVX2 is used when (a) the TU was compiled in, (b) the CPU
// reports it, (c) the build was not configured with -DLFSC_FORCE_SCALAR=ON,
// (d) the environment variable LFSC_FORCE_SCALAR is unset/0, and (e) no
// test called set_force_scalar(true). The choice is process-wide and
// cached after the first query.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lfsc::simd {

/// The kernel table. All pointers are always non-null. Contracts:
/// pointers may be unaligned unless noted; n may be 0; inputs finite
/// unless noted.
struct Kernels {
  /// sum/max reduction over x[0..n): blocked over 4 accumulator lanes
  /// (lane j takes x[i] with i % 4 == j), folded as
  /// (acc0+acc2)+(acc1+acc3) and max-wise alike. n==0 -> sum 0, max -inf.
  void (*sum_max)(const double* x, std::size_t n, double* sum, double* max);

  /// out[i] = clamp(x[i] * scale + base, 0, 1) — mul and add unfused,
  /// matching the arm-level Exp3.M solve bit for bit.
  void (*scale_clamp01)(const double* x, std::size_t n, double scale,
                        double base, double* out);

  /// out[i] = capped[i] ? capped_p : cell_p[cells[i]]. Pure select +
  /// gather, no arithmetic. capped is a byte mask (0 / nonzero).
  void (*gather_select_prob)(const double* cell_p, const std::uint32_t* cells,
                             const unsigned char* capped, double capped_p,
                             std::size_t n, double* out);

  /// out[i] = exp(x[i]) via the canonical polynomial (see simd_scalar.cpp);
  /// requires |x| <= 64 (callers clamp to the policy's +-60 band).
  /// Accuracy ~1 ulp over that range; both paths bit-identical.
  void (*exp_stream)(const double* x, std::size_t n, double* out);

  /// Efraimidis–Spirakis edge keys at float precision:
  ///   (float)p[i] >= 1    -> 2.0f (capped arms outrank every sampled key)
  ///   (float)p[i] <= 0    -> 0.0f
  ///   otherwise           -> 1 / (1 - log(max((float)u[i], 1e-35f)) / (float)p[i])
  /// log() is the canonical float polynomial shared by both paths.
  void (*es_keys)(const double* p, const float* u, std::size_t n, float* keys);

  /// w[i] = max(w[i] / max_w, floor) — lazy-renormalization pass.
  void (*renorm_floor)(double* w, std::size_t n, double max_w, double floor);

  /// out[i] = sum_g[i]/count[i] + lam_q*(sum_v[i]/count[i])
  ///        - lam_r*(sum_q[i]/count[i]) — division-first, no fma,
  /// exactly the reference transliteration's per-cell payoff.
  /// count[i] == 0 yields inf/nan in that lane; callers skip untouched
  /// cells, so those lanes are never read.
  void (*ipw_payoff)(const double* sum_g, const double* sum_v,
                     const double* sum_q, const std::uint32_t* count,
                     std::size_t n, double lam_q, double lam_r, double* out);
};

/// Table picked by the dispatch rules above. Never null entries.
const Kernels& active();

/// The scalar reference table, regardless of dispatch.
const Kernels& scalar_kernels();

/// True when the AVX2 TU was compiled into this binary.
bool avx2_compiled();

/// True when active() currently resolves to the AVX2 table.
bool avx2_selected();

/// "avx2" or "scalar" — what active() resolves to right now.
const char* active_name();

/// Test/bench hook: force the scalar table (true) or restore normal
/// dispatch (false). Overrides the environment variable. Not
/// thread-safe against concurrent active() users; call between slots.
void set_force_scalar(bool force);

/// One element through the canonical polynomial exp (the exp_stream
/// arithmetic; |x| <= 64). Sparse/rare weight-update paths — the
/// delayed-feedback apply, the reference transliteration — call this so
/// their trajectories stay bit-aligned with the vectorized update.
double exp_canonical(double x);

}  // namespace lfsc::simd
