#include "common/thread_pool.h"

#include <algorithm>

namespace lfsc {

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) {
    worker_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions are captured by the packaged_task
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || pool.worker_count() == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();  // rethrows the first failure
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for(default_thread_pool(), count, fn);
}

ThreadPool& default_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace lfsc
