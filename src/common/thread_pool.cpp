#include "common/thread_pool.h"

#include <algorithm>
#include <condition_variable>
#include <exception>

namespace lfsc {

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) {
    worker_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit_bulk(std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  const bool broadcast = tasks.size() > 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& task : tasks) queue_.push_back(std::move(task));
  }
  tasks.clear();
  // Waking every worker for a batch beats N sequential notify_one calls:
  // the workers race to drain the batch instead of being woken one
  // wake-up latency apart.
  if (broadcast) {
    cv_.notify_all();
  } else {
    cv_.notify_one();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions are captured by the packaged_task
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for(pool, count, 1, fn);
}

void parallel_for(ThreadPool& pool, std::size_t count, std::size_t grain,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t blocks = (count + grain - 1) / grain;
  if (blocks == 1 || pool.worker_count() == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // One shared completion latch instead of a future per block: a single
  // mutex/cv pair and no per-task promise allocation.
  struct Latch {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  } latch;
  latch.remaining = blocks;

  std::vector<std::function<void()>> tasks;
  tasks.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * grain;
    const std::size_t end = std::min(count, begin + grain);
    tasks.emplace_back([&latch, &fn, begin, end] {
      std::exception_ptr error;
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(latch.mutex);
      if (error && !latch.error) latch.error = error;
      if (--latch.remaining == 0) latch.done.notify_one();
    });
  }
  pool.submit_bulk(tasks);

  std::unique_lock<std::mutex> lock(latch.mutex);
  latch.done.wait(lock, [&latch] { return latch.remaining == 0; });
  if (latch.error) std::rethrow_exception(latch.error);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for(default_thread_pool(), count, fn);
}

ThreadPool& default_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace lfsc
