// AVX2+FMA implementation of the simd.h kernel table.
//
// Every kernel mirrors the canonical operation order defined by
// simd_scalar.cpp — same fma placements, same 4-lane reduction
// blocking, same polynomials — so the two tables produce bitwise
// identical results (asserted by tests/test_simd.cpp). Scalar tail
// loops here copy the simd_scalar.cpp bodies verbatim; they contain
// only single FP operations or explicit std::fma calls, so the
// compiler's default contraction cannot alter them.
//
// This TU is compiled with -mavx2 -mfma on x86-64 (see
// src/common/CMakeLists.txt); on other targets the table is absent and
// avx2_table() returns nullptr.
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "common/simd.h"
#include "common/simd_constants.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>

namespace lfsc::simd::detail {
namespace {

void sum_max_avx2(const double* x, std::size_t n, double* sum,
                  double* max_out) {
  __m256d acc = _mm256_setzero_pd();
  __m256d mxv = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  const std::size_t main = n & ~std::size_t{3};
  for (std::size_t i = 0; i < main; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    acc = _mm256_add_pd(acc, v);
    mxv = _mm256_max_pd(mxv, v);
  }
  double a[4], m[4];
  _mm256_storeu_pd(a, acc);
  _mm256_storeu_pd(m, mxv);
  for (std::size_t i = main; i < n; ++i) {
    const double v = x[i];
    a[i - main] += v;
    if (v > m[i - main]) m[i - main] = v;
  }
  *sum = (a[0] + a[2]) + (a[1] + a[3]);
  const double m02 = m[0] > m[2] ? m[0] : m[2];
  const double m13 = m[1] > m[3] ? m[1] : m[3];
  *max_out = m02 > m13 ? m02 : m13;
}

void scale_clamp01_avx2(const double* x, std::size_t n, double scale,
                        double base, double* out) {
  const __m256d sv = _mm256_set1_pd(scale);
  const __m256d bv = _mm256_set1_pd(base);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Unfused mul + add, mirroring the scalar kernel (and the arm-level
    // Exp3.M solve) bit for bit.
    __m256d v = _mm256_add_pd(_mm256_mul_pd(_mm256_loadu_pd(x + i), sv), bv);
    v = _mm256_max_pd(v, zero);
    v = _mm256_min_pd(v, one);
    _mm256_storeu_pd(out + i, v);
  }
  for (; i < n; ++i) {
    double v = x[i] * scale + base;
    v = v > 0.0 ? v : 0.0;
    v = v < 1.0 ? v : 1.0;
    out[i] = v;
  }
}

void gather_select_prob_avx2(const double* cell_p, const std::uint32_t* cells,
                             const unsigned char* capped, double capped_p,
                             std::size_t n, double* out) {
  const __m256d cp = _mm256_set1_pd(capped_p);
  const __m256i zero = _mm256_setzero_si256();
  const __m256d zpd = _mm256_setzero_pd();
  // all-ones gather mask; the masked variant avoids gcc's
  // maybe-uninitialized false positive on _mm256_undefined_pd().
  const __m256d gmask = _mm256_cmp_pd(zpd, zpd, _CMP_EQ_OQ);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i idx;
    std::memcpy(&idx, cells + i, 16);
    const __m256d g = _mm256_mask_i32gather_pd(zpd, cell_p, idx, gmask, 8);
    std::uint32_t cb;
    std::memcpy(&cb, capped + i, 4);
    const __m256i c64 =
        _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(cb)));
    const __m256d mask = _mm256_castsi256_pd(_mm256_cmpgt_epi64(c64, zero));
    _mm256_storeu_pd(out + i, _mm256_blendv_pd(g, cp, mask));
  }
  for (; i < n; ++i) {
    out[i] = capped[i] != 0 ? capped_p : cell_p[cells[i]];
  }
}

double exp_one(double x) {
  const double t = x * kLog2E;
  const double k = std::nearbyint(t);
  double r = std::fma(k, -kLn2Hi, x);
  r = std::fma(k, -kLn2Lo, r);
  double p = kExpC[12];
  for (int c = 11; c >= 0; --c) p = std::fma(p, r, kExpC[c]);
  const auto ki = static_cast<std::int64_t>(k);
  const double s = std::bit_cast<double>((ki + 1023) << 52);
  return p * s;
}

void exp_stream_avx2(const double* x, std::size_t n, double* out) {
  const __m256d log2e = _mm256_set1_pd(kLog2E);
  const __m256d nln2hi = _mm256_set1_pd(-kLn2Hi);
  const __m256d nln2lo = _mm256_set1_pd(-kLn2Lo);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xv = _mm256_loadu_pd(x + i);
    const __m256d t = _mm256_mul_pd(xv, log2e);
    const __m256d k =
        _mm256_round_pd(t, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    __m256d r = _mm256_fmadd_pd(k, nln2hi, xv);
    r = _mm256_fmadd_pd(k, nln2lo, r);
    __m256d p = _mm256_set1_pd(kExpC[12]);
    for (int c = 11; c >= 0; --c) {
      p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(kExpC[c]));
    }
    const __m128i k32 = _mm256_cvtpd_epi32(k);
    const __m256i k64 = _mm256_cvtepi32_epi64(k32);
    const __m256i sbits = _mm256_slli_epi64(
        _mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52);
    const __m256d s = _mm256_castsi256_pd(sbits);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(p, s));
  }
  for (; i < n; ++i) out[i] = exp_one(x[i]);
}

float log_one(float u) {
  const auto bits = std::bit_cast<std::int32_t>(u);
  std::int32_t e = (bits >> 23) - 127;
  float m = std::bit_cast<float>((bits & 0x7FFFFF) | 0x3F800000);
  if (m > kSqrt2F) {
    m = m * 0.5f;
    e += 1;
  }
  const float f = m - 1.0f;
  const float s = f / (f + 2.0f);
  const float z = s * s;
  float w = std::fma(z, kLogC7, kLogC5);
  w = std::fma(z, w, kLogC3);
  w = std::fma(z, w, 2.0f);
  const float r = s * w;
  return std::fma(static_cast<float>(e), kLn2F, r);
}

void es_keys_avx2(const double* p, const float* u, std::size_t n,
                  float* keys) {
  const __m256 floor_u = _mm256_set1_ps(kEsFloorU);
  const __m256 sqrt2 = _mm256_set1_ps(kSqrt2F);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 two = _mm256_set1_ps(2.0f);
  const __m256 c7 = _mm256_set1_ps(kLogC7);
  const __m256 c5 = _mm256_set1_ps(kLogC5);
  const __m256 c3 = _mm256_set1_ps(kLogC3);
  const __m256 ln2 = _mm256_set1_ps(kLn2F);
  const __m256 zero = _mm256_setzero_ps();
  const __m256 capped_key = _mm256_set1_ps(kEsCappedKey);
  const __m256i mant_mask = _mm256_set1_epi32(0x7FFFFF);
  const __m256i one_bits = _mm256_set1_epi32(0x3F800000);
  const __m256i bias = _mm256_set1_epi32(127);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128 plo = _mm256_cvtpd_ps(_mm256_loadu_pd(p + i));
    const __m128 phi = _mm256_cvtpd_ps(_mm256_loadu_pd(p + i + 4));
    const __m256 pf =
        _mm256_insertf128_ps(_mm256_castps128_ps256(plo), phi, 1);
    __m256 uv = _mm256_loadu_ps(u + i);
    uv = _mm256_max_ps(uv, floor_u);
    const __m256i bits = _mm256_castps_si256(uv);
    __m256i e = _mm256_sub_epi32(_mm256_srli_epi32(bits, 23), bias);
    __m256 m = _mm256_castsi256_ps(
        _mm256_or_si256(_mm256_and_si256(bits, mant_mask), one_bits));
    const __m256 adj = _mm256_cmp_ps(m, sqrt2, _CMP_GT_OQ);
    m = _mm256_blendv_ps(m, _mm256_mul_ps(m, half), adj);
    e = _mm256_sub_epi32(e, _mm256_castps_si256(adj));  // mask is -1: e += 1
    const __m256 f = _mm256_sub_ps(m, one);
    const __m256 s = _mm256_div_ps(f, _mm256_add_ps(f, two));
    const __m256 z = _mm256_mul_ps(s, s);
    __m256 w = _mm256_fmadd_ps(z, c7, c5);
    w = _mm256_fmadd_ps(z, w, c3);
    w = _mm256_fmadd_ps(z, w, two);
    const __m256 r = _mm256_mul_ps(s, w);
    const __m256 ef = _mm256_cvtepi32_ps(e);
    const __m256 lg = _mm256_fmadd_ps(ef, ln2, r);
    __m256 key =
        _mm256_div_ps(one, _mm256_sub_ps(one, _mm256_div_ps(lg, pf)));
    const __m256 pos = _mm256_cmp_ps(pf, zero, _CMP_GT_OQ);
    key = _mm256_and_ps(key, pos);
    const __m256 cm = _mm256_cmp_ps(pf, one, _CMP_GE_OQ);
    key = _mm256_blendv_ps(key, capped_key, cm);
    _mm256_storeu_ps(keys + i, key);
  }
  for (; i < n; ++i) {
    const auto pf = static_cast<float>(p[i]);
    const float uc = u[i] > kEsFloorU ? u[i] : kEsFloorU;
    const float lg = log_one(uc);
    float key = 1.0f / (1.0f - lg / pf);
    if (pf <= 0.0f) key = 0.0f;
    if (pf >= 1.0f) key = kEsCappedKey;
    keys[i] = key;
  }
}

void renorm_floor_avx2(double* w, std::size_t n, double max_w,
                       double floor_v) {
  const __m256d mv = _mm256_set1_pd(max_w);
  const __m256d fv = _mm256_set1_pd(floor_v);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_div_pd(_mm256_loadu_pd(w + i), mv);
    _mm256_storeu_pd(w + i, _mm256_max_pd(v, fv));
  }
  for (; i < n; ++i) {
    const double v = w[i] / max_w;
    w[i] = v > floor_v ? v : floor_v;
  }
}

void ipw_payoff_avx2(const double* sum_g, const double* sum_v,
                     const double* sum_q, const std::uint32_t* count,
                     std::size_t n, double lam_q, double lam_r, double* out) {
  const __m256d lr = _mm256_set1_pd(lam_r);
  const __m256d lq = _mm256_set1_pd(lam_q);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i c32;
    std::memcpy(&c32, count + i, 16);
    const __m256d cnt = _mm256_cvtepi32_pd(c32);
    // Division-first, no fma — mirrors the scalar kernel (and the
    // reference transliteration) bit for bit.
    const __m256d eg = _mm256_div_pd(_mm256_loadu_pd(sum_g + i), cnt);
    const __m256d ev = _mm256_div_pd(_mm256_loadu_pd(sum_v + i), cnt);
    const __m256d eq = _mm256_div_pd(_mm256_loadu_pd(sum_q + i), cnt);
    const __m256d acc =
        _mm256_sub_pd(_mm256_add_pd(eg, _mm256_mul_pd(lq, ev)),
                      _mm256_mul_pd(lr, eq));
    _mm256_storeu_pd(out + i, acc);
  }
  for (; i < n; ++i) {
    const double cnt = static_cast<double>(count[i]);
    out[i] =
        sum_g[i] / cnt + lam_q * (sum_v[i] / cnt) - lam_r * (sum_q[i] / cnt);
  }
}

}  // namespace

const Kernels* avx2_table() {
  static const Kernels table{
      &sum_max_avx2,     &scale_clamp01_avx2, &gather_select_prob_avx2,
      &exp_stream_avx2,  &es_keys_avx2,       &renorm_floor_avx2,
      &ipw_payoff_avx2,
  };
  return &table;
}

}  // namespace lfsc::simd::detail

#else  // !(__AVX2__ && __FMA__)

namespace lfsc::simd::detail {
const Kernels* avx2_table() { return nullptr; }
}  // namespace lfsc::simd::detail

#endif
