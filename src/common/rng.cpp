#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace lfsc {
Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // An all-zero state is the one invalid state; SplitMix64 cannot emit four
  // consecutive zeros from any seed, so no further check is needed.
}

void Xoshiro256StarStar::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      (*this)();
    }
  }
  s_ = acc;
}

RngStream::RngStream(std::uint64_t seed, std::uint64_t stream_id) noexcept
    : engine_([&] {
        // Mix the stream id into the seed through SplitMix64 so that
        // (seed, 0) and (seed, 1) share no detectable structure.
        SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
        sm.next();
        return Xoshiro256StarStar(sm.next() ^ stream_id);
      }()) {}

bool RngStream::bernoulli(double p) noexcept {
  return uniform() < std::clamp(p, 0.0, 1.0);
}

double RngStream::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] avoids log(0).
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double RngStream::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double RngStream::exponential(double rate) noexcept {
  return -std::log(1.0 - uniform()) / rate;
}

std::size_t RngStream::discrete(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += w;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical tail
}

std::vector<std::size_t> RngStream::sample_without_replacement(
    std::size_t n, std::size_t k) noexcept {
  std::vector<std::size_t> indices;
  sample_without_replacement(n, k, indices);
  return indices;
}

void RngStream::sample_without_replacement(
    std::size_t n, std::size_t k, std::vector<std::size_t>& out) noexcept {
  // Partial Fisher-Yates over an index vector: O(n) setup, O(k) swaps.
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = i;
  const std::size_t take = std::min(k, n);
  for (std::size_t i = 0; i < take; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    std::swap(out[i], out[j]);
  }
  out.resize(take);
}

}  // namespace lfsc
