// 64-byte-aligned storage for the SoA hot-path tables.
//
// The SIMD kernels in simd.h load 256-bit lanes; keeping every row of
// the policy's structure-of-arrays blocks on a cache-line boundary lets
// the vector loops use aligned loads and keeps rows from straddling
// lines when shards write adjacent rows concurrently.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace lfsc {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal std::allocator drop-in that over-aligns every allocation to
/// a cache line. Works with std::vector so the SoA tables keep normal
/// vector semantics (resize/assign/iteration) while guaranteeing
/// 64-byte base alignment.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    const std::size_t bytes =
        (n * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes *
        kCacheLineBytes;
    void* p = ::operator new(bytes, std::align_val_t{kCacheLineBytes});
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCacheLineBytes});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// Rounds a row stride up so each row starts on a cache line
/// (e.g. pad_stride<double>(27) == 32).
template <typename T>
constexpr std::size_t pad_stride(std::size_t n) noexcept {
  const std::size_t per_line = kCacheLineBytes / sizeof(T);
  return (n + per_line - 1) / per_line * per_line;
}

}  // namespace lfsc
