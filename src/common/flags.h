// A small typed command-line flag parser for the CLI tools: supports
// --name value and --name=value forms, typed defaults, --help generation,
// and strict unknown-flag rejection. No global state.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace lfsc {

class FlagParser {
 public:
  FlagParser(std::string program, std::string description);

  /// Registration: returns a stable pointer whose value parse() fills.
  /// Names must be unique and non-empty.
  int* add_int(const std::string& name, int default_value,
               const std::string& help);
  double* add_double(const std::string& name, double default_value,
                     const std::string& help);
  std::string* add_string(const std::string& name, std::string default_value,
                          const std::string& help);
  /// Boolean flags: `--name` sets true; `--name=false` / `--name false`
  /// also accepted.
  bool* add_bool(const std::string& name, bool default_value,
                 const std::string& help);

  enum class Result { kOk, kHelp, kError };

  /// Parses argv (skipping argv[0]). On kError a message was written to
  /// `err`; on kHelp the usage text was written to `err`.
  Result parse(int argc, const char* const* argv, std::ostream& err);

  /// The generated usage text.
  std::string usage() const;

  /// True when the user supplied the flag explicitly (vs default).
  bool provided(const std::string& name) const;

 private:
  struct Flag {
    std::string help;
    std::variant<int*, double*, std::string*, bool*> target;
    std::string default_repr;
    bool provided = false;
  };

  Flag& register_flag(const std::string& name, std::string help);
  bool assign(Flag& flag, const std::string& value, std::ostream& err,
              const std::string& name);

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  // Owned storage for registered values.
  std::vector<std::unique_ptr<int>> ints_;
  std::vector<std::unique_ptr<double>> doubles_;
  std::vector<std::unique_ptr<std::string>> strings_;
  std::vector<std::unique_ptr<bool>> bools_;
};

}  // namespace lfsc
