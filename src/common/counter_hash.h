// Counter-based hashing: the determinism primitive shared by the fault
// model (DESIGN.md §9), admission control (§11) and the scenario
// compiler (§13). Every "random" event derived through hash_unit is a
// pure function of (seed, tag, a, b) — no stream to advance — which is
// what makes injected schedules independent of the policy roster, of
// parallel_scns/shards, and of checkpoint/resume.
#pragma once

#include <cstdint>

namespace lfsc {

/// SplitMix64 finalizer: the avalanche stage used for stream derivation
/// in common/rng.h, reused as a counter-based hash.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Hashes (seed, tag, a, b) to a uniform double in [0, 1). Chained
/// mix64 stages so every input perturbs all output bits. `tag` is a
/// domain-separation constant: two draw families with different tags
/// are independent even at identical (seed, a, b).
constexpr double hash_unit(std::uint64_t seed, std::uint64_t tag,
                           std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t h = mix64(seed ^ mix64(tag));
  h = mix64(h ^ a);
  h = mix64(h ^ b);
  // Top 53 bits -> [0, 1), the same mapping RngStream::uniform() uses.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace lfsc
