// Small numeric helpers shared across modules: running statistics
// (Welford), positive-part projection, linspace, and safe comparisons.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace lfsc {

/// max(x, 0): projection onto the non-negative orthant, used by the
/// Lagrange multiplier updates and the violation metrics.
constexpr double positive_part(double x) noexcept { return x > 0.0 ? x : 0.0; }

/// Approximate floating-point equality with combined abs/rel tolerance.
bool approx_equal(double a, double b, double tol = 1e-9) noexcept;

/// `count` evenly spaced values from `lo` to `hi` inclusive (count >= 2).
std::vector<double> linspace(double lo, double hi, std::size_t count);

/// Numerically stable single-pass mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sum with Kahan compensation; keeps cumulative reward series accurate
/// over 10^4+ additions.
class KahanSum {
 public:
  void add(double x) noexcept;
  double value() const noexcept { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Mean of a span; 0 for an empty span.
double mean_of(std::span<const double> values) noexcept;

/// Sample standard deviation of a span; 0 for fewer than two values.
double stddev_of(std::span<const double> values) noexcept;

}  // namespace lfsc
