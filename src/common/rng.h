// Deterministic, stream-splittable random number generation.
//
// Every stochastic component of the simulator draws from its own RngStream,
// identified by a (seed, stream_id) pair. Streams are statistically
// independent (seeded through SplitMix64 avalanching), so results do not
// depend on the order in which components consume randomness or on thread
// scheduling. This is the cornerstone of reproducible parallel sweeps.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace lfsc {

/// SplitMix64: tiny generator used to expand seeds into full engine state.
/// Passes BigCrush when used directly; here it is a seeding primitive.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, 256-bit state, passes
/// statistical test batteries; the workhorse engine for all simulation
/// randomness.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by avalanching `seed` through SplitMix64.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  // Inline: the simulator's per-slot loops draw tens of thousands of
  // variates; an out-of-line call per draw dominated the generator.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Advances the state by 2^128 steps; used to derive parallel streams.
  void jump() noexcept;

  /// Exact engine state, for checkpointing. restore() of a saved state
  /// resumes the identical output sequence.
  const std::array<std::uint64_t, 4>& state() const noexcept { return s_; }
  void restore(const std::array<std::uint64_t, 4>& s) noexcept { s_ = s; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_;
};

/// Exact serializable state of an RngStream: the engine words plus the
/// Box-Muller cache (without it, a resumed stream would desync by one
/// normal draw).
struct RngStreamState {
  std::array<std::uint64_t, 4> engine{};
  double cached_normal = 0.0;
  bool has_cached_normal = false;
};

/// A self-contained random stream with the distribution helpers the
/// simulator needs. Construct with (seed, stream_id); two streams with
/// different ids are independent for all practical purposes.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed, std::uint64_t stream_id = 0) noexcept;

  // The unbounded/bounded uniform draws are inline for the same reason
  // as the engine step: they are the per-arm / per-task hot path.

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    // 53 random bits -> double in [0, 1).
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) {  // full 64-bit range requested
      return static_cast<std::int64_t>(engine_());
    }
    // Lemire's nearly-divisionless bounded sampling with rejection to
    // remove modulo bias.
    const std::uint64_t threshold = (0 - range) % range;
    for (;;) {
      const std::uint64_t r = engine_();
      const __uint128_t m = static_cast<__uint128_t>(r) * range;
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return lo + static_cast<std::int64_t>(m >> 64);
      }
    }
  }

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Standard normal via Box-Muller (cached second variate).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Exponential with the given rate (> 0).
  double exponential(double rate) noexcept;

  /// Samples an index proportionally to non-negative `weights`.
  /// Requires a strictly positive total weight.
  std::size_t discrete(std::span<const double> weights) noexcept;

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) uniformly (k <= n),
  /// returned in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k) noexcept;

  /// Allocation-reusing variant: fills `out` (resized) with the sample.
  /// Identical draw sequence to the returning overload, which wraps this
  /// one — callers may mix the two without desyncing a stream.
  void sample_without_replacement(std::size_t n, std::size_t k,
                                  std::vector<std::size_t>& out) noexcept;

  /// Raw 64 random bits.
  std::uint64_t bits() noexcept { return engine_(); }

  /// Exact state capture/restore for crash-safe checkpointing.
  RngStreamState state() const noexcept {
    return {engine_.state(), cached_normal_, has_cached_normal_};
  }
  void restore(const RngStreamState& s) noexcept {
    engine_.restore(s.engine);
    cached_normal_ = s.cached_normal;
    has_cached_normal_ = s.has_cached_normal;
  }

 private:
  Xoshiro256StarStar engine_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace lfsc
