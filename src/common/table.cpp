#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lfsc {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("Table: at least one column required");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > columns_.size()) {
    throw std::invalid_argument("Table: row has more cells than columns");
  }
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << "  ";
      out << cells[c];
      if (c + 1 < cells.size()) {
        out << std::string(widths[c] - cells[c].size(), ' ');
      }
    }
    out << '\n';
  };
  emit(columns_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c > 0 ? 2 : 0);
  }
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace lfsc
