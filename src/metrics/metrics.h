// Per-slot evaluation of an assignment against the ground-truth
// realizations: compound reward, violations of (1c) and (1d), and
// structural validation of (1a)/(1b).
#pragma once

#include <optional>
#include <string>

#include "sim/network.h"
#include "sim/task.h"

namespace lfsc {

/// The per-slot quantities the paper's figures are built from.
struct SlotOutcome {
  double reward = 0.0;              ///< sum of realized g over selections
  double qos_violation = 0.0;       ///< sum_m max(0, alpha - sum_selected v)
  double resource_violation = 0.0;  ///< sum_m max(0, sum_selected q - beta)
  int tasks_selected = 0;
  int scns_meeting_qos = 0;   ///< # SCNs with sum v >= alpha
  int scns_within_beta = 0;   ///< # SCNs with sum q <= beta
};

/// Scores `assignment` on `slot`. Does not validate structure; call
/// validate_assignment() first when the assignment comes from untrusted
/// code. Local indices out of range throw std::out_of_range.
SlotOutcome evaluate_slot(const Slot& slot, const Assignment& assignment,
                          const NetworkConfig& net);

/// Checks constraints (1a) capacity and (1b) uniqueness plus index
/// validity. Returns std::nullopt when valid, otherwise a description of
/// the first violation found.
std::optional<std::string> validate_assignment(const SlotInfo& info,
                                               const Assignment& assignment,
                                               const NetworkConfig& net);

/// Builds the bandit feedback the harness delivers to a policy: realized
/// (u, v, q) for exactly the selected tasks.
SlotFeedback make_feedback(const Slot& slot, const Assignment& assignment);

}  // namespace lfsc
