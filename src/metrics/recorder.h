// Time-series accumulation for one policy across a run: per-slot and
// cumulative compound reward, violations of (1c)/(1d), and the paper's
// performance ratio.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "metrics/metrics.h"

namespace lfsc {

class SeriesRecorder {
 public:
  explicit SeriesRecorder(std::string policy_name)
      : name_(std::move(policy_name)) {}

  void add(const SlotOutcome& outcome);

  /// Replaces the recorded series with a partial run restored from a
  /// checkpoint. The totals are re-accumulated in slot order with the
  /// same `+=` sequence add() performs, so a resumed run's totals are
  /// bit-identical to an uninterrupted one.
  void restore(std::span<const double> reward, std::span<const double> qos,
               std::span<const double> res);

  const std::string& name() const noexcept { return name_; }
  std::size_t slots() const noexcept { return reward_.size(); }

  std::span<const double> reward() const noexcept { return reward_; }
  std::span<const double> qos_violation() const noexcept { return qos_; }
  std::span<const double> resource_violation() const noexcept { return res_; }

  double total_reward() const noexcept { return cum_reward_; }
  double total_qos_violation() const noexcept { return cum_qos_; }
  double total_resource_violation() const noexcept { return cum_res_; }
  double total_violation() const noexcept { return cum_qos_ + cum_res_; }

  /// Cumulative series (prefix sums of the per-slot series).
  std::vector<double> cumulative_reward() const;
  std::vector<double> cumulative_qos_violation() const;
  std::vector<double> cumulative_resource_violation() const;

  /// Performance ratio (Sec. 5): cumulative reward divided by cumulative
  /// reward plus cumulative violations, per slot. In (0, 1]; equals 1 for
  /// a violation-free run.
  std::vector<double> performance_ratio() const;
  double final_performance_ratio() const noexcept;

  /// Mean per-slot reward over a trailing window (convergence checks).
  double mean_reward_tail(std::size_t window) const noexcept;
  double mean_qos_violation_tail(std::size_t window) const noexcept;

 private:
  static std::vector<double> prefix_sum(std::span<const double> xs);

  std::string name_;
  std::vector<double> reward_;
  std::vector<double> qos_;
  std::vector<double> res_;
  double cum_reward_ = 0.0;
  double cum_qos_ = 0.0;
  double cum_res_ = 0.0;
};

}  // namespace lfsc
