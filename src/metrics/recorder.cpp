#include "metrics/recorder.h"

#include <algorithm>

#include "common/math_util.h"

namespace lfsc {

void SeriesRecorder::add(const SlotOutcome& outcome) {
  reward_.push_back(outcome.reward);
  qos_.push_back(outcome.qos_violation);
  res_.push_back(outcome.resource_violation);
  cum_reward_ += outcome.reward;
  cum_qos_ += outcome.qos_violation;
  cum_res_ += outcome.resource_violation;
}

void SeriesRecorder::restore(std::span<const double> reward,
                             std::span<const double> qos,
                             std::span<const double> res) {
  reward_.assign(reward.begin(), reward.end());
  qos_.assign(qos.begin(), qos.end());
  res_.assign(res.begin(), res.end());
  cum_reward_ = 0.0;
  cum_qos_ = 0.0;
  cum_res_ = 0.0;
  for (const double x : reward_) cum_reward_ += x;
  for (const double x : qos_) cum_qos_ += x;
  for (const double x : res_) cum_res_ += x;
}

std::vector<double> SeriesRecorder::prefix_sum(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  KahanSum sum;
  for (const double x : xs) {
    sum.add(x);
    out.push_back(sum.value());
  }
  return out;
}

std::vector<double> SeriesRecorder::cumulative_reward() const {
  return prefix_sum(reward_);
}
std::vector<double> SeriesRecorder::cumulative_qos_violation() const {
  return prefix_sum(qos_);
}
std::vector<double> SeriesRecorder::cumulative_resource_violation() const {
  return prefix_sum(res_);
}

std::vector<double> SeriesRecorder::performance_ratio() const {
  std::vector<double> out;
  out.reserve(reward_.size());
  KahanSum reward, violation;
  for (std::size_t i = 0; i < reward_.size(); ++i) {
    reward.add(reward_[i]);
    violation.add(qos_[i]);
    violation.add(res_[i]);
    const double denom = reward.value() + violation.value();
    out.push_back(denom > 0.0 ? reward.value() / denom : 1.0);
  }
  return out;
}

double SeriesRecorder::final_performance_ratio() const noexcept {
  const double denom = cum_reward_ + cum_qos_ + cum_res_;
  return denom > 0.0 ? cum_reward_ / denom : 1.0;
}

double SeriesRecorder::mean_reward_tail(std::size_t window) const noexcept {
  if (reward_.empty()) return 0.0;
  const std::size_t n = std::min(window, reward_.size());
  return mean_of(std::span<const double>(reward_).last(n));
}

double SeriesRecorder::mean_qos_violation_tail(
    std::size_t window) const noexcept {
  if (qos_.empty()) return 0.0;
  const std::size_t n = std::min(window, qos_.size());
  return mean_of(std::span<const double>(qos_).last(n));
}

}  // namespace lfsc
