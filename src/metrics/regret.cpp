#include "metrics/regret.h"

#include <cmath>
#include <stdexcept>

#include "common/math_util.h"

namespace lfsc {

std::vector<double> cumulative_regret(std::span<const double> oracle_reward,
                                      std::span<const double> policy_reward) {
  if (oracle_reward.size() != policy_reward.size()) {
    throw std::invalid_argument("cumulative_regret: length mismatch");
  }
  std::vector<double> out;
  out.reserve(oracle_reward.size());
  KahanSum sum;
  for (std::size_t t = 0; t < oracle_reward.size(); ++t) {
    sum.add(oracle_reward[t] - policy_reward[t]);
    out.push_back(sum.value());
  }
  return out;
}

double estimate_growth_exponent(std::span<const double> cumulative,
                                double tail_fraction) {
  if (tail_fraction <= 0.0 || tail_fraction > 1.0) {
    throw std::invalid_argument("estimate_growth_exponent: bad tail fraction");
  }
  const std::size_t n = cumulative.size();
  const auto start = static_cast<std::size_t>(
      static_cast<double>(n) * (1.0 - tail_fraction));
  // Least squares of y = log S(t) on x = log t over usable tail points.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  std::size_t count = 0;
  for (std::size_t t = start; t < n; ++t) {
    const double value = cumulative[t];
    if (value <= 0.0) continue;
    const double x = std::log(static_cast<double>(t + 1));
    const double y = std::log(value);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++count;
  }
  if (count < 2) return 0.0;
  const auto cd = static_cast<double>(count);
  const double denom = cd * sxx - sx * sx;
  if (denom <= 0.0) return 0.0;
  return (cd * sxy - sx * sy) / denom;
}

bool is_sublinear(std::span<const double> cumulative, double threshold) {
  return estimate_growth_exponent(cumulative) < threshold;
}

}  // namespace lfsc
