#include "metrics/metrics.h"

#include <stdexcept>
#include <vector>

#include "common/math_util.h"

namespace lfsc {

SlotOutcome evaluate_slot(const Slot& slot, const Assignment& assignment,
                          const NetworkConfig& net) {
  SlotOutcome outcome;
  const std::size_t num_scns = slot.info.coverage.size();
  if (assignment.selected.size() != num_scns) {
    throw std::invalid_argument("evaluate_slot: SCN count mismatch");
  }
  for (std::size_t m = 0; m < num_scns; ++m) {
    double completed = 0.0;
    double used = 0.0;
    for (const int local : assignment.selected[m]) {
      const auto j = static_cast<std::size_t>(local);
      if (j >= slot.real.u[m].size()) {
        throw std::out_of_range("evaluate_slot: local index out of range");
      }
      const double q = slot.real.q[m][j];
      outcome.reward += q > 0.0 ? slot.real.u[m][j] * slot.real.v[m][j] / q : 0.0;
      completed += slot.real.v[m][j];
      used += q;
      ++outcome.tasks_selected;
    }
    outcome.qos_violation += positive_part(net.qos_alpha - completed);
    outcome.resource_violation += positive_part(used - net.resource_beta);
    if (completed >= net.qos_alpha) ++outcome.scns_meeting_qos;
    if (used <= net.resource_beta) ++outcome.scns_within_beta;
  }
  return outcome;
}

std::optional<std::string> validate_assignment(const SlotInfo& info,
                                               const Assignment& assignment,
                                               const NetworkConfig& net) {
  if (assignment.selected.size() != info.coverage.size()) {
    return "assignment SCN count mismatch";
  }
  std::vector<int> owner(info.tasks.size(), -1);
  for (std::size_t m = 0; m < assignment.selected.size(); ++m) {
    const auto& sel = assignment.selected[m];
    if (static_cast<int>(sel.size()) > net.capacity_c) {
      return "SCN " + std::to_string(m) + " exceeds capacity c (1a)";
    }
    std::vector<bool> seen_local(info.coverage[m].size(), false);
    for (const int local : sel) {
      if (local < 0 || static_cast<std::size_t>(local) >= info.coverage[m].size()) {
        return "SCN " + std::to_string(m) + ": local index out of range";
      }
      if (seen_local[static_cast<std::size_t>(local)]) {
        return "SCN " + std::to_string(m) + ": duplicate local index";
      }
      seen_local[static_cast<std::size_t>(local)] = true;
      const int task = info.coverage[m][static_cast<std::size_t>(local)];
      auto& who = owner[static_cast<std::size_t>(task)];
      if (who >= 0) {
        return "task " + std::to_string(task) + " offloaded to SCNs " +
               std::to_string(who) + " and " + std::to_string(m) + " (1b)";
      }
      who = static_cast<int>(m);
    }
  }
  return std::nullopt;
}

SlotFeedback make_feedback(const Slot& slot, const Assignment& assignment) {
  SlotFeedback feedback;
  feedback.per_scn.resize(assignment.selected.size());
  for (std::size_t m = 0; m < assignment.selected.size(); ++m) {
    auto& out = feedback.per_scn[m];
    out.reserve(assignment.selected[m].size());
    for (const int local : assignment.selected[m]) {
      const auto j = static_cast<std::size_t>(local);
      TaskFeedback f;
      f.local_index = local;
      f.u = slot.real.u[m][j];
      f.v = slot.real.v[m][j];
      f.q = slot.real.q[m][j];
      out.push_back(f);
    }
  }
  return feedback;
}

}  // namespace lfsc
