// Regret accounting and empirical sub-linearity checks for Theorem 1.
//
// The paper proves R(T) and the violations V1(T), V2(T) grow sub-linearly
// in T. Empirically we (a) build the cumulative regret series against the
// Oracle and (b) estimate the growth exponent theta of a cumulative
// series S(t) ~ C * t^theta via least squares on log S vs log t over the
// tail; theta < 1 is the sub-linear signature.
#pragma once

#include <span>
#include <vector>

namespace lfsc {

/// Cumulative regret series: prefix sums of (oracle per-slot reward −
/// policy per-slot reward). Negative per-slot entries are kept (the
/// learner may beat the oracle's constrained choice in a slot); the
/// cumulative series is clamped at 0 from below for exponent fitting.
/// Requires equal lengths.
std::vector<double> cumulative_regret(std::span<const double> oracle_reward,
                                      std::span<const double> policy_reward);

/// Fits theta in S(t) ~ C * t^theta by least squares on (log t, log S(t))
/// using only the tail fraction of the series (default: last half), where
/// transient effects have washed out. Points with S(t) <= 0 are skipped.
/// Returns 0 when fewer than two usable points exist.
double estimate_growth_exponent(std::span<const double> cumulative,
                                double tail_fraction = 0.5);

/// Convenience: true when the series' tail growth exponent is below
/// `threshold` (default 0.95 — strictly sub-linear with a margin).
bool is_sublinear(std::span<const double> cumulative,
                  double threshold = 0.95);

}  // namespace lfsc
