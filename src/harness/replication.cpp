#include "harness/replication.h"

#include <cmath>
#include <stdexcept>

#include "common/table.h"
#include "harness/sweep.h"

namespace lfsc {

std::string MetricSummary::to_string(int precision) const {
  return Table::num(mean, precision) + " ± " + Table::num(ci95, precision);
}

const PolicySummary& ReplicationResult::find(std::string_view name) const {
  for (const auto& p : policies) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("ReplicationResult: no policy named " +
                          std::string(name));
}

MetricSummary summarize_metric(const std::vector<double>& values) {
  MetricSummary out;
  RunningStats stats;
  for (const double v : values) stats.add(v);
  out.mean = stats.mean();
  out.stddev = stats.stddev();
  out.replicates = stats.count();
  if (stats.count() > 1) {
    // Normal-approximation 95% interval on the mean.
    out.ci95 = 1.96 * out.stddev / std::sqrt(static_cast<double>(stats.count()));
  }
  return out;
}

ReplicationResult replicate_paper_experiment(const PaperSetup& base,
                                             int horizon,
                                             std::size_t replicates,
                                             std::uint64_t base_seed) {
  if (replicates == 0) {
    throw std::invalid_argument("replicate_paper_experiment: 0 replicates");
  }
  struct Replicate {
    std::vector<std::string> names;
    std::vector<double> rewards;
    std::vector<double> qos;
    std::vector<double> res;
    std::vector<double> ratios;
  };
  const std::function<Replicate(std::size_t)> eval = [&](std::size_t r) {
    PaperSetup s = base;
    s.set_seed(base_seed + 7919 * r);  // distinct world per replicate
    s.set_horizon(static_cast<std::size_t>(horizon));
    auto sim = s.make_simulator();
    auto owned = make_paper_policies(s);
    auto policies = policy_pointers(owned);
    const auto result = run_experiment(sim, policies, {.horizon = horizon});
    Replicate rep;
    for (const auto& rec : result.series) {
      rep.names.push_back(rec.name());
      rep.rewards.push_back(rec.total_reward());
      rep.qos.push_back(rec.total_qos_violation());
      rep.res.push_back(rec.total_resource_violation());
      rep.ratios.push_back(rec.final_performance_ratio());
    }
    return rep;
  };
  const auto reps = sweep_parallel<Replicate>(replicates, eval);

  ReplicationResult out;
  out.horizon = horizon;
  out.replicates = replicates;
  const auto& names = reps.front().names;
  for (std::size_t k = 0; k < names.size(); ++k) {
    std::vector<double> rewards, qos, res, ratios;
    for (const auto& rep : reps) {
      rewards.push_back(rep.rewards[k]);
      qos.push_back(rep.qos[k]);
      res.push_back(rep.res[k]);
      ratios.push_back(rep.ratios[k]);
    }
    PolicySummary summary;
    summary.name = names[k];
    summary.reward = summarize_metric(rewards);
    summary.qos_violation = summarize_metric(qos);
    summary.resource_violation = summarize_metric(res);
    summary.performance_ratio = summarize_metric(ratios);
    out.policies.push_back(std::move(summary));
  }
  return out;
}

}  // namespace lfsc
