#include "harness/series_io.h"

#include <algorithm>
#include <stdexcept>

#include "common/csv.h"

namespace lfsc {

std::vector<std::size_t> downsample_indices(std::size_t n, std::size_t points) {
  std::vector<std::size_t> out;
  if (n == 0 || points == 0) return out;
  if (points >= n) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  out.reserve(points);
  for (std::size_t k = 0; k < points; ++k) {
    // Evenly spaced, ending exactly at the last index.
    const std::size_t idx =
        (k + 1) * n / points - 1;
    if (out.empty() || idx != out.back()) out.push_back(idx);
  }
  if (out.back() != n - 1) out.push_back(n - 1);
  return out;
}

void write_series_csv(
    const std::string& path,
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    std::size_t stride) {
  if (stride == 0) throw std::invalid_argument("write_series_csv: stride 0");
  std::size_t n = 0;
  for (const auto& [name, values] : series) {
    if (n == 0) n = values.size();
    if (values.size() != n) {
      throw std::invalid_argument("write_series_csv: ragged series");
    }
  }
  CsvWriter csv(path);
  std::vector<std::string> header{"t"};
  for (const auto& [name, values] : series) header.push_back(name);
  csv.header(header);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % stride != 0 && i != n - 1) continue;
    std::vector<std::string> row;
    row.reserve(series.size() + 1);
    row.push_back(std::to_string(i + 1));
    for (const auto& [name, values] : series) {
      row.push_back(CsvWriter::format(values[i]));
    }
    csv.row(row);
  }
}

}  // namespace lfsc
