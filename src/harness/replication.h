// Multi-seed replication: run the same (setup, policies, horizon)
// experiment under R independent seeds — farmed to the thread pool — and
// aggregate each policy's summary metrics as mean ± 95% confidence
// interval. The figure benches report single-seed series (as the paper
// does); the replication bench quantifies how stable those conclusions
// are across worlds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "harness/paper_setup.h"
#include "harness/runner.h"

namespace lfsc {

struct MetricSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;  ///< half-width of the 95% CI (normal approximation)
  std::size_t replicates = 0;

  std::string to_string(int precision = 1) const;
};

/// Per-policy aggregate over replicates.
struct PolicySummary {
  std::string name;
  MetricSummary reward;
  MetricSummary qos_violation;
  MetricSummary resource_violation;
  MetricSummary performance_ratio;
};

struct ReplicationResult {
  std::vector<PolicySummary> policies;
  int horizon = 0;
  std::size_t replicates = 0;

  const PolicySummary& find(std::string_view name) const;
};

/// Runs `replicates` seeds of `setup` (seed varied per replicate) for
/// `horizon` slots with the standard policy roster, in parallel.
ReplicationResult replicate_paper_experiment(const PaperSetup& base,
                                             int horizon,
                                             std::size_t replicates,
                                             std::uint64_t base_seed = 1000);

/// Builds a MetricSummary from raw per-replicate values.
MetricSummary summarize_metric(const std::vector<double>& values);

}  // namespace lfsc
