// Crash-safe run checkpoints (DESIGN.md §9): the full mutable state of
// an experiment mid-run — every policy's exact learner image, the
// partial outcome series, in-flight delayed feedback, the fault model's
// burst counters and the telemetry registry — serialized as one binary
// file.
//
// Durability: the file is written to `<path>.tmp`, flushed and fsynced,
// then renamed over `<path>` (atomic on POSIX), and carries a CRC32
// footer over the whole payload — a crash mid-write leaves either the
// previous checkpoint or a torn temp file, never a half-written
// checkpoint that read_checkpoint_file() would accept.
//
// Generations (serve layer, DESIGN.md §14): a resident service keeps the
// last K checkpoints as `<prefix>.g<n>` with a monotonically increasing
// generation number. Supervised recovery (`--resume-latest`) scans
// newest→oldest and loads the first file that verifies; zero-length,
// torn, or corrupt generations are skipped with a one-line warning —
// they never abort the scan.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/task.h"
#include "telemetry/telemetry.h"

namespace lfsc {

/// A delayed-feedback batch still queued inside the runner.
struct CheckpointDelayedBatch {
  int origin_t = 0;
  int arrival_t = 0;
  SlotFeedback feedback;
};

/// One policy's share of a checkpoint.
struct CheckpointPolicyState {
  std::string name;  ///< must match the live policy at resume
  std::string blob;  ///< Policy::save_checkpoint image
  std::vector<double> reward;  ///< partial per-slot series (completed_slots)
  std::vector<double> qos;
  std::vector<double> res;
  std::vector<CheckpointDelayedBatch> delayed;  ///< runner's queue
};

struct CheckpointState {
  int completed_slots = 0;  ///< slots 1..completed_slots are done
  int horizon = 0;          ///< the run's configured T (sanity check)
  std::vector<CheckpointPolicyState> policies;
  std::string faults_blob;  ///< FaultModel::save_state, empty = no faults
  /// AdmissionControl::save_state (queue backlog + counters), empty when
  /// the run has no admission control.
  std::string admission_blob;
  /// SlotSource::save_state — the world's own mutable state. Empty for
  /// Simulator/RadioSimulator (their trajectory is rebuilt by the
  /// fast-forward); ScenarioSource stores its drift-walk offsets plus a
  /// spec-fingerprint guard so --resume under a different --scenario is
  /// rejected (DESIGN.md §13).
  std::string scenario_blob;
  /// ServeController::save_serve_state — the service-level counters
  /// (ticks, deadline misses, protocol errors, busy rejects, generations
  /// written) that must survive process replacement so a handed-off or
  /// resumed service reports the same stats line as an uninterrupted
  /// one. Empty for batch (lfsc_run) checkpoints.
  std::string serve_blob;
  std::vector<telemetry::MetricSnapshot> metrics;  ///< Registry::snapshot
  telemetry::TimeSeries telemetry_series;          ///< sampled rows so far
};

/// Serializes `state` and atomically replaces the file at `path`.
/// Throws std::runtime_error on I/O failure (temp file is removed).
void write_checkpoint_file(const std::string& path,
                           const CheckpointState& state);

/// Reads and verifies (magic, version, CRC32) a checkpoint written by
/// write_checkpoint_file. Throws std::runtime_error on a missing,
/// corrupt or version-incompatible file.
CheckpointState read_checkpoint_file(const std::string& path);

/// write_checkpoint_file with bounded retry on failure: up to `attempts`
/// tries, sleeping `initial_backoff_ms` before the second and doubling
/// each retry. A transient I/O hiccup (ENOSPC race, NFS blip) is ridden
/// out; a persistent failure still throws — after the last attempt, with
/// the final error. The sleep caps at 1s per retry.
void write_checkpoint_file_retry(const std::string& path,
                                 const CheckpointState& state,
                                 int attempts = 3,
                                 int initial_backoff_ms = 10);

// --- generation-numbered checkpoints (service mode) ---

/// The path of generation `n` under `prefix`: `<prefix>.g<n>`.
std::string checkpoint_generation_path(const std::string& prefix,
                                       std::uint64_t generation);

/// All generation numbers present for `prefix` (files named
/// `<prefix>.g<n>` in the prefix's directory), sorted ascending.
/// A missing directory yields an empty list, never a throw.
std::vector<std::uint64_t> list_checkpoint_generations(
    const std::string& prefix);

/// A checkpoint recovered by scan_latest_checkpoint, plus where it
/// came from.
struct RecoveredCheckpoint {
  CheckpointState state;
  std::uint64_t generation = 0;
  std::string path;
};

/// Supervised recovery: scans the generations of `prefix` newest→oldest
/// and returns the first one that reads and verifies end to end.
/// Every invalid generation — zero-length, truncated mid-footer, bad
/// CRC, wrong version — is skipped with a one-line warning; the scan
/// never aborts on a bad file. std::nullopt when no generation exists
/// or none verifies.
std::optional<RecoveredCheckpoint> scan_latest_checkpoint(
    const std::string& prefix);

/// Deletes generations older than the newest `keep` (best-effort; used
/// by the service to bound disk usage). Returns the number removed.
int prune_checkpoint_generations(const std::string& prefix, int keep);

}  // namespace lfsc
