// Crash-safe run checkpoints (DESIGN.md §9): the full mutable state of
// an experiment mid-run — every policy's exact learner image, the
// partial outcome series, in-flight delayed feedback, the fault model's
// burst counters and the telemetry registry — serialized as one binary
// file.
//
// Durability: the file is written to `<path>.tmp`, flushed and fsynced,
// then renamed over `<path>` (atomic on POSIX), and carries a CRC32
// footer over the whole payload — a crash mid-write leaves either the
// previous checkpoint or a torn temp file, never a half-written
// checkpoint that read_checkpoint_file() would accept.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/task.h"
#include "telemetry/telemetry.h"

namespace lfsc {

/// A delayed-feedback batch still queued inside the runner.
struct CheckpointDelayedBatch {
  int origin_t = 0;
  int arrival_t = 0;
  SlotFeedback feedback;
};

/// One policy's share of a checkpoint.
struct CheckpointPolicyState {
  std::string name;  ///< must match the live policy at resume
  std::string blob;  ///< Policy::save_checkpoint image
  std::vector<double> reward;  ///< partial per-slot series (completed_slots)
  std::vector<double> qos;
  std::vector<double> res;
  std::vector<CheckpointDelayedBatch> delayed;  ///< runner's queue
};

struct CheckpointState {
  int completed_slots = 0;  ///< slots 1..completed_slots are done
  int horizon = 0;          ///< the run's configured T (sanity check)
  std::vector<CheckpointPolicyState> policies;
  std::string faults_blob;  ///< FaultModel::save_state, empty = no faults
  /// AdmissionControl::save_state (queue backlog + counters), empty when
  /// the run has no admission control.
  std::string admission_blob;
  /// SlotSource::save_state — the world's own mutable state. Empty for
  /// Simulator/RadioSimulator (their trajectory is rebuilt by the
  /// fast-forward); ScenarioSource stores its drift-walk offsets plus a
  /// spec-fingerprint guard so --resume under a different --scenario is
  /// rejected (DESIGN.md §13).
  std::string scenario_blob;
  std::vector<telemetry::MetricSnapshot> metrics;  ///< Registry::snapshot
  telemetry::TimeSeries telemetry_series;          ///< sampled rows so far
};

/// Serializes `state` and atomically replaces the file at `path`.
/// Throws std::runtime_error on I/O failure (temp file is removed).
void write_checkpoint_file(const std::string& path,
                           const CheckpointState& state);

/// Reads and verifies (magic, version, CRC32) a checkpoint written by
/// write_checkpoint_file. Throws std::runtime_error on a missing,
/// corrupt or version-incompatible file.
CheckpointState read_checkpoint_file(const std::string& path);

}  // namespace lfsc
