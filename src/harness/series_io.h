// Helpers for emitting time series: downsampling for console tables and
// CSV export of named series (one column per policy).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace lfsc {

/// Picks ~`points` indices spread evenly over [0, n), always including
/// the final index. Returns the chosen indices (ascending).
std::vector<std::size_t> downsample_indices(std::size_t n, std::size_t points);

/// Writes `series` (name -> values; all the same length) to `path` with a
/// leading column of 1-based slot indices, keeping every `stride`-th slot
/// (stride >= 1; the final slot is always written).
void write_series_csv(
    const std::string& path,
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    std::size_t stride = 1);

}  // namespace lfsc
