#include "harness/checkpoint.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include <unistd.h>

#include "common/binio.h"
#include "common/log.h"

namespace lfsc {
namespace {

constexpr char kMagic[8] = {'L', 'F', 'S', 'C', 'C', 'K', 'P', 'T'};
/// v2 (overload-protection PR): policy blobs carry degradation-ladder
/// state, and the file gains the admission-control blob. v3 (scenario
/// PR): the file gains the SlotSource state blob (drift-walk offsets +
/// spec fingerprint for ScenarioSource runs). v4 (handoff PR): the file
/// gains the serve-state blob (service-level counters, so a handed-off
/// service resumes with identical stats). Old versions are rejected by
/// number — after the CRC passes — so a stale file yields one clear
/// line, not corruption noise.
constexpr std::uint32_t kFileVersion = 4;

void write_feedback(BlobWriter& w, const SlotFeedback& fb) {
  w.u32(static_cast<std::uint32_t>(fb.per_scn.size()));
  for (const auto& items : fb.per_scn) {
    w.u32(static_cast<std::uint32_t>(items.size()));
    for (const auto& f : items) {
      w.i32(f.local_index);
      w.f64(f.u);
      w.f64(f.v);
      w.f64(f.q);
    }
  }
}

SlotFeedback read_feedback(BlobReader& r) {
  SlotFeedback fb;
  fb.per_scn.resize(r.u32());
  for (auto& items : fb.per_scn) {
    items.resize(r.u32());
    for (auto& f : items) {
      f.local_index = r.i32();
      f.u = r.f64();
      f.v = r.f64();
      f.q = r.f64();
    }
  }
  return fb;
}

void write_u64_vec(BlobWriter& w, const std::vector<std::uint64_t>& xs) {
  w.u64(xs.size());
  for (const auto x : xs) w.u64(x);
}

std::vector<std::uint64_t> read_u64_vec(BlobReader& r) {
  std::vector<std::uint64_t> out(r.u64());
  for (auto& x : out) x = r.u64();
  return out;
}

std::string serialize(const CheckpointState& state) {
  BlobWriter w;
  w.u32(kFileVersion);
  w.i32(state.completed_slots);
  w.i32(state.horizon);

  w.u32(static_cast<std::uint32_t>(state.policies.size()));
  for (const auto& p : state.policies) {
    w.str(p.name);
    w.str(p.blob);
    w.f64_span(p.reward);
    w.f64_span(p.qos);
    w.f64_span(p.res);
    w.u32(static_cast<std::uint32_t>(p.delayed.size()));
    for (const auto& batch : p.delayed) {
      w.i32(batch.origin_t);
      w.i32(batch.arrival_t);
      write_feedback(w, batch.feedback);
    }
  }

  w.str(state.faults_blob);
  w.str(state.admission_blob);
  w.str(state.scenario_blob);
  w.str(state.serve_blob);

  w.u32(static_cast<std::uint32_t>(state.metrics.size()));
  for (const auto& m : state.metrics) {
    w.str(m.name);
    w.u8(static_cast<std::uint8_t>(m.kind));
    w.u64(m.count);
    w.f64(m.value);
    w.f64(m.sum);
    w.f64_span(m.stream_values);
    w.f64_span(m.bounds);
    write_u64_vec(w, m.bucket_counts);
  }

  const auto& series = state.telemetry_series;
  w.u32(static_cast<std::uint32_t>(series.names.size()));
  for (const auto& name : series.names) w.str(name);
  w.u32(static_cast<std::uint32_t>(series.t.size()));
  for (const auto t : series.t) w.i32(t);
  for (const auto& row : series.rows) w.f64_span(row);

  return w.take();
}

CheckpointState deserialize(std::string_view payload) {
  BlobReader r(payload);
  const std::uint32_t version = r.u32();
  if (version != kFileVersion) {
    throw std::runtime_error(
        "checkpoint: file version " + std::to_string(version) +
        " is not supported (this build reads version " +
        std::to_string(kFileVersion) +
        "; the file was written by a different build — restart the run)");
  }
  CheckpointState state;
  state.completed_slots = r.i32();
  state.horizon = r.i32();

  state.policies.resize(r.u32());
  for (auto& p : state.policies) {
    p.name = r.str();
    p.blob = r.str();
    p.reward = r.f64_vec();
    p.qos = r.f64_vec();
    p.res = r.f64_vec();
    p.delayed.resize(r.u32());
    for (auto& batch : p.delayed) {
      batch.origin_t = r.i32();
      batch.arrival_t = r.i32();
      batch.feedback = read_feedback(r);
    }
  }

  state.faults_blob = r.str();
  state.admission_blob = r.str();
  state.scenario_blob = r.str();
  state.serve_blob = r.str();

  state.metrics.resize(r.u32());
  for (auto& m : state.metrics) {
    m.name = r.str();
    m.kind = static_cast<telemetry::Kind>(r.u8());
    m.count = r.u64();
    m.value = r.f64();
    m.sum = r.f64();
    m.stream_values = r.f64_vec();
    m.bounds = r.f64_vec();
    m.bucket_counts = read_u64_vec(r);
  }

  auto& series = state.telemetry_series;
  series.names.resize(r.u32());
  for (auto& name : series.names) name = r.str();
  series.t.resize(r.u32());
  for (auto& t : series.t) t = r.i32();
  series.rows.resize(series.t.size());
  for (auto& row : series.rows) row = r.f64_vec();

  if (!r.done()) {
    throw std::runtime_error("checkpoint: trailing bytes after payload");
  }
  return state;
}

}  // namespace

void write_checkpoint_file(const std::string& path,
                           const CheckpointState& state) {
  std::string file(kMagic, sizeof kMagic);
  file += serialize(state);
  const std::uint32_t crc = crc32(file);
  file.append(reinterpret_cast<const char*>(&crc), sizeof crc);

  const std::string tmp = path + ".tmp";
  std::FILE* fp = std::fopen(tmp.c_str(), "wb");
  if (fp == nullptr) {
    throw std::runtime_error("checkpoint: cannot open " + tmp + ": " +
                             std::strerror(errno));
  }
  const bool wrote =
      std::fwrite(file.data(), 1, file.size(), fp) == file.size() &&
      std::fflush(fp) == 0 && ::fsync(::fileno(fp)) == 0;
  const bool closed = std::fclose(fp) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: write to " + tmp + " failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: rename to " + path + " failed: " +
                             std::strerror(errno));
  }
}

CheckpointState read_checkpoint_file(const std::string& path) {
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (fp == nullptr) {
    throw std::runtime_error("checkpoint: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  std::string file;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, fp)) > 0) file.append(buf, n);
  const bool read_error = std::ferror(fp) != 0;
  std::fclose(fp);
  if (read_error) {
    throw std::runtime_error("checkpoint: read from " + path + " failed");
  }

  if (file.size() < sizeof kMagic + sizeof(std::uint32_t) ||
      std::memcmp(file.data(), kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("checkpoint: " + path +
                             " is not a checkpoint file");
  }
  const std::size_t body = file.size() - sizeof(std::uint32_t);
  std::uint32_t stored = 0;
  std::memcpy(&stored, file.data() + body, sizeof stored);
  if (crc32(std::string_view(file.data(), body)) != stored) {
    throw std::runtime_error("checkpoint: " + path +
                             " failed CRC32 verification (torn or corrupt)");
  }
  return deserialize(
      std::string_view(file.data() + sizeof kMagic, body - sizeof kMagic));
}

void write_checkpoint_file_retry(const std::string& path,
                                 const CheckpointState& state, int attempts,
                                 int initial_backoff_ms) {
  if (attempts < 1) attempts = 1;
  int backoff_ms = std::max(0, initial_backoff_ms);
  for (int attempt = 1;; ++attempt) {
    try {
      write_checkpoint_file(path, state);
      return;
    } catch (const std::runtime_error& e) {
      if (attempt >= attempts) throw;
      LFSC_LOG_WARN << "checkpoint: write attempt " << attempt << "/"
                    << attempts << " failed (" << e.what() << "); retrying in "
                    << backoff_ms << "ms";
      if (backoff_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      }
      backoff_ms = std::min(backoff_ms * 2, 1000);
    }
  }
}

std::string checkpoint_generation_path(const std::string& prefix,
                                       std::uint64_t generation) {
  return prefix + ".g" + std::to_string(generation);
}

std::vector<std::uint64_t> list_checkpoint_generations(
    const std::string& prefix) {
  namespace fs = std::filesystem;
  const fs::path prefix_path(prefix);
  fs::path dir = prefix_path.parent_path();
  if (dir.empty()) dir = ".";
  const std::string stem = prefix_path.filename().string() + ".g";

  std::vector<std::uint64_t> generations;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() <= stem.size() || name.compare(0, stem.size(), stem) != 0) {
      continue;
    }
    const std::string digits = name.substr(stem.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;  // `.g12.tmp` mid-write leftovers and strays don't count
    }
    errno = 0;
    char* endp = nullptr;
    const unsigned long long g = std::strtoull(digits.c_str(), &endp, 10);
    if (errno != 0 || endp == nullptr || *endp != '\0') continue;
    generations.push_back(static_cast<std::uint64_t>(g));
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

std::optional<RecoveredCheckpoint> scan_latest_checkpoint(
    const std::string& prefix) {
  std::vector<std::uint64_t> generations = list_checkpoint_generations(prefix);
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    const std::string path = checkpoint_generation_path(prefix, *it);
    try {
      RecoveredCheckpoint rec;
      rec.state = read_checkpoint_file(path);
      rec.generation = *it;
      rec.path = path;
      return rec;
    } catch (const std::runtime_error& e) {
      // One line per bad generation, then on to the next-older one: a
      // torn newest file (kill -9 raced the rename) must not block
      // recovery from an intact predecessor.
      LFSC_LOG_WARN << "checkpoint: skipping generation " << *it << " ("
                    << e.what() << ")";
    }
  }
  return std::nullopt;
}

int prune_checkpoint_generations(const std::string& prefix, int keep) {
  if (keep < 0) keep = 0;
  std::vector<std::uint64_t> generations = list_checkpoint_generations(prefix);
  if (generations.size() <= static_cast<std::size_t>(keep)) return 0;
  const std::size_t drop = generations.size() - static_cast<std::size_t>(keep);
  int removed = 0;
  for (std::size_t i = 0; i < drop; ++i) {
    if (std::remove(
            checkpoint_generation_path(prefix, generations[i]).c_str()) == 0) {
      ++removed;
    }
  }
  return removed;
}

}  // namespace lfsc
